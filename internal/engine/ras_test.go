package engine

import "testing"

func TestRASBasics(t *testing.T) {
	r := newRAS(4)
	r.push(100)
	r.push(200)
	if a, ok := r.pop(); !ok || a != 200 {
		t.Fatalf("pop = %d,%v", a, ok)
	}
	if a, ok := r.pop(); !ok || a != 100 {
		t.Fatalf("pop = %d,%v", a, ok)
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop of empty stack claimed valid")
	}
}

func TestRASOverflow(t *testing.T) {
	r := newRAS(2)
	for i := uint64(1); i <= 4; i++ {
		r.push(i * 10)
	}
	if r.overflows != 2 {
		t.Fatalf("overflows = %d, want 2", r.overflows)
	}
	// The two most recent entries survive but are flagged untrustworthy
	// because the stack wrapped.
	if a, ok := r.pop(); ok || a != 40 {
		t.Fatalf("pop after wrap = %d valid=%v, want 40/false", a, ok)
	}
}

func TestRASDeepCallChainsMispredict(t *testing.T) {
	// A core with a tiny RAS must see return target mispredictions that a
	// deep-enough RAS avoids.
	prog := buildProgram(t)
	small := DefaultConfig()
	small.RASDepth = 2
	big := DefaultConfig()

	a := New(prog, small)
	b := New(prog, big)
	sa := run(t, a, 3)
	sb := run(t, b, 3)
	if sa.RASOverflows == 0 {
		t.Fatal("deep call tree never overflowed a 2-entry RAS")
	}
	if sa.TargetMispredicts <= sb.TargetMispredicts {
		t.Errorf("tiny RAS target mispredicts %d <= full RAS %d",
			sa.TargetMispredicts, sb.TargetMispredicts)
	}
	if sb.RASOverflows != 0 {
		t.Errorf("32-entry RAS overflowed %d times on the test program", sb.RASOverflows)
	}
}
