package engine

import "testing"

// TestInvocationAllocs pins the steady-state allocation count of the serial
// invocation hot path. After the first invocation has grown the reusable
// buffers (trace, evals, pending table, walk scratch), each further
// RunInvocation allocates exactly one object: the returned InvocationStats.
// The ceiling of 2 leaves room for one incidental allocation without letting
// a per-step or per-fetch allocation (which would show up as thousands)
// anywhere near the gate.
func TestInvocationAllocs(t *testing.T) {
	e := New(buildBenchProgram(t), DefaultConfig())
	got := steadyAllocs(t, e, 60_000)
	if got > 2 {
		t.Errorf("steady-state RunInvocation allocates %.1f objects/invocation, want <= 2", got)
	}
}

// TestBatchedInvocationAllocs pins the batched entry point: a whole train of
// invocations shares one InvocationStats backing array plus one pointer
// slice, so the per-train total must stay constant (independent of train
// length) rather than growing one allocation per invocation.
func TestBatchedInvocationAllocs(t *testing.T) {
	const (
		maxInstr = 60_000
		train    = 8
	)
	e := New(buildBenchProgram(t), DefaultConfig())
	if _, err := e.RunInvocation(InvocationOptions{Seed: 1, MaxInstr: maxInstr}); err != nil {
		t.Fatal(err)
	}
	opts := make([]InvocationOptions, train)
	seed := uint64(2)
	got := testing.AllocsPerRun(5, func() {
		_, err := e.RunInvocations(opts, func(i int) error {
			opts[i] = InvocationOptions{Seed: seed, MaxInstr: maxInstr}
			seed++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	// Two slice allocations for the whole train, plus slack for one
	// incidental: far below the train+1 a serial loop would cost.
	if got > 4 {
		t.Errorf("batched %d-invocation train allocates %.1f objects, want <= 4", train, got)
	}
}

// TestScratchHandoff proves the detach/attach cycle preserves results: an
// engine running on buffers recycled from another engine produces bit-
// identical stats to one growing its own, and a detached engine's next
// invocation still works (buffers regrow).
func TestScratchHandoff(t *testing.T) {
	prog := buildBenchProgram(t)
	run := func(e *Engine, seed uint64) InvocationStats {
		t.Helper()
		st, err := e.RunInvocation(InvocationOptions{Seed: seed, MaxInstr: 60_000})
		if err != nil {
			t.Fatal(err)
		}
		return *st
	}

	donor := New(prog, DefaultConfig())
	run(donor, 1)
	scratch := donor.DetachScratch()

	// The donor regrows buffers and keeps producing the same results.
	fresh := New(prog, DefaultConfig())
	run(fresh, 1)
	if a, b := run(donor, 2), run(fresh, 2); a != b {
		t.Errorf("detached engine diverged: %+v vs %+v", a, b)
	}

	// A recipient on recycled buffers matches an engine growing its own.
	recipient := New(prog, DefaultConfig())
	recipient.AttachScratch(scratch)
	control := New(prog, DefaultConfig())
	if a, b := run(recipient, 3), run(control, 3); a != b {
		t.Errorf("recycled-scratch engine diverged: %+v vs %+v", a, b)
	}
}
