package engine

import (
	"testing"
	"testing/quick"

	"ignite/internal/cfg"
)

// TestInvocationInvariantsProperty runs invocations with random seeds under
// several configurations and checks structural invariants that must hold no
// matter what the trace looks like.
func TestInvocationInvariantsProperty(t *testing.T) {
	prog := buildProgram(t)
	configs := map[string]Config{}
	base := DefaultConfig()
	configs["nl"] = base
	fdp := base
	fdp.FDPEnabled = true
	configs["fdp"] = fdp
	boom := fdp
	boom.BoomerangEnabled = true
	configs["boomerang"] = boom
	ideal := fdp
	ideal.PerfectL1I = true
	ideal.PerfectBTB = true
	configs["ideal"] = ideal

	for name, ec := range configs {
		eng := New(prog, ec)
		f := func(seed uint64) bool {
			if seed%3 == 0 {
				eng.Thrash(seed)
			}
			st, err := eng.RunInvocation(InvocationOptions{Seed: seed, MaxInstr: 40_000})
			if err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			// Non-negative stack components.
			if st.Stack.Retiring < 0 || st.Stack.Fetch < 0 || st.Stack.BadSpec < 0 || st.Stack.Backend < 0 {
				t.Logf("%s: negative stack %+v", name, st.Stack)
				return false
			}
			// Cycles at least the retirement floor.
			if st.Cycles < float64(st.Instrs)/float64(ec.Width)-1 {
				t.Logf("%s: cycles below floor", name)
				return false
			}
			// Miss counts bounded by opportunity counts.
			if st.CondMispredicts > st.CondBranches {
				t.Logf("%s: mispredicts > branches", name)
				return false
			}
			if st.BTBMisses > st.TakenBranches {
				t.Logf("%s: BTB misses > taken branches", name)
				return false
			}
			if st.CondMispredInitial > st.CondMispredicts {
				t.Logf("%s: initial > total mispredicts", name)
				return false
			}
			// Resteers can't exceed resolved branch events.
			if st.Resteers > st.CondBranches+st.TakenBranches {
				t.Logf("%s: resteers too high", name)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTraceMaterializationMatchesWalk: the engine's internal trace must be
// exactly the walker's output for the same seed.
func TestTraceMaterializationMatchesWalk(t *testing.T) {
	prog := buildProgram(t)
	eng := New(prog, DefaultConfig())
	if _, err := eng.RunInvocation(InvocationOptions{Seed: 9, MaxInstr: 30_000}); err != nil {
		t.Fatal(err)
	}
	var want []cfg.Step
	prog.Walk(0, cfg.WalkOptions{Seed: 9, MaxInstr: 30_000}, func(s cfg.Step) bool {
		want = append(want, s)
		return true
	})
	if len(eng.steps) != len(want) {
		t.Fatalf("engine trace %d steps, walker %d", len(eng.steps), len(want))
	}
	for i := range want {
		if eng.steps[i] != want[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}

// TestClockMonotonicity: the cycle clocks never go backwards across
// invocations and thrashes.
func TestClockMonotonicity(t *testing.T) {
	prog := buildProgram(t)
	eng := New(prog, DefaultConfig())
	var last uint64
	for i := uint64(0); i < 4; i++ {
		if i == 2 {
			eng.Thrash(i)
		}
		if _, err := eng.RunInvocation(InvocationOptions{Seed: i, MaxInstr: 20_000}); err != nil {
			t.Fatal(err)
		}
		if eng.Now() < last {
			t.Fatalf("clock went backwards: %d -> %d", last, eng.Now())
		}
		last = eng.Now()
	}
}

func TestRunInvocationErrors(t *testing.T) {
	// A non-finalized program must fail cleanly.
	p := cfg.NewProgram("broken")
	p.AddFunction("f", &cfg.Straight{N: 4}, 1)
	eng := New(p, DefaultConfig())
	if _, err := eng.RunInvocation(InvocationOptions{Seed: 1}); err == nil {
		t.Error("expected error for non-finalized program")
	}
}
