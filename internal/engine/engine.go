package engine

import (
	"ignite/internal/bpred"
	"ignite/internal/btb"
	"ignite/internal/cache"
	"ignite/internal/cfg"
	"ignite/internal/memsys"
	"ignite/internal/obs"
	"ignite/internal/tlb"
)

// Companion is a prefetcher or restore mechanism that runs alongside the
// core (Jukebox, Confluence, Ignite replay). The engine drives companions
// with elapsed cycles and front-end events; companions act on the shared
// hardware structures they were constructed with.
type Companion interface {
	Name() string
	// BeginInvocation is called when a new invocation starts on the core.
	BeginInvocation()
	// Tick grants the companion `cycles` cycles of background operation
	// at absolute time `now`.
	Tick(now uint64, cycles int)
	// OnInstrFetch observes every correct-path demand instruction line
	// fetch and the level that served it.
	OnInstrFetch(lineAddr uint64, lvl cache.Level, now uint64)
}

// Engine owns the modeled core: cache hierarchy, BPU (BTB + CBP), ITLB,
// the program being executed, and any companions. One Engine instance
// persists across invocations so that microarchitectural state carries over
// exactly as the lukewarm protocol dictates.
type Engine struct {
	prog *cfg.Program
	cfg  Config

	hier    *cache.Hierarchy
	btb     *btb.BTB
	cbp     *bpred.CBP
	itlb    *tlb.TLB
	traffic *memsys.Traffic

	companions []Companion
	// fetchComps/tickComps are the companions whose OnInstrFetch/Tick are
	// not declared no-ops (FetchPassive/TickPassive) — the only ones the
	// per-line and per-step fan-outs dispatch to.
	fetchComps []Companion
	tickComps  []Companion

	// tracer receives invocation/replay lifecycle events. nil (the
	// default) keeps the hot path free of both the virtual call and the
	// event construction — see the nil checks at every emission site.
	tracer obs.Tracer

	// invocationCheck, when set, audits the engine after every completed
	// invocation (the internal/check invariant verifier). A non-nil error
	// fails RunInvocation, so a conservation-law violation aborts the
	// protocol instead of silently corrupting downstream figures.
	invocationCheck func(*InvocationStats) error

	// now is the absolute cycle clock, monotonic across invocations;
	// nowf carries the fractional part. fetchClock tracks front-end time
	// only (base + fetch + speculation cycles, excluding back-end
	// stalls): the decoupled fetch engine keeps consuming instructions
	// while the back end is stalled, so prefetch timeliness must be
	// judged against fetch time.
	now        uint64
	nowf       float64
	fetchClock float64

	// pending tracks in-flight fill completion times by line address
	// so a demand hit on a just-issued prefetch or wrong-path fill is
	// charged the remaining latency and counted as a miss. It is an
	// open-addressed flat table: the count-zero fast path makes the
	// steady-state (nothing in flight) per-fetch probe a single load.
	pending pendingTable

	// Reusable per-invocation buffers. steps/evals are resized in place;
	// emitStep is the Walk callback, built once so RunInvocation does not
	// allocate a closure per invocation; walkScratch recycles the walker's
	// RNG and per-block counters.
	steps       []cfg.Step
	stepsShared bool // steps aliases a caller-owned trace: never append/truncate
	evals       []stepEval
	emitStep    func(cfg.Step) bool
	walkScratch cfg.WalkScratch

	// seen is an epoch-stamped set of branch sites executed during the
	// current invocation, indexed by block ID (a block is a member iff its
	// stamp equals seenGen): bumping seenGen empties the set in O(1), and
	// the dense index replaces two map operations per conditional branch.
	seen    []uint32
	seenGen uint32

	ras  *ras
	data dataStream
}

// stepEval memoizes the front-end's one-time BPU evaluation of a step; the
// lookahead and the commit path must agree on what the front-end did.
type stepEval struct {
	done      bool
	follows   bool // front-end continues on the correct path past this step
	btbHit    bool
	predTaken bool // direction the CBP predicted (conditionals)
	target    uint64
	boomerang bool // BTB miss repaired by Boomerang predecode
}

// New builds an engine for the given program and configuration.
func New(prog *cfg.Program, c Config) *Engine {
	traffic := memsys.NewTraffic()
	e := &Engine{
		prog:    prog,
		cfg:     c,
		hier:    cache.DefaultHierarchy(traffic),
		btb:     btb.MustNew(c.BTB),
		cbp:     bpred.NewCBP(),
		itlb:    tlb.MustNew(c.ITLB),
		traffic: traffic,
		seen:    make([]uint32, len(prog.Blocks)),
	}
	// Size the pending-fill table from the FTQ depth: the lookahead is the
	// main producer of in-flight lines (the table still grows if a
	// companion outruns the estimate).
	e.pending.init(4 * (c.FTQDepth + c.NLDegree + 1))
	if c.L2SizeBytes > 0 {
		e.hier.L2 = cache.MustNew(cache.Config{
			Name:       "L2",
			SizeBytes:  c.L2SizeBytes,
			LineBytes:  cache.LineBytesConst,
			Ways:       20,
			HitLatency: c.Lat.L2,
		})
	}
	e.emitStep = func(s cfg.Step) bool {
		e.steps = append(e.steps, s)
		return true
	}
	e.hier.Lat = c.Lat
	e.ras = newRAS(c.RASDepth)
	e.data.init(&c.Data)
	return e
}

// Program returns the program under execution.
func (e *Engine) Program() *cfg.Program { return e.prog }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Hierarchy exposes the cache hierarchy.
func (e *Engine) Hierarchy() *cache.Hierarchy { return e.hier }

// BTB exposes the branch target buffer.
func (e *Engine) BTB() *btb.BTB { return e.btb }

// CBP exposes the conditional branch predictor.
func (e *Engine) CBP() *bpred.CBP { return e.cbp }

// ITLB exposes the instruction TLB.
func (e *Engine) ITLB() *tlb.TLB { return e.itlb }

// Traffic exposes the DRAM traffic tracker.
func (e *Engine) Traffic() *memsys.Traffic { return e.traffic }

// Now returns the absolute cycle clock.
func (e *Engine) Now() uint64 { return e.now }

// SetTracer installs an event tracer (nil disables tracing). Companions
// read it through Tracer to emit their own lifecycle events.
func (e *Engine) SetTracer(t obs.Tracer) { e.tracer = t }

// Tracer returns the installed tracer (nil when tracing is off).
func (e *Engine) Tracer() obs.Tracer { return e.tracer }

// SetInvocationCheck installs a post-invocation auditor (nil disables it).
// It runs after the invocation's stats are final and before RunInvocation
// returns; an error it reports is returned to the caller.
func (e *Engine) SetInvocationCheck(fn func(*InvocationStats) error) {
	e.invocationCheck = fn
}

// FetchPassive marks a Companion whose OnInstrFetch is a no-op. The engine
// skips marked companions on the per-line fetch path, which otherwise pays
// an interface dispatch per cache line for a method that does nothing
// (Ignite's replayer is the prime case: it ticks but never observes
// fetches).
type FetchPassive interface{ FetchPassive() }

// TickPassive marks a Companion whose Tick is a no-op; the engine skips it
// in the per-step tick fan-out (Confluence records and replays entirely
// from fetch events).
type TickPassive interface{ TickPassive() }

// AddCompanion attaches a companion prefetcher/restorer.
func (e *Engine) AddCompanion(c Companion) {
	e.companions = append(e.companions, c)
	if _, ok := c.(FetchPassive); !ok {
		e.fetchComps = append(e.fetchComps, c)
	}
	if _, ok := c.(TickPassive); !ok {
		e.tickComps = append(e.tickComps, c)
	}
}

// ClearCompanions detaches all companions.
func (e *Engine) ClearCompanions() {
	e.companions = e.companions[:0]
	e.fetchComps = e.fetchComps[:0]
	e.tickComps = e.tickComps[:0]
}

// Thrash models interleaved executions of other functions: all caches, the
// BTB, the ITLB and the TAGE tables are flushed and the bimodal predictor
// is overwritten with random state (the paper's Section 5.3 methodology).
func (e *Engine) Thrash(seed uint64) {
	e.hier.FlushAll()
	e.btb.Flush()
	e.itlb.Flush()
	e.cbp.FlushAll(seed)
	e.ras.reset()
	e.pending.clear()
}

// ThrashSelective flushes like Thrash but optionally preserves the BTB,
// BIM or TAGE contents across the thrash — the warm-state sensitivity
// studies of Figures 4 and 5.
func (e *Engine) ThrashSelective(seed uint64, keepBTB, keepBIM, keepTAGE bool) {
	var btbState *btb.Snapshot
	if keepBTB {
		btbState = e.btb.Snapshot()
	}
	cbpState := e.cbp.Snapshot()

	e.Thrash(seed)

	if keepBTB {
		e.btb.Restore(btbState)
	}
	if keepBIM {
		e.cbp.RestoreBimOnly(cbpState)
	}
	if keepTAGE {
		e.cbp.RestoreTageOnly(cbpState)
	}
}

// NotePendingLine lets companions report the completion time of prefetches
// they issued, so a demand access arriving before completion is charged the
// remaining latency. extraLat is added on top of the level's fill latency
// (e.g. Confluence's metadata lookup).
func (e *Engine) NotePendingLine(la uint64, from cache.Level, extraLat int) {
	lat := extraLat
	switch from {
	case cache.LvlL2:
		lat += e.cfg.Lat.L2
	case cache.LvlLLC:
		lat += e.cfg.Lat.LLC
	case cache.LvlMem:
		lat += e.cfg.Lat.Mem
	}
	if lat <= 0 {
		return
	}
	done := uint64(e.fetchClock) + uint64(lat)
	e.pending.noteMin(la, pendingFill{done: done, from: from})
}

// ResetStats clears every statistics counter (between warm-up and
// measurement) without touching microarchitectural contents.
func (e *Engine) ResetStats() {
	e.hier.ResetStats()
	e.btb.ResetStats()
	e.cbp.ResetStats()
	e.itlb.ResetStats()
	e.traffic.Reset()
}
