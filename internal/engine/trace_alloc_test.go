package engine

import (
	"testing"

	"ignite/internal/obs"
)

// steadyAllocs reports the average heap allocations of one steady-state
// RunInvocation call on e (after a warm-up invocation primes the reusable
// buffers).
func steadyAllocs(t *testing.T, e *Engine, maxInstr uint64) float64 {
	t.Helper()
	if _, err := e.RunInvocation(InvocationOptions{Seed: 1, MaxInstr: maxInstr}); err != nil {
		t.Fatal(err)
	}
	seed := uint64(2)
	return testing.AllocsPerRun(10, func() {
		if _, err := e.RunInvocation(InvocationOptions{Seed: seed, MaxInstr: maxInstr}); err != nil {
			t.Fatal(err)
		}
		seed++
	})
}

// TestTracerHotPathAllocations guards the tracing hooks added to the
// invocation hot path: with no tracer installed (the default) the nil check
// must be free, and even with a no-op tracer installed the event structs
// must stay on the stack — emission may not add a single allocation per
// invocation over the untraced engine.
func TestTracerHotPathAllocations(t *testing.T) {
	const maxInstr = 60_000

	bare := New(buildBenchProgram(t), DefaultConfig())
	base := steadyAllocs(t, bare, maxInstr)

	traced := New(buildBenchProgram(t), DefaultConfig())
	traced.SetTracer(obs.BaseTracer{})
	withTracer := steadyAllocs(t, traced, maxInstr)

	// The two engines run identical instruction streams, so any difference
	// is attributable to the emission sites.
	if withTracer-base >= 1 {
		t.Errorf("tracer emission allocates: %.1f allocs/invocation with no-op tracer, %.1f without", withTracer, base)
	}
	// Absolute backstop so the untraced hot path cannot quietly regress:
	// steady state measures 1 alloc per invocation (the returned stats
	// object); TestInvocationAllocs pins the tight ceiling.
	if base > 5 {
		t.Errorf("untraced invocation hot path allocates %.1f allocs/invocation, want <= 5", base)
	}
}

// BenchmarkInvocationTraced is BenchmarkInvocation with a no-op tracer
// installed: the difference between the two quantifies the cost of event
// emission when tracing is enabled.
func BenchmarkInvocationTraced(b *testing.B) {
	e := New(buildBenchProgram(b), DefaultConfig())
	e.SetTracer(obs.BaseTracer{})
	if _, err := e.RunInvocation(InvocationOptions{Seed: 1, MaxInstr: 120_000}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunInvocation(InvocationOptions{Seed: uint64(i), MaxInstr: 120_000}); err != nil {
			b.Fatal(err)
		}
	}
}
