package engine

import (
	"math/bits"
	"math/rand/v2"

	"ignite/internal/cache"
)

// dataBase is the start of the synthetic data segment. Addresses are a pure
// function of the data configuration, so successive invocations of the same
// function touch the same data — warm across back-to-back invocations, cold
// after a thrash.
const dataBase = 0x10_0000_0000

// dataStream generates the per-invocation data access stream: a hot/cold
// mix of random accesses over the function's data footprint plus sequential
// streams that the baseline stride prefetcher covers.
type dataStream struct {
	cfg DataConfig
	pcg *rand.PCG

	hotBytes  uint64
	coldBytes uint64

	// Sequential stream cursors (buffer scans, serialization).
	streams [4]uint64

	opCredit float64
}

func (d *dataStream) init(cfg *DataConfig) {
	d.cfg = *cfg
	if d.cfg.FootprintBytes < 1<<16 {
		d.cfg.FootprintBytes = 1 << 16
	}
	d.hotBytes = uint64(float64(d.cfg.FootprintBytes) * d.cfg.HotRegionFrac)
	if d.hotBytes < 4096 {
		d.hotBytes = 4096
	}
	d.coldBytes = d.cfg.FootprintBytes - d.hotBytes
	if d.coldBytes < 4096 {
		d.coldBytes = 4096
	}
}

// beginInvocation reseeds the stream and restarts the sequential cursors.
// The PCG is reseeded in place so steady-state invocations allocate nothing.
func (d *dataStream) beginInvocation(seed uint64) {
	if d.pcg == nil {
		d.pcg = rand.NewPCG(seed^0xdada_5eed, seed+0x1234_5678)
	} else {
		d.pcg.Seed(seed^0xdada_5eed, seed+0x1234_5678)
	}
	for i := range d.streams {
		d.streams[i] = dataBase + d.hotBytes + uint64(i)*(d.coldBytes/uint64(len(d.streams)))
	}
	d.opCredit = 0
}

// opsFor returns how many memory operations a block of n instructions
// performs, using a fractional accumulator so the long-run rate matches
// MemOpFrac exactly.
func (d *dataStream) opsFor(n int) int {
	d.opCredit += float64(n) * d.cfg.MemOpFrac
	ops := int(d.opCredit)
	d.opCredit -= float64(ops)
	return ops
}

// The draws below replicate math/rand/v2's Rand methods bit-exactly over the
// PCG source, minus the interface indirection (Rand holds its Source as an
// interface, so every draw is a virtual call). Bit-exactness with the 64-bit
// Rand paths is what keeps the golden documents stable. (On 32-bit platforms
// rand/v2 takes a different draw path, so goldens were never portable there.)

// f64 is Rand.Float64: 53 uniform bits scaled into [0,1).
func (d *dataStream) f64() float64 {
	return float64(d.pcg.Uint64()<<11>>11) / (1 << 53)
}

// u64n is Rand.Uint64N: power-of-two mask fast path, otherwise Lemire's
// multiply-shift with the rare bias-rejection loop.
func (d *dataStream) u64n(n uint64) uint64 {
	if n&(n-1) == 0 {
		return d.pcg.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(d.pcg.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(d.pcg.Uint64(), n)
		}
	}
	return hi
}

// next returns the next data address and whether it is a sequential-stream
// access (stride-prefetchable).
func (d *dataStream) next() (addr uint64, strided bool) {
	r := d.f64()
	switch {
	case r < d.cfg.StrideFrac:
		i := d.u64n(uint64(len(d.streams))) // Rand.IntN on a power of two
		d.streams[i] += 8
		// Wrap within the cold region to bound the footprint.
		if d.streams[i] >= dataBase+d.hotBytes+d.coldBytes {
			d.streams[i] = dataBase + d.hotBytes
		}
		return d.streams[i], true
	case r < d.cfg.StrideFrac+(1-d.cfg.StrideFrac)*d.cfg.HotFrac:
		return dataBase + d.u64n(d.hotBytes), false
	default:
		return dataBase + d.hotBytes + d.u64n(d.coldBytes), false
	}
}

// access performs one data access against the hierarchy and returns the
// back-end stall cycles it exposes after out-of-order latency hiding and
// miss-level parallelism.
func (e *Engine) dataAccess() float64 {
	addr, strided := e.data.next()
	lat, _ := e.hier.AccessData(addr)
	if strided {
		// The baseline stride prefetcher covers the stream's next
		// lines.
		la := e.hier.L1D.LineAddr(addr)
		e.hier.PrefetchData(la + cache.LineBytesConst)
		e.hier.PrefetchData(la + 2*cache.LineBytesConst)
	}
	exposed := float64(lat - e.data.cfg.HideLatency)
	if exposed <= 0 {
		return 0
	}
	mlp := e.data.cfg.MLP
	if mlp < 1 {
		mlp = 1
	}
	return exposed / mlp
}
