package engine

import "ignite/internal/cfg"

// Scratch is the engine's set of reusable per-invocation working buffers:
// the committed-trace buffer, the per-step BPU evaluation array, and the
// walker's RNG/per-block-counter scratch. Engines grow these lazily; a
// caller that simulates many short-lived engines (one per experiment cell)
// can detach the buffers from a finished engine and attach them to the next
// one — typically through a sync.Pool — so each cell does not re-grow
// megabytes of trace and eval storage from scratch.
type Scratch struct {
	steps []cfg.Step
	evals []stepEval
	walk  cfg.WalkScratch
}

// AttachScratch hands the engine a detached buffer set to reuse. It must be
// called before the first RunInvocation and the Scratch must not be shared
// with another live engine.
func (e *Engine) AttachScratch(s *Scratch) {
	if s == nil {
		return
	}
	e.steps = s.steps[:0]
	e.stepsShared = false
	e.evals = s.evals[:0]
	e.walkScratch = s.walk
}

// DetachScratch removes and returns the engine's working buffers, leaving
// the engine without scratch (a later RunInvocation would re-grow them).
// A caller-owned shared trace (InvocationOptions.Trace) is never captured:
// its backing array belongs to the trace cache, not the engine.
func (e *Engine) DetachScratch() *Scratch {
	s := &Scratch{evals: e.evals, walk: e.walkScratch}
	if !e.stepsShared {
		s.steps = e.steps
	}
	e.steps = nil
	e.stepsShared = false
	e.evals = nil
	e.walkScratch = cfg.WalkScratch{}
	return s
}
