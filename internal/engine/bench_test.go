package engine

import (
	"testing"

	"ignite/internal/cfg"
)

func buildBenchProgram(tb testing.TB) *cfg.Program {
	tb.Helper()
	p, _, err := cfg.Generate(cfg.GenParams{
		Seed:           11,
		CodeKiB:        96,
		BranchSites:    2500,
		MeanFuncBytes:  2048,
		IndirectFrac:   0.3,
		PeriodicFrac:   0.1,
		NeverTakenFrac: 0.15,
		HardFrac:       0.05,
		FixedLoopFrac:  0.7,
		MeanLoopTrips:  2.2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// BenchmarkInvocation measures the engine's per-invocation hot path:
// steady-state RunInvocation calls on one persistent engine, as the lukewarm
// protocol issues them. allocs/op is the tracked regression metric.
func BenchmarkInvocation(b *testing.B) {
	e := New(buildBenchProgram(b), DefaultConfig())
	// Warm the reusable buffers so b.N=1 runs measure steady state.
	if _, err := e.RunInvocation(InvocationOptions{Seed: 1, MaxInstr: 120_000}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunInvocation(InvocationOptions{Seed: uint64(i), MaxInstr: 120_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvocationThrashed interleaves a full thrash between invocations
// (the lukewarm regime), exercising the flush paths as well.
func BenchmarkInvocationThrashed(b *testing.B) {
	e := New(buildBenchProgram(b), DefaultConfig())
	if _, err := e.RunInvocation(InvocationOptions{Seed: 1, MaxInstr: 120_000}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Thrash(uint64(i))
		if _, err := e.RunInvocation(InvocationOptions{Seed: uint64(i), MaxInstr: 120_000}); err != nil {
			b.Fatal(err)
		}
	}
}
