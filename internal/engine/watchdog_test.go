package engine_test

import (
	"errors"
	"testing"

	"ignite/internal/engine"
	"ignite/internal/workload"
)

// TestMaxCyclesWatchdog proves the cycle-budget watchdog aborts a runaway
// invocation with ErrCycleBudget, and that a generous budget never alters
// the results of a run that completes within it.
func TestMaxCyclesWatchdog(t *testing.T) {
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	spec.TargetInstr = 200_000
	prog, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}

	run := func(maxCycles uint64) (*engine.InvocationStats, error) {
		c := engine.DefaultConfig()
		c.MaxCycles = maxCycles
		eng := engine.New(prog, c)
		eng.Thrash(1)
		return eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr()})
	}

	// A budget far below the invocation's real cost must trip the watchdog.
	if _, err := run(100); !errors.Is(err, engine.ErrCycleBudget) {
		t.Fatalf("tiny budget: got %v, want ErrCycleBudget", err)
	}

	// A generous budget must not perturb a completing run.
	unbounded, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := run(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Cycles != bounded.Cycles || unbounded.Instrs != bounded.Instrs {
		t.Errorf("budgeted run diverged: %v cycles vs %v", bounded.Cycles, unbounded.Cycles)
	}
}
