package engine

import "ignite/internal/cache"

// pendingFill describes an in-flight line fill.
type pendingFill struct {
	done uint64
	from cache.Level
}

// pendingKeyEmpty marks an empty slot. Keys are line-aligned addresses
// (multiples of the line size), so an odd value can never collide with one.
const pendingKeyEmpty = uint64(1)

// pendingTable is an open-addressed (linear-probe) map from line address to
// pendingFill, replacing the Go map on the per-fetch hot path. The table is
// never iterated, so probe order cannot leak into simulation results; lookups
// and inserts behave exactly like the map they replace.
type pendingTable struct {
	keys []uint64
	vals []pendingFill
	mask uint64
	n    int
}

func (t *pendingTable) init(capacity int) {
	if capacity < 16 {
		capacity = 16
	}
	// Round up to a power of two.
	c := 16
	for c < capacity {
		c <<= 1
	}
	t.keys = make([]uint64, c)
	t.vals = make([]pendingFill, c)
	for i := range t.keys {
		t.keys[i] = pendingKeyEmpty
	}
	t.mask = uint64(c - 1)
	t.n = 0
}

func (t *pendingTable) slot(la uint64) uint64 {
	// Fibonacci hash of the line index; line addresses share low zero bits.
	return ((la >> 6) * 0x9E3779B97F4A7C15) >> 32 & t.mask
}

// take returns and removes la's entry. Removal uses backward-shift deletion,
// keeping every remaining entry reachable without tombstones.
func (t *pendingTable) take(la uint64) (pendingFill, bool) {
	i := t.slot(la)
	for {
		k := t.keys[i]
		if k == pendingKeyEmpty {
			return pendingFill{}, false
		}
		if k == la {
			v := t.vals[i]
			t.del(i)
			return v, true
		}
		i = (i + 1) & t.mask
	}
}

// del removes slot i, shifting any displaced successors back into place.
func (t *pendingTable) del(i uint64) {
	t.n--
	for {
		t.keys[i] = pendingKeyEmpty
		j := i
		for {
			j = (j + 1) & t.mask
			k := t.keys[j]
			if k == pendingKeyEmpty {
				return
			}
			home := t.slot(k)
			// Can k legally move into the hole at i? Only if its home
			// position does not lie strictly between i (exclusive) and j.
			if (j-home)&t.mask >= (j-i)&t.mask {
				t.keys[i] = k
				t.vals[i] = t.vals[j]
				i = j
				break
			}
		}
	}
}

// noteMin inserts la→fill, keeping the earliest completion time when an
// entry already exists — the same keep-minimum rule as the map it replaced.
func (t *pendingTable) noteMin(la uint64, fill pendingFill) {
	i := t.slot(la)
	for {
		k := t.keys[i]
		if k == la {
			if fill.done < t.vals[i].done {
				t.vals[i] = fill
			}
			return
		}
		if k == pendingKeyEmpty {
			t.keys[i] = la
			t.vals[i] = fill
			t.n++
			if t.n*4 > len(t.keys)*3 {
				t.grow()
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

func (t *pendingTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldKeys) * 2)
	for i, k := range oldKeys {
		if k == pendingKeyEmpty {
			continue
		}
		j := t.slot(k)
		for t.keys[j] != pendingKeyEmpty {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
		t.n++
	}
}

// clear empties the table in place.
func (t *pendingTable) clear() {
	if t.n == 0 {
		return
	}
	for i := range t.keys {
		t.keys[i] = pendingKeyEmpty
	}
	t.n = 0
}
