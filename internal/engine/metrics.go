package engine

import (
	"ignite/internal/cache"
	"ignite/internal/obs"
)

// RegisterMetrics exposes the engine's microarchitectural statistics —
// previously reachable only as ad-hoc struct fields scattered across the
// BTB, caches, CBP, ITLB and traffic tracker — through the obs registry
// under one uniform namespace. Registration installs read-through sources
// (obs.CounterFunc/GaugeFunc), so the components keep their existing
// hot-path counters and pay nothing until a snapshot is taken.
//
// Metric names are stable: the experiment layer's per-cell exports and the
// golden-file schema test both key off them.
func (e *Engine) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	bs := e.btb.Stats()
	btbL := labels.With("component", "btb")
	reg.CounterFunc("btb.lookups", btbL, bs.Lookups.Value)
	reg.CounterFunc("btb.hits", btbL, bs.Hits.Value)
	reg.CounterFunc("btb.inserts", btbL, bs.Inserts.Value)
	reg.CounterFunc("btb.evictions", btbL, bs.Evictions.Value)
	reg.CounterFunc("btb.restored_inserts", btbL, bs.RestoredInserts.Value)
	reg.CounterFunc("btb.restored_used", btbL, bs.RestoredUsed.Value)
	reg.CounterFunc("btb.restored_evicted_untouched", btbL, bs.RestoredEvictedUU.Value)

	cs := e.cbp.Stats()
	cbpL := labels.With("component", "cbp")
	reg.CounterFunc("cbp.predictions", cbpL, cs.Predictions.Value)
	reg.CounterFunc("cbp.mispredicts", cbpL, cs.Mispredicts.Value)
	reg.CounterFunc("cbp.bim_sets", cbpL, e.cbp.Bimodal().Stats().Sets.Value)

	ts := e.itlb.Stats()
	tlbL := labels.With("component", "itlb")
	reg.CounterFunc("itlb.lookups", tlbL, ts.Lookups.Value)
	reg.CounterFunc("itlb.misses", tlbL, ts.Misses.Value)
	reg.CounterFunc("itlb.fills", tlbL, ts.Fills.Value)

	hs := e.hier.Stats()
	hierL := labels.With("component", "hierarchy")
	reg.CounterFunc("hier.instr_fetches", hierL, hs.InstrFetches.Value)
	reg.CounterFunc("hier.instr_l1_misses", hierL, hs.InstrL1Misses.Value)
	reg.CounterFunc("hier.instr_l2_misses", hierL, hs.InstrL2Misses.Value)
	reg.CounterFunc("hier.instr_llc_misses", hierL, hs.InstrLLCMisses.Value)
	reg.CounterFunc("hier.data_accesses", hierL, hs.DataAccesses.Value)

	for _, lvl := range []struct {
		name string
		c    *cache.Cache
	}{{"l1i", e.hier.L1I}, {"l1d", e.hier.L1D}, {"l2", e.hier.L2}, {"llc", e.hier.LLC}} {
		st := lvl.c.Stats()
		l := labels.With("component", "cache", "level", lvl.name)
		reg.CounterFunc("cache.accesses", l, st.Accesses.Value)
		reg.CounterFunc("cache.hits", l, st.Hits.Value)
		reg.CounterFunc("cache.misses", l, st.Misses.Value)
		reg.CounterFunc("cache.prefetch_useful", l, st.PrefetchUseful.Value)
		reg.CounterFunc("cache.prefetch_unused", l, st.PrefetchUnused.Value)
	}

	trafL := labels.With("component", "traffic")
	for s := 0; s < cache.NumSources; s++ {
		src := cache.Source(s)
		if src == cache.SrcData {
			continue
		}
		l := trafL.With("src", src.String())
		reg.CounterFunc("traffic.src_inserted", l, func() uint64 {
			ins, _ := e.traffic.SourceAccuracy(src)
			return ins
		})
		reg.CounterFunc("traffic.src_useful", l, func() uint64 {
			_, useful := e.traffic.SourceAccuracy(src)
			return useful
		})
	}
	reg.GaugeFunc("engine.now", labels.With("component", "engine"),
		func() float64 { return float64(e.now) })
}
