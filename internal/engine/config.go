// Package engine implements the cycle-approximate core model: a decoupled
// front-end (FDP) with a fetch target queue, BPU-gated prefetch lookahead,
// wrong-path fetch generation, pipeline resteer penalties, a simple
// out-of-order back-end latency-hiding model, and top-down CPI-stack
// accounting.
//
// The model is trace-driven over the committed path, but the front-end
// walks ahead of commit along the path the BPU would predict: lookahead
// advances only while the BTB identifies the next taken branch and the CBP
// predicts its direction correctly, exactly the gating the paper identifies
// as the reason cold-BPU prefetching fails (Section 3). Prefetch coverage,
// wrong-path pollution and flush penalties all emerge from this mechanism.
package engine

import (
	"ignite/internal/btb"
	"ignite/internal/cache"
	"ignite/internal/tlb"
)

// Config holds all core-model parameters. DefaultConfig follows the paper's
// Table 2 where applicable.
type Config struct {
	// Width is the maximum retire rate in instructions per cycle
	// (16 fetch bytes/cycle at 4-byte instructions).
	Width int
	// FTQDepth caps how many basic blocks the decoupled front-end may
	// run ahead of commit (32-entry FTQ).
	FTQDepth int

	// MispredictPenalty is the pipeline flush cost of a conditional or
	// indirect misprediction resolved at execute.
	MispredictPenalty int
	// DecodeResteerPenalty is the cheaper front-end resteer when a
	// BTB-missing unconditional branch is discovered at decode.
	DecodeResteerPenalty int
	// BoomerangFillBubble is the fetch bubble charged when Boomerang
	// repairs a BTB miss via its 6-cycle predecode path.
	BoomerangFillBubble int

	// NLDegree is the next-line prefetch degree (baseline prefetcher,
	// active in every configuration).
	NLDegree int
	// NLChainOnHit additionally triggers next-line prefetches on the
	// first hit to a prefetched line (chained streaming). Off by
	// default: with instantaneous issue at block granularity, chaining
	// makes NL unrealistically timely.
	NLChainOnHit bool
	// WrongPathBurst is the number of sequential wrong-path lines the
	// front-end fetches past an undetected divergence before resolution.
	WrongPathBurst int
	// RASDepth is the return address stack capacity; returns past an
	// overflowed stack mispredict (default 32).
	RASDepth int

	// Feature toggles.
	NLEnabled        bool
	FDPEnabled       bool
	BoomerangEnabled bool

	// Ideal front-end components (the paper's Ideal configuration).
	PerfectL1I bool
	PerfectBTB bool

	// MaxCycles is the per-invocation cycle budget (0 = unlimited). A
	// modeling bug that stops the trace from making progress would
	// otherwise hang a scheduler worker forever; with a budget the
	// invocation aborts with ErrCycleBudget and the cell fails cleanly.
	// The watchdog can only abort a run — it never alters the results of
	// one that completes — so, like tracing and checking, it is not part
	// of the experiment cell-cache key.
	MaxCycles uint64

	// Geometry.
	BTB  btb.Config
	ITLB tlb.Config
	Lat  cache.Latencies
	// L2SizeBytes overrides the L2 capacity (0 = Table 2's 1280 KiB).
	// The hierarchy keeps its 20-way geometry, so the size must leave a
	// power-of-two set count (320/640/1280/2560... KiB).
	L2SizeBytes int

	// Data-side model.
	Data DataConfig
}

// DataConfig parameterizes the synthetic data-access stream that produces
// the back-end component of the CPI stack. Data addresses are identical
// across invocations of the same function, so back-to-back invocations find
// warm data caches while lukewarm invocations do not — matching Figure 1's
// back-end stall growth.
type DataConfig struct {
	// MemOpFrac is the fraction of instructions that access memory.
	MemOpFrac float64
	// FootprintBytes is the data working set of one invocation.
	FootprintBytes uint64
	// HotFrac is the fraction of accesses that go to the hot subset.
	HotFrac float64
	// HotRegionFrac is the size of the hot subset as a fraction of the
	// footprint.
	HotRegionFrac float64
	// StrideFrac is the fraction of accesses that follow sequential
	// streams (caught by the baseline stride prefetcher).
	StrideFrac float64
	// HideLatency is the latency (cycles) the out-of-order back-end
	// hides per access; only the excess stalls retirement.
	HideLatency int
	// MLP is the average number of overlapping long-latency data misses.
	MLP float64
}

// DefaultConfig returns the Table 2 core with all prefetchers off except
// the always-on next-line baseline.
func DefaultConfig() Config {
	return Config{
		Width:                4,
		FTQDepth:             24,
		MispredictPenalty:    16,
		DecodeResteerPenalty: 8,
		BoomerangFillBubble:  0,
		NLDegree:             1,
		WrongPathBurst:       8,
		RASDepth:             32,
		NLEnabled:            true,
		BTB:                  btb.DefaultConfig(),
		ITLB:                 tlb.DefaultConfig(),
		Lat:                  cache.DefaultLatencies(),
		Data:                 DefaultDataConfig(),
	}
}

// DefaultDataConfig returns a moderate data-side profile.
func DefaultDataConfig() DataConfig {
	return DataConfig{
		MemOpFrac:      0.30,
		FootprintBytes: 768 << 10,
		HotFrac:        0.85,
		HotRegionFrac:  0.15,
		StrideFrac:     0.35,
		HideLatency:    30,
		MLP:            4,
	}
}
