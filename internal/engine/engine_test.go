package engine

import (
	"testing"

	"ignite/internal/cache"
	"ignite/internal/cfg"
)

// buildProgram makes a small deterministic program for engine tests.
func buildProgram(t *testing.T) *cfg.Program {
	t.Helper()
	p, _, err := cfg.Generate(cfg.GenParams{
		Seed:           11,
		CodeKiB:        96,
		BranchSites:    2500,
		MeanFuncBytes:  2048,
		IndirectFrac:   0.3,
		PeriodicFrac:   0.1,
		NeverTakenFrac: 0.15,
		HardFrac:       0.05,
		FixedLoopFrac:  0.7,
		MeanLoopTrips:  2.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, e *Engine, seed uint64) *InvocationStats {
	t.Helper()
	st, err := e.RunInvocation(InvocationOptions{Seed: seed, MaxInstr: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestInvocationBasicAccounting(t *testing.T) {
	e := New(buildProgram(t), DefaultConfig())
	st := run(t, e, 1)
	if st.Instrs == 0 || st.Steps == 0 {
		t.Fatal("empty invocation")
	}
	if st.Cycles <= float64(st.Instrs)/4 {
		t.Errorf("cycles %.0f below retirement floor", st.Cycles)
	}
	total := st.Stack.Retiring + st.Stack.Fetch + st.Stack.BadSpec + st.Stack.Backend
	if st.Cycles != total {
		t.Errorf("cycles %.1f != stack total %.1f", st.Cycles, total)
	}
	if st.CondBranches == 0 || st.TakenBranches == 0 {
		t.Error("no branches executed")
	}
	if st.CondMispredInitial > st.CondMispredicts {
		t.Error("initial mispredicts exceed total")
	}
}

func TestInvocationDeterminism(t *testing.T) {
	a := New(buildProgram(t), DefaultConfig())
	b := New(buildProgram(t), DefaultConfig())
	sa := run(t, a, 5)
	sb := run(t, b, 5)
	if sa.Cycles != sb.Cycles || sa.L1IMisses != sb.L1IMisses ||
		sa.CondMispredicts != sb.CondMispredicts || sa.BTBMisses != sb.BTBMisses {
		t.Errorf("nondeterministic: %+v vs %+v", sa, sb)
	}
}

func TestWarmupReducesMisses(t *testing.T) {
	e := New(buildProgram(t), DefaultConfig())
	first := run(t, e, 1)
	second := run(t, e, 2) // same function, warm state
	if second.L1IMisses >= first.L1IMisses {
		t.Errorf("warm L1I misses %d >= cold %d", second.L1IMisses, first.L1IMisses)
	}
	if second.BTBMisses >= first.BTBMisses {
		t.Errorf("warm BTB misses %d >= cold %d", second.BTBMisses, first.BTBMisses)
	}
	if second.CondMispredicts >= first.CondMispredicts {
		t.Errorf("warm mispredicts %d >= cold %d", second.CondMispredicts, first.CondMispredicts)
	}
}

func TestThrashRestoresColdBehaviour(t *testing.T) {
	e := New(buildProgram(t), DefaultConfig())
	run(t, e, 1)
	warm := run(t, e, 2)
	e.Thrash(99)
	cold := run(t, e, 3)
	if cold.L1IMisses <= warm.L1IMisses {
		t.Errorf("thrashed L1I misses %d <= warm %d", cold.L1IMisses, warm.L1IMisses)
	}
	if cold.CPI() <= warm.CPI() {
		t.Errorf("thrashed CPI %.3f <= warm %.3f", cold.CPI(), warm.CPI())
	}
}

func TestThrashSelectivePreservesBTB(t *testing.T) {
	e := New(buildProgram(t), DefaultConfig())
	run(t, e, 1)
	run(t, e, 2)
	occ := e.BTB().Occupancy()
	e.ThrashSelective(7, true, false, false)
	if got := e.BTB().Occupancy(); got != occ {
		t.Errorf("warm-BTB thrash changed occupancy %d -> %d", occ, got)
	}
	if e.Hierarchy().L1I.Occupancy() != 0 {
		t.Error("caches survived selective thrash")
	}
	// And preserving it should reduce BTB misses vs full thrash.
	kept := run(t, e, 3)
	e.Thrash(8)
	cold := run(t, e, 4)
	if kept.BTBMisses >= cold.BTBMisses {
		t.Errorf("warm BTB misses %d >= cold %d", kept.BTBMisses, cold.BTBMisses)
	}
}

func TestThrashSelectivePreservesCBP(t *testing.T) {
	e := New(buildProgram(t), DefaultConfig())
	run(t, e, 1)
	run(t, e, 2)
	e.ThrashSelective(7, false, true, true)
	warmCBP := run(t, e, 3)
	e.Thrash(8)
	coldCBP := run(t, e, 4)
	if warmCBP.CondMispredicts >= coldCBP.CondMispredicts {
		t.Errorf("warm CBP mispredicts %d >= cold %d", warmCBP.CondMispredicts, coldCBP.CondMispredicts)
	}
}

func TestFDPImprovesOverNL(t *testing.T) {
	prog := buildProgram(t)
	nl := New(prog, DefaultConfig())
	cfgF := DefaultConfig()
	cfgF.FDPEnabled = true
	fdp := New(prog, cfgF)
	// Warm both, then compare.
	run(t, nl, 1)
	run(t, fdp, 1)
	a := run(t, nl, 2)
	b := run(t, fdp, 2)
	if b.Stack.Fetch > a.Stack.Fetch*1.05 {
		t.Errorf("FDP fetch stall %.0f much worse than NL %.0f", b.Stack.Fetch, a.Stack.Fetch)
	}
}

func TestBoomerangReducesBTBMisses(t *testing.T) {
	prog := buildProgram(t)
	cfgF := DefaultConfig()
	cfgF.FDPEnabled = true
	fdp := New(prog, cfgF)
	cfgB := cfgF
	cfgB.BoomerangEnabled = true
	boom := New(prog, cfgB)
	fdp.Thrash(1)
	boom.Thrash(1)
	a := run(t, fdp, 2)
	b := run(t, boom, 2)
	if b.BTBMisses >= a.BTBMisses {
		t.Errorf("Boomerang BTB misses %d >= FDP %d", b.BTBMisses, a.BTBMisses)
	}
	if b.BoomerangFills == 0 {
		t.Error("no Boomerang fills")
	}
}

func TestIdealFrontEnd(t *testing.T) {
	prog := buildProgram(t)
	cfgI := DefaultConfig()
	cfgI.PerfectL1I = true
	cfgI.PerfectBTB = true
	ideal := New(prog, cfgI)
	ideal.Thrash(1)
	st := run(t, ideal, 2)
	if st.L1IMisses != 0 || st.Stack.Fetch != 0 {
		t.Errorf("perfect L1I missed: %d misses, %.1f fetch cycles", st.L1IMisses, st.Stack.Fetch)
	}
	if st.BTBMisses != 0 || st.TargetMispredicts != 0 {
		t.Errorf("perfect BTB missed: %d + %d", st.BTBMisses, st.TargetMispredicts)
	}
	// Conditional mispredictions remain (CBP is real).
	if st.CondMispredicts == 0 {
		t.Error("ideal front end should still mispredict conditionals")
	}
}

func TestMPKIHelpers(t *testing.T) {
	st := &InvocationStats{
		Instrs: 1000, L1IMisses: 5, BTBMisses: 3, TargetMispredicts: 1,
		CondMispredicts: 7, Cycles: 1500,
	}
	if st.L1IMPKI() != 5 || st.BTBMPKI() != 4 || st.CBPMPKI() != 7 || st.BPUMPKI() != 11 {
		t.Errorf("MPKI helpers: %v %v %v %v", st.L1IMPKI(), st.BTBMPKI(), st.CBPMPKI(), st.BPUMPKI())
	}
	if st.CPI() != 1.5 {
		t.Errorf("CPI = %v", st.CPI())
	}
	empty := &InvocationStats{}
	if empty.CPI() != 0 {
		t.Error("zero-instr CPI should be 0")
	}
}

func TestDataStreamDeterministicAndBounded(t *testing.T) {
	var d dataStream
	cfg := DefaultDataConfig()
	d.init(&cfg)
	d.beginInvocation(3)
	seen := map[uint64]bool{}
	lo := uint64(dataBase)
	hi := dataBase + cfg.FootprintBytes + 4096
	for i := 0; i < 10000; i++ {
		a, _ := d.next()
		if a < lo || a > hi {
			t.Fatalf("address %#x outside footprint [%#x,%#x]", a, lo, hi)
		}
		seen[a&^63] = true
	}
	if len(seen) < 100 {
		t.Error("data stream touches too few lines")
	}
	// Determinism.
	var d2 dataStream
	d2.init(&cfg)
	d2.beginInvocation(3)
	a1, _ := d2.next()
	d.beginInvocation(3)
	a2, _ := d.next()
	if a1 != a2 {
		t.Error("data stream not deterministic per seed")
	}
}

func TestOpsForMatchesRate(t *testing.T) {
	var d dataStream
	cfg := DefaultDataConfig()
	cfg.MemOpFrac = 0.3
	d.init(&cfg)
	d.beginInvocation(1)
	total := 0
	for i := 0; i < 1000; i++ {
		total += d.opsFor(10)
	}
	if total < 2900 || total > 3100 {
		t.Errorf("ops = %d for 10000 instrs at 0.3, want ~3000", total)
	}
}

func TestCompanionReceivesEvents(t *testing.T) {
	e := New(buildProgram(t), DefaultConfig())
	tc := &testCompanion{}
	e.AddCompanion(tc)
	run(t, e, 1)
	if tc.begins != 1 || tc.ticks == 0 || tc.fetches == 0 {
		t.Errorf("companion events: begins=%d ticks=%d fetches=%d", tc.begins, tc.ticks, tc.fetches)
	}
}

type testCompanion struct {
	begins, ticks, fetches int
}

func (c *testCompanion) Name() string     { return "test" }
func (c *testCompanion) BeginInvocation() { c.begins++ }
func (c *testCompanion) Tick(uint64, int) { c.ticks++ }
func (c *testCompanion) OnInstrFetch(la uint64, lvl cache.Level, now uint64) {
	c.fetches++
}
