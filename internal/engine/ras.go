package engine

// ras is the return address stack: a fixed-depth circular predictor for
// return targets. Calls push their fall-through address; returns pop. When
// the call depth exceeds the RAS capacity, older entries are overwritten
// and the eventual returns to them mispredict — the classic RAS-overflow
// behaviour of deep call chains.
type ras struct {
	entries []uint64
	top     int // index of the next free slot
	depth   int // current logical depth (may exceed len(entries))
	// Overflows counts pushes that overwrote a live entry.
	overflows uint64
}

func newRAS(capacity int) *ras {
	if capacity < 1 {
		capacity = 1
	}
	return &ras{entries: make([]uint64, capacity)}
}

// push records a call's return address.
func (r *ras) push(addr uint64) {
	if r.depth >= len(r.entries) {
		r.overflows++
	}
	r.entries[r.top] = addr
	r.top = (r.top + 1) % len(r.entries)
	r.depth++
}

// pop predicts the target of a return and reports whether the prediction
// is trustworthy (false once the stack has wrapped past this depth).
func (r *ras) pop() (addr uint64, valid bool) {
	if r.depth == 0 {
		return 0, false
	}
	wrapped := r.depth > len(r.entries)
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top], !wrapped
}

// reset clears the stack (pipeline flush on context switch).
func (r *ras) reset() {
	r.top = 0
	r.depth = 0
}
