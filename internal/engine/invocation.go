package engine

import (
	"errors"
	"fmt"

	"ignite/internal/btb"
	"ignite/internal/cache"
	"ignite/internal/cfg"
	"ignite/internal/obs"
	"ignite/internal/stats"
)

// InvocationOptions controls one simulated invocation.
type InvocationOptions struct {
	// Seed drives the dynamic trace (branch outcomes, loop trips) and
	// the data stream.
	Seed uint64
	// MaxInstr caps the invocation length (0 = run to completion).
	MaxInstr uint64
	// Trace optionally supplies the committed trace for this (Seed,
	// MaxInstr) pair, exactly as Program.Walk would generate it, so callers
	// simulating many configurations of one workload can generate each
	// trace once and share it. The engine reads the slice without
	// modifying it; TraceResult must carry the corresponding walk summary.
	Trace       []cfg.Step
	TraceResult cfg.WalkResult
}

// InvocationStats reports everything measured during one invocation.
type InvocationStats struct {
	Instrs uint64
	Steps  uint64
	Cycles float64
	Stack  stats.CPIStack

	L1IMisses          uint64 // correct-path demand L1-I misses
	OffChipInstrMisses uint64 // correct-path instruction fetches from DRAM
	ITLBMisses         uint64
	RASOverflows       uint64 // calls that overwrote a live RAS entry

	CondBranches       uint64
	TakenBranches      uint64
	BTBMisses          uint64 // taken branches unidentified by the BTB
	TargetMispredicts  uint64 // identified but wrong target (indirect/alias)
	CondMispredicts    uint64
	CondMispredInitial uint64 // mispredictions on a branch's first execution this invocation
	InducedMispredicts uint64 // mispredictions caused by an incorrect Ignite BIM initialization
	Resteers           uint64
	BoomerangFills     uint64 // BTB misses repaired by Boomerang predecode

	Truncated bool
}

// CPI returns cycles per instruction.
func (s *InvocationStats) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return s.Cycles / float64(s.Instrs)
}

// L1IMPKI returns L1 instruction misses per kilo-instruction.
func (s *InvocationStats) L1IMPKI() float64 { return stats.MPKI(s.L1IMisses, s.Instrs) }

// BTBMPKI returns BTB misses (unidentified taken branches plus target
// mispredictions) per kilo-instruction.
func (s *InvocationStats) BTBMPKI() float64 {
	return stats.MPKI(s.BTBMisses+s.TargetMispredicts, s.Instrs)
}

// CBPMPKI returns conditional direction mispredictions per kilo-instruction.
func (s *InvocationStats) CBPMPKI() float64 { return stats.MPKI(s.CondMispredicts, s.Instrs) }

// BPUMPKI returns the combined BPU miss rate (BTB + CBP), the quantity the
// paper plots as "BPU MPKI".
func (s *InvocationStats) BPUMPKI() float64 { return s.BTBMPKI() + s.CBPMPKI() }

// ErrCycleBudget reports an invocation that exceeded Config.MaxCycles —
// the runaway-simulation watchdog. Callers classify it as a deadline-style
// failure (non-transient: retrying a deterministic runaway reruns it).
var ErrCycleBudget = errors.New("cycle budget exceeded")

// RunInvocation simulates one invocation of the program's handler on the
// current microarchitectural state.
func (e *Engine) RunInvocation(opt InvocationOptions) (*InvocationStats, error) {
	st := new(InvocationStats)
	if err := e.runInvocationInto(st, opt); err != nil {
		return nil, err
	}
	return st, nil
}

// RunInvocations simulates a train of invocations back to back — a cell's
// whole warm-up/record/measure sequence in one call. All results share one
// backing array, so the per-invocation result allocation of the serial path
// is paid once per train. between, when non-nil, runs immediately before
// opts[i] is read and simulated: the slot where the lukewarm protocol
// thrashes state, arms record/replay mechanisms and resets traffic
// accounting. Because opts[i] is read only after the hook returns, callers
// may populate it inside the hook (e.g. to attach a lazily generated
// trace). Results are bit-identical to calling RunInvocation in a loop with
// the same interleaved actions.
func (e *Engine) RunInvocations(opts []InvocationOptions, between func(i int) error) ([]*InvocationStats, error) {
	sts := make([]InvocationStats, len(opts))
	out := make([]*InvocationStats, len(opts))
	for i := range opts {
		if between != nil {
			if err := between(i); err != nil {
				return nil, err
			}
		}
		if err := e.runInvocationInto(&sts[i], opts[i]); err != nil {
			return nil, fmt.Errorf("engine: invocation %d of %d: %w", i, len(opts), err)
		}
		out[i] = &sts[i]
	}
	return out, nil
}

// runInvocationInto is the body shared by RunInvocation and RunInvocations;
// it overwrites *st with the invocation's measurements.
func (e *Engine) runInvocationInto(st *InvocationStats, opt InvocationOptions) error {
	// Materialize the committed trace; the decoupled front-end needs to
	// look ahead of commit along it.
	var res cfg.WalkResult
	if opt.Trace != nil {
		e.steps = opt.Trace
		e.stepsShared = true
		res = opt.TraceResult
	} else {
		if e.stepsShared {
			e.steps = nil // don't clobber the shared backing array
			e.stepsShared = false
		}
		e.steps = e.steps[:0]
		var err error
		res, err = e.prog.Walk(0,
			cfg.WalkOptions{Seed: opt.Seed, MaxInstr: opt.MaxInstr, Scratch: &e.walkScratch},
			e.emitStep)
		if err != nil {
			return fmt.Errorf("engine: trace generation: %w", err)
		}
	}
	n := len(e.steps)
	if n == 0 {
		return fmt.Errorf("engine: empty trace")
	}
	if cap(e.evals) < n {
		e.evals = make([]stepEval, n)
	} else {
		e.evals = e.evals[:n]
		clear(e.evals)
	}

	e.data.beginInvocation(opt.Seed)
	// The trace may have been truncated mid-call-chain last invocation;
	// a fresh invocation starts with an empty architectural stack.
	e.ras.reset()
	for _, c := range e.companions {
		c.BeginInvocation()
	}

	if e.tracer != nil {
		e.tracer.InvocationStart(obs.InvocationStartEvent{Seed: opt.Seed, Now: e.now})
	}

	*st = InvocationStats{
		Instrs:    res.Instrs,
		Steps:     res.Steps,
		Truncated: res.Truncated,
	}
	e.seenGen++
	if e.seenGen == 0 { // stamp wrapped: stale entries could alias
		clear(e.seen)
		e.seenGen = 1
	}

	lastLine := ^uint64(0)
	lookPtr := 0    // next step the front-end lookahead will prefetch
	blockedAt := -1 // step index of an unresolved front-end divergence
	startNow := e.nowf

	for i := 0; i < n; i++ {
		if e.cfg.MaxCycles != 0 && e.nowf-startNow > float64(e.cfg.MaxCycles) {
			return fmt.Errorf(
				"engine: invocation seed %d aborted after %.0f cycles at step %d/%d (budget %d): %w",
				opt.Seed, e.nowf-startNow, i, n, e.cfg.MaxCycles, ErrCycleBudget)
		}
		b := e.prog.Block(e.steps[i].Block)

		// 1. Extend the BPU-gated prefetch lookahead.
		if e.cfg.FDPEnabled && !e.cfg.PerfectL1I && blockedAt < 0 {
			if lookPtr < i+1 {
				lookPtr = i + 1
			}
			limit := i + e.cfg.FTQDepth
			for lookPtr < n && lookPtr <= limit {
				j := lookPtr
				bj := e.prog.Block(e.steps[j].Block)
				e.prefetchBlockLines(bj)
				ev := e.evalStep(j, bj, true)
				lookPtr++
				if !ev.follows {
					blockedAt = j
					break
				}
			}
		}

		// 2. Demand-fetch the block's cache lines.
		fetchStall := e.fetchBlock(b, &lastLine, st)

		// 3. Resolve the terminator against the front-end's decision.
		penalty, bubble, resteer := e.resolveBranch(i, b, st)
		fetchStall += bubble
		if resteer {
			st.Resteers++
			e.wrongPathBurst(i, b)
			blockedAt = -1
			lookPtr = i + 1
		} else if blockedAt == i {
			// The lookahead gate was pessimistic (its prediction was
			// made with older state); resume without a flush.
			blockedAt = -1
			lookPtr = i + 1
		}

		// 4. Data-side accesses.
		backend := 0.0
		for k := e.data.opsFor(b.NumInstr); k > 0; k-- {
			backend += e.dataAccess()
		}

		// 5. Cycle accounting.
		base := float64(b.NumInstr) / float64(e.cfg.Width)
		st.Stack.Retiring += base
		st.Stack.Fetch += fetchStall
		st.Stack.BadSpec += penalty
		st.Stack.Backend += backend
		stepCycles := base + fetchStall + penalty + backend
		e.nowf += stepCycles
		e.now = uint64(e.nowf)
		e.fetchClock += base + fetchStall + penalty

		for _, c := range e.tickComps {
			c.Tick(e.now, int(stepCycles)+1)
		}
	}

	st.Cycles = st.Stack.Total()
	if e.tracer != nil {
		e.tracer.InvocationEnd(obs.InvocationEndEvent{
			Seed: opt.Seed, Now: e.now,
			Instrs: st.Instrs, Cycles: st.Cycles, CPI: st.CPI(),
		})
	}
	if e.invocationCheck != nil {
		if err := e.invocationCheck(st); err != nil {
			return fmt.Errorf("engine: invariant check after invocation (seed %d): %w", opt.Seed, err)
		}
	}
	return nil
}

// fetchBlock issues demand fetches for every cache line the block spans and
// returns the exposed fetch stall cycles.
func (e *Engine) fetchBlock(b *cfg.Block, lastLine *uint64, st *InvocationStats) float64 {
	if e.cfg.PerfectL1I {
		return 0
	}
	stall := 0.0
	start := b.Addr &^ (cache.LineBytesConst - 1)
	end := b.BranchPC() &^ (cache.LineBytesConst - 1)
	for la := start; la <= end; la += cache.LineBytesConst {
		if la == *lastLine {
			continue
		}
		*lastLine = la

		if extra, hit := e.itlb.Translate(la); !hit {
			st.ITLBMisses++
			stall += float64(extra)
		}

		lat, lvl, firstTouch := e.hier.FetchInstr(la, false)
		if lvl == cache.LvlL1I {
			// The line may still be in flight from a recent prefetch
			// or wrong-path fill: the demand access merges with the
			// outstanding miss, paying the remaining latency —
			// architecturally still an L1-I miss served by the level
			// the fill came from.
			effLvl := cache.LvlL1I
			if pf, ok := e.takePending(la); ok {
				if ft := float64(pf.done); ft > e.fetchClock {
					stall += ft - e.fetchClock
					st.L1IMisses++
					effLvl = pf.from
					if pf.from == cache.LvlMem {
						st.OffChipInstrMisses++
					}
				}
			}
			if firstTouch && e.cfg.NLEnabled && e.cfg.NLChainOnHit {
				e.nextLinePrefetch(la)
			}
			for _, c := range e.fetchComps {
				c.OnInstrFetch(la, effLvl, e.now)
			}
			continue
		}
		st.L1IMisses++
		if lvl == cache.LvlMem {
			st.OffChipInstrMisses++
		}
		stall += float64(lat - e.cfg.Lat.L1I)
		if e.cfg.NLEnabled {
			e.nextLinePrefetch(la)
		}
		for _, c := range e.fetchComps {
			c.OnInstrFetch(la, lvl, e.now)
		}
	}
	return stall
}

// nextLinePrefetch implements the aggressive baseline next-line prefetcher:
// triggered on L1-I misses and on first hits to prefetched lines.
func (e *Engine) nextLinePrefetch(la uint64) {
	for d := 1; d <= e.cfg.NLDegree; d++ {
		next := la + uint64(d)*cache.LineBytesConst
		if from, issued := e.hier.PrefetchInstr(next, cache.SrcNextLine, cache.LvlL1I); issued {
			e.notePending(next, from)
		}
	}
}

// prefetchBlockLines is the FDP prefetch path: the lines of an upcoming
// block are brought into the L1-I.
func (e *Engine) prefetchBlockLines(b *cfg.Block) {
	start := b.Addr &^ (cache.LineBytesConst - 1)
	end := b.BranchPC() &^ (cache.LineBytesConst - 1)
	for la := start; la <= end; la += cache.LineBytesConst {
		if from, issued := e.hier.PrefetchInstr(la, cache.SrcFDP, cache.LvlL1I); issued {
			e.notePending(la, from)
		}
	}
}

// takePending consumes la's in-flight fill record, if any. The count check
// keeps the steady-state fetch path (nothing in flight) to one load.
func (e *Engine) takePending(la uint64) (pendingFill, bool) {
	if e.pending.n == 0 {
		return pendingFill{}, false
	}
	return e.pending.take(la)
}

// notePending records when an in-flight fill will complete.
func (e *Engine) notePending(la uint64, from cache.Level) {
	lat := 0
	switch from {
	case cache.LvlL2:
		lat = e.cfg.Lat.L2
	case cache.LvlLLC:
		lat = e.cfg.Lat.LLC
	case cache.LvlMem:
		lat = e.cfg.Lat.Mem
	}
	if lat == 0 {
		return
	}
	done := uint64(e.fetchClock) + uint64(lat)
	e.pending.noteMin(la, pendingFill{done: done, from: from})
}

// evalStep performs (or recalls) the front-end's one-time BPU evaluation of
// a step: BTB lookup, direction prediction, Boomerang repair — deciding
// whether the predicted stream continues on the correct path. Boomerang can
// only repair BTB misses while the lookahead is running (inLookahead); a
// lazy commit-time evaluation after a resteer sees the raw BTB miss.
func (e *Engine) evalStep(j int, b *cfg.Block, inLookahead bool) *stepEval {
	ev := &e.evals[j]
	if ev.done {
		return ev
	}
	ev.done = true
	taken := e.steps[j].Taken
	if b.Kind == cfg.BranchNone {
		ev.follows = true
		return ev
	}
	pc := b.BranchPC()
	actualTarget := e.actualTarget(j, b)

	if e.cfg.PerfectBTB {
		ev.btbHit = true
		ev.target = actualTarget
		if b.Kind == cfg.BranchCond {
			ev.predTaken = e.cbp.Predict(pc)
			ev.follows = ev.predTaken == taken
		} else {
			ev.follows = true
		}
		return ev
	}

	ent, hit := e.btb.Lookup(pc)
	ev.btbHit = hit
	if hit {
		ev.target = ent.Target
	}

	// Boomerang repairs BTB misses for direct branches (and returns,
	// identified by predecode) by fetching and predecoding the block.
	if !hit && inLookahead && e.cfg.BoomerangEnabled && b.Kind != cfg.BranchIndirectJump && b.Kind != cfg.BranchIndirectCall {
		tgt := uint64(0)
		if b.Target != cfg.NoBlock {
			tgt = e.prog.Block(b.Target).Addr
		}
		e.btb.Insert(btb.Entry{PC: pc, Target: tgt, Kind: b.Kind}, false)
		if from, issued := e.hier.PrefetchInstr(tgt, cache.SrcBoomerang, cache.LvlL1I); issued {
			e.notePending(tgt, from)
		}
		ev.btbHit = true
		ev.boomerang = true
		ev.target = tgt
	}

	switch b.Kind {
	case cfg.BranchCond:
		// The lookahead gate uses the predictor's current state; the
		// commit path re-predicts with up-to-date history (run-ahead
		// BPUs update history speculatively, so on the correct path
		// their prediction state matches commit state).
		ev.predTaken = e.cbp.Predict(pc)
		if taken {
			ev.follows = ev.btbHit && ev.predTaken && ev.target == actualTarget
		} else {
			// A predicted-taken branch needs a BTB target to actually
			// redirect fetch; without one the front end falls through,
			// which happens to be correct.
			ev.follows = !(ev.predTaken && ev.btbHit)
		}
	case cfg.BranchUncond, cfg.BranchCall:
		ev.follows = ev.btbHit && ev.target == actualTarget
	case cfg.BranchReturn:
		// The RAS supplies the target once the BTB identifies the
		// return.
		ev.follows = ev.btbHit
	case cfg.BranchIndirectJump, cfg.BranchIndirectCall:
		ev.follows = ev.btbHit && ev.target == actualTarget
	}
	return ev
}

// actualTarget returns the dynamic destination of step j's terminator: the
// next block in the trace (or the static target for the final step).
func (e *Engine) actualTarget(j int, b *cfg.Block) uint64 {
	if !e.steps[j].Taken {
		return 0
	}
	if j+1 < len(e.steps) {
		return e.prog.Block(e.steps[j+1].Block).Addr
	}
	if b.Target != cfg.NoBlock {
		return e.prog.Block(b.Target).Addr
	}
	return 0
}

// resolveBranch commits step i's terminator: counts MPKI events, charges
// resteer penalties, trains the CBP, and inserts taken branches into the
// BTB (firing Ignite's record hook). It returns the bad-speculation
// penalty, any Boomerang fetch bubble, and whether the front end resteered.
func (e *Engine) resolveBranch(i int, b *cfg.Block, st *InvocationStats) (penalty, bubble float64, resteer bool) {
	if b.Kind == cfg.BranchNone {
		return 0, 0, false
	}
	fresh := !e.evals[i].done
	ev := e.evalStep(i, b, false)
	taken := e.steps[i].Taken
	pc := b.BranchPC()
	actualTarget := e.actualTarget(i, b)

	if ev.boomerang {
		bubble = float64(e.cfg.BoomerangFillBubble)
		st.BoomerangFills++
	}

	switch b.Kind {
	case cfg.BranchCond:
		st.CondBranches++
		blk := e.steps[i].Block
		seenBefore := e.seen[blk] == e.seenGen
		e.seen[blk] = e.seenGen
		predTaken := ev.predTaken
		if !fresh {
			// The eval came from the front-end lookahead; predictor
			// history has advanced since, so re-predict with commit-time
			// state. A fresh commit-time eval just made this exact
			// (read-only) Predict call, so its answer is reused as-is.
			predTaken = e.cbp.Predict(pc)
			ev.predTaken = predTaken
		}
		mispred := predTaken != taken
		if mispred {
			st.CondMispredicts++
			if !seenBefore {
				st.CondMispredInitial++
			}
			// A misprediction on an untrained Ignite-initialized
			// counter is an induced misprediction (Figure 9c) when
			// the bimodal drove the (wrong) prediction.
			if e.cbp.Bimodal().WasRestored(pc) && e.cbp.Bimodal().Predict(pc) == ev.predTaken {
				st.InducedMispredicts++
			}
		}
		if taken {
			st.TakenBranches++
			switch {
			case !ev.btbHit:
				st.BTBMisses++
				penalty = float64(e.cfg.MispredictPenalty)
				resteer = true
			case !predTaken:
				penalty = float64(e.cfg.MispredictPenalty)
				resteer = true
			case ev.target != actualTarget:
				st.TargetMispredicts++
				penalty = float64(e.cfg.MispredictPenalty)
				resteer = true
			}
		} else if predTaken && ev.btbHit {
			penalty = float64(e.cfg.MispredictPenalty)
			resteer = true
		}
		e.cbp.Update(pc, taken)

	case cfg.BranchUncond, cfg.BranchCall:
		st.TakenBranches++
		switch {
		case !ev.btbHit:
			st.BTBMisses++
			penalty = float64(e.cfg.DecodeResteerPenalty)
			resteer = true
		case ev.target != actualTarget:
			st.TargetMispredicts++
			penalty = float64(e.cfg.MispredictPenalty)
			resteer = true
		}

	case cfg.BranchReturn:
		st.TakenBranches++
		rasTarget, rasValid := e.ras.pop()
		switch {
		case !ev.btbHit:
			st.BTBMisses++
			penalty = float64(e.cfg.DecodeResteerPenalty)
			resteer = true
		case !e.cfg.PerfectBTB && actualTarget != 0 && (!rasValid || rasTarget != actualTarget):
			// Identified as a return but the RAS prediction is wrong
			// (overflowed or corrupted stack). The invocation's
			// outermost return (actualTarget 0, nothing below it on
			// the stack) is exempt, as is the ideal front end.
			st.TargetMispredicts++
			penalty = float64(e.cfg.MispredictPenalty)
			resteer = true
		}

	case cfg.BranchIndirectJump, cfg.BranchIndirectCall:
		st.TakenBranches++
		switch {
		case !ev.btbHit:
			st.BTBMisses++
			penalty = float64(e.cfg.MispredictPenalty)
			resteer = true
		case ev.target != actualTarget:
			st.TargetMispredicts++
			penalty = float64(e.cfg.MispredictPenalty)
			resteer = true
		}
	}

	if b.Kind.IsCall() {
		before := e.ras.overflows
		e.ras.push(b.EndAddr())
		st.RASOverflows += e.ras.overflows - before
	}
	if taken && !e.cfg.PerfectBTB {
		e.btb.Insert(btb.Entry{PC: pc, Target: actualTarget, Kind: b.Kind}, false)
	}
	return penalty, bubble, resteer
}

// wrongPathBurst models the sequential wrong-path fetches the front end
// issues past an undetected divergence: cache pollution and useless memory
// bandwidth, but no commit-path stall (they overlap the flush).
func (e *Engine) wrongPathBurst(i int, b *cfg.Block) {
	if e.cfg.PerfectL1I || e.cfg.WrongPathBurst <= 0 {
		return
	}
	ev := &e.evals[i]
	taken := e.steps[i].Taken
	var start uint64
	switch {
	case taken && (!ev.btbHit || !ev.predTaken):
		// Front end sailed past the branch sequentially.
		start = b.EndAddr()
	case taken && ev.target != 0:
		// Went to a stale target.
		start = ev.target
	case !taken && ev.btbHit:
		// Redirected to the BTB target although the branch fell through.
		start = ev.target
	default:
		start = b.EndAddr()
	}
	// The wrong path advances only until the flush arrives: line hits cost
	// fetch cycles, and the first couple of misses saturate the fetch MSHRs
	// for the rest of the window. This bounds the (real) prefetch side
	// effect wrong-path execution has.
	la := start &^ (cache.LineBytesConst - 1)
	budget := float64(e.cfg.MispredictPenalty)
	misses := 0
	for k := 0; k < e.cfg.WrongPathBurst && budget > 0; k++ {
		addr := la + uint64(k)*cache.LineBytesConst
		if e.hier.L1I.Contains(addr) {
			budget -= 4 // consume the resident line
			continue
		}
		_, lvl, _ := e.hier.FetchInstr(addr, true)
		// The fill is in flight; a correct-path fetch arriving before it
		// completes still pays (most of) the miss latency.
		e.notePending(addr, lvl)
		misses++
		if misses >= 2 {
			break
		}
		budget -= 8
	}
}
