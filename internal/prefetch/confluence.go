package prefetch

import (
	"ignite/internal/btb"
	"ignite/internal/cache"
	"ignite/internal/cfg"
	"ignite/internal/engine"
)

// ConfluenceConfig follows the paper's Section 5.3: an 8K-entry index and a
// 32K-entry history buffer with an LLC-like 50-cycle metadata access
// latency (the paper models dedicated structures rather than LLC
// virtualization).
type ConfluenceConfig struct {
	HistoryEntries int
	IndexEntries   int
	StreamWindow   int // lines prefetched per trigger
	MetadataLat    int // cycles before stream prefetches start arriving
}

// DefaultConfluenceConfig returns the paper's parameters.
func DefaultConfluenceConfig() ConfluenceConfig {
	return ConfluenceConfig{
		HistoryEntries: 32 * 1024,
		IndexEntries:   8 * 1024,
		StreamWindow:   12,
		MetadataLat:    50,
	}
}

// Confluence is a temporal-streaming unified instruction + BTB prefetcher:
// it records the L1-I miss history, and on a later miss to a known line it
// replays the following stream into the L1-I, predecoding the prefetched
// blocks to fill the BTB with the (direct) branches they contain.
type Confluence struct {
	cfg ConfluenceConfig
	eng *engine.Engine

	history []uint64
	histPos int
	index   map[uint64]int
	indexQ  []uint64 // FIFO of indexed lines for capacity eviction

	// lineBranches maps a code line to the direct-branch BTB entries its
	// predecode extracts — built once from the program.
	lineBranches map[uint64][]btb.Entry

	recording bool
	armed     bool

	// Stats
	Triggers        int
	LinesPrefetched int
	BTBFills        int
}

// NewConfluence builds a Confluence instance for the engine's program.
func NewConfluence(cfg ConfluenceConfig, eng *engine.Engine) *Confluence {
	if cfg.HistoryEntries <= 0 {
		cfg = DefaultConfluenceConfig()
	}
	c := &Confluence{
		cfg:          cfg,
		eng:          eng,
		history:      make([]uint64, 0, cfg.HistoryEntries),
		index:        make(map[uint64]int, cfg.IndexEntries),
		lineBranches: buildLineBranches(eng.Program()),
	}
	return c
}

// buildLineBranches precomputes, per code line, the direct branches a
// predecoder would extract from the line's instruction bytes.
func buildLineBranches(p *cfg.Program) map[uint64][]btb.Entry {
	m := make(map[uint64][]btb.Entry)
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if !b.CanBeTaken() || b.Kind.IsIndirect() && b.Kind != cfg.BranchReturn {
			continue // indirect targets are not statically extractable
		}
		var target uint64
		if b.Target != cfg.NoBlock {
			target = p.Block(b.Target).Addr
		}
		la := b.BranchPC() &^ (cache.LineBytesConst - 1)
		m[la] = append(m[la], btb.Entry{PC: b.BranchPC(), Target: target, Kind: b.Kind})
	}
	return m
}

var _ engine.Companion = (*Confluence)(nil)

// Name implements engine.Companion.
func (c *Confluence) Name() string { return "confluence" }

// StartRecord begins recording the L1-I miss history.
func (c *Confluence) StartRecord() {
	c.recording = true
}

// StopRecord ends history recording (the history persists for replay).
func (c *Confluence) StopRecord() { c.recording = false }

// ArmReplay enables stream replay on L1-I misses.
func (c *Confluence) ArmReplay() { c.armed = true }

// DisarmReplay disables replay.
func (c *Confluence) DisarmReplay() { c.armed = false }

// BeginInvocation implements engine.Companion.
func (c *Confluence) BeginInvocation() {
	c.Triggers = 0
	c.LinesPrefetched = 0
	c.BTBFills = 0
}

// Tick implements engine.Companion (Confluence is event-driven).
func (c *Confluence) Tick(now uint64, cycles int) {}

// TickPassive declares the no-op Tick to the engine, which then skips
// Confluence in the per-step tick fan-out.
func (c *Confluence) TickPassive() {}

// OnInstrFetch implements engine.Companion: record the miss stream and/or
// trigger stream replay.
func (c *Confluence) OnInstrFetch(lineAddr uint64, lvl cache.Level, now uint64) {
	if lvl == cache.LvlL1I {
		return // clean hit: neither a recordable nor a triggering miss
	}
	if c.recording {
		c.recordMiss(lineAddr)
	}
	if c.armed {
		c.trigger(lineAddr)
	}
}

func (c *Confluence) recordMiss(lineAddr uint64) {
	if len(c.history) < c.cfg.HistoryEntries {
		c.history = append(c.history, lineAddr)
		c.setIndex(lineAddr, len(c.history)-1)
		return
	}
	// Circular overwrite.
	old := c.history[c.histPos]
	if pos, ok := c.index[old]; ok && pos == c.histPos {
		delete(c.index, old)
	}
	c.history[c.histPos] = lineAddr
	c.setIndex(lineAddr, c.histPos)
	c.histPos = (c.histPos + 1) % c.cfg.HistoryEntries
}

func (c *Confluence) setIndex(lineAddr uint64, pos int) {
	if _, exists := c.index[lineAddr]; !exists {
		if len(c.index) >= c.cfg.IndexEntries && len(c.indexQ) > 0 {
			// Capacity eviction, FIFO order.
			victim := c.indexQ[0]
			c.indexQ = c.indexQ[1:]
			delete(c.index, victim)
		}
		c.indexQ = append(c.indexQ, lineAddr)
	}
	c.index[lineAddr] = pos
}

// trigger replays the stream following lineAddr's last recorded occurrence.
func (c *Confluence) trigger(lineAddr uint64) {
	pos, ok := c.index[lineAddr]
	if !ok {
		return
	}
	c.Triggers++
	hier := c.eng.Hierarchy()
	n := len(c.history)
	for k := 1; k <= c.cfg.StreamWindow; k++ {
		idx := pos + k
		if idx >= n {
			break
		}
		la := c.history[idx]
		if from, issued := hier.PrefetchInstr(la, cache.SrcConfluence, cache.LvlL1I); issued {
			// Metadata lookup latency delays stream timeliness.
			c.eng.NotePendingLine(la, from, c.cfg.MetadataLat)
			c.LinesPrefetched++
		}
		// Predecode fills the BTB with the line's direct branches.
		for _, e := range c.lineBranches[la] {
			if !c.eng.BTB().Contains(e.PC) {
				c.eng.BTB().Insert(e, false)
				c.BTBFills++
			}
		}
	}
}
