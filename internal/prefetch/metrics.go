package prefetch

import "ignite/internal/obs"

// RegisterMetrics exposes Jukebox's record/replay statistics through the
// obs registry as read-through sources.
func (j *Jukebox) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	l := labels.With("component", "jukebox")
	reg.CounterFunc("jukebox.regions_recorded", l, func() uint64 { return uint64(j.RegionsRecorded) })
	reg.CounterFunc("jukebox.regions_dropped", l, func() uint64 { return uint64(j.RegionsDropped) })
	reg.CounterFunc("jukebox.lines_prefetched", l, func() uint64 { return uint64(j.LinesPrefetched) })
}

// RegisterMetrics exposes Confluence's prefetch statistics through the obs
// registry as read-through sources.
func (c *Confluence) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	l := labels.With("component", "confluence")
	reg.CounterFunc("confluence.triggers", l, func() uint64 { return uint64(c.Triggers) })
	reg.CounterFunc("confluence.lines_prefetched", l, func() uint64 { return uint64(c.LinesPrefetched) })
	reg.CounterFunc("confluence.btb_fills", l, func() uint64 { return uint64(c.BTBFills) })
}
