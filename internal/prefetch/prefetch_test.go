package prefetch

import (
	"testing"

	"ignite/internal/cache"
	"ignite/internal/engine"
	"ignite/internal/memsys"
	"ignite/internal/workload"
)

func testEngine(t *testing.T) (*engine.Engine, workload.Spec) {
	t.Helper()
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return engine.New(prog, engine.DefaultConfig()), spec
}

func runInv(t *testing.T, e *engine.Engine, seed, budget uint64) *engine.InvocationStats {
	t.Helper()
	st, err := e.RunInvocation(engine.InvocationOptions{Seed: seed, MaxInstr: budget})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestJukeboxRecordReplayCycle(t *testing.T) {
	eng, spec := testEngine(t)
	store := memsys.NewStore()
	jb := NewJukebox(DefaultJukeboxConfig(), eng, store, "test")
	eng.AddCompanion(jb)
	budget := spec.MaxInstr() / 2

	// Record a lukewarm invocation.
	eng.Thrash(1)
	jb.StartRecord()
	runInv(t, eng, 1, budget)
	jb.StopRecord()
	if jb.RegionsRecorded < 50 {
		t.Fatalf("recorded only %d regions", jb.RegionsRecorded)
	}
	jb.ArmReplay()

	// Replay on the next lukewarm invocation: off-chip misses collapse.
	eng.Thrash(2)
	withJB := runInv(t, eng, 2, budget)

	// Compare against no replay.
	eng2, _ := testEngine(t)
	eng2.Thrash(1)
	runInv(t, eng2, 1, budget)
	eng2.Thrash(2)
	without := runInv(t, eng2, 2, budget)

	if withJB.OffChipInstrMisses >= without.OffChipInstrMisses/2 {
		t.Errorf("Jukebox off-chip %d vs baseline %d: expected a large reduction",
			withJB.OffChipInstrMisses, without.OffChipInstrMisses)
	}
	if jb.LinesPrefetched == 0 {
		t.Error("no lines prefetched during replay")
	}
}

func TestJukeboxCRRBDedup(t *testing.T) {
	eng, _ := testEngine(t)
	store := memsys.NewStore()
	jb := NewJukebox(DefaultJukeboxConfig(), eng, store, "t")
	jb.StartRecord()
	// Repeated fetches in the same region must record once.
	for i := 0; i < 10; i++ {
		jb.OnInstrFetch(0x400000+uint64(i)*64, cache.LvlMem, 0)
	}
	if jb.RegionsRecorded != 1 {
		t.Errorf("recorded %d regions for one 1KiB region", jb.RegionsRecorded)
	}
	// L2 hits are not recorded.
	jb.OnInstrFetch(0x900000, cache.LvlL2, 0)
	if jb.RegionsRecorded != 1 {
		t.Error("recorded an on-chip fetch")
	}
}

func TestJukeboxMetadataCap(t *testing.T) {
	eng, _ := testEngine(t)
	store := memsys.NewStore()
	cfg := DefaultJukeboxConfig()
	cfg.MetadataBytes = 60 // 10 region entries
	jb := NewJukebox(cfg, eng, store, "t")
	jb.StartRecord()
	for i := 0; i < 100; i++ {
		jb.OnInstrFetch(uint64(i)*1024*33, cache.LvlMem, 0)
	}
	if jb.RegionsRecorded != 10 {
		t.Errorf("recorded %d regions into a 10-entry budget", jb.RegionsRecorded)
	}
	if jb.RegionsDropped != 90 {
		t.Errorf("dropped %d, want 90", jb.RegionsDropped)
	}
}

func TestConfluenceRecordsAndTriggers(t *testing.T) {
	eng, spec := testEngine(t)
	cf := NewConfluence(DefaultConfluenceConfig(), eng)
	eng.AddCompanion(cf)
	budget := spec.MaxInstr() / 2

	eng.Thrash(1)
	cf.StartRecord()
	runInv(t, eng, 1, budget)
	cf.StopRecord()
	cf.ArmReplay()

	eng.Thrash(2)
	st := runInv(t, eng, 2, budget)
	if cf.Triggers == 0 || cf.LinesPrefetched == 0 {
		t.Errorf("confluence idle: triggers=%d lines=%d", cf.Triggers, cf.LinesPrefetched)
	}
	if cf.BTBFills == 0 {
		t.Error("no predecode BTB fills")
	}
	_ = st
}

func TestConfluenceReducesBTBMisses(t *testing.T) {
	eng, spec := testEngine(t)
	cf := NewConfluence(DefaultConfluenceConfig(), eng)
	eng.AddCompanion(cf)
	budget := spec.MaxInstr() / 2

	eng.Thrash(1)
	cf.StartRecord()
	runInv(t, eng, 1, budget)
	cf.StopRecord()
	cf.ArmReplay()
	eng.Thrash(2)
	with := runInv(t, eng, 2, budget)

	eng2, _ := testEngine(t)
	eng2.Thrash(1)
	runInv(t, eng2, 1, budget)
	eng2.Thrash(2)
	without := runInv(t, eng2, 2, budget)

	if with.BTBMisses >= without.BTBMisses {
		t.Errorf("Confluence BTB misses %d >= baseline %d", with.BTBMisses, without.BTBMisses)
	}
}

func TestConfluenceIndexCapacity(t *testing.T) {
	eng, _ := testEngine(t)
	cfg := DefaultConfluenceConfig()
	cfg.IndexEntries = 8
	cf := NewConfluence(cfg, eng)
	cf.StartRecord()
	for i := 0; i < 100; i++ {
		cf.OnInstrFetch(uint64(i)*64, cache.LvlMem, 0)
	}
	if len(cf.index) > 8 {
		t.Errorf("index grew to %d entries, cap 8", len(cf.index))
	}
}
