// Package prefetch implements the record/replay-style baseline prefetchers
// the paper compares Ignite against: Jukebox [51], a temporal-streaming
// prefetcher for off-chip instruction misses, and Confluence [33], a
// unified temporal-streaming instruction+BTB prefetcher. (Next-line, FDP
// and Boomerang are fetch-engine features and live inside the engine.)
package prefetch

import (
	"encoding/binary"

	"ignite/internal/cache"
	"ignite/internal/engine"
	"ignite/internal/memsys"
)

// JukeboxConfig follows the paper's Section 5.3: 16-entry compacted recent
// region buffer (CRRB), 1 KiB regions, 16 KiB of metadata per direction,
// prefetching into L2.
type JukeboxConfig struct {
	RegionBytes   int
	CRRBEntries   int
	MetadataBytes int
	LinesPerCycle float64
}

// DefaultJukeboxConfig returns the paper's parameters.
func DefaultJukeboxConfig() JukeboxConfig {
	return JukeboxConfig{
		RegionBytes:   1024,
		CRRBEntries:   16,
		MetadataBytes: 16 << 10,
		LinesPerCycle: 4,
	}
}

// Jukebox records the regions of L2 instruction misses during one
// invocation and bulk-prefetches them into L2 at the start of the next.
type Jukebox struct {
	cfg JukeboxConfig
	eng *engine.Engine

	record *memsys.Region
	replay *memsys.Region

	crrb    []uint64
	crrbPos int

	recording bool
	armed     bool

	// replay state
	active      bool
	regionQueue []uint64
	nextLine    uint64
	linesLeft   int
	credit      float64

	// Stats
	RegionsRecorded int
	RegionsDropped  int
	LinesPrefetched int
}

// NewJukebox creates a Jukebox instance with metadata regions from store.
func NewJukebox(cfg JukeboxConfig, eng *engine.Engine, store *memsys.Store, container string) *Jukebox {
	if cfg.RegionBytes <= 0 {
		cfg = DefaultJukeboxConfig()
	}
	return &Jukebox{
		cfg:    cfg,
		eng:    eng,
		record: store.Allocate(container+"/jukebox-rec", cfg.MetadataBytes),
		replay: store.Allocate(container+"/jukebox-rep", cfg.MetadataBytes),
		crrb:   make([]uint64, cfg.CRRBEntries),
	}
}

var _ engine.Companion = (*Jukebox)(nil)

// Name implements engine.Companion.
func (j *Jukebox) Name() string { return "jukebox" }

// StartRecord begins recording L2 instruction miss regions.
func (j *Jukebox) StartRecord() {
	j.record.ResetWrite()
	for i := range j.crrb {
		j.crrb[i] = ^uint64(0)
	}
	j.RegionsRecorded = 0
	j.RegionsDropped = 0
	j.recording = true
}

// StopRecord ends the record phase and publishes the stream for replay.
func (j *Jukebox) StopRecord() {
	j.recording = false
	// Copy the recorded stream into the replay region (the OS would just
	// swap pointers; we keep two regions for double-buffered operation).
	j.replay.ResetWrite()
	j.replay.Write(j.record.Bytes())
}

// ArmReplay schedules bulk prefetching at the next invocation start.
func (j *Jukebox) ArmReplay() { j.armed = true }

// DisarmReplay cancels replay.
func (j *Jukebox) DisarmReplay() { j.armed = false; j.active = false }

// BeginInvocation implements engine.Companion.
func (j *Jukebox) BeginInvocation() {
	if !j.armed {
		return
	}
	j.replay.ResetRead()
	j.regionQueue = j.regionQueue[:0]
	buf := j.replay.Bytes()
	for len(buf) >= 6 {
		var raw [8]byte
		copy(raw[:6], buf[:6])
		j.regionQueue = append(j.regionQueue, binary.LittleEndian.Uint64(raw[:]))
		buf = buf[6:]
	}
	if t := j.eng.Traffic(); t != nil {
		t.AddReplayBytes(len(j.replay.Bytes()))
	}
	j.active = len(j.regionQueue) > 0
	j.linesLeft = 0
	j.credit = 0
	j.LinesPrefetched = 0
}

// Tick implements engine.Companion: issue up to rate-limited prefetches.
func (j *Jukebox) Tick(now uint64, cycles int) {
	if !j.active {
		return
	}
	j.credit += float64(cycles) * j.cfg.LinesPerCycle
	for j.credit >= 1 {
		j.credit--
		if j.linesLeft == 0 {
			if len(j.regionQueue) == 0 {
				j.active = false
				return
			}
			j.nextLine = j.regionQueue[0]
			j.regionQueue = j.regionQueue[1:]
			j.linesLeft = j.cfg.RegionBytes / cache.LineBytesConst
		}
		if from, issued := j.eng.Hierarchy().PrefetchInstr(j.nextLine, cache.SrcJukebox, cache.LvlL2); issued {
			j.eng.NotePendingLine(j.nextLine, from, 0)
			j.LinesPrefetched++
		}
		j.nextLine += cache.LineBytesConst
		j.linesLeft--
	}
}

// OnInstrFetch implements engine.Companion: the record side captures
// demand instruction fetches that missed the L2 (served by LLC or DRAM).
func (j *Jukebox) OnInstrFetch(lineAddr uint64, lvl cache.Level, now uint64) {
	if !j.recording || lvl < cache.LvlLLC {
		return
	}
	region := lineAddr &^ uint64(j.cfg.RegionBytes-1)
	for _, r := range j.crrb {
		if r == region {
			return // recently recorded
		}
	}
	j.crrb[j.crrbPos] = region
	j.crrbPos = (j.crrbPos + 1) % len(j.crrb)

	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], region)
	if _, err := j.record.Write(raw[:6]); err != nil {
		j.RegionsDropped++
		return
	}
	j.RegionsRecorded++
	if t := j.eng.Traffic(); t != nil {
		t.AddRecordBytes(6)
	}
}
