package btb

import (
	"testing"

	"ignite/internal/cfg"
)

// The paper's Section 4.4: with FEAT_CSV2-style BTB tagging, entries
// replayed by one VM must not be usable by another, closing the speculative
// side channel Ignite's injection could otherwise widen.
func TestTaggingIsolatesVMs(t *testing.T) {
	b := smallBTB(t)
	b.EnableTagging()

	b.SetVM(1)
	b.Insert(Entry{PC: 0x1000, Target: 0x2000, Kind: cfg.BranchUncond}, true) // replayed by VM 1
	if _, hit := b.Lookup(0x1000); !hit {
		t.Fatal("owner VM cannot use its own entry")
	}

	b.SetVM(2)
	if _, hit := b.Lookup(0x1000); hit {
		t.Fatal("VM 2 used VM 1's replayed entry: side channel open")
	}
	if b.Contains(0x1000) {
		t.Fatal("Contains leaked across VMs")
	}

	// VM 2 can create its own entry for the same PC (new allocation).
	b.Insert(Entry{PC: 0x1000, Target: 0x3000, Kind: cfg.BranchUncond}, false)
	got, hit := b.Lookup(0x1000)
	if !hit || got.Target != 0x3000 {
		t.Fatalf("VM 2's own entry: hit=%v %+v", hit, got)
	}

	// VM 1 still sees its original target, not VM 2's.
	b.SetVM(1)
	got, hit = b.Lookup(0x1000)
	if !hit || got.Target != 0x2000 {
		t.Fatalf("VM 1's entry corrupted: hit=%v %+v", hit, got)
	}
}

func TestTaggingDisabledByDefault(t *testing.T) {
	b := smallBTB(t)
	b.SetVM(1)
	b.Insert(Entry{PC: 0x100, Target: 0x200, Kind: cfg.BranchCall}, false)
	b.SetVM(2)
	if _, hit := b.Lookup(0x100); !hit {
		t.Error("without tagging, entries are shared across contexts")
	}
}

func TestTaggingRestoredAccounting(t *testing.T) {
	b := smallBTB(t)
	b.EnableTagging()
	b.SetVM(1)
	b.Insert(Entry{PC: 0x100, Target: 0x200}, true)
	if b.RestoredUntouched() != 1 {
		t.Fatal("restored tracking broken under tagging")
	}
	// A lookup from another VM misses and must not clear the mark.
	b.SetVM(2)
	b.Lookup(0x100)
	if b.RestoredUntouched() != 1 {
		t.Error("foreign lookup cleared the restored mark")
	}
	b.SetVM(1)
	b.Lookup(0x100)
	if b.RestoredUntouched() != 0 {
		t.Error("owner lookup did not clear the restored mark")
	}
}
