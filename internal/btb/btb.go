// Package btb implements the Branch Target Buffer of the simulated core:
// set-associative with partial tags, allocated only for taken branches at
// commit (the property Ignite's record mechanism relies on), with insertion
// hooks for Ignite's recorder and restored-entry tracking for replay
// throttling.
package btb

import (
	"fmt"
	"math/bits"

	"ignite/internal/cfg"
	"ignite/internal/stats"
)

// Entry is one BTB entry: the branch's PC, its (last) target, and the
// branch type. Matching the paper's Table 2, tags are partial (12 bits by
// default), so rare aliasing is possible and intentional.
type Entry struct {
	PC     uint64
	Target uint64
	Kind   cfg.BranchKind
}

// Config describes BTB geometry. The paper models 12K entries, 6-way,
// 12-bit tags (Sapphire-Rapids-like).
type Config struct {
	Entries int
	Ways    int
	TagBits int
}

// DefaultConfig returns the paper's Table 2 BTB.
func DefaultConfig() Config { return Config{Entries: 12 * 1024, Ways: 6, TagBits: 12} }

// Stats counts BTB events. Misses are counted by the front end (a miss is
// only architecturally meaningful for a taken branch); the BTB itself
// counts structural events.
type Stats struct {
	Lookups           stats.Counter
	Hits              stats.Counter
	Inserts           stats.Counter
	Evictions         stats.Counter
	RestoredInserts   stats.Counter
	RestoredUsed      stats.Counter // restored entries that served a lookup
	RestoredEvictedUU stats.Counter // restored entries evicted untouched
}

// Storage is struct-of-arrays: one packed key word per way carries
// everything a match scan reads (valid bit, partial tag, VM ID), so a 6-way
// probe touches 48 contiguous bytes instead of six 40-byte structs. Payload
// (target, kind), recency and the restored mark live in parallel arrays read
// only on a hit or during victim selection.
// The VM ID tags the entry with the virtual machine that created it (Arm
// FEAT_CSV2-style BTB tagging, Section 4.4 of the paper): when tagging is
// enabled, entries are only usable by the VM that owns them, so replayed
// entries from a malicious VM cannot steer another VM's speculation.
const (
	keyValid   = uint64(1) << 63 // set ⇒ way holds an entry
	keyVMShift = 44              // vmID occupies bits 44..59; tag ≤ 40 bits
	keyVMMask  = uint64(0xffff) << keyVMShift
)

const metaRestored = uint8(1) // inserted by Ignite replay and not yet accessed

// BTB is a set-associative branch target buffer. Construct with New.
type BTB struct {
	cfg     Config
	sets    int
	setMask uint64
	tagMask uint64
	keys    []uint64 // keyValid | vmID<<keyVMShift | tag, set-major
	targets []uint64
	kinds   []cfg.BranchKind
	meta    []uint8 // metaRestored
	lastUse []uint64
	tick    uint64
	stats   Stats

	// onInsert fires for demand (commit-time) insertions only — the tap
	// Ignite's recorder attaches to (Section 4.1).
	onInsert func(Entry)
	// restoredUntouched counts replay-inserted entries that the front
	// end has not yet used, driving replay throttling (Section 4.2).
	restoredUntouched int

	// tagging enables VM-ID tagging; currentVM is the executing VM.
	tagging   bool
	currentVM uint16
}

// New builds a BTB; geometry must be power-of-two sets.
func New(c Config) (*BTB, error) {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return nil, fmt.Errorf("btb: bad geometry %+v", c)
	}
	sets := c.Entries / c.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("btb: %d sets not a power of two", sets)
	}
	if c.TagBits <= 0 || c.TagBits > 40 {
		return nil, fmt.Errorf("btb: bad tag bits %d", c.TagBits)
	}
	return &BTB{
		cfg:     c,
		sets:    sets,
		setMask: uint64(sets - 1),
		tagMask: (1 << uint(c.TagBits)) - 1,
		keys:    make([]uint64, c.Entries),
		targets: make([]uint64, c.Entries),
		kinds:   make([]cfg.BranchKind, c.Entries),
		meta:    make([]uint8, c.Entries),
		lastUse: make([]uint64, c.Entries),
	}, nil
}

// MustNew is New for known-valid configurations.
func MustNew(c Config) *BTB {
	b, err := New(c)
	if err != nil {
		panic(err)
	}
	return b
}

// Config returns the BTB's configuration.
func (b *BTB) Config() Config { return b.cfg }

// Stats returns the BTB statistics collector.
func (b *BTB) Stats() *Stats { return &b.stats }

// OnInsert registers the commit-time insertion hook (at most one).
func (b *BTB) OnInsert(fn func(Entry)) { b.onInsert = fn }

// EnableTagging turns on VM-ID tagging (FEAT_CSV2-style). Entries created
// from now on are tagged with the current VM and are invisible to lookups
// from other VMs.
func (b *BTB) EnableTagging() { b.tagging = true }

// SetVM switches the currently executing VM context.
func (b *BTB) SetVM(id uint16) { b.currentVM = id }

// CurrentVM returns the executing VM's ID.
func (b *BTB) CurrentVM() uint16 { return b.currentVM }

func (b *BTB) index(pc uint64) (set uint64, tag uint64) {
	w := pc >> 2 // instruction-aligned
	set = w & b.setMask
	tag = (w >> uint(bits.TrailingZeros(uint(b.sets)))) & b.tagMask
	return
}

// matchSpec builds the equality scan for the current VM context: without
// tagging the VM field is masked out (entries match regardless of owner,
// exactly as before the SoA layout); with tagging it participates in the
// comparison, so a tag match owned by another VM simply fails equality and
// the scan continues — the original "unusable across VM boundaries" rule.
func (b *BTB) matchSpec(tag uint64) (want, mask uint64) {
	want = keyValid | tag
	mask = keyValid | b.tagMask
	if b.tagging {
		want |= uint64(b.currentVM) << keyVMShift
		mask |= keyVMMask
	}
	return want, mask
}

// Lookup queries the BTB for a branch at pc. A hit updates recency and
// clears the restored-untouched mark.
func (b *BTB) Lookup(pc uint64) (Entry, bool) {
	set, tag := b.index(pc)
	base := int(set) * b.cfg.Ways
	ks := b.keys[base : base+b.cfg.Ways]
	want, mask := b.matchSpec(tag)
	b.stats.Lookups.Inc()
	for i := range ks {
		if ks[i]&mask == want {
			j := base + i
			b.stats.Hits.Inc()
			b.tick++
			b.lastUse[j] = b.tick
			if b.meta[j]&metaRestored != 0 {
				b.meta[j] &^= metaRestored
				b.restoredUntouched--
				b.stats.RestoredUsed.Inc()
			}
			return Entry{PC: pc, Target: b.targets[j], Kind: b.kinds[j]}, true
		}
	}
	return Entry{}, false
}

// Contains probes without updating recency or restored tracking.
func (b *BTB) Contains(pc uint64) bool {
	set, tag := b.index(pc)
	base := int(set) * b.cfg.Ways
	ks := b.keys[base : base+b.cfg.Ways]
	want, mask := b.matchSpec(tag)
	for i := range ks {
		if ks[i]&mask == want {
			return true
		}
	}
	return false
}

// Insert allocates (or updates) the entry for e.PC. restored marks replay
// insertions, which are tracked for throttling and accuracy and do NOT fire
// the recorder hook; commit-time insertions do.
func (b *BTB) Insert(e Entry, restored bool) {
	set, tag := b.index(e.PC)
	base := int(set) * b.cfg.Ways
	ks := b.keys[base : base+b.cfg.Ways]
	want, mask := b.matchSpec(tag)
	b.tick++
	for i := range ks {
		if ks[i]&mask == want {
			// Target update (e.g. indirect branch retarget) — not a
			// new allocation; no recording.
			j := base + i
			b.targets[j] = e.Target
			b.kinds[j] = e.Kind
			b.lastUse[j] = b.tick
			return
		}
	}
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ks {
		if ks[i]&keyValid == 0 {
			victim = i
			oldest = 0
			break
		}
		if lu := b.lastUse[base+i]; lu < oldest {
			oldest = lu
			victim = i
		}
	}
	j := base + victim
	if b.keys[j]&keyValid != 0 {
		b.stats.Evictions.Inc()
		if b.meta[j]&metaRestored != 0 {
			b.restoredUntouched--
			b.stats.RestoredEvictedUU.Inc()
		}
	}
	b.keys[j] = keyValid | uint64(b.currentVM)<<keyVMShift | tag
	b.targets[j] = e.Target
	b.kinds[j] = e.Kind
	b.lastUse[j] = b.tick
	b.meta[j] = 0
	if restored {
		b.meta[j] = metaRestored
	}
	b.stats.Inserts.Inc()
	if restored {
		b.stats.RestoredInserts.Inc()
		b.restoredUntouched++
	} else if b.onInsert != nil {
		b.onInsert(e)
	}
}

// RestoredUntouched returns the number of replay-inserted entries the front
// end has not yet used — Ignite's throttle input.
func (b *BTB) RestoredUntouched() int { return b.restoredUntouched }

// Flush invalidates all entries (interleaving thrash). Restored entries
// still resident count as evicted-untouched.
func (b *BTB) Flush() {
	for i := range b.keys {
		if b.keys[i]&keyValid != 0 && b.meta[i]&metaRestored != 0 {
			b.stats.RestoredEvictedUU.Inc()
		}
		b.keys[i] = 0
		b.targets[i] = 0
		b.kinds[i] = 0
		b.meta[i] = 0
		b.lastUse[i] = 0
	}
	b.restoredUntouched = 0
	b.tick = 0
}

// SweepRestoredUnused finalizes restore-accuracy stats at the end of a
// measurement window: resident restored-but-unused entries count as unused.
func (b *BTB) SweepRestoredUnused() int {
	n := 0
	for i := range b.keys {
		if b.keys[i]&keyValid != 0 && b.meta[i]&metaRestored != 0 {
			n++
			b.stats.RestoredEvictedUU.Inc()
			b.meta[i] &^= metaRestored
		}
	}
	b.restoredUntouched = 0
	return n
}

// Occupancy returns the number of valid entries.
func (b *BTB) Occupancy() int {
	n := 0
	for i := range b.keys {
		if b.keys[i]&keyValid != 0 {
			n++
		}
	}
	return n
}

// ResetStats clears counters without touching contents.
func (b *BTB) ResetStats() { b.stats = Stats{} }

// Snapshot is an opaque deep copy of BTB contents.
type Snapshot struct {
	keys    []uint64
	targets []uint64
	kinds   []cfg.BranchKind
	meta    []uint8
	lastUse []uint64
}

// Snapshot returns a deep copy of the BTB contents (used by the warm-BTB
// preservation studies of Figures 4 and 5).
func (b *BTB) Snapshot() *Snapshot {
	return &Snapshot{
		keys:    append([]uint64(nil), b.keys...),
		targets: append([]uint64(nil), b.targets...),
		kinds:   append([]cfg.BranchKind(nil), b.kinds...),
		meta:    append([]uint8(nil), b.meta...),
		lastUse: append([]uint64(nil), b.lastUse...),
	}
}

// ContentEqual reports whether two snapshots hold the same architectural
// contents: identical (valid, tag, target, kind, restored, vmID) per way.
// Recency (lastUse) is ignored — it is replacement heuristic state, not
// content, and legitimately differs between two replays of the same stream.
func (s *Snapshot) ContentEqual(o *Snapshot) bool {
	if len(s.keys) != len(o.keys) {
		return false
	}
	for i := range s.keys {
		// The key word packs valid, tag and vmID, so one compare covers
		// all three.
		if s.keys[i] != o.keys[i] {
			return false
		}
		if s.keys[i]&keyValid == 0 {
			continue
		}
		if s.targets[i] != o.targets[i] || s.kinds[i] != o.kinds[i] ||
			s.meta[i]&metaRestored != o.meta[i]&metaRestored {
			return false
		}
	}
	return true
}

// Restore reinstates a snapshot taken from an identically configured BTB.
func (b *BTB) Restore(snap *Snapshot) {
	if len(snap.keys) != len(b.keys) {
		panic("btb: snapshot geometry mismatch")
	}
	copy(b.keys, snap.keys)
	copy(b.targets, snap.targets)
	copy(b.kinds, snap.kinds)
	copy(b.meta, snap.meta)
	copy(b.lastUse, snap.lastUse)
	b.restoredUntouched = 0
	for i := range b.keys {
		if b.meta[i]&metaRestored != 0 {
			b.restoredUntouched++
		}
	}
}
