// Package btb implements the Branch Target Buffer of the simulated core:
// set-associative with partial tags, allocated only for taken branches at
// commit (the property Ignite's record mechanism relies on), with insertion
// hooks for Ignite's recorder and restored-entry tracking for replay
// throttling.
package btb

import (
	"fmt"
	"math/bits"

	"ignite/internal/cfg"
	"ignite/internal/stats"
)

// Entry is one BTB entry: the branch's PC, its (last) target, and the
// branch type. Matching the paper's Table 2, tags are partial (12 bits by
// default), so rare aliasing is possible and intentional.
type Entry struct {
	PC     uint64
	Target uint64
	Kind   cfg.BranchKind
}

// Config describes BTB geometry. The paper models 12K entries, 6-way,
// 12-bit tags (Sapphire-Rapids-like).
type Config struct {
	Entries int
	Ways    int
	TagBits int
}

// DefaultConfig returns the paper's Table 2 BTB.
func DefaultConfig() Config { return Config{Entries: 12 * 1024, Ways: 6, TagBits: 12} }

// Stats counts BTB events. Misses are counted by the front end (a miss is
// only architecturally meaningful for a taken branch); the BTB itself
// counts structural events.
type Stats struct {
	Lookups           stats.Counter
	Hits              stats.Counter
	Inserts           stats.Counter
	Evictions         stats.Counter
	RestoredInserts   stats.Counter
	RestoredUsed      stats.Counter // restored entries that served a lookup
	RestoredEvictedUU stats.Counter // restored entries evicted untouched
}

type way struct {
	valid    bool
	tag      uint64
	target   uint64
	kind     cfg.BranchKind
	restored bool // inserted by Ignite replay and not yet accessed
	lastUse  uint64
	// vmID tags the entry with the virtual machine that created it
	// (Arm FEAT_CSV2-style BTB tagging, Section 4.4 of the paper):
	// entries are only usable by the VM that owns them, so replayed
	// entries from a malicious VM cannot steer another VM's speculation.
	vmID uint16
}

// BTB is a set-associative branch target buffer. Construct with New.
type BTB struct {
	cfg     Config
	sets    int
	setMask uint64
	tagMask uint64
	ways    []way
	tick    uint64
	stats   Stats

	// onInsert fires for demand (commit-time) insertions only — the tap
	// Ignite's recorder attaches to (Section 4.1).
	onInsert func(Entry)
	// restoredUntouched counts replay-inserted entries that the front
	// end has not yet used, driving replay throttling (Section 4.2).
	restoredUntouched int

	// tagging enables VM-ID tagging; currentVM is the executing VM.
	tagging   bool
	currentVM uint16
}

// New builds a BTB; geometry must be power-of-two sets.
func New(c Config) (*BTB, error) {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return nil, fmt.Errorf("btb: bad geometry %+v", c)
	}
	sets := c.Entries / c.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("btb: %d sets not a power of two", sets)
	}
	if c.TagBits <= 0 || c.TagBits > 40 {
		return nil, fmt.Errorf("btb: bad tag bits %d", c.TagBits)
	}
	return &BTB{
		cfg:     c,
		sets:    sets,
		setMask: uint64(sets - 1),
		tagMask: (1 << uint(c.TagBits)) - 1,
		ways:    make([]way, c.Entries),
	}, nil
}

// MustNew is New for known-valid configurations.
func MustNew(c Config) *BTB {
	b, err := New(c)
	if err != nil {
		panic(err)
	}
	return b
}

// Config returns the BTB's configuration.
func (b *BTB) Config() Config { return b.cfg }

// Stats returns the BTB statistics collector.
func (b *BTB) Stats() *Stats { return &b.stats }

// OnInsert registers the commit-time insertion hook (at most one).
func (b *BTB) OnInsert(fn func(Entry)) { b.onInsert = fn }

// EnableTagging turns on VM-ID tagging (FEAT_CSV2-style). Entries created
// from now on are tagged with the current VM and are invisible to lookups
// from other VMs.
func (b *BTB) EnableTagging() { b.tagging = true }

// SetVM switches the currently executing VM context.
func (b *BTB) SetVM(id uint16) { b.currentVM = id }

// CurrentVM returns the executing VM's ID.
func (b *BTB) CurrentVM() uint16 { return b.currentVM }

func (b *BTB) index(pc uint64) (set uint64, tag uint64) {
	w := pc >> 2 // instruction-aligned
	set = w & b.setMask
	tag = (w >> uint(bits.TrailingZeros(uint(b.sets)))) & b.tagMask
	return
}

func (b *BTB) setSlice(set uint64) []way {
	start := int(set) * b.cfg.Ways
	return b.ways[start : start+b.cfg.Ways]
}

// Lookup queries the BTB for a branch at pc. A hit updates recency and
// clears the restored-untouched mark.
func (b *BTB) Lookup(pc uint64) (Entry, bool) {
	set, tag := b.index(pc)
	ws := b.setSlice(set)
	b.stats.Lookups.Inc()
	for i := range ws {
		w := &ws[i]
		if w.valid && w.tag == tag {
			if b.tagging && w.vmID != b.currentVM {
				// Tagged entries are unusable across VM boundaries.
				continue
			}
			b.stats.Hits.Inc()
			b.tick++
			w.lastUse = b.tick
			if w.restored {
				w.restored = false
				b.restoredUntouched--
				b.stats.RestoredUsed.Inc()
			}
			return Entry{PC: pc, Target: w.target, Kind: w.kind}, true
		}
	}
	return Entry{}, false
}

// Contains probes without updating recency or restored tracking.
func (b *BTB) Contains(pc uint64) bool {
	set, tag := b.index(pc)
	for i := range b.setSlice(set) {
		w := &b.setSlice(set)[i]
		if w.valid && w.tag == tag && (!b.tagging || w.vmID == b.currentVM) {
			return true
		}
	}
	return false
}

// Insert allocates (or updates) the entry for e.PC. restored marks replay
// insertions, which are tracked for throttling and accuracy and do NOT fire
// the recorder hook; commit-time insertions do.
func (b *BTB) Insert(e Entry, restored bool) {
	set, tag := b.index(e.PC)
	ws := b.setSlice(set)
	b.tick++
	for i := range ws {
		w := &ws[i]
		if w.valid && w.tag == tag && (!b.tagging || w.vmID == b.currentVM) {
			// Target update (e.g. indirect branch retarget) — not a
			// new allocation; no recording.
			w.target = e.Target
			w.kind = e.Kind
			w.lastUse = b.tick
			return
		}
	}
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ws {
		w := &ws[i]
		if !w.valid {
			victim = i
			oldest = 0
			break
		}
		if w.lastUse < oldest {
			oldest = w.lastUse
			victim = i
		}
	}
	v := &ws[victim]
	if v.valid {
		b.stats.Evictions.Inc()
		if v.restored {
			b.restoredUntouched--
			b.stats.RestoredEvictedUU.Inc()
		}
	}
	*v = way{
		valid:    true,
		tag:      tag,
		target:   e.Target,
		kind:     e.Kind,
		restored: restored,
		lastUse:  b.tick,
		vmID:     b.currentVM,
	}
	b.stats.Inserts.Inc()
	if restored {
		b.stats.RestoredInserts.Inc()
		b.restoredUntouched++
	} else if b.onInsert != nil {
		b.onInsert(e)
	}
}

// RestoredUntouched returns the number of replay-inserted entries the front
// end has not yet used — Ignite's throttle input.
func (b *BTB) RestoredUntouched() int { return b.restoredUntouched }

// Flush invalidates all entries (interleaving thrash). Restored entries
// still resident count as evicted-untouched.
func (b *BTB) Flush() {
	for i := range b.ways {
		if b.ways[i].valid && b.ways[i].restored {
			b.stats.RestoredEvictedUU.Inc()
		}
		b.ways[i] = way{}
	}
	b.restoredUntouched = 0
	b.tick = 0
}

// SweepRestoredUnused finalizes restore-accuracy stats at the end of a
// measurement window: resident restored-but-unused entries count as unused.
func (b *BTB) SweepRestoredUnused() int {
	n := 0
	for i := range b.ways {
		if b.ways[i].valid && b.ways[i].restored {
			n++
			b.stats.RestoredEvictedUU.Inc()
			b.ways[i].restored = false
		}
	}
	b.restoredUntouched = 0
	return n
}

// Occupancy returns the number of valid entries.
func (b *BTB) Occupancy() int {
	n := 0
	for i := range b.ways {
		if b.ways[i].valid {
			n++
		}
	}
	return n
}

// ResetStats clears counters without touching contents.
func (b *BTB) ResetStats() { b.stats = Stats{} }

// Snapshot is an opaque deep copy of BTB contents.
type Snapshot struct {
	ways []way
}

// Snapshot returns a deep copy of the BTB contents (used by the warm-BTB
// preservation studies of Figures 4 and 5).
func (b *BTB) Snapshot() *Snapshot {
	cp := make([]way, len(b.ways))
	copy(cp, b.ways)
	return &Snapshot{ways: cp}
}

// ContentEqual reports whether two snapshots hold the same architectural
// contents: identical (valid, tag, target, kind, restored, vmID) per way.
// Recency (lastUse) is ignored — it is replacement heuristic state, not
// content, and legitimately differs between two replays of the same stream.
func (s *Snapshot) ContentEqual(o *Snapshot) bool {
	if len(s.ways) != len(o.ways) {
		return false
	}
	for i := range s.ways {
		a, b := &s.ways[i], &o.ways[i]
		if a.valid != b.valid {
			return false
		}
		if !a.valid {
			continue
		}
		if a.tag != b.tag || a.target != b.target || a.kind != b.kind ||
			a.restored != b.restored || a.vmID != b.vmID {
			return false
		}
	}
	return true
}

// Restore reinstates a snapshot taken from an identically configured BTB.
func (b *BTB) Restore(snap *Snapshot) {
	if len(snap.ways) != len(b.ways) {
		panic("btb: snapshot geometry mismatch")
	}
	copy(b.ways, snap.ways)
	b.restoredUntouched = 0
	for i := range b.ways {
		if b.ways[i].restored {
			b.restoredUntouched++
		}
	}
}
