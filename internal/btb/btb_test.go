package btb

import (
	"testing"
	"testing/quick"

	"ignite/internal/cfg"
)

func smallBTB(t *testing.T) *BTB {
	t.Helper()
	b, err := New(Config{Entries: 64, Ways: 4, TagBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Entries: 0, Ways: 4, TagBits: 12},
		{Entries: 64, Ways: 0, TagBits: 12},
		{Entries: 65, Ways: 4, TagBits: 12},
		{Entries: 96, Ways: 4, TagBits: 12}, // 24 sets, not pow2
		{Entries: 64, Ways: 4, TagBits: 0},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("New(%+v) accepted invalid config", c)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestInsertLookup(t *testing.T) {
	b := smallBTB(t)
	e := Entry{PC: 0x400100, Target: 0x400200, Kind: cfg.BranchCond}
	if _, hit := b.Lookup(e.PC); hit {
		t.Fatal("hit in empty BTB")
	}
	b.Insert(e, false)
	got, hit := b.Lookup(e.PC)
	if !hit || got.Target != e.Target || got.Kind != e.Kind {
		t.Fatalf("lookup = %+v hit=%v", got, hit)
	}
}

func TestInsertUpdatesExistingTarget(t *testing.T) {
	b := smallBTB(t)
	pc := uint64(0x400100)
	b.Insert(Entry{PC: pc, Target: 0x1000, Kind: cfg.BranchIndirectJump}, false)
	b.Insert(Entry{PC: pc, Target: 0x2000, Kind: cfg.BranchIndirectJump}, false)
	got, _ := b.Lookup(pc)
	if got.Target != 0x2000 {
		t.Errorf("target = %#x, want retargeted %#x", got.Target, 0x2000)
	}
	if b.Stats().Inserts.Value() != 1 {
		t.Errorf("retarget counted as new insert")
	}
}

func TestLRUWithinSet(t *testing.T) {
	b := smallBTB(t) // 16 sets, 4 ways; same-set stride = 16*4 bytes
	stride := uint64(16 * 4)
	pcs := make([]uint64, 5)
	for i := range pcs {
		pcs[i] = 0x1000 + uint64(i)*stride
	}
	for _, pc := range pcs[:4] {
		b.Insert(Entry{PC: pc, Target: pc + 4}, false)
	}
	b.Lookup(pcs[0]) // protect
	b.Insert(Entry{PC: pcs[4], Target: 0}, false)
	if _, hit := b.Lookup(pcs[1]); hit {
		t.Error("LRU victim still present")
	}
	if _, hit := b.Lookup(pcs[0]); !hit {
		t.Error("MRU entry evicted")
	}
}

func TestOnInsertHookFiresForDemandOnly(t *testing.T) {
	b := smallBTB(t)
	var recorded []Entry
	b.OnInsert(func(e Entry) { recorded = append(recorded, e) })
	b.Insert(Entry{PC: 0x100, Target: 0x200, Kind: cfg.BranchUncond}, false)
	b.Insert(Entry{PC: 0x300, Target: 0x400, Kind: cfg.BranchCond}, true) // restored
	if len(recorded) != 1 || recorded[0].PC != 0x100 {
		t.Errorf("recorded = %+v, want only the demand insert", recorded)
	}
	// Target update of an existing entry must not re-record.
	b.Insert(Entry{PC: 0x100, Target: 0x500, Kind: cfg.BranchUncond}, false)
	if len(recorded) != 1 {
		t.Error("retarget fired the record hook")
	}
}

func TestRestoredTrackingLifecycle(t *testing.T) {
	b := smallBTB(t)
	for i := 0; i < 3; i++ {
		b.Insert(Entry{PC: uint64(0x1000 + i*4), Target: 1}, true)
	}
	if got := b.RestoredUntouched(); got != 3 {
		t.Fatalf("RestoredUntouched = %d, want 3", got)
	}
	b.Lookup(0x1000)
	if got := b.RestoredUntouched(); got != 2 {
		t.Fatalf("after use = %d, want 2", got)
	}
	if b.Stats().RestoredUsed.Value() != 1 {
		t.Error("RestoredUsed not counted")
	}
	// Evict the remaining two via sweep.
	if n := b.SweepRestoredUnused(); n != 2 {
		t.Errorf("sweep = %d, want 2", n)
	}
	if b.RestoredUntouched() != 0 {
		t.Error("counter nonzero after sweep")
	}
}

func TestRestoredEvictionDecrements(t *testing.T) {
	b := smallBTB(t)
	stride := uint64(16 * 4)
	for i := 0; i < 4; i++ {
		b.Insert(Entry{PC: 0x1000 + uint64(i)*stride, Target: 1}, true)
	}
	before := b.RestoredUntouched()
	b.Insert(Entry{PC: 0x1000 + 4*stride, Target: 1}, false) // evicts one restored
	if got := b.RestoredUntouched(); got != before-1 {
		t.Errorf("RestoredUntouched = %d, want %d", got, before-1)
	}
	if b.Stats().RestoredEvictedUU.Value() != 1 {
		t.Error("eviction of untouched restored entry not counted")
	}
}

func TestFlush(t *testing.T) {
	b := smallBTB(t)
	b.Insert(Entry{PC: 0x100, Target: 0x200}, true)
	b.Flush()
	if b.Occupancy() != 0 || b.RestoredUntouched() != 0 {
		t.Error("flush incomplete")
	}
	if _, hit := b.Lookup(0x100); hit {
		t.Error("hit after flush")
	}
}

func TestSnapshotRestore(t *testing.T) {
	b := smallBTB(t)
	b.Insert(Entry{PC: 0x104, Target: 0x200, Kind: cfg.BranchCall}, false)
	snap := b.Snapshot()
	b.Flush()
	b.Restore(snap)
	got, hit := b.Lookup(0x104)
	if !hit || got.Target != 0x200 || got.Kind != cfg.BranchCall {
		t.Errorf("after restore: %+v hit=%v", got, hit)
	}
}

func TestPartialTagAliasing(t *testing.T) {
	// With 12-bit tags and 16 sets, PCs 2^(4+12) words apart alias.
	b := smallBTB(t)
	pc1 := uint64(0x1000)
	pc2 := pc1 + (1 << (4 + 12 + 2)) // same set, same partial tag
	b.Insert(Entry{PC: pc1, Target: 0xAAA}, false)
	if got, hit := b.Lookup(pc2); !hit || got.Target != 0xAAA {
		t.Errorf("expected aliasing hit, got hit=%v %+v", hit, got)
	}
}

// Property: occupancy is bounded by capacity and lookups never crash for
// arbitrary PCs.
func TestBTBOccupancyProperty(t *testing.T) {
	b := smallBTB(t)
	f := func(pcs []uint32) bool {
		for _, pc := range pcs {
			b.Insert(Entry{PC: uint64(pc), Target: uint64(pc) + 8}, pc%3 == 0)
			b.Lookup(uint64(pc / 2))
			if b.Occupancy() > 64 {
				return false
			}
			if b.RestoredUntouched() < 0 || b.RestoredUntouched() > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
