// Package chaos is the end-to-end self-healing harness: it runs a sweep
// across a supervised worker fleet while murdering workers and firing
// network faults, and proves the run's results are byte-identical to a
// serial, fault-free baseline — the determinism guarantee the paper's
// experiment tables rest on does not bend under infrastructure failure.
//
// One Run performs four acts:
//
//  1. Serial baseline: every experiment computed in-process on a fresh
//     cell cache; its documents are the ground truth.
//  2. Chaos sweep: a supervised local fleet (dist.Supervisor) computes the
//     same experiments through a coordinator with breakers, probing and
//     hedging, persisting cells into a content-addressed store — while a
//     killer goroutine SIGKILLs random workers (waiting for the fleet to
//     heal between murders) and an optional faults.Plan injects network
//     chaos on the coordinator's transport. Every document must equal the
//     baseline byte for byte, and no cell may be lost.
//  3. Health check: after the sweep, every (restarted) worker must be
//     re-admitted by the prober, and the store seals to a Merkle root.
//  4. Warm replay: a fresh cache served purely from the store recomputes
//     nothing, reproduces the same documents, and reseals to the same
//     root — proving the chaos run persisted exactly the truth.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sync/atomic"
	"time"

	"ignite/internal/dist"
	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/store"
)

// Options configures one chaos run.
type Options struct {
	// Experiments to sweep (default: all registered).
	Experiments []experiments.ID
	// Opt is the experiment configuration shared by the baseline, chaos
	// and warm passes (workloads, parallelism). Cache is overridden per
	// pass.
	Opt experiments.Options
	// Workers is the supervised fleet size (default 2; must be >= 2 so a
	// murdered worker always leaves a live peer).
	Workers int
	// StoreDir is the persistent cell store directory (required).
	StoreDir string
	// Kills is how many SIGKILLs the killer fires (default 2). KillEvery
	// spaces them (default 2s); after each murder the killer waits for the
	// fleet to heal before the next.
	Kills     int
	KillEvery time.Duration
	// Seed drives the killer's victim selection.
	Seed int64
	// Command builds a worker process for the supervisor (required for
	// test binaries, which cannot re-exec themselves with bench flags).
	Command func(addr string) (*exec.Cmd, error)
	// Net optionally injects network faults (conn-reset, slow-net,
	// truncated-body, garbage-json) on the coordinator's transport.
	Net *faults.Plan
	// Log receives harness progress (default: stderr).
	Log func(format string, args ...any)
}

// Report is a chaos run's outcome. Run returns a non-nil Report only when
// every guarantee held.
type Report struct {
	Experiments int              // experiments swept (x3 passes)
	Kills       int              // workers actually SIGKILLed
	Restarts    uint64           // supervisor restarts performed
	Health      dist.HealthStats // coordinator self-healing counters
	Root        string           // sealed Merkle root after the chaos pass
	WarmRoot    string           // sealed Merkle root after the warm replay
}

func (o Options) withDefaults() (Options, error) {
	if o.StoreDir == "" {
		return o, fmt.Errorf("chaos: StoreDir is required")
	}
	if len(o.Experiments) == 0 {
		o.Experiments = experiments.IDs()
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.Workers < 2 {
		return o, fmt.Errorf("chaos: need >= 2 workers so a murdered worker leaves a live peer")
	}
	if o.Kills <= 0 {
		o.Kills = 2
	}
	if o.KillEvery <= 0 {
		o.KillEvery = 2 * time.Second
	}
	if o.Log == nil {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
		}
	}
	return o, nil
}

// docBytes canonicalizes one experiment document for byte-identity checks
// (GoVersion cleared: it is environment, not result).
func docBytes(res *experiments.Result, opt experiments.Options) ([]byte, error) {
	man := opt.Manifest()
	man.GoVersion = ""
	return res.Document(man).Encode()
}

// sweep runs the experiment list over opt, comparing each document to
// baseline (nil baseline: record instead of compare). It fails on any lost
// cell. Returns the documents by experiment.
func sweep(ctx context.Context, ids []experiments.ID, opt experiments.Options, baseline map[experiments.ID][]byte, pass string) (map[experiments.ID][]byte, error) {
	docs := make(map[experiments.ID][]byte, len(ids))
	for _, id := range ids {
		res, err := experiments.Run(ctx, id, opt)
		if err != nil {
			return nil, fmt.Errorf("chaos: %s pass, experiment %s: %w", pass, id, err)
		}
		if len(res.Failures) != 0 {
			return nil, fmt.Errorf("chaos: %s pass, experiment %s: %d lost cell(s): %v", pass, id, len(res.Failures), res.Failures)
		}
		doc, err := docBytes(res, opt)
		if err != nil {
			return nil, fmt.Errorf("chaos: %s pass, experiment %s: encode: %w", pass, id, err)
		}
		if baseline != nil && !bytes.Equal(doc, baseline[id]) {
			return nil, fmt.Errorf("chaos: %s pass, experiment %s: document differs from serial baseline (%s)", pass, id, diffContext(baseline[id], doc))
		}
		docs[id] = doc
	}
	return docs, nil
}

// diffContext renders the first divergence between two documents for the
// mismatch error.
func diffContext(want, got []byte) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			lo, hi := i-80, i+160
			if lo < 0 {
				lo = 0
			}
			clip := func(b []byte) string {
				h := hi
				if h > len(b) {
					h = len(b)
				}
				return string(b[lo:h])
			}
			return fmt.Sprintf("first diff at byte %d: baseline ...%s... vs ...%s...", i, clip(want), clip(got))
		}
	}
	return fmt.Sprintf("lengths differ: baseline %d, got %d", len(want), len(got))
}

// waitHealthy polls until every worker breaker is closed, the deadline
// passes, or stop closes.
func waitHealthy(coord *dist.Coordinator, timeout time.Duration, stop <-chan struct{}) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if coord.WorkersHealthy() {
			return true
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-stop:
			return coord.WorkersHealthy()
		}
	}
	return coord.WorkersHealthy()
}

// Run executes the chaos harness; see the package comment for the acts.
func Run(ctx context.Context, o Options) (*Report, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	ids := o.Experiments

	// Act 1: serial baseline.
	o.Log("baseline: %d experiment(s), in-process", len(ids))
	base := o.Opt
	base.Cache = experiments.NewCellCache()
	baseline, err := sweep(ctx, ids, base, nil, "baseline")
	if err != nil {
		return nil, err
	}

	// Act 2: the chaos sweep.
	sup, err := dist.StartSupervisor(dist.SupervisorOptions{
		Workers:        o.Workers,
		Command:        o.Command,
		RestartBackoff: 100 * time.Millisecond,
		BackoffCap:     time.Second,
		Log:            func(format string, args ...any) { o.Log("supervisor: "+format, args...) },
	})
	if err != nil {
		return nil, err
	}
	defer sup.Close()
	coord, err := dist.NewCoordinator(dist.CoordinatorOptions{
		Addrs:           sup.Addrs(),
		Client:          &http.Client{Transport: faults.NewTransport(o.Net, nil)},
		ProbeInterval:   50 * time.Millisecond,
		ProbeBackoffCap: 500 * time.Millisecond,
		ProbeTimeout:    time.Second,
		HealthyEvery:    4,
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()
	st, err := store.Open(o.StoreDir)
	if err != nil {
		return nil, err
	}

	chaosOpt := o.Opt
	chaosOpt.Cache = experiments.NewCellCache()
	experiments.BindStore(chaosOpt.Cache, st, &experiments.StoreStats{})
	chaosOpt.Cache.SetRemote(coord.Remote())

	var killed atomic.Int64
	sweepDone := make(chan struct{})
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		rng := rand.New(rand.NewSource(o.Seed))
		for k := 0; k < o.Kills; k++ {
			select {
			case <-time.After(o.KillEvery):
			case <-sweepDone:
				return
			}
			victim := rng.Intn(o.Workers)
			if err := sup.Kill(victim); err != nil {
				o.Log("kill worker %d: %v", victim, err)
				continue
			}
			killed.Add(1)
			o.Log("SIGKILLed worker %d", victim)
			// Wait for the supervisor to resurrect the victim and the
			// prober to re-admit it before the next murder, so the fleet
			// never drops below one live worker.
			if !waitHealthy(coord, 15*time.Second, sweepDone) {
				o.Log("worker %d not re-admitted in time", victim)
			}
		}
	}()

	o.Log("chaos sweep: %d worker(s), %d kill(s) planned", o.Workers, o.Kills)
	_, err = sweep(ctx, ids, chaosOpt, baseline, "chaos")
	close(sweepDone)
	<-killerDone
	if err != nil {
		return nil, err
	}

	// Act 3: the whole fleet must be re-admitted, then seal.
	if !waitHealthy(coord, 15*time.Second, nil) {
		return nil, fmt.Errorf("chaos: fleet not fully re-admitted after the sweep (restarts=%d, health=%+v)",
			sup.Restarts(), coord.Health())
	}
	root, n, err := st.Seal()
	if err != nil {
		return nil, fmt.Errorf("chaos: seal store: %w", err)
	}
	o.Log("sealed %d record(s), merkle root %s", n, root)

	// Act 4: warm replay from the store alone — no fleet, no compute.
	warmOpt := o.Opt
	warmOpt.Cache = experiments.NewCellCache()
	experiments.BindStore(warmOpt.Cache, st, &experiments.StoreStats{})
	if _, err := sweep(ctx, ids, warmOpt, baseline, "warm"); err != nil {
		return nil, err
	}
	warmRoot, _, err := st.Seal()
	if err != nil {
		return nil, fmt.Errorf("chaos: reseal store: %w", err)
	}
	if warmRoot != root {
		return nil, fmt.Errorf("chaos: warm replay resealed to root %s, chaos pass sealed %s", warmRoot, root)
	}

	return &Report{
		Experiments: len(ids),
		Kills:       int(killed.Load()),
		Restarts:    sup.Restarts(),
		Health:      coord.Health(),
		Root:        root,
		WarmRoot:    warmRoot,
	}, nil
}
