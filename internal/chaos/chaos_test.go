package chaos

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"ignite/internal/dist"
	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/workload"
)

// TestMain doubles as the harness's worker entry point: the test binary,
// re-executed with IGNITE_CHAOS_WORKER_LISTEN set, becomes a real worker
// process (the `ignite-bench -worker` equivalent) instead of running the
// suite — the supervisor cannot hand a test binary `-worker` flags.
func TestMain(m *testing.M) {
	if addr := os.Getenv("IGNITE_CHAOS_WORKER_LISTEN"); addr != "" {
		if err := dist.RunWorker(context.Background(), addr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func workerCommand(t *testing.T) func(addr string) (*exec.Cmd, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(addr string) (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "IGNITE_CHAOS_WORKER_LISTEN="+addr)
		return cmd, nil
	}
}

// shrunkOpts is the quick two-workload matrix the experiments package's own
// chaos tests use — small enough that the full experiment list stays
// test-sized.
func shrunkOpts(t *testing.T) experiments.Options {
	t.Helper()
	var specs []workload.Spec
	for _, name := range []string{"Fib-G", "Auth-G"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s.TargetInstr /= 8
		specs = append(specs, s)
	}
	return experiments.Options{Workloads: specs, Parallel: 2}
}

// TestChaosSweepByteIdentical is the end-to-end self-healing guarantee:
// the full experiment sweep, distributed over a supervised fleet whose
// workers are SIGKILLed mid-run under injected network faults, produces
// byte-identical documents to a serial fault-free baseline, loses no
// cells, re-admits every restarted worker, and seals the cell store to the
// same Merkle root warm as cold.
func TestChaosSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos sweep: three passes over every experiment")
	}
	net := faults.New(1)
	for _, spec := range []string{
		"conn-reset@net/*/task:trips=2",
		"truncated-body@net/*/task:trips=2",
		"garbage-json@net/*/task:trips=1",
		"slow-net@net/*/health:trips=2,delay=100ms",
	} {
		if err := net.Add(spec); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Run(context.Background(), Options{
		Opt:       shrunkOpts(t),
		Workers:   2,
		StoreDir:  t.TempDir(),
		Kills:     2,
		KillEvery: 1500 * time.Millisecond,
		Seed:      7,
		Command:   workerCommand(t),
		Net:       net,
		Log: func(format string, args ...any) {
			t.Logf("chaos: "+format, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kills < 1 {
		t.Errorf("kills = %d: the sweep finished before any chaos landed (shrink less?)", rep.Kills)
	}
	if rep.Restarts < uint64(rep.Kills) {
		t.Errorf("restarts = %d < kills = %d: the supervisor lost a worker for good", rep.Restarts, rep.Kills)
	}
	if rep.Kills >= 1 && rep.Health.Readmits < 1 {
		t.Errorf("readmits = %d after %d kill(s): the prober never re-admitted a restarted worker", rep.Health.Readmits, rep.Kills)
	}
	if rep.Root == "" || rep.Root != rep.WarmRoot {
		t.Errorf("merkle roots differ: cold %s, warm %s", rep.Root, rep.WarmRoot)
	}
	t.Logf("chaos report: %+v", rep)
}
