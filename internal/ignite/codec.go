// Package ignite implements the paper's contribution: a record-and-restore
// mechanism for front-end microarchitectural state. Ignite monitors BTB
// insertions during one invocation of a serverless function, stores them as
// a delta-compressed control-flow stream in a per-container main-memory
// region, and on the next invocation replays the stream to restore the
// instruction working set (prefetched into L2), the BTB, the bimodal
// predictor (initialized weakly-taken), and the I-TLB.
package ignite

import (
	"fmt"

	"ignite/internal/cfg"
	"ignite/internal/memsys"
)

// CodecConfig sets the delta field widths of the metadata record. The
// paper's footnote 6 reports 7 bits for the branch-PC delta and 21 bits for
// the target delta as the best compression (Section 5.3 swaps the two
// numbers; we default to the footnote and make both configurable).
type CodecConfig struct {
	DeltaPCBits     uint // signed delta, previous target -> branch PC (words)
	DeltaTargetBits uint // signed delta, branch PC -> target (words)
	FullAddrBits    uint // full virtual-address width
}

// DefaultCodecConfig returns the paper's configuration.
func DefaultCodecConfig() CodecConfig {
	return CodecConfig{DeltaPCBits: 7, DeltaTargetBits: 21, FullAddrBits: 48}
}

// CompactBits returns the size of a compact record in bits.
func (c CodecConfig) CompactBits() int {
	return 1 + 3 + int(c.DeltaPCBits) + int(c.DeltaTargetBits)
}

// FullBits returns the size of a full record in bits.
func (c CodecConfig) FullBits() int { return 1 + 3 + 2*int(c.FullAddrBits) }

// Record is one decoded metadata entry: a control-flow discontinuity.
type Record struct {
	BranchPC uint64
	Target   uint64
	Kind     cfg.BranchKind
}

// kindBits encodes a branch kind in 3 bits. BranchNone never reaches the
// codec (fall-through blocks create no BTB entries).
func kindBits(k cfg.BranchKind) (uint64, error) {
	switch k {
	case cfg.BranchCond:
		return 0, nil
	case cfg.BranchUncond:
		return 1, nil
	case cfg.BranchCall:
		return 2, nil
	case cfg.BranchReturn:
		return 3, nil
	case cfg.BranchIndirectJump:
		return 4, nil
	case cfg.BranchIndirectCall:
		return 5, nil
	default:
		return 0, fmt.Errorf("ignite: unencodable branch kind %v", k)
	}
}

func bitsKind(v uint64) (cfg.BranchKind, error) {
	switch v {
	case 0:
		return cfg.BranchCond, nil
	case 1:
		return cfg.BranchUncond, nil
	case 2:
		return cfg.BranchCall, nil
	case 3:
		return cfg.BranchReturn, nil
	case 4:
		return cfg.BranchIndirectJump, nil
	case 5:
		return cfg.BranchIndirectCall, nil
	default:
		return 0, fmt.Errorf("ignite: bad kind bits %d", v)
	}
}

// fitsSigned reports whether v fits a signed field of `bits` bits.
func fitsSigned(v int64, bits uint) bool {
	if bits >= 64 {
		return true
	}
	lim := int64(1) << (bits - 1)
	return v >= -lim && v < lim
}

// BitWriter packs bit fields into a metadata region.
type BitWriter struct {
	region *memsys.Region
	cur    uint64 // bit accumulator, LSB-first
	nbits  uint
	full   bool
	bits   int // total bits written
}

// NewBitWriter wraps a region.
func NewBitWriter(r *memsys.Region) *BitWriter { return &BitWriter{region: r} }

// Put appends the low `n` bits of v. Once the region fills, the writer
// latches the full state and discards further input.
func (w *BitWriter) Put(v uint64, n uint) {
	if w.full || n == 0 {
		return
	}
	w.cur |= (v & ((1 << n) - 1)) << w.nbits
	w.nbits += n
	w.bits += int(n)
	for w.nbits >= 8 {
		if err := w.region.WriteByte(byte(w.cur)); err != nil {
			w.full = true
			return
		}
		w.cur >>= 8
		w.nbits -= 8
	}
}

// Flush pads the current byte with zeros and writes it out.
func (w *BitWriter) Flush() {
	if w.full || w.nbits == 0 {
		return
	}
	if err := w.region.WriteByte(byte(w.cur)); err != nil {
		w.full = true
		return
	}
	w.cur = 0
	w.nbits = 0
}

// Full reports whether the region overflowed.
func (w *BitWriter) Full() bool { return w.full }

// BitsWritten returns the total bits accepted so far.
func (w *BitWriter) BitsWritten() int { return w.bits }

// BitReader unpacks bit fields from a metadata region.
type BitReader struct {
	region *memsys.Region
	cur    uint64
	nbits  uint
	bits   int
}

// NewBitReader wraps a region (reading from its current read cursor).
func NewBitReader(r *memsys.Region) *BitReader { return &BitReader{region: r} }

// Take reads an n-bit field; ok is false at end of stream.
func (r *BitReader) Take(n uint) (v uint64, ok bool) {
	for r.nbits < n {
		b, more := r.region.NextByte()
		if !more {
			return 0, false
		}
		r.cur |= uint64(b) << r.nbits
		r.nbits += 8
	}
	v = r.cur & ((1 << n) - 1)
	r.cur >>= n
	r.nbits -= n
	r.bits += int(n)
	return v, true
}

// BitsRead returns the total bits consumed.
func (r *BitReader) BitsRead() int { return r.bits }

// Encoder turns BTB-insertion events into the compressed metadata stream.
// It holds the "last-inserted entry" register the paper describes: deltas
// are computed against the previous record's target.
type Encoder struct {
	cfg        CodecConfig
	w          *BitWriter
	prevTarget uint64
	hasPrev    bool

	Records        int
	CompactRecords int
}

// NewEncoder creates an encoder writing into region.
func NewEncoder(c CodecConfig, region *memsys.Region) *Encoder {
	return &Encoder{cfg: c, w: NewBitWriter(region)}
}

// Encode appends one record. It reports false when the region is full (the
// paper caps Ignite metadata at 120 KiB per function).
func (e *Encoder) Encode(rec Record) (bool, error) {
	kb, err := kindBits(rec.Kind)
	if err != nil {
		return false, err
	}
	// Deltas in instruction words.
	dPC := (int64(rec.BranchPC) - int64(e.prevTarget)) / cfg.InstrBytes
	dTgt := (int64(rec.Target) - int64(rec.BranchPC)) / cfg.InstrBytes
	compact := e.hasPrev &&
		fitsSigned(dPC, e.cfg.DeltaPCBits) &&
		fitsSigned(dTgt, e.cfg.DeltaTargetBits) &&
		rec.BranchPC%cfg.InstrBytes == 0 && rec.Target%cfg.InstrBytes == 0

	if compact {
		e.w.Put(0, 1)
		e.w.Put(kb, 3)
		e.w.Put(uint64(dPC)&((1<<e.cfg.DeltaPCBits)-1), e.cfg.DeltaPCBits)
		e.w.Put(uint64(dTgt)&((1<<e.cfg.DeltaTargetBits)-1), e.cfg.DeltaTargetBits)
	} else {
		e.w.Put(1, 1)
		e.w.Put(kb, 3)
		e.w.Put(rec.BranchPC, e.cfg.FullAddrBits)
		e.w.Put(rec.Target, e.cfg.FullAddrBits)
	}
	if e.w.Full() {
		return false, nil
	}
	e.prevTarget = rec.Target
	e.hasPrev = true
	e.Records++
	if compact {
		e.CompactRecords++
	}
	return true, nil
}

// Finish flushes the final partial byte.
func (e *Encoder) Finish() { e.w.Flush() }

// Compact returns the number of compact (delta-encoded) records.
func (e *Encoder) Compact() int { return e.CompactRecords }

// BitsWritten returns the stream length in bits.
func (e *Encoder) BitsWritten() int { return e.w.BitsWritten() }

// Decoder reads the stream back, reconstructing full addresses.
type Decoder struct {
	cfg        CodecConfig
	r          *BitReader
	prevTarget uint64
}

// NewDecoder creates a decoder over region (from its read cursor).
func NewDecoder(c CodecConfig, region *memsys.Region) *Decoder {
	return &Decoder{cfg: c, r: NewBitReader(region)}
}

// signExtend interprets the low `bits` of v as signed.
func signExtend(v uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

// Decode returns the next record; ok is false at end of stream.
func (d *Decoder) Decode() (rec Record, ok bool, err error) {
	format, ok := d.r.Take(1)
	if !ok {
		return Record{}, false, nil
	}
	kb, ok := d.r.Take(3)
	if !ok {
		return Record{}, false, nil // trailing flush padding
	}
	kind, err := bitsKind(kb)
	if err != nil {
		return Record{}, false, err
	}
	if format == 0 {
		dpcRaw, ok1 := d.r.Take(d.cfg.DeltaPCBits)
		dtgRaw, ok2 := d.r.Take(d.cfg.DeltaTargetBits)
		if !ok1 || !ok2 {
			return Record{}, false, nil
		}
		dPC := signExtend(dpcRaw, d.cfg.DeltaPCBits)
		dTgt := signExtend(dtgRaw, d.cfg.DeltaTargetBits)
		pc := uint64(int64(d.prevTarget) + dPC*cfg.InstrBytes)
		tgt := uint64(int64(pc) + dTgt*cfg.InstrBytes)
		d.prevTarget = tgt
		return Record{BranchPC: pc, Target: tgt, Kind: kind}, true, nil
	}
	pc, ok1 := d.r.Take(d.cfg.FullAddrBits)
	tgt, ok2 := d.r.Take(d.cfg.FullAddrBits)
	if !ok1 || !ok2 {
		return Record{}, false, nil
	}
	d.prevTarget = tgt
	return Record{BranchPC: pc, Target: tgt, Kind: kind}, true, nil
}

// BitsRead returns the stream bits consumed so far.
func (d *Decoder) BitsRead() int { return d.r.BitsRead() }
