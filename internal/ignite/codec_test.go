package ignite

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"ignite/internal/cfg"
	"ignite/internal/memsys"
)

func roundtrip(t *testing.T, codec CodecConfig, recs []Record) []Record {
	t.Helper()
	region := memsys.NewRegion(0, 1<<20)
	enc := NewEncoder(codec, region)
	for _, r := range recs {
		ok, err := enc.Encode(r)
		if err != nil || !ok {
			t.Fatalf("encode %+v: ok=%v err=%v", r, ok, err)
		}
	}
	enc.Finish()
	region.ResetRead()
	dec := NewDecoder(codec, region)
	var out []Record
	for {
		r, ok, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

func TestCodecRoundtripSimple(t *testing.T) {
	recs := []Record{
		{BranchPC: 0x400010, Target: 0x400040, Kind: cfg.BranchCond},
		{BranchPC: 0x400050, Target: 0x400100, Kind: cfg.BranchUncond},
		{BranchPC: 0x400104, Target: 0x900000, Kind: cfg.BranchCall}, // far: full record
		{BranchPC: 0x900020, Target: 0x400108, Kind: cfg.BranchReturn},
	}
	got := roundtrip(t, DefaultCodecConfig(), recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecCompactVsFull(t *testing.T) {
	codec := DefaultCodecConfig()
	region := memsys.NewRegion(0, 1<<16)
	enc := NewEncoder(codec, region)
	// First record is always full (no previous target).
	enc.Encode(Record{BranchPC: 0x400000, Target: 0x400040, Kind: cfg.BranchCond})
	// Nearby branch: compact.
	enc.Encode(Record{BranchPC: 0x400050, Target: 0x400080, Kind: cfg.BranchCond})
	// Distant target: full.
	enc.Encode(Record{BranchPC: 0x400090, Target: 0x80000000, Kind: cfg.BranchCall})
	enc.Finish()
	if enc.Records != 3 || enc.CompactRecords != 1 {
		t.Errorf("records=%d compact=%d, want 3/1", enc.Records, enc.CompactRecords)
	}
	// Size: 2 full (100b) + 1 compact (32b) = 232 bits -> 29 bytes.
	wantBits := 2*codec.FullBits() + codec.CompactBits()
	if enc.BitsWritten() != wantBits {
		t.Errorf("bits = %d, want %d", enc.BitsWritten(), wantBits)
	}
}

func TestCodecNegativeDeltas(t *testing.T) {
	// Backward branch (loop): target below branch PC.
	recs := []Record{
		{BranchPC: 0x400100, Target: 0x400180, Kind: cfg.BranchUncond},
		{BranchPC: 0x4001a0, Target: 0x400184, Kind: cfg.BranchCond}, // backward, near
	}
	got := roundtrip(t, DefaultCodecConfig(), recs)
	if got[1] != recs[1] {
		t.Errorf("backward branch: got %+v want %+v", got[1], recs[1])
	}
}

func TestCodecRegionFullStopsCleanly(t *testing.T) {
	codec := DefaultCodecConfig()
	region := memsys.NewRegion(0, 32) // tiny
	enc := NewEncoder(codec, region)
	wrote := 0
	for i := 0; i < 100; i++ {
		ok, err := enc.Encode(Record{
			BranchPC: uint64(0x400000 + i*0x1000), // far apart: all full records
			Target:   uint64(0x800000 + i*0x2000),
			Kind:     cfg.BranchCond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		wrote++
	}
	if wrote == 0 || wrote >= 100 {
		t.Fatalf("wrote %d records into a 32-byte region", wrote)
	}
	enc.Finish()
	// Decoding must terminate without error and yield <= wrote records.
	region.ResetRead()
	dec := NewDecoder(codec, region)
	n := 0
	for {
		_, ok, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n > wrote {
		t.Errorf("decoded %d > encoded %d", n, wrote)
	}
}

func TestCodecBitWidths(t *testing.T) {
	c := DefaultCodecConfig()
	if c.CompactBits() != 1+3+7+21 {
		t.Errorf("compact bits = %d", c.CompactBits())
	}
	if c.FullBits() != 1+3+96 {
		t.Errorf("full bits = %d", c.FullBits())
	}
}

// Property: any sequence of word-aligned records in the 48-bit address
// space round-trips exactly.
func TestCodecRoundtripProperty(t *testing.T) {
	kinds := []cfg.BranchKind{cfg.BranchCond, cfg.BranchUncond, cfg.BranchCall,
		cfg.BranchReturn, cfg.BranchIndirectJump, cfg.BranchIndirectCall}
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^99))
		count := int(n%40) + 1
		recs := make([]Record, count)
		pc := uint64(0x400000)
		for i := range recs {
			// Mix of local and far control flow.
			if rng.IntN(4) == 0 {
				pc = rng.Uint64N(1<<47) &^ 3
			} else {
				pc += uint64(rng.IntN(64)) * 4
			}
			tgt := (pc + uint64(rng.IntN(1<<12))*4 - uint64(rng.IntN(1<<11))*4) &^ 3
			tgt &= (1 << 47) - 1
			recs[i] = Record{BranchPC: pc, Target: tgt, Kind: kinds[rng.IntN(len(kinds))]}
			pc = tgt
		}
		got := roundtripNoT(recs)
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func roundtripNoT(recs []Record) []Record {
	region := memsys.NewRegion(0, 1<<20)
	enc := NewEncoder(DefaultCodecConfig(), region)
	for _, r := range recs {
		if ok, err := enc.Encode(r); err != nil || !ok {
			return nil
		}
	}
	enc.Finish()
	region.ResetRead()
	dec := NewDecoder(DefaultCodecConfig(), region)
	var out []Record
	for {
		r, ok, err := dec.Decode()
		if err != nil || !ok {
			break
		}
		out = append(out, r)
	}
	return out
}
