package ignite

import (
	"testing"

	"ignite/internal/bpred"
	"ignite/internal/btb"
	"ignite/internal/cfg"
	"ignite/internal/engine"
	"ignite/internal/memsys"
	"ignite/internal/workload"
)

func testEngine(t *testing.T) (*engine.Engine, workload.Spec) {
	t.Helper()
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.FDPEnabled = true
	return engine.New(prog, cfg), spec
}

func TestRecorderCapturesBTBInsertions(t *testing.T) {
	eng, spec := testEngine(t)
	region := memsys.NewRegion(0, MaxMetadataBytes)
	rec := NewRecorder(DefaultCodecConfig(), region, eng.Traffic())
	rec.Attach(eng.BTB())
	rec.Start()
	eng.Thrash(1)
	if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 4}); err != nil {
		t.Fatal(err)
	}
	rec.Stop()
	if rec.Records() < 1000 {
		t.Fatalf("recorded only %d entries", rec.Records())
	}
	if region.Used() == 0 {
		t.Fatal("no metadata written")
	}
	// Metadata bandwidth accounted.
	rep := eng.Traffic().Report()
	if rep.RecordMetaBytes == 0 {
		t.Error("record bandwidth not accounted")
	}
}

func TestRecorderDisabledRecordsNothing(t *testing.T) {
	eng, spec := testEngine(t)
	region := memsys.NewRegion(0, MaxMetadataBytes)
	rec := NewRecorder(DefaultCodecConfig(), region, nil)
	rec.Attach(eng.BTB())
	// Never started.
	eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 8})
	if rec.Records() != 0 || region.Used() != 0 {
		t.Error("disabled recorder captured data")
	}
}

func TestReplayRestoresState(t *testing.T) {
	eng, spec := testEngine(t)
	store := memsys.NewStore()
	ig := New(DefaultConfig(), eng, store, "test")
	ig.Install()

	// Record a lukewarm invocation.
	eng.Thrash(1)
	ig.StartRecord()
	if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 2}); err != nil {
		t.Fatal(err)
	}
	ig.StopRecord()
	ig.ArmReplay()

	// Thrash, then drain the replay without running the core.
	eng.Thrash(2)
	if eng.BTB().Occupancy() != 0 {
		t.Fatal("BTB not empty after thrash")
	}
	ig.Replayer().BeginInvocation()
	ig.Replayer().Drain()

	if got := eng.BTB().Occupancy(); got < 500 {
		t.Errorf("replay restored only %d BTB entries", got)
	}
	if ig.Replayer().BIMSet == 0 {
		t.Error("no BIM entries initialized")
	}
	if ig.Replayer().LinesPrefetched == 0 {
		t.Error("no instruction lines prefetched")
	}
	// Restored BIM counters should be weakly taken.
	rep := eng.Traffic().Report()
	if rep.ReplayMetaBytes == 0 {
		t.Error("replay bandwidth not accounted")
	}
}

func TestReplayThrottling(t *testing.T) {
	eng, spec := testEngine(t)
	store := memsys.NewStore()
	cfg := DefaultConfig()
	cfg.Replay.ThrottleThreshold = 100 // tiny threshold
	ig := New(cfg, eng, store, "test")
	ig.Install()

	eng.Thrash(1)
	ig.StartRecord()
	eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 2})
	ig.StopRecord()
	ig.ArmReplay()

	eng.Thrash(2)
	ig.Replayer().BeginInvocation()
	ig.Replayer().Drain()
	// With nothing touching the BTB, replay must stop at ~threshold.
	if got := eng.BTB().RestoredUntouched(); got > 100+8 {
		t.Errorf("throttle exceeded: %d untouched restored entries", got)
	}
	if ig.Replayer().Done() {
		t.Error("replay claims done while throttled")
	}
}

func TestReplayBIMPolicies(t *testing.T) {
	for _, policy := range []BIMPolicy{BIMNone, BIMWeaklyTaken, BIMWeaklyNotTaken} {
		eng, spec := testEngine(t)
		store := memsys.NewStore()
		cfg := DefaultConfig()
		cfg.Replay.Policy = policy
		ig := New(cfg, eng, store, "test")
		ig.Install()

		eng.Thrash(1)
		ig.StartRecord()
		eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 4})
		ig.StopRecord()
		ig.ArmReplay()
		eng.CBP().Bimodal().Flush() // all weakly-not-taken
		ig.Replayer().BeginInvocation()
		ig.Replayer().Drain()

		switch policy {
		case BIMNone:
			if ig.Replayer().BIMSet != 0 {
				t.Errorf("%v: BIM touched", policy)
			}
		default:
			if ig.Replayer().BIMSet == 0 {
				t.Errorf("%v: BIM not initialized", policy)
			}
		}
	}
}

func TestOSControlRegisters(t *testing.T) {
	eng, _ := testEngine(t)
	store := memsys.NewStore()
	ig := New(DefaultConfig(), eng, store, "regs")

	regs := ig.Regs()
	if regs.RecordEnable || regs.ReplayEnable {
		t.Fatal("enable bits set before configuration")
	}
	ig.StartRecord()
	regs = ig.Regs()
	if !regs.RecordEnable || regs.RecordBase == 0 || regs.RecordSize == 0 {
		t.Errorf("record regs not configured: %+v", regs)
	}
	ig.StopRecord()
	if ig.Regs().RecordEnable {
		t.Error("record enable still set")
	}
	ig.ArmReplay()
	regs = ig.Regs()
	if !regs.ReplayEnable || regs.ReplayBase == 0 {
		t.Errorf("replay regs not configured: %+v", regs)
	}
	ig.DisarmReplay()
	if ig.Regs().ReplayEnable {
		t.Error("replay enable still set")
	}
}

func TestDoubleBufferSwapsRegions(t *testing.T) {
	eng, spec := testEngine(t)
	store := memsys.NewStore()
	cfg := DefaultConfig()
	cfg.DoubleBuffer = true
	ig := New(cfg, eng, store, "db")
	ig.Install()

	// First record goes to region A.
	ig.StartRecord()
	eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 8})
	ig.StopRecord()
	baseA := ig.Regs().RecordBase
	ig.ArmReplay()
	if ig.Regs().ReplayBase != baseA {
		t.Fatal("replay should use the recorded region")
	}
	// Recording while replay is armed must use the other region.
	ig.StartRecord()
	if ig.Regs().RecordBase == baseA {
		t.Error("double-buffered record reused the replaying region")
	}
}

func TestInducedMispredictionTracking(t *testing.T) {
	// A restored weakly-taken counter that is wrong on first use counts
	// as an induced misprediction via Bimodal.WasRestored.
	bim := bpred.NewBimodal(64)
	pc := uint64(0x400)
	bim.Set(pc, bpred.WeaklyTaken)
	if !bim.WasRestored(pc) {
		t.Fatal("restored mark missing")
	}
	bim.Update(pc, false)
	if bim.WasRestored(pc) {
		t.Fatal("restored mark survived training")
	}
}

func TestBranchKindHelpers(t *testing.T) {
	e := toBTBEntry(Record{BranchPC: 1, Target: 2, Kind: cfg.BranchCall})
	if e.PC != 1 || e.Target != 2 || e.Kind != cfg.BranchCall {
		t.Error("toBTBEntry broken")
	}
	if branchCond() != cfg.BranchCond {
		t.Error("branchCond broken")
	}
	var _ = btb.Entry{}
}

func TestBIMPolicyString(t *testing.T) {
	if BIMWeaklyTaken.String() != "weakly-taken" || BIMNone.String() != "none" ||
		BIMWeaklyNotTaken.String() != "weakly-not-taken" {
		t.Error("BIMPolicy.String broken")
	}
}
