package ignite

import (
	"testing"

	"ignite/internal/bpred"
	"ignite/internal/btb"
	"ignite/internal/cfg"
	"ignite/internal/engine"
	"ignite/internal/memsys"
	"ignite/internal/obs"
	"ignite/internal/workload"
)

func testEngine(t *testing.T) (*engine.Engine, workload.Spec) {
	t.Helper()
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.FDPEnabled = true
	return engine.New(prog, cfg), spec
}

func TestRecorderCapturesBTBInsertions(t *testing.T) {
	eng, spec := testEngine(t)
	region := memsys.NewRegion(0, MaxMetadataBytes)
	rec := NewRecorder(DefaultCodecConfig(), region, eng.Traffic())
	rec.Attach(eng.BTB())
	rec.Start()
	eng.Thrash(1)
	if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 4}); err != nil {
		t.Fatal(err)
	}
	rec.Stop()
	if rec.Records() < 1000 {
		t.Fatalf("recorded only %d entries", rec.Records())
	}
	if region.Used() == 0 {
		t.Fatal("no metadata written")
	}
	// Metadata bandwidth accounted.
	rep := eng.Traffic().Report()
	if rep.RecordMetaBytes == 0 {
		t.Error("record bandwidth not accounted")
	}
}

func TestRecorderDisabledRecordsNothing(t *testing.T) {
	eng, spec := testEngine(t)
	region := memsys.NewRegion(0, MaxMetadataBytes)
	rec := NewRecorder(DefaultCodecConfig(), region, nil)
	rec.Attach(eng.BTB())
	// Never started.
	eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 8})
	if rec.Records() != 0 || region.Used() != 0 {
		t.Error("disabled recorder captured data")
	}
}

func TestReplayRestoresState(t *testing.T) {
	eng, spec := testEngine(t)
	store := memsys.NewStore()
	ig := New(DefaultConfig(), eng, store, "test")
	ig.Install()

	// Record a lukewarm invocation.
	eng.Thrash(1)
	ig.StartRecord()
	if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 2}); err != nil {
		t.Fatal(err)
	}
	ig.StopRecord()
	ig.ArmReplay()

	// Thrash, then drain the replay without running the core.
	eng.Thrash(2)
	if eng.BTB().Occupancy() != 0 {
		t.Fatal("BTB not empty after thrash")
	}
	ig.Replayer().BeginInvocation()
	ig.Replayer().Drain()

	if got := eng.BTB().Occupancy(); got < 500 {
		t.Errorf("replay restored only %d BTB entries", got)
	}
	if ig.Replayer().BIMSet == 0 {
		t.Error("no BIM entries initialized")
	}
	if ig.Replayer().LinesPrefetched == 0 {
		t.Error("no instruction lines prefetched")
	}
	// Restored BIM counters should be weakly taken.
	rep := eng.Traffic().Report()
	if rep.ReplayMetaBytes == 0 {
		t.Error("replay bandwidth not accounted")
	}
}

// recordedIgnite arms a replay over a half-invocation recording made with a
// tiny throttle threshold, so the stream is much larger than the threshold.
func recordedIgnite(t *testing.T, threshold int) (*engine.Engine, *Ignite) {
	t.Helper()
	eng, spec := testEngine(t)
	store := memsys.NewStore()
	cfg := DefaultConfig()
	cfg.Replay.ThrottleThreshold = threshold
	ig := New(cfg, eng, store, "test")
	ig.Install()

	eng.Thrash(1)
	ig.StartRecord()
	if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 2}); err != nil {
		t.Fatal(err)
	}
	ig.StopRecord()
	ig.ArmReplay()
	eng.Thrash(2)
	return eng, ig
}

func TestReplayThrottling(t *testing.T) {
	// The throttle applies to the rate-limited Tick path: with nothing
	// touching the BTB, background replay must pause at ~threshold
	// untouched restored entries instead of racing through the stream.
	eng, ig := recordedIgnite(t, 100)
	r := ig.Replayer()
	r.BeginInvocation()
	for i := 0; i < 2000; i++ {
		r.Tick(uint64(i), 1)
	}
	if got := eng.BTB().RestoredUntouched(); got > 100+8 {
		t.Errorf("throttle exceeded: %d untouched restored entries", got)
	}
	if r.Done() {
		t.Error("replay claims done while throttled")
	}
	if r.ThrottleStalls == 0 {
		t.Error("no throttle stalls counted while paused")
	}
}

func TestDrainIgnoresThrottle(t *testing.T) {
	// Regression: Drain used to stop at the throttle threshold and leave
	// the replay half-consumed while still active. Its contract is to run
	// the stream to completion ignoring rate limits.
	eng, ig := recordedIgnite(t, 100)
	col := &obs.Collector{}
	eng.SetTracer(col)
	r := ig.Replayer()
	r.BeginInvocation()
	r.Drain()

	if !r.Done() {
		t.Error("Drain left the replay active")
	}
	if r.Restored <= 100 {
		t.Errorf("Drain stopped at the throttle: restored only %d records", r.Restored)
	}
	if got := eng.BTB().RestoredUntouched(); got <= 100 {
		t.Errorf("expected untouched restores far past the threshold, got %d", got)
	}
	if col.Count("replay_end") != 1 {
		t.Errorf("ReplayEnd emitted %d times, want 1", col.Count("replay_end"))
	}
	// The whole recorded stream was consumed and charged to the bus.
	if r.BytesRead() == 0 || r.BytesRead() > r.RegionUsed() {
		t.Errorf("replay read %d bytes of %d recorded", r.BytesRead(), r.RegionUsed())
	}
}

func TestBeginInvocationWithoutRegion(t *testing.T) {
	// Regression: an armed replayer with no recorded region (nothing was
	// ever recorded) must stay inactive instead of dereferencing nil.
	eng, _ := testEngine(t)
	r := NewReplayer(DefaultReplayConfig(), DefaultCodecConfig(), eng, nil, nil)
	r.Arm()
	r.BeginInvocation() // must not panic
	if !r.Done() {
		t.Error("replayer activated with no metadata region")
	}
	r.Tick(0, 100) // must be a no-op
	if r.Restored != 0 || r.RegionUsed() != 0 {
		t.Errorf("inactive replayer restored %d records", r.Restored)
	}

	// An empty (but present) region: replay starts and finishes on the
	// first decode without restoring anything.
	r.SetRegion(memsys.NewRegion(0x1000, MaxMetadataBytes))
	r.Arm()
	r.BeginInvocation()
	r.Tick(0, 100)
	if !r.Done() {
		t.Error("empty-region replay never finished")
	}
	if r.Restored != 0 {
		t.Errorf("empty-region replay restored %d records", r.Restored)
	}
}

func TestTickCreditRetentionAcrossStalls(t *testing.T) {
	// Regression: stalled cycles must not accrue decode credit (that would
	// bank an unbounded burst for when the throttle lifts), but credit
	// earned before the stall is retained, not forfeited.
	eng, ig := recordedIgnite(t, 50)
	r := ig.Replayer()
	r.BeginInvocation()

	// Grant a large burst at once: replay restores to ~threshold and then
	// throttles mid-burst with leftover credit in the bank.
	r.Tick(0, 500)
	if r.Done() {
		t.Fatal("stream too small to throttle")
	}
	if eng.BTB().RestoredUntouched() <= 50 {
		t.Fatalf("throttle did not engage: %d untouched", eng.BTB().RestoredUntouched())
	}
	credit := r.Credit()
	if credit < 1 {
		t.Fatalf("expected leftover credit after a mid-burst stall, got %g", credit)
	}
	restored := r.Restored
	stalls := r.ThrottleStalls

	// While stalled, further cycles confer no credit and restore nothing.
	for i := 0; i < 100; i++ {
		r.Tick(uint64(500 + i), 10)
	}
	if got := r.Credit(); got != credit {
		t.Errorf("credit changed during stall: %g -> %g", credit, got)
	}
	if r.Restored != restored {
		t.Errorf("restored %d records while throttled", r.Restored-restored)
	}
	if r.ThrottleStalls <= stalls {
		t.Error("stalled ticks not counted")
	}
}

func TestReplayBIMPolicies(t *testing.T) {
	for _, policy := range []BIMPolicy{BIMNone, BIMWeaklyTaken, BIMWeaklyNotTaken} {
		eng, spec := testEngine(t)
		store := memsys.NewStore()
		cfg := DefaultConfig()
		cfg.Replay.Policy = policy
		ig := New(cfg, eng, store, "test")
		ig.Install()

		eng.Thrash(1)
		ig.StartRecord()
		eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 4})
		ig.StopRecord()
		ig.ArmReplay()
		eng.CBP().Bimodal().Flush() // all weakly-not-taken
		ig.Replayer().BeginInvocation()
		ig.Replayer().Drain()

		switch policy {
		case BIMNone:
			if ig.Replayer().BIMSet != 0 {
				t.Errorf("%v: BIM touched", policy)
			}
		default:
			if ig.Replayer().BIMSet == 0 {
				t.Errorf("%v: BIM not initialized", policy)
			}
		}
	}
}

func TestOSControlRegisters(t *testing.T) {
	eng, _ := testEngine(t)
	store := memsys.NewStore()
	ig := New(DefaultConfig(), eng, store, "regs")

	regs := ig.Regs()
	if regs.RecordEnable || regs.ReplayEnable {
		t.Fatal("enable bits set before configuration")
	}
	ig.StartRecord()
	regs = ig.Regs()
	if !regs.RecordEnable || regs.RecordBase == 0 || regs.RecordSize == 0 {
		t.Errorf("record regs not configured: %+v", regs)
	}
	ig.StopRecord()
	if ig.Regs().RecordEnable {
		t.Error("record enable still set")
	}
	ig.ArmReplay()
	regs = ig.Regs()
	if !regs.ReplayEnable || regs.ReplayBase == 0 {
		t.Errorf("replay regs not configured: %+v", regs)
	}
	ig.DisarmReplay()
	if ig.Regs().ReplayEnable {
		t.Error("replay enable still set")
	}
}

func TestDoubleBufferSwapsRegions(t *testing.T) {
	eng, spec := testEngine(t)
	store := memsys.NewStore()
	cfg := DefaultConfig()
	cfg.DoubleBuffer = true
	ig := New(cfg, eng, store, "db")
	ig.Install()

	// First record goes to region A.
	ig.StartRecord()
	eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 8})
	ig.StopRecord()
	baseA := ig.Regs().RecordBase
	ig.ArmReplay()
	if ig.Regs().ReplayBase != baseA {
		t.Fatal("replay should use the recorded region")
	}
	// Recording while replay is armed must use the other region.
	ig.StartRecord()
	if ig.Regs().RecordBase == baseA {
		t.Error("double-buffered record reused the replaying region")
	}
}

func TestInducedMispredictionTracking(t *testing.T) {
	// A restored weakly-taken counter that is wrong on first use counts
	// as an induced misprediction via Bimodal.WasRestored.
	bim := bpred.NewBimodal(64)
	pc := uint64(0x400)
	bim.Set(pc, bpred.WeaklyTaken)
	if !bim.WasRestored(pc) {
		t.Fatal("restored mark missing")
	}
	bim.Update(pc, false)
	if bim.WasRestored(pc) {
		t.Fatal("restored mark survived training")
	}
}

func TestBranchKindHelpers(t *testing.T) {
	e := toBTBEntry(Record{BranchPC: 1, Target: 2, Kind: cfg.BranchCall})
	if e.PC != 1 || e.Target != 2 || e.Kind != cfg.BranchCall {
		t.Error("toBTBEntry broken")
	}
	if branchCond() != cfg.BranchCond {
		t.Error("branchCond broken")
	}
	var _ = btb.Entry{}
}

func TestBIMPolicyString(t *testing.T) {
	if BIMWeaklyTaken.String() != "weakly-taken" || BIMNone.String() != "none" ||
		BIMWeaklyNotTaken.String() != "weakly-not-taken" {
		t.Error("BIMPolicy.String broken")
	}
}
