package ignite

import (
	"ignite/internal/bpred"
	"ignite/internal/cache"
	"ignite/internal/engine"
	"ignite/internal/memsys"
	"ignite/internal/obs"
)

// BIMPolicy selects how replay initializes the bimodal entry of each
// restored conditional branch (the Figure 11 study).
type BIMPolicy uint8

const (
	// BIMNone leaves the bimodal untouched (restore L2 + BTB only).
	BIMNone BIMPolicy = iota
	// BIMWeaklyTaken is Ignite's policy: a recorded branch was taken, so
	// prime its counter to weakly-taken.
	BIMWeaklyTaken
	// BIMWeaklyNotTaken is the counterproductive alternative evaluated
	// in Figure 11.
	BIMWeaklyNotTaken
)

func (p BIMPolicy) String() string {
	switch p {
	case BIMNone:
		return "none"
	case BIMWeaklyTaken:
		return "weakly-taken"
	case BIMWeaklyNotTaken:
		return "weakly-not-taken"
	default:
		return "?"
	}
}

// ReplayConfig parameterizes the replay engine.
type ReplayConfig struct {
	// EntriesPerCycle is the peak decode/restore rate.
	EntriesPerCycle float64
	// ThrottleThreshold pauses replay while more than this many restored
	// BTB entries remain untouched by the front end (Section 4.2; the
	// paper uses 1K).
	ThrottleThreshold int
	// MaxChainLines caps the instruction lines prefetched per record
	// when chaining from the previous record's target to this record's
	// branch PC.
	MaxChainLines int
	// Policy is the bimodal initialization policy.
	Policy BIMPolicy
}

// DefaultReplayConfig returns the paper's replay parameters.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{
		EntriesPerCycle:   1,
		ThrottleThreshold: 1024,
		MaxChainLines:     8,
		Policy:            BIMWeaklyTaken,
	}
}

// Replayer implements Ignite's replay logic (Section 4.2) as an engine
// companion: it streams the recorded metadata sequentially and, for each
// record, restores the BTB entry, primes the BIM, pre-translates the branch
// PC (I-TLB warming), and prefetches the code region between the previous
// record's target and this record's branch PC into the L2 cache.
type Replayer struct {
	cfg     ReplayConfig
	codec   CodecConfig
	eng     *engine.Engine
	region  *memsys.Region
	traffic TrafficSink

	dec        *Decoder
	armed      bool
	active     bool
	prevTarget uint64
	hasPrev    bool
	credit     float64
	bitsSeen   int

	// Stats for the restore-accuracy study.
	Restored        int
	BIMSet          int
	LinesPrefetched int
	ThrottleStalls  int
}

// NewReplayer builds a replayer over the given engine's structures.
func NewReplayer(cfg ReplayConfig, codec CodecConfig, eng *engine.Engine,
	region *memsys.Region, traffic TrafficSink) *Replayer {
	return &Replayer{cfg: cfg, codec: codec, eng: eng, region: region, traffic: traffic}
}

var _ engine.Companion = (*Replayer)(nil)

// Name implements engine.Companion.
func (r *Replayer) Name() string { return "ignite-replay" }

// SetRegion points the replayer at a (newly recorded) metadata region.
func (r *Replayer) SetRegion(region *memsys.Region) {
	r.region = region
	r.active = false
}

// Arm schedules replay to start at the next invocation (the OS sets the
// replay control bit before scheduling the function).
func (r *Replayer) Arm() { r.armed = true }

// Disarm cancels replay for subsequent invocations.
func (r *Replayer) Disarm() { r.armed = false; r.active = false }

// Done reports whether the armed replay has consumed the whole stream.
func (r *Replayer) Done() bool { return !r.active }

// BeginInvocation implements engine.Companion: replay starts together with
// the function (Section 4.3).
func (r *Replayer) BeginInvocation() {
	if !r.armed || r.region == nil {
		// Armed with no metadata region (nothing was ever recorded):
		// there is no stream to replay, so stay inactive rather than
		// dereferencing a nil region.
		return
	}
	if t := r.eng.Tracer(); t != nil {
		t.ReplayStart(obs.ReplayStartEvent{
			Mechanism: r.Name(), Now: r.eng.Now(), Bytes: r.region.Used(),
		})
	}
	r.region.ResetRead()
	r.dec = NewDecoder(r.codec, r.region)
	r.active = true
	r.prevTarget = 0
	r.hasPrev = false
	r.credit = 0
	r.bitsSeen = 0
	r.Restored = 0
	r.BIMSet = 0
	r.LinesPrefetched = 0
	r.ThrottleStalls = 0
}

// OnInstrFetch implements engine.Companion (unused by Ignite).
func (r *Replayer) OnInstrFetch(lineAddr uint64, lvl cache.Level, now uint64) {}

// FetchPassive declares the no-op OnInstrFetch to the engine, which then
// keeps the replayer off the per-line fetch dispatch entirely.
func (r *Replayer) FetchPassive() {}

// Tick implements engine.Companion: advance the replay state machine by the
// granted cycles.
func (r *Replayer) Tick(now uint64, cycles int) {
	if !r.active {
		return
	}
	btbRef := r.eng.BTB()
	if btbRef.RestoredUntouched() > r.cfg.ThrottleThreshold {
		// Replay is paused: stalled cycles confer no decode credit.
		// (Accruing here would bank an unbounded burst during a long
		// stall, letting the replayer exceed its rated EntriesPerCycle
		// the moment the throttle lifts.) Credit already earned before
		// the stall is retained.
		r.ThrottleStalls++
		return
	}
	r.credit += float64(cycles) * r.cfg.EntriesPerCycle
	for r.credit >= 1 {
		if btbRef.RestoredUntouched() > r.cfg.ThrottleThreshold {
			r.ThrottleStalls++
			return // throttled mid-burst; leftover credit is retained
		}
		r.credit--
		rec, ok, err := r.dec.Decode()
		if err != nil || !ok {
			r.finish()
			return
		}
		r.apply(rec)
	}
}

// Drain runs the replayer to completion ignoring rate limits (useful for
// tests and for modeling an idle-core restore).
func (r *Replayer) Drain() {
	if !r.armed {
		return
	}
	if !r.active {
		r.BeginInvocation()
	}
	for r.active {
		rec, ok, err := r.dec.Decode()
		if err != nil || !ok {
			r.finish()
			return
		}
		r.apply(rec)
	}
}

// BytesRead returns the metadata bytes consumed (charged to the bus) by the
// current/last replay — the quantity the replay-meta-bytes invariant bounds
// by the recorded region size.
func (r *Replayer) BytesRead() int { return r.bitsSeen / 8 }

// RegionUsed returns the recorded metadata bytes available for replay.
func (r *Replayer) RegionUsed() int {
	if r.region == nil {
		return 0
	}
	return r.region.Used()
}

// Credit returns the un-spent decode credit (test instrumentation for the
// throttle pacing model).
func (r *Replayer) Credit() float64 { return r.credit }

func (r *Replayer) finish() {
	r.active = false
	r.accountBits()
	if t := r.eng.Tracer(); t != nil {
		t.ReplayEnd(obs.ReplayEndEvent{
			Mechanism: r.Name(), Now: r.eng.Now(), Restored: r.Restored,
		})
	}
}

// accountBits charges replay metadata bandwidth for newly consumed bits.
func (r *Replayer) accountBits() {
	if r.traffic == nil || r.dec == nil {
		return
	}
	bits := r.dec.BitsRead()
	if bytes := (bits - r.bitsSeen) / 8; bytes > 0 {
		r.traffic.AddReplayBytes(bytes)
		r.bitsSeen += bytes * 8
	}
}

// apply restores one metadata record into the front-end structures.
func (r *Replayer) apply(rec Record) {
	r.Restored++
	hier := r.eng.Hierarchy()

	// BTB entry, marked restored for throttle/accuracy tracking.
	r.eng.BTB().Insert(toBTBEntry(rec), true)

	// BIM initialization for conditional branches.
	if rec.Kind == branchCond() && r.cfg.Policy != BIMNone {
		val := bpred.WeaklyTaken
		if r.cfg.Policy == BIMWeaklyNotTaken {
			val = bpred.WeaklyNotTaken
		}
		r.eng.CBP().Bimodal().Set(rec.BranchPC, val)
		r.BIMSet++
	}

	// Address translation warms the I-TLB as a side effect.
	r.eng.ITLB().Prefill(rec.BranchPC)

	// Instruction prefetch into L2: chain from the previous record's
	// target through this record's branch PC — reconstructing the
	// contiguous code region between two discontinuities.
	start := rec.BranchPC
	if r.hasPrev && r.prevTarget <= rec.BranchPC {
		start = r.prevTarget
	}
	startLine := start &^ (cache.LineBytesConst - 1)
	endLine := rec.BranchPC &^ (cache.LineBytesConst - 1)
	lines := 0
	for la := startLine; la <= endLine && lines < r.cfg.MaxChainLines; la += cache.LineBytesConst {
		if from, issued := hier.PrefetchInstr(la, cache.SrcIgnite, cache.LvlL2); issued {
			r.eng.NotePendingLine(la, from, 0)
			r.LinesPrefetched++
		}
		lines++
	}

	r.prevTarget = rec.Target
	r.hasPrev = true
	r.accountBits()
}
