package ignite

import (
	"ignite/internal/btb"
	"ignite/internal/memsys"
)

// Recorder implements Ignite's record logic (Section 4.1): it taps BTB
// insertion events — which in modern cores happen only when a taken branch
// commits — and appends each new entry to the per-container metadata region
// as a delta-compressed record. The recorder needs no other on-chip state
// than the last-inserted-entry register held by the Encoder.
type Recorder struct {
	codec   CodecConfig
	region  *memsys.Region
	enc     *Encoder
	enabled bool
	traffic TrafficSink

	// Dropped counts insertions lost because the region filled.
	Dropped int
}

// TrafficSink receives metadata bandwidth accounting; implemented by
// *memsys.Traffic.
type TrafficSink interface {
	AddRecordBytes(n int)
	AddReplayBytes(n int)
}

// NewRecorder creates a recorder writing into region. traffic may be nil.
func NewRecorder(codec CodecConfig, region *memsys.Region, traffic TrafficSink) *Recorder {
	return &Recorder{
		codec:   codec,
		region:  region,
		enc:     NewEncoder(codec, region),
		traffic: traffic,
	}
}

// Attach hooks the recorder to the BTB's insertion events. Attach once;
// enable/disable per invocation with Start/Stop.
func (r *Recorder) Attach(b *btb.BTB) {
	b.OnInsert(r.OnBTBInsert)
}

// Start begins recording into a fresh region.
func (r *Recorder) Start() {
	r.region.ResetWrite()
	r.enc = NewEncoder(r.codec, r.region)
	r.Dropped = 0
	r.enabled = true
}

// Stop finalizes the stream.
func (r *Recorder) Stop() {
	if !r.enabled {
		return
	}
	r.enabled = false
	before := r.region.Used()
	r.enc.Finish()
	if r.traffic != nil && r.region.Used() > before {
		r.traffic.AddRecordBytes(r.region.Used() - before)
	}
}

// Enabled reports whether the recorder is currently active.
func (r *Recorder) Enabled() bool { return r.enabled }

// Records returns the number of entries recorded so far.
func (r *Recorder) Records() int { return r.enc.Records }

// CompactRecords returns how many records used the compact delta format.
func (r *Recorder) CompactRecords() int { return r.enc.CompactRecords }

// OnBTBInsert observes one commit-time BTB insertion.
func (r *Recorder) OnBTBInsert(e btb.Entry) {
	if !r.enabled {
		return
	}
	before := r.region.Used()
	ok, err := r.enc.Encode(Record{BranchPC: e.PC, Target: e.Target, Kind: e.Kind})
	if err != nil || !ok {
		r.Dropped++
		return
	}
	if r.traffic != nil && r.region.Used() > before {
		r.traffic.AddRecordBytes(r.region.Used() - before)
	}
}
