package ignite

import (
	"fmt"

	"ignite/internal/btb"
	"ignite/internal/cfg"
	"ignite/internal/engine"
	"ignite/internal/memsys"
	"ignite/internal/obs"
)

// MaxMetadataBytes is the paper's per-function metadata cap (120 KiB).
const MaxMetadataBytes = 120 << 10

func toBTBEntry(rec Record) btb.Entry {
	return btb.Entry{PC: rec.BranchPC, Target: rec.Target, Kind: rec.Kind}
}

func branchCond() cfg.BranchKind { return cfg.BranchCond }

// Config bundles all Ignite parameters.
type Config struct {
	Codec         CodecConfig
	Replay        ReplayConfig
	MetadataBytes int
	// DoubleBuffer runs record and replay simultaneously with two
	// metadata regions, letting Ignite track a branch working set that
	// evolves across invocations (Section 4.3).
	DoubleBuffer bool
}

// DefaultConfig returns the paper's Ignite configuration.
func DefaultConfig() Config {
	return Config{
		Codec:         DefaultCodecConfig(),
		Replay:        DefaultReplayConfig(),
		MetadataBytes: MaxMetadataBytes,
	}
}

// Ignite couples a recorder and a replayer for one function container and
// exposes the control-register protocol the operating system drives
// (Section 4.3). Attach it to an engine with Install.
type Ignite struct {
	cfg  Config
	eng  *engine.Engine
	regs ControlRegs

	regionA *memsys.Region
	regionB *memsys.Region
	rec     *Recorder
	rep     *Replayer
}

// ControlRegs models Ignite's architectural control registers: base/size of
// the metadata region and the record/replay enable bits. The register
// values are visible for inspection; the simulator manipulates them through
// the OS-level methods below, exactly as a kernel driver would.
type ControlRegs struct {
	RecordBase   uint64
	RecordSize   uint64
	RecordEnable bool
	ReplayBase   uint64
	ReplaySize   uint64
	ReplayEnable bool
}

// New creates an Ignite instance for a container, allocating its metadata
// region(s) from the store.
func New(cfg Config, eng *engine.Engine, store *memsys.Store, container string) *Ignite {
	if cfg.MetadataBytes <= 0 {
		cfg.MetadataBytes = MaxMetadataBytes
	}
	ig := &Ignite{cfg: cfg, eng: eng}
	ig.regionA = store.Allocate(container+"/ignite-a", cfg.MetadataBytes)
	if cfg.DoubleBuffer {
		ig.regionB = store.Allocate(container+"/ignite-b", cfg.MetadataBytes)
	}
	ig.rec = NewRecorder(cfg.Codec, ig.regionA, eng.Traffic())
	ig.rep = NewReplayer(cfg.Replay, cfg.Codec, eng, ig.regionA, eng.Traffic())
	return ig
}

// Install attaches the record tap to the engine's BTB and registers the
// replayer as a companion. Call once after engine construction.
func (ig *Ignite) Install() {
	ig.rec.Attach(ig.eng.BTB())
	ig.eng.AddCompanion(ig.rep)
}

// Recorder exposes the record component.
func (ig *Ignite) Recorder() *Recorder { return ig.rec }

// Replayer exposes the replay component.
func (ig *Ignite) Replayer() *Replayer { return ig.rep }

// Regs returns the current control-register values.
func (ig *Ignite) Regs() ControlRegs { return ig.regs }

// StartRecord models the OS configuring the record registers and setting
// the record-enable bit before launching a fresh function instance.
func (ig *Ignite) StartRecord() {
	region := ig.recordRegion()
	ig.regs.RecordBase = region.Base
	ig.regs.RecordSize = uint64(region.Capacity())
	ig.regs.RecordEnable = true
	ig.rec = NewRecorder(ig.cfg.Codec, region, ig.eng.Traffic())
	ig.rec.Attach(ig.eng.BTB())
	ig.rec.Start()
}

// StopRecord clears the record-enable bit and finalizes the stream.
func (ig *Ignite) StopRecord() {
	ig.regs.RecordEnable = false
	ig.rec.Stop()
}

// ArmReplay models the OS pointing the replay registers at the recorded
// metadata and setting the replay-enable bit; replay starts when the next
// invocation is scheduled on the core.
func (ig *Ignite) ArmReplay() {
	region := ig.replayRegion()
	ig.regs.ReplayBase = region.Base
	ig.regs.ReplaySize = uint64(region.Used())
	ig.regs.ReplayEnable = true
	ig.rep.SetRegion(region)
	ig.rep.Arm()
	// With double buffering the OS activates record and replay together
	// (Section 4.3): replay streams the last invocation's metadata while
	// the recorder captures an evolving working set into the other
	// region — the paper's worst-case metadata bandwidth.
	if ig.cfg.DoubleBuffer {
		ig.StartRecord()
	}
}

// DisarmReplay clears the replay-enable bit.
func (ig *Ignite) DisarmReplay() {
	ig.regs.ReplayEnable = false
	ig.rep.Disarm()
}

// recordRegion picks the region the next record phase writes.
func (ig *Ignite) recordRegion() *memsys.Region {
	if ig.cfg.DoubleBuffer && ig.regs.ReplayEnable && ig.regs.ReplayBase == ig.regionA.Base {
		return ig.regionB
	}
	return ig.regionA
}

// replayRegion picks the most recently recorded region.
func (ig *Ignite) replayRegion() *memsys.Region {
	if ig.cfg.DoubleBuffer && ig.regs.RecordBase == ig.regionB.Base && ig.regionB.Used() > 0 {
		return ig.regionB
	}
	return ig.regionA
}

// MetadataUsed returns the bytes of metadata currently recorded.
func (ig *Ignite) MetadataUsed() int {
	return ig.recordRegionUsed()
}

func (ig *Ignite) recordRegionUsed() int {
	used := ig.regionA.Used()
	if ig.regionB != nil && ig.regionB.Used() > used {
		used = ig.regionB.Used()
	}
	return used
}

// RegisterMetrics exposes the instance's record/replay statistics through
// the obs registry as read-through sources.
func (ig *Ignite) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	l := labels.With("component", "ignite")
	reg.CounterFunc("ignite.records", l, func() uint64 { return uint64(ig.rec.Records()) })
	reg.CounterFunc("ignite.compact_records", l, func() uint64 { return uint64(ig.rec.CompactRecords()) })
	reg.CounterFunc("ignite.dropped_records", l, func() uint64 { return uint64(ig.rec.Dropped) })
	reg.GaugeFunc("ignite.metadata_bytes", l, func() float64 { return float64(ig.MetadataUsed()) })
	reg.CounterFunc("ignite.restored", l, func() uint64 { return uint64(ig.rep.Restored) })
	reg.CounterFunc("ignite.bim_set", l, func() uint64 { return uint64(ig.rep.BIMSet) })
	reg.CounterFunc("ignite.lines_prefetched", l, func() uint64 { return uint64(ig.rep.LinesPrefetched) })
	reg.CounterFunc("ignite.throttle_stalls", l, func() uint64 { return uint64(ig.rep.ThrottleStalls) })
}

// String summarizes the instance state.
func (ig *Ignite) String() string {
	return fmt.Sprintf("ignite{meta=%dB, rec=%v, rep=%v}",
		ig.recordRegionUsed(), ig.regs.RecordEnable, ig.regs.ReplayEnable)
}
