package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/obs"
	"ignite/internal/workload"
)

// Server timeouts; overridable through Config.
const (
	defaultRequestTimeout = 60 * time.Second
	maxRequestTimeout     = 5 * time.Minute
	drainGrace            = 30 * time.Second
	maxBodyBytes          = 1 << 20
)

// Config shapes one serving daemon.
type Config struct {
	// Addr is the listen address (":8080"; ":0" for an ephemeral port).
	Addr string
	// TargetInstr overrides every function's instruction budget when > 0 —
	// CI smokes and tests serve small cells; production serves Table 1's.
	TargetInstr uint64
	// Checks enables the runtime invariant verifier on fresh cells.
	Checks bool
	// MaxCycles arms the per-invocation watchdog on fresh cells.
	MaxCycles uint64
	// Faults is the injection plan (nil = none), from IGNITE_FAULTS.
	Faults *faults.Plan
	// Registry receives the serve.* metric family (nil = private registry).
	Registry *obs.Registry
	// Tracer observes fresh cell simulations (nil = none).
	Tracer obs.Tracer
	// Population adds extra servable functions beyond the Table-1 catalog —
	// ignite-serve -population mounts a sampled fleet population here. The
	// Table-1 catalog wins name clashes (sampled names are prefixed, so
	// clashes cannot happen in practice), and the TargetInstr override
	// applies to population cells the same way.
	Population []workload.Spec

	// Batching/admission knobs (zero = defaults; see batcher.go).
	MaxBatch int
	MaxWait  time.Duration
	Queue    int
	Workers  int
	Retries  int
	Backoff  time.Duration

	// RequestTimeout is the default per-request deadline; a request's
	// timeoutMs may shorten or extend it up to 5 minutes.
	RequestTimeout time.Duration
}

// Server is the invocation-serving daemon: HTTP handlers in front of a
// coalescing Batcher in front of the experiment layer's cell cache.
//
// The hot path never reaches the batcher: every successful response body is
// remembered under its request body, so a repeated request (the steady state
// of a load test hammering one warm function) costs one map lookup and one
// write. Cells are pure functions of their key, which is what makes the
// pre-encoded bytes reusable verbatim.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	batcher  *Batcher
	cache    *experiments.CellCache
	start    time.Time
	draining atomic.Bool

	// respCache maps exact request-body bytes → pre-encoded response bytes.
	// Distinct spellings of the same cell simply occupy two entries; both
	// point at the one cached cell underneath.
	respCache sync.Map

	// popByName/popNames index Config.Population for resolution and the
	// catalog listing (names in mount order, after the Table-1 catalog).
	popByName map[string]workload.Spec
	popNames  []string

	listener net.Listener
	http     *http.Server
	served   chan error

	mRequests *obs.Counter
	mOK       *obs.Counter
	mErrors   *obs.Counter
	mShed     *obs.Counter
	mFast     *obs.Counter
	mInflight *obs.Gauge
}

// NewServer builds a daemon from cfg. Call Start to begin listening.
func NewServer(cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = defaultRequestTimeout
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cache := experiments.NewCellCache()
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		cache: cache,
		batcher: NewBatcher(BatcherConfig{
			Cache:    cache,
			Env:      experiments.CellEnv{Tracer: cfg.Tracer, Checks: cfg.Checks, MaxCycles: cfg.MaxCycles},
			Faults:   cfg.Faults,
			MaxBatch: cfg.MaxBatch,
			MaxWait:  cfg.MaxWait,
			Queue:    cfg.Queue,
			Workers:  cfg.Workers,
			Retries:  cfg.Retries,
			Backoff:  cfg.Backoff,
		}, reg),
		start:  time.Now(),
		served: make(chan error, 1),
	}
	s.popByName = make(map[string]workload.Spec, len(cfg.Population))
	for _, spec := range cfg.Population {
		if _, err := workload.ByName(spec.Name); err == nil {
			continue // Table-1 wins name clashes
		}
		if _, dup := s.popByName[spec.Name]; dup {
			continue
		}
		s.popByName[spec.Name] = spec
		s.popNames = append(s.popNames, spec.Name)
	}
	l := obs.L("component", "serve")
	s.mRequests = reg.Counter("serve.requests", l)
	s.mOK = reg.Counter("serve.responses_ok", l)
	s.mErrors = reg.Counter("serve.responses_error", l)
	s.mShed = reg.Counter("serve.shed", l)
	s.mFast = reg.Counter("serve.fast_path_hits", l)
	s.mInflight = reg.Gauge("serve.inflight", l)

	mux := http.NewServeMux()
	mux.HandleFunc(PathInvoke, s.handleInvoke)
	mux.HandleFunc(PathCatalog, s.handleCatalog)
	mux.HandleFunc(PathMetrics, s.handleMetrics)
	mux.HandleFunc(PathHealthz, s.handleHealthz)
	s.http = &http.Server{Handler: mux}
	return s
}

// Start binds the listen address and serves in the background. After Start
// returns, Addr reports the bound address (useful with ":0").
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.listener = ln
	go func() {
		err := s.http.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.served <- err
	}()
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Shutdown drains the daemon: stop accepting connections, wait for in-flight
// handlers (they need the batcher alive), then drain the batcher's pending
// batches. This ordering is what makes SIGTERM lossless — every admitted
// request is answered before the process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.http.Shutdown(ctx)
	s.batcher.Close()
	if serveErr := <-s.served; serveErr != nil && err == nil {
		err = serveErr
	}
	return err
}

// Run serves until ctx is canceled (SIGTERM via signal.NotifyContext), then
// drains with a bounded grace period.
func (s *Server) Run(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	grace, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	return s.Shutdown(grace)
}

// handleInvoke is POST /v1/invoke.
func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)

	if r.Method != http.MethodPost {
		s.writeError(w, envelope(CodeBadRequest, "use POST"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, envelope(CodeBadRequest, "read body: %v", err))
		return
	}

	// Hot path: a byte-identical request replays its pre-encoded response.
	if enc, ok := s.respCache.Load(string(body)); ok {
		s.mFast.Inc()
		s.mOK.Inc()
		writeJSONBytes(w, http.StatusOK, enc.([]byte))
		return
	}

	req, envErr := ParseInvokeRequest(body)
	if envErr != nil {
		s.writeError(w, envErr)
		return
	}
	spec, envErr := s.resolve(req)
	if envErr != nil {
		s.writeError(w, envErr)
		return
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > maxRequestTimeout {
			timeout = maxRequestTimeout
		}
	}
	ctx, cancel := context.WithTimeoutCause(r.Context(), timeout,
		fmt.Errorf("request exceeded its %s deadline", timeout))
	defer cancel()

	cell, cached, batchSize, envErr := s.batcher.Submit(ctx, spec)
	if envErr != nil {
		s.writeError(w, envErr)
		return
	}

	resp := InvokeResponse{
		SchemaVersion: SchemaVersion,
		Function:      spec.Workload.Name,
		Config:        string(spec.Config),
		Mode:          req.Mode,
		CellKey:       cell.Key,
		Cached:        cached,
		BatchSize:     batchSize,
		Result:        ResultFrom(cell.Res),
	}
	if resp.Mode == "" {
		resp.Mode = "interleaved"
	}
	enc, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, envelope(CodeInternal, "encode response: %v", err))
		return
	}
	s.mOK.Inc()
	writeJSONBytes(w, http.StatusOK, enc)

	// Remember the warm variant for subsequent identical requests.
	warm := resp
	warm.Cached = true
	warm.BatchSize = 0
	if wenc, err := json.Marshal(warm); err == nil {
		s.respCache.Store(string(body), wenc)
	}
}

// resolve maps a validated wire request onto a cell spec.
func (s *Server) resolve(req InvokeRequest) (experiments.CellSpec, *ErrorEnvelope) {
	var spec experiments.CellSpec
	wl, err := workload.ByName(req.Function)
	if err != nil {
		pop, ok := s.popByName[req.Function]
		if !ok {
			return spec, envelope(CodeUnknownFunction, "%v", err)
		}
		wl = pop
	}
	if s.cfg.TargetInstr > 0 {
		wl.TargetInstr = s.cfg.TargetInstr
	}
	kind, envErr := ParseKind(req.Config)
	if envErr != nil {
		return spec, envErr
	}
	mode, envErr := ParseMode(req.Mode)
	if envErr != nil {
		return spec, envErr
	}
	tweaks, terr := req.Tweaks.ToSim()
	if terr != nil {
		return spec, envelope(CodeBadRequest, "%v", terr)
	}
	return experiments.CellSpec{Workload: wl, Config: kind, Tweaks: tweaks, Mode: mode}, nil
}

// handleCatalog is GET /v1/catalog.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	configs := make([]string, 0, 11)
	for _, k := range allKinds() {
		configs = append(configs, k)
	}
	writeJSON(w, http.StatusOK, CatalogResponse{
		SchemaVersion: SchemaVersion,
		Functions:     append(workload.Names(), s.popNames...),
		Configs:       configs,
		Modes:         []string{"interleaved", "back-to-back"},
	})
}

// handleMetrics is GET /metrics: the registry snapshot as a versioned
// document. Instruments are scrape-safe (see obs.Registry), so this reads a
// live registry while request workers update it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	doc := MetricsDocument{
		SchemaVersion: SchemaVersion,
		Kind:          MetricsDocumentKind,
		UptimeSec:     time.Since(s.start).Seconds(),
		Samples:       make([]MetricSample, 0, len(snap)),
	}
	for _, smp := range snap {
		doc.Samples = append(doc.Samples, MetricSample{
			Key:   smp.Key(),
			Kind:  string(smp.Kind),
			Value: smp.Value,
			Count: smp.Count,
			Min:   smp.Min,
			Max:   smp.Max,
		})
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	cells, hits := s.cache.Stats()
	writeJSON(w, code, map[string]any{
		"status":    status,
		"uptimeSec": time.Since(s.start).Seconds(),
		"cells":     cells,
		"cellHits":  hits,
	})
}

// RetryAfterSec is the backoff hint stamped on shed (429) and
// shutting-down (503) responses as a Retry-After header. One second spans
// a cold cell simulation at serving scale, so a client that honors it
// usually finds the cell warm on its retry instead of re-joining the
// overload.
const RetryAfterSec = 1

func (s *Server) writeError(w http.ResponseWriter, env *ErrorEnvelope) {
	if env.Code == CodeOverloaded {
		s.mShed.Inc()
	}
	if env.Code == CodeOverloaded || env.Code == CodeShuttingDown {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSec))
	}
	s.mErrors.Inc()
	writeJSON(w, env.HTTPStatus(), env)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, code, enc)
}

func writeJSONBytes(w http.ResponseWriter, code int, enc []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(enc)
}
