package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

// testInstr keeps test cells small: 3 measured invocations of ~20k
// instructions simulate in tens of milliseconds.
const testInstr = 20000

func TestParseInvokeRequestStrict(t *testing.T) {
	good := []byte(`{"schemaVersion":1,"function":"Auth-G"}`)
	req, envErr := ParseInvokeRequest(good)
	if envErr != nil {
		t.Fatalf("good request rejected: %v", envErr)
	}
	if req.Function != "Auth-G" {
		t.Errorf("function = %q", req.Function)
	}

	cases := []struct {
		name, body, code string
	}{
		{"missing version", `{"function":"Auth-G"}`, CodeUnsupportedSchema},
		{"future version", `{"schemaVersion":2,"function":"Auth-G"}`, CodeUnsupportedSchema},
		{"unknown field", `{"schemaVersion":1,"function":"Auth-G","wat":1}`, CodeBadRequest},
		{"missing function", `{"schemaVersion":1}`, CodeBadRequest},
		{"malformed", `{`, CodeBadRequest},
	}
	for _, c := range cases {
		if _, envErr := ParseInvokeRequest([]byte(c.body)); envErr == nil || envErr.Code != c.code {
			t.Errorf("%s: got %+v, want code %s", c.name, envErr, c.code)
		}
	}
}

func TestErrorEnvelopeMapping(t *testing.T) {
	cases := []struct {
		code      string
		status    int
		retryable bool
	}{
		{CodeBadRequest, 400, false},
		{CodeUnsupportedSchema, 400, false},
		{CodeUnknownFunction, 404, false},
		{CodeOverloaded, 429, true},
		{CodeShuttingDown, 503, true},
		{CodeDeadline, 504, true},
		{CodeInternal, 500, false},
	}
	for _, c := range cases {
		e := envelope(c.code, "x")
		if e.HTTPStatus() != c.status || e.Retryable != c.retryable {
			t.Errorf("%s: status %d retryable %v, want %d %v",
				c.code, e.HTTPStatus(), e.Retryable, c.status, c.retryable)
		}
	}
}

func TestTweakSpecToSim(t *testing.T) {
	spec := &TweakSpec{KeepBTB: true, BIMPolicy: "weakly-not-taken", BTBEntries: 6144}
	tw, err := spec.ToSim()
	if err != nil {
		t.Fatal(err)
	}
	if !tw.Keep.BTB || tw.Keep.BIM || tw.BTBEntries != 6144 {
		t.Errorf("tweaks = %+v", tw)
	}
	if tw.BIMPolicy == nil || tw.BIMPolicy.String() != "weakly-not-taken" {
		t.Errorf("bim policy = %v", tw.BIMPolicy)
	}
	if _, err := (&TweakSpec{BIMPolicy: "sideways"}).ToSim(); err == nil {
		t.Error("bad bim policy accepted")
	}
	// Geometry the engine would panic on must be rejected at the wire.
	for _, bad := range []*TweakSpec{
		{L2KiB: 512},      // 8192 lines not divisible by 20 ways
		{L2KiB: 400},      // divisible, but 320 sets is not a power of two
		{BTBEntries: 2048}, // not divisible by 6 ways
		{BTBEntries: 6000}, // divisible, but 1000 sets is not a power of two
		{MetadataBytes: -1},
	} {
		if _, err := bad.ToSim(); err == nil {
			t.Errorf("invalid tweak %+v accepted", bad)
		}
	}
	for _, good := range []int{320, 640, 1280, 2560} {
		if _, err := (&TweakSpec{L2KiB: good}).ToSim(); err != nil {
			t.Errorf("valid l2KiB %d rejected: %v", good, err)
		}
	}
	var nilSpec *TweakSpec
	if tw, err := nilSpec.ToSim(); err != nil || tw != (sim.Tweaks{}) {
		t.Errorf("nil spec: %+v, %v", tw, err)
	}
}

func TestParseKindAndMode(t *testing.T) {
	if k, envErr := ParseKind(""); envErr != nil || k != sim.KindIgnite {
		t.Errorf("default kind = %v, %v", k, envErr)
	}
	if _, envErr := ParseKind("warp-drive"); envErr == nil || envErr.Code != CodeUnknownConfig {
		t.Errorf("unknown kind: %+v", envErr)
	}
	if m, envErr := ParseMode("back-to-back"); envErr != nil || m != lukewarm.BackToBack {
		t.Errorf("b2b mode = %v, %v", m, envErr)
	}
	if _, envErr := ParseMode("diagonal"); envErr == nil || envErr.Code != CodeUnknownMode {
		t.Errorf("unknown mode: %+v", envErr)
	}
}

// testSpec returns a small workload cell spec.
func testSpec(t *testing.T, fn string) experiments.CellSpec {
	t.Helper()
	wl, err := workload.ByName(fn)
	if err != nil {
		t.Fatal(err)
	}
	wl.TargetInstr = testInstr
	return experiments.CellSpec{Workload: wl, Config: sim.KindIgnite, Mode: lukewarm.Interleaved}
}

// TestBatcherCoalesces fires concurrent same-cell requests during one
// max-wait window and asserts they share a single computation.
func TestBatcherCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBatcher(BatcherConfig{MaxWait: 50 * time.Millisecond, Workers: 1}, reg)
	defer b.Close()
	spec := testSpec(t, "Auth-G")

	const n = 6
	var wg sync.WaitGroup
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell, _, size, envErr := b.Submit(context.Background(), spec)
			if envErr != nil {
				t.Errorf("submit %d: %v", i, envErr)
				return
			}
			if cell == nil || cell.Res == nil {
				t.Errorf("submit %d: empty cell", i)
			}
			sizes[i] = size
		}(i)
	}
	wg.Wait()
	for i, size := range sizes {
		if size != n {
			t.Errorf("request %d batch size = %d, want %d (all coalesced)", i, size, n)
		}
	}
	snap := reg.Snapshot().Values()
	if got := snap["serve.batches{component=serve}"]; got != 1 {
		t.Errorf("batches = %v, want 1", got)
	}
	if got := snap["serve.batched_requests{component=serve}"]; got != n {
		t.Errorf("batched requests = %v, want %d", got, n)
	}
	if s, ok := reg.Snapshot().Get("serve.batch_size{component=serve}"); !ok || s.Max != n {
		t.Errorf("batch size max = %+v, want %d", s, n)
	}
}

// TestBatcherAdmissionControl forces the dispatcher to block on a busy
// worker pool and asserts the bounded queue sheds the overflow with an
// overloaded envelope instead of growing.
func TestBatcherAdmissionControl(t *testing.T) {
	plan := faults.New(1)
	if err := plan.Add("slow@serve/*/*:delay=400ms,trips=8"); err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(BatcherConfig{
		Faults:   plan,
		MaxBatch: 1, // every request is its own batch
		MaxWait:  time.Millisecond,
		Queue:    1,
		Workers:  1,
	}, nil)
	defer b.Close()

	// Distinct functions → distinct cells → distinct batches.
	fns := []string{"Auth-G", "Curr-N", "Geo-G", "Prof-G"}
	specs := make([]experiments.CellSpec, 0, len(fns))
	for _, fn := range fns {
		specs = append(specs, testSpec(t, fn))
	}

	results := make(chan *ErrorEnvelope, len(specs))
	for i, spec := range specs {
		go func(spec experiments.CellSpec) {
			_, _, _, envErr := b.Submit(context.Background(), spec)
			results <- envErr
		}(spec)
		// Sequence the submissions: the first occupies the worker (slow
		// fault), the second blocks the dispatcher, the third sits in the
		// queue, the fourth must shed.
		if i < len(specs)-1 {
			time.Sleep(60 * time.Millisecond)
		}
	}

	var shed int
	for range specs {
		if envErr := <-results; envErr != nil {
			if envErr.Code != CodeOverloaded {
				t.Errorf("unexpected error: %+v", envErr)
			} else if !envErr.Retryable {
				t.Error("overloaded must be retryable")
			} else {
				shed++
			}
		}
	}
	if shed == 0 {
		t.Error("no request was shed by the bounded queue")
	}
}

// TestBatcherDeadline submits against a slow cell with an expired budget and
// expects a retryable deadline envelope.
func TestBatcherDeadline(t *testing.T) {
	plan := faults.New(1)
	if err := plan.Add("slow@serve/*/*:delay=300ms"); err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(BatcherConfig{Faults: plan, MaxWait: time.Millisecond}, nil)
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, _, envErr := b.Submit(ctx, testSpec(t, "Auth-G"))
	if envErr == nil || envErr.Code != CodeDeadline || !envErr.Retryable {
		t.Fatalf("got %+v, want retryable deadline", envErr)
	}
}

// TestBatcherRetriesTransient verifies the serving path reuses the
// transient-retry discipline: an injected transient fault is retried and the
// request still succeeds.
func TestBatcherRetriesTransient(t *testing.T) {
	plan := faults.New(1)
	if err := plan.Add("transient@serve/Auth-G/ignite"); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	b := NewBatcher(BatcherConfig{Faults: plan, MaxWait: time.Millisecond, Backoff: time.Millisecond}, reg)
	defer b.Close()

	cell, _, _, envErr := b.Submit(context.Background(), testSpec(t, "Auth-G"))
	if envErr != nil {
		t.Fatalf("submit: %v", envErr)
	}
	if cell == nil || cell.Res == nil {
		t.Fatal("empty cell after retry")
	}
	if got := reg.Snapshot().Values()["serve.cell_retries{component=serve}"]; got != 1 {
		t.Errorf("retries = %v, want 1", got)
	}
}

// TestBatcherCloseDrains submits in-flight work, closes, and asserts every
// admitted request was answered and later submits are refused.
func TestBatcherCloseDrains(t *testing.T) {
	b := NewBatcher(BatcherConfig{MaxWait: 20 * time.Millisecond}, nil)
	spec := testSpec(t, "Auth-G")

	const n = 4
	var wg sync.WaitGroup
	errs := make([]*ErrorEnvelope, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _, errs[i] = b.Submit(context.Background(), spec)
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the submissions reach the queue
	b.Close()
	wg.Wait()
	for i, envErr := range errs {
		if envErr != nil {
			t.Errorf("admitted request %d not drained: %v", i, envErr)
		}
	}
	if _, _, _, envErr := b.Submit(context.Background(), spec); envErr == nil || envErr.Code != CodeShuttingDown {
		t.Errorf("post-close submit: %+v, want shutting-down", envErr)
	}
}

// startTestServer boots a daemon on an ephemeral port and tears it down with
// the test.
func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.TargetInstr == 0 {
		cfg.TargetInstr = testInstr
	}
	s := NewServer(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func postInvoke(t *testing.T, addr string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+PathInvoke, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServerIntegration drives the full stack: mixed-function concurrent
// requests on an ephemeral port, coalescing visible in the batch-size
// metric, responses bit-identical to a direct lukewarm run of the same
// cell, and a live /metrics scrape racing the whole thing (this test is the
// -race proof for the serving path).
func TestServerIntegration(t *testing.T) {
	s := startTestServer(t, Config{MaxWait: 40 * time.Millisecond})
	addr := s.Addr()

	// Scrape /metrics concurrently with the request storm.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
				resp, err := http.Get("http://" + addr + PathMetrics)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	fns := []string{"Auth-G", "Curr-N"}
	const perFn = 4
	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, len(fns)*perFn)
	var wg sync.WaitGroup
	for _, fn := range fns {
		body := fmt.Sprintf(`{"schemaVersion":1,"function":%q,"config":"ignite"}`, fn)
		for i := 0; i < perFn; i++ {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				resp, data := postInvoke(t, addr, body)
				replies <- reply{resp.StatusCode, data}
			}(body)
		}
	}
	wg.Wait()
	close(replies)
	close(stopScrape)
	<-scrapeDone

	perFnResults := make(map[string][]InvokeResponse)
	for r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		var ir InvokeResponse
		if err := json.Unmarshal(r.body, &ir); err != nil {
			t.Fatalf("decode: %v", err)
		}
		perFnResults[ir.Function] = append(perFnResults[ir.Function], ir)
	}

	for _, fn := range fns {
		rs := perFnResults[fn]
		if len(rs) != perFn {
			t.Fatalf("%s: %d responses, want %d", fn, len(rs), perFn)
		}
		for _, r := range rs[1:] {
			if !reflect.DeepEqual(r.Result, rs[0].Result) {
				t.Errorf("%s: responses disagree:\n%+v\n%+v", fn, r.Result, rs[0].Result)
			}
			if r.CellKey != rs[0].CellKey {
				t.Errorf("%s: cell keys disagree: %q vs %q", fn, r.CellKey, rs[0].CellKey)
			}
		}

		// Bit-identical to the batch pipeline: simulate the same cell
		// directly and compare the flattened wire result exactly.
		wl, err := workload.ByName(fn)
		if err != nil {
			t.Fatal(err)
		}
		wl.TargetInstr = testInstr
		setup, err := sim.New(wl, sim.KindIgnite)
		if err != nil {
			t.Fatal(err)
		}
		res, err := setup.Run(lukewarm.Interleaved)
		if err != nil {
			t.Fatal(err)
		}
		if direct := ResultFrom(res); !reflect.DeepEqual(direct, rs[0].Result) {
			t.Errorf("%s: served result differs from direct lukewarm run:\nserved %+v\ndirect %+v",
				fn, rs[0].Result, direct)
		}
	}

	// Coalescing must be visible in the metrics document.
	resp, err := http.Get("http://" + addr + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	doc, err := DecodeMetrics(data)
	if err != nil {
		t.Fatal(err)
	}
	batchSize, ok := doc.Get("serve.batch_size{component=serve}")
	if !ok {
		t.Fatal("batch-size metric missing from /metrics")
	}
	if batchSize.Max < 2 {
		t.Errorf("max batch size = %v, want >= 2 (no coalescing happened)", batchSize.Max)
	}
	batches := doc.Value("serve.batches{component=serve}")
	batched := doc.Value("serve.batched_requests{component=serve}")
	if batches == 0 || batched/batches <= 1 {
		t.Errorf("coalescing ratio = %v/%v, want > 1", batched, batches)
	}
}

// TestServerFastPathAndErrors checks the warm response cache and the error
// envelopes end to end.
func TestServerFastPathAndErrors(t *testing.T) {
	s := startTestServer(t, Config{})
	addr := s.Addr()
	body := `{"schemaVersion":1,"function":"Auth-G","config":"ignite"}`

	resp, data := postInvoke(t, addr, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: %d %s", resp.StatusCode, data)
	}
	var first InvokeResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}

	resp, data = postInvoke(t, addr, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second: %d %s", resp.StatusCode, data)
	}
	var second InvokeResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request was not served from the response cache")
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Error("cached response result differs from the computed one")
	}

	for _, c := range []struct {
		body   string
		status int
		code   string
	}{
		{`{"schemaVersion":9,"function":"Auth-G"}`, 400, CodeUnsupportedSchema},
		{`{"schemaVersion":1,"function":"NoSuchFn"}`, 404, CodeUnknownFunction},
		{`{"schemaVersion":1,"function":"Auth-G","config":"warp"}`, 404, CodeUnknownConfig},
		{`{"schemaVersion":1,"function":"Auth-G","mode":"diagonal"}`, 404, CodeUnknownMode},
	} {
		resp, data := postInvoke(t, addr, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.body, resp.StatusCode, c.status)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Code != c.code {
			t.Errorf("%s: envelope %s (err %v), want code %s", c.body, data, err, c.code)
		}
	}
}

// TestServerHealthAndCatalog exercises the auxiliary endpoints.
func TestServerHealthAndCatalog(t *testing.T) {
	s := startTestServer(t, Config{})
	addr := s.Addr()

	resp, err := http.Get("http://" + addr + PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, health.Status)
	}

	resp, err = http.Get("http://" + addr + PathCatalog)
	if err != nil {
		t.Fatal(err)
	}
	var cat CatalogResponse
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cat.SchemaVersion != SchemaVersion || len(cat.Functions) != len(workload.Names()) {
		t.Errorf("catalog = %+v", cat)
	}
	var hasIgnite bool
	for _, c := range cat.Configs {
		if c == "ignite" {
			hasIgnite = true
		}
	}
	if !hasIgnite {
		t.Errorf("catalog configs missing ignite: %v", cat.Configs)
	}
}

// TestMetricsDocumentVersionGate pins the strict decode posture of the
// /metrics document.
func TestMetricsDocumentVersionGate(t *testing.T) {
	doc := MetricsDocument{SchemaVersion: SchemaVersion, Kind: MetricsDocumentKind,
		Samples: []MetricSample{{Key: "serve.requests", Kind: "counter", Value: 3}}}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMetrics(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Value("serve.requests") != 3 {
		t.Errorf("round trip lost sample: %+v", back)
	}

	bumped := bytes.Replace(data, []byte(`"schemaVersion":1`), []byte(`"schemaVersion":2`), 1)
	if _, err := DecodeMetrics(bumped); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("future schema version accepted: %v", err)
	}
	wrongKind := bytes.Replace(data, []byte(MetricsDocumentKind), []byte("ignite.other"), 1)
	if _, err := DecodeMetrics(wrongKind); err == nil {
		t.Error("wrong kind accepted")
	}
}

// TestRetryAfterHeader pins the backoff contract shed clients depend on:
// retryable overload responses (429 shed, 503 shutting-down) carry a
// Retry-After hint, while permanent errors do not — a client sleeping on a
// 400 would be waiting for a success that can never come.
func TestRetryAfterHeader(t *testing.T) {
	s := startTestServer(t, Config{})
	want := strconv.Itoa(RetryAfterSec)
	for _, c := range []struct {
		code string
		want string
	}{
		{CodeOverloaded, want},
		{CodeShuttingDown, want},
		{CodeBadRequest, ""},
		{CodeUnknownFunction, ""},
	} {
		rec := httptest.NewRecorder()
		s.writeError(rec, envelope(c.code, "test"))
		if got := rec.Header().Get("Retry-After"); got != c.want {
			t.Errorf("%s: Retry-After = %q, want %q", c.code, got, c.want)
		}
		if rec.Code != envelope(c.code, "test").HTTPStatus() {
			t.Errorf("%s: status %d", c.code, rec.Code)
		}
	}
}
