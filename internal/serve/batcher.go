package serve

import (
	"context"
	"runtime/debug"
	"sync"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/obs"
)

// Batcher defaults; overridable through Config.
const (
	defaultMaxBatch  = 64
	defaultMaxWait   = 2 * time.Millisecond
	defaultQueueSize = 1024
	defaultWorkers   = 2
	defaultRetries   = 2
	defaultBackoff   = 5 * time.Millisecond
	maxBackoff       = 2 * time.Second
)

// batchRequest is one caller waiting for a cell.
type batchRequest struct {
	spec experiments.CellSpec
	key  string
	// done receives exactly one batchResponse. It is buffered so a worker
	// can deliver without blocking even if the caller gave up (deadline).
	done chan batchResponse
}

// batchResponse is the outcome delivered to every waiter of a batch.
type batchResponse struct {
	cell      *experiments.ServedCell
	cached    bool
	batchSize int
	err       error
}

// pendingBatch collects waiters for one cell key between flushes.
type pendingBatch struct {
	spec    experiments.CellSpec
	waiters []*batchRequest
}

// Batcher coalesces concurrent invocation requests for the same simulation
// cell onto one engine run. Requests enter a bounded admission queue; a
// dispatcher goroutine groups them by cell key and flushes a group when it
// reaches maxBatch or when the oldest pending request has waited maxWait —
// so a Poisson burst of N same-function requests costs one warm cell and one
// batched invocation train instead of N independent setups. Flushed batches
// compute on a bounded worker pool through the experiment layer's
// single-flight CellCache, which makes served results bit-identical to the
// batch pipeline's by construction.
//
// Submit-vs-Close is made safe with an RWMutex around the admission send:
// Submit holds the read lock while sending on the queue, Close takes the
// write lock to flip closed before closing the channel, so a drain never
// races a send.
type Batcher struct {
	cache   *experiments.CellCache
	env     experiments.CellEnv
	faults  *faults.Plan
	retries int
	backoff time.Duration

	in       chan *batchRequest
	maxBatch int
	maxWait  time.Duration
	workers  chan struct{}

	mu     sync.RWMutex
	closed bool

	computing sync.WaitGroup
	drained   chan struct{}

	// metrics (registered by newBatcher into the server's registry)
	mBatches   *obs.Counter
	mBatched   *obs.Counter
	mCacheHits *obs.Counter
	mRetries   *obs.Counter
	mFailures  *obs.Counter
	mBatchSize *obs.Distribution
}

// BatcherConfig shapes one Batcher.
type BatcherConfig struct {
	Cache    *experiments.CellCache
	Env      experiments.CellEnv
	Faults   *faults.Plan // nil = no injection
	MaxBatch int
	MaxWait  time.Duration
	Queue    int // admission queue capacity
	Workers  int // concurrent cell computations
	Retries  int
	Backoff  time.Duration
}

// NewBatcher starts a batcher and registers its metric family into reg.
func NewBatcher(cfg BatcherConfig, reg *obs.Registry) *Batcher {
	if cfg.Cache == nil {
		cfg.Cache = experiments.NewCellCache()
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = defaultMaxWait
	}
	if cfg.Queue <= 0 {
		cfg.Queue = defaultQueueSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = defaultRetries
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = defaultBackoff
	}
	b := &Batcher{
		cache:    cfg.Cache,
		env:      cfg.Env,
		faults:   cfg.Faults,
		retries:  cfg.Retries,
		backoff:  cfg.Backoff,
		in:       make(chan *batchRequest, cfg.Queue),
		maxBatch: cfg.MaxBatch,
		maxWait:  cfg.MaxWait,
		workers:  make(chan struct{}, cfg.Workers),
		drained:  make(chan struct{}),
	}
	if reg != nil {
		l := obs.L("component", "serve")
		b.mBatches = reg.Counter("serve.batches", l)
		b.mBatched = reg.Counter("serve.batched_requests", l)
		b.mCacheHits = reg.Counter("serve.cell_cache_hits", l)
		b.mRetries = reg.Counter("serve.cell_retries", l)
		b.mFailures = reg.Counter("serve.cell_failures", l)
		b.mBatchSize = reg.Distribution("serve.batch_size", l)
		// len() on a buffered channel is an atomic read — safe for the
		// read-through contract documented on GaugeFunc.
		reg.GaugeFunc("serve.queue_depth", l, func() float64 { return float64(len(b.in)) })
	} else {
		b.mBatches = &obs.Counter{}
		b.mBatched = &obs.Counter{}
		b.mCacheHits = &obs.Counter{}
		b.mRetries = &obs.Counter{}
		b.mFailures = &obs.Counter{}
		b.mBatchSize = &obs.Distribution{}
	}
	go b.dispatch()
	return b
}

// Submit enqueues one request and blocks until its batch computes, the
// context expires, or the batcher is shut down. On success it returns the
// served cell, whether the cell came from the cache, and how many requests
// shared this computation. Failures come back as *ErrorEnvelope: overloaded
// when the admission queue is full, shutting-down after Close, deadline on
// context expiry (the underlying computation still completes and warms the
// cache for a retry), internal for simulation errors.
func (b *Batcher) Submit(ctx context.Context, spec experiments.CellSpec) (*experiments.ServedCell, bool, int, *ErrorEnvelope) {
	req := &batchRequest{spec: spec, key: spec.Key(), done: make(chan batchResponse, 1)}

	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, false, 0, envelope(CodeShuttingDown, "server is draining")
	}
	select {
	case b.in <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		return nil, false, 0, envelope(CodeOverloaded, "admission queue full (%d pending)", cap(b.in))
	}

	select {
	case resp := <-req.done:
		if resp.err != nil {
			if env, ok := resp.err.(*ErrorEnvelope); ok {
				return nil, false, 0, env
			}
			return nil, false, 0, envelope(CodeInternal, "%v", resp.err)
		}
		return resp.cell, resp.cached, resp.batchSize, nil
	case <-ctx.Done():
		return nil, false, 0, envelope(CodeDeadline, "request deadline exceeded: %v", context.Cause(ctx))
	}
}

// Close stops admission and blocks until every pending batch has computed
// and delivered — the SIGTERM drain. Safe to call once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.drained
		return
	}
	b.closed = true
	close(b.in)
	b.mu.Unlock()
	<-b.drained
}

// dispatch is the single goroutine that groups admitted requests into
// per-cell batches and flushes them. One timer covers all pending batches:
// it is armed when the first request of an empty round arrives, and on fire
// every pending batch flushes. A batch that reaches maxBatch flushes
// immediately without waiting for the timer.
func (b *Batcher) dispatch() {
	defer close(b.drained)
	pending := make(map[string]*pendingBatch)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	timerArmed := false

	flushAll := func() {
		for key, pb := range pending {
			delete(pending, key)
			b.compute(pb)
		}
		if timerArmed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerArmed = false
	}

	for {
		select {
		case req, ok := <-b.in:
			if !ok {
				flushAll()
				b.computing.Wait()
				return
			}
			pb := pending[req.key]
			if pb == nil {
				pb = &pendingBatch{spec: req.spec}
				pending[req.key] = pb
			}
			pb.waiters = append(pb.waiters, req)
			if len(pb.waiters) >= b.maxBatch {
				delete(pending, req.key)
				b.compute(pb)
				continue
			}
			if !timerArmed {
				timer.Reset(b.maxWait)
				timerArmed = true
			}
		case <-timer.C:
			timerArmed = false
			flushAll()
		}
	}
}

// compute hands one flushed batch to the worker pool. The dispatcher blocks
// until a worker slot frees — backpressure propagates to the admission
// queue, which sheds the overflow with 429s rather than growing without
// bound.
func (b *Batcher) compute(pb *pendingBatch) {
	b.workers <- struct{}{}
	b.computing.Add(1)
	b.mBatches.Inc()
	b.mBatched.Add(uint64(len(pb.waiters)))
	b.mBatchSize.Observe(float64(len(pb.waiters)))
	go func() {
		defer func() { <-b.workers; b.computing.Done() }()
		cell, cached, err := b.run(pb.spec)
		if err != nil {
			b.mFailures.Inc()
		} else if cached {
			b.mCacheHits.Inc()
		}
		resp := batchResponse{cell: cell, cached: cached, batchSize: len(pb.waiters), err: err}
		for _, w := range pb.waiters {
			w.done <- resp
		}
	}()
}

// run executes one cell with fault injection, panic isolation, and
// transient-retry — the serving counterpart of the experiment scheduler's
// supervise loop. Injected faults fire before the cache lookup, so an
// injected failure can never poison a cached result.
func (b *Batcher) run(spec experiments.CellSpec) (cell *experiments.ServedCell, cached bool, err error) {
	site := faults.Site{Experiment: "serve", Workload: spec.Workload.Name, Config: string(spec.Config)}
	for attempt := 1; ; attempt++ {
		cell, cached, err = b.attempt(site, spec)
		if err == nil {
			return cell, cached, nil
		}
		if attempt <= b.retries && faults.IsTransient(err) {
			b.mRetries.Inc()
			d := b.backoff << (attempt - 1)
			if d > maxBackoff || d <= 0 {
				d = maxBackoff
			}
			time.Sleep(d)
			continue
		}
		return nil, false, err
	}
}

func (b *Batcher) attempt(site faults.Site, spec experiments.CellSpec) (cell *experiments.ServedCell, cached bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &faults.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if err := b.faults.Fire(context.Background(), site); err != nil {
		return nil, false, err
	}
	return b.cache.Invoke(spec, b.env)
}
