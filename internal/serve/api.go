// Package serve is the invocation-serving layer: a long-running HTTP/JSON
// daemon (cmd/ignite-serve) that accepts invocation requests for named
// functions, coalesces concurrent requests for the same simulation cell
// onto one batched engine run through the experiment layer's cell cache,
// and answers with per-invocation latency/CPI/traffic results.
//
// This file defines the versioned v1 wire API. Every request and response
// carries an explicit SchemaVersion; unknown versions are rejected with a
// structured error envelope, the same posture obs.DecodeDocument takes for
// result documents. The server handlers, ignite-load, and the tests all
// share these types — there is no ad-hoc map shaping on either side of the
// wire.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/sim"
)

// SchemaVersion is the current version of the serving wire API. Bump it on
// any incompatible change to the request or response shapes; the server
// rejects requests carrying any other version.
const SchemaVersion = 1

// HTTP paths of the serving API.
const (
	PathInvoke  = "/v1/invoke"
	PathCatalog = "/v1/catalog"
	PathMetrics = "/metrics"
	PathHealthz = "/healthz"
)

// MetricsDocumentKind identifies the /metrics JSON document.
const MetricsDocumentKind = "ignite.serve-metrics"

// InvokeRequest asks the daemon to run (or serve from cache) the lukewarm
// protocol for one named function under one front-end configuration.
type InvokeRequest struct {
	// SchemaVersion must equal SchemaVersion (explicitly: a missing or
	// zero version is rejected, so old clients fail loudly).
	SchemaVersion int `json:"schemaVersion"`
	// Function is the Table-1 workload name, e.g. "Auth-G".
	Function string `json:"function"`
	// Config is the front-end configuration (default "ignite").
	Config string `json:"config,omitempty"`
	// Mode is "interleaved" (default) or "back-to-back".
	Mode string `json:"mode,omitempty"`
	// Tweaks optionally adjusts the configuration (sensitivity knobs).
	Tweaks *TweakSpec `json:"tweaks,omitempty"`
	// TimeoutMs overrides the server's per-request deadline (0 = server
	// default). A request that cannot be answered in time gets a
	// retryable "deadline" error envelope; the underlying simulation
	// still completes and warms the cache for the retry.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// TweakSpec is the JSON mirror of sim.Tweaks with explicit field names.
type TweakSpec struct {
	KeepBTB           bool   `json:"keepBTB,omitempty"`
	KeepBIM           bool   `json:"keepBIM,omitempty"`
	KeepTAGE          bool   `json:"keepTAGE,omitempty"`
	BIMPolicy         string `json:"bimPolicy,omitempty"` // "none", "weakly-taken", "weakly-not-taken"
	DoubleBuffer      bool   `json:"doubleBuffer,omitempty"`
	ThrottleThreshold int    `json:"throttleThreshold,omitempty"`
	MetadataBytes     int    `json:"metadataBytes,omitempty"`
	BTBEntries        int    `json:"btbEntries,omitempty"`
	L2KiB             int    `json:"l2KiB,omitempty"`
}

// ToSim resolves the wire tweaks into sim.Tweaks.
func (t *TweakSpec) ToSim() (sim.Tweaks, error) {
	var tw sim.Tweaks
	if t == nil {
		return tw, nil
	}
	tw.Keep = lukewarm.Preserve{BTB: t.KeepBTB, BIM: t.KeepBIM, TAGE: t.KeepTAGE}
	switch t.BIMPolicy {
	case "":
	case "none":
		p := ignite.BIMNone
		tw.BIMPolicy = &p
	case "weakly-taken":
		p := ignite.BIMWeaklyTaken
		tw.BIMPolicy = &p
	case "weakly-not-taken":
		p := ignite.BIMWeaklyNotTaken
		tw.BIMPolicy = &p
	default:
		return tw, fmt.Errorf("unknown bimPolicy %q (valid: none, weakly-taken, weakly-not-taken)", t.BIMPolicy)
	}
	tw.DoubleBuffer = t.DoubleBuffer
	if t.ThrottleThreshold < 0 || t.MetadataBytes < 0 || t.BTBEntries < 0 || t.L2KiB < 0 {
		return tw, fmt.Errorf("negative tweak values are not valid")
	}
	// The cache and BTB constructors panic (via MustNew) on incoherent
	// geometry deep inside a worker, so enforce their documented
	// constraints here and fail the request instead.
	if t.L2KiB > 0 {
		lines := (t.L2KiB << 10) / 64 // LineBytesConst
		if lines%20 != 0 || !powerOfTwo(lines/20) {
			return tw, fmt.Errorf(
				"l2KiB %d: the 20-way hierarchy needs a power-of-two set count (valid: 320, 640, 1280, 2560, ...)", t.L2KiB)
		}
	}
	if t.BTBEntries > 0 {
		if t.BTBEntries%6 != 0 || !powerOfTwo(t.BTBEntries/6) {
			return tw, fmt.Errorf(
				"btbEntries %d: the 6-way BTB needs a power-of-two set count (valid: 6144, 12288, 24576, ...)", t.BTBEntries)
		}
	}
	tw.ThrottleThreshold = t.ThrottleThreshold
	tw.MetadataBytes = t.MetadataBytes
	tw.BTBEntries = t.BTBEntries
	tw.L2KiB = t.L2KiB
	return tw, nil
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// InvokeResponse answers one invocation request.
type InvokeResponse struct {
	SchemaVersion int    `json:"schemaVersion"`
	Function      string `json:"function"`
	Config        string `json:"config"`
	Mode          string `json:"mode"`
	// CellKey is the canonical cell-cache key the request resolved to —
	// two requests with the same key are guaranteed identical results.
	CellKey string `json:"cellKey"`
	// Cached reports whether the result was served from the warm response
	// cache (true) or computed by this request's batch (false).
	Cached bool `json:"cached"`
	// BatchSize is the number of concurrent requests coalesced onto this
	// cell's simulation (present only on freshly computed responses).
	BatchSize int `json:"batchSize,omitempty"`
	// Result carries the measured protocol outcome.
	Result InvocationResult `json:"result"`
}

// InvocationResult is the wire form of a lukewarm protocol result. Fields
// are float64/uint64 straight from the simulation; JSON round-trips them
// bit-exactly (encoding/json emits the shortest representation that parses
// back to the identical float), which is what the bit-identical serving
// tests pin.
type InvocationResult struct {
	Invocations int     `json:"invocations"`
	Instrs      uint64  `json:"instrs"`
	Cycles      float64 `json:"cycles"`
	CPI         float64 `json:"cpi"`

	Retiring float64 `json:"retiring"`
	Fetch    float64 `json:"fetch"`
	BadSpec  float64 `json:"badSpec"`
	Backend  float64 `json:"backend"`

	L1IMPKI     float64 `json:"l1iMPKI"`
	BTBMPKI     float64 `json:"btbMPKI"`
	CBPMPKI     float64 `json:"cbpMPKI"`
	BPUMPKI     float64 `json:"bpuMPKI"`
	OffChipMPKI float64 `json:"offChipMPKI"`

	Traffic TrafficResult `json:"traffic"`
}

// TrafficResult is the mean per-invocation DRAM bandwidth breakdown.
type TrafficResult struct {
	UsefulInstrBytes  uint64 `json:"usefulInstrBytes"`
	UselessInstrBytes uint64 `json:"uselessInstrBytes"`
	RecordMetaBytes   uint64 `json:"recordMetaBytes"`
	ReplayMetaBytes   uint64 `json:"replayMetaBytes"`
}

// ResultFrom flattens a lukewarm result into the wire form. The serving
// integration test runs the same cell through lukewarm.Run directly and
// asserts deep equality against the response's Result.
func ResultFrom(res *lukewarm.Result) InvocationResult {
	st := res.CPIStack()
	tr := res.MeanTraffic()
	return InvocationResult{
		Invocations: len(res.PerInvocation),
		Instrs:      res.Instrs(),
		Cycles:      res.Cycles(),
		CPI:         res.CPI(),
		Retiring:    st.Retiring,
		Fetch:       st.Fetch,
		BadSpec:     st.BadSpec,
		Backend:     st.Backend,
		L1IMPKI:     res.L1IMPKI(),
		BTBMPKI:     res.BTBMPKI(),
		CBPMPKI:     res.CBPMPKI(),
		BPUMPKI:     res.BPUMPKI(),
		OffChipMPKI: res.OffChipMPKI(),
		Traffic: TrafficResult{
			UsefulInstrBytes:  tr.UsefulInstrBytes,
			UselessInstrBytes: tr.UselessInstrBytes,
			RecordMetaBytes:   tr.RecordMetaBytes,
			ReplayMetaBytes:   tr.ReplayMetaBytes,
		},
	}
}

// Error codes of the v1 API.
const (
	CodeBadRequest        = "bad-request"
	CodeUnsupportedSchema = "unsupported-schema"
	CodeUnknownFunction   = "unknown-function"
	CodeUnknownConfig     = "unknown-config"
	CodeUnknownMode       = "unknown-mode"
	CodeOverloaded        = "overloaded"
	CodeShuttingDown      = "shutting-down"
	CodeDeadline          = "deadline"
	CodeInternal          = "internal"
)

// ErrorEnvelope is the structured error answer of every non-2xx response.
// Retryable tells clients whether backing off and retrying can succeed
// (shed load, shutdown, deadline) or the request itself is wrong.
type ErrorEnvelope struct {
	SchemaVersion int    `json:"schemaVersion"`
	Code          string `json:"code"`
	Message       string `json:"message"`
	Retryable     bool   `json:"retryable"`
}

// Error implements error so an envelope can travel through error returns.
func (e *ErrorEnvelope) Error() string {
	return fmt.Sprintf("serve: %s: %s", e.Code, e.Message)
}

// HTTPStatus maps the envelope's code onto its HTTP status.
func (e *ErrorEnvelope) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeUnsupportedSchema:
		return 400
	case CodeUnknownFunction, CodeUnknownConfig, CodeUnknownMode:
		return 404
	case CodeOverloaded:
		return 429
	case CodeShuttingDown:
		return 503
	case CodeDeadline:
		return 504
	default:
		return 500
	}
}

// envelope builds an error envelope.
func envelope(code, format string, args ...any) *ErrorEnvelope {
	return &ErrorEnvelope{
		SchemaVersion: SchemaVersion,
		Code:          code,
		Message:       fmt.Sprintf(format, args...),
		Retryable:     code == CodeOverloaded || code == CodeShuttingDown || code == CodeDeadline,
	}
}

// ParseInvokeRequest decodes and validates a request body. Unknown fields
// and unknown schema versions are rejected — the v1 API is strict in both
// directions, so a typo'd field name or a request written for a future
// schema fails loudly instead of silently simulating the wrong cell.
func ParseInvokeRequest(body []byte) (InvokeRequest, *ErrorEnvelope) {
	var req InvokeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, envelope(CodeBadRequest, "malformed request: %v", err)
	}
	if req.SchemaVersion != SchemaVersion {
		return req, envelope(CodeUnsupportedSchema,
			"request schema version %d, this server speaks %d", req.SchemaVersion, SchemaVersion)
	}
	if req.Function == "" {
		return req, envelope(CodeBadRequest, "missing function name")
	}
	return req, nil
}

// allKinds lists every servable configuration name: the presentation-order
// kinds plus fdp+ignite, which sim defines but keeps out of Kinds().
func allKinds() []string {
	out := make([]string, 0, len(sim.Kinds())+1)
	for _, k := range sim.Kinds() {
		out = append(out, string(k))
	}
	return append(out, string(sim.KindFDPIgnite))
}

// ParseKind resolves the wire spelling of a front-end configuration. The
// empty string defaults to the paper's configuration, ignite.
func ParseKind(s string) (sim.Kind, *ErrorEnvelope) {
	if s == "" {
		return sim.KindIgnite, nil
	}
	for _, k := range sim.Kinds() {
		if string(k) == s {
			return k, nil
		}
	}
	if s == string(sim.KindFDPIgnite) {
		return sim.KindFDPIgnite, nil
	}
	return "", envelope(CodeUnknownConfig, "unknown config %q", s)
}

// ParseMode resolves the wire spelling of a lukewarm mode.
func ParseMode(s string) (lukewarm.Mode, *ErrorEnvelope) {
	switch s {
	case "", "interleaved":
		return lukewarm.Interleaved, nil
	case "back-to-back", "b2b":
		return lukewarm.BackToBack, nil
	default:
		return 0, envelope(CodeUnknownMode, "unknown mode %q (valid: interleaved, back-to-back)", s)
	}
}

// CatalogResponse answers /v1/catalog: the names a client may put in an
// InvokeRequest. ignite-load resolves "-function all" through it.
type CatalogResponse struct {
	SchemaVersion int      `json:"schemaVersion"`
	Functions     []string `json:"functions"`
	Configs       []string `json:"configs"`
	Modes         []string `json:"modes"`
}

// MetricsDocument is the /metrics endpoint's JSON form: a versioned,
// deterministic snapshot of the server's registry.
type MetricsDocument struct {
	SchemaVersion int     `json:"schemaVersion"`
	Kind          string  `json:"kind"`
	UptimeSec     float64 `json:"uptimeSec"`
	Samples       []MetricSample `json:"samples"`
}

// MetricSample is one metric reading (mirrors obs.Sample, restated here so
// the wire shape is pinned by this package's schema version, not by
// internal refactors of obs).
type MetricSample struct {
	Key   string  `json:"key"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	Count uint64  `json:"count,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// DecodeMetrics parses a /metrics document, rejecting unknown schema
// versions and kinds.
func DecodeMetrics(data []byte) (MetricsDocument, error) {
	var d MetricsDocument
	if err := json.Unmarshal(data, &d); err != nil {
		return d, fmt.Errorf("serve: decode metrics document: %w", err)
	}
	if d.SchemaVersion != SchemaVersion {
		return d, fmt.Errorf("serve: metrics document schema version %d, this build reads %d",
			d.SchemaVersion, SchemaVersion)
	}
	if d.Kind != MetricsDocumentKind {
		return d, fmt.Errorf("serve: unexpected metrics document kind %q", d.Kind)
	}
	return d, nil
}

// Get returns the sample with the given key (zero Sample if absent).
func (d MetricsDocument) Get(key string) (MetricSample, bool) {
	for _, s := range d.Samples {
		if s.Key == key {
			return s, true
		}
	}
	return MetricSample{}, false
}

// Value returns the sample value for key (0 if absent).
func (d MetricsDocument) Value(key string) float64 {
	s, _ := d.Get(key)
	return s.Value
}
