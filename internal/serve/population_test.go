package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"ignite/internal/fleet/population"
)

// TestServePopulation covers the -population catalog mode end to end: a
// server mounted with a sampled fleet population lists the sampled names in
// its catalog and serves /v1/invoke for them through the same cell path as
// the Table-1 functions.
func TestServePopulation(t *testing.T) {
	fns, err := population.Sample(population.Params{Seed: 42, N: 12})
	if err != nil {
		t.Fatal(err)
	}
	s := startTestServer(t, Config{Population: population.Specs(fns)})
	addr := s.Addr()

	// Catalog: Table 1 first, then every sampled name in mount order.
	resp, err := http.Get("http://" + addr + PathCatalog)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var cat CatalogResponse
	if err := json.Unmarshal(data, &cat); err != nil {
		t.Fatalf("decode catalog: %v", err)
	}
	listed := make(map[string]bool, len(cat.Functions))
	for _, name := range cat.Functions {
		listed[name] = true
	}
	if !listed["Auth-G"] {
		t.Error("catalog lost the Table-1 functions")
	}
	for _, f := range fns {
		if !listed[f.Name] {
			t.Errorf("catalog missing sampled function %s", f.Name)
		}
	}

	// Invoke a sampled function under the ignite config; the response must
	// come from a real simulated cell.
	name := fns[0].Name
	body := fmt.Sprintf(`{"schemaVersion":1,"function":%q,"config":"ignite"}`, name)
	hresp, hdata := postInvoke(t, addr, body)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("invoke %s: status %d: %s", name, hresp.StatusCode, hdata)
	}
	var ir InvokeResponse
	if err := json.Unmarshal(hdata, &ir); err != nil {
		t.Fatalf("decode invoke: %v", err)
	}
	if ir.Function != name {
		t.Errorf("response function = %q, want %q", ir.Function, name)
	}
	if ir.Result.CPI <= 0 || ir.Result.Instrs == 0 {
		t.Errorf("degenerate result for %s: %+v", name, ir.Result)
	}

	// A name outside both catalogs still 404s.
	eresp, edata := postInvoke(t, addr,
		`{"schemaVersion":1,"function":"Zzz9999-G","config":"ignite"}`)
	if eresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown function: status %d: %s", eresp.StatusCode, edata)
	}
}
