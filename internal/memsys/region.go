package memsys

import (
	"errors"
	"fmt"
)

// ErrRegionFull is returned when a sequential write exceeds the region's
// capacity; recorders treat it as "stop recording" (the paper caps Ignite
// metadata at 120 KiB and Jukebox at 16 KiB per direction).
var ErrRegionFull = errors.New("memsys: metadata region full")

// Region is a contiguous per-container metadata region in main memory,
// written sequentially by a recorder and read sequentially by a replayer
// (Section 4.3 of the paper).
type Region struct {
	Base uint64
	buf  []byte
	used int
	rpos int
}

// NewRegion allocates a region of the given capacity at base.
func NewRegion(base uint64, capacity int) *Region {
	return &Region{Base: base, buf: make([]byte, capacity)}
}

// Capacity returns the region's size in bytes.
func (r *Region) Capacity() int { return len(r.buf) }

// Used returns the number of bytes written.
func (r *Region) Used() int { return r.used }

// Remaining returns the unwritten capacity.
func (r *Region) Remaining() int { return len(r.buf) - r.used }

// Write appends p to the region. It writes nothing and returns
// ErrRegionFull when p does not fit.
func (r *Region) Write(p []byte) (int, error) {
	if r.used+len(p) > len(r.buf) {
		return 0, ErrRegionFull
	}
	copy(r.buf[r.used:], p)
	r.used += len(p)
	return len(p), nil
}

// WriteByte appends one byte.
func (r *Region) WriteByte(b byte) error {
	if r.used >= len(r.buf) {
		return ErrRegionFull
	}
	r.buf[r.used] = b
	r.used++
	return nil
}

// Bytes returns the written contents (not a copy).
func (r *Region) Bytes() []byte { return r.buf[:r.used] }

// ResetWrite discards the contents for re-recording.
func (r *Region) ResetWrite() { r.used = 0; r.rpos = 0 }

// ResetRead rewinds the replay cursor.
func (r *Region) ResetRead() { r.rpos = 0 }

// NextByte returns the next byte of the stream, or false at end.
func (r *Region) NextByte() (byte, bool) {
	if r.rpos >= r.used {
		return 0, false
	}
	b := r.buf[r.rpos]
	r.rpos++
	return b, true
}

// ReadPos returns the replay cursor position.
func (r *Region) ReadPos() int { return r.rpos }

// Store manages the per-container metadata regions the operating system
// allocates when a function instance starts (Section 4.3). Each container
// may hold several independent regions (e.g. double-buffered record and
// replay streams).
type Store struct {
	regions  map[string]*Region
	nextBase uint64
}

// NewStore creates an empty metadata store. Region base addresses are
// assigned from a reserved range far above the code segment.
func NewStore() *Store {
	return &Store{
		regions:  make(map[string]*Region),
		nextBase: 0x7f00_0000_0000,
	}
}

// Allocate creates (or replaces) the named region with the given capacity.
func (s *Store) Allocate(name string, capacity int) *Region {
	r := NewRegion(s.nextBase, capacity)
	// Keep regions page-aligned and non-overlapping.
	pages := uint64((capacity + 4095) / 4096)
	s.nextBase += (pages + 1) * 4096
	s.regions[name] = r
	return r
}

// Lookup returns the named region, or an error when absent.
func (s *Store) Lookup(name string) (*Region, error) {
	r, ok := s.regions[name]
	if !ok {
		return nil, fmt.Errorf("memsys: no metadata region %q", name)
	}
	return r, nil
}

// Release frees the named region.
func (s *Store) Release(name string) { delete(s.regions, name) }

// TotalBytes returns the summed capacity of all live regions — the
// per-server metadata footprint that the paper keeps off-chip.
func (s *Store) TotalBytes() int {
	total := 0
	for _, r := range s.regions {
		total += r.Capacity()
	}
	return total
}
