package memsys

import (
	"errors"
	"testing"
	"testing/quick"

	"ignite/internal/cache"
)

func TestRegionWriteReadRoundtrip(t *testing.T) {
	r := NewRegion(0x1000, 16)
	if _, err := r.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteByte(4); err != nil {
		t.Fatal(err)
	}
	if r.Used() != 4 || r.Remaining() != 12 {
		t.Fatalf("used=%d remaining=%d", r.Used(), r.Remaining())
	}
	var got []byte
	for {
		b, ok := r.NextByte()
		if !ok {
			break
		}
		got = append(got, b)
	}
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("read back %v", got)
	}
}

func TestRegionFull(t *testing.T) {
	r := NewRegion(0, 4)
	if _, err := r.Write([]byte{1, 2, 3, 4, 5}); !errors.Is(err, ErrRegionFull) {
		t.Errorf("overlong write err = %v", err)
	}
	if r.Used() != 0 {
		t.Error("partial write happened")
	}
	r.Write([]byte{1, 2, 3, 4})
	if err := r.WriteByte(9); !errors.Is(err, ErrRegionFull) {
		t.Errorf("write to full region err = %v", err)
	}
}

func TestRegionReset(t *testing.T) {
	r := NewRegion(0, 8)
	r.Write([]byte{1, 2})
	r.NextByte()
	r.ResetRead()
	if b, ok := r.NextByte(); !ok || b != 1 {
		t.Error("ResetRead did not rewind")
	}
	r.ResetWrite()
	if r.Used() != 0 || r.ReadPos() != 0 {
		t.Error("ResetWrite incomplete")
	}
}

func TestStoreAllocateLookupRelease(t *testing.T) {
	s := NewStore()
	r1 := s.Allocate("fn1/record", 1024)
	r2 := s.Allocate("fn2/record", 2048)
	if r1.Base == r2.Base {
		t.Error("regions share a base address")
	}
	if r2.Base < r1.Base+1024 {
		t.Error("regions overlap")
	}
	got, err := s.Lookup("fn1/record")
	if err != nil || got != r1 {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if s.TotalBytes() != 3072 {
		t.Errorf("TotalBytes = %d", s.TotalBytes())
	}
	s.Release("fn1/record")
	if _, err := s.Lookup("fn1/record"); err == nil {
		t.Error("lookup after release succeeded")
	}
}

func TestTrafficUsefulUselessSplit(t *testing.T) {
	tr := NewTraffic()
	// Correct-path demand fetch: immediately touched by hierarchy.
	tr.MemFetch(0x000, cache.SrcDemand)
	tr.DemandTouch(0x000)
	// Wrong-path fetch never touched.
	tr.MemFetch(0x040, cache.SrcWrongPath)
	// Prefetch that gets used.
	tr.MemFetch(0x080, cache.SrcJukebox)
	tr.DemandTouch(0x080)
	// Prefetch never used.
	tr.MemFetch(0x0c0, cache.SrcIgnite)

	rep := tr.Report()
	if rep.UsefulInstrBytes != 2*LineBytes {
		t.Errorf("useful = %d, want %d", rep.UsefulInstrBytes, 2*LineBytes)
	}
	if rep.UselessInstrBytes != 2*LineBytes {
		t.Errorf("useless = %d, want %d", rep.UselessInstrBytes, 2*LineBytes)
	}
}

func TestTrafficDataNotClassified(t *testing.T) {
	tr := NewTraffic()
	tr.MemFetch(0x100, cache.SrcData)
	rep := tr.Report()
	if rep.InstrBytes() != 0 {
		t.Errorf("data fetch classified as instruction traffic: %+v", rep)
	}
	if tr.MemFetchLines(cache.SrcData) != 1 {
		t.Error("data fetch not counted at all")
	}
}

func TestTrafficRefetchCounting(t *testing.T) {
	tr := NewTraffic()
	// Same line fetched twice (evicted in between), touched: both fetches
	// are bandwidth and both are useful.
	tr.MemFetch(0x200, cache.SrcDemand)
	tr.DemandTouch(0x200)
	tr.MemFetch(0x200, cache.SrcDemand)
	rep := tr.Report()
	if rep.UsefulInstrBytes != 2*LineBytes || rep.UselessInstrBytes != 0 {
		t.Errorf("refetch split = %+v", rep)
	}
}

func TestTrafficSourceAccuracy(t *testing.T) {
	tr := NewTraffic()
	tr.Inserted(0x300, cache.SrcIgnite, cache.LvlL2)
	tr.Inserted(0x340, cache.SrcIgnite, cache.LvlL2)
	tr.Inserted(0x380, cache.SrcIgnite, cache.LvlL2)
	tr.DemandTouch(0x300)
	tr.DemandTouch(0x340)
	ins, useful := tr.SourceAccuracy(cache.SrcIgnite)
	if ins != 3 || useful != 2 {
		t.Errorf("accuracy = %d/%d, want 2/3", useful, ins)
	}
	// Touch of an unknown line is a no-op.
	tr.DemandTouch(0x999)
}

func TestTrafficMetadataBytes(t *testing.T) {
	tr := NewTraffic()
	tr.AddRecordBytes(100)
	tr.AddReplayBytes(250)
	rep := tr.Report()
	if rep.RecordMetaBytes != 100 || rep.ReplayMetaBytes != 250 {
		t.Errorf("metadata = %+v", rep)
	}
	if rep.Total() != 350 {
		t.Errorf("total = %d", rep.Total())
	}
}

func TestTrafficReset(t *testing.T) {
	tr := NewTraffic()
	tr.MemFetch(0x40, cache.SrcDemand)
	tr.AddRecordBytes(10)
	tr.Reset()
	rep := tr.Report()
	if rep.Total() != 0 {
		t.Errorf("after reset: %+v", rep)
	}
}

// Property: useful + useless always equals 64 * total instruction fetches.
func TestTrafficConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewTraffic()
		fetches := 0
		for i, op := range ops {
			la := uint64(i%32) * 64
			switch op % 4 {
			case 0:
				tr.MemFetch(la, cache.SrcDemand)
				tr.DemandTouch(la)
				fetches++
			case 1:
				tr.MemFetch(la, cache.SrcWrongPath)
				fetches++
			case 2:
				tr.MemFetch(la, cache.SrcBoomerang)
				fetches++
			case 3:
				tr.DemandTouch(la)
			}
		}
		rep := tr.Report()
		return rep.InstrBytes() == uint64(fetches)*LineBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
