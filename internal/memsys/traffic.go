// Package memsys models the parts of main memory the paper's evaluation
// depends on: per-class DRAM bandwidth accounting (useful vs useless
// instruction traffic, record/replay metadata — Figure 10) and the
// per-container metadata regions that Jukebox and Ignite stream their
// state into (Section 4.3).
package memsys

import (
	"ignite/internal/cache"
)

// LineBytes is the DRAM transfer granularity.
const LineBytes = 64

// lineState tracks post-hoc classification of instruction lines. A DRAM
// fetch is "useful" if the line is ever demand-touched on the correct path;
// prefetch inserts additionally track per-source accuracy.
type lineState struct {
	fetchCount  uint32 // DRAM fetches of this line (instruction classes only)
	memTouched  bool   // sticky: ever demand-touched on the correct path
	pendingMask uint16 // sources with an outstanding un-touched insert
}

// Traffic implements cache.Tracker. It classifies every DRAM instruction
// fetch as useful or useless (wrong-path or never-used prefetch) and tracks
// per-source prefetch accuracy for the restore-accuracy study.
type Traffic struct {
	lines map[uint64]*lineState

	memFetches    [cache.NumSources]uint64 // lines fetched from DRAM per source
	inserted      [cache.NumSources]uint64 // prefetch-class inserts (any origin level)
	insertsUseful [cache.NumSources]uint64 // inserts later demand-touched

	metaRecordBytes uint64 // metadata streams written to DRAM
	metaReplayBytes uint64 // metadata streamed back from DRAM
}

// NewTraffic returns an empty traffic tracker.
func NewTraffic() *Traffic {
	return &Traffic{lines: make(map[uint64]*lineState)}
}

var _ cache.Tracker = (*Traffic)(nil)

func (t *Traffic) state(lineAddr uint64) *lineState {
	ls := t.lines[lineAddr]
	if ls == nil {
		ls = &lineState{}
		t.lines[lineAddr] = ls
	}
	return ls
}

// MemFetch records one line crossing the DRAM bus on behalf of src.
func (t *Traffic) MemFetch(lineAddr uint64, src cache.Source) {
	t.memFetches[src]++
	if src == cache.SrcData {
		return // only instruction traffic is classified useful/useless
	}
	t.state(lineAddr).fetchCount++
}

// Inserted records a prefetch-class insert for accuracy tracking.
func (t *Traffic) Inserted(lineAddr uint64, src cache.Source, lvl cache.Level) {
	t.inserted[src]++
	t.state(lineAddr).pendingMask |= 1 << src
}

// DemandTouch records a correct-path demand use of a line. Only lines known
// to the tracker (DRAM-fetched or prefetch-inserted) carry state.
func (t *Traffic) DemandTouch(lineAddr uint64) {
	ls := t.lines[lineAddr]
	if ls == nil {
		return
	}
	ls.memTouched = true
	if ls.pendingMask != 0 {
		for src := 0; src < cache.NumSources; src++ {
			if ls.pendingMask&(1<<src) != 0 {
				t.insertsUseful[src]++
			}
		}
		ls.pendingMask = 0
	}
}

// AddRecordBytes accounts metadata written to DRAM by a recorder.
func (t *Traffic) AddRecordBytes(n int) { t.metaRecordBytes += uint64(n) }

// AddReplayBytes accounts metadata streamed from DRAM by a replayer.
func (t *Traffic) AddReplayBytes(n int) { t.metaReplayBytes += uint64(n) }

// Report is the Figure 10 bandwidth breakdown, in bytes.
type Report struct {
	UsefulInstrBytes  uint64
	UselessInstrBytes uint64
	RecordMetaBytes   uint64
	ReplayMetaBytes   uint64
}

// Total returns the total number of bytes moved.
func (r Report) Total() uint64 {
	return r.UsefulInstrBytes + r.UselessInstrBytes + r.RecordMetaBytes + r.ReplayMetaBytes
}

// InstrBytes returns instruction traffic only.
func (r Report) InstrBytes() uint64 {
	return r.UsefulInstrBytes + r.UselessInstrBytes
}

// Report computes the bandwidth breakdown: a DRAM instruction fetch is
// useful when its line was demand-touched on the correct path at least
// once, useless otherwise (wrong-path fetches and dead prefetches).
func (t *Traffic) Report() Report {
	var useful, total uint64
	for src := 0; src < cache.NumSources; src++ {
		if src == int(cache.SrcData) {
			continue
		}
		total += t.memFetches[src]
	}
	for _, ls := range t.lines {
		if ls.memTouched {
			useful += uint64(ls.fetchCount)
		}
	}
	if useful > total {
		useful = total
	}
	return Report{
		UsefulInstrBytes:  useful * LineBytes,
		UselessInstrBytes: (total - useful) * LineBytes,
		RecordMetaBytes:   t.metaRecordBytes,
		ReplayMetaBytes:   t.metaReplayBytes,
	}
}

// SourceAccuracy returns, for a prefetch source, how many lines it inserted
// and how many of those were later demand-used (Figure 9c).
func (t *Traffic) SourceAccuracy(src cache.Source) (inserted, useful uint64) {
	return t.inserted[src], t.insertsUseful[src]
}

// MemFetchLines returns the number of DRAM line fetches for src.
func (t *Traffic) MemFetchLines(src cache.Source) uint64 { return t.memFetches[src] }

// Reset clears all accounting for a new measurement window.
func (t *Traffic) Reset() {
	*t = Traffic{lines: make(map[uint64]*lineState)}
}
