// Package memsys models the parts of main memory the paper's evaluation
// depends on: per-class DRAM bandwidth accounting (useful vs useless
// instruction traffic, record/replay metadata — Figure 10) and the
// per-container metadata regions that Jukebox and Ignite stream their
// state into (Section 4.3).
package memsys

import (
	"ignite/internal/cache"
)

// LineBytes is the DRAM transfer granularity.
const LineBytes = 64

// lineState tracks post-hoc classification of instruction lines. A DRAM
// fetch is "useful" if the line is ever demand-touched on the correct path;
// prefetch inserts additionally track per-source accuracy.
type lineState struct {
	fetchCount  uint32 // DRAM fetches of this line (instruction classes only)
	memTouched  bool   // sticky: ever demand-touched on the correct path
	pendingMask uint16 // sources with an outstanding un-touched insert
}

// lineKeyEmpty marks an empty slot in the line table. Keys are line-aligned
// addresses (multiples of the line size), so an odd value never collides.
const lineKeyEmpty = uint64(1)

// Traffic implements cache.Tracker. It classifies every DRAM instruction
// fetch as useful or useless (wrong-path or never-used prefetch) and tracks
// per-source prefetch accuracy for the restore-accuracy study.
//
// Line state lives in an open-addressed (linear-probe) table of inline
// values rather than a Go map of pointers: the fill and demand-touch paths
// run once per tracked line event, and the flat table avoids both the map's
// hashing overhead and a heap allocation per line. Entries are never
// deleted, and the only iteration (Report) computes an order-independent
// sum, so probe order cannot leak into results.
type Traffic struct {
	lineKeys []uint64
	lineVals []lineState
	lineMask uint64
	lineN    int

	memFetches    [cache.NumSources]uint64 // lines fetched from DRAM per source
	inserted      [cache.NumSources]uint64 // prefetch-class inserts (any origin level)
	insertsUseful [cache.NumSources]uint64 // inserts later demand-touched

	metaRecordBytes uint64 // metadata streams written to DRAM
	metaReplayBytes uint64 // metadata streamed back from DRAM
}

// NewTraffic returns an empty traffic tracker.
func NewTraffic() *Traffic {
	t := &Traffic{}
	t.initLines(4096)
	return t
}

var _ cache.Tracker = (*Traffic)(nil)

func (t *Traffic) initLines(capacity int) {
	c := 16
	for c < capacity {
		c <<= 1
	}
	t.lineKeys = make([]uint64, c)
	t.lineVals = make([]lineState, c)
	for i := range t.lineKeys {
		t.lineKeys[i] = lineKeyEmpty
	}
	t.lineMask = uint64(c - 1)
	t.lineN = 0
}

func (t *Traffic) lineSlot(la uint64) uint64 {
	// Fibonacci hash of the line index; line addresses share low zero bits.
	return ((la >> 6) * 0x9E3779B97F4A7C15) >> 32 & t.lineMask
}

// find returns the state for lineAddr, or nil if the line is untracked.
func (t *Traffic) find(lineAddr uint64) *lineState {
	if t.lineN == 0 {
		return nil
	}
	i := t.lineSlot(lineAddr)
	for {
		k := t.lineKeys[i]
		if k == lineAddr {
			return &t.lineVals[i]
		}
		if k == lineKeyEmpty {
			return nil
		}
		i = (i + 1) & t.lineMask
	}
}

func (t *Traffic) state(lineAddr uint64) *lineState {
	i := t.lineSlot(lineAddr)
	for {
		k := t.lineKeys[i]
		if k == lineAddr {
			return &t.lineVals[i]
		}
		if k == lineKeyEmpty {
			break
		}
		i = (i + 1) & t.lineMask
	}
	if (t.lineN+1)*4 > len(t.lineKeys)*3 {
		t.growLines()
		i = t.lineSlot(lineAddr)
		for t.lineKeys[i] != lineKeyEmpty {
			i = (i + 1) & t.lineMask
		}
	}
	t.lineKeys[i] = lineAddr
	t.lineVals[i] = lineState{}
	t.lineN++
	return &t.lineVals[i]
}

func (t *Traffic) growLines() {
	oldKeys, oldVals := t.lineKeys, t.lineVals
	t.initLines(len(oldKeys) * 2)
	for i, k := range oldKeys {
		if k == lineKeyEmpty {
			continue
		}
		j := t.lineSlot(k)
		for t.lineKeys[j] != lineKeyEmpty {
			j = (j + 1) & t.lineMask
		}
		t.lineKeys[j] = k
		t.lineVals[j] = oldVals[i]
		t.lineN++
	}
}

// MemFetch records one line crossing the DRAM bus on behalf of src.
func (t *Traffic) MemFetch(lineAddr uint64, src cache.Source) {
	t.memFetches[src]++
	if src == cache.SrcData {
		return // only instruction traffic is classified useful/useless
	}
	t.state(lineAddr).fetchCount++
}

// Inserted records a prefetch-class insert for accuracy tracking.
func (t *Traffic) Inserted(lineAddr uint64, src cache.Source, lvl cache.Level) {
	t.inserted[src]++
	t.state(lineAddr).pendingMask |= 1 << src
}

// DemandTouch records a correct-path demand use of a line. Only lines known
// to the tracker (DRAM-fetched or prefetch-inserted) carry state.
func (t *Traffic) DemandTouch(lineAddr uint64) {
	ls := t.find(lineAddr)
	if ls == nil {
		return
	}
	ls.memTouched = true
	if ls.pendingMask != 0 {
		for src := 0; src < cache.NumSources; src++ {
			if ls.pendingMask&(1<<src) != 0 {
				t.insertsUseful[src]++
			}
		}
		ls.pendingMask = 0
	}
}

// AddRecordBytes accounts metadata written to DRAM by a recorder.
func (t *Traffic) AddRecordBytes(n int) { t.metaRecordBytes += uint64(n) }

// AddReplayBytes accounts metadata streamed from DRAM by a replayer.
func (t *Traffic) AddReplayBytes(n int) { t.metaReplayBytes += uint64(n) }

// Report is the Figure 10 bandwidth breakdown, in bytes.
type Report struct {
	UsefulInstrBytes  uint64
	UselessInstrBytes uint64
	RecordMetaBytes   uint64
	ReplayMetaBytes   uint64
}

// Total returns the total number of bytes moved.
func (r Report) Total() uint64 {
	return r.UsefulInstrBytes + r.UselessInstrBytes + r.RecordMetaBytes + r.ReplayMetaBytes
}

// InstrBytes returns instruction traffic only.
func (r Report) InstrBytes() uint64 {
	return r.UsefulInstrBytes + r.UselessInstrBytes
}

// Report computes the bandwidth breakdown: a DRAM instruction fetch is
// useful when its line was demand-touched on the correct path at least
// once, useless otherwise (wrong-path fetches and dead prefetches).
func (t *Traffic) Report() Report {
	var useful, total uint64
	for src := 0; src < cache.NumSources; src++ {
		if src == int(cache.SrcData) {
			continue
		}
		total += t.memFetches[src]
	}
	for i, k := range t.lineKeys {
		if k == lineKeyEmpty {
			continue
		}
		if t.lineVals[i].memTouched {
			useful += uint64(t.lineVals[i].fetchCount)
		}
	}
	if useful > total {
		useful = total
	}
	return Report{
		UsefulInstrBytes:  useful * LineBytes,
		UselessInstrBytes: (total - useful) * LineBytes,
		RecordMetaBytes:   t.metaRecordBytes,
		ReplayMetaBytes:   t.metaReplayBytes,
	}
}

// SourceAccuracy returns, for a prefetch source, how many lines it inserted
// and how many of those were later demand-used (Figure 9c).
func (t *Traffic) SourceAccuracy(src cache.Source) (inserted, useful uint64) {
	return t.inserted[src], t.insertsUseful[src]
}

// MemFetchLines returns the number of DRAM line fetches for src.
func (t *Traffic) MemFetchLines(src cache.Source) uint64 { return t.memFetches[src] }

// Reset clears all accounting for a new measurement window. The line table
// keeps its capacity so steady-state windows allocate nothing.
func (t *Traffic) Reset() {
	keys, vals, mask := t.lineKeys, t.lineVals, t.lineMask
	*t = Traffic{lineKeys: keys, lineVals: vals, lineMask: mask}
	for i := range t.lineKeys {
		t.lineKeys[i] = lineKeyEmpty
	}
}
