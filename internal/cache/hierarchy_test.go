package cache

import "testing"

type fakeTracker struct {
	memFetches map[uint64][]Source
	inserts    map[uint64][]Source
	touches    map[uint64]int
}

func newFakeTracker() *fakeTracker {
	return &fakeTracker{
		memFetches: map[uint64][]Source{},
		inserts:    map[uint64][]Source{},
		touches:    map[uint64]int{},
	}
}

func (f *fakeTracker) MemFetch(la uint64, src Source) {
	f.memFetches[la] = append(f.memFetches[la], src)
}
func (f *fakeTracker) Inserted(la uint64, src Source, lvl Level) {
	f.inserts[la] = append(f.inserts[la], src)
}
func (f *fakeTracker) DemandTouch(la uint64) { f.touches[la]++ }

func TestFetchInstrFillPath(t *testing.T) {
	tr := newFakeTracker()
	h := DefaultHierarchy(tr)
	addr := uint64(0x400000)

	lat, lvl, _ := h.FetchInstr(addr, false)
	if lvl != LvlMem || lat != h.Lat.Mem {
		t.Fatalf("cold fetch: lat=%d lvl=%v", lat, lvl)
	}
	// Now resident everywhere on the fill path.
	lat, lvl, _ = h.FetchInstr(addr, false)
	if lvl != LvlL1I || lat != h.Lat.L1I {
		t.Fatalf("warm fetch: lat=%d lvl=%v", lat, lvl)
	}
	if len(tr.memFetches[addr&^63]) != 1 {
		t.Errorf("mem fetches = %v", tr.memFetches)
	}
	if tr.touches[addr&^63] < 1 {
		t.Error("no demand touch recorded")
	}
}

func TestFetchInstrL2Hit(t *testing.T) {
	h := DefaultHierarchy(nil)
	addr := uint64(0x1000)
	h.L2.Insert(addr, ProvPrefetch)
	lat, lvl, _ := h.FetchInstr(addr, false)
	if lvl != LvlL2 || lat != h.Lat.L2 {
		t.Fatalf("lat=%d lvl=%v, want L2 hit", lat, lvl)
	}
	// Fill into L1I happened.
	if !h.L1I.Contains(addr) {
		t.Error("L1I not filled from L2")
	}
}

func TestWrongPathFetchClassification(t *testing.T) {
	tr := newFakeTracker()
	h := DefaultHierarchy(tr)
	addr := uint64(0x2000)
	h.FetchInstr(addr, true) // wrong path, from memory
	la := addr &^ 63
	if got := tr.memFetches[la]; len(got) != 1 || got[0] != SrcWrongPath {
		t.Fatalf("mem fetch sources = %v", got)
	}
	if tr.touches[la] != 0 {
		t.Error("wrong-path fetch should not demand-touch")
	}
	// A later correct-path fetch hits L1I and touches.
	h.FetchInstr(addr, false)
	if tr.touches[la] != 1 {
		t.Error("correct-path hit did not touch")
	}
}

func TestPrefetchInstrIntoL2(t *testing.T) {
	tr := newFakeTracker()
	h := DefaultHierarchy(tr)
	addr := uint64(0x3000)
	from, issued := h.PrefetchInstr(addr, SrcJukebox, LvlL2)
	if !issued || from != LvlMem {
		t.Fatalf("prefetch: from=%v issued=%v", from, issued)
	}
	if h.L1I.Contains(addr) {
		t.Error("L2 prefetch must not fill L1I")
	}
	if !h.L2.Contains(addr) || !h.LLC.Contains(addr) {
		t.Error("L2 prefetch should fill L2 and LLC")
	}
	// Second prefetch is a no-op.
	if _, issued := h.PrefetchInstr(addr, SrcJukebox, LvlL2); issued {
		t.Error("duplicate prefetch issued")
	}
	// Demand fetch now hits L2.
	_, lvl, _ := h.FetchInstr(addr, false)
	if lvl != LvlL2 {
		t.Errorf("demand after L2 prefetch hit %v", lvl)
	}
}

func TestPrefetchInstrIntoL1(t *testing.T) {
	h := DefaultHierarchy(nil)
	addr := uint64(0x4000)
	h.L2.Insert(addr, ProvDemand)
	from, issued := h.PrefetchInstr(addr, SrcNextLine, LvlL1I)
	if !issued || from != LvlL2 {
		t.Fatalf("from=%v issued=%v, want L2/true", from, issued)
	}
	_, lvl, _ := h.FetchInstr(addr, false)
	if lvl != LvlL1I {
		t.Errorf("demand hit %v, want L1I", lvl)
	}
}

func TestAccessDataPath(t *testing.T) {
	h := DefaultHierarchy(nil)
	addr := uint64(0x9000)
	lat, lvl := h.AccessData(addr)
	if lvl != LvlMem || lat != h.Lat.Mem {
		t.Fatalf("cold data: %d %v", lat, lvl)
	}
	lat, lvl = h.AccessData(addr)
	if lvl != LvlL1D || lat != h.Lat.L1D {
		t.Fatalf("warm data: %d %v", lat, lvl)
	}
	if h.Stats().DataAccesses.Value() != 2 || h.Stats().DataL1Misses.Value() != 1 {
		t.Error("data stats wrong")
	}
}

func TestFlushAll(t *testing.T) {
	h := DefaultHierarchy(nil)
	h.FetchInstr(0x100, false)
	h.AccessData(0x8000)
	h.FlushAll()
	for _, c := range []*Cache{h.L1I, h.L1D, h.L2, h.LLC} {
		if c.Occupancy() != 0 {
			t.Errorf("%s not empty after FlushAll", c.Config().Name)
		}
	}
	_, lvl, _ := h.FetchInstr(0x100, false)
	if lvl != LvlMem {
		t.Errorf("after flush, fetch hit %v", lvl)
	}
}

func TestHierStatsMPKIInputs(t *testing.T) {
	h := DefaultHierarchy(nil)
	for i := 0; i < 10; i++ {
		h.FetchInstr(uint64(i)*64, false)
	}
	st := h.Stats()
	if st.InstrFetches.Value() != 10 || st.InstrL1Misses.Value() != 10 || st.InstrLLCMisses.Value() != 10 {
		t.Errorf("stats: %+v", st)
	}
	for i := 0; i < 10; i++ {
		h.FetchInstr(uint64(i)*64, false)
	}
	if st.InstrL1Misses.Value() != 10 {
		t.Error("warm refetch counted as miss")
	}
}

// tinyHierarchy builds a hierarchy with a 2-set x 2-way L2 so a handful of
// fetches force L2 evictions while the L1-I still has room.
func tinyHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I: MustNew(Config{Name: "L1I", SizeBytes: 16 * 64, LineBytes: 64, Ways: 16, HitLatency: 1}),
		L1D: MustNew(Config{Name: "L1D", SizeBytes: 16 * 64, LineBytes: 64, Ways: 16, HitLatency: 4}),
		L2:  MustNew(Config{Name: "L2", SizeBytes: 4 * 64, LineBytes: 64, Ways: 2, HitLatency: 13}),
		LLC: MustNew(Config{Name: "LLC", SizeBytes: 64 * 64, LineBytes: 64, Ways: 4, HitLatency: 50}),
		Lat: DefaultLatencies(),
	}
}

func TestL2EvictionBackInvalidatesL1(t *testing.T) {
	// Regression: L1-I hits never refresh a line's L2 recency, so a hot
	// L1-I line could be evicted from the (inclusive) L2 and live on in the
	// L1-I. insertL2 must back-invalidate the displaced line from both L1s.
	h := tinyHierarchy()
	hot := uint64(0x0) // L2 set 0 (even line index)
	h.FetchInstr(hot, false)
	if !h.L1I.Contains(hot) || !h.L2.Contains(hot) {
		t.Fatal("hot line not filled")
	}
	// Keep the line hot in the L1-I only.
	for i := 0; i < 4; i++ {
		if _, lvl, _ := h.FetchInstr(hot, false); lvl != LvlL1I {
			t.Fatalf("hot fetch served from %v", lvl)
		}
	}
	// Two more even-indexed lines overflow L2 set 0 (2 ways), evicting the
	// LRU line — the hot one, whose L2 recency was never refreshed.
	h.FetchInstr(0x80, false)
	h.FetchInstr(0x100, false)
	if h.L2.Contains(hot) {
		t.Fatal("test premise broken: hot line still in L2")
	}
	if h.L1I.Contains(hot) {
		t.Error("L2 eviction left a stale copy in the L1-I (inclusion violated)")
	}
	for _, la := range h.L1I.Lines() {
		if !h.L2.Contains(la) {
			t.Errorf("L1-I line %#x not resident in L2", la)
		}
	}

	// Same law on the data side.
	hd := tinyHierarchy()
	hotD := uint64(0x40) // L2 set 1 (odd line index)
	hd.AccessData(hotD)
	for i := 0; i < 4; i++ {
		hd.AccessData(hotD)
	}
	hd.AccessData(0xc0)
	hd.AccessData(0x140)
	if hd.L2.Contains(hotD) {
		t.Fatal("test premise broken: hot data line still in L2")
	}
	if hd.L1D.Contains(hotD) {
		t.Error("L2 eviction left a stale copy in the L1-D (inclusion violated)")
	}
}

func TestLevelAndSourceStrings(t *testing.T) {
	if LvlL1I.String() != "L1I" || LvlMem.String() != "Mem" {
		t.Error("Level.String broken")
	}
	for s := Source(0); s < Source(NumSources); s++ {
		if s.String() == "?" {
			t.Errorf("source %d has no name", s)
		}
	}
}
