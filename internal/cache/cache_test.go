package cache

import (
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 2, HitLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Name: "badline", SizeBytes: 1024, LineBytes: 48, Ways: 2},
		{Name: "zeroways", SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{Name: "badsets", SizeBytes: 64 * 3, LineBytes: 64, Ways: 1},
		{Name: "zerosize", SizeBytes: 0, LineBytes: 64, Ways: 2},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%s) accepted invalid config", cfg.Name)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(t)
	addr := uint64(0x1000)
	if res := c.Access(addr, true); res.Hit {
		t.Fatal("hit in empty cache")
	}
	c.Insert(addr, ProvDemand)
	if res := c.Access(addr, true); !res.Hit {
		t.Fatal("miss after insert")
	}
	if res := c.Access(addr+63, true); !res.Hit {
		t.Fatal("same line, different offset missed")
	}
	if res := c.Access(addr+64, true); res.Hit {
		t.Fatal("next line should miss")
	}
	st := c.Stats()
	if st.Hits.Value() != 2 || st.Misses.Value() != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", st.Hits.Value(), st.Misses.Value())
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t) // 8 sets, 2 ways
	// Three lines mapping to the same set (stride = sets*line = 512).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Insert(a, ProvDemand)
	c.Insert(b, ProvDemand)
	c.Access(a, true) // make b the LRU
	ev, had := c.Insert(d, ProvDemand)
	if !had || ev.LineAddr != b {
		t.Fatalf("evicted %#x (had=%v), want %#x", ev.LineAddr, had, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Error("wrong resident set after eviction")
	}
}

func TestEvictionAddressReconstruction(t *testing.T) {
	c := smallCache(t)
	for _, addr := range []uint64{0x12340, 0x98765 &^ 63} {
		la := c.LineAddr(addr)
		c.Insert(la, ProvDemand)
		// Fill the set to force eviction of la.
		stride := uint64(512)
		ev1, _ := c.Insert(la+stride, ProvDemand)
		_ = ev1
		ev, had := c.Insert(la+2*stride, ProvDemand)
		if !had {
			t.Fatalf("no eviction for %#x", addr)
		}
		if ev.LineAddr != la {
			t.Errorf("evicted %#x, want %#x", ev.LineAddr, la)
		}
	}
}

func TestFirstTouchSemantics(t *testing.T) {
	c := smallCache(t)
	addr := uint64(0x40)
	c.Insert(addr, ProvPrefetch)
	res := c.Access(addr, true)
	if !res.Hit || !res.FirstTouch || res.Prov != ProvPrefetch {
		t.Fatalf("first access: %+v", res)
	}
	res = c.Access(addr, true)
	if !res.Hit || res.FirstTouch {
		t.Fatalf("second access should not be first touch: %+v", res)
	}
	if c.Stats().PrefetchUseful.Value() != 1 {
		t.Errorf("PrefetchUseful = %d, want 1", c.Stats().PrefetchUseful.Value())
	}
}

func TestNonDemandProbeDoesNotDisturb(t *testing.T) {
	c := smallCache(t)
	addr := uint64(0x80)
	c.Insert(addr, ProvPrefetch)
	res := c.Access(addr, false)
	if !res.Hit || res.FirstTouch {
		t.Fatalf("probe: %+v", res)
	}
	if c.Stats().Accesses.Value() != 0 {
		t.Error("probe counted as access")
	}
	// Demand access should still be the first touch.
	if res := c.Access(addr, true); !res.FirstTouch {
		t.Error("probe consumed first touch")
	}
}

func TestUnusedPrefetchAccounting(t *testing.T) {
	c := smallCache(t)
	c.Insert(0, ProvPrefetch)
	c.Insert(512, ProvPrefetch)
	c.Insert(1024, ProvDemand) // evicts LRU prefetch (line 0), untouched
	if got := c.Stats().PrefetchUnused.Value(); got != 1 {
		t.Errorf("PrefetchUnused after eviction = %d, want 1", got)
	}
	if got := c.SweepUnused(); got != 1 { // line 512 still resident, untouched
		t.Errorf("SweepUnused = %d, want 1", got)
	}
	if got := c.Stats().PrefetchUnused.Value(); got != 2 {
		t.Errorf("PrefetchUnused after sweep = %d, want 2", got)
	}
}

func TestFlushCountsUnusedAndEmpties(t *testing.T) {
	c := smallCache(t)
	c.Insert(0, ProvRestored)
	c.Insert(64, ProvDemand)
	c.Flush()
	if c.Occupancy() != 0 {
		t.Error("cache not empty after flush")
	}
	if got := c.Stats().PrefetchUnused.Value(); got != 1 {
		t.Errorf("PrefetchUnused after flush = %d, want 1", got)
	}
}

func TestInsertExistingUpgradesToDemand(t *testing.T) {
	c := smallCache(t)
	c.Insert(0, ProvPrefetch)
	c.Insert(0, ProvDemand)
	res := c.Access(0, true)
	if res.Prov != ProvDemand || res.FirstTouch {
		t.Errorf("after upgrade: %+v", res)
	}
}

// Property: occupancy never exceeds capacity and Contains is consistent
// with Access hits.
func TestCacheInvariantsProperty(t *testing.T) {
	c := smallCache(t)
	capLines := 1024 / 64
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			addr := uint64(a) * 32
			if c.Contains(c.LineAddr(addr)) != c.Access(addr, false).Hit {
				return false
			}
			c.Insert(addr, ProvDemand)
			if c.Occupancy() > capLines {
				return false
			}
			if !c.Access(addr, true).Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestProvenanceString(t *testing.T) {
	for p, want := range map[Provenance]string{
		ProvDemand: "demand", ProvWrongPath: "wrongpath",
		ProvPrefetch: "prefetch", ProvRestored: "restored",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t)
	c.Insert(0x100, ProvDemand)
	if !c.Invalidate(0x100) {
		t.Fatal("Invalidate missed a resident line")
	}
	if c.Contains(0x100) || c.Occupancy() != 0 {
		t.Error("line survived invalidation")
	}
	if c.Invalidate(0x100) {
		t.Error("Invalidate reported dropping an absent line")
	}

	// An untouched prefetched line counts as unused, like an eviction.
	c.Insert(0x200, ProvPrefetch)
	before := c.Stats().PrefetchUnused.Value()
	c.Invalidate(0x200)
	if c.Stats().PrefetchUnused.Value() != before+1 {
		t.Error("untouched prefetch invalidation not counted as unused")
	}
	// A demand-touched prefetched line does not.
	c.Insert(0x300, ProvPrefetch)
	c.Access(0x300, true)
	before = c.Stats().PrefetchUnused.Value()
	c.Invalidate(0x300)
	if c.Stats().PrefetchUnused.Value() != before {
		t.Error("touched prefetch invalidation counted as unused")
	}
}

func TestLinesReconstructsAddresses(t *testing.T) {
	c := smallCache(t)
	want := map[uint64]bool{}
	// Spread lines across sets (8 sets x 2 ways here).
	for i := uint64(0); i < 12; i++ {
		la := i * 64 * 3 // varied set/tag mix, line-aligned after LineAddr
		la = c.LineAddr(la)
		c.Insert(la, ProvDemand)
		want[la] = true
	}
	got := c.Lines()
	if len(got) != c.Occupancy() {
		t.Fatalf("Lines returned %d entries, occupancy is %d", len(got), c.Occupancy())
	}
	for _, la := range got {
		if !c.Contains(la) {
			t.Errorf("Lines reported %#x but Contains denies it", la)
		}
		if !want[la] {
			t.Errorf("Lines reported %#x which was never inserted", la)
		}
	}
}
