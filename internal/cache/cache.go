// Package cache models the on-chip cache hierarchy of the simulated core:
// set-associative L1-I, L1-D, private L2 and shared LLC with LRU
// replacement, line provenance tracking (demand / prefetcher / Ignite
// restore), and the statistics needed by the paper's coverage, accuracy and
// bandwidth studies.
package cache

import (
	"fmt"
	"math/bits"
	"sort"

	"ignite/internal/stats"
)

// Provenance records how a line entered a cache, enabling the prefetch
// accuracy accounting of the paper's Figure 9c and the useful/useless
// traffic split of Figure 10.
type Provenance uint8

const (
	// ProvDemand: filled by a correct-path demand access.
	ProvDemand Provenance = iota
	// ProvWrongPath: filled by a wrong-path demand fetch.
	ProvWrongPath
	// ProvPrefetch: filled by a conventional prefetcher (NL, FDP,
	// Boomerang, Jukebox, Confluence).
	ProvPrefetch
	// ProvRestored: filled by Ignite's bulk restore.
	ProvRestored
)

func (p Provenance) String() string {
	switch p {
	case ProvDemand:
		return "demand"
	case ProvWrongPath:
		return "wrongpath"
	case ProvPrefetch:
		return "prefetch"
	case ProvRestored:
		return "restored"
	default:
		return fmt.Sprintf("Provenance(%d)", uint8(p))
	}
}

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency int // cycles
}

// Stats collects per-cache event counts.
type Stats struct {
	Accesses       stats.Counter
	Hits           stats.Counter
	Misses         stats.Counter
	Inserts        stats.Counter
	Evictions      stats.Counter
	PrefetchUseful stats.Counter // first demand touch of a prefetched/restored line
	PrefetchUnused stats.Counter // prefetched/restored lines evicted or swept untouched
}

// Each way is one packed word: the line tag in the high 32 bits, the LRU
// timestamp in the low 32. The set scan (tag match) and the victim scan
// (min timestamp) therefore read the same dense row of words — for an 8-way
// set that is a single host cache line instead of three. tagEmpty32 marks an
// invalid way; locate rejects addresses whose tag would reach the sentinel.
const (
	tagEmpty32 = ^uint32(0)
	emptyWord  = uint64(tagEmpty32) << 32
	maxTick    = ^uint32(0) - 1 // renormalize before the timestamp can wrap
)

// Line metadata is packed into one byte per way: the low two bits hold the
// Provenance, bit 2 the demand-touched flag.
const (
	metaProvMask = 0b011
	metaTouched  = 0b100
)

// Cache is a single set-associative, LRU, write-allocate cache level. The
// zero value is not usable; construct with New.
type Cache struct {
	cfg      Config
	sets     int
	ways     int // == cfg.Ways, hoisted for the per-access set math
	lineBits uint
	setBits  uint // log2(sets), hoisted out of the per-access tag math
	setMask  uint64
	pk       []uint64 // sets*ways, set-major: tag<<32 | lastUse
	meta     []uint8  // provenance + touched bits, parallel to pk
	tick     uint32
	stats    Stats
}

// New builds a cache from cfg, validating that the geometry is coherent
// (power-of-two line size and set count).
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || bits.OnesCount(uint(cfg.LineBytes)) != 1 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes)
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache %s: invalid geometry", cfg.Name)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways)
	}
	sets := lines / cfg.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("cache %s: %d sets not a power of two", cfg.Name, sets)
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setBits:  uint(bits.TrailingZeros(uint(sets))),
		setMask:  uint64(sets - 1),
		pk:       make([]uint64, lines),
		meta:     make([]uint8, lines),
	}
	for i := range c.pk {
		c.pk[i] = emptyWord
	}
	return c, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the cache's statistics collector.
func (c *Cache) Stats() *Stats { return &c.stats }

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineBits << c.lineBits
}

// locate splits addr into its set's base index and tag with one shift of the
// line index — the hottest few instructions in the whole simulator. The tag
// is returned as uint64 so a probe whose tag exceeds 32 bits compares not-
// equal against every stored (32-bit) tag instead of aliasing by truncation;
// fill rejects such addresses outright, so they can never become resident.
func (c *Cache) locate(addr uint64) (base int, tag uint64) {
	lineIdx := addr >> c.lineBits
	return int(lineIdx&c.setMask) * c.ways, lineIdx >> c.setBits
}

// nextTick advances the LRU clock. When the 32-bit timestamp space is about
// to wrap, every set's timestamps are renormalized to their rank order —
// relative recency (the only thing LRU replacement reads) is preserved
// exactly, so replacement behaviour is unchanged across a renormalization.
func (c *Cache) nextTick() uint32 {
	if c.tick >= maxTick {
		c.renormalizeTicks()
	}
	c.tick++
	return c.tick
}

func (c *Cache) renormalizeTicks() {
	order := make([]int, 0, c.ways)
	for base := 0; base < len(c.pk); base += c.ways {
		order = order[:0]
		for i := 0; i < c.ways; i++ {
			if c.pk[base+i] != emptyWord {
				order = append(order, i)
			}
		}
		row := c.pk[base : base+c.ways]
		sort.Slice(order, func(a, b int) bool {
			return uint32(row[order[a]]) < uint32(row[order[b]])
		})
		for rank, i := range order {
			row[i] = row[i]&^uint64(^uint32(0)) | uint64(rank+1)
		}
	}
	c.tick = uint32(c.ways)
}

// AccessResult describes a cache lookup.
type AccessResult struct {
	Hit bool
	// FirstTouch is set when a demand access hits a prefetched or
	// restored line for the first time — the signal used both by the
	// next-line prefetcher (prefetch-hit trigger) and by accuracy
	// accounting.
	FirstTouch bool
	// Prov is the provenance of the line that was hit.
	Prov Provenance
}

// Access looks up addr. A demand access updates recency and the touched
// bit; a non-demand access (prefetcher probe) updates neither.
func (c *Cache) Access(addr uint64, demand bool) AccessResult {
	base, tag := c.locate(addr)
	ps := c.pk[base : base+c.ways]
	if demand {
		c.stats.Accesses.Inc()
	}
	for i := range ps {
		if ps[i]>>32 == tag {
			m := c.meta[base+i]
			prov := Provenance(m & metaProvMask)
			if !demand {
				return AccessResult{Hit: true, Prov: prov}
			}
			c.stats.Hits.Inc()
			ps[i] = tag<<32 | uint64(c.nextTick())
			first := m&metaTouched == 0 && prov != ProvDemand
			if first {
				c.stats.PrefetchUseful.Inc()
			}
			c.meta[base+i] = m | metaTouched
			return AccessResult{Hit: true, FirstTouch: first, Prov: prov}
		}
	}
	if demand {
		c.stats.Misses.Inc()
	}
	return AccessResult{}
}

// Contains reports whether addr is resident without disturbing any state.
func (c *Cache) Contains(addr uint64) bool {
	base, tag := c.locate(addr)
	ps := c.pk[base : base+c.ways]
	for i := range ps {
		if ps[i]>>32 == tag {
			return true
		}
	}
	return false
}

// Eviction describes a line displaced by an insert.
type Eviction struct {
	LineAddr uint64
	Prov     Provenance
	Touched  bool
}

// Insert fills addr with the given provenance, returning the eviction (if
// any). Inserting a line that is already resident refreshes recency and
// upgrades wrong-path/prefetch provenance to demand when prov is demand.
func (c *Cache) Insert(addr uint64, prov Provenance) (Eviction, bool) {
	base, tag := c.locate(addr)
	ps := c.pk[base : base+c.ways]
	tick := c.nextTick()
	for i := range ps {
		if ps[i]>>32 == tag {
			ps[i] = tag<<32 | uint64(tick)
			if prov == ProvDemand {
				c.meta[base+i] = uint8(ProvDemand) | metaTouched
			}
			return Eviction{}, false
		}
	}
	return c.fill(addr, base, tag, tick, prov)
}

// InsertAbsent is Insert for a line the caller has just proven absent (a
// missed Access or failed Contains on this cache with no intervening insert):
// it skips the existing-copy scan and goes straight to victim selection.
func (c *Cache) InsertAbsent(addr uint64, prov Provenance) (Eviction, bool) {
	base, tag := c.locate(addr)
	return c.fill(addr, base, tag, c.nextTick(), prov)
}

// fill places addr into an invalid way, or the LRU victim when the set is
// full (first invalid way wins, then strictly-oldest timestamp — the same
// selection order as the original two-pass scan).
func (c *Cache) fill(addr uint64, base int, tag uint64, tick uint32, prov Provenance) (Eviction, bool) {
	if tag >= uint64(tagEmpty32) {
		panic(fmt.Sprintf("cache %s: address %#x out of the 32-bit tag range", c.cfg.Name, addr))
	}
	ps := c.pk[base : base+c.ways]
	victim := 0
	var oldest uint32 = ^uint32(0)
	for i := range ps {
		w := ps[i]
		if w == emptyWord {
			victim = i
			oldest = 0
			break
		}
		if uint32(w) < oldest {
			oldest = uint32(w)
			victim = i
		}
	}
	ev := Eviction{}
	hadEv := false
	if w := ps[victim]; w != emptyWord {
		hadEv = true
		m := c.meta[base+victim]
		setIdx := (addr >> c.lineBits) & c.setMask
		evLineIdx := (w>>32)<<c.setBits | setIdx
		ev = Eviction{
			LineAddr: evLineIdx << c.lineBits,
			Prov:     Provenance(m & metaProvMask),
			Touched:  m&metaTouched != 0,
		}
		c.stats.Evictions.Inc()
		if m&metaTouched == 0 && Provenance(m&metaProvMask) != ProvDemand {
			c.stats.PrefetchUnused.Inc()
		}
	}
	ps[victim] = tag<<32 | uint64(tick)
	m := uint8(prov)
	if prov == ProvDemand {
		m |= metaTouched
	}
	c.meta[base+victim] = m
	c.stats.Inserts.Inc()
	return ev, hadEv
}

// Flush invalidates every line, modeling thrashing by interleaved
// executions. Untouched prefetched lines are counted as unused.
func (c *Cache) Flush() {
	for i := range c.pk {
		if c.pk[i] != emptyWord {
			m := c.meta[i]
			if m&metaTouched == 0 && Provenance(m&metaProvMask) != ProvDemand {
				c.stats.PrefetchUnused.Inc()
			}
		}
		c.pk[i] = emptyWord
		c.meta[i] = 0
	}
	c.tick = 0
}

// SweepUnused finalizes accuracy statistics at the end of a measurement
// window: resident prefetched/restored lines that were never demand-touched
// are counted as unused without invalidating them.
func (c *Cache) SweepUnused() int {
	n := 0
	for i := range c.pk {
		if c.pk[i] == emptyWord {
			continue
		}
		m := c.meta[i]
		if m&metaTouched == 0 && Provenance(m&metaProvMask) != ProvDemand {
			c.stats.PrefetchUnused.Inc()
			n++
		}
	}
	return n
}

// Invalidate removes addr's line if resident, returning whether a line was
// dropped. Used for inclusion-maintaining back-invalidation: when an outer
// level evicts a line, inner copies must go too. An untouched
// prefetched/restored line counts as unused, exactly as in an eviction.
func (c *Cache) Invalidate(addr uint64) bool {
	base, tag := c.locate(addr)
	ps := c.pk[base : base+c.ways]
	for i := range ps {
		if ps[i]>>32 == tag {
			m := c.meta[base+i]
			if m&metaTouched == 0 && Provenance(m&metaProvMask) != ProvDemand {
				c.stats.PrefetchUnused.Inc()
			}
			ps[i] = emptyWord
			c.meta[base+i] = 0
			return true
		}
	}
	return false
}

// Lines returns the line addresses of every valid line, in set order — the
// iteration surface the inclusion invariant (internal/check) audits.
func (c *Cache) Lines() []uint64 {
	out := make([]uint64, 0, 64)
	for i := range c.pk {
		if c.pk[i] == emptyWord {
			continue
		}
		setIdx := uint64(i/c.ways) & c.setMask
		out = append(out, ((c.pk[i]>>32)<<c.setBits|setIdx)<<c.lineBits)
	}
	return out
}

// ResetStats clears counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.pk {
		if c.pk[i] != emptyWord {
			n++
		}
	}
	return n
}
