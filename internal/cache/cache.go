// Package cache models the on-chip cache hierarchy of the simulated core:
// set-associative L1-I, L1-D, private L2 and shared LLC with LRU
// replacement, line provenance tracking (demand / prefetcher / Ignite
// restore), and the statistics needed by the paper's coverage, accuracy and
// bandwidth studies.
package cache

import (
	"fmt"
	"math/bits"

	"ignite/internal/stats"
)

// Provenance records how a line entered a cache, enabling the prefetch
// accuracy accounting of the paper's Figure 9c and the useful/useless
// traffic split of Figure 10.
type Provenance uint8

const (
	// ProvDemand: filled by a correct-path demand access.
	ProvDemand Provenance = iota
	// ProvWrongPath: filled by a wrong-path demand fetch.
	ProvWrongPath
	// ProvPrefetch: filled by a conventional prefetcher (NL, FDP,
	// Boomerang, Jukebox, Confluence).
	ProvPrefetch
	// ProvRestored: filled by Ignite's bulk restore.
	ProvRestored
)

func (p Provenance) String() string {
	switch p {
	case ProvDemand:
		return "demand"
	case ProvWrongPath:
		return "wrongpath"
	case ProvPrefetch:
		return "prefetch"
	case ProvRestored:
		return "restored"
	default:
		return fmt.Sprintf("Provenance(%d)", uint8(p))
	}
}

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency int // cycles
}

// Stats collects per-cache event counts.
type Stats struct {
	Accesses       stats.Counter
	Hits           stats.Counter
	Misses         stats.Counter
	Inserts        stats.Counter
	Evictions      stats.Counter
	PrefetchUseful stats.Counter // first demand touch of a prefetched/restored line
	PrefetchUnused stats.Counter // prefetched/restored lines evicted or swept untouched
}

type line struct {
	tag     uint64
	valid   bool
	prov    Provenance
	touched bool // demand-accessed since fill
	lastUse uint64
}

// Cache is a single set-associative, LRU, write-allocate cache level. The
// zero value is not usable; construct with New.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	setBits  uint // log2(sets), hoisted out of the per-access tag math
	setMask  uint64
	lines    []line // sets*ways, set-major
	tick     uint64
	stats    Stats
}

// New builds a cache from cfg, validating that the geometry is coherent
// (power-of-two line size and set count).
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || bits.OnesCount(uint(cfg.LineBytes)) != 1 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes)
	}
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache %s: invalid geometry", cfg.Name)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by %d ways", cfg.Name, lines, cfg.Ways)
	}
	sets := lines / cfg.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("cache %s: %d sets not a power of two", cfg.Name, sets)
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setBits:  uint(bits.TrailingZeros(uint(sets))),
		setMask:  uint64(sets - 1),
		lines:    make([]line, lines),
	}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the cache's statistics collector.
func (c *Cache) Stats() *Stats { return &c.stats }

// LineAddr returns the line-aligned address for addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineBits << c.lineBits
}

// locate splits addr into its set slice and tag with one shift of the line
// index — the hottest few instructions in the whole simulator.
func (c *Cache) locate(addr uint64) (set []line, tag uint64) {
	lineIdx := addr >> c.lineBits
	start := int(lineIdx&c.setMask) * c.cfg.Ways
	return c.lines[start : start+c.cfg.Ways], lineIdx >> c.setBits
}

// AccessResult describes a cache lookup.
type AccessResult struct {
	Hit bool
	// FirstTouch is set when a demand access hits a prefetched or
	// restored line for the first time — the signal used both by the
	// next-line prefetcher (prefetch-hit trigger) and by accuracy
	// accounting.
	FirstTouch bool
	// Prov is the provenance of the line that was hit.
	Prov Provenance
}

// Access looks up addr. A demand access updates recency and the touched
// bit; a non-demand access (prefetcher probe) updates neither.
func (c *Cache) Access(addr uint64, demand bool) AccessResult {
	set, tag := c.locate(addr)
	if demand {
		c.stats.Accesses.Inc()
	}
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			if !demand {
				return AccessResult{Hit: true, Prov: ln.prov}
			}
			c.stats.Hits.Inc()
			c.tick++
			ln.lastUse = c.tick
			first := !ln.touched && ln.prov != ProvDemand
			if first {
				c.stats.PrefetchUseful.Inc()
			}
			ln.touched = true
			return AccessResult{Hit: true, FirstTouch: first, Prov: ln.prov}
		}
	}
	if demand {
		c.stats.Misses.Inc()
	}
	return AccessResult{}
}

// Contains reports whether addr is resident without disturbing any state.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes a line displaced by an insert.
type Eviction struct {
	LineAddr uint64
	Prov     Provenance
	Touched  bool
}

// Insert fills addr with the given provenance, returning the eviction (if
// any). Inserting a line that is already resident refreshes recency and
// upgrades wrong-path/prefetch provenance to demand when prov is demand.
func (c *Cache) Insert(addr uint64, prov Provenance) (Eviction, bool) {
	set, tag := c.locate(addr)
	c.tick++
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.tick
			if prov == ProvDemand {
				ln.prov = ProvDemand
				ln.touched = true
			}
			return Eviction{}, false
		}
	}
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := range set {
		ln := &set[i]
		if !ln.valid {
			victim = i
			break
		}
		if ln.lastUse < oldest {
			oldest = ln.lastUse
			victim = i
		}
	}
	ev := Eviction{}
	hadEv := false
	v := &set[victim]
	if v.valid {
		hadEv = true
		setIdx := (addr >> c.lineBits) & c.setMask
		evLineIdx := v.tag<<c.setBits | setIdx
		ev = Eviction{LineAddr: evLineIdx << c.lineBits, Prov: v.prov, Touched: v.touched}
		c.stats.Evictions.Inc()
		if !v.touched && v.prov != ProvDemand {
			c.stats.PrefetchUnused.Inc()
		}
	}
	*v = line{
		tag:     tag,
		valid:   true,
		prov:    prov,
		touched: prov == ProvDemand,
		lastUse: c.tick,
	}
	c.stats.Inserts.Inc()
	return ev, hadEv
}

// Flush invalidates every line, modeling thrashing by interleaved
// executions. Untouched prefetched lines are counted as unused.
func (c *Cache) Flush() {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && !ln.touched && ln.prov != ProvDemand {
			c.stats.PrefetchUnused.Inc()
		}
		c.lines[i] = line{}
	}
	c.tick = 0
}

// SweepUnused finalizes accuracy statistics at the end of a measurement
// window: resident prefetched/restored lines that were never demand-touched
// are counted as unused without invalidating them.
func (c *Cache) SweepUnused() int {
	n := 0
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && !ln.touched && ln.prov != ProvDemand {
			c.stats.PrefetchUnused.Inc()
			n++
		}
	}
	return n
}

// Invalidate removes addr's line if resident, returning whether a line was
// dropped. Used for inclusion-maintaining back-invalidation: when an outer
// level evicts a line, inner copies must go too. An untouched
// prefetched/restored line counts as unused, exactly as in an eviction.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.locate(addr)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			if !ln.touched && ln.prov != ProvDemand {
				c.stats.PrefetchUnused.Inc()
			}
			*ln = line{}
			return true
		}
	}
	return false
}

// Lines returns the line addresses of every valid line, in set order — the
// iteration surface the inclusion invariant (internal/check) audits.
func (c *Cache) Lines() []uint64 {
	out := make([]uint64, 0, 64)
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		setIdx := uint64(i/c.cfg.Ways) & c.setMask
		out = append(out, (ln.tag<<c.setBits|setIdx)<<c.lineBits)
	}
	return out
}

// ResetStats clears counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
