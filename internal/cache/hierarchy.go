package cache

import "ignite/internal/stats"

// LineBytesConst is the line size used throughout the hierarchy.
const LineBytesConst = 64

// Level identifies a position in the hierarchy.
type Level uint8

const (
	LvlL1I Level = iota
	LvlL1D
	LvlL2
	LvlLLC
	LvlMem
)

func (l Level) String() string {
	switch l {
	case LvlL1I:
		return "L1I"
	case LvlL1D:
		return "L1D"
	case LvlL2:
		return "L2"
	case LvlLLC:
		return "LLC"
	case LvlMem:
		return "Mem"
	default:
		return "?"
	}
}

// Source identifies the agent that caused a fill, used for bandwidth and
// accuracy classification (Figures 9c and 10).
type Source uint8

const (
	SrcDemand Source = iota
	SrcWrongPath
	SrcNextLine
	SrcFDP
	SrcBoomerang
	SrcJukebox
	SrcConfluence
	SrcIgnite
	SrcData
	numSources
)

// NumSources is the number of distinct fill sources.
const NumSources = int(numSources)

func (s Source) String() string {
	switch s {
	case SrcDemand:
		return "demand"
	case SrcWrongPath:
		return "wrongpath"
	case SrcNextLine:
		return "nextline"
	case SrcFDP:
		return "fdp"
	case SrcBoomerang:
		return "boomerang"
	case SrcJukebox:
		return "jukebox"
	case SrcConfluence:
		return "confluence"
	case SrcIgnite:
		return "ignite"
	case SrcData:
		return "data"
	default:
		return "?"
	}
}

// provFor maps a fill source to line provenance.
func provFor(src Source) Provenance {
	switch src {
	case SrcDemand, SrcData:
		return ProvDemand
	case SrcWrongPath:
		return ProvWrongPath
	case SrcIgnite:
		return ProvRestored
	default:
		return ProvPrefetch
	}
}

// Tracker observes memory-bus fetches, prefetch inserts and demand touches;
// implemented by memsys.Traffic. A nil Tracker disables tracking.
type Tracker interface {
	// MemFetch reports that one line crossed the DRAM bus due to src.
	MemFetch(lineAddr uint64, src Source)
	// Inserted reports a prefetch-class insert at the given level.
	Inserted(lineAddr uint64, src Source, lvl Level)
	// DemandTouch reports the first correct-path demand use of a line.
	DemandTouch(lineAddr uint64)
}

// Latencies holds per-level access latencies in cycles (Table 2 of the
// paper; memory is LLC miss + DRAM).
type Latencies struct {
	L1I, L1D, L2, LLC, Mem int
}

// DefaultLatencies mirror the paper's Table 2 (DDR4-2400 timings folded
// into a flat DRAM latency).
func DefaultLatencies() Latencies {
	return Latencies{L1I: 1, L1D: 4, L2: 13, LLC: 50, Mem: 160}
}

// HierStats aggregates hierarchy-level events that no single cache sees.
type HierStats struct {
	InstrFetches    stats.Counter // demand instruction line fetches
	InstrL1Misses   stats.Counter
	InstrL2Misses   stats.Counter
	InstrLLCMisses  stats.Counter // off-chip instruction fetches
	DataAccesses    stats.Counter
	DataL1Misses    stats.Counter
	DataLLCMisses   stats.Counter
	PrefetchIssued  [NumSources]stats.Counter
	PrefetchFromMem [NumSources]stats.Counter
}

// Hierarchy wires the four caches together with a flat-latency DRAM behind
// them and routes fill/accuracy events to an optional Tracker.
type Hierarchy struct {
	L1I, L1D, L2, LLC *Cache
	Lat               Latencies
	tracker           Tracker
	stats             HierStats
}

// DefaultHierarchy builds the paper's Table 2 configuration: 32 KiB/8-way
// L1-I, 48 KiB/12-way L1-D, 1280 KiB/20-way private L2, 8 MiB/16-way LLC,
// 64 B lines.
func DefaultHierarchy(tracker Tracker) *Hierarchy {
	return &Hierarchy{
		L1I:     MustNew(Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitLatency: 1}),
		L1D:     MustNew(Config{Name: "L1D", SizeBytes: 48 << 10, LineBytes: 64, Ways: 12, HitLatency: 4}),
		L2:      MustNew(Config{Name: "L2", SizeBytes: 1280 << 10, LineBytes: 64, Ways: 20, HitLatency: 13}),
		LLC:     MustNew(Config{Name: "LLC", SizeBytes: 8 << 20, LineBytes: 64, Ways: 16, HitLatency: 50}),
		Lat:     DefaultLatencies(),
		tracker: tracker,
	}
}

// Stats returns the hierarchy-level statistics.
func (h *Hierarchy) Stats() *HierStats { return &h.stats }

// SetTracker installs (or clears) the traffic tracker.
func (h *Hierarchy) SetTracker(t Tracker) { h.tracker = t }

// insertL2 fills the L2 and maintains inclusion: the L2 is inclusive of
// both L1s, so a line displaced from the L2 must be dropped from the L1s
// too (back-invalidation). Without this, a hot line resident in the L1-I —
// whose hits never refresh its L2 recency — could outlive its L2 copy,
// silently breaking the inclusion law the paper's hierarchy assumes.
func (h *Hierarchy) insertL2(la uint64, prov Provenance) {
	if ev, ok := h.L2.Insert(la, prov); ok {
		h.L1I.Invalidate(ev.LineAddr)
		h.L1D.Invalidate(ev.LineAddr)
	}
}

// insertL2Absent is insertL2 for a line just proven absent from the L2 (a
// missed L2 access or failed Contains with no intervening L2 insert).
func (h *Hierarchy) insertL2Absent(la uint64, prov Provenance) {
	if ev, ok := h.L2.InsertAbsent(la, prov); ok {
		h.L1I.Invalidate(ev.LineAddr)
		h.L1D.Invalidate(ev.LineAddr)
	}
}

// FetchInstr performs a demand instruction fetch of the line containing
// addr, filling missing levels on the way. wrongPath marks fetches issued
// beyond a front-end divergence. It returns the access latency, the level
// that supplied the line, and whether this was the first demand touch of a
// prefetched line (the next-line prefetcher's secondary trigger).
func (h *Hierarchy) FetchInstr(addr uint64, wrongPath bool) (lat int, lvl Level, firstTouch bool) {
	la := h.L1I.LineAddr(addr)
	src := SrcDemand
	if wrongPath {
		src = SrcWrongPath
	}
	h.stats.InstrFetches.Inc()

	if res := h.L1I.Access(la, true); res.Hit {
		// Only a first touch can change tracker state on a hit: a line
		// that is already demand-filled or touched has had its
		// DemandTouch delivered (wrong-path fetches never hit — the
		// engine checks residency before issuing them), so the hottest
		// path in the simulator skips the tracker's map lookup.
		if res.FirstTouch && !wrongPath && h.tracker != nil {
			h.tracker.DemandTouch(la)
		}
		return h.Lat.L1I, LvlL1I, res.FirstTouch
	}
	h.stats.InstrL1Misses.Inc()
	prov := provFor(src)

	if res := h.L2.Access(la, true); res.Hit {
		h.L1I.InsertAbsent(la, prov)
		if !wrongPath && h.tracker != nil {
			h.tracker.DemandTouch(la)
		}
		return h.Lat.L2, LvlL2, false
	}
	h.stats.InstrL2Misses.Inc()

	if res := h.LLC.Access(la, true); res.Hit {
		h.insertL2Absent(la, prov)
		h.L1I.InsertAbsent(la, prov)
		if !wrongPath && h.tracker != nil {
			h.tracker.DemandTouch(la)
		}
		return h.Lat.LLC, LvlLLC, false
	}
	h.stats.InstrLLCMisses.Inc()

	// DRAM.
	if h.tracker != nil {
		h.tracker.MemFetch(la, src)
		if !wrongPath {
			h.tracker.DemandTouch(la)
		}
	}
	h.LLC.InsertAbsent(la, prov)
	h.insertL2Absent(la, prov)
	h.L1I.InsertAbsent(la, prov)
	return h.Lat.Mem, LvlMem, false
}

// PrefetchInstr brings the line containing addr into level `into` (and the
// levels below it on the fill path) on behalf of src. It returns the level
// the line was found at (LvlMem if it came from DRAM) and false when the
// line was already present at or above the target level.
func (h *Hierarchy) PrefetchInstr(addr uint64, src Source, into Level) (from Level, issued bool) {
	la := h.L1I.LineAddr(addr)
	// Already close enough to the core?
	switch into {
	case LvlL1I:
		if h.L1I.Contains(la) {
			return LvlL1I, false
		}
	case LvlL2:
		if h.L2.Contains(la) || h.L1I.Contains(la) {
			return LvlL2, false
		}
	default:
		if h.LLC.Contains(la) {
			return LvlLLC, false
		}
	}
	h.stats.PrefetchIssued[src].Inc()
	prov := provFor(src)

	from = LvlMem
	switch {
	case into == LvlL1I && h.L2.Contains(la):
		from = LvlL2
	case h.LLC.Contains(la):
		from = LvlLLC
	}
	if from == LvlMem {
		if h.tracker != nil {
			h.tracker.MemFetch(la, src)
		}
		h.stats.PrefetchFromMem[src].Inc()
		h.LLC.InsertAbsent(la, prov)
	}
	if into == LvlL1I {
		if from == LvlMem || from == LvlLLC {
			// from != LvlL2 means the L2 probe above came up empty.
			h.insertL2Absent(la, prov)
		}
		h.L1I.InsertAbsent(la, prov)
	} else if into == LvlL2 {
		h.insertL2Absent(la, prov)
	}
	if h.tracker != nil {
		h.tracker.Inserted(la, src, into)
	}
	return from, true
}

// AccessData performs a demand data access (load or store; we model both
// identically as fills).
func (h *Hierarchy) AccessData(addr uint64) (lat int, lvl Level) {
	la := h.L1D.LineAddr(addr)
	h.stats.DataAccesses.Inc()
	if res := h.L1D.Access(la, true); res.Hit {
		return h.Lat.L1D, LvlL1D
	}
	h.stats.DataL1Misses.Inc()
	if res := h.L2.Access(la, true); res.Hit {
		h.L1D.InsertAbsent(la, ProvDemand)
		return h.Lat.L2, LvlL2
	}
	if res := h.LLC.Access(la, true); res.Hit {
		h.insertL2Absent(la, ProvDemand)
		h.L1D.InsertAbsent(la, ProvDemand)
		return h.Lat.LLC, LvlLLC
	}
	h.stats.DataLLCMisses.Inc()
	if h.tracker != nil {
		h.tracker.MemFetch(la, SrcData)
	}
	h.LLC.InsertAbsent(la, ProvDemand)
	h.insertL2Absent(la, ProvDemand)
	h.L1D.InsertAbsent(la, ProvDemand)
	return h.Lat.Mem, LvlMem
}

// PrefetchData brings a data line into L1D/L2 on behalf of the baseline
// stride prefetcher.
func (h *Hierarchy) PrefetchData(addr uint64) {
	la := h.L1D.LineAddr(addr)
	if h.L1D.Contains(la) {
		return
	}
	if h.L2.Contains(la) {
		h.insertL2(la, ProvPrefetch) // recency refresh of the resident copy
	} else {
		if !h.LLC.Contains(la) {
			if h.tracker != nil {
				h.tracker.MemFetch(la, SrcData)
			}
			h.LLC.InsertAbsent(la, ProvPrefetch)
		}
		h.insertL2Absent(la, ProvPrefetch)
	}
	h.L1D.InsertAbsent(la, ProvPrefetch)
}

// FlushAll empties every cache (the lukewarm thrash).
func (h *Hierarchy) FlushAll() {
	h.L1I.Flush()
	h.L1D.Flush()
	h.L2.Flush()
	h.LLC.Flush()
}

// ResetStats clears all hierarchy and per-cache counters.
func (h *Hierarchy) ResetStats() {
	h.stats = HierStats{}
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.LLC.ResetStats()
}
