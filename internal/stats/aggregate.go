package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. An empty slice yields NaN — an
// aggregate over nothing is not 0, and a silent 0 reads as a real (and
// alarming) data point in a speedup table. Any NaN in xs propagates.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny positive value so a single zero does not collapse the
// mean; callers comparing speedups should never produce such values. An
// empty slice yields NaN and any NaN in xs propagates (NaN compares false
// with <= 0, so it escapes the clamp by design).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two middle elements for
// even lengths). An empty slice yields NaN, and so does any NaN in xs —
// sort.Float64s gives NaN an unspecified position, so without the explicit
// check the "median" would be an arbitrary element. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return math.NaN()
		}
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}
