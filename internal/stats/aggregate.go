package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny positive value so a single zero does not collapse the
// mean; callers comparing speedups should never produce such values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two middle elements for
// even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}
