package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero value counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after Reset counter = %d, want 0", c.Value())
	}
}

func TestCounterPerKilo(t *testing.T) {
	var c Counter
	c.Add(37)
	if got := c.PerKilo(1000); !almostEqual(got, 37) {
		t.Errorf("PerKilo(1000) = %v, want 37", got)
	}
	if got := c.PerKilo(2000); !almostEqual(got, 18.5) {
		t.Errorf("PerKilo(2000) = %v, want 18.5", got)
	}
	if got := c.PerKilo(0); got != 0 {
		t.Errorf("PerKilo(0) = %v, want 0", got)
	}
}

func TestCounterRatio(t *testing.T) {
	var c Counter
	c.Add(25)
	if got := c.Ratio(100); !almostEqual(got, 0.25) {
		t.Errorf("Ratio(100) = %v, want 0.25", got)
	}
	if got := c.Ratio(0); got != 0 {
		t.Errorf("Ratio(0) = %v, want 0", got)
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(37, 1000); !almostEqual(got, 37) {
		t.Errorf("MPKI(37,1000) = %v, want 37", got)
	}
	if got := MPKI(5, 0); got != 0 {
		t.Errorf("MPKI with zero instructions = %v, want 0", got)
	}
}

func TestCPIStackTotals(t *testing.T) {
	s := CPIStack{Retiring: 1, Fetch: 2, BadSpec: 3, Backend: 4}
	if !almostEqual(s.Total(), 10) {
		t.Errorf("Total = %v, want 10", s.Total())
	}
	if !almostEqual(s.FrontEnd(), 5) {
		t.Errorf("FrontEnd = %v, want 5", s.FrontEnd())
	}
}

func TestCPIStackPerInstr(t *testing.T) {
	s := CPIStack{Retiring: 100, Fetch: 50, BadSpec: 30, Backend: 20}
	p := s.PerInstr(100)
	if !almostEqual(p.Retiring, 1) || !almostEqual(p.Fetch, 0.5) ||
		!almostEqual(p.BadSpec, 0.3) || !almostEqual(p.Backend, 0.2) {
		t.Errorf("PerInstr = %+v", p)
	}
	if got := s.PerInstr(0); got.Total() != 0 {
		t.Errorf("PerInstr(0) = %+v, want zero stack", got)
	}
}

func TestCPIStackAddScale(t *testing.T) {
	a := CPIStack{Retiring: 1, Fetch: 2, BadSpec: 3, Backend: 4}
	b := CPIStack{Retiring: 4, Fetch: 3, BadSpec: 2, Backend: 1}
	sum := a.Add(b)
	if !almostEqual(sum.Total(), 20) {
		t.Errorf("Add Total = %v, want 20", sum.Total())
	}
	sc := a.Scale(2)
	if !almostEqual(sc.Total(), 20) || !almostEqual(sc.Fetch, 4) {
		t.Errorf("Scale = %+v", sc)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); !almostEqual(got, 2.5) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	g := GeoMean([]float64{1, 4})
	if !almostEqual(g, 2) {
		t.Errorf("GeoMean(1,4) = %v, want 2", g)
	}
}

func TestGeoMeanNonPositiveClamped(t *testing.T) {
	g := GeoMean([]float64{0, 1})
	if math.IsNaN(g) || math.IsInf(g, 0) {
		t.Errorf("GeoMean with zero produced %v", g)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if got := Median(xs); !almostEqual(got, 4) {
		t.Errorf("Median = %v, want 4", got)
	}
	if got := Median([]float64{3, 1, 2}); !almostEqual(got, 2) {
		t.Errorf("odd Median = %v, want 2", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Errorf("empty Min/Max = %v/%v, want 0", Min(nil), Max(nil))
	}
}

// TestAggregateNaNContract pins the degenerate-input behavior of the
// central-tendency aggregates: empty input yields NaN (never a fake 0 that
// reads as a real data point), a NaN anywhere in the input propagates, and
// nothing panics. Min/Max keep their 0-on-empty identity — they feed range
// annotations, not headline numbers.
func TestAggregateNaNContract(t *testing.T) {
	nan := math.NaN()
	fns := []struct {
		name string
		fn   func([]float64) float64
	}{
		{"Mean", Mean},
		{"GeoMean", GeoMean},
		{"Median", Median},
	}
	cases := []struct {
		name string
		xs   []float64
	}{
		{"nil", nil},
		{"empty", []float64{}},
		{"all NaN", []float64{nan}},
		{"NaN first", []float64{nan, 1, 2}},
		{"NaN middle", []float64{1, nan, 2}},
		{"NaN last", []float64{1, 2, nan}},
	}
	for _, f := range fns {
		for _, c := range cases {
			if got := f.fn(c.xs); !math.IsNaN(got) {
				t.Errorf("%s(%s) = %v, want NaN", f.name, c.name, got)
			}
		}
	}
	// The NaN check must not perturb clean inputs.
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median(clean) = %v, want 2", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

// Property: mean is always between min and max.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: geometric mean never exceeds arithmetic mean for positive input.
func TestAMGMProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1) // strictly positive
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("My Title", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	out := tab.String()
	if !strings.Contains(out, "My Title") {
		t.Errorf("missing title in %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.500") {
		t.Errorf("missing cells in %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("", "a", "long-header")
	tab.AddRow("xxxxxxxxxx", "y")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// All lines should be equally padded (same width).
	w := len(lines[1])
	for _, ln := range lines[1:] {
		if len(strings.TrimRight(ln, " ")) > w {
			t.Errorf("misaligned line %q", ln)
		}
	}
}
