// Package stats provides the statistics substrate shared by every component
// of the simulator: raw counters, MPKI and CPI-stack derivation, aggregation
// across workloads (arithmetic and geometric means), and plain-text rendering
// of the tables and series reported in the Ignite paper.
package stats

import "fmt"

// Counter is a monotonically increasing event counter. The zero value is
// ready to use.
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// PerKilo returns events per thousand units of base (e.g. misses per kilo
// instruction). It returns 0 when base is 0.
func (c *Counter) PerKilo(base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(c.n) * 1000 / float64(base)
}

// Ratio returns the counter as a fraction of base, or 0 when base is 0.
func (c *Counter) Ratio(base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(c.n) / float64(base)
}

func (c *Counter) String() string { return fmt.Sprintf("%d", c.n) }

// MPKI computes misses per kilo-instruction.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instructions)
}
