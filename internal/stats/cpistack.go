package stats

import "fmt"

// CPIStack breaks execution cycles into the four top-down categories used by
// the paper's Figure 1: retiring (useful work), fetch-bound (instruction
// cache/TLB stalls), bad speculation (BTB misses and conditional branch
// mispredictions, including wrong-path work), and backend-bound (data-side
// stalls). All values are in cycles.
type CPIStack struct {
	Retiring float64
	Fetch    float64
	BadSpec  float64
	Backend  float64
}

// Total returns the total cycle count of the stack.
func (s CPIStack) Total() float64 {
	return s.Retiring + s.Fetch + s.BadSpec + s.Backend
}

// FrontEnd returns the combined front-end stall cycles (fetch-bound plus bad
// speculation), the quantity the paper calls "front-end stalls".
func (s CPIStack) FrontEnd() float64 { return s.Fetch + s.BadSpec }

// PerInstr divides every component by the instruction count, turning a cycle
// stack into a CPI stack.
func (s CPIStack) PerInstr(instructions uint64) CPIStack {
	if instructions == 0 {
		return CPIStack{}
	}
	n := float64(instructions)
	return CPIStack{
		Retiring: s.Retiring / n,
		Fetch:    s.Fetch / n,
		BadSpec:  s.BadSpec / n,
		Backend:  s.Backend / n,
	}
}

// Add returns the component-wise sum of two stacks.
func (s CPIStack) Add(o CPIStack) CPIStack {
	return CPIStack{
		Retiring: s.Retiring + o.Retiring,
		Fetch:    s.Fetch + o.Fetch,
		BadSpec:  s.BadSpec + o.BadSpec,
		Backend:  s.Backend + o.Backend,
	}
}

// Scale returns the stack with every component multiplied by f.
func (s CPIStack) Scale(f float64) CPIStack {
	return CPIStack{
		Retiring: s.Retiring * f,
		Fetch:    s.Fetch * f,
		BadSpec:  s.BadSpec * f,
		Backend:  s.Backend * f,
	}
}

func (s CPIStack) String() string {
	return fmt.Sprintf("CPI %.3f (ret %.3f, fetch %.3f, badspec %.3f, backend %.3f)",
		s.Total(), s.Retiring, s.Fetch, s.BadSpec, s.Backend)
}
