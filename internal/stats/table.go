package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables, used by the experiment runners to
// print the same rows the paper's figures plot.
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// Header returns a copy of the column headers.
func (t *Table) Header() []string { return append([]string(nil), t.header...) }

// Rows returns a copy of the formatted rows — the machine-readable form the
// result exporters serialize (String renders the human-readable one).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// AddRow appends a row of cells. Non-string cells may be added with AddRowf.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row, formatting each value: strings verbatim, float64
// with 3 decimals, other values via %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
