package tlb

import (
	"testing"
	"testing/quick"
)

func small(t *testing.T) *TLB {
	t.Helper()
	tb, err := New(Config{Entries: 16, Ways: 4, PageBytes: 4096, WalkLatency: 60})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Entries: 0, Ways: 4, PageBytes: 4096},
		{Entries: 16, Ways: 3, PageBytes: 4096},
		{Entries: 24, Ways: 4, PageBytes: 4096}, // 6 sets
		{Entries: 16, Ways: 4, PageBytes: 1000},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("accepted %+v", c)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	tb := small(t)
	lat, hit := tb.Translate(0x400000)
	if hit || lat != 60 {
		t.Fatalf("first access: lat=%d hit=%v", lat, hit)
	}
	lat, hit = tb.Translate(0x400fff) // same 4K page
	if !hit || lat != 0 {
		t.Fatalf("same page: lat=%d hit=%v", lat, hit)
	}
	if _, hit := tb.Translate(0x401000); hit {
		t.Fatal("next page should miss")
	}
	st := tb.Stats()
	if st.Lookups.Value() != 3 || st.Misses.Value() != 2 || st.Fills.Value() != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPrefillAvoidsWalk(t *testing.T) {
	tb := small(t)
	tb.Prefill(0x8000_0000)
	if lat, hit := tb.Translate(0x8000_0123); !hit || lat != 0 {
		t.Errorf("prefilled page missed (lat=%d hit=%v)", lat, hit)
	}
	// Prefill of a present page is a no-op.
	fills := tb.Stats().Fills.Value()
	tb.Prefill(0x8000_0000)
	if tb.Stats().Fills.Value() != fills {
		t.Error("duplicate prefill filled again")
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := small(t) // 4 sets, 4 ways; same-set stride = 4 pages
	stride := uint64(4 * 4096)
	for i := 0; i < 4; i++ {
		tb.Translate(uint64(i) * stride)
	}
	tb.Translate(0) // refresh first
	tb.Translate(4 * stride)
	if !tb.Contains(0) {
		t.Error("MRU page evicted")
	}
	if tb.Contains(1 * stride) {
		t.Error("LRU page survived")
	}
}

func TestFlush(t *testing.T) {
	tb := small(t)
	tb.Translate(0x1000)
	tb.Flush()
	if tb.Contains(0x1000) {
		t.Error("entry survived flush")
	}
}

func TestTranslateProperty(t *testing.T) {
	tb := small(t)
	f := func(pages []uint16) bool {
		for _, p := range pages {
			addr := uint64(p) * 4096
			tb.Translate(addr)
			// Immediately after translating, the page must be present.
			if !tb.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
