// Package tlb models the instruction TLB. Ignite's replay translates every
// restored branch PC through the MMU, so replay doubles as an I-TLB
// prefetcher (Section 4.2 of the paper); lukewarm invocations otherwise
// start with a cold I-TLB and pay page-walk latency on first touch of every
// code page.
package tlb

import (
	"fmt"
	"math/bits"

	"ignite/internal/stats"
)

// Config describes TLB geometry.
type Config struct {
	Entries   int
	Ways      int
	PageBytes int
	// WalkLatency is the page-walk cost of a miss, in cycles.
	WalkLatency int
}

// DefaultConfig models a 128-entry, 8-way ITLB with 4 KiB pages and a
// 60-cycle page walk.
func DefaultConfig() Config {
	return Config{Entries: 128, Ways: 8, PageBytes: 4096, WalkLatency: 60}
}

// Stats counts TLB events.
type Stats struct {
	Lookups stats.Counter
	Misses  stats.Counter
	Fills   stats.Counter
}

// tagEmpty marks an empty way. A real tag is a shifted virtual page number,
// so all-ones would require an address at the very top of the 64-bit space;
// fill panics rather than alias it.
const tagEmpty = ^uint64(0)

// TLB is a set-associative translation buffer. Construct with New.
// Storage is struct-of-arrays: a match scan reads only the dense tag array
// (tagEmpty doubles as the valid flag); recency lives in a parallel array
// touched on hits and victim scans.
type TLB struct {
	cfg      Config
	sets     int
	setMask  uint64
	pageBits uint
	tags     []uint64 // page tag, or tagEmpty; set-major
	lastUse  []uint64
	tick     uint64
	stats    Stats
}

// New builds a TLB; sets must come out a power of two.
func New(c Config) (*TLB, error) {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return nil, fmt.Errorf("tlb: bad geometry %+v", c)
	}
	sets := c.Entries / c.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("tlb: %d sets not a power of two", sets)
	}
	if c.PageBytes <= 0 || bits.OnesCount(uint(c.PageBytes)) != 1 {
		return nil, fmt.Errorf("tlb: page size %d not a power of two", c.PageBytes)
	}
	t := &TLB{
		cfg:      c,
		sets:     sets,
		setMask:  uint64(sets - 1),
		pageBits: uint(bits.TrailingZeros(uint(c.PageBytes))),
		tags:     make([]uint64, c.Entries),
		lastUse:  make([]uint64, c.Entries),
	}
	for i := range t.tags {
		t.tags[i] = tagEmpty
	}
	return t, nil
}

// MustNew is New for known-valid configurations.
func MustNew(c Config) *TLB {
	t, err := New(c)
	if err != nil {
		panic(err)
	}
	return t
}

// Stats returns the statistics collector.
func (t *TLB) Stats() *Stats { return &t.stats }

func (t *TLB) index(addr uint64) (set, tag uint64) {
	vpn := addr >> t.pageBits
	return vpn & t.setMask, vpn >> uint(bits.TrailingZeros(uint(t.sets)))
}

// Translate looks up addr's page, returning the added latency (0 on hit,
// WalkLatency on miss) and whether it hit. A miss fills the TLB.
func (t *TLB) Translate(addr uint64) (extraLatency int, hit bool) {
	set, tag := t.index(addr)
	base := int(set) * t.cfg.Ways
	ts := t.tags[base : base+t.cfg.Ways]
	t.stats.Lookups.Inc()
	t.tick++
	for i := range ts {
		if ts[i] == tag {
			t.lastUse[base+i] = t.tick
			return 0, true
		}
	}
	t.stats.Misses.Inc()
	t.fill(set, tag)
	return t.cfg.WalkLatency, false
}

// Prefill inserts addr's translation without charging latency — Ignite's
// replay-side I-TLB warming.
func (t *TLB) Prefill(addr uint64) {
	set, tag := t.index(addr)
	base := int(set) * t.cfg.Ways
	ts := t.tags[base : base+t.cfg.Ways]
	for i := range ts {
		if ts[i] == tag {
			return
		}
	}
	t.fill(set, tag)
}

func (t *TLB) fill(set, tag uint64) {
	if tag == tagEmpty {
		panic("tlb: page tag collides with the empty sentinel")
	}
	base := int(set) * t.cfg.Ways
	ts := t.tags[base : base+t.cfg.Ways]
	t.tick++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ts {
		if ts[i] == tagEmpty {
			victim = i
			break
		}
		if lu := t.lastUse[base+i]; lu < oldest {
			oldest = lu
			victim = i
		}
	}
	t.tags[base+victim] = tag
	t.lastUse[base+victim] = t.tick
	t.stats.Fills.Inc()
}

// Contains probes without updating recency.
func (t *TLB) Contains(addr uint64) bool {
	set, tag := t.index(addr)
	base := int(set) * t.cfg.Ways
	ts := t.tags[base : base+t.cfg.Ways]
	for i := range ts {
		if ts[i] == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all translations.
func (t *TLB) Flush() {
	for i := range t.tags {
		t.tags[i] = tagEmpty
		t.lastUse[i] = 0
	}
	t.tick = 0
}

// ResetStats clears counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }
