// Package tlb models the instruction TLB. Ignite's replay translates every
// restored branch PC through the MMU, so replay doubles as an I-TLB
// prefetcher (Section 4.2 of the paper); lukewarm invocations otherwise
// start with a cold I-TLB and pay page-walk latency on first touch of every
// code page.
package tlb

import (
	"fmt"
	"math/bits"

	"ignite/internal/stats"
)

// Config describes TLB geometry.
type Config struct {
	Entries   int
	Ways      int
	PageBytes int
	// WalkLatency is the page-walk cost of a miss, in cycles.
	WalkLatency int
}

// DefaultConfig models a 128-entry, 8-way ITLB with 4 KiB pages and a
// 60-cycle page walk.
func DefaultConfig() Config {
	return Config{Entries: 128, Ways: 8, PageBytes: 4096, WalkLatency: 60}
}

// Stats counts TLB events.
type Stats struct {
	Lookups stats.Counter
	Misses  stats.Counter
	Fills   stats.Counter
}

type entry struct {
	valid   bool
	tag     uint64
	lastUse uint64
}

// TLB is a set-associative translation buffer. Construct with New.
type TLB struct {
	cfg      Config
	sets     int
	setMask  uint64
	pageBits uint
	entries  []entry
	tick     uint64
	stats    Stats
}

// New builds a TLB; sets must come out a power of two.
func New(c Config) (*TLB, error) {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return nil, fmt.Errorf("tlb: bad geometry %+v", c)
	}
	sets := c.Entries / c.Ways
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("tlb: %d sets not a power of two", sets)
	}
	if c.PageBytes <= 0 || bits.OnesCount(uint(c.PageBytes)) != 1 {
		return nil, fmt.Errorf("tlb: page size %d not a power of two", c.PageBytes)
	}
	return &TLB{
		cfg:      c,
		sets:     sets,
		setMask:  uint64(sets - 1),
		pageBits: uint(bits.TrailingZeros(uint(c.PageBytes))),
		entries:  make([]entry, c.Entries),
	}, nil
}

// MustNew is New for known-valid configurations.
func MustNew(c Config) *TLB {
	t, err := New(c)
	if err != nil {
		panic(err)
	}
	return t
}

// Stats returns the statistics collector.
func (t *TLB) Stats() *Stats { return &t.stats }

func (t *TLB) index(addr uint64) (set, tag uint64) {
	vpn := addr >> t.pageBits
	return vpn & t.setMask, vpn >> uint(bits.TrailingZeros(uint(t.sets)))
}

func (t *TLB) setSlice(set uint64) []entry {
	start := int(set) * t.cfg.Ways
	return t.entries[start : start+t.cfg.Ways]
}

// Translate looks up addr's page, returning the added latency (0 on hit,
// WalkLatency on miss) and whether it hit. A miss fills the TLB.
func (t *TLB) Translate(addr uint64) (extraLatency int, hit bool) {
	set, tag := t.index(addr)
	es := t.setSlice(set)
	t.stats.Lookups.Inc()
	t.tick++
	for i := range es {
		if es[i].valid && es[i].tag == tag {
			es[i].lastUse = t.tick
			return 0, true
		}
	}
	t.stats.Misses.Inc()
	t.fill(set, tag)
	return t.cfg.WalkLatency, false
}

// Prefill inserts addr's translation without charging latency — Ignite's
// replay-side I-TLB warming.
func (t *TLB) Prefill(addr uint64) {
	set, tag := t.index(addr)
	for i := range t.setSlice(set) {
		e := &t.setSlice(set)[i]
		if e.valid && e.tag == tag {
			return
		}
	}
	t.fill(set, tag)
}

func (t *TLB) fill(set, tag uint64) {
	es := t.setSlice(set)
	t.tick++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range es {
		if !es[i].valid {
			victim = i
			break
		}
		if es[i].lastUse < oldest {
			oldest = es[i].lastUse
			victim = i
		}
	}
	es[victim] = entry{valid: true, tag: tag, lastUse: t.tick}
	t.stats.Fills.Inc()
}

// Contains probes without updating recency.
func (t *TLB) Contains(addr uint64) bool {
	set, tag := t.index(addr)
	for i := range t.setSlice(set) {
		e := &t.setSlice(set)[i]
		if e.valid && e.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all translations.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.tick = 0
}

// ResetStats clears counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }
