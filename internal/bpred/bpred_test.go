package bpred

import (
	"math/rand/v2"
	"testing"
)

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := uint64(0x400100)
	for i := 0; i < 4; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal did not learn taken bias")
	}
	for i := 0; i < 4; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal did not unlearn")
	}
}

func TestBimodalSaturation(t *testing.T) {
	b := NewBimodal(64)
	pc := uint64(0x40)
	for i := 0; i < 100; i++ {
		b.Update(pc, true)
	}
	if b.Counter(pc) != StronglyTaken {
		t.Errorf("counter = %d, want %d", b.Counter(pc), StronglyTaken)
	}
	for i := 0; i < 100; i++ {
		b.Update(pc, false)
	}
	if b.Counter(pc) != StronglyNotTaken {
		t.Errorf("counter = %d, want %d", b.Counter(pc), StronglyNotTaken)
	}
}

func TestBimodalSetAndFlush(t *testing.T) {
	b := NewBimodal(64)
	pc := uint64(0x104)
	b.Set(pc, WeaklyTaken)
	if !b.Predict(pc) {
		t.Error("weakly-taken init not predicting taken")
	}
	b.Set(pc, 200) // clamped
	if b.Counter(pc) != StronglyTaken {
		t.Error("Set did not clamp")
	}
	b.Flush()
	if b.Predict(pc) {
		t.Error("flush should reset to weakly-not-taken")
	}
	if b.Stats().Sets.Value() != 2 {
		t.Error("Sets counter wrong")
	}
}

func TestBimodalRandomizeDeterministic(t *testing.T) {
	a, b := NewBimodal(1024), NewBimodal(1024)
	a.Randomize(7)
	b.Randomize(7)
	for i := uint64(0); i < 4096; i += 4 {
		if a.Counter(i) != b.Counter(i) {
			t.Fatal("Randomize not deterministic per seed")
		}
	}
	c := NewBimodal(1024)
	c.Randomize(8)
	diff := 0
	for i := uint64(0); i < 4096; i += 4 {
		if a.Counter(i) != c.Counter(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical state")
	}
}

func TestBimodalSnapshotRestore(t *testing.T) {
	b := NewBimodal(256)
	b.Update(0x10, true)
	b.Update(0x10, true)
	snap := b.Snapshot()
	b.Flush()
	b.Restore(snap)
	if !b.Predict(0x10) {
		t.Error("restore lost state")
	}
}

func TestTAGELearnsPeriodicPattern(t *testing.T) {
	bim := NewBimodal(4096)
	tg := NewTAGE(bim, DefaultTAGEConfig())
	pc := uint64(0x400104)
	// Pattern: NTTT repeating (period 4). Bimodal alone settles on taken
	// and mispredicts every 4th; TAGE should learn the history.
	warmup, measure := 3000, 1000
	wrong := 0
	for i := 0; i < warmup+measure; i++ {
		taken := i%4 != 0
		if i >= warmup && tg.Predict(pc) != taken {
			wrong++
		}
		tg.Update(pc, taken)
	}
	if frac := float64(wrong) / float64(measure); frac > 0.05 {
		t.Errorf("TAGE mispredict rate on periodic pattern = %.2f, want < 0.05", frac)
	}
}

func TestTAGEBeatsBimodalOnPattern(t *testing.T) {
	bimA := NewBimodal(4096)
	tg := NewTAGE(bimA, DefaultTAGEConfig())
	bimB := NewBimodal(4096)
	pc := uint64(0x7004)
	tageWrong, bimWrong := 0, 0
	for i := 0; i < 4000; i++ {
		taken := i%3 != 0
		if i >= 2000 {
			if tg.Predict(pc) != taken {
				tageWrong++
			}
			if bimB.Predict(pc) != taken {
				bimWrong++
			}
		}
		tg.Update(pc, taken)
		bimB.Update(pc, taken)
	}
	if tageWrong >= bimWrong {
		t.Errorf("TAGE (%d wrong) should beat bimodal (%d wrong) on period-3", tageWrong, bimWrong)
	}
}

func TestTAGEFallsBackToBaseWhenFlushed(t *testing.T) {
	bim := NewBimodal(4096)
	tg := NewTAGE(bim, DefaultTAGEConfig())
	pc := uint64(0x500)
	for i := 0; i < 8; i++ {
		bim.Update(pc, true)
	}
	tg.Flush()
	if !tg.Predict(pc) {
		t.Error("flushed TAGE should fall back to warm bimodal")
	}
}

func TestTAGESnapshotRestore(t *testing.T) {
	bim := NewBimodal(4096)
	tg := NewTAGE(bim, DefaultTAGEConfig())
	pc := uint64(0x1234)
	for i := 0; i < 2000; i++ {
		tg.Update(pc, i%4 != 0)
	}
	snap := tg.Snapshot()
	predBefore := make([]bool, 8)
	for i := range predBefore {
		predBefore[i] = tg.Predict(pc + uint64(i*4))
	}
	tg.Flush()
	tg.Restore(snap)
	for i := range predBefore {
		if tg.Predict(pc+uint64(i*4)) != predBefore[i] {
			t.Fatal("restore did not reproduce predictions")
		}
	}
}

func TestLoopPredictorLearnsFixedTrips(t *testing.T) {
	lp := NewLoopPredictor(64)
	pc := uint64(0x9000)
	trips := 7
	// Train several loop executions: taken trips-1 times? Our latch model:
	// taken trips-1, then not-taken on exit... Use taken=iter<trips.
	for exec := 0; exec < 6; exec++ {
		for i := 0; i < trips; i++ {
			lp.Update(pc, i < trips-1)
		}
	}
	// Now predict one full execution.
	wrong := 0
	for i := 0; i < trips; i++ {
		want := i < trips-1
		pred, conf := lp.Predict(pc)
		if !conf {
			t.Fatalf("iteration %d: not confident after training", i)
		}
		if pred != want {
			wrong++
		}
		lp.Update(pc, want)
	}
	if wrong != 0 {
		t.Errorf("loop predictor wrong %d times on fixed loop", wrong)
	}
}

func TestLoopPredictorNotConfidentOnJitter(t *testing.T) {
	lp := NewLoopPredictor(64)
	pc := uint64(0x9100)
	rng := rand.New(rand.NewPCG(1, 2))
	for exec := 0; exec < 10; exec++ {
		trips := 5 + rng.IntN(4)
		for i := 0; i < trips; i++ {
			lp.Update(pc, i < trips-1)
		}
	}
	confCount := 0
	for i := 0; i < 8; i++ {
		if _, conf := lp.Predict(pc); conf {
			confCount++
		}
		lp.Update(pc, i < 7)
	}
	// Jittered loops should mostly not reach confidence.
	if confCount > 4 {
		t.Errorf("confident %d/8 times on jittered loop", confCount)
	}
}

func TestCBPComposition(t *testing.T) {
	c := NewCBP()
	pc := uint64(0x400abc)
	for i := 0; i < 200; i++ {
		c.PredictAndUpdate(pc, true)
	}
	if !c.Predict(pc) {
		t.Error("CBP did not learn strong taken")
	}
	st := c.Stats()
	if st.Predictions.Value() != 200 {
		t.Errorf("predictions = %d", st.Predictions.Value())
	}
	if st.Mispredicts.Value() > 5 {
		t.Errorf("mispredicts on constant branch = %d", st.Mispredicts.Value())
	}
}

func TestCBPFlushSemantics(t *testing.T) {
	c := NewCBP()
	pc := uint64(0x400abc)
	for i := 0; i < 100; i++ {
		c.PredictAndUpdate(pc, true)
	}
	// FlushTAGE keeps BIM: still predicts taken.
	c.FlushTAGE()
	if !c.Predict(pc) {
		t.Error("FlushTAGE lost BIM state")
	}
	// FlushAll randomizes BIM: outcome may flip; just ensure no panic and
	// TAGE empty (prediction driven by BIM).
	c.FlushAll(3)
	_ = c.Predict(pc)
}

func TestCBPSelectiveRestore(t *testing.T) {
	c := NewCBP()
	pcs := []uint64{0x100, 0x204, 0x308, 0x40c}
	for i := 0; i < 3000; i++ {
		for j, pc := range pcs {
			c.PredictAndUpdate(pc, (i+j)%3 != 0)
		}
	}
	snap := c.Snapshot()

	// BIM-only restore: TAGE cold.
	c.FlushAll(1)
	c.RestoreBimOnly(snap)
	bimOnlyWrong := 0
	for i := 0; i < 300; i++ {
		for j, pc := range pcs {
			taken := (i+j)%3 != 0
			if c.PredictAndUpdate(pc, taken) != taken {
				bimOnlyWrong++
			}
		}
	}

	// Full restore.
	c.FlushAll(2)
	c.Restore(snap)
	fullWrong := 0
	for i := 0; i < 300; i++ {
		for j, pc := range pcs {
			taken := (i+j)%3 != 0
			if c.PredictAndUpdate(pc, taken) != taken {
				fullWrong++
			}
		}
	}
	if fullWrong > bimOnlyWrong {
		t.Errorf("full restore (%d wrong) should be at least as good as BIM-only (%d wrong)", fullWrong, bimOnlyWrong)
	}
}

func TestCBPColdVsWarm(t *testing.T) {
	// The central premise: a warm CBP mispredicts less than a cold one on
	// the same biased branch working set.
	pcs := make([]uint64, 200)
	for i := range pcs {
		pcs[i] = uint64(0x400000 + i*16)
	}
	run := func(c *CBP) int {
		wrong := 0
		for rep := 0; rep < 10; rep++ {
			for j, pc := range pcs {
				taken := j%5 != 0
				if c.PredictAndUpdate(pc, taken) != taken {
					wrong++
				}
			}
		}
		return wrong
	}
	warm := NewCBP()
	run(warm) // train
	warmWrong := run(warm)

	cold := NewCBP()
	cold.FlushAll(99)
	coldWrong := run(cold)
	if warmWrong >= coldWrong {
		t.Errorf("warm CBP (%d) should beat cold CBP (%d)", warmWrong, coldWrong)
	}
}
