package bpred

// LoopPredictor captures loops with stable trip counts: after observing the
// same taken-run length (trip count) several times for a branch, it predicts
// the exit (not-taken) on the final iteration — the L in L-TAGE.
type LoopPredictor struct {
	entries []loopEntry
	mask    uint64
}

type loopEntry struct {
	tag     uint16
	trip    uint16 // learned taken-run length before the not-taken exit
	current uint16 // taken count in the current execution of the loop
	conf    uint8  // confirmations of the same trip count
	valid   bool
	age     uint8
}

const loopConfident = 3

// NewLoopPredictor creates a direct-mapped loop predictor with n entries
// (rounded to a power of two, minimum 16).
func NewLoopPredictor(n int) *LoopPredictor {
	size := 16
	for size < n {
		size <<= 1
	}
	return &LoopPredictor{entries: make([]loopEntry, size), mask: uint64(size - 1)}
}

func (l *LoopPredictor) slot(pc uint64) (*loopEntry, uint16) {
	w := pc >> 2
	idx := (w ^ w>>9) & l.mask
	tag := uint16((w >> 5) & 0x3ff)
	return &l.entries[idx], tag
}

// Predict returns (prediction, confident). Callers use the prediction only
// when confident.
func (l *LoopPredictor) Predict(pc uint64) (taken, confident bool) {
	e, tag := l.slot(pc)
	if !e.valid || e.tag != tag || e.conf < loopConfident {
		return false, false
	}
	// Predict taken until the learned trip count is reached, then exit.
	return e.current < e.trip, true
}

// Update trains the entry with the actual outcome of the loop branch
// (taken = another iteration, not-taken = exit).
func (l *LoopPredictor) Update(pc uint64, taken bool) {
	e, tag := l.slot(pc)
	if !e.valid || e.tag != tag {
		// Allocate on a not-taken observation is useless; start
		// tracking on taken.
		if taken {
			*e = loopEntry{tag: tag, valid: true, current: 1}
		}
		return
	}
	if taken {
		if e.current < 0xffff {
			e.current++
		}
		return
	}
	// Loop exit: compare the observed run with the learned trip count.
	if e.current == e.trip && e.trip > 0 {
		if e.conf < 7 {
			e.conf++
		}
	} else {
		e.trip = e.current
		e.conf = 0
	}
	e.current = 0
}

// Flush clears all entries.
func (l *LoopPredictor) Flush() {
	for i := range l.entries {
		l.entries[i] = loopEntry{}
	}
}

// Snapshot deep-copies the loop predictor state.
func (l *LoopPredictor) Snapshot() []loopEntry {
	return append([]loopEntry(nil), l.entries...)
}

// Restore reinstates a snapshot.
func (l *LoopPredictor) Restore(snap []loopEntry) {
	if len(snap) != len(l.entries) {
		panic("bpred: loop predictor snapshot size mismatch")
	}
	copy(l.entries, snap)
}
