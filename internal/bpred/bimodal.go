// Package bpred implements the conditional branch predictors of the
// simulated core: the bimodal base predictor (BIM), a TAGE predictor with
// geometric history lengths, and a loop predictor — composing them into the
// L-TAGE-style CBP of the paper's Table 2 (64 KiB L-TAGE + 5 KiB bimodal).
//
// The split matters to the paper: Ignite restores only the BIM (initialized
// to weakly-taken for every recorded branch), accepting a modest accuracy
// loss versus also restoring TAGE, whose state has no known efficient
// save/restore mechanism.
package bpred

import (
	"math/bits"
	"math/rand/v2"

	"ignite/internal/stats"
)

// Counter states of a 2-bit saturating counter.
const (
	StronglyNotTaken uint8 = 0
	WeaklyNotTaken   uint8 = 1
	WeaklyTaken      uint8 = 2
	StronglyTaken    uint8 = 3
)

// Bimodal is a table of 2-bit saturating counters indexed by branch PC.
type Bimodal struct {
	ctr  []uint8
	mask uint64
	stat BimodalStats
	// restored marks counters initialized by Ignite's replay and not yet
	// trained by a real outcome — the basis of the paper's Figure 9c
	// "induced misprediction" accounting.
	restored []bool
	// version increments on every counter mutation; TAGE's lookup memo uses
	// it to detect that a cached base prediction may have gone stale.
	version uint64
}

// BimodalStats counts predictions made while the bimodal was the effective
// provider; the composed CBP maintains overall accuracy.
type BimodalStats struct {
	Sets stats.Counter // explicit initializations (Ignite restore)
}

// NewBimodal creates a bimodal predictor with the given number of 2-bit
// counters (rounded down to a power of two). The paper's 5 KiB BIM holds
// 20K counters; we model 16K (4 KiB) to keep power-of-two indexing.
func NewBimodal(counters int) *Bimodal {
	if counters < 16 {
		counters = 16
	}
	n := 1 << (bits.Len(uint(counters)) - 1)
	return &Bimodal{ctr: make([]uint8, n), mask: uint64(n - 1), restored: make([]bool, n)}
}

func (b *Bimodal) index(pc uint64) uint64 {
	w := pc >> 2
	return (w ^ w>>13) & b.mask
}

// Predict returns the predicted direction for pc.
func (b *Bimodal) Predict(pc uint64) bool {
	return b.ctr[b.index(pc)] >= WeaklyTaken
}

// Counter returns the raw 2-bit counter for pc.
func (b *Bimodal) Counter(pc uint64) uint8 { return b.ctr[b.index(pc)] }

// Update trains the counter with the actual outcome.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.version++
	b.restored[i] = false
	if taken {
		if b.ctr[i] < StronglyTaken {
			b.ctr[i]++
		}
	} else if b.ctr[i] > StronglyNotTaken {
		b.ctr[i]--
	}
}

// Set initializes the counter for pc — Ignite's replay uses WeaklyTaken
// (Section 4.2); the Figure 11 study also evaluates WeaklyNotTaken.
func (b *Bimodal) Set(pc uint64, val uint8) {
	if val > StronglyTaken {
		val = StronglyTaken
	}
	i := b.index(pc)
	b.version++
	b.ctr[i] = val
	b.restored[i] = true
	b.stat.Sets.Inc()
}

// WasRestored reports whether pc's counter still holds an untrained Ignite
// initialization.
func (b *Bimodal) WasRestored(pc uint64) bool { return b.restored[b.index(pc)] }

// Flush resets every counter to weakly-not-taken.
func (b *Bimodal) Flush() {
	b.version++
	for i := range b.ctr {
		b.ctr[i] = WeaklyNotTaken
		b.restored[i] = false
	}
}

// Randomize overwrites the table with random counter states, the lukewarm
// methodology of the paper's Section 5.3.
func (b *Bimodal) Randomize(seed uint64) {
	b.version++
	rng := rand.New(rand.NewPCG(seed, seed^0xa5a5a5a5deadbeef))
	for i := range b.ctr {
		b.ctr[i] = uint8(rng.UintN(4))
		b.restored[i] = false
	}
}

// Size returns the number of counters.
func (b *Bimodal) Size() int { return len(b.ctr) }

// Stats returns the bimodal statistics collector.
func (b *Bimodal) Stats() *BimodalStats { return &b.stat }

// Snapshot deep-copies the counter table.
func (b *Bimodal) Snapshot() []uint8 {
	cp := make([]uint8, len(b.ctr))
	copy(cp, b.ctr)
	return cp
}

// Restore reinstates a snapshot from an identically sized bimodal.
func (b *Bimodal) Restore(snap []uint8) {
	if len(snap) != len(b.ctr) {
		panic("bpred: bimodal snapshot size mismatch")
	}
	b.version++
	copy(b.ctr, snap)
}
