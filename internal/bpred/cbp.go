package bpred

import "ignite/internal/stats"

// CBP is the conditional branch predictor of the simulated core: an
// L-TAGE-style composition of a bimodal base (BIM), TAGE tagged tables and
// a loop predictor, exposing the selective warm/cold state control the
// paper's sensitivity studies require (Figures 4, 5, 11).
type CBP struct {
	bim  *Bimodal
	tage *TAGE
	loop *LoopPredictor

	stat CBPStats
}

// CBPStats counts prediction outcomes.
type CBPStats struct {
	Predictions stats.Counter
	Mispredicts stats.Counter
}

// NewCBP builds the default Table 2 predictor: 64 KiB L-TAGE over a ~5 KiB
// bimodal with a 64-entry loop predictor.
func NewCBP() *CBP {
	bim := NewBimodal(16 * 1024)
	return &CBP{
		bim:  bim,
		tage: NewTAGE(bim, DefaultTAGEConfig()),
		loop: NewLoopPredictor(64),
	}
}

// Bimodal exposes the BIM component (Ignite's restore target).
func (c *CBP) Bimodal() *Bimodal { return c.bim }

// TAGE exposes the tagged component.
func (c *CBP) TAGE() *TAGE { return c.tage }

// Loop exposes the loop predictor.
func (c *CBP) Loop() *LoopPredictor { return c.loop }

// Stats returns prediction statistics.
func (c *CBP) Stats() *CBPStats { return &c.stat }

// Predict returns the predicted direction for the conditional branch at pc.
func (c *CBP) Predict(pc uint64) bool {
	if pred, conf := c.loop.Predict(pc); conf {
		return pred
	}
	return c.tage.Predict(pc)
}

// PredictAndUpdate performs one full predict-then-train step, returning the
// prediction that the front end acted on. It also maintains accuracy
// statistics.
func (c *CBP) PredictAndUpdate(pc uint64, taken bool) (pred bool) {
	pred = c.Predict(pc)
	c.stat.Predictions.Inc()
	if pred != taken {
		c.stat.Mispredicts.Inc()
	}
	c.loop.Update(pc, taken)
	c.tage.Update(pc, taken) // also trains the bimodal base
	return pred
}

// Update trains every component with the actual outcome without touching
// accuracy statistics — used by the engine, which tracks mispredictions
// against the prediction the front end actually acted on.
func (c *CBP) Update(pc uint64, taken bool) {
	c.loop.Update(pc, taken)
	c.tage.Update(pc, taken) // also trains the bimodal base
}

// FlushTAGE clears the tagged tables, history and loop predictor but leaves
// the BIM intact — the "warm BIM, cold TAGE" configuration.
func (c *CBP) FlushTAGE() {
	c.tage.Flush()
	c.loop.Flush()
}

// FlushAll makes the whole CBP cold: TAGE and loop predictor cleared, BIM
// overwritten with random state (the paper's lukewarm methodology).
func (c *CBP) FlushAll(seed uint64) {
	c.FlushTAGE()
	c.bim.Randomize(seed)
}

// ResetStats clears accuracy counters.
func (c *CBP) ResetStats() { c.stat = CBPStats{} }

// State is a deep copy of the full CBP state.
type State struct {
	bim  []uint8
	tage *TAGESnapshot
	loop []loopEntry
}

// Snapshot deep-copies all predictor state.
func (c *CBP) Snapshot() *State {
	return &State{
		bim:  c.bim.Snapshot(),
		tage: c.tage.Snapshot(),
		loop: c.loop.Snapshot(),
	}
}

// Restore reinstates a full snapshot.
func (c *CBP) Restore(s *State) {
	c.bim.Restore(s.bim)
	c.tage.Restore(s.tage)
	c.loop.Restore(s.loop)
}

// RestoreBimOnly reinstates only the BIM from a snapshot (Figure 5's
// "+BIM warm" configuration).
func (c *CBP) RestoreBimOnly(s *State) {
	c.bim.Restore(s.bim)
}

// RestoreTageOnly reinstates the TAGE and loop state from a snapshot
// (completing Figure 5's "+TAGE warm" configuration).
func (c *CBP) RestoreTageOnly(s *State) {
	c.tage.Restore(s.tage)
	c.loop.Restore(s.loop)
}
