package bpred

import "math/rand/v2"

// TAGE is a tagged-geometric-history-length predictor (Seznec) layered over
// a bimodal base. Six tagged tables with geometrically increasing history
// lengths; standard provider/alternate selection, usefulness counters, and
// allocation-on-mispredict with periodic usefulness aging.
type TAGE struct {
	base *Bimodal

	tables   [][]tageEntry
	histLens []int
	tagBits  uint
	idxBits  uint

	// Global history as a circular bit buffer plus folded registers.
	ghist   []uint8
	ghead   int
	foldIdx []foldedReg
	foldTag []foldedReg
	fold2   []foldedReg // second tag fold (different width) for decorrelation

	useAltOnNA int8 // 4-bit counter choosing alt over weak newly-allocated providers
	allocRNG   rand.Rand
	tick       int // usefulness aging clock

	// memo caches the most recent lookup so the Predict→Update pair a branch
	// commit performs costs one table scan instead of two. A cached result is
	// valid only while none of the state it read has changed: Update, Flush
	// and Restore discard it, and mutations of the bimodal base (which lookup
	// consults for the alternate prediction) are caught by comparing the
	// base's version counter.
	memo     tageLookup
	memoPC   uint64
	memoBimV uint64
	memoOK   bool
}

type tageEntry struct {
	tag uint16
	ctr int8  // 3-bit signed [-4,3]; >=0 predicts taken
	u   uint8 // 2-bit usefulness
}

// foldedReg maintains a cyclic-shift-register fold of the most recent
// histLen history bits down to width bits.
type foldedReg struct {
	val      uint32
	width    uint
	histLen  int
	outShift uint // histLen % width, precomputed at construction
}

func (f *foldedReg) update(newBit, oldBit uint8) {
	f.val = (f.val << 1) | uint32(newBit)
	// Remove the bit that falls out of the history window.
	f.val ^= uint32(oldBit) << f.outShift
	f.val ^= f.val >> f.width
	f.val &= (1 << f.width) - 1
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	HistLens  []int
	TableBits uint // log2 entries per tagged table
	TagBits   uint
}

// DefaultTAGEConfig approximates the paper's 64 KiB L-TAGE budget: six
// 4K-entry tables with 11-bit tags (~48 KiB of tagged state).
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		HistLens:  []int{4, 9, 19, 40, 84, 160},
		TableBits: 12,
		TagBits:   11,
	}
}

// NewTAGE builds a TAGE predictor over the given bimodal base.
func NewTAGE(base *Bimodal, cfg TAGEConfig) *TAGE {
	if len(cfg.HistLens) == 0 {
		cfg = DefaultTAGEConfig()
	}
	maxHist := cfg.HistLens[len(cfg.HistLens)-1]
	t := &TAGE{
		base:     base,
		histLens: append([]int(nil), cfg.HistLens...),
		tagBits:  cfg.TagBits,
		idxBits:  cfg.TableBits,
		ghist:    make([]uint8, maxHist+1),
		allocRNG: *rand.New(rand.NewPCG(0x1905, 0x7a6e5d4c3b2a1908)),
	}
	t.tables = make([][]tageEntry, len(cfg.HistLens))
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<cfg.TableBits)
	}
	t.foldIdx = make([]foldedReg, len(cfg.HistLens))
	t.foldTag = make([]foldedReg, len(cfg.HistLens))
	t.fold2 = make([]foldedReg, len(cfg.HistLens))
	for i, hl := range cfg.HistLens {
		t.foldIdx[i] = foldedReg{width: cfg.TableBits, histLen: hl, outShift: uint(hl) % cfg.TableBits}
		t.foldTag[i] = foldedReg{width: cfg.TagBits, histLen: hl, outShift: uint(hl) % cfg.TagBits}
		t.fold2[i] = foldedReg{width: cfg.TagBits - 1, histLen: hl, outShift: uint(hl) % (cfg.TagBits - 1)}
	}
	return t
}

func (t *TAGE) index(pc uint64, table int) uint32 {
	w := uint32(pc >> 2)
	v := w ^ w>>(t.idxBits) ^ t.foldIdx[table].val ^ uint32(table)*0x9e37
	return v & ((1 << t.idxBits) - 1)
}

func (t *TAGE) tag(pc uint64, table int) uint16 {
	w := uint32(pc >> 2)
	v := w ^ t.foldTag[table].val ^ (t.fold2[table].val << 1)
	return uint16(v & ((1 << t.tagBits) - 1))
}

// lookup finds the provider and alternate predictions.
type tageLookup struct {
	provider int // table index, -1 = base
	altpred  bool
	provPred bool
	provIdx  uint32
	weakNew  bool
}

func (t *TAGE) lookup(pc uint64) tageLookup {
	res := tageLookup{provider: -1}
	alt := -1
	for i := len(t.tables) - 1; i >= 0; i-- {
		idx := t.index(pc, i)
		e := &t.tables[i][idx]
		if e.tag == t.tag(pc, i) && e.u != 0xff {
			if res.provider == -1 {
				res.provider = i
				res.provIdx = idx
				res.provPred = e.ctr >= 0
				res.weakNew = (e.ctr == 0 || e.ctr == -1) && e.u == 0
			} else if alt == -1 {
				alt = i
				res.altpred = e.ctr >= 0
				break
			}
		}
	}
	if res.provider == -1 {
		res.provPred = t.base.Predict(pc)
		res.altpred = res.provPred
	} else if alt == -1 {
		res.altpred = t.base.Predict(pc)
	}
	return res
}

// lookupCached returns lookup(pc), reusing the memoized result when it is
// provably still current (same pc, no TAGE mutation since, same bimodal
// version). useAltOnNA is not part of the key: it only steers selection in
// Predict/Update, never the lookup itself.
func (t *TAGE) lookupCached(pc uint64) tageLookup {
	if t.memoOK && t.memoPC == pc && t.memoBimV == t.base.version {
		return t.memo
	}
	lk := t.lookup(pc)
	t.memo = lk
	t.memoPC = pc
	t.memoBimV = t.base.version
	t.memoOK = true
	return lk
}

// Predict returns the TAGE prediction for pc.
func (t *TAGE) Predict(pc uint64) bool {
	lk := t.lookupCached(pc)
	if lk.provider >= 0 && lk.weakNew && t.useAltOnNA >= 0 {
		return lk.altpred
	}
	return lk.provPred
}

// Update trains TAGE with the actual outcome and advances global history.
// The bimodal base is always trained, keeping BIM state meaningful on its
// own (the property Ignite's BIM-only restore depends on).
func (t *TAGE) Update(pc uint64, taken bool) {
	lk := t.lookupCached(pc)
	t.memoOK = false // everything below mutates state lookups read
	pred := lk.provPred
	if lk.provider >= 0 && lk.weakNew && t.useAltOnNA >= 0 {
		pred = lk.altpred
	}
	mispred := pred != taken

	if lk.provider >= 0 {
		e := &t.tables[lk.provider][lk.provIdx]
		// useAltOnNA bookkeeping for weak new entries.
		if lk.weakNew && lk.provPred != lk.altpred {
			if lk.altpred == taken {
				if t.useAltOnNA < 7 {
					t.useAltOnNA++
				}
			} else if t.useAltOnNA > -8 {
				t.useAltOnNA--
			}
		}
		// Usefulness: provider correct and alt wrong.
		if lk.provPred == taken && lk.altpred != taken && e.u < 3 {
			e.u++
		}
		if taken {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > -4 {
			e.ctr--
		}
	}
	t.base.Update(pc, taken)

	// Allocate on misprediction into a longer-history table.
	if mispred && lk.provider < len(t.tables)-1 {
		t.allocate(pc, taken, lk.provider)
	}

	t.pushHistory(taken)
	t.tick++
	if t.tick >= 256*1024 {
		t.tick = 0
		t.ageUsefulness()
	}
}

func (t *TAGE) allocate(pc uint64, taken bool, provider int) {
	start := provider + 1
	// Randomize start a little to spread allocations (Seznec).
	if start < len(t.tables)-1 && t.allocRNG.IntN(2) == 0 {
		start++
	}
	for i := start; i < len(t.tables); i++ {
		idx := t.index(pc, i)
		e := &t.tables[i][idx]
		if e.u == 0 {
			e.tag = t.tag(pc, i)
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			e.u = 0
			return
		}
	}
	// No free entry: decay usefulness along the path.
	for i := start; i < len(t.tables); i++ {
		idx := t.index(pc, i)
		if t.tables[i][idx].u > 0 {
			t.tables[i][idx].u--
		}
	}
}

func (t *TAGE) ageUsefulness() {
	for _, tab := range t.tables {
		for i := range tab {
			if tab[i].u > 0 {
				tab[i].u--
			}
		}
	}
}

// pushHistory shifts one outcome into the global history and all folds.
func (t *TAGE) pushHistory(taken bool) {
	nb := uint8(0)
	if taken {
		nb = 1
	}
	maxHist := len(t.ghist) - 1
	// oldest bit for each fold: the bit histLen back.
	for i := range t.foldIdx {
		old := t.histBit(t.histLens[i] - 1)
		t.foldIdx[i].update(nb, old)
		t.foldTag[i].update(nb, old)
		t.fold2[i].update(nb, old)
	}
	t.ghead++
	if t.ghead >= maxHist {
		t.ghead = 0
	}
	t.ghist[t.ghead] = nb
}

// histBit returns the history bit `back` positions ago (0 = most recent).
// Callers pass back < len(ghist)-1, so one conditional add replaces the
// modulo reductions.
func (t *TAGE) histBit(back int) uint8 {
	idx := t.ghead - back
	if idx < 0 {
		idx += len(t.ghist) - 1
	}
	return t.ghist[idx]
}

// Flush clears all tagged tables and history — the cold TAGE of a lukewarm
// invocation. The bimodal base is not touched.
func (t *TAGE) Flush() {
	for _, tab := range t.tables {
		for i := range tab {
			tab[i] = tageEntry{}
		}
	}
	for i := range t.ghist {
		t.ghist[i] = 0
	}
	for i := range t.foldIdx {
		t.foldIdx[i].val = 0
		t.foldTag[i].val = 0
		t.fold2[i].val = 0
	}
	t.ghead = 0
	t.useAltOnNA = 0
	t.memoOK = false
}

// TAGESnapshot captures the complete TAGE state.
type TAGESnapshot struct {
	tables     [][]tageEntry
	ghist      []uint8
	ghead      int
	foldIdx    []foldedReg
	foldTag    []foldedReg
	fold2      []foldedReg
	useAltOnNA int8
}

// Snapshot deep-copies the TAGE state (warm-TAGE studies and Ignite+TAGE).
func (t *TAGE) Snapshot() *TAGESnapshot {
	s := &TAGESnapshot{
		ghist:      append([]uint8(nil), t.ghist...),
		ghead:      t.ghead,
		foldIdx:    append([]foldedReg(nil), t.foldIdx...),
		foldTag:    append([]foldedReg(nil), t.foldTag...),
		fold2:      append([]foldedReg(nil), t.fold2...),
		useAltOnNA: t.useAltOnNA,
	}
	s.tables = make([][]tageEntry, len(t.tables))
	for i, tab := range t.tables {
		s.tables[i] = append([]tageEntry(nil), tab...)
	}
	return s
}

// Restore reinstates a snapshot from an identically configured TAGE.
func (t *TAGE) Restore(s *TAGESnapshot) {
	for i := range t.tables {
		copy(t.tables[i], s.tables[i])
	}
	copy(t.ghist, s.ghist)
	t.ghead = s.ghead
	copy(t.foldIdx, s.foldIdx)
	copy(t.foldTag, s.foldTag)
	copy(t.fold2, s.fold2)
	t.useAltOnNA = s.useAltOnNA
	t.memoOK = false
}
