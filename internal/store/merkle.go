package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Merkle construction over store records. Leaves are derived from the
// (record hash, record CRC) pairs the manifest lists, sorted by record
// hash so the root is independent of insertion order; internal nodes hash
// the concatenation of their children. Domain-separation prefixes keep a
// leaf from ever being reinterpretable as an interior node (and vice
// versa), the classic second-preimage hardening.
var (
	leafPrefix = []byte("ignite-store-leaf\x00")
	nodePrefix = []byte("ignite-store-node\x00")
)

// leafHash binds one record's content address to its payload CRC.
func leafHash(recordHash string, crc uint32) [sha256.Size]byte {
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc)
	h := sha256.New()
	h.Write(leafPrefix)
	h.Write([]byte(recordHash))
	h.Write(crcb[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// merkleRoot folds the manifest entries into the root hash (hex). An empty
// record set has the empty-string root, distinct from any real tree.
func merkleRoot(entries []ManifestRecord) string {
	if len(entries) == 0 {
		return ""
	}
	sorted := append([]ManifestRecord(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Hash < sorted[j].Hash })
	level := make([][sha256.Size]byte, len(sorted))
	for i, e := range sorted {
		level[i] = leafHash(e.Hash, e.CRC)
	}
	for len(level) > 1 {
		next := level[:0:cap(level)]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				// Odd node: promoted unchanged, the simplest unambiguous
				// handling (no duplicated sibling to confuse proofs).
				next = append(next, level[i])
				continue
			}
			h := sha256.New()
			h.Write(nodePrefix)
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var out [sha256.Size]byte
			h.Sum(out[:0])
			next = append(next, out)
		}
		level = next
	}
	return hex.EncodeToString(level[0][:])
}
