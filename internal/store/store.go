// Package store is the on-disk content-addressed result store behind warm
// reproduction sweeps: one fsync'd, CRC-guarded JSON record per simulation
// cell, addressed by the SHA-256 of the cell's cache key, plus a Merkle
// manifest over the record CRCs so a result set restored from disk — or
// fetched from a remote worker that shares the directory — is corruption-
// evident end to end, not merely trusted.
//
// Integrity posture, strongest first:
//
//   - every record carries the IEEE CRC-32 of its payload (the same guard
//     the run journal uses); a bit-flipped or torn record fails Get with a
//     *CorruptionError instead of being served;
//   - a sealed store additionally has MANIFEST.json: the (hash, CRC) pairs
//     of every record under a Merkle root. Open recomputes the root; any
//     bit flip in the manifest — a leaf, the root, the structure — marks
//     the whole store corrupt, and Get refuses to serve anything until the
//     store is resealed (a wholesale-rewritten record, whose self-CRC is
//     consistent by construction, is still caught by its manifest leaf);
//   - records written after the last Seal are served on their self-CRC
//     alone, so concurrent workers can keep appending to a sealed store;
//     the next Seal folds them in.
//
// Corruption is always a recoverable miss for exactly the damaged cell:
// callers count the detection and recompute, and Put replaces the bad
// record in place.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"ignite/internal/obs"
)

// Format constants. Records and the manifest are versioned the same way
// the run journal and result documents are: unknown kinds or schema
// versions fail loudly.
const (
	recordKind    = "ignite.cell-record"
	manifestKind  = "ignite.store-manifest"
	schemaVersion = 1

	objectsDir   = "objects"
	manifestName = "MANIFEST.json"
)

// ErrNotFound reports a Get for a key with no stored record.
var ErrNotFound = errors.New("store: record not found")

// CorruptionError reports a record or manifest that failed integrity
// verification. It is deliberately loud — callers treat it as a miss and
// recompute, but never serve the damaged bytes.
type CorruptionError struct {
	Path   string // file that failed verification
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("store: %s: %s", e.Path, e.Reason)
}

// record is the on-disk form of one stored cell result. CRC is the IEEE
// CRC-32 of the raw Cell payload; Key is stored verbatim so a (vanishingly
// unlikely) hash collision or a misfiled record is detected by equality,
// not trusted by address.
type record struct {
	Kind          string          `json:"kind"`
	SchemaVersion int             `json:"schemaVersion"`
	Key           string          `json:"key"`
	CRC           uint32          `json:"crc"`
	Cell          json.RawMessage `json:"cell"`
}

// ManifestRecord is one manifest leaf: a record's content address and its
// payload CRC.
type ManifestRecord struct {
	Hash string `json:"hash"`
	CRC  uint32 `json:"crc"`
}

// manifest is MANIFEST.json: every sealed record under a Merkle root.
type manifest struct {
	Kind          string           `json:"kind"`
	SchemaVersion int              `json:"schemaVersion"`
	Root          string           `json:"root"`
	Records       []ManifestRecord `json:"records"`
}

// Store is an open content-addressed result store rooted at a directory.
// Safe for concurrent use within a process; cross-process safety comes
// from atomic (write-temp, fsync, rename) record writes and idempotent
// content — two workers racing to Put the same key write identical bytes.
type Store struct {
	dir string

	mu sync.Mutex
	// leaves is the verified manifest index (nil when the store has never
	// been sealed). A valid leaf pins the record's expected CRC.
	leaves map[string]uint32
	// sealErr is non-nil when MANIFEST.json exists but failed
	// verification: the store serves nothing until resealed.
	sealErr *CorruptionError
}

// Open opens (creating if needed) the store rooted at dir and verifies the
// manifest if one exists. A corrupt manifest does not fail Open — the
// condition is per-read recoverable — but every Get reports it until Seal
// rewrites the manifest; ManifestErr exposes it for CLIs to surface.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir}
	s.loadManifest()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ManifestErr reports the manifest's verification failure, if any. A nil
// return means the manifest is absent or valid.
func (s *Store) ManifestErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealErr != nil {
		return s.sealErr
	}
	return nil
}

// Sealed reports whether a verified manifest is loaded and how many
// records it covers.
func (s *Store) Sealed() (bool, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaves != nil, len(s.leaves)
}

// KeyHash returns the content address of a cell key: the hex SHA-256 the
// key's record is filed under.
func KeyHash(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// recordPath shards records into 256 subdirectories by hash prefix so a
// full-reproduction store does not pile thousands of files into one dir.
func (s *Store) recordPath(hash string) string {
	return filepath.Join(s.dir, objectsDir, hash[:2], hash+".json")
}

// RecordPath returns the on-disk path a cell key's record is filed under
// (whether or not the record exists) — the key→path mapping tooling and
// corruption tests need.
func (s *Store) RecordPath(key string) string { return s.recordPath(KeyHash(key)) }

// ManifestPath returns the path of the store's Merkle manifest.
func (s *Store) ManifestPath() string { return filepath.Join(s.dir, manifestName) }

// Get returns the stored payload for key. ErrNotFound means no record;
// *CorruptionError means a record (or the manifest) exists but failed
// integrity verification — the caller must recompute, never trust.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	sealErr := s.sealErr
	var leafCRC uint32
	var sealed bool
	if s.leaves != nil {
		leafCRC, sealed = s.leaves[KeyHash(key)]
	}
	s.mu.Unlock()
	if sealErr != nil {
		// Manifest corrupt: integrity of the whole set is unknown, so
		// nothing is served — detected, recomputed, never silent.
		return nil, sealErr
	}
	path := s.recordPath(KeyHash(key))
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: get: %w", err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, &CorruptionError{Path: path, Reason: fmt.Sprintf("unparseable record: %v", err)}
	}
	if rec.Kind != recordKind || rec.SchemaVersion != schemaVersion {
		return nil, &CorruptionError{Path: path,
			Reason: fmt.Sprintf("record is %q v%d, want %q v%d", rec.Kind, rec.SchemaVersion, recordKind, schemaVersion)}
	}
	if rec.Key != key {
		return nil, &CorruptionError{Path: path, Reason: "record key does not match its content address"}
	}
	if crc32.ChecksumIEEE(rec.Cell) != rec.CRC {
		return nil, &CorruptionError{Path: path, Reason: "payload CRC mismatch"}
	}
	if sealed && leafCRC != rec.CRC {
		return nil, &CorruptionError{Path: path, Reason: "record CRC does not match its manifest leaf"}
	}
	return rec.Cell, nil
}

// Put stores payload under key, fsynced and atomic (write-temp, sync,
// rename). Re-putting an identical record is a cheap no-op; a differing or
// damaged existing record is replaced. Put never touches the manifest —
// new records ride on their self-CRC until the next Seal.
func (s *Store) Put(key string, payload []byte) error {
	if !json.Valid(payload) {
		return fmt.Errorf("store: put %q: payload is not valid JSON", key)
	}
	hash := KeyHash(key)
	crc := crc32.ChecksumIEEE(payload)
	path := s.recordPath(hash)
	if old, err := os.ReadFile(path); err == nil {
		var rec record
		if json.Unmarshal(old, &rec) == nil && rec.Key == key && rec.CRC == crc &&
			crc32.ChecksumIEEE(rec.Cell) == crc {
			return nil
		}
	}
	data, err := json.Marshal(record{
		Kind:          recordKind,
		SchemaVersion: schemaVersion,
		Key:           key,
		CRC:           crc,
		Cell:          json.RawMessage(payload),
	})
	if err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := obs.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	return nil
}

// Seal scans every record on disk, drops unverifiable ones from coverage
// (their self-CRC already damns them on Get), and atomically rewrites
// MANIFEST.json with a fresh Merkle root. It returns the root and the
// number of records sealed. Sealing also clears a previously detected
// manifest corruption — the new manifest supersedes the damaged one.
func (s *Store) Seal() (root string, n int, err error) {
	entries, err := s.scan()
	if err != nil {
		return "", 0, err
	}
	root = merkleRoot(entries)
	data, err := json.MarshalIndent(manifest{
		Kind:          manifestKind,
		SchemaVersion: schemaVersion,
		Root:          root,
		Records:       entries,
	}, "", "  ")
	if err != nil {
		return "", 0, fmt.Errorf("store: seal: %w", err)
	}
	if err := obs.WriteFileAtomic(filepath.Join(s.dir, manifestName), append(data, '\n'), 0o644); err != nil {
		return "", 0, fmt.Errorf("store: seal: %w", err)
	}
	leaves := make(map[string]uint32, len(entries))
	for _, e := range entries {
		leaves[e.Hash] = e.CRC
	}
	s.mu.Lock()
	s.leaves = leaves
	s.sealErr = nil
	s.mu.Unlock()
	return root, len(entries), nil
}

// scan walks the objects tree and returns a manifest entry per record that
// passes self-verification, sorted by hash.
func (s *Store) scan() ([]ManifestRecord, error) {
	var entries []ManifestRecord
	base := filepath.Join(s.dir, objectsDir)
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var rec record
		if json.Unmarshal(data, &rec) != nil ||
			rec.Kind != recordKind || rec.SchemaVersion != schemaVersion ||
			crc32.ChecksumIEEE(rec.Cell) != rec.CRC ||
			KeyHash(rec.Key)+".json" != filepath.Base(path) {
			return nil // unverifiable: excluded from the sealed set
		}
		entries = append(entries, ManifestRecord{Hash: KeyHash(rec.Key), CRC: rec.CRC})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	// WalkDir visits lexically, and hashes name the files, so entries are
	// already sorted by hash; keep the invariant explicit for merkleRoot.
	return entries, nil
}

// loadManifest reads and verifies MANIFEST.json, populating the leaf index
// or recording the corruption.
func (s *Store) loadManifest() {
	path := filepath.Join(s.dir, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return // never sealed: records serve on self-CRC
	}
	if err != nil {
		s.sealErr = &CorruptionError{Path: path, Reason: err.Error()}
		return
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		s.sealErr = &CorruptionError{Path: path, Reason: fmt.Sprintf("unparseable manifest: %v", err)}
		return
	}
	if m.Kind != manifestKind || m.SchemaVersion != schemaVersion {
		s.sealErr = &CorruptionError{Path: path,
			Reason: fmt.Sprintf("manifest is %q v%d, want %q v%d", m.Kind, m.SchemaVersion, manifestKind, schemaVersion)}
		return
	}
	if got := merkleRoot(m.Records); got != m.Root {
		s.sealErr = &CorruptionError{Path: path,
			Reason: fmt.Sprintf("Merkle root mismatch: manifest says %.16s…, records hash to %.16s…", m.Root, got)}
		return
	}
	leaves := make(map[string]uint32, len(m.Records))
	for _, e := range m.Records {
		leaves[e.Hash] = e.CRC
	}
	s.leaves = leaves
}
