package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func put(t *testing.T, s *Store, key, payload string) {
	t.Helper()
	if err := s.Put(key, []byte(payload)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "wl|kind=ignite|mode=0|tweaks"
	put(t, s, key, `{"cpi":1.5}`)
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"cpi":1.5}` {
		t.Fatalf("Get = %s", got)
	}
	if _, err := s.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	// Idempotent re-put, then a replacing put.
	put(t, s, key, `{"cpi":1.5}`)
	put(t, s, key, `{"cpi":2.5}`)
	if got, _ := s.Get(key); string(got) != `{"cpi":2.5}` {
		t.Fatalf("after re-put Get = %s", got)
	}
	if err := s.Put(key, []byte("not json")); err == nil {
		t.Fatal("Put accepted invalid JSON")
	}
}

// TestStoreSurvivesReopen proves persistence across Open calls — the whole
// point of the store versus the in-process cell cache.
func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir)
	put(t, s1, "k", `{"v":1}`)
	if _, _, err := s1.Seal(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sealed, n := s2.Sealed(); !sealed || n != 1 {
		t.Fatalf("Sealed() = %v, %d; want true, 1", sealed, n)
	}
	got, err := s2.Get("k")
	if err != nil || string(got) != `{"v":1}` {
		t.Fatalf("Get after reopen = %s, %v", got, err)
	}
}

// flipBit flips one bit somewhere inside the file's JSON string content,
// avoiding structural characters so the mutation models silent media
// corruption rather than a truncation (which is separately detected).
func flipBit(t *testing.T, path string, needle string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(string(data), needle)
	if i < 0 {
		t.Fatalf("needle %q not found in %s", needle, path)
	}
	data[i+len(needle)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecordCorruptionDetected flips one bit in a stored record: Get must
// fail with *CorruptionError — never serve the damaged payload — while
// sibling records keep serving.
func TestRecordCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	put(t, s, "good", `{"v":"intact-payload"}`)
	put(t, s, "bad", `{"v":"doomed-payload"}`)

	flipBit(t, s.recordPath(KeyHash("bad")), "doomed-payload")

	var ce *CorruptionError
	if _, err := s.Get("bad"); !errors.As(err, &ce) {
		t.Fatalf("Get(bad) = %v, want *CorruptionError", err)
	}
	if got, err := s.Get("good"); err != nil || string(got) != `{"v":"intact-payload"}` {
		t.Fatalf("sibling record damaged by detection: %s, %v", got, err)
	}

	// Recompute path: Put replaces the damaged record in place.
	put(t, s, "bad", `{"v":"doomed-payload"}`)
	if got, err := s.Get("bad"); err != nil || string(got) != `{"v":"doomed-payload"}` {
		t.Fatalf("repaired record: %s, %v", got, err)
	}
}

// TestManifestLeafPinsRecord rewrites a record wholesale (self-consistent
// CRC) after sealing: the manifest leaf must still catch it.
func TestManifestLeafPinsRecord(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	put(t, s, "k", `{"v":1}`)
	if _, _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	// A wholesale rewrite through Put produces a record whose self-CRC is
	// valid — only the sealed manifest can tell it changed.
	put(t, s, "k", `{"v":"tampered"}`)

	s2, _ := Open(dir)
	var ce *CorruptionError
	if _, err := s2.Get("k"); !errors.As(err, &ce) {
		t.Fatalf("tampered-but-self-consistent record served: %v", err)
	}
	if !strings.Contains(ce.Reason, "manifest leaf") {
		t.Fatalf("wrong detection path: %v", ce)
	}
}

// TestManifestCorruptionDetected flips one bit in MANIFEST.json: the store
// must refuse to serve anything (integrity unknown) until resealed.
func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	put(t, s, "a", `{"v":1}`)
	put(t, s, "b", `{"v":2}`)
	if _, _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	flipBit(t, filepath.Join(dir, manifestName), KeyHash("a"))

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ManifestErr() == nil {
		t.Fatal("corrupt manifest not detected at open")
	}
	var ce *CorruptionError
	if _, err := s2.Get("a"); !errors.As(err, &ce) {
		t.Fatalf("Get under corrupt manifest = %v, want *CorruptionError", err)
	}
	if _, err := s2.Get("b"); !errors.As(err, &ce) {
		t.Fatalf("Get(b) under corrupt manifest = %v, want *CorruptionError", err)
	}

	// Reseal supersedes the damaged manifest and restores service.
	if _, n, err := s2.Seal(); err != nil || n != 2 {
		t.Fatalf("reseal: n=%d err=%v", n, err)
	}
	if s2.ManifestErr() != nil {
		t.Fatal("reseal did not clear the manifest error")
	}
	if got, err := s2.Get("a"); err != nil || string(got) != `{"v":1}` {
		t.Fatalf("Get after reseal = %s, %v", got, err)
	}
}

// TestMerkleRootProperties pins the root's algebra: order-independence,
// sensitivity to every leaf, and the empty/singleton edges.
func TestMerkleRootProperties(t *testing.T) {
	if merkleRoot(nil) != "" {
		t.Error("empty set should have the empty root")
	}
	a := ManifestRecord{Hash: KeyHash("a"), CRC: 1}
	b := ManifestRecord{Hash: KeyHash("b"), CRC: 2}
	c := ManifestRecord{Hash: KeyHash("c"), CRC: 3}
	if merkleRoot([]ManifestRecord{a, b, c}) != merkleRoot([]ManifestRecord{c, a, b}) {
		t.Error("root depends on insertion order")
	}
	r1 := merkleRoot([]ManifestRecord{a, b, c})
	b.CRC++
	if merkleRoot([]ManifestRecord{a, b, c}) == r1 {
		t.Error("root insensitive to a leaf CRC change")
	}
	if merkleRoot([]ManifestRecord{a}) == "" || merkleRoot([]ManifestRecord{a}) == r1 {
		t.Error("singleton root degenerate")
	}
	// Odd/even widths must both be well-defined and distinct.
	var many []ManifestRecord
	for i := 0; i < 5; i++ {
		many = append(many, ManifestRecord{Hash: KeyHash(fmt.Sprintf("k%d", i)), CRC: uint32(i)})
	}
	if merkleRoot(many) == merkleRoot(many[:4]) {
		t.Error("5-leaf root equals 4-leaf root")
	}
}

// TestSealSkipsUnverifiableRecords: a damaged record is excluded from the
// sealed set but remains detected (by self-CRC) on Get.
func TestSealSkipsUnverifiableRecords(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	put(t, s, "ok", `{"v":"fine-here"}`)
	put(t, s, "bad", `{"v":"broken-rec"}`)
	flipBit(t, s.recordPath(KeyHash("bad")), "broken-rec")
	if _, n, err := s.Seal(); err != nil || n != 1 {
		t.Fatalf("Seal: n=%d err=%v, want 1 sealed record", n, err)
	}
	var ce *CorruptionError
	if _, err := s.Get("bad"); !errors.As(err, &ce) {
		t.Fatalf("damaged record served after seal: %v", err)
	}
}
