package faults

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Network fault injection: the same kind@scope rule grammar and trip
// bookkeeping as cell faults, fired at the process boundary instead of the
// cell site. A network rule's site is
//
//	kind@net/<host>/<endpoint>
//
// where <host> is the remote host:port (client side) or the listener's
// local address (server side) and <endpoint> is the last path segment of
// the request URL ("task", "health") — or "accept" for listener-level
// faults. Each component accepts the usual "*" wildcard, and trips/delay/
// rate options apply unchanged, so
//
//	IGNITE_FAULTS='conn-reset@net/*/task:trips=2;slow-net@net/*/*:delay=150ms'
//
// resets the first two task calls per worker and slows every request.

// NetExperiment is the Site.Experiment value of every network fault site,
// keeping net rules disjoint from cell rules under one grammar.
const NetExperiment = "net"

// netKinds are the kinds Transport and WrapListener fire.
var netKinds = []Kind{KindConnReset, KindSlowNet, KindTruncatedBody, KindGarbageJSON}

// NetSite derives the injection site of an outbound HTTP request.
func NetSite(req *http.Request) Site {
	endpoint := req.URL.Path
	if i := strings.LastIndexByte(endpoint, '/'); i >= 0 {
		endpoint = endpoint[i+1:]
	}
	return Site{Experiment: NetExperiment, Workload: req.URL.Host, Config: endpoint}
}

// HasNetRules reports whether the plan arms any network fault kind — CLIs
// use it to decide whether wrapping transports/listeners is worth it.
// Nil-safe.
func (p *Plan) HasNetRules() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.rules {
		for _, k := range netKinds {
			if r.kind == k {
				return true
			}
		}
	}
	return false
}

// FireNet consumes the armed network fault (if any) for the site, returning
// its kind and delay. Nil receiver and no-match return ok=false, so callers
// can fire unconditionally.
func (p *Plan) FireNet(s Site) (kind Kind, delay time.Duration, ok bool) {
	if p == nil {
		return "", 0, false
	}
	r, ok := p.fire(s, netKinds...)
	if !ok {
		return "", 0, false
	}
	return r.kind, r.delay, true
}

// connResetError is the injected peer-reset failure. It reports itself as a
// net.Error (non-timeout), matching what a real RST surfaces through
// net/http.
type connResetError struct{ site Site }

func (e *connResetError) Error() string {
	return fmt.Sprintf("faults: injected connection reset at %s", e.site)
}
func (e *connResetError) Timeout() bool   { return false }
func (e *connResetError) Temporary() bool { return true }

// Transport wraps an http.RoundTripper with deterministic network fault
// injection. A nil Plan (or one without net rules) passes every request
// through untouched, so the wrapper is safe to install unconditionally.
type Transport struct {
	Base http.RoundTripper
	Plan *Plan
}

// NewTransport wraps base (nil = http.DefaultTransport) with plan's network
// faults. Returns base unchanged when the plan arms no net rules.
func NewTransport(plan *Plan, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if !plan.HasNetRules() {
		return base
	}
	return &Transport{Base: base, Plan: plan}
}

// RoundTrip fires at most one armed network fault for the request's site:
// conn-reset fails before any bytes move, slow-net delays then forwards,
// truncated-body and garbage-json forward the request and damage the
// response body on the way back.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	s := NetSite(req)
	kind, delay, ok := t.Plan.FireNet(s)
	if !ok {
		return t.Base.RoundTrip(req)
	}
	switch kind {
	case KindConnReset:
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: &connResetError{site: s}}
	case KindSlowNet:
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.Base.RoundTrip(req)
	case KindTruncatedBody:
		resp, err := t.Base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: truncateAfter(resp.ContentLength)}
		return resp, nil
	case KindGarbageJSON:
		resp, err := t.Base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		garbage := []byte(`{"faults":"injected garbage body at ` + s.String() + `"`)
		resp.Body = io.NopCloser(bytes.NewReader(garbage))
		resp.ContentLength = int64(len(garbage))
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return t.Base.RoundTrip(req)
}

// truncateAfter picks how many body bytes to deliver before the injected
// cut: half the declared length, or a small fixed prefix when the length is
// unknown — enough that the client has committed to reading the body.
func truncateAfter(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 64
}

// truncatedBody delivers the first remaining bytes of rc, then fails with
// io.ErrUnexpectedEOF — the shape of a connection dropped mid-response.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The upstream body ended before the cut — truncation still must
		// look like damage, not a clean end.
		err = io.ErrUnexpectedEOF
	}
	if err == nil && b.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// faultyListener injects faults as connections are accepted.
type faultyListener struct {
	net.Listener
	plan *Plan
}

// WrapListener wraps ln with plan's listener-level network faults: a
// conn-reset rule for site net/<local-addr>/accept closes the accepted
// connection immediately (the peer sees a reset), slow-net delays the
// accept. Plans without net rules return ln unchanged; nil-safe.
func WrapListener(plan *Plan, ln net.Listener) net.Listener {
	if !plan.HasNetRules() {
		return ln
	}
	return &faultyListener{Listener: ln, plan: plan}
}

func (l *faultyListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		s := Site{Experiment: NetExperiment, Workload: l.Addr().String(), Config: "accept"}
		kind, delay, ok := l.plan.FireNet(s)
		if !ok {
			return c, nil
		}
		switch kind {
		case KindConnReset:
			if tc, okc := c.(*net.TCPConn); okc {
				tc.SetLinger(0) // RST, not FIN
			}
			c.Close()
			continue // the injected reset eats this conn; keep serving
		case KindSlowNet:
			time.Sleep(delay)
			return c, nil
		default:
			// Body-level kinds are client-side; at the listener they
			// degrade to pass-through.
			return c, nil
		}
	}
}
