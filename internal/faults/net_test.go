package faults

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true,"pad":"` + strings.Repeat("x", 256) + `"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func clientWith(plan *Plan) *http.Client {
	return &http.Client{Transport: NewTransport(plan, nil)}
}

// TestTransportConnReset pins the trip discipline: the armed reset fires
// exactly trips times per site, then the wire heals.
func TestTransportConnReset(t *testing.T) {
	srv := testServer(t)
	plan := New(1)
	if err := plan.Add("conn-reset@net/*/task:trips=2"); err != nil {
		t.Fatal(err)
	}
	client := clientWith(plan)
	for i := 0; i < 2; i++ {
		if _, err := client.Get(srv.URL + "/v1/task"); err == nil {
			t.Fatalf("request %d: want injected reset, got success", i)
		}
	}
	resp, err := client.Get(srv.URL + "/v1/task")
	if err != nil {
		t.Fatalf("post-trips request: %v", err)
	}
	resp.Body.Close()
	// A health request is a different site: its rule pattern did not match,
	// so it never faulted.
	if _, err := client.Get(srv.URL + "/v1/health"); err != nil {
		t.Fatalf("unmatched endpoint faulted: %v", err)
	}
}

// TestTransportSlowNet: the delay is observed, then the response arrives
// intact.
func TestTransportSlowNet(t *testing.T) {
	srv := testServer(t)
	plan := New(1)
	if err := plan.Add("slow-net@net/*/*:delay=120ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := clientWith(plan).Get(srv.URL + "/v1/task")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Errorf("request took %v, want >= the injected 120ms delay", d)
	}
	var out struct{ OK bool `json:"ok"` }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || !out.OK {
		t.Errorf("slowed response damaged: ok=%v err=%v", out.OK, err)
	}
}

// TestTransportTruncatedBody: the read fails mid-body with unexpected EOF.
func TestTransportTruncatedBody(t *testing.T) {
	srv := testServer(t)
	plan := New(1)
	if err := plan.Add("truncated-body@net/*/*"); err != nil {
		t.Fatal(err)
	}
	resp, err := clientWith(plan).Get(srv.URL + "/v1/task")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("read error = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestTransportGarbageJSON: the body arrives but no longer decodes.
func TestTransportGarbageJSON(t *testing.T) {
	srv := testServer(t)
	plan := New(1)
	if err := plan.Add("garbage-json@net/*/*"); err != nil {
		t.Fatal(err)
	}
	resp, err := clientWith(plan).Get(srv.URL + "/v1/task")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if json.Unmarshal(data, &v) == nil {
		t.Errorf("garbage body %q still decodes", data)
	}
}

// TestNewTransportPassThrough: plans without net rules (and nil plans) do
// not wrap.
func TestNewTransportPassThrough(t *testing.T) {
	if rt := NewTransport(nil, http.DefaultTransport); rt != http.DefaultTransport {
		t.Error("nil plan wrapped the transport")
	}
	plan := New(1)
	if err := plan.Add("transient@*/*/*"); err != nil {
		t.Fatal(err)
	}
	if rt := NewTransport(plan, http.DefaultTransport); rt != http.DefaultTransport {
		t.Error("cell-only plan wrapped the transport")
	}
	if plan.HasNetRules() {
		t.Error("cell-only plan reports net rules")
	}
}

// TestWrapListenerConnReset: the first accepted connection is reset, the
// next one serves.
func TestWrapListenerConnReset(t *testing.T) {
	plan := New(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Add("conn-reset@net/" + ln.Addr().String() + "/accept:trips=1"); err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})}
	go srv.Serve(WrapListener(plan, ln))
	defer srv.Close()

	url := "http://" + ln.Addr().String() + "/"
	// No keep-alive reuse: each request must open a fresh conn so the
	// listener-level fault is actually exercised.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	if _, err := client.Get(url); err == nil {
		t.Fatal("first connection survived the injected reset")
	}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("second connection: %v", err)
	}
	resp.Body.Close()
}
