package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestParseAndFire(t *testing.T) {
	p, err := Parse("transient@fig1/A/nl:trips=2; panic@*/B/*; slow@fig2/C/nl:delay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Transient fires exactly trips times, then clears.
	site := Site{"fig1", "A", "nl"}
	for trip := 1; trip <= 2; trip++ {
		err := p.Fire(ctx, site)
		var te *TransientError
		if !errors.As(err, &te) || te.Trip != trip {
			t.Fatalf("trip %d: got %v", trip, err)
		}
		if !IsTransient(err) || !IsTransient(fmt.Errorf("wrap: %w", err)) {
			t.Fatalf("trip %d not classified transient", trip)
		}
	}
	if err := p.Fire(ctx, site); err != nil {
		t.Fatalf("fault did not clear after trips: %v", err)
	}

	// Wildcards match any experiment and config; panics really panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic rule did not fire")
			}
		}()
		_ = p.Fire(ctx, Site{"anything", "B", "ignite"})
	}()

	// Slow faults honor cancellation.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if err := p.Fire(canceled, Site{"fig2", "C", "nl"}); err == nil {
		t.Error("canceled slow fault returned nil")
	}

	// Non-matching sites are untouched.
	if err := p.Fire(ctx, Site{"fig9", "Z", "nl"}); err != nil {
		t.Errorf("unmatched site fired: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "nonsense", "explode@a/b/c", "panic@a/b", "panic@a/b/c:trips=0",
		"slow@a/b/c:delay=-1s", "transient@a/b/c:rate=2", "panic@a/b/c:wat=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestFromEnvSpec(t *testing.T) {
	if p, err := FromEnvSpec(""); p != nil || err != nil {
		t.Errorf("empty spec: got %v, %v", p, err)
	}
	p, err := FromEnvSpec("smoke")
	if err != nil || p == nil {
		t.Fatalf("smoke: %v", err)
	}
	if len(p.rules) != 3 {
		t.Errorf("smoke plan has %d rules, want 3", len(p.rules))
	}
	if _, err := FromEnvSpec("bogus@@"); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestRateSelectionDeterministic(t *testing.T) {
	// The same seed must select the same sites, a different seed a
	// (generally) different subset, and selection must be order-independent.
	pick := func(seed uint64) map[string]bool {
		p := New(seed)
		if err := p.Add("transient@*/*/*:rate=0.5,trips=1"); err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for i := 0; i < 64; i++ {
			s := Site{"fig1", fmt.Sprintf("w%d", i), "nl"}
			out[s.String()] = p.Fire(context.Background(), s) != nil
		}
		return out
	}
	a, b := pick(7), pick(7)
	hits := 0
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("seed 7 selection not deterministic at %s", k)
		}
		if v {
			hits++
		}
	}
	if hits == 0 || hits == 64 {
		t.Errorf("rate=0.5 selected %d/64 sites; gate looks broken", hits)
	}
	c := pick(8)
	same := 0
	for k, v := range a {
		if c[k] == v {
			same++
		}
	}
	if same == 64 {
		t.Error("seed change did not alter selection")
	}
}

func TestCorruptRecord(t *testing.T) {
	p, err := Parse("corrupt@fig1/A/nl")
	if err != nil {
		t.Fatal(err)
	}
	s := Site{"fig1", "A", "nl"}
	if !p.CorruptRecord(s) {
		t.Error("corrupt rule did not fire")
	}
	if p.CorruptRecord(s) {
		t.Error("corrupt rule fired past its trip count")
	}
	// Corrupt rules must not leak into Fire.
	p2, _ := Parse("corrupt@fig1/A/nl")
	if err := p2.Fire(context.Background(), s); err != nil {
		t.Errorf("Fire consumed a corrupt rule: %v", err)
	}
	if !p2.CorruptRecord(s) {
		t.Error("corrupt rule consumed by Fire")
	}
}

func TestNilPlanIsSafe(t *testing.T) {
	var p *Plan
	if err := p.Fire(context.Background(), Site{}); err != nil {
		t.Error(err)
	}
	if p.CorruptRecord(Site{}) {
		t.Error("nil plan corrupted")
	}
}

func TestSlowFaultDelay(t *testing.T) {
	p, err := Parse("slow@f/w/c:delay=10ms")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Fire(context.Background(), Site{"f", "w", "c"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("slow fault returned after %v, want >= 10ms", d)
	}
}
