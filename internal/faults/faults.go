// Package faults is a deterministic, seedable fault-injection registry for
// the experiment pipeline. A Plan holds rules keyed by (experiment ID ×
// workload × config); the runner fires the plan at well-defined sites and
// the injected faults — panics, transient errors, slow cells, corrupted
// persisted records — exercise exactly the recovery paths the scheduler
// claims to have: per-cell isolation, retry with backoff, per-cell
// deadlines, and journal-corruption detection.
//
// Plans come from three places: programmatically (New/Add), from the
// IGNITE_FAULTS environment variable (FromEnv), or the canonical Smoke plan
// the chaos suite and CI use. Injection is deterministic: a rule either
// matches a site or it does not, probabilistic rules gate on a seeded hash
// of the site (never on math/rand), and per-site trip counts make "fail
// once, then succeed" reproducible — the property the retry-determinism
// tests rely on.
package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind names an injectable fault class.
type Kind string

const (
	// KindPanic panics at the injection site — exercises per-cell
	// recover() isolation.
	KindPanic Kind = "panic"
	// KindTransient returns an error classified transient — exercises
	// retry with backoff. The fault clears after its trip count, so the
	// retried attempt succeeds.
	KindTransient Kind = "transient"
	// KindSlow delays the cell (honoring context cancellation) —
	// exercises per-cell deadlines.
	KindSlow Kind = "slow"
	// KindCorrupt corrupts the cell's persisted journal record —
	// exercises crash-safe resume's corruption detection.
	KindCorrupt Kind = "corrupt"

	// Network fault kinds fire at the transport boundary (see Transport and
	// WrapListener in net.go), never at cell sites: their rule sites are
	// net/<host>/<endpoint> instead of exp/workload/config.

	// KindConnReset fails the connection as if the peer reset it —
	// exercises the coordinator's failover and the breaker's quarantine.
	KindConnReset Kind = "conn-reset"
	// KindSlowNet delays the request by the rule's delay before letting it
	// through — exercises hedged dispatch and probe timeouts.
	KindSlowNet Kind = "slow-net"
	// KindTruncatedBody cuts the response body short mid-stream —
	// exercises the coordinator's read-error retry path.
	KindTruncatedBody Kind = "truncated-body"
	// KindGarbageJSON replaces the response body with non-JSON bytes —
	// exercises the decode/CRC rejection path.
	KindGarbageJSON Kind = "garbage-json"
)

// Site identifies one injection point: a (workload, config) cell inside an
// experiment. Empty fields are legitimate (a single-cell sim.Setup run has
// no experiment); rules match them with "" or the "*" wildcard.
type Site struct {
	Experiment string
	Workload   string
	Config     string
}

func (s Site) String() string {
	return s.Experiment + "/" + s.Workload + "/" + s.Config
}

// TransientError is the injected transient failure. The scheduler's retry
// policy recognizes it through the Transient method.
type TransientError struct {
	Site Site
	Trip int // which firing this was (1-based)
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faults: injected transient error at %s (trip %d)", e.Site, e.Trip)
}

// Transient marks the error retryable.
func (e *TransientError) Transient() bool { return true }

// PanicError wraps a recovered panic value as an error, preserving the
// stack of the panicking goroutine for the failure report.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// IsTransient reports whether err is classified retryable: any error in the
// chain exposing Transient() bool that returns true.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// rule is one armed fault. Pattern fields use "*" as a wildcard.
type rule struct {
	kind  Kind
	exp   string
	wl    string
	cfg   string
	trips int           // how many times the rule fires per site (default 1)
	delay time.Duration // KindSlow only
	rate  float64       // 0/1 = always when matched; else seeded-hash gate
}

func (r rule) matches(s Site) bool {
	match := func(pat, v string) bool { return pat == "*" || pat == v }
	return match(r.exp, s.Experiment) && match(r.wl, s.Workload) && match(r.cfg, s.Config)
}

// Plan is a set of armed fault rules plus the per-site trip bookkeeping.
// It is safe for concurrent use: cells fire the plan from scheduler worker
// goroutines.
type Plan struct {
	mu    sync.Mutex
	seed  uint64
	rules []rule
	fired map[string]int // site+kind → times fired
}

// New returns an empty plan with the given selection seed (used only by
// rate-gated rules; exact-site rules are seed-independent).
func New(seed uint64) *Plan {
	return &Plan{seed: seed, fired: make(map[string]int)}
}

// Add arms one fault from its spec string:
//
//	kind@experiment/workload/config[:key=val,...]
//
// where kind is panic|transient|slow|corrupt, each site component may be
// "*", and the options are trips=N (default 1), delay=DUR (slow faults,
// default 250ms), and rate=F in (0,1] (seeded-hash site selection).
func (p *Plan) Add(spec string) error {
	// Options are cut at the last ':' whose tail is key=val shaped — not the
	// first — because network sites legitimately contain colons
	// (conn-reset@net/127.0.0.1:9000/accept:trips=1).
	head, optStr, hasOpts := spec, "", false
	if i := strings.LastIndexByte(spec, ':'); i >= 0 && strings.Contains(spec[i+1:], "=") {
		head, optStr, hasOpts = spec[:i], spec[i+1:], true
	}
	kindStr, siteStr, ok := strings.Cut(head, "@")
	if !ok {
		return fmt.Errorf("faults: rule %q: want kind@exp/workload/config", spec)
	}
	r := rule{kind: Kind(kindStr), trips: 1, delay: 250 * time.Millisecond}
	switch r.kind {
	case KindPanic, KindTransient, KindSlow, KindCorrupt,
		KindConnReset, KindSlowNet, KindTruncatedBody, KindGarbageJSON:
	default:
		return fmt.Errorf("faults: rule %q: unknown kind %q", spec, kindStr)
	}
	parts := strings.Split(siteStr, "/")
	if len(parts) != 3 {
		return fmt.Errorf("faults: rule %q: site %q is not exp/workload/config", spec, siteStr)
	}
	r.exp, r.wl, r.cfg = parts[0], parts[1], parts[2]
	if hasOpts {
		for _, kv := range strings.Split(optStr, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("faults: rule %q: option %q is not key=val", spec, kv)
			}
			switch k {
			case "trips":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return fmt.Errorf("faults: rule %q: bad trips %q", spec, v)
				}
				r.trips = n
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return fmt.Errorf("faults: rule %q: bad delay %q", spec, v)
				}
				r.delay = d
			case "rate":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f <= 0 || f > 1 {
					return fmt.Errorf("faults: rule %q: bad rate %q", spec, v)
				}
				r.rate = f
			default:
				return fmt.Errorf("faults: rule %q: unknown option %q", spec, k)
			}
		}
	}
	p.mu.Lock()
	p.rules = append(p.rules, r)
	p.mu.Unlock()
	return nil
}

// Parse builds a plan from a ';'-separated rule list. A leading "seed=N"
// element seeds rate-gated selection (default 1).
func Parse(spec string) (*Plan, error) {
	p := New(1)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", v)
			}
			p.seed = n
			continue
		}
		if err := p.Add(part); err != nil {
			return nil, err
		}
	}
	if len(p.rules) == 0 {
		return nil, fmt.Errorf("faults: %q arms no rules", spec)
	}
	return p, nil
}

// EnvVar is the environment gate the CLIs and the chaos CI pass read.
const EnvVar = "IGNITE_FAULTS"

// FromEnvSpec resolves an IGNITE_FAULTS value: empty → nil plan (injection
// off), "smoke" → the canonical Smoke plan, anything else → Parse.
func FromEnvSpec(v string) (*Plan, error) {
	switch v {
	case "":
		return nil, nil
	case "smoke":
		return Smoke(), nil
	default:
		return Parse(v)
	}
}

// Smoke is the canonical chaos plan: one panic, one transient error that
// clears after a single trip, and one slow cell long enough to overrun any
// reasonable test deadline. Sites are chosen on the quick two-workload test
// set (Fib-G, Auth-G) so the chaos suite and the CI pass hit all three.
func Smoke() *Plan {
	p := New(1)
	for _, spec := range []string{
		"panic@fig1/Fib-G/b2b",
		"transient@fig8/Auth-G/ignite:trips=1",
		"slow@fig3/Fib-G/jukebox:delay=30s",
	} {
		if err := p.Add(spec); err != nil {
			panic("faults: bad builtin smoke rule: " + err.Error())
		}
	}
	return p
}

// selected reports whether a rate-gated rule selects the site, via a seeded
// FNV hash — deterministic for a (seed, site, kind) triple, independent of
// scheduling order.
func (p *Plan) selected(r rule, s Site) bool {
	if r.rate == 0 || r.rate >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", p.seed, r.kind, s)
	return float64(h.Sum64()%1_000_000) < r.rate*1_000_000
}

// fire finds the first armed, matching, still-tripping rule of the given
// kinds and consumes one trip. p.mu must not be held.
func (p *Plan) fire(s Site, kinds ...Kind) (rule, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.rules {
		for _, k := range kinds {
			if r.kind != k || !r.matches(s) || !p.selected(r, s) {
				continue
			}
			key := string(r.kind) + "|" + s.String()
			if p.fired[key] >= r.trips {
				continue
			}
			p.fired[key]++
			r.trips = p.fired[key] // reuse field to report the trip number
			return r, true
		}
	}
	return rule{}, false
}

// Fire applies the armed fault (if any) for the site: panic faults panic,
// slow faults sleep (returning early with ctx.Err() on cancellation), and
// transient faults return a *TransientError. Nil receiver and no-match both
// return nil, so callers can fire unconditionally.
func (p *Plan) Fire(ctx context.Context, s Site) error {
	if p == nil {
		return nil
	}
	r, ok := p.fire(s, KindPanic, KindTransient, KindSlow)
	if !ok {
		return nil
	}
	switch r.kind {
	case KindPanic:
		panic(fmt.Sprintf("faults: injected panic at %s", s))
	case KindSlow:
		t := time.NewTimer(r.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("faults: slow cell at %s interrupted: %w", s, context.Cause(ctx))
		}
	case KindTransient:
		return &TransientError{Site: s, Trip: r.trips}
	}
	return nil
}

// CorruptRecord reports whether the persisted record for the site should be
// corrupted (a KindCorrupt rule matched and had trips left). Nil-safe.
func (p *Plan) CorruptRecord(s Site) bool {
	if p == nil {
		return false
	}
	_, ok := p.fire(s, KindCorrupt)
	return ok
}
