// Package props holds the simulator's metamorphic properties: relations
// between whole simulation runs that must hold for any workload, used both as
// table-driven tests and as fuzz targets (go test ./internal/check/props
// -fuzz FuzzProperties). Where an invariant (internal/check) audits one run
// from the inside, a property compares runs against each other:
//
//   - determinism: identical setups produce bit-identical results;
//   - batch equivalence: the batched invocation entry point
//     (engine.RunInvocations) is bit-identical to the serial train it
//     replaces;
//   - replay idempotence: draining the recorded stream twice leaves the BTB
//     in exactly the state one drain leaves it in, and re-draining after a
//     fresh thrash reproduces it;
//   - monotonicity: growing a structure (BTB entries, L2 capacity) never
//     meaningfully worsens the miss rate it backs;
//   - policy ordering: Ignite's weakly-taken BIM initialization never
//     induces more mispredictions than the adversarial weakly-not-taken
//     policy (the Figure 11 ordering);
//   - mode ordering: back-to-back execution (all state warm) is never
//     meaningfully slower than interleaved (thrashed) execution.
//
// The monotonicity and ordering properties carry small tolerances: set-index
// remapping under a different geometry and wrong-path prefetch side effects
// can shift a metric marginally in the wrong direction without indicating a
// bug; the tolerances bound that noise while still catching real inversions.
package props

import (
	"context"
	"fmt"
	"math"
	"time"

	"ignite/internal/engine"
	"ignite/internal/experiments"
	"ignite/internal/fleet/budget"
	"ignite/internal/fleet/population"
	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

// Property is one metamorphic relation, checked against a single workload.
type Property struct {
	Name string
	Run  func(spec workload.Spec) error
}

// All returns every property, in presentation order.
func All() []Property {
	return []Property{
		{"determinism", Determinism},
		{"batch-equivalence", BatchEquivalence},
		{"replay-idempotence", ReplayIdempotence},
		{"btb-monotonicity", BTBMonotonicity},
		{"l2-monotonicity", L2Monotonicity},
		{"bim-policy-ordering", BIMPolicyOrdering},
		{"mode-ordering", ModeOrdering},
		{"fleet-budget-monotonicity", FleetBudgetMonotonicity},
	}
}

// runKind executes one fresh lukewarm protocol run of spec under kind.
func runKind(spec workload.Spec, kind sim.Kind, mode lukewarm.Mode, opts ...sim.Option) (*sim.Setup, *lukewarm.Result, error) {
	setup, err := sim.New(spec, kind, opts...)
	if err != nil {
		return nil, nil, err
	}
	res, err := setup.Run(mode)
	if err != nil {
		return nil, nil, err
	}
	return setup, res, nil
}

// Fingerprint flattens a protocol result into the float64 bit patterns a
// determinism comparison must reproduce exactly.
func Fingerprint(res *lukewarm.Result) []uint64 {
	st := res.CPIStack()
	vals := []float64{
		res.CPI(), st.Retiring, st.Fetch, st.BadSpec, st.Backend,
		res.L1IMPKI(), res.BTBMPKI(), res.CBPMPKI(), res.InducedMPKI(),
		res.OffChipMPKI(),
		float64(res.Instrs()), float64(res.MeanTraffic().Total()),
	}
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = math.Float64bits(v)
	}
	return out
}

// Determinism: two fresh, identical Ignite setups must produce bit-identical
// results — the engine seeds every source of randomness from the spec.
func Determinism(spec workload.Spec) error {
	_, a, err := runKind(spec, sim.KindIgnite, lukewarm.Interleaved)
	if err != nil {
		return err
	}
	_, b, err := runKind(spec, sim.KindIgnite, lukewarm.Interleaved)
	if err != nil {
		return err
	}
	fa, fb := Fingerprint(a), Fingerprint(b)
	for i := range fa {
		if fa[i] != fb[i] {
			return fmt.Errorf("props: determinism: %s: fingerprint field %d differs (%#x vs %#x)",
				spec.Name, i, fa[i], fb[i])
		}
	}
	return nil
}

// BatchEquivalence: the engine's batched entry point (RunInvocations, the
// path the lukewarm protocol rides) must be bit-identical to the equivalent
// serial RunInvocation train, including the thrashes a protocol interleaves.
// The batched API only amortizes result allocation; any observable difference
// is a bug.
func BatchEquivalence(spec workload.Spec) error {
	const n = 4
	maxInstr := spec.MaxInstr() / 2

	build := func() (*engine.Engine, error) {
		setup, err := sim.New(spec, sim.KindNL)
		if err != nil {
			return nil, err
		}
		return setup.Eng, nil
	}

	serialEng, err := build()
	if err != nil {
		return err
	}
	var serial [n]engine.InvocationStats
	for i := 0; i < n; i++ {
		serialEng.Thrash(uint64(i))
		st, err := serialEng.RunInvocation(engine.InvocationOptions{Seed: uint64(10 + i), MaxInstr: maxInstr})
		if err != nil {
			return err
		}
		serial[i] = *st
	}

	batchEng, err := build()
	if err != nil {
		return err
	}
	opts := make([]engine.InvocationOptions, n)
	batch, err := batchEng.RunInvocations(opts, func(i int) error {
		batchEng.Thrash(uint64(i))
		opts[i] = engine.InvocationOptions{Seed: uint64(10 + i), MaxInstr: maxInstr}
		return nil
	})
	if err != nil {
		return err
	}

	for i := 0; i < n; i++ {
		if serial[i] != *batch[i] {
			return fmt.Errorf("props: batch-equivalence: %s: invocation %d diverges between serial (%+v) and batched (%+v)",
				spec.Name, i, serial[i], *batch[i])
		}
	}
	return nil
}

// ReplayIdempotence: draining the recorded metadata stream is idempotent —
// applying it a second time (with or without an intervening thrash) leaves
// the BTB with exactly the same contents.
func ReplayIdempotence(spec workload.Spec) error {
	setup, err := sim.New(spec, sim.KindIgnite)
	if err != nil {
		return err
	}
	eng, ig := setup.Eng, setup.Ignite

	eng.Thrash(1)
	ig.StartRecord()
	if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr() / 2}); err != nil {
		return err
	}
	ig.StopRecord()
	ig.ArmReplay()

	drain := func() {
		ig.Replayer().BeginInvocation()
		ig.Replayer().Drain()
	}

	eng.Thrash(2)
	drain()
	first := eng.BTB().Snapshot()

	// Second drain on top of the first: same records, same state.
	drain()
	if again := eng.BTB().Snapshot(); !first.ContentEqual(again) {
		return fmt.Errorf("props: replay-idempotence: %s: re-draining onto a restored BTB changed its contents", spec.Name)
	}

	// Thrash away everything and drain once more: reproducible from scratch.
	eng.Thrash(3)
	drain()
	if fresh := eng.BTB().Snapshot(); !first.ContentEqual(fresh) {
		return fmt.Errorf("props: replay-idempotence: %s: replay after a fresh thrash diverged from the first replay", spec.Name)
	}
	return nil
}

// BTBMonotonicity: growing the BTB never meaningfully increases BTB MPKI.
// The tolerance absorbs set-remapping noise (a different entry count changes
// which sites conflict) without letting a real inversion through.
func BTBMonotonicity(spec workload.Spec) error {
	mpki := func(entries int) (float64, error) {
		_, res, err := runKind(spec, sim.KindNL, lukewarm.Interleaved, sim.WithBTBEntries(entries))
		if err != nil {
			return 0, err
		}
		return res.BTBMPKI(), nil
	}
	small, err := mpki(1536)
	if err != nil {
		return err
	}
	big, err := mpki(12288)
	if err != nil {
		return err
	}
	if big > small*1.02+0.05 {
		return fmt.Errorf("props: btb-monotonicity: %s: BTB MPKI rose from %.3f to %.3f when the BTB grew 8x",
			spec.Name, small, big)
	}
	return nil
}

// L2Monotonicity: growing the L2 never meaningfully increases the
// instruction L2 miss rate. Compared per kilo-instruction over the engine's
// lifetime (both runs execute the identical protocol).
func L2Monotonicity(spec workload.Spec) error {
	missRate := func(kib int) (float64, error) {
		setup, res, err := runKind(spec, sim.KindNL, lukewarm.Interleaved, sim.WithL2KiB(kib))
		if err != nil {
			return 0, err
		}
		misses := setup.Eng.Hierarchy().Stats().InstrL2Misses.Value()
		return float64(misses) * 1000 / float64(res.Instrs()), nil
	}
	small, err := missRate(320)
	if err != nil {
		return err
	}
	big, err := missRate(2560)
	if err != nil {
		return err
	}
	if big > small*1.02+0.05 {
		return fmt.Errorf("props: l2-monotonicity: %s: instruction L2 misses/kI rose from %.3f to %.3f when the L2 grew 8x",
			spec.Name, small, big)
	}
	return nil
}

// BIMPolicyOrdering: initializing restored branches to weakly-taken (they
// were recorded because they were taken) never induces more mispredictions
// than the adversarial weakly-not-taken initialization.
func BIMPolicyOrdering(spec workload.Spec) error {
	induced := func(p ignite.BIMPolicy) (float64, error) {
		_, res, err := runKind(spec, sim.KindIgnite, lukewarm.Interleaved, sim.WithBIMPolicy(p))
		if err != nil {
			return 0, err
		}
		return res.InducedMPKI(), nil
	}
	wt, err := induced(ignite.BIMWeaklyTaken)
	if err != nil {
		return err
	}
	wnt, err := induced(ignite.BIMWeaklyNotTaken)
	if err != nil {
		return err
	}
	if wt > wnt+1e-9 {
		return fmt.Errorf("props: bim-policy-ordering: %s: weakly-taken induced %.3f MPKI > weakly-not-taken %.3f",
			spec.Name, wt, wnt)
	}
	return nil
}

// ModeOrdering: with every structure preserved between invocations
// (back-to-back), a configuration is never meaningfully slower than with all
// state thrashed (interleaved) — Figure 1's premise.
func ModeOrdering(spec workload.Spec) error {
	for _, kind := range []sim.Kind{sim.KindNL, sim.KindIgnite} {
		_, b2b, err := runKind(spec, kind, lukewarm.BackToBack)
		if err != nil {
			return err
		}
		_, il, err := runKind(spec, kind, lukewarm.Interleaved)
		if err != nil {
			return err
		}
		if b2b.CPI() > il.CPI()*1.02 {
			return fmt.Errorf("props: mode-ordering: %s/%s: back-to-back CPI %.3f exceeds interleaved %.3f",
				spec.Name, kind, b2b.CPI(), il.CPI())
		}
	}
	return nil
}

// FleetBudgetMonotonicity: in the fleet metadata-budget market, a larger
// per-node budget never worsens the aggregate mean CPI under the static
// top-K plan or the benefit-density policy — more room for metadata can
// only keep more tenants on the lukewarm path. The spec only contributes
// its generator seed (the property ranges over sampled populations, not
// single workloads), so fuzzed specs explore different populations. LRU is
// deliberately excluded: recency eviction admits Belady-style anomalies by
// construction.
func FleetBudgetMonotonicity(spec workload.Spec) error {
	fns, err := population.Sample(population.Params{Seed: spec.Gen.Seed, N: 200})
	if err != nil {
		return err
	}
	tenants, err := budget.Tenants(fns, budget.Analytic{})
	if err != nil {
		return err
	}
	budgets := []uint64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 64 << 20}
	for _, name := range []string{"topk", "benefit"} {
		prev := math.Inf(1)
		for _, b := range budgets {
			pol, err := budget.NewPolicy(name)
			if err != nil {
				return err
			}
			o, err := budget.Run(tenants, budget.Params{
				Seed:        spec.Gen.Seed,
				Duration:    10 * time.Second,
				BudgetBytes: b,
				Policy:      pol,
			})
			if err != nil {
				return err
			}
			if o.MeanCPI > prev+1e-9 {
				return fmt.Errorf("props: fleet-budget-monotonicity: %s/seed %d: mean CPI rose from %.6f to %.6f when the budget grew to %d MiB",
					name, spec.Gen.Seed, prev, o.MeanCPI, b>>20)
			}
			prev = o.MeanCPI
		}
	}
	return nil
}

// ExperimentsDeterminism is the experiment-level determinism property: every
// experiment's Result.Values must be bit-identical across scheduler widths
// (Parallel=1 vs Parallel=8) and across cache-off vs a CellCache shared by
// all the experiments. The cached pass must also actually share cells (at
// least one cache hit), otherwise the property degenerates into the
// uncached one.
func ExperimentsDeterminism(ctx context.Context, ids []experiments.ID, specs []workload.Spec) error {
	run := func(id experiments.ID, opt experiments.Options) (map[string]map[string]float64, error) {
		r, err := experiments.Run(ctx, id, opt)
		if err != nil {
			return nil, fmt.Errorf("props: experiments-determinism: %s: %w", id, err)
		}
		return r.Values, nil
	}

	base := map[experiments.ID]map[string]map[string]float64{}
	for _, id := range ids {
		v, err := run(id, experiments.Options{Workloads: specs, Parallel: 1})
		if err != nil {
			return err
		}
		base[id] = v
	}

	for _, id := range ids {
		v, err := run(id, experiments.Options{Workloads: specs, Parallel: 8})
		if err != nil {
			return err
		}
		if at, ok := valuesEqual(base[id], v); !ok {
			return fmt.Errorf("props: experiments-determinism: %s: parallel=8 diverges from parallel=1 at %s", id, at)
		}
	}

	cc := experiments.NewCellCache()
	results, err := experiments.RunAll(ctx, ids, experiments.Options{Workloads: specs, Parallel: 8, Cache: cc})
	if err != nil {
		return fmt.Errorf("props: experiments-determinism: cached RunAll: %w", err)
	}
	for i, id := range ids {
		if at, ok := valuesEqual(base[id], results[i].Values); !ok {
			return fmt.Errorf("props: experiments-determinism: %s: cached run diverges from uncached at %s", id, at)
		}
	}
	if _, hits := cc.Stats(); hits == 0 {
		return fmt.Errorf("props: experiments-determinism: shared cache saw no hits across %v", ids)
	}
	return nil
}

// valuesEqual reports whether two result Values maps are bit-identical,
// returning the first difference for diagnostics.
func valuesEqual(a, b map[string]map[string]float64) (string, bool) {
	if len(a) != len(b) {
		return "row count differs", false
	}
	for row, cols := range a {
		bc, ok := b[row]
		if !ok || len(cols) != len(bc) {
			return "row " + row, false
		}
		for col, v := range cols {
			w, ok := bc[col]
			if !ok || math.Float64bits(v) != math.Float64bits(w) {
				return row + "/" + col, false
			}
		}
	}
	return "", true
}
