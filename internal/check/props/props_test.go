package props_test

import (
	"testing"

	"ignite/internal/check/props"
	"ignite/internal/workload"
)

// propSpec returns a shrunk copy of the named workload: the properties
// compare whole runs against each other, so absolute scale does not matter.
func propSpec(t testing.TB, name string, shrink uint64) workload.Spec {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.TargetInstr /= shrink
	return spec
}

func TestProperties(t *testing.T) {
	specs := []workload.Spec{
		propSpec(t, "Fib-G", 4),
		propSpec(t, "Auth-G", 4),
	}
	for _, p := range props.All() {
		for _, spec := range specs {
			p, spec := p, spec
			t.Run(p.Name+"/"+spec.Name, func(t *testing.T) {
				t.Parallel()
				if err := p.Run(spec); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// FuzzProperties perturbs the workload generator seed: the cheap properties
// (determinism, replay idempotence) must hold for every program the
// generator can produce, not just the catalog's seeds.
func FuzzProperties(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(303))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		spec := propSpec(t, "Fib-G", 8)
		spec.Gen.Seed = seed
		if err := props.Determinism(spec); err != nil {
			t.Error(err)
		}
		if err := props.ReplayIdempotence(spec); err != nil {
			t.Error(err)
		}
	})
}
