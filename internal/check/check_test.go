// The mutation smoke: every law in the verifier is broken on purpose and
// must fire, so the checker itself cannot silently rot. The tests live in an
// external package because check's consumers (sim) sit above it in the
// import graph; importing sim here from an in-package test would cycle.
package check_test

import (
	"errors"
	"strings"
	"testing"

	"ignite/internal/cache"
	"ignite/internal/check"
	"ignite/internal/engine"
	"ignite/internal/lukewarm"
	"ignite/internal/memsys"
	"ignite/internal/sim"
	"ignite/internal/stats"
	"ignite/internal/workload"
)

// validProbe satisfies every per-invocation law.
func validProbe() check.Probe {
	return check.Probe{
		Cycles: 200,
		Stack:  stats.CPIStack{Retiring: 100, Fetch: 50, BadSpec: 10, Backend: 40},

		HierInstrFetches: 1000,
		L1IAccesses:      1000,
		L1IHits:          900,
		L1IMisses:        100,

		BTBRestoredInserts:   50,
		BTBRestoredUntouched: 10,
		BTBOccupancy:         40,
		BTBEntries:           128,

		ReplayAttached:      true,
		ReplayBytesRead:     100,
		ReplayBytesRecorded: 200,

		L1ILines:   []uint64{0x0, 0x40, 0x1000},
		L2Contains: func(uint64) bool { return true },

		Now:     1200,
		PrevNow: 1000,
	}
}

// violationsOf unwraps the errors.Join tree into the set of violated law
// names.
func violationsOf(t *testing.T, err error) map[string]*check.Violation {
	t.Helper()
	out := map[string]*check.Violation{}
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		var v *check.Violation
		if errors.As(e, &v) {
			out[v.Invariant] = v
		}
		if joined, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	return out
}

func TestVerifyCleanProbe(t *testing.T) {
	if err := check.Verify(validProbe()); err != nil {
		t.Fatalf("clean probe rejected: %v", err)
	}
}

// TestMutationSmoke corrupts one law's inputs at a time and asserts that
// exactly that law notices. The coverage assertion keeps the table in sync
// with check.Names(): adding a law without a mutation here fails the test.
func TestMutationSmoke(t *testing.T) {
	mutations := map[string]func(p *check.Probe){
		"cpi-stack-sum": func(p *check.Probe) { p.Cycles += 5 },
		"cpi-components-nonneg": func(p *check.Probe) {
			p.Stack.BadSpec = -3
			p.Cycles = p.Stack.Total() // keep the sum law satisfied
		},
		"fetch-lookup-balance":  func(p *check.Probe) { p.HierInstrFetches++ },
		"l1i-hit-miss-balance":  func(p *check.Probe) { p.L1IHits++ },
		"btb-restored-bounds":   func(p *check.Probe) { p.BTBRestoredUntouched = p.BTBOccupancy + 1 },
		"replay-meta-bytes":     func(p *check.Probe) { p.ReplayBytesRead = p.ReplayBytesRecorded + 1 },
		"l1i-l2-inclusion":      func(p *check.Probe) { p.L2Contains = func(la uint64) bool { return la != 0x40 } },
		"monotonic-clock":       func(p *check.Probe) { p.Now = p.PrevNow },
	}
	for _, name := range check.Names() {
		mutate, ok := mutations[name]
		if !ok {
			t.Errorf("law %q has no mutation in the smoke table", name)
			continue
		}
		p := validProbe()
		mutate(&p)
		err := check.Verify(p)
		if err == nil {
			t.Errorf("law %q did not fire on its mutation", name)
			continue
		}
		vs := violationsOf(t, err)
		v, fired := vs[name]
		if !fired {
			t.Errorf("mutation for %q fired %v instead", name, err)
			continue
		}
		if len(v.Metrics) == 0 {
			t.Errorf("law %q fired without a metric snapshot", name)
		}
		if !strings.Contains(v.Error(), name) {
			t.Errorf("violation message %q does not name the law", v.Error())
		}
	}
	if extra := len(mutations) - len(check.Names()); extra != 0 {
		t.Errorf("mutation table has %d entries not matching any law", extra)
	}
}

func TestViolationErrorRendersMetricsSorted(t *testing.T) {
	v := &check.Violation{
		Invariant: "demo",
		Detail:    "something broke",
		Metrics:   map[string]float64{"zeta": 1, "alpha": 2},
	}
	msg := v.Error()
	if !strings.Contains(msg, `invariant "demo"`) || !strings.Contains(msg, "something broke") {
		t.Errorf("message incomplete: %q", msg)
	}
	if strings.Index(msg, "alpha") > strings.Index(msg, "zeta") {
		t.Errorf("metrics not sorted: %q", msg)
	}
}

func TestEnvEnabled(t *testing.T) {
	cases := []struct {
		val  string
		want bool
	}{{"", false}, {"0", false}, {"false", false}, {"FALSE", false}, {"1", true}, {"yes", true}}
	for _, c := range cases {
		t.Setenv(check.EnvVar, c.val)
		if got := check.EnvEnabled(); got != c.want {
			t.Errorf("EnvEnabled(%q) = %v, want %v", c.val, got, c.want)
		}
	}
}

// liveSetup builds a small Ignite simulation with an auditor anchored before
// any invocation has run.
func liveSetup(t *testing.T) (*sim.Setup, *check.Invariants) {
	t.Helper()
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	spec.TargetInstr /= 4
	setup, err := sim.New(spec, sim.KindIgnite)
	if err != nil {
		t.Fatal(err)
	}
	iv := check.New(setup.Eng)
	iv.AttachIgnite(setup.Ignite)
	return setup, iv
}

func TestInvariantsCleanOnLiveEngine(t *testing.T) {
	setup, iv := liveSetup(t)
	st, err := setup.Eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: setup.Spec.MaxInstr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := iv.CheckInvocation(st); err != nil {
		t.Fatalf("clean invocation failed the audit: %v", err)
	}
	if iv.Audits() != 1 {
		t.Errorf("audits = %d, want 1", iv.Audits())
	}
}

// TestEngineCorruptionCaught proves the engine-to-probe plumbing feeds the
// laws: corrupting real engine state (not a synthetic probe) fires the
// matching invariant.
func TestEngineCorruptionCaught(t *testing.T) {
	setup, iv := liveSetup(t)
	st, err := setup.Eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: setup.Spec.MaxInstr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Verify(iv.ProbeNow(st)); err != nil {
		t.Fatalf("pre-corruption state failed the audit: %v", err)
	}

	// Corrupt the CPI stack of the invocation under audit.
	bad := *st
	bad.Stack.Fetch += 10
	if vs := violationsOf(t, check.Verify(iv.ProbeNow(&bad))); vs["cpi-stack-sum"] == nil {
		t.Error("corrupted CPI stack not caught")
	}

	// Smuggle a line into the L1-I behind the inclusive L2's back.
	hier := setup.Eng.Hierarchy()
	la := uint64(0x7ff0000)
	for hier.L2.Contains(la) || hier.L1I.Contains(la) {
		la += 64
	}
	hier.L1I.Insert(la, cache.ProvDemand)
	if vs := violationsOf(t, check.Verify(iv.ProbeNow(st))); vs["l1i-l2-inclusion"] == nil {
		t.Error("L1-I/L2 inclusion breach not caught")
	}
}

func TestSimRunWithChecksPasses(t *testing.T) {
	spec, err := workload.ByName("Auth-G")
	if err != nil {
		t.Fatal(err)
	}
	spec.TargetInstr /= 4
	setup, err := sim.New(spec, sim.KindIgnite, sim.WithChecks())
	if err != nil {
		t.Fatal(err)
	}
	if setup.Checks == nil {
		t.Fatal("WithChecks did not install the auditor")
	}
	if _, err := setup.Run(lukewarm.Interleaved); err != nil {
		t.Fatalf("checked run failed: %v", err)
	}
	if setup.Checks.Audits() == 0 {
		t.Error("no invocations were audited")
	}
}

func TestEnvGateInstallsChecks(t *testing.T) {
	t.Setenv(check.EnvVar, "1")
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	spec.TargetInstr /= 8
	setup, err := sim.New(spec, sim.KindNL)
	if err != nil {
		t.Fatal(err)
	}
	if setup.Checks == nil {
		t.Fatal("IGNITE_CHECKS=1 did not install the auditor")
	}
}

// validResult builds a protocol result satisfying every aggregate law.
func validResult() *lukewarm.Result {
	mk := func(cyc float64) *engine.InvocationStats {
		return &engine.InvocationStats{
			Instrs: 1000,
			Cycles: cyc,
			Stack:  stats.CPIStack{Retiring: cyc / 2, Fetch: cyc / 4, BadSpec: cyc / 8, Backend: cyc / 8},
		}
	}
	return &lukewarm.Result{
		PerInvocation: []*engine.InvocationStats{mk(2000), mk(2400)},
		Traffic: []memsys.Report{
			{UsefulInstrBytes: 100, UselessInstrBytes: 51},
			{UsefulInstrBytes: 120, UselessInstrBytes: 60},
		},
	}
}

func TestVerifyResult(t *testing.T) {
	if err := check.VerifyResult(validResult()); err != nil {
		t.Fatalf("clean result rejected: %v", err)
	}

	empty := &lukewarm.Result{}
	if vs := violationsOf(t, check.VerifyResult(empty)); vs["result-nonempty"] == nil {
		t.Error("empty result not caught")
	}

	mismatched := validResult()
	mismatched.Traffic = mismatched.Traffic[:1]
	if vs := violationsOf(t, check.VerifyResult(mismatched)); vs["result-traffic-per-invocation"] == nil {
		t.Error("traffic/invocation count mismatch not caught")
	}

	skewed := validResult()
	skewed.PerInvocation[0].Cycles += 7 // stack no longer sums to cycles
	if vs := violationsOf(t, check.VerifyResult(skewed)); vs["result-cycles-sum"] == nil {
		t.Error("cycles/stack divergence not caught")
	}
}
