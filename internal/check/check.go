// Package check is the simulation verifier: it audits conservation laws the
// simulator must obey on every invocation (CPI-stack accounting, cache
// lookup balance, BTB restored-entry tracking, replay metadata bandwidth,
// L1-I/L2 inclusion, clock monotonicity) and aggregate laws over a finished
// protocol result. The reproduction's figures are causal stories about
// exposed miss latency and resteers; a silent violation of any of these laws
// corrupts every figure at once, so the verifier turns "silent" into a
// structured, protocol-aborting error.
//
// The verifier has three consumers:
//
//   - sim.WithChecks (or the IGNITE_CHECKS environment gate) installs
//     Invariants as the engine's post-invocation check, so every invocation
//     of every cell is audited while experiments run;
//   - internal/check/props runs metamorphic properties (determinism,
//     idempotence, monotonicity, ordering) over small workloads;
//   - the mutation smoke in this package's tests breaks each law on purpose
//     and asserts the checker catches it, so the verifier itself cannot rot.
package check

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"ignite/internal/engine"
	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/stats"
)

// EnvVar gates runtime invariant checking in CI: any value other than
// empty, "0" or "false" enables checks in every sim.Setup built while it is
// set (see sim.WithChecks for per-setup control).
const EnvVar = "IGNITE_CHECKS"

// EnvEnabled reports whether the environment requests invariant checking.
func EnvEnabled() bool {
	v := os.Getenv(EnvVar)
	return v != "" && v != "0" && !strings.EqualFold(v, "false")
}

// Violation is a structured invariant failure: which law broke, a
// human-readable account, and the metric snapshot that witnessed it.
type Violation struct {
	// Invariant names the broken law (one of Names()).
	Invariant string
	// Detail explains the violation in terms of the snapshot values.
	Detail string
	// Metrics carries the values the law was evaluated over.
	Metrics map[string]float64
}

func (v *Violation) Error() string {
	keys := make([]string, 0, len(v.Metrics))
	for k := range v.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "check: invariant %q violated: %s", v.Invariant, v.Detail)
	if len(keys) > 0 {
		sb.WriteString(" [")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s=%g", k, v.Metrics[k])
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// Probe is a flattened snapshot of everything the per-invocation laws
// inspect. Invariants fills it from a live engine; the mutation smoke
// constructs (and corrupts) probes directly.
type Probe struct {
	// Per-invocation accounting.
	Cycles float64
	Stack  stats.CPIStack

	// Cumulative engine-lifetime counters (reset only by ResetStats,
	// which the protocol never calls mid-run, so balances hold at every
	// invocation boundary).
	HierInstrFetches uint64
	L1IAccesses      uint64
	L1IHits          uint64
	L1IMisses        uint64

	// BTB restored-entry tracking (Ignite's throttle input).
	BTBRestoredInserts   uint64
	BTBRestoredUntouched int
	BTBOccupancy         int
	BTBEntries           int

	// Replay metadata accounting; valid only when ReplayAttached.
	ReplayAttached      bool
	ReplayBytesRead     int
	ReplayBytesRecorded int

	// Inclusion audit surface: every L1-I line must be covered by
	// L2Contains. A nil L2Contains skips the law (no hierarchy attached).
	L1ILines   []uint64
	L2Contains func(lineAddr uint64) bool

	// Engine clock at this and the previous audit point.
	Now     uint64
	PrevNow uint64
}

// law is one per-invocation conservation law.
type law struct {
	name  string
	check func(Probe) *Violation
}

// floatEq compares float64 accumulations with relative tolerance: the
// quantities are sums of identical terms computed in identical order, so the
// tolerance only needs to absorb representation noise, not reordering.
func floatEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	} else if -b > m {
		m = -b
	}
	return d <= 1e-9*m+1e-9
}

var laws = []law{
	{"cpi-stack-sum", func(p Probe) *Violation {
		if floatEq(p.Cycles, p.Stack.Total()) {
			return nil
		}
		return &Violation{
			Invariant: "cpi-stack-sum",
			Detail:    "CPI-stack components do not sum to total cycles",
			Metrics: map[string]float64{
				"cycles": p.Cycles, "stack_total": p.Stack.Total(),
				"retiring": p.Stack.Retiring, "fetch": p.Stack.Fetch,
				"badspec": p.Stack.BadSpec, "backend": p.Stack.Backend,
			},
		}
	}},
	{"cpi-components-nonneg", func(p Probe) *Violation {
		if p.Cycles >= 0 && p.Stack.Retiring >= 0 && p.Stack.Fetch >= 0 &&
			p.Stack.BadSpec >= 0 && p.Stack.Backend >= 0 {
			return nil
		}
		return &Violation{
			Invariant: "cpi-components-nonneg",
			Detail:    "a CPI-stack component went negative",
			Metrics: map[string]float64{
				"cycles": p.Cycles, "retiring": p.Stack.Retiring,
				"fetch": p.Stack.Fetch, "badspec": p.Stack.BadSpec,
				"backend": p.Stack.Backend,
			},
		}
	}},
	{"fetch-lookup-balance", func(p Probe) *Violation {
		if p.HierInstrFetches == p.L1IAccesses {
			return nil
		}
		return &Violation{
			Invariant: "fetch-lookup-balance",
			Detail:    "hierarchy instruction fetches diverge from L1-I demand lookups",
			Metrics: map[string]float64{
				"hier_instr_fetches": float64(p.HierInstrFetches),
				"l1i_accesses":       float64(p.L1IAccesses),
			},
		}
	}},
	{"l1i-hit-miss-balance", func(p Probe) *Violation {
		if p.L1IHits+p.L1IMisses == p.L1IAccesses {
			return nil
		}
		return &Violation{
			Invariant: "l1i-hit-miss-balance",
			Detail:    "L1-I hits + misses != demand lookups",
			Metrics: map[string]float64{
				"l1i_hits": float64(p.L1IHits), "l1i_misses": float64(p.L1IMisses),
				"l1i_accesses": float64(p.L1IAccesses),
			},
		}
	}},
	{"btb-restored-bounds", func(p Probe) *Violation {
		ok := p.BTBRestoredUntouched >= 0 &&
			uint64(p.BTBRestoredUntouched) <= p.BTBRestoredInserts &&
			p.BTBRestoredUntouched <= p.BTBOccupancy &&
			p.BTBOccupancy <= p.BTBEntries
		if ok {
			return nil
		}
		return &Violation{
			Invariant: "btb-restored-bounds",
			Detail:    "restored-untouched count escaped its bounds (0 <= untouched <= restored inserts, untouched <= occupancy <= capacity)",
			Metrics: map[string]float64{
				"restored_untouched": float64(p.BTBRestoredUntouched),
				"restored_inserts":   float64(p.BTBRestoredInserts),
				"occupancy":          float64(p.BTBOccupancy),
				"entries":            float64(p.BTBEntries),
			},
		}
	}},
	{"replay-meta-bytes", func(p Probe) *Violation {
		if !p.ReplayAttached {
			return nil
		}
		if p.ReplayBytesRead >= 0 && p.ReplayBytesRead <= p.ReplayBytesRecorded {
			return nil
		}
		return &Violation{
			Invariant: "replay-meta-bytes",
			Detail:    "replay consumed more metadata bytes than were recorded",
			Metrics: map[string]float64{
				"replay_bytes_read":     float64(p.ReplayBytesRead),
				"replay_bytes_recorded": float64(p.ReplayBytesRecorded),
			},
		}
	}},
	{"l1i-l2-inclusion", func(p Probe) *Violation {
		if p.L2Contains == nil {
			return nil
		}
		for _, la := range p.L1ILines {
			if !p.L2Contains(la) {
				return &Violation{
					Invariant: "l1i-l2-inclusion",
					Detail:    fmt.Sprintf("L1-I line %#x is not resident in the (inclusive) L2", la),
					Metrics: map[string]float64{
						"line_addr": float64(la),
						"l1i_lines": float64(len(p.L1ILines)),
					},
				}
			}
		}
		return nil
	}},
	{"monotonic-clock", func(p Probe) *Violation {
		ok := p.Now >= p.PrevNow && (p.Cycles < 1 || p.Now > p.PrevNow)
		if ok {
			return nil
		}
		return &Violation{
			Invariant: "monotonic-clock",
			Detail:    "engine clock failed to advance monotonically across the invocation",
			Metrics: map[string]float64{
				"now": float64(p.Now), "prev_now": float64(p.PrevNow),
				"cycles": p.Cycles,
			},
		}
	}},
}

// Names lists every per-invocation invariant, in evaluation order. The
// mutation smoke iterates this list to prove each law actually fires.
func Names() []string {
	out := make([]string, len(laws))
	for i, l := range laws {
		out[i] = l.name
	}
	return out
}

// Verify evaluates every per-invocation law against the probe, returning
// all violations joined (nil when every law holds).
func Verify(p Probe) error {
	var errs []error
	for _, l := range laws {
		if v := l.check(p); v != nil {
			errs = append(errs, v)
		}
	}
	return errors.Join(errs...)
}

// Invariants audits a live engine after every invocation. Install with
// engine.SetInvocationCheck (sim.WithChecks does this wiring).
type Invariants struct {
	eng     *engine.Engine
	rep     *ignite.Replayer
	prevNow uint64
	audits  int
}

// New builds an invariant auditor over eng, anchored at the engine's
// current clock.
func New(eng *engine.Engine) *Invariants {
	return &Invariants{eng: eng, prevNow: eng.Now()}
}

// AttachIgnite adds Ignite's replay metadata accounting to the audit.
func (iv *Invariants) AttachIgnite(ig *ignite.Ignite) { iv.rep = ig.Replayer() }

// Audits returns how many invocations have been verified.
func (iv *Invariants) Audits() int { return iv.audits }

// ProbeNow snapshots the engine into a Probe using st as the invocation
// under audit. Exposed so tests can corrupt a real snapshot and prove the
// engine-to-probe plumbing feeds each law.
func (iv *Invariants) ProbeNow(st *engine.InvocationStats) Probe {
	e := iv.eng
	l1i := e.Hierarchy().L1I.Stats()
	bs := e.BTB().Stats()
	p := Probe{
		Cycles:               st.Cycles,
		Stack:                st.Stack,
		HierInstrFetches:     e.Hierarchy().Stats().InstrFetches.Value(),
		L1IAccesses:          l1i.Accesses.Value(),
		L1IHits:              l1i.Hits.Value(),
		L1IMisses:            l1i.Misses.Value(),
		BTBRestoredInserts:   bs.RestoredInserts.Value(),
		BTBRestoredUntouched: e.BTB().RestoredUntouched(),
		BTBOccupancy:         e.BTB().Occupancy(),
		BTBEntries:           e.BTB().Config().Entries,
		L1ILines:             e.Hierarchy().L1I.Lines(),
		L2Contains:           e.Hierarchy().L2.Contains,
		Now:                  e.Now(),
		PrevNow:              iv.prevNow,
	}
	if iv.rep != nil {
		p.ReplayAttached = true
		p.ReplayBytesRead = iv.rep.BytesRead()
		p.ReplayBytesRecorded = iv.rep.RegionUsed()
	}
	return p
}

// CheckInvocation is the engine post-invocation hook: snapshot, verify,
// advance the clock anchor. The anchor advances even on failure so one
// violation does not cascade into spurious clock reports.
func (iv *Invariants) CheckInvocation(st *engine.InvocationStats) error {
	p := iv.ProbeNow(st)
	iv.prevNow = iv.eng.Now()
	iv.audits++
	return Verify(p)
}

// VerifyResult audits the aggregate laws of a finished protocol result:
// the run measured something, its cycle total matches the per-invocation
// stacks, and the mean traffic lies within the per-invocation envelope.
func VerifyResult(res *lukewarm.Result) error {
	var errs []error
	if res.Instrs() == 0 || len(res.PerInvocation) == 0 {
		errs = append(errs, &Violation{
			Invariant: "result-nonempty",
			Detail:    "protocol result measured no instructions",
			Metrics: map[string]float64{
				"instrs":      float64(res.Instrs()),
				"invocations": float64(len(res.PerInvocation)),
			},
		})
	}
	if len(res.Traffic) != len(res.PerInvocation) {
		errs = append(errs, &Violation{
			Invariant: "result-traffic-per-invocation",
			Detail:    "traffic reports and measured invocations disagree in count",
			Metrics: map[string]float64{
				"traffic_reports": float64(len(res.Traffic)),
				"invocations":     float64(len(res.PerInvocation)),
			},
		})
	}
	var stackSum float64
	for _, st := range res.PerInvocation {
		stackSum += st.Stack.Total()
	}
	if !floatEq(res.Cycles(), stackSum) {
		errs = append(errs, &Violation{
			Invariant: "result-cycles-sum",
			Detail:    "aggregate cycles diverge from the summed CPI stacks",
			Metrics: map[string]float64{
				"cycles": res.Cycles(), "stack_sum": stackSum,
			},
		})
	}
	if len(res.Traffic) > 0 {
		mean := res.MeanTraffic().Total()
		lo, hi := res.Traffic[0].Total(), res.Traffic[0].Total()
		for _, t := range res.Traffic[1:] {
			if v := t.Total(); v < lo {
				lo = v
			} else if v > hi {
				hi = v
			}
		}
		// Half-up rounding happens per field, so the total can exceed a
		// single field's bound by at most one byte per field.
		const slack = 4
		if mean+slack < lo || mean > hi+slack {
			errs = append(errs, &Violation{
				Invariant: "result-meantraffic-bound",
				Detail:    "mean traffic fell outside the per-invocation min/max envelope",
				Metrics: map[string]float64{
					"mean": float64(mean), "min": float64(lo), "max": float64(hi),
				},
			})
		}
	}
	return errors.Join(errs...)
}
