// Package cfgcli centralizes the flag, environment, and exit-code handling
// the ignite CLIs used to duplicate: the shared flag block (-parallel,
// -checks, -workloads, -target-instr, failure-policy and journal knobs), the
// IGNITE_FAULTS / IGNITE_CHECKS environment gates, signal-aware contexts,
// and the exit-code conventions (130 interrupted, 2 usage, 1 failure).
//
// A CLI binds only the groups it needs:
//
//	f := cfgcli.New("ignite-bench")
//	f.BindCore(flag.CommandLine)    // -parallel, -checks, -target-instr, -max-cycles
//	f.BindMatrix(flag.CommandLine)  // -workloads, -fail-policy, -cell-timeout, -retries
//	f.BindJournal(flag.CommandLine) // -journal, -resume
//	flag.Parse()
//	opt, err := f.Options()         // experiments.Options from flags + env
package cfgcli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ignite/internal/check"
	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/obs"
	"ignite/internal/workload"
)

// UsageError marks an error as the caller's fault — Exit maps it to status 2
// the way flag's own parse failures exit.
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

// Usage wraps err as a UsageError.
func Usage(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// SignalContext returns a context canceled by SIGINT/SIGTERM — every ignite
// daemon and batch CLI drains through it.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// FaultsFromEnv arms the deterministic fault-injection plan from
// IGNITE_FAULTS (nil when unset). A malformed spec is a usage error.
func FaultsFromEnv() (*faults.Plan, error) {
	plan, err := faults.FromEnvSpec(os.Getenv(faults.EnvVar))
	if err != nil {
		return nil, &UsageError{Err: err}
	}
	return plan, nil
}

// Flags is the shared flag block. Zero value + Bind* + Parse, then Options.
type Flags struct {
	name string

	Parallel    int
	Checks      bool
	TargetInstr uint64
	MaxCycles   uint64

	Workloads   string
	FailPolicy  string
	CellTimeout time.Duration
	Retries     int

	Journal string
	Resume  bool
}

// New returns a flag block for the named CLI (the name prefixes errors).
func New(name string) *Flags {
	return &Flags{name: name, FailPolicy: "fail-fast"}
}

// BindCore registers the knobs every simulation-running CLI shares.
func (f *Flags) BindCore(fs *flag.FlagSet) {
	fs.IntVar(&f.Parallel, "parallel", 0, "parallel cell simulations (default: NumCPU)")
	fs.BoolVar(&f.Checks, "checks", false, "enable the runtime invariant verifier (also IGNITE_CHECKS=1)")
	fs.Uint64Var(&f.TargetInstr, "target-instr", 0, "override per-invocation instruction budget (0 = each workload's own; CI smoke runs use a small value)")
	fs.Uint64Var(&f.MaxCycles, "max-cycles", 0, "per-invocation engine cycle budget, aborts runaway simulations (0 = unlimited)")
}

// BindMatrix registers the experiment-matrix knobs.
func (f *Flags) BindMatrix(fs *flag.FlagSet) {
	fs.StringVar(&f.Workloads, "workloads", "", "comma-separated function names (default: all 20)")
	fs.StringVar(&f.FailPolicy, "fail-policy", "fail-fast", "cell-failure policy: fail-fast aborts on the first failure, continue completes healthy cells and reports failures per cell")
	fs.DurationVar(&f.CellTimeout, "cell-timeout", 0, "per-cell simulation deadline (0 = none)")
	fs.IntVar(&f.Retries, "retries", 0, "transient-failure retries per cell (0 = default 2, negative disables)")
}

// BindJournal registers the crash-safe journal knobs.
func (f *Flags) BindJournal(fs *flag.FlagSet) {
	fs.StringVar(&f.Journal, "journal", "", "crash-safe cell journal path (default <out>/run.journal.jsonl when -out is set)")
	fs.BoolVar(&f.Resume, "resume", false, "preload cells from the journal of an interrupted run before simulating")
}

// ChecksEnabled folds the -checks flag with the IGNITE_CHECKS gate.
func (f *Flags) ChecksEnabled() bool {
	return f.Checks || check.EnvEnabled()
}

// WorkloadSpecs resolves -workloads (and the -target-instr override) into
// specs; empty -workloads with no override returns nil, meaning "all".
func (f *Flags) WorkloadSpecs() ([]workload.Spec, error) {
	var specs []workload.Spec
	if f.Workloads != "" {
		for _, name := range strings.Split(f.Workloads, ",") {
			spec, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return nil, &UsageError{Err: err}
			}
			specs = append(specs, spec)
		}
	}
	if f.TargetInstr > 0 {
		if len(specs) == 0 {
			specs = workload.All()
		}
		for i := range specs {
			specs[i].TargetInstr = f.TargetInstr
		}
	}
	return specs, nil
}

// Options builds experiments.Options from the bound flags and the
// environment gates, with a fresh shared cell cache and health counters.
func (f *Flags) Options() (experiments.Options, error) {
	policy, err := experiments.ParseFailurePolicy(f.FailPolicy)
	if err != nil {
		return experiments.Options{}, &UsageError{Err: err}
	}
	plan, err := FaultsFromEnv()
	if err != nil {
		return experiments.Options{}, err
	}
	specs, err := f.WorkloadSpecs()
	if err != nil {
		return experiments.Options{}, err
	}
	return experiments.Options{
		Workloads:     specs,
		Parallel:      f.Parallel,
		Cache:         experiments.NewCellCache(),
		Checks:        f.ChecksEnabled(),
		FailurePolicy: policy,
		CellTimeout:   f.CellTimeout,
		MaxCycles:     f.MaxCycles,
		Retries:       f.Retries,
		Faults:        plan,
		Health:        new(obs.RunHealth),
	}, nil
}

// AttachJournal resolves the journal path (-journal, falling back to
// <outDir>/run.journal.jsonl), opens it onto opt, and replays it into the
// cache when -resume is set. The returned closer is a no-op when no journal
// applies.
func (f *Flags) AttachJournal(opt *experiments.Options, outDir string) (func(), error) {
	path := f.Journal
	if path == "" && outDir != "" {
		path = filepath.Join(outDir, "run.journal.jsonl")
	}
	if f.Resume && path == "" {
		return nil, Usage("%s: -resume needs a journal (-journal or -out)", f.name)
	}
	if path == "" {
		return func() {}, nil
	}
	j, err := experiments.OpenJournal(path, opt.Fingerprint())
	if err != nil {
		return nil, err
	}
	opt.Journal = j
	if f.Resume {
		loaded, skipped, err := j.Resume(opt.Cache)
		if err != nil {
			j.Close()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "resumed %d cell(s) from %s (%d unreadable record(s) skipped)\n",
			loaded, path, skipped)
	}
	return func() { j.Close() }, nil
}

// Exit terminates the process with the conventional status for err: 130 when
// the run was interrupted (ctx canceled or err wraps context.Canceled), 2
// for usage errors, 1 otherwise. A nil err with a live context returns
// without exiting.
func Exit(name string, ctx context.Context, err error) {
	interrupted := (ctx != nil && ctx.Err() != nil) || errors.Is(err, context.Canceled)
	if interrupted {
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
		os.Exit(130)
	}
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, err)
	var ue *UsageError
	if errors.As(err, &ue) {
		os.Exit(2)
	}
	os.Exit(1)
}
