package cfgcli

import (
	"errors"
	"flag"
	"testing"

	"ignite/internal/experiments"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	f := New("test-cli")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.BindCore(fs)
	f.BindMatrix(fs)
	f.BindJournal(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestOptionsFromFlags(t *testing.T) {
	f := parse(t, "-parallel", "3", "-workloads", "Auth-G, Curr-N", "-target-instr", "5000",
		"-fail-policy", "continue", "-retries", "-1", "-checks")
	opt, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Parallel != 3 || opt.Retries != -1 || !opt.Checks {
		t.Errorf("options = %+v", opt)
	}
	if opt.FailurePolicy != experiments.ContinueOnError {
		t.Errorf("policy = %v", opt.FailurePolicy)
	}
	if len(opt.Workloads) != 2 || opt.Workloads[0].Name != "Auth-G" || opt.Workloads[1].TargetInstr != 5000 {
		t.Errorf("workloads = %+v", opt.Workloads)
	}
	if opt.Cache == nil || opt.Health == nil {
		t.Error("cache/health not installed")
	}
}

func TestUsageErrors(t *testing.T) {
	var ue *UsageError
	if _, err := parse(t, "-workloads", "NoSuchFn").Options(); !errors.As(err, &ue) {
		t.Errorf("unknown workload: %v", err)
	}
	if _, err := parse(t, "-fail-policy", "shrug").Options(); !errors.As(err, &ue) {
		t.Errorf("unknown policy: %v", err)
	}
}

func TestTargetInstrWithoutWorkloadsCoversAll(t *testing.T) {
	specs, err := parse(t, "-target-instr", "9000").WorkloadSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("override produced no specs")
	}
	for _, s := range specs {
		if s.TargetInstr != 9000 {
			t.Errorf("%s budget = %d", s.Name, s.TargetInstr)
		}
	}
}

func TestAttachJournal(t *testing.T) {
	f := parse(t, "-resume")
	opt := experiments.Options{Cache: experiments.NewCellCache()}
	var ue *UsageError
	if _, err := f.AttachJournal(&opt, ""); !errors.As(err, &ue) {
		t.Errorf("-resume without journal: %v", err)
	}

	dir := t.TempDir()
	f = parse(t)
	closer, err := f.AttachJournal(&opt, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	if opt.Journal == nil {
		t.Error("journal not attached from out dir default")
	}

	f = parse(t)
	opt2 := experiments.Options{}
	closer2, err := f.AttachJournal(&opt2, "")
	if err != nil {
		t.Fatal(err)
	}
	defer closer2()
	if opt2.Journal != nil {
		t.Error("journal attached with no path configured")
	}
}
