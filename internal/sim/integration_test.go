package sim

import (
	"testing"

	"ignite/internal/cache"
	"ignite/internal/lukewarm"
)

// TestIgniteEndToEndEffects drills into what the replay actually restored
// during a full protocol run: BTB entries, BIM counters, L2 lines, ITLB
// pages and metadata traffic, all through the public wiring.
func TestIgniteEndToEndEffects(t *testing.T) {
	s := spec(t)
	setup, err := New(s, KindIgnite)
	if err != nil {
		t.Fatal(err)
	}
	res, err := setup.Run(lukewarm.Interleaved)
	if err != nil {
		t.Fatal(err)
	}

	ig := setup.Ignite
	if ig.Recorder().Records() == 0 {
		t.Fatal("nothing recorded")
	}
	if ig.MetadataUsed() == 0 || ig.MetadataUsed() > 120<<10 {
		t.Fatalf("metadata size %d outside (0, 120 KiB]", ig.MetadataUsed())
	}
	if !ig.Regs().ReplayEnable {
		t.Error("replay not armed after protocol")
	}

	// Restored-state accuracy: most restored BTB entries were used.
	bs := setup.Eng.BTB().Stats()
	if bs.RestoredInserts.Value() == 0 {
		t.Fatal("no restored BTB inserts")
	}
	usedFrac := float64(bs.RestoredUsed.Value()) / float64(bs.RestoredInserts.Value())
	if usedFrac < 0.5 {
		t.Errorf("only %.0f%% of restored BTB entries used", usedFrac*100)
	}

	// Ignite's L2 prefetches were mostly useful.
	ins, useful := setup.Eng.Traffic().SourceAccuracy(cache.SrcIgnite)
	if ins == 0 {
		t.Fatal("no Ignite prefetches tracked")
	}
	if float64(useful)/float64(ins) < 0.5 {
		t.Errorf("only %d/%d Ignite prefetches useful", useful, ins)
	}

	// Replay metadata traffic appears in the bandwidth report.
	if res.MeanTraffic().ReplayMetaBytes == 0 {
		t.Error("no replay metadata traffic")
	}
}

// TestIgniteReducesAllThreeMissClasses is the paper's core claim stated as
// one assertion: versus the NL baseline on lukewarm invocations, Ignite
// reduces L1-I, BTB and CBP MPKI simultaneously.
func TestIgniteReducesAllThreeMissClasses(t *testing.T) {
	s := spec(t)
	prog, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewWithProgram(s, prog, KindNL)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := base.Run(lukewarm.Interleaved)
	if err != nil {
		t.Fatal(err)
	}
	igSetup, err := NewWithProgram(s, prog, KindIgnite)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := igSetup.Run(lukewarm.Interleaved)
	if err != nil {
		t.Fatal(err)
	}

	if ig.L1IMPKI() >= nl.L1IMPKI() {
		t.Errorf("L1I MPKI: ignite %.2f >= nl %.2f", ig.L1IMPKI(), nl.L1IMPKI())
	}
	if ig.BTBMPKI() >= nl.BTBMPKI()/2 {
		t.Errorf("BTB MPKI: ignite %.2f not well below nl %.2f", ig.BTBMPKI(), nl.BTBMPKI())
	}
	if ig.CBPMPKI() >= nl.CBPMPKI() {
		t.Errorf("CBP MPKI: ignite %.2f >= nl %.2f", ig.CBPMPKI(), nl.CBPMPKI())
	}
	if ig.OffChipMPKI() >= nl.OffChipMPKI()/2 {
		t.Errorf("off-chip MPKI: ignite %.2f not well below nl %.2f", ig.OffChipMPKI(), nl.OffChipMPKI())
	}
	// Initial mispredictions are the specific target of BIM restoration.
	if ig.InitialCBPMPKI() >= nl.InitialCBPMPKI() {
		t.Errorf("initial mispredictions: ignite %.2f >= nl %.2f",
			ig.InitialCBPMPKI(), nl.InitialCBPMPKI())
	}
}

// TestBackToBackBeatsEverything: no prefetcher on lukewarm invocations
// should beat actually keeping the state warm.
func TestBackToBackBeatsEverything(t *testing.T) {
	s := spec(t)
	prog, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b2bSetup, err := NewWithProgram(s, prog, KindNL)
	if err != nil {
		t.Fatal(err)
	}
	b2b, err := b2bSetup.Run(lukewarm.BackToBack)
	if err != nil {
		t.Fatal(err)
	}
	igSetup, err := NewWithProgram(s, prog, KindIgnite)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := igSetup.Run(lukewarm.Interleaved)
	if err != nil {
		t.Fatal(err)
	}
	if ig.CPI() < b2b.CPI()*0.98 {
		t.Errorf("Ignite on lukewarm (%.3f) should not beat back-to-back (%.3f)",
			ig.CPI(), b2b.CPI())
	}
}

// TestThrottleTweakWired verifies the ablation plumbing reaches the replay.
func TestThrottleTweakWired(t *testing.T) {
	s := spec(t)
	setup, err := New(s, KindIgnite, WithThrottleThreshold(64), WithMetadataBytes(16<<10))
	if err != nil {
		t.Fatal(err)
	}
	if setup.Ignite.MetadataUsed() != 0 {
		t.Error("fresh setup has metadata")
	}
	if _, err := setup.Run(lukewarm.Interleaved); err != nil {
		t.Fatal(err)
	}
	if setup.Ignite.MetadataUsed() > 16<<10 {
		t.Errorf("metadata %d exceeds 16 KiB budget", setup.Ignite.MetadataUsed())
	}
}

// TestBTBEntriesTweakWired verifies the BTB-capacity override.
func TestBTBEntriesTweakWired(t *testing.T) {
	s := spec(t)
	setup, err := New(s, KindNL, WithBTBEntries(6144))
	if err != nil {
		t.Fatal(err)
	}
	if got := setup.Eng.BTB().Config().Entries; got != 6144 {
		t.Errorf("BTB entries = %d, want 6144", got)
	}
}
