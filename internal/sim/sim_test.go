package sim

import (
	"testing"

	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/workload"
)

func spec(t *testing.T) workload.Spec {
	t.Helper()
	s, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	// Shorten invocations for test speed.
	s.TargetInstr /= 2
	return s
}

func TestAllKindsBuildAndRun(t *testing.T) {
	s := spec(t)
	prog, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds() {
		setup, err := NewWithProgram(s, prog, k)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		res, err := setup.Run(lukewarm.Interleaved)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.Instrs() == 0 {
			t.Fatalf("%s: empty run", k)
		}
	}
}

func TestUnknownKindRejected(t *testing.T) {
	s := spec(t)
	if _, err := New(s, Kind("bogus")); err == nil {
		t.Error("accepted unknown kind")
	}
}

func TestKindWiring(t *testing.T) {
	s := spec(t)
	prog, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		kind       Kind
		fdp, boom  bool
		jb, cf, ig bool
	}{
		{KindNL, false, false, false, false, false},
		{KindFDP, true, false, false, false, false},
		{KindBoomerang, true, true, false, false, false},
		{KindJukebox, false, false, true, false, false},
		{KindBoomerangJB, true, true, true, false, false},
		{KindConfluence, false, false, false, true, false},
		{KindIgnite, true, false, false, false, true},
		{KindConfluenceIgnite, false, false, false, true, true},
	}
	for _, c := range cases {
		st, err := NewWithProgram(s, prog, c.kind)
		if err != nil {
			t.Fatal(err)
		}
		ec := st.Eng.Config()
		if ec.FDPEnabled != c.fdp || ec.BoomerangEnabled != c.boom {
			t.Errorf("%s: fdp=%v boom=%v", c.kind, ec.FDPEnabled, ec.BoomerangEnabled)
		}
		if (st.Jukebox != nil) != c.jb || (st.Confluence != nil) != c.cf || (st.Ignite != nil) != c.ig {
			t.Errorf("%s: jb=%v cf=%v ig=%v", c.kind, st.Jukebox != nil, st.Confluence != nil, st.Ignite != nil)
		}
	}
}

func TestIdealImpliesWarmCBP(t *testing.T) {
	s := spec(t)
	st, err := New(s, KindIdeal)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Keep.BIM || !st.Keep.TAGE {
		t.Error("ideal must preserve the CBP")
	}
	if !st.Eng.Config().PerfectL1I || !st.Eng.Config().PerfectBTB {
		t.Error("ideal must have perfect L1I and BTB")
	}
}

func TestIgniteTAGEPreservesTage(t *testing.T) {
	s := spec(t)
	st, err := New(s, KindIgniteTAGE)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Keep.TAGE || st.Keep.BIM {
		t.Errorf("ignite+tage keep = %+v", st.Keep)
	}
}

func TestBIMPolicyTweak(t *testing.T) {
	s := spec(t)
	pol := ignite.BIMWeaklyNotTaken
	st, err := New(s, KindIgnite, WithBIMPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ignite == nil {
		t.Fatal("no ignite instance")
	}
	// Run to make sure the policy is exercised without error.
	if _, err := st.Run(lukewarm.Interleaved); err != nil {
		t.Fatal(err)
	}
}

// TestHeadlineOrdering is the repository's core regression: on lukewarm
// invocations, Ignite must outperform Boomerang+Jukebox, which must
// outperform the NL baseline; the ideal front end bounds everything.
func TestHeadlineOrdering(t *testing.T) {
	s := spec(t)
	prog, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	cpi := map[Kind]float64{}
	for _, k := range []Kind{KindNL, KindBoomerangJB, KindIgnite, KindIdeal} {
		setup, err := NewWithProgram(s, prog, k)
		if err != nil {
			t.Fatal(err)
		}
		res, err := setup.Run(lukewarm.Interleaved)
		if err != nil {
			t.Fatal(err)
		}
		cpi[k] = res.CPI()
	}
	if !(cpi[KindIdeal] < cpi[KindIgnite] && cpi[KindIgnite] < cpi[KindBoomerangJB] &&
		cpi[KindBoomerangJB] < cpi[KindNL]) {
		t.Errorf("ordering violated: %v", cpi)
	}
}
