// Package sim assembles complete simulation setups: it maps the paper's
// named front-end configurations (NL, FDP, Boomerang, Jukebox,
// Boomerang+JB, Confluence, Ignite, Ignite+TAGE, Confluence+Ignite, Ideal)
// onto an engine configuration plus the companion mechanisms each needs,
// and runs them under the lukewarm protocol.
package sim

import (
	"context"
	"fmt"

	"ignite/internal/cfg"
	"ignite/internal/check"
	"ignite/internal/engine"
	"ignite/internal/faults"
	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/memsys"
	"ignite/internal/obs"
	"ignite/internal/prefetch"
	"ignite/internal/workload"
)

// Kind names a front-end configuration from the paper.
type Kind string

const (
	// KindNL is the baseline: aggressive next-line instruction prefetch
	// plus stride data prefetch (active in every other configuration).
	KindNL Kind = "nl"
	// KindFDP adds the decoupled fetch-directed prefetcher.
	KindFDP Kind = "fdp"
	// KindBoomerang adds Boomerang's BTB-fill to FDP.
	KindBoomerang Kind = "boomerang"
	// KindJukebox is NL plus the Jukebox L2 instruction-region
	// record/replay prefetcher.
	KindJukebox Kind = "jukebox"
	// KindBoomerangJB combines Boomerang and Jukebox.
	KindBoomerangJB Kind = "boomerang+jb"
	// KindConfluence is the temporal-streaming unified prefetcher.
	KindConfluence Kind = "confluence"
	// KindIgnite is Ignite on top of FDP (the paper's configuration).
	KindIgnite Kind = "ignite"
	// KindIgniteTAGE additionally preserves the TAGE tables across the
	// thrash — the upper-bound variant of Section 6.1.
	KindIgniteTAGE Kind = "ignite+tage"
	// KindConfluenceIgnite pairs Confluence with Ignite (Section 6.5).
	KindConfluenceIgnite Kind = "confluence+ignite"
	// KindFDPIgnite is a synonym configuration name used in Figure 12.
	KindFDPIgnite Kind = "fdp+ignite"
	// KindIdeal is the ideal front-end: perfect L1-I and BTB with a
	// pre-trained (preserved) CBP.
	KindIdeal Kind = "ideal"
)

// Kinds lists every configuration in presentation order.
func Kinds() []Kind {
	return []Kind{KindNL, KindFDP, KindBoomerang, KindJukebox, KindBoomerangJB,
		KindConfluence, KindIgnite, KindIgniteTAGE, KindConfluenceIgnite, KindIdeal}
}

// Tweaks adjusts a setup for the sensitivity studies.
type Tweaks struct {
	// Keep preserves extra structures across the thrash (Figs 4, 5).
	Keep lukewarm.Preserve
	// BIMPolicy overrides Ignite's bimodal initialization (Fig 11).
	// Nil means the configuration default.
	BIMPolicy *ignite.BIMPolicy
	// DoubleBuffer records while replaying (worst-case bandwidth,
	// Fig 10).
	DoubleBuffer bool
	// ThrottleThreshold overrides Ignite's replay throttle (0 = default).
	ThrottleThreshold int
	// MetadataBytes overrides Ignite's metadata budget (0 = default).
	MetadataBytes int
	// BTBEntries overrides the BTB capacity (0 = default 12K).
	BTBEntries int
	// L2KiB overrides the L2 capacity in KiB (0 = default 1280); see
	// WithL2KiB for the geometry constraint.
	L2KiB int
}

// Setup is a ready-to-run simulation of one (function, configuration) pair.
type Setup struct {
	Kind Kind
	Spec workload.Spec
	Prog *cfg.Program
	Eng  *engine.Engine

	Store      *memsys.Store
	Mechanisms []lukewarm.Mechanism
	Keep       lukewarm.Preserve

	Ignite     *ignite.Ignite
	Jukebox    *prefetch.Jukebox
	Confluence *prefetch.Confluence

	// TraceProvider, when set, supplies shared pre-generated invocation
	// traces to the protocol (see lukewarm.TraceProvider).
	TraceProvider lukewarm.TraceProvider

	// Checks is the runtime invariant auditor, non-nil when the setup was
	// built with WithChecks (or under IGNITE_CHECKS). It is already
	// installed as the engine's post-invocation hook; Run additionally
	// audits the aggregate result laws through it.
	Checks *check.Invariants

	// faults is the armed injection plan (nil = injection off); Run fires
	// it before executing the protocol.
	faults *faults.Plan
}

// New builds the setup for a workload under the named configuration.
// Behaviour is adjusted through functional options: for example
//
//	sim.New(spec, sim.KindIgnite, sim.WithBTBEntries(6144), sim.WithDoubleBuffer())
func New(spec workload.Spec, kind Kind, opts ...Option) (*Setup, error) {
	prog, _, err := spec.Build()
	if err != nil {
		return nil, err
	}
	return NewWithProgram(spec, prog, kind, opts...)
}

// NewWithProgram is New for a pre-built program (reuse across setups).
func NewWithProgram(spec workload.Spec, prog *cfg.Program, kind Kind, opts ...Option) (*Setup, error) {
	set := applyOptions(opts)
	tw := set.tw
	ec := engine.DefaultConfig()
	ec.Data = spec.Data
	ec.MaxCycles = set.maxCycles
	if tw.BTBEntries > 0 {
		ec.BTB.Entries = tw.BTBEntries
	}
	if tw.L2KiB > 0 {
		ec.L2SizeBytes = tw.L2KiB << 10
	}

	useIgnite := false
	useJukebox := false
	useConfluence := false

	switch kind {
	case KindNL:
	case KindFDP:
		ec.FDPEnabled = true
	case KindBoomerang:
		ec.FDPEnabled = true
		ec.BoomerangEnabled = true
	case KindJukebox:
		useJukebox = true
	case KindBoomerangJB:
		ec.FDPEnabled = true
		ec.BoomerangEnabled = true
		useJukebox = true
	case KindConfluence:
		useConfluence = true
	case KindIgnite, KindFDPIgnite:
		ec.FDPEnabled = true
		useIgnite = true
	case KindIgniteTAGE:
		ec.FDPEnabled = true
		useIgnite = true
		tw.Keep.TAGE = true
	case KindConfluenceIgnite:
		useConfluence = true
		useIgnite = true
	case KindIdeal:
		ec.FDPEnabled = true
		ec.PerfectL1I = true
		ec.PerfectBTB = true
		tw.Keep.BIM = true
		tw.Keep.TAGE = true
	default:
		return nil, fmt.Errorf("sim: unknown configuration %q", kind)
	}

	eng := engine.New(prog, ec)
	if set.tracer != nil {
		eng.SetTracer(set.tracer)
	}
	s := &Setup{
		Kind:   kind,
		Spec:   spec,
		Prog:   prog,
		Eng:    eng,
		Store:  memsys.NewStore(),
		Keep:   tw.Keep,
		faults: set.faults,
	}

	if useJukebox {
		s.Jukebox = prefetch.NewJukebox(prefetch.DefaultJukeboxConfig(), eng, s.Store, spec.Name)
		eng.AddCompanion(s.Jukebox)
		s.Mechanisms = append(s.Mechanisms, s.Jukebox)
	}
	if useConfluence {
		s.Confluence = prefetch.NewConfluence(prefetch.DefaultConfluenceConfig(), eng)
		eng.AddCompanion(s.Confluence)
		s.Mechanisms = append(s.Mechanisms, s.Confluence)
	}
	if useIgnite {
		igCfg := ignite.DefaultConfig()
		igCfg.DoubleBuffer = tw.DoubleBuffer
		if tw.BIMPolicy != nil {
			igCfg.Replay.Policy = *tw.BIMPolicy
		}
		if tw.ThrottleThreshold > 0 {
			igCfg.Replay.ThrottleThreshold = tw.ThrottleThreshold
		}
		if tw.MetadataBytes > 0 {
			igCfg.MetadataBytes = tw.MetadataBytes
		}
		s.Ignite = ignite.New(igCfg, eng, s.Store, spec.Name)
		s.Ignite.Install()
		s.Mechanisms = append(s.Mechanisms, igniteMechanism{s.Ignite})
	}
	if set.checks {
		s.Checks = check.New(eng)
		if s.Ignite != nil {
			s.Checks.AttachIgnite(s.Ignite)
		}
		eng.SetInvocationCheck(s.Checks.CheckInvocation)
	}
	return s, nil
}

// igniteMechanism adapts *ignite.Ignite to the lukewarm.Mechanism interface.
type igniteMechanism struct{ ig *ignite.Ignite }

func (m igniteMechanism) StartRecord() { m.ig.StartRecord() }
func (m igniteMechanism) StopRecord()  { m.ig.StopRecord() }
func (m igniteMechanism) ArmReplay()   { m.ig.ArmReplay() }

// RegisterMetrics registers the setup's engine metrics plus those of every
// attached mechanism into reg. Labels carry only component dimensions: a
// registry is scoped to one (workload, config) cell, whose identity the
// caller tracks (per-cell snapshots are keyed by cell in the exported
// documents).
func (s *Setup) RegisterMetrics(reg *obs.Registry) {
	var labels obs.Labels
	s.Eng.RegisterMetrics(reg, labels)
	if s.Ignite != nil {
		s.Ignite.RegisterMetrics(reg, labels)
	}
	if s.Jukebox != nil {
		s.Jukebox.RegisterMetrics(reg, labels)
	}
	if s.Confluence != nil {
		s.Confluence.RegisterMetrics(reg, labels)
	}
}

// Run executes the lukewarm protocol in the given mode. With checks
// enabled, per-invocation invariants are audited inside the protocol and
// the aggregate result laws afterwards.
func (s *Setup) Run(mode lukewarm.Mode) (*lukewarm.Result, error) {
	// Fault-injection hook for single-cell runs (the experiment scheduler
	// fires its own plan at the experiment site instead). Nil-safe no-op.
	if err := s.faults.Fire(context.Background(),
		faults.Site{Workload: s.Spec.Name, Config: string(s.Kind)}); err != nil {
		return nil, err
	}
	res, err := lukewarm.Run(s.Eng, lukewarm.Options{
		MaxInstr:   s.Spec.MaxInstr(),
		Mode:       mode,
		Keep:       s.Keep,
		Mechanisms: s.Mechanisms,
		// The base is computed, so mark it explicitly set: a workload
		// with Gen.Seed 0 must not be silently rebased onto
		// lukewarm.DefaultSeedBase.
		SeedBase:    s.Spec.Gen.Seed * 1000,
		SeedBaseSet: true,
		Traces:      s.TraceProvider,
	})
	if err != nil {
		return nil, err
	}
	if s.Checks != nil {
		if cerr := check.VerifyResult(res); cerr != nil {
			return nil, fmt.Errorf("sim: result invariant check (%s/%s, %s): %w",
				s.Spec.Name, s.Kind, mode, cerr)
		}
	}
	return res, nil
}
