package sim

import (
	"ignite/internal/check"
	"ignite/internal/faults"
	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
)

// Option configures a Setup under construction. Options replace the old
// positional Tweaks argument: callers state only the knobs they change.
type Option func(*settings)

// settings is the resolved option set. Tweaks remains the internal carrier
// so the experiment layer can keep canonical tweak-based cache keys.
type settings struct {
	tw        Tweaks
	tracer    obs.Tracer
	checks    bool
	maxCycles uint64
	faults    *faults.Plan
}

func applyOptions(opts []Option) settings {
	// The IGNITE_CHECKS environment gate turns on invariant checking for
	// every setup built while it is set (the CI smoke path); WithChecks
	// enables it per setup.
	s := settings{checks: check.EnvEnabled()}
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	return s
}

// WithKeep preserves extra structures across the thrash (Figs 4, 5).
func WithKeep(k lukewarm.Preserve) Option {
	return func(s *settings) { s.tw.Keep = k }
}

// WithBIMPolicy overrides Ignite's bimodal initialization policy (Fig 11).
func WithBIMPolicy(p ignite.BIMPolicy) Option {
	return func(s *settings) { s.tw.BIMPolicy = &p }
}

// WithDoubleBuffer records while replaying — the worst-case metadata
// bandwidth configuration of Figure 10.
func WithDoubleBuffer() Option {
	return func(s *settings) { s.tw.DoubleBuffer = true }
}

// WithThrottleThreshold overrides Ignite's replay throttle (Fig abl).
func WithThrottleThreshold(n int) Option {
	return func(s *settings) { s.tw.ThrottleThreshold = n }
}

// WithMetadataBytes overrides Ignite's metadata budget.
func WithMetadataBytes(n int) Option {
	return func(s *settings) { s.tw.MetadataBytes = n }
}

// WithBTBEntries overrides the BTB capacity (default 12K entries).
func WithBTBEntries(n int) Option {
	return func(s *settings) { s.tw.BTBEntries = n }
}

// WithL2KiB overrides the L2 capacity in KiB (default Table 2's 1280 KiB).
// The hierarchy keeps its 20-way geometry, so the size must leave a
// power-of-two set count: 320, 640, 1280, 2560, ... KiB.
func WithL2KiB(n int) Option {
	return func(s *settings) { s.tw.L2KiB = n }
}

// WithChecks enables runtime invariant checking: after every invocation the
// engine's state is audited against the conservation laws in internal/check,
// and a violation aborts the run with a structured check.Violation error.
func WithChecks() Option {
	return func(s *settings) { s.checks = true }
}

// WithTracer installs an obs.Tracer on the setup's engine, receiving
// invocation and replay lifecycle events.
func WithTracer(t obs.Tracer) Option {
	return func(s *settings) { s.tracer = t }
}

// WithMaxCycles arms the engine's per-invocation cycle-budget watchdog
// (0 = unlimited): an invocation that exceeds the budget aborts with
// engine.ErrCycleBudget instead of hanging its scheduler worker. The
// watchdog can only abort a run, never alter a completing one.
func WithMaxCycles(n uint64) Option {
	return func(s *settings) { s.maxCycles = n }
}

// WithFaults arms a fault-injection plan on the setup: Run fires it at the
// ("", workload, kind) site before executing the protocol, so chaos tests
// and the IGNITE_FAULTS CLI gate can exercise single-cell runs too.
func WithFaults(p *faults.Plan) Option {
	return func(s *settings) { s.faults = p }
}

// WithTweaks applies a whole Tweaks bundle at once.
//
// Deprecated: new code should use the individual With* options; this bridge
// exists for callers (such as the experiment cell cache) that carry Tweaks
// values as canonical, comparable configuration keys.
func WithTweaks(tw Tweaks) Option {
	return func(s *settings) {
		if tw.Keep != (lukewarm.Preserve{}) {
			s.tw.Keep = tw.Keep
		}
		if tw.BIMPolicy != nil {
			s.tw.BIMPolicy = tw.BIMPolicy
		}
		if tw.DoubleBuffer {
			s.tw.DoubleBuffer = true
		}
		if tw.ThrottleThreshold != 0 {
			s.tw.ThrottleThreshold = tw.ThrottleThreshold
		}
		if tw.MetadataBytes != 0 {
			s.tw.MetadataBytes = tw.MetadataBytes
		}
		if tw.BTBEntries != 0 {
			s.tw.BTBEntries = tw.BTBEntries
		}
		if tw.L2KiB != 0 {
			s.tw.L2KiB = tw.L2KiB
		}
	}
}
