package cfg

import (
	"fmt"
	"math/rand/v2"
)

// Step is one dynamic basic-block execution. Taken reports whether the
// block's terminator transferred control non-sequentially; for taken
// branches the dynamic target is the next step's block.
type Step struct {
	Block BlockID
	Taken bool
}

// WalkOptions controls dynamic trace generation.
type WalkOptions struct {
	// Seed drives every random decision (branch directions, loop trip
	// counts, indirect targets). The same seed reproduces the same trace
	// bit-for-bit; different seeds model distinct invocations of the same
	// function with high control-flow commonality.
	Seed uint64
	// MaxInstr stops the walk once this many instructions have been
	// emitted (0 = unlimited). Models the finite length of a serverless
	// invocation.
	MaxInstr uint64
	// MaxDepth bounds the call depth (default 128). Exceeding it is an
	// error: generated programs have DAG call graphs and bounded depth.
	MaxDepth int
	// Scratch, when non-nil, supplies reusable walk storage (RNG and
	// per-block execution counters) so repeated walks of the same program
	// allocate nothing. A scratch must not be shared between concurrent
	// walks; results are bit-identical with or without one.
	Scratch *WalkScratch
}

// WalkScratch holds the allocation-heavy state of a walk for reuse across
// invocations. The zero value is ready to use.
type WalkScratch struct {
	pcg        *rand.PCG
	rng        *rand.Rand
	execCounts []uint32
}

// rand reseeds (or lazily builds) the scratch RNG for a new walk.
func (s *WalkScratch) rand(seed uint64) *rand.Rand {
	if s.pcg == nil {
		s.pcg = rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
		s.rng = rand.New(s.pcg)
	} else {
		s.pcg.Seed(seed, seed^0x9e3779b97f4a7c15)
	}
	return s.rng
}

// counts returns a zeroed per-block counter slice of length n.
func (s *WalkScratch) counts(n int) []uint32 {
	if cap(s.execCounts) < n {
		s.execCounts = make([]uint32, n)
	} else {
		s.execCounts = s.execCounts[:n]
		clear(s.execCounts)
	}
	return s.execCounts
}

// WalkResult summarizes a completed walk.
type WalkResult struct {
	Instrs    uint64 // dynamic instructions emitted
	Steps     uint64 // dynamic blocks emitted
	Truncated bool   // stopped by MaxInstr or by the emit callback
}

// ErrDepth is returned when the walk exceeds MaxDepth.
var ErrDepth = fmt.Errorf("cfg: call depth limit exceeded")

type walker struct {
	p     *Program
	rng   *rand.Rand
	emit  func(Step) bool
	opt   WalkOptions
	res   WalkResult
	depth int
	err   error
	// execCounts tracks per-block execution counts for deterministic
	// periodic branches, indexed by BlockID.
	execCounts []uint32
}

// Walk generates a dynamic execution trace of the function with index entry,
// invoking emit for every executed basic block in order. emit may return
// false to stop the walk early. Walk reports the trace size and whether it
// was truncated.
func (p *Program) Walk(entry int, opt WalkOptions, emit func(Step) bool) (WalkResult, error) {
	if !p.finalized {
		return WalkResult{}, fmt.Errorf("cfg: walk of non-finalized program")
	}
	if entry < 0 || entry >= len(p.Funcs) {
		return WalkResult{}, fmt.Errorf("cfg: walk entry %d out of range", entry)
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = 128
	}
	w := walker{
		p:    p,
		emit: emit,
		opt:  opt,
	}
	if opt.Scratch != nil {
		w.rng = opt.Scratch.rand(opt.Seed)
		w.execCounts = opt.Scratch.counts(len(p.Blocks))
	} else {
		w.rng = rand.New(rand.NewPCG(opt.Seed, opt.Seed^0x9e3779b97f4a7c15))
		w.execCounts = make([]uint32, len(p.Blocks))
	}
	w.walkFunc(entry)
	return w.res, w.err
}

// step emits one block execution; it returns false when the walk must stop.
func (w *walker) step(blk BlockID, taken bool) bool {
	b := &w.p.Blocks[blk]
	if !w.emit(Step{Block: blk, Taken: taken}) {
		w.res.Truncated = true
		return false
	}
	w.res.Steps++
	w.res.Instrs += uint64(b.NumInstr)
	if w.opt.MaxInstr > 0 && w.res.Instrs >= w.opt.MaxInstr {
		w.res.Truncated = true
		return false
	}
	return true
}

func (w *walker) walkFunc(fi int) bool {
	if w.depth >= w.opt.MaxDepth {
		w.err = ErrDepth
		return false
	}
	w.depth++
	defer func() { w.depth-- }()
	f := &w.p.Funcs[fi]
	if f.Body != nil {
		if !w.walkNode(f.Body) {
			return false
		}
	}
	return w.step(f.Ret, true)
}

func (w *walker) walkNode(n Node) bool {
	switch v := n.(type) {
	case *Straight:
		return w.step(v.blk, false)
	case *Seq:
		for _, c := range v.Nodes {
			if !w.walkNode(c) {
				return false
			}
		}
		return true
	case *If:
		var thenTaken bool
		if v.Period >= 2 {
			cnt := w.execCounts[v.condBlk]
			w.execCounts[v.condBlk]++
			thenTaken = cnt%uint32(v.Period) != 0
		} else {
			thenTaken = w.rng.Float64() < v.ThenBias
		}
		// The lowered conditional is taken when control skips the
		// then-part.
		if !w.step(v.condBlk, !thenTaken) {
			return false
		}
		if thenTaken {
			if !w.walkNode(v.Then) {
				return false
			}
			if v.jmpBlk != NoBlock {
				return w.step(v.jmpBlk, true)
			}
			return true
		}
		if v.Else != nil {
			return w.walkNode(v.Else)
		}
		return true
	case *Loop:
		var trips int
		if v.Fixed {
			trips = int(v.MeanTrips + 0.5)
			if trips < 1 {
				trips = 1
			}
		} else {
			trips = w.sampleTrips(v.MeanTrips)
		}
		for i := 0; i < trips; i++ {
			if !w.walkNode(v.Body) {
				return false
			}
			back := i < trips-1
			if !w.step(v.latchBlk, back) {
				return false
			}
		}
		return true
	case *Call:
		if !w.step(v.blk, true) {
			return false
		}
		return w.walkFunc(v.Callee)
	case *IndirectCall:
		callee := v.Callees[w.sampleIndex(v.Weights, len(v.Callees))]
		if !w.step(v.blk, true) {
			return false
		}
		return w.walkFunc(callee)
	case *Switch:
		ci := w.sampleIndex(v.Weights, len(v.Cases))
		if !w.step(v.dispatchBlk, true) {
			return false
		}
		if !w.walkNode(v.Cases[ci]) {
			return false
		}
		if ci < len(v.Cases)-1 {
			return w.step(v.caseJmps[ci], true)
		}
		return true
	default:
		w.err = fmt.Errorf("cfg: unknown node type %T", n)
		return false
	}
}

// sampleTrips draws a loop trip count around the mean with ±25% jitter,
// modeling the stable trip counts typical of real code.
func (w *walker) sampleTrips(mean float64) int {
	if mean <= 1 {
		return 1
	}
	t := int(mean*(0.75+0.5*w.rng.Float64()) + 0.5)
	if t < 1 {
		t = 1
	}
	return t
}

// sampleIndex draws an index in [0,n) according to weights; nil or
// mismatched weights yield a uniform draw.
func (w *walker) sampleIndex(weights []float64, n int) int {
	if n <= 1 {
		return 0
	}
	if len(weights) != n {
		return w.rng.IntN(n)
	}
	var total float64
	for _, wt := range weights {
		total += wt
	}
	if total <= 0 {
		return w.rng.IntN(n)
	}
	x := w.rng.Float64() * total
	for i, wt := range weights {
		x -= wt
		if x < 0 {
			return i
		}
	}
	return n - 1
}
