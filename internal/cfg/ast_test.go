package cfg

import "testing"

// buildSwitchy constructs a program exercising Switch and IndirectCall.
func buildSwitchy(t *testing.T) (*Program, *Switch, *IndirectCall) {
	t.Helper()
	p := NewProgram("switchy")
	sw := &Switch{
		PreN: 2,
		Cases: []Node{
			&Straight{N: 3},
			&Straight{N: 4},
			&Straight{N: 5},
		},
		Weights: []float64{1, 1, 1},
	}
	ic := &IndirectCall{PreN: 1, Callees: []int{1, 2}, Weights: []float64{1, 3}}
	p.AddFunction("main", &Seq{Nodes: []Node{sw, ic, &Straight{N: 2}}}, 1)
	p.AddFunction("callee1", &Straight{N: 4}, 1)
	p.AddFunction("callee2", &Straight{N: 6}, 1)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, sw, ic
}

func TestSwitchLowering(t *testing.T) {
	p, sw, _ := buildSwitchy(t)
	d := p.Block(sw.dispatchBlk)
	if d.Kind != BranchIndirectJump {
		t.Fatalf("dispatch kind = %v", d.Kind)
	}
	if len(d.IndirectTargets) != 3 {
		t.Fatalf("dispatch has %d targets", len(d.IndirectTargets))
	}
	// Case entries must match the recorded indirect targets.
	for i, tgt := range d.IndirectTargets {
		if tgt != sw.caseEntries[i] {
			t.Errorf("target %d = %d, want %d", i, tgt, sw.caseEntries[i])
		}
	}
	// All but the last case end with a jump to the switch's end.
	if len(sw.caseJmps) != 2 {
		t.Fatalf("got %d case jumps, want 2", len(sw.caseJmps))
	}
	end := sw.caseEntries[2] + 1 // block after last case body
	for _, j := range sw.caseJmps {
		if p.Block(j).Kind != BranchUncond {
			t.Errorf("case jump %d not unconditional", j)
		}
		if p.Block(j).Target != end {
			t.Errorf("case jump target %d, want %d", p.Block(j).Target, end)
		}
	}
}

func TestIndirectCallLowering(t *testing.T) {
	p, _, ic := buildSwitchy(t)
	b := p.Block(ic.blk)
	if b.Kind != BranchIndirectCall {
		t.Fatalf("icall kind = %v", b.Kind)
	}
	if len(b.IndirectTargets) != 2 {
		t.Fatalf("icall has %d targets", len(b.IndirectTargets))
	}
	if b.IndirectTargets[0] != p.Funcs[1].Entry || b.IndirectTargets[1] != p.Funcs[2].Entry {
		t.Error("icall targets are not the callee entries")
	}
}

func TestWalkSwitchConsistency(t *testing.T) {
	p, sw, ic := buildSwitchy(t)
	caseCounts := make(map[BlockID]int)
	calleeCounts := make(map[BlockID]int)
	for seed := uint64(0); seed < 60; seed++ {
		var prev Step
		havePrev := false
		_, err := p.Walk(0, WalkOptions{Seed: seed}, func(s Step) bool {
			if havePrev && prev.Taken {
				pb := p.Block(prev.Block)
				if pb.ID == sw.dispatchBlk {
					caseCounts[s.Block]++
				}
				if pb.ID == ic.blk {
					calleeCounts[s.Block]++
				}
			}
			prev, havePrev = s, true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// All three cases should be exercised across 60 seeds.
	if len(caseCounts) != 3 {
		t.Errorf("switch exercised %d cases, want 3 (%v)", len(caseCounts), caseCounts)
	}
	// Both callees should be taken; callee2 (weight 3) more often.
	c1 := calleeCounts[p.Funcs[1].Entry]
	c2 := calleeCounts[p.Funcs[2].Entry]
	if c1 == 0 || c2 == 0 {
		t.Fatalf("callees: %d/%d", c1, c2)
	}
	if c2 <= c1 {
		t.Errorf("weighted callee2 (%d) should dominate callee1 (%d)", c2, c1)
	}
}

func TestShuffledLayoutIsPermutation(t *testing.T) {
	build := func(seed uint64) *Program {
		p := NewProgram("x")
		p.LayoutSeed = seed
		for i := 0; i < 6; i++ {
			p.AddFunction("f", &Straight{N: 8}, 1)
		}
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := build(0) // unshuffled: entries in index order
	b := build(7) // shuffled
	var orderA, orderB []int
	collect := func(p *Program) []int {
		type fa struct {
			fi   int
			addr uint64
		}
		var fs []fa
		for i := range p.Funcs {
			fs = append(fs, fa{i, p.Block(p.Funcs[i].Entry).Addr})
		}
		for i := 0; i < len(fs); i++ {
			for j := i + 1; j < len(fs); j++ {
				if fs[j].addr < fs[i].addr {
					fs[i], fs[j] = fs[j], fs[i]
				}
			}
		}
		var order []int
		for _, f := range fs {
			order = append(order, f.fi)
		}
		return order
	}
	orderA = collect(a)
	orderB = collect(b)
	same := true
	seen := map[int]bool{}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			same = false
		}
		seen[orderB[i]] = true
	}
	if same {
		t.Error("layout seed did not shuffle function order")
	}
	if len(seen) != 6 {
		t.Error("shuffled layout lost functions")
	}
	// BlockAt still works on the shuffled program.
	for i := range b.Blocks {
		blk := &b.Blocks[i]
		if got := b.BlockAt(blk.Addr); got == nil || got.ID != blk.ID {
			t.Fatalf("BlockAt broken under shuffle for block %d", blk.ID)
		}
	}
}

func TestPeriodicBiasInLowering(t *testing.T) {
	p := NewProgram("per")
	p.AddFunction("f", &If{CondN: 1, Then: &Straight{N: 1}, Period: 4}, 1)
	p.Finalize()
	cond := p.Block(p.Funcs[0].Entry)
	if cond.Bias != 0.25 {
		t.Errorf("period-4 branch bias = %v, want 0.25", cond.Bias)
	}
}
