package cfg

import (
	"testing"
	"testing/quick"
)

func collect(t *testing.T, p *Program, opt WalkOptions) ([]Step, WalkResult) {
	t.Helper()
	var steps []Step
	res, err := p.Walk(0, opt, func(s Step) bool {
		steps = append(steps, s)
		return true
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	return steps, res
}

func TestWalkDeterministic(t *testing.T) {
	p := buildTiny(t)
	a, _ := collect(t, p, WalkOptions{Seed: 42})
	b, _ := collect(t, p, WalkOptions{Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWalkSeedsDiffer(t *testing.T) {
	p := buildTiny(t)
	// With bias .8 and several random draws, different seeds should
	// eventually produce different traces.
	base, _ := collect(t, p, WalkOptions{Seed: 1})
	for seed := uint64(2); seed < 30; seed++ {
		s, _ := collect(t, p, WalkOptions{Seed: seed})
		if len(s) != len(base) {
			return
		}
		for i := range s {
			if s[i] != base[i] {
				return
			}
		}
	}
	t.Error("30 different seeds produced identical traces")
}

// TestWalkPathConsistency verifies the fundamental trace invariant: each
// step's successor matches the block's control flow (taken -> target or a
// call/return transfer; not-taken -> fall-through).
func TestWalkPathConsistency(t *testing.T) {
	p := buildTiny(t)
	steps, _ := collect(t, p, WalkOptions{Seed: 7})
	var ras []BlockID // return-site stack
	for i := 0; i < len(steps)-1; i++ {
		cur := p.Block(steps[i].Block)
		next := steps[i+1].Block
		if steps[i].Taken {
			switch cur.Kind {
			case BranchCall, BranchIndirectCall:
				ras = append(ras, cur.Fall)
				// Next block must be some function entry.
				found := false
				for fi := range p.Funcs {
					if p.Funcs[fi].Entry == next {
						found = true
					}
				}
				if !found {
					t.Fatalf("step %d: call to non-entry block %d", i, next)
				}
			case BranchReturn:
				if len(ras) == 0 {
					t.Fatalf("step %d: return with empty stack", i)
				}
				want := ras[len(ras)-1]
				ras = ras[:len(ras)-1]
				if next != want {
					t.Fatalf("step %d: return to %d, want %d", i, next, want)
				}
			case BranchCond, BranchUncond:
				if next != cur.Target {
					t.Fatalf("step %d: taken %v to %d, want target %d", i, cur.Kind, next, cur.Target)
				}
			case BranchIndirectJump:
				found := false
				for _, tg := range cur.IndirectTargets {
					if tg == next {
						found = true
					}
				}
				if !found {
					t.Fatalf("step %d: ijump to %d not in targets", i, next)
				}
			default:
				t.Fatalf("step %d: taken on kind %v", i, cur.Kind)
			}
		} else {
			if cur.Kind == BranchUncond || cur.Kind == BranchReturn || cur.Kind == BranchIndirectJump {
				t.Fatalf("step %d: %v not taken", i, cur.Kind)
			}
			if next != cur.Fall {
				t.Fatalf("step %d: fall to %d, want %d", i, next, cur.Fall)
			}
		}
	}
	last := p.Block(steps[len(steps)-1].Block)
	if last.Kind != BranchReturn {
		t.Errorf("trace does not end in handler return (kind %v)", last.Kind)
	}
}

func TestWalkInstrBudgetTruncates(t *testing.T) {
	p := buildTiny(t)
	_, full := collect(t, p, WalkOptions{Seed: 3})
	_, cut := collect(t, p, WalkOptions{Seed: 3, MaxInstr: full.Instrs / 2})
	if !cut.Truncated {
		t.Error("budgeted walk not marked truncated")
	}
	if cut.Instrs > full.Instrs/2+64 {
		t.Errorf("budget overshoot: %d instrs for budget %d", cut.Instrs, full.Instrs/2)
	}
}

func TestWalkEmitAbort(t *testing.T) {
	p := buildTiny(t)
	n := 0
	res, err := p.Walk(0, WalkOptions{Seed: 3}, func(Step) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || n != 3 {
		t.Errorf("abort: truncated=%v emits=%d", res.Truncated, n)
	}
}

func TestWalkPeriodicBranchPattern(t *testing.T) {
	p := NewProgram("periodic")
	inner := &If{CondN: 1, Then: &Straight{N: 1}, Period: 4}
	p.AddFunction("f", &Loop{
		Body:      inner,
		MeanTrips: 16,
		LatchN:    1,
		Fixed:     true,
	}, 1)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	var outcomes []bool
	_, err := p.Walk(0, WalkOptions{Seed: 5}, func(s Step) bool {
		if s.Block == inner.condBlk {
			outcomes = append(outcomes, s.Taken)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 16 {
		t.Fatalf("cond executed %d times, want 16", len(outcomes))
	}
	for i, taken := range outcomes {
		want := i%4 == 0 // skip path (taken) exactly once per period
		if taken != want {
			t.Errorf("execution %d taken=%v, want %v", i, taken, want)
		}
	}
}

func TestWalkFixedLoopTrips(t *testing.T) {
	p := NewProgram("fixed")
	lp := &Loop{Body: &Straight{N: 2}, MeanTrips: 7, LatchN: 1, Fixed: true}
	p.AddFunction("f", lp, 1)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		taken, notTaken := 0, 0
		p.Walk(0, WalkOptions{Seed: seed}, func(s Step) bool {
			if s.Block == lp.latchBlk {
				if s.Taken {
					taken++
				} else {
					notTaken++
				}
			}
			return true
		})
		if taken != 6 || notTaken != 1 {
			t.Errorf("seed %d: latch taken %d notTaken %d, want 6/1", seed, taken, notTaken)
		}
	}
}

func TestWalkErrors(t *testing.T) {
	p := NewProgram("x")
	p.AddFunction("f", &Straight{N: 1}, 1)
	if _, err := p.Walk(0, WalkOptions{}, func(Step) bool { return true }); err == nil {
		t.Error("walk of non-finalized program should fail")
	}
	p.Finalize()
	if _, err := p.Walk(5, WalkOptions{}, func(Step) bool { return true }); err == nil {
		t.Error("walk of bad entry should fail")
	}
}

// Property: for any seed, instruction counts reported by WalkResult match
// the sum over emitted blocks.
func TestWalkInstrCountProperty(t *testing.T) {
	p := buildTiny(t)
	f := func(seed uint64) bool {
		var sum uint64
		res, err := p.Walk(0, WalkOptions{Seed: seed}, func(s Step) bool {
			sum += uint64(p.Block(s.Block).NumInstr)
			return true
		})
		return err == nil && res.Instrs == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
