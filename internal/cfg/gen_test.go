package cfg

import (
	"testing"
)

func genDefault(t *testing.T, seed uint64) (*Program, GenReport) {
	t.Helper()
	p, rep, err := Generate(GenParams{
		Seed:           seed,
		CodeKiB:        256,
		BranchSites:    6000,
		IndirectFrac:   0.3,
		PeriodicFrac:   0.08,
		NeverTakenFrac: 0.12,
		HardFrac:       0.06,
		ColdElseFrac:   0.08,
		FixedLoopFrac:  0.3,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return p, rep
}

func TestGenerateValidates(t *testing.T) {
	p, _ := genDefault(t, 1)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated program invalid: %v", err)
	}
}

func TestGenerateHitsCodeSizeTarget(t *testing.T) {
	_, rep := genDefault(t, 2)
	want := uint64(256 * 1024)
	if rep.CodeBytes < want/2 || rep.CodeBytes > want*2 {
		t.Errorf("code bytes = %d, want within 2x of %d", rep.CodeBytes, want)
	}
}

func TestGenerateHitsBranchSiteTarget(t *testing.T) {
	_, rep := genDefault(t, 3)
	if rep.TakenBranchSites < 3000 || rep.TakenBranchSites > 12000 {
		t.Errorf("taken branch sites = %d, want within 2x of 6000", rep.TakenBranchSites)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p1, r1 := genDefault(t, 9)
	p2, r2 := genDefault(t, 9)
	if r1 != r2 {
		t.Fatalf("reports differ: %+v vs %+v", r1, r2)
	}
	if len(p1.Blocks) != len(p2.Blocks) {
		t.Fatalf("block counts differ")
	}
	for i := range p1.Blocks {
		a, b := p1.Blocks[i], p2.Blocks[i]
		if a.Addr != b.Addr || a.NumInstr != b.NumInstr || a.Kind != b.Kind ||
			a.Target != b.Target || a.Bias != b.Bias {
			t.Fatalf("block %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestGenerateSeedsProduceDifferentPrograms(t *testing.T) {
	_, r1 := genDefault(t, 10)
	_, r2 := genDefault(t, 11)
	if r1 == r2 {
		t.Error("different seeds produced identical reports (suspicious)")
	}
}

// Every function must be reachable: walking a full invocation should touch
// a large majority of functions (coverage calls are on common paths).
func TestGenerateCoverage(t *testing.T) {
	p, rep := genDefault(t, 4)
	touched := make(map[int]bool)
	_, err := p.Walk(0, WalkOptions{Seed: 77, MaxInstr: 4_000_000}, func(s Step) bool {
		touched[p.Block(s.Block).Func] = true
		return true
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	frac := float64(len(touched)) / float64(rep.NumFuncs)
	if frac < 0.9 {
		t.Errorf("invocation touched %.0f%% of functions, want >= 90%%", frac*100)
	}
}

// The walk must terminate on its own (handler returns) well before the
// safety budget for default request-loop settings.
func TestGenerateWalkTerminates(t *testing.T) {
	p, _ := genDefault(t, 5)
	res, err := p.Walk(0, WalkOptions{Seed: 1, MaxInstr: 100_000_000}, func(Step) bool { return true })
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if res.Truncated {
		t.Errorf("walk truncated at %d instrs; expected natural termination", res.Instrs)
	}
	if res.Instrs == 0 {
		t.Error("empty walk")
	}
}

func TestGenerateDynamicStaticRatio(t *testing.T) {
	p, rep := genDefault(t, 6)
	res, err := p.Walk(0, WalkOptions{Seed: 2}, func(Step) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Instrs) / float64(rep.StaticInstrs)
	// Loops and the request loop should make dynamic length a small
	// multiple of static size.
	if ratio < 1 || ratio > 100 {
		t.Errorf("dynamic/static ratio = %.1f, want between 1 and 100", ratio)
	}
}

func TestGenerateBranchMix(t *testing.T) {
	p, _ := genDefault(t, 7)
	kinds := map[BranchKind]int{}
	for i := range p.Blocks {
		kinds[p.Blocks[i].Kind]++
	}
	for _, k := range []BranchKind{BranchCond, BranchUncond, BranchCall, BranchReturn, BranchIndirectJump} {
		if kinds[k] == 0 {
			t.Errorf("no blocks of kind %v generated", k)
		}
	}
	// With IndirectFrac 0.3 there should be some indirect calls too.
	if kinds[BranchIndirectCall] == 0 {
		t.Error("no indirect calls generated")
	}
}

func TestGenerateDefaultParams(t *testing.T) {
	p, rep, err := Generate(GenParams{Seed: 1})
	if err != nil {
		t.Fatalf("Generate with defaults: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.NumFuncs < 3 {
		t.Errorf("NumFuncs = %d", rep.NumFuncs)
	}
}
