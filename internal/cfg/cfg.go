// Package cfg defines the synthetic program representation used throughout
// the simulator: address-mapped basic blocks organized into functions, the
// structured AST from which functions are lowered, and a random program
// generator calibrated to serverless-function working sets.
//
// The paper's workloads are real Python/NodeJS/Go serverless functions run
// under gem5. We have no binaries, so we substitute synthetic programs whose
// static and dynamic control-flow properties (instruction working set,
// taken-branch working set, branch bias distribution, call depth, loop
// structure) match the paper's Figure 2 characterization. Lukewarm-invocation
// behaviour depends on exactly these properties, not on program semantics.
package cfg

import (
	"errors"
	"fmt"
)

// InstrBytes is the fixed instruction width of the synthetic ISA. The paper
// simulates x86 (variable length); using a fixed width changes nothing about
// front-end pressure because working sets are calibrated in bytes.
const InstrBytes = 4

// CacheLineBytes is the line size assumed when reasoning about code layout.
const CacheLineBytes = 64

// BlockID identifies a basic block within a Program. The zero Program has no
// blocks; NoBlock marks absent successors.
type BlockID int32

// NoBlock is the nil BlockID.
const NoBlock BlockID = -1

// BranchKind classifies a basic block's terminating control transfer.
type BranchKind uint8

const (
	// BranchNone: the block falls through to the next block with no
	// control-flow instruction.
	BranchNone BranchKind = iota
	// BranchCond: conditional branch; taken with probability Bias.
	BranchCond
	// BranchUncond: unconditional direct jump, always taken.
	BranchUncond
	// BranchCall: direct call, always taken; pushes a return address.
	BranchCall
	// BranchReturn: function return; target is dynamic (return address
	// stack).
	BranchReturn
	// BranchIndirectJump: indirect jump (switch table, interpreter
	// dispatch); target chosen among IndirectTargets.
	BranchIndirectJump
	// BranchIndirectCall: indirect call (virtual dispatch, function
	// pointer); like a call but with a dynamic target.
	BranchIndirectCall
)

// String returns a short human-readable name for the branch kind.
func (k BranchKind) String() string {
	switch k {
	case BranchNone:
		return "none"
	case BranchCond:
		return "cond"
	case BranchUncond:
		return "uncond"
	case BranchCall:
		return "call"
	case BranchReturn:
		return "return"
	case BranchIndirectJump:
		return "ijump"
	case BranchIndirectCall:
		return "icall"
	default:
		return fmt.Sprintf("BranchKind(%d)", uint8(k))
	}
}

// IsBranch reports whether the kind is an actual control-flow instruction
// (anything but fall-through).
func (k BranchKind) IsBranch() bool { return k != BranchNone }

// IsCall reports whether the kind pushes a return address.
func (k BranchKind) IsCall() bool {
	return k == BranchCall || k == BranchIndirectCall
}

// IsIndirect reports whether the branch target is dynamic.
func (k BranchKind) IsIndirect() bool {
	return k == BranchIndirectJump || k == BranchIndirectCall || k == BranchReturn
}

// Block is a basic block: a run of straight-line instructions ended either
// by a control-flow instruction (Kind != BranchNone) or by falling through
// to the next block in address order.
type Block struct {
	ID       BlockID
	Addr     uint64 // address of the first instruction
	NumInstr int    // instruction count, including the terminator if any

	Kind BranchKind
	// Target is the taken destination for direct branches (cond, uncond,
	// call) and the statically most likely destination for indirect
	// branches (used only as layout metadata; dynamic targets come from
	// the walker). NoBlock for returns and fall-through blocks.
	Target BlockID
	// Fall is the not-taken / fall-through successor in address order.
	// NoBlock for the last block of a function (the return block) and
	// for unconditional transfers.
	Fall BlockID
	// Bias is the probability the terminator is taken; meaningful only
	// for BranchCond.
	Bias float64
	// IndirectTargets enumerates the possible dynamic destinations of an
	// indirect jump/call.
	IndirectTargets []BlockID

	// Func is the index of the function that owns this block.
	Func int
}

// Bytes returns the code size of the block in bytes.
func (b *Block) Bytes() uint64 { return uint64(b.NumInstr) * InstrBytes }

// BranchPC returns the address of the terminating instruction. For
// fall-through blocks it returns the last instruction's address, which is
// never used as a branch PC.
func (b *Block) BranchPC() uint64 {
	return b.Addr + uint64(b.NumInstr-1)*InstrBytes
}

// EndAddr returns the address one past the last instruction.
func (b *Block) EndAddr() uint64 {
	return b.Addr + uint64(b.NumInstr)*InstrBytes
}

// CanBeTaken reports whether the block's terminator can ever transfer
// control non-sequentially, i.e. whether it could occupy a BTB entry.
func (b *Block) CanBeTaken() bool {
	switch b.Kind {
	case BranchNone:
		return false
	case BranchCond:
		return b.Bias > 0
	default:
		return true
	}
}

// Function is a lowered function: a contiguous range of blocks.
type Function struct {
	Index int
	Name  string
	Entry BlockID
	Ret   BlockID // the single return block (last block of the function)
	// Body is the structured form the function was lowered from; the
	// trace walker executes it. Nil only for hand-built block graphs.
	Body Node

	blocks []BlockID // all blocks, in address order
}

// Blocks returns the function's blocks in address order.
func (f *Function) Blocks() []BlockID { return f.blocks }

// Program is a complete synthetic program: a set of functions lowered to
// address-mapped basic blocks.
type Program struct {
	Name   string
	Blocks []Block
	Funcs  []Function

	// BaseAddr is the address of the first instruction.
	BaseAddr uint64
	// LayoutSeed, when nonzero, shuffles the order functions are laid
	// out in the address space at Finalize. Real binaries' link order is
	// uncorrelated with dynamic call order, which is what defeats pure
	// next-line prefetching across function boundaries.
	LayoutSeed uint64

	finalized   bool
	callFixups  []callFixup
	icallFixups []icallFixup
	// addrOrder holds block IDs sorted by address (built at Finalize);
	// with a shuffled layout, block IDs do not follow address order.
	addrOrder []BlockID
}

// NewProgram creates an empty program with the conventional code base
// address.
func NewProgram(name string) *Program {
	return &Program{Name: name, BaseAddr: 0x400000}
}

// Block returns the block with the given ID. It panics on NoBlock; callers
// must check first.
func (p *Program) Block(id BlockID) *Block { return &p.Blocks[id] }

// NumFuncs returns the number of functions.
func (p *Program) NumFuncs() int { return len(p.Funcs) }

// CodeBytes returns the total static code size in bytes.
func (p *Program) CodeBytes() uint64 {
	var total uint64
	for i := range p.Blocks {
		total += p.Blocks[i].Bytes()
	}
	return total
}

// NumInstr returns the total static instruction count.
func (p *Program) NumInstr() uint64 {
	var total uint64
	for i := range p.Blocks {
		total += uint64(p.Blocks[i].NumInstr)
	}
	return total
}

// StaticTakenBranchSites returns the number of static branch sites that can
// ever be taken — an upper bound on the program's BTB working set. Never-
// taken conditional branches are excluded, mirroring the paper's observation
// that they consume no BTB capacity.
func (p *Program) StaticTakenBranchSites() int {
	n := 0
	for i := range p.Blocks {
		if p.Blocks[i].CanBeTaken() {
			n++
		}
	}
	return n
}

// EndAddr returns one past the last code byte.
func (p *Program) EndAddr() uint64 {
	if len(p.Blocks) == 0 {
		return p.BaseAddr
	}
	return p.Blocks[len(p.Blocks)-1].EndAddr()
}

// Validate checks structural invariants: block IDs are consistent, targets
// and fall-throughs reference valid blocks, addresses are monotonically
// increasing and contiguous within functions, and every function ends in a
// return block. It returns the first violation found.
func (p *Program) Validate() error {
	if !p.finalized {
		return errors.New("cfg: program not finalized")
	}
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if b.ID != BlockID(i) {
			return fmt.Errorf("cfg: block %d has ID %d", i, b.ID)
		}
		if b.NumInstr <= 0 {
			return fmt.Errorf("cfg: block %d has %d instructions", i, b.NumInstr)
		}
		if b.Kind == BranchCond && (b.Bias < 0 || b.Bias > 1) {
			return fmt.Errorf("cfg: block %d bias %v out of range", i, b.Bias)
		}
		check := func(id BlockID, what string) error {
			if id == NoBlock {
				return nil
			}
			if id < 0 || int(id) >= len(p.Blocks) {
				return fmt.Errorf("cfg: block %d %s %d out of range", i, what, id)
			}
			return nil
		}
		if err := check(b.Target, "target"); err != nil {
			return err
		}
		if err := check(b.Fall, "fall"); err != nil {
			return err
		}
		for _, t := range b.IndirectTargets {
			if err := check(t, "indirect target"); err != nil {
				return err
			}
		}
		switch b.Kind {
		case BranchCond, BranchUncond, BranchCall:
			if b.Target == NoBlock {
				return fmt.Errorf("cfg: block %d (%v) lacks a target", i, b.Kind)
			}
		case BranchIndirectJump, BranchIndirectCall:
			if len(b.IndirectTargets) == 0 {
				return fmt.Errorf("cfg: block %d (%v) lacks indirect targets", i, b.Kind)
			}
		}
	}
	// Address-order invariants: no overlaps anywhere, contiguity within a
	// function.
	for i := 1; i < len(p.addrOrder); i++ {
		prev := p.Block(p.addrOrder[i-1])
		cur := p.Block(p.addrOrder[i])
		if cur.Addr < prev.EndAddr() {
			return fmt.Errorf("cfg: block %d addr %#x overlaps block %d", cur.ID, cur.Addr, prev.ID)
		}
	}
	for fi := range p.Funcs {
		f := &p.Funcs[fi]
		if len(f.blocks) == 0 {
			return fmt.Errorf("cfg: function %d has no blocks", fi)
		}
		if f.Entry != f.blocks[0] {
			return fmt.Errorf("cfg: function %d entry %d is not its first block", fi, f.Entry)
		}
		last := p.Block(f.blocks[len(f.blocks)-1])
		if last.Kind != BranchReturn {
			return fmt.Errorf("cfg: function %d does not end in a return", fi)
		}
		if f.Ret != last.ID {
			return fmt.Errorf("cfg: function %d Ret %d != last block %d", fi, f.Ret, last.ID)
		}
		for _, id := range f.blocks {
			if p.Block(id).Func != fi {
				return fmt.Errorf("cfg: block %d claims func %d, owned by %d", id, p.Block(id).Func, fi)
			}
		}
	}
	return nil
}

// BlockAt returns the block containing addr using binary search over the
// address-ordered index, or nil if addr is outside the program.
func (p *Program) BlockAt(addr uint64) *Block {
	lo, hi := 0, len(p.addrOrder)
	for lo < hi {
		mid := (lo + hi) / 2
		b := p.Block(p.addrOrder[mid])
		switch {
		case addr < b.Addr:
			hi = mid
		case addr >= b.EndAddr():
			lo = mid + 1
		default:
			return b
		}
	}
	return nil
}
