package cfg

import (
	"fmt"
	"math/rand/v2"
)

// Node is a structured control-flow construct. Functions are built as trees
// of nodes and lowered to address-mapped basic blocks; the trace walker
// later executes the same tree, so every node records the blocks it lowered
// to.
type Node interface {
	// lower appends this node's blocks to the lowerer and records their
	// IDs in the node for the walker.
	lower(lw *lowerer)
}

// Straight is a run of N straight-line instructions with no control flow.
type Straight struct {
	N   int
	blk BlockID
}

// Seq executes its children in order.
type Seq struct {
	Nodes []Node
}

// If is an if/then[/else] construct. The lowered shape follows compiled
// code: CondN setup instructions ending in a conditional branch that is
// TAKEN when control skips the then-part (i.e. taken probability is
// 1-ThenBias), an optional else-part reached via the taken path, and an
// unconditional jump over the else-part at the end of the then-part.
type If struct {
	CondN    int     // instructions in the condition block (>=1)
	ThenBias float64 // probability the then-part executes
	Then     Node
	Else     Node // may be nil
	// Period, when >= 2, makes the branch outcome deterministic and
	// history-correlated: the then-part is skipped exactly once every
	// Period executions (and ThenBias is ignored). Such branches are
	// mispredicted by a bimodal predictor but learnable by TAGE.
	Period int

	condBlk BlockID
	jmpBlk  BlockID // uncond jump over else; NoBlock when Else is nil
}

// Loop is a bottom-tested counted loop: the body executes MeanTrips times
// on average (at least once), with a backward conditional branch in the
// latch block.
type Loop struct {
	Body      Node
	MeanTrips float64 // mean trip count, >= 1
	LatchN    int     // instructions in the latch block (>=1)
	// Fixed makes the trip count exactly round(MeanTrips) on every
	// execution, which a loop predictor / TAGE can capture; otherwise
	// trips are jittered ±25% around the mean.
	Fixed bool

	bodyEntry BlockID
	latchBlk  BlockID
}

// Call is a direct call to another function, preceded by PreN setup
// instructions.
type Call struct {
	PreN   int
	Callee int // function index; must form a DAG (callee never recurses back)

	blk BlockID
}

// IndirectCall is a call through a function pointer / vtable slot. The
// callee is sampled from Callees with the given Weights on each execution.
type IndirectCall struct {
	PreN    int
	Callees []int
	Weights []float64

	blk BlockID
}

// Switch is a multi-way dispatch through an indirect jump (jump table or
// interpreter dispatch). Each case ends with a jump to the construct's end.
type Switch struct {
	PreN    int
	Cases   []Node
	Weights []float64

	dispatchBlk BlockID
	caseJmps    []BlockID // trailing jump of each case except the last
	caseEntries []BlockID
}

// lowerer builds a function's blocks inside a program.
type lowerer struct {
	p       *Program
	fn      int
	pending []BlockID // blocks whose Target resolves to the next appended block
}

// append adds a block, resolving pending forward targets to it.
func (lw *lowerer) append(b Block) BlockID {
	id := BlockID(len(lw.p.Blocks))
	b.ID = id
	b.Func = lw.fn
	for _, pid := range lw.pending {
		lw.p.Blocks[pid].Target = id
	}
	lw.pending = lw.pending[:0]
	lw.p.Blocks = append(lw.p.Blocks, b)
	return id
}

// deferTarget registers blk to have its Target patched to the next block.
func (lw *lowerer) deferTarget(blk BlockID) {
	lw.pending = append(lw.pending, blk)
}

func (s *Straight) lower(lw *lowerer) {
	n := s.N
	if n < 1 {
		n = 1
	}
	s.blk = lw.append(Block{NumInstr: n, Kind: BranchNone, Target: NoBlock})
}

func (s *Seq) lower(lw *lowerer) {
	for _, n := range s.Nodes {
		n.lower(lw)
	}
}

func (f *If) lower(lw *lowerer) {
	n := f.CondN
	if n < 1 {
		n = 1
	}
	bias := 1 - f.ThenBias
	if f.Period >= 2 {
		bias = 1 / float64(f.Period)
	}
	f.condBlk = lw.append(Block{NumInstr: n, Kind: BranchCond, Target: NoBlock, Bias: bias})
	cond := f.condBlk
	f.Then.lower(lw)
	if f.Else != nil {
		f.jmpBlk = lw.append(Block{NumInstr: 1, Kind: BranchUncond, Target: NoBlock})
		// The else entry is the next appended block.
		lw.deferTarget(cond)
		f.Else.lower(lw)
		// Resolve cond target now that else entry exists: deferTarget
		// resolved it at the first block of Else. The jump over the
		// else part resolves to whatever follows the whole construct.
		lw.deferTarget(f.jmpBlk)
		// Remove duplicate pending entry for cond if Else was empty in
		// blocks; cannot happen because every node appends >=1 block.
	} else {
		f.jmpBlk = NoBlock
		lw.deferTarget(cond)
	}
}

func (l *Loop) lower(lw *lowerer) {
	n := l.LatchN
	if n < 1 {
		n = 1
	}
	l.bodyEntry = BlockID(len(lw.p.Blocks))
	// Pending targets from the preceding construct resolve to the loop
	// body entry via the next append inside Body.
	l.Body.lower(lw)
	trips := l.MeanTrips
	if trips < 1 {
		trips = 1
	}
	bias := (trips - 1) / trips
	l.latchBlk = lw.append(Block{NumInstr: n, Kind: BranchCond, Target: l.bodyEntry, Bias: bias})
}

func (c *Call) lower(lw *lowerer) {
	n := c.PreN
	if n < 0 {
		n = 0
	}
	// Target is patched to the callee entry in Program finalization,
	// because the callee may not be lowered yet. Encode the callee
	// function index in Target temporarily via the calls fixup list.
	c.blk = lw.append(Block{NumInstr: n + 1, Kind: BranchCall, Target: NoBlock})
	lw.p.callFixups = append(lw.p.callFixups, callFixup{blk: c.blk, callee: c.Callee})
}

func (c *IndirectCall) lower(lw *lowerer) {
	n := c.PreN
	if n < 0 {
		n = 0
	}
	c.blk = lw.append(Block{NumInstr: n + 1, Kind: BranchIndirectCall, Target: NoBlock})
	lw.p.icallFixups = append(lw.p.icallFixups, icallFixup{blk: c.blk, callees: c.Callees})
}

func (s *Switch) lower(lw *lowerer) {
	n := s.PreN
	if n < 1 {
		n = 1
	}
	s.dispatchBlk = lw.append(Block{NumInstr: n, Kind: BranchIndirectJump, Target: NoBlock})
	s.caseEntries = s.caseEntries[:0]
	s.caseJmps = s.caseJmps[:0]
	for i, cs := range s.Cases {
		s.caseEntries = append(s.caseEntries, BlockID(len(lw.p.Blocks)))
		cs.lower(lw)
		if i < len(s.Cases)-1 {
			jmp := lw.append(Block{NumInstr: 1, Kind: BranchUncond, Target: NoBlock})
			s.caseJmps = append(s.caseJmps, jmp)
		}
	}
	// Every case-exit jump targets the block following the whole switch;
	// registering them only after all cases are lowered keeps them from
	// resolving to the next case's entry.
	for _, jmp := range s.caseJmps {
		lw.deferTarget(jmp)
	}
	d := &lw.p.Blocks[s.dispatchBlk]
	d.IndirectTargets = append([]BlockID(nil), s.caseEntries...)
	if len(s.caseEntries) > 0 {
		d.Target = s.caseEntries[0]
	}
}

type callFixup struct {
	blk    BlockID
	callee int
}

type icallFixup struct {
	blk     BlockID
	callees []int
}

// AddFunction lowers body as a new function and returns its index. A return
// block (RetN instructions ending in a return) is appended automatically.
func (p *Program) AddFunction(name string, body Node, retN int) int {
	if p.finalized {
		panic("cfg: AddFunction after Finalize")
	}
	idx := len(p.Funcs)
	lw := &lowerer{p: p, fn: idx}
	start := BlockID(len(p.Blocks))
	body.lower(lw)
	if retN < 1 {
		retN = 1
	}
	ret := lw.append(Block{NumInstr: retN, Kind: BranchReturn, Target: NoBlock})
	blocks := make([]BlockID, 0, int(ret-start)+1)
	for id := start; id <= ret; id++ {
		blocks = append(blocks, id)
	}
	p.Funcs = append(p.Funcs, Function{
		Index:  idx,
		Name:   name,
		Entry:  start,
		Ret:    ret,
		Body:   body,
		blocks: blocks,
	})
	return idx
}

// Finalize assigns addresses, resolves cross-function call targets and
// fall-through successors, and freezes the program. It must be called once
// after all functions are added.
func (p *Program) Finalize() error {
	if p.finalized {
		return fmt.Errorf("cfg: already finalized")
	}
	// Resolve direct call targets.
	for _, fx := range p.callFixups {
		if fx.callee < 0 || fx.callee >= len(p.Funcs) {
			return fmt.Errorf("cfg: call in block %d to unknown function %d", fx.blk, fx.callee)
		}
		p.Blocks[fx.blk].Target = p.Funcs[fx.callee].Entry
	}
	for _, fx := range p.icallFixups {
		tgts := make([]BlockID, 0, len(fx.callees))
		for _, c := range fx.callees {
			if c < 0 || c >= len(p.Funcs) {
				return fmt.Errorf("cfg: indirect call in block %d to unknown function %d", fx.blk, c)
			}
			tgts = append(tgts, p.Funcs[c].Entry)
		}
		b := &p.Blocks[fx.blk]
		b.IndirectTargets = tgts
		if len(tgts) > 0 {
			b.Target = tgts[0]
		}
	}
	p.callFixups = nil
	p.icallFixups = nil

	// Assign addresses: functions contiguous, 64-byte aligned entries.
	// With a layout seed, functions are placed in shuffled order (link
	// order is uncorrelated with call order in real binaries).
	order := make([]int, len(p.Funcs))
	for i := range order {
		order[i] = i
	}
	if p.LayoutSeed != 0 {
		rng := rand.New(rand.NewPCG(p.LayoutSeed, p.LayoutSeed^0x1a2b3c4d5e6f7788))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	addr := p.BaseAddr
	for _, fi := range order {
		if rem := addr % CacheLineBytes; rem != 0 {
			addr += CacheLineBytes - rem
		}
		for _, id := range p.Funcs[fi].blocks {
			b := &p.Blocks[id]
			b.Addr = addr
			addr += b.Bytes()
		}
	}

	// Fall-through successors: the next block within the same function,
	// except for blocks that never fall through.
	for fi := range p.Funcs {
		blocks := p.Funcs[fi].blocks
		for i, id := range blocks {
			b := &p.Blocks[id]
			switch b.Kind {
			case BranchUncond, BranchReturn, BranchIndirectJump:
				b.Fall = NoBlock
			default:
				if i+1 < len(blocks) {
					b.Fall = blocks[i+1]
				} else {
					b.Fall = NoBlock
				}
			}
		}
	}
	// Build the address-ordered block index.
	p.addrOrder = make([]BlockID, 0, len(p.Blocks))
	for _, fi := range order {
		p.addrOrder = append(p.addrOrder, p.Funcs[fi].blocks...)
	}
	p.finalized = true
	return nil
}
