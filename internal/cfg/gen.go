package cfg

import (
	"fmt"
	"math/rand/v2"
)

// GenParams parameterizes the synthetic program generator. The defaults
// (applied by Generate for zero fields) describe a mid-sized serverless
// function; the workload package provides per-function calibrated values.
type GenParams struct {
	Seed uint64
	Name string

	// CodeKiB is the target static code size in KiB. The paper's
	// functions touch 240-620 KiB of code per invocation (Fig. 2a).
	CodeKiB int
	// BranchSites is the target number of taken-capable static branch
	// sites — the program's potential BTB working set (Fig. 2b reports
	// 5.4K-14K entries).
	BranchSites int
	// MeanFuncBytes is the average function code size (default 4096).
	MeanFuncBytes int
	// CallSpan bounds how far ahead in the function index space local
	// calls reach (default 12).
	CallSpan int

	// IndirectFrac is the probability that a dispatch construct is
	// indirect (switch / indirect call) rather than direct; interpreters
	// (Python, NodeJS) have high values.
	IndirectFrac float64
	// PeriodicFrac is the fraction of conditionals with deterministic
	// periodic behaviour (learnable by TAGE, not by bimodal).
	PeriodicFrac float64
	// NeverTakenFrac is the fraction of conditionals that are never
	// taken (error checks); they consume no BTB capacity.
	NeverTakenFrac float64
	// HardFrac is the fraction of near-50/50 data-dependent
	// conditionals that no predictor captures well.
	HardFrac float64
	// ColdElseFrac is the fraction of if/else constructs whose else
	// path is dead code (cold static footprint).
	ColdElseFrac float64

	// MeanLoopTrips is the mean trip count of loops (default 4).
	MeanLoopTrips float64
	// FixedLoopFrac is the fraction of loops with exactly constant trip
	// counts (capturable by a loop predictor).
	FixedLoopFrac float64
	// RequestLoopTrips wraps the handler body in an outer loop with this
	// mean trip count, modeling repeated request-processing passes
	// within one invocation (default 3).
	RequestLoopTrips float64
}

func (gp GenParams) withDefaults() GenParams {
	if gp.Name == "" {
		gp.Name = "synthetic"
	}
	if gp.CodeKiB <= 0 {
		gp.CodeKiB = 384
	}
	if gp.BranchSites <= 0 {
		gp.BranchSites = 8000
	}
	if gp.MeanFuncBytes <= 0 {
		gp.MeanFuncBytes = 4096
	}
	if gp.CallSpan <= 0 {
		gp.CallSpan = 12
	}
	if gp.IndirectFrac < 0 {
		gp.IndirectFrac = 0
	}
	if gp.MeanLoopTrips <= 0 {
		gp.MeanLoopTrips = 4
	}
	if gp.RequestLoopTrips <= 0 {
		gp.RequestLoopTrips = 3
	}
	return gp
}

// GenReport summarizes a generated program against its targets.
type GenReport struct {
	NumFuncs         int
	StaticInstrs     uint64
	CodeBytes        uint64
	TakenBranchSites int
}

type generator struct {
	gp       GenParams
	rng      *rand.Rand
	p        *Program
	children [][]int // required callees per function

	numFuncs int
	// utilStart is the first index of the "utility leaf" pool: functions
	// with no outgoing calls. Only utilities may be called from repeated
	// contexts (loops, extra call sites, indirect calls), which bounds
	// the dynamic trace length: the coverage call graph is a tree in
	// which every non-utility function executes exactly once per
	// request-processing pass.
	utilStart int
	// per-function budgets
	instrBudget int
	siteBudget  int
	avgRun      int

	// running totals while generating one function
	instrs int
	sites  int
}

// Generate builds a synthetic program matching the given parameters. The
// result is finalized and validated.
func Generate(gp GenParams) (*Program, GenReport, error) {
	gp = gp.withDefaults()
	g := &generator{
		gp:  gp,
		rng: rand.New(rand.NewPCG(gp.Seed, gp.Seed^0xda3e39cb94b95bdb)),
		p:   NewProgram(gp.Name),
	}
	codeBytes := gp.CodeKiB * 1024
	g.numFuncs = codeBytes / gp.MeanFuncBytes
	if g.numFuncs < 3 {
		g.numFuncs = 3
	}
	totalInstrs := codeBytes / InstrBytes
	g.instrBudget = totalInstrs / g.numFuncs
	g.siteBudget = gp.BranchSites / g.numFuncs
	if g.siteBudget < 2 {
		g.siteBudget = 2
	}
	g.avgRun = g.instrBudget / g.siteBudget
	if g.avgRun < 2 {
		g.avgRun = 2
	}

	g.utilStart = g.numFuncs - g.numFuncs/5
	if g.utilStart < 2 {
		g.utilStart = 2
	}
	if g.utilStart >= g.numFuncs {
		g.utilStart = g.numFuncs - 1
	}
	g.assignCallTree()

	for i := 0; i < g.numFuncs; i++ {
		body := g.genFunctionBody(i)
		if i == 0 {
			body = &Loop{
				Body:      body,
				MeanTrips: gp.RequestLoopTrips,
				LatchN:    2,
			}
		}
		g.p.AddFunction(fmt.Sprintf("%s.fn%03d", gp.Name, i), body, g.run(1))
	}
	g.p.LayoutSeed = gp.Seed ^ 0x5eed1a0e
	if err := g.p.Finalize(); err != nil {
		return nil, GenReport{}, err
	}
	if err := g.p.Validate(); err != nil {
		return nil, GenReport{}, err
	}
	rep := GenReport{
		NumFuncs:         g.numFuncs,
		StaticInstrs:     g.p.NumInstr(),
		CodeBytes:        g.p.CodeBytes(),
		TakenBranchSites: g.p.StaticTakenBranchSites(),
	}
	return g.p, rep, nil
}

// assignCallTree gives every function (except the handler) exactly one
// caller with a lower, non-utility index. The coverage call graph is a tree:
// every function executes exactly once per request pass, bounding dynamic
// trace length. Half of the parents are drawn globally (shallow tree), half
// from a local window (call locality).
func (g *generator) assignCallTree() {
	g.children = make([][]int, g.numFuncs)
	for i := 1; i < g.numFuncs; i++ {
		hi := i // parent < min(i, utilStart)
		if hi > g.utilStart {
			hi = g.utilStart
		}
		var parent int
		if hi == 1 || g.rng.Float64() < 0.5 {
			parent = g.rng.IntN(hi)
		} else {
			lo := hi - g.gp.CallSpan
			if lo < 0 {
				lo = 0
			}
			parent = lo + g.rng.IntN(hi-lo)
		}
		g.children[parent] = append(g.children[parent], i)
	}
}

// run samples a straight-line run length around the program's average.
func (g *generator) run(minLen int) int {
	n := g.avgRun/2 + g.rng.IntN(g.avgRun+1)
	if n < minLen {
		n = minLen
	}
	return n
}

// genFunctionBody creates the body of function fi, consuming the per-
// function instruction and branch-site budgets and embedding the required
// coverage calls at guaranteed-execution positions.
func (g *generator) genFunctionBody(fi int) Node {
	g.instrs = 0
	g.sites = 1 // return block
	required := g.children[fi]

	// Utility leaves are small helpers (hashing, copying, formatting):
	// a quarter of a regular function. They are the only functions
	// callable from repeated contexts, so their size bounds the dynamic
	// cost of extra call sites.
	savedInstr, savedSite := g.instrBudget, g.siteBudget
	if fi >= g.utilStart {
		g.instrBudget /= 4
		g.siteBudget /= 4
		if g.siteBudget < 2 {
			g.siteBudget = 2
		}
		defer func() { g.instrBudget, g.siteBudget = savedInstr, savedSite }()
	}

	var frags []Node
	prologue := g.run(2)
	frags = append(frags, &Straight{N: prologue})
	g.instrs += prologue

	// Interleave required calls evenly among generated fragments.
	nextReq := 0
	fragCount := 0
	reqEvery := 3
	if len(required) > 0 {
		est := g.siteBudget
		if est < len(required)*2 {
			est = len(required) * 2
		}
		reqEvery = est / (len(required) + 1)
		if reqEvery < 1 {
			reqEvery = 1
		}
	}

	for g.sites < g.siteBudget || nextReq < len(required) {
		if nextReq < len(required) && fragCount%reqEvery == reqEvery-1 {
			callee := required[nextReq]
			nextReq++
			pre := g.run(1)
			frags = append(frags, &Call{PreN: pre, Callee: callee})
			g.instrs += pre + 1
			g.sites++
			fragCount++
			continue
		}
		frags = append(frags, g.genFragment(fi, 0))
		fragCount++
		if g.sites > g.siteBudget*3 { // safety against runaway
			break
		}
	}
	return &Seq{Nodes: frags}
}

// genFragment generates one random construct at nesting depth d. Only
// utility leaf functions may be called here; coverage calls are placed
// separately at the top level of each body.
func (g *generator) genFragment(fi, d int) Node {
	r := g.rng.Float64()
	indirect := g.rng.Float64() < g.gp.IndirectFrac
	canNest := d < 2
	mayCall := fi < g.utilStart && d == 0
	switch {
	case r < 0.34:
		return g.genIf(fi, d, false)
	case r < 0.50:
		return g.genIf(fi, d, true)
	case r < 0.72:
		return g.genLoop(fi, d, canNest)
	case r < 0.80 && indirect:
		return g.genSwitch(fi, d)
	case r < 0.83 && indirect && mayCall:
		return g.genIndirectCall(fi)
	case r < 0.86 && mayCall:
		return g.genExtraCall(fi)
	default:
		n := g.run(2)
		g.instrs += n
		return &Straight{N: n}
	}
}

// condProfile draws a conditional branch profile: (thenBias, period).
func (g *generator) condProfile() (float64, int) {
	r := g.rng.Float64()
	switch {
	case r < g.gp.NeverTakenFrac:
		// Error check: the skip path never executes.
		return 1.0, 0
	case r < g.gp.NeverTakenFrac+g.gp.PeriodicFrac:
		periods := []int{2, 3, 4, 6, 8, 16}
		return 0, periods[g.rng.IntN(len(periods))]
	case r < g.gp.NeverTakenFrac+g.gp.PeriodicFrac+g.gp.HardFrac:
		return 0.4 + 0.2*g.rng.Float64(), 0
	case r < g.gp.NeverTakenFrac+g.gp.PeriodicFrac+g.gp.HardFrac+0.42:
		// Strongly biased either direction (real branches are highly
		// predictable once warm); the minority direction still occurs,
		// so most of these enter the BTB working set over an
		// invocation.
		b := 0.8 + 0.18*g.rng.Float64()
		if g.rng.Float64() < 0.5 {
			b = 1 - b
		}
		return b, 0
	case r < g.gp.NeverTakenFrac+g.gp.PeriodicFrac+g.gp.HardFrac+0.57:
		// Highly biased towards the skip path (taken branch around a
		// rarely-executed body, e.g. fast-path guards).
		return 0.01 + 0.09*g.rng.Float64(), 0
	default:
		// Highly biased towards the then-part (common path); rarely
		// taken.
		return 0.9 + 0.099*g.rng.Float64(), 0
	}
}

func (g *generator) genIf(fi, d int, withElse bool) Node {
	bias, period := g.condProfile()
	condN := g.run(1)
	g.instrs += condN
	thenN := g.run(1)
	var then Node
	if d < 2 && g.rng.Float64() < 0.3 {
		then = &Seq{Nodes: []Node{&Straight{N: thenN}, g.genFragment(fi, d+1)}}
		g.instrs += thenN
	} else {
		then = &Straight{N: thenN}
		g.instrs += thenN
	}
	node := &If{CondN: condN, ThenBias: bias, Then: then, Period: period}
	if bias > 0 || period >= 2 {
		g.sites++ // the conditional can be taken
	}
	if withElse {
		elseN := g.run(1)
		node.Else = &Straight{N: elseN}
		g.instrs += elseN + 1
		g.sites++ // the jump over the else
		if g.rng.Float64() < g.gp.ColdElseFrac && period == 0 {
			node.ThenBias = 1.0 // else path is dead code
		}
	}
	return node
}

func (g *generator) genLoop(fi, d int, canNest bool) Node {
	bodyN := g.run(2)
	var body Node
	if canNest && g.rng.Float64() < 0.25 {
		body = &Seq{Nodes: []Node{&Straight{N: bodyN}, g.genFragment(fi, d+1)}}
		g.instrs += bodyN
	} else {
		body = &Straight{N: bodyN}
		g.instrs += bodyN
	}
	latchN := g.run(1)
	g.instrs += latchN
	g.sites++
	trips := g.gp.MeanLoopTrips * (0.5 + g.rng.Float64())
	if trips < 1.5 {
		trips = 1.5
	}
	return &Loop{
		Body:      body,
		MeanTrips: trips,
		LatchN:    latchN,
		Fixed:     g.rng.Float64() < g.gp.FixedLoopFrac,
	}
}

func (g *generator) genSwitch(fi, d int) Node {
	k := 4 + g.rng.IntN(9)
	cases := make([]Node, k)
	weights := make([]float64, k)
	for i := range cases {
		// Dispatch bodies are bulky (interpreter opcode handlers), so
		// case entries are far apart and dispatch jumps defeat
		// next-line prefetching.
		n := g.run(1) * 3
		cases[i] = &Straight{N: n}
		g.instrs += n
		weights[i] = 0.2 + g.rng.Float64()
	}
	// Make one or two cases dominant (hot opcodes / hot vtable slots).
	weights[g.rng.IntN(k)] += float64(k)
	preN := g.run(1)
	g.instrs += preN + k - 1
	g.sites += k // dispatch + (k-1) case exit jumps
	return &Switch{PreN: preN, Cases: cases, Weights: weights}
}

// calleePool returns candidate callees for optional (non-coverage) calls:
// only utility leaf functions, so repeated execution cannot multiply whole
// call subtrees.
func (g *generator) calleePool(fi int) []int {
	if fi >= g.utilStart {
		return nil
	}
	pool := make([]int, 0, g.numFuncs-g.utilStart)
	for c := g.utilStart; c < g.numFuncs; c++ {
		pool = append(pool, c)
	}
	return pool
}

func (g *generator) genExtraCall(fi int) Node {
	pool := g.calleePool(fi)
	if len(pool) == 0 {
		n := g.run(2)
		g.instrs += n
		return &Straight{N: n}
	}
	callee := pool[g.rng.IntN(len(pool))]
	pre := g.run(1)
	g.instrs += pre + 1
	g.sites++
	return &Call{PreN: pre, Callee: callee}
}

func (g *generator) genIndirectCall(fi int) Node {
	pool := g.calleePool(fi)
	if len(pool) < 2 {
		return g.genExtraCall(fi)
	}
	k := 2 + g.rng.IntN(3)
	if k > len(pool) {
		k = len(pool)
	}
	g.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	callees := append([]int(nil), pool[:k]...)
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = 0.2 + g.rng.Float64()
	}
	weights[0] += 2 // dominant receiver type
	pre := g.run(1)
	g.instrs += pre + 1
	g.sites++
	return &IndirectCall{PreN: pre, Callees: callees, Weights: weights}
}
