package cfg

import (
	"testing"
)

// buildTiny constructs a small two-function program by hand:
//
//	fn0: straight; if(bias .8){straight}else{straight}; call fn1; loop{straight}x3; ret
//	fn1: straight; ret
func buildTiny(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("tiny")
	body0 := &Seq{Nodes: []Node{
		&Straight{N: 4},
		&If{CondN: 2, ThenBias: 0.8, Then: &Straight{N: 3}, Else: &Straight{N: 5}},
		&Call{PreN: 1, Callee: 1},
		&Loop{Body: &Straight{N: 2}, MeanTrips: 3, LatchN: 1},
	}}
	p.AddFunction("fn0", body0, 2)
	p.AddFunction("fn1", &Straight{N: 6}, 1)
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p
}

func TestTinyProgramShape(t *testing.T) {
	p := buildTiny(t)
	if got := p.NumFuncs(); got != 2 {
		t.Fatalf("NumFuncs = %d, want 2", got)
	}
	f0 := &p.Funcs[0]
	// Blocks of fn0: straight, cond, then, jmp, else, call, loop body,
	// latch, ret = 9 blocks.
	if got := len(f0.Blocks()); got != 9 {
		t.Errorf("fn0 has %d blocks, want 9", got)
	}
	ret := p.Block(f0.Ret)
	if ret.Kind != BranchReturn {
		t.Errorf("fn0 last block kind = %v, want return", ret.Kind)
	}
}

func TestLoweredIfWiring(t *testing.T) {
	p := buildTiny(t)
	blocks := p.Funcs[0].Blocks()
	cond := p.Block(blocks[1])
	if cond.Kind != BranchCond {
		t.Fatalf("block 1 kind = %v, want cond", cond.Kind)
	}
	// Taken path of the cond goes to the else part (skipping then+jmp).
	if cond.Target != blocks[4] {
		t.Errorf("cond target = %d, want else entry %d", cond.Target, blocks[4])
	}
	if cond.Fall != blocks[2] {
		t.Errorf("cond fall = %d, want then entry %d", cond.Fall, blocks[2])
	}
	// Bias: ThenBias .8 means taken probability .2.
	if cond.Bias < 0.19 || cond.Bias > 0.21 {
		t.Errorf("cond bias = %v, want 0.2", cond.Bias)
	}
	jmp := p.Block(blocks[3])
	if jmp.Kind != BranchUncond {
		t.Fatalf("block 3 kind = %v, want uncond", jmp.Kind)
	}
	// The jump over the else lands on the call block.
	if jmp.Target != blocks[5] {
		t.Errorf("jmp target = %d, want call block %d", jmp.Target, blocks[5])
	}
}

func TestLoweredCallAndLoopWiring(t *testing.T) {
	p := buildTiny(t)
	blocks := p.Funcs[0].Blocks()
	call := p.Block(blocks[5])
	if call.Kind != BranchCall {
		t.Fatalf("block 5 kind = %v, want call", call.Kind)
	}
	if call.Target != p.Funcs[1].Entry {
		t.Errorf("call target = %d, want fn1 entry %d", call.Target, p.Funcs[1].Entry)
	}
	if call.Fall != blocks[6] {
		t.Errorf("call fall = %d, want loop body %d", call.Fall, blocks[6])
	}
	latch := p.Block(blocks[7])
	if latch.Kind != BranchCond {
		t.Fatalf("block 7 kind = %v, want cond latch", latch.Kind)
	}
	if latch.Target != blocks[6] {
		t.Errorf("latch target = %d, want loop body %d", latch.Target, blocks[6])
	}
	// Mean trips 3 -> per-iteration continue bias 2/3.
	if latch.Bias < 0.66 || latch.Bias > 0.67 {
		t.Errorf("latch bias = %v, want 2/3", latch.Bias)
	}
}

func TestAddressesMonotonicAndAligned(t *testing.T) {
	p := buildTiny(t)
	var prev uint64
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if b.Addr < prev {
			t.Fatalf("block %d addr %#x < previous end %#x", i, b.Addr, prev)
		}
		prev = b.EndAddr()
	}
	for fi := range p.Funcs {
		entry := p.Block(p.Funcs[fi].Entry)
		if entry.Addr%CacheLineBytes != 0 {
			t.Errorf("fn%d entry %#x not line-aligned", fi, entry.Addr)
		}
	}
}

func TestBlockAt(t *testing.T) {
	p := buildTiny(t)
	for i := range p.Blocks {
		b := &p.Blocks[i]
		if got := p.BlockAt(b.Addr); got == nil || got.ID != b.ID {
			t.Errorf("BlockAt(start of %d) = %v", b.ID, got)
		}
		if got := p.BlockAt(b.BranchPC()); got == nil || got.ID != b.ID {
			t.Errorf("BlockAt(branch PC of %d) = %v", b.ID, got)
		}
	}
	if got := p.BlockAt(p.BaseAddr - 4); got != nil {
		t.Errorf("BlockAt(before program) = %v, want nil", got)
	}
	if got := p.BlockAt(p.EndAddr() + 1024); got != nil {
		t.Errorf("BlockAt(after program) = %v, want nil", got)
	}
}

func TestWorkingSetAccounting(t *testing.T) {
	p := buildTiny(t)
	var instrs uint64
	for i := range p.Blocks {
		instrs += uint64(p.Blocks[i].NumInstr)
	}
	if got := p.NumInstr(); got != instrs {
		t.Errorf("NumInstr = %d, want %d", got, instrs)
	}
	if got := p.CodeBytes(); got != instrs*InstrBytes {
		t.Errorf("CodeBytes = %d, want %d", got, instrs*InstrBytes)
	}
	// Takeable sites in tiny: cond (bias .2), jmp, call, latch, 2 rets = 6.
	if got := p.StaticTakenBranchSites(); got != 6 {
		t.Errorf("StaticTakenBranchSites = %d, want 6", got)
	}
}

func TestNeverTakenExcludedFromSites(t *testing.T) {
	p := NewProgram("nt")
	p.AddFunction("f", &Seq{Nodes: []Node{
		&If{CondN: 1, ThenBias: 1.0, Then: &Straight{N: 2}}, // never taken
		&If{CondN: 1, ThenBias: 0.5, Then: &Straight{N: 2}}, // takeable
	}}, 1)
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Sites: second cond + return = 2. First cond has bias 0.
	if got := p.StaticTakenBranchSites(); got != 2 {
		t.Errorf("sites = %d, want 2", got)
	}
}

func TestBranchKindPredicates(t *testing.T) {
	cases := []struct {
		k                         BranchKind
		isBranch, isCall, isIndir bool
	}{
		{BranchNone, false, false, false},
		{BranchCond, true, false, false},
		{BranchUncond, true, false, false},
		{BranchCall, true, true, false},
		{BranchReturn, true, false, true},
		{BranchIndirectJump, true, false, true},
		{BranchIndirectCall, true, true, true},
	}
	for _, c := range cases {
		if c.k.IsBranch() != c.isBranch {
			t.Errorf("%v IsBranch = %v", c.k, c.k.IsBranch())
		}
		if c.k.IsCall() != c.isCall {
			t.Errorf("%v IsCall = %v", c.k, c.k.IsCall())
		}
		if c.k.IsIndirect() != c.isIndir {
			t.Errorf("%v IsIndirect = %v", c.k, c.k.IsIndirect())
		}
	}
	if BranchCond.String() != "cond" || BranchKind(99).String() == "" {
		t.Error("String() misbehaves")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := buildTiny(t)
	saved := p.Blocks[1].Target
	p.Blocks[1].Target = BlockID(len(p.Blocks) + 5)
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted out-of-range target")
	}
	p.Blocks[1].Target = saved

	savedBias := p.Blocks[1].Bias
	p.Blocks[1].Bias = 1.5
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted bias > 1")
	}
	p.Blocks[1].Bias = savedBias

	if err := p.Validate(); err != nil {
		t.Errorf("restored program fails validation: %v", err)
	}
}

func TestFinalizeTwiceFails(t *testing.T) {
	p := buildTiny(t)
	if err := p.Finalize(); err == nil {
		t.Error("second Finalize should fail")
	}
}

func TestCallToUnknownFunctionFails(t *testing.T) {
	p := NewProgram("bad")
	p.AddFunction("f", &Call{PreN: 1, Callee: 7}, 1)
	if err := p.Finalize(); err == nil {
		t.Error("Finalize accepted dangling call")
	}
}
