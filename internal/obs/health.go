package obs

import "sync/atomic"

// RunHealth aggregates the fault-tolerance counters of one experiment run:
// how many cell attempts panicked, were retried after a transient failure,
// overran their deadline, failed for good, or were skipped by cancellation.
// Counters are atomic — the scheduler increments them from many worker
// goroutines — and the zero value is ready to use.
type RunHealth struct {
	Panics    atomic.Int64
	Retries   atomic.Int64
	Deadlines atomic.Int64
	Failed    atomic.Int64
	Skipped   atomic.Int64
}

// Register exposes the counters through a metrics registry as read-through
// counters, so a run snapshot carries its fault-tolerance telemetry next to
// the simulation metrics.
func (h *RunHealth) Register(reg *Registry) {
	l := L("component", "run")
	counter := func(name string, v *atomic.Int64) {
		reg.CounterFunc(name, l, func() uint64 { return uint64(v.Load()) })
	}
	counter("run.cell_panics", &h.Panics)
	counter("run.cell_retries", &h.Retries)
	counter("run.cell_deadlines", &h.Deadlines)
	counter("run.cells_failed", &h.Failed)
	counter("run.cells_skipped", &h.Skipped)
}
