// Package obs is the simulator's structured observability layer: a typed
// metrics registry every subsystem registers into, an event-tracing hook API
// the engine hot path emits through (zero-cost when no tracer is installed),
// a run-progress reporter for long experiment matrices, and the versioned
// machine-readable result documents the CLIs export.
//
// obs depends only on the standard library so that every other internal
// package — engine, ignite, prefetch, lukewarm, experiments — can import it
// without cycles.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Labels is an ordered label set. Construct with L; ordering is
// canonicalized (sorted by key) so equal sets compare equal.
type Labels []Label

// L builds a canonical label set from alternating key, value strings.
// L("component", "btb", "level", "l2") → component=btb,level=l2.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs.L: odd number of key/value strings")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// With returns a copy of the set extended by the given pairs.
func (ls Labels) With(kv ...string) Labels {
	ext := L(kv...)
	out := make(Labels, 0, len(ls)+len(ext))
	out = append(out, ls...)
	out = append(out, ext...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// String renders the set as "k=v,k2=v2" (empty string for no labels).
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Kind discriminates metric types in snapshots.
type Kind string

const (
	KindCounter      Kind = "counter"
	KindGauge        Kind = "gauge"
	KindDistribution Kind = "distribution"
)

// Counter is a monotonically increasing event counter owned by the
// registry. The zero value is ready to use. Updates are atomic, so a
// counter may be incremented from many goroutines (server request handlers)
// while a concurrent Snapshot scrapes it — the serving daemon's /metrics
// endpoint reads live registries, unlike the batch pipeline's post-run
// snapshots. The engine's own hot-path statistics remain the unsynchronized
// stats.Counter; they enter a registry only through CounterFunc once their
// cell is quiescent.
type Counter struct{ n atomic.Uint64 }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a point-in-time value. Set/Add/Value are atomic, safe against
// concurrent scrapes.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (negative deltas decrease it) — the
// in-flight-request idiom: Add(1) on entry, Add(-1) on exit.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Distribution accumulates observations (count, sum, min, max). It keeps
// constant state rather than samples, so hot paths can Observe freely.
// Observations are mutex-guarded: the multi-field update must be atomic as
// a unit for concurrent observers and scrapers (batch sizes recorded by
// server workers while /metrics snapshots the registry).
type Distribution struct {
	mu       sync.Mutex
	count    uint64
	sum      float64
	min, max float64
}

// Observe folds one observation into the distribution.
func (d *Distribution) Observe(v float64) {
	d.mu.Lock()
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
	d.mu.Unlock()
}

// Count returns the number of observations.
func (d *Distribution) Count() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Mean returns the arithmetic mean of observations (0 when empty).
func (d *Distribution) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.meanLocked()
}

func (d *Distribution) meanLocked() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// read returns a consistent (mean, count, min, max) quadruple.
func (d *Distribution) read() (mean float64, count uint64, min, max float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.meanLocked(), d.count, d.min, d.max
}

// metric is one registered instrument.
type metric struct {
	name   string
	labels Labels
	kind   Kind

	counter *Counter
	gauge   *Gauge
	dist    *Distribution
	// read-through sources bridging pre-existing component counters into
	// the registry without relocating their hot-path storage.
	counterFn func() uint64
	gaugeFn   func() float64
}

func (m *metric) key() string { return sampleKey(m.name, m.labels) }

func sampleKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + labels.String() + "}"
}

// Registry holds a set of named, labeled metrics. Registration is
// synchronized (components register concurrently under the cell scheduler),
// and the registry-owned instruments — Counter, Gauge, Distribution — are
// safe for concurrent update and scrape, so a live registry can back an
// HTTP /metrics endpoint while request workers update it. Read-through
// CounterFunc/GaugeFunc metrics carry their own contract: see CounterFunc.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// registerLocked finds or creates the metric slot; r.mu must be held (the
// instrument fields are guarded by the same lock until handed out).
func (r *Registry) registerLocked(name string, labels Labels, kind Kind) *metric {
	key := sampleKey(name, labels)
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, labels: labels, kind: kind}
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. Repeated registration returns the same instrument.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.registerLocked(name, labels, KindCounter)
	if m.counter == nil && m.counterFn == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// CounterFunc registers a read-through counter whose value is sampled from
// fn at snapshot time — the bridge for components that keep their own
// hot-path counters (BTB, caches, traffic) and expose them uniformly here.
//
// fn is called with the registry lock held but with no synchronization
// against the component it reads. The caller must guarantee one of:
// the component is quiescent by the time the registry is scraped (the batch
// pipeline's contract — cell metrics are registered and snapshotted only
// after the cell's run completes, see CellCache.compute), or fn reads an
// atomic source (obs.RunHealth's atomic.Int64 counters, the serving
// daemon's live queue-depth gauge). A read-through function over a
// still-running engine's plain counters is a data race by construction.
func (r *Registry) CounterFunc(name string, labels Labels, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.registerLocked(name, labels, KindCounter)
	m.counterFn = fn
	m.counter = nil
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.registerLocked(name, labels, KindGauge)
	if m.gauge == nil && m.gaugeFn == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a read-through gauge sampled from fn at snapshot
// time. The same synchronization contract as CounterFunc applies: fn must
// read a quiescent component or an atomic source.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.registerLocked(name, labels, KindGauge)
	m.gaugeFn = fn
	m.gauge = nil
}

// Distribution returns the distribution registered under (name, labels).
func (r *Registry) Distribution(name string, labels Labels) *Distribution {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.registerLocked(name, labels, KindDistribution)
	if m.dist == nil {
		m.dist = &Distribution{}
	}
	return m.dist
}

// Sample is one metric's value at snapshot time.
type Sample struct {
	Name   string  `json:"name"`
	Labels Labels  `json:"labels,omitempty"`
	Kind   Kind    `json:"kind"`
	Value  float64 `json:"value"`
	// Count/Min/Max/Mean carry distribution detail (zero otherwise).
	Count uint64  `json:"count,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// Key returns the sample's canonical identity, name{k=v,...}.
func (s Sample) Key() string { return sampleKey(s.Name, s.Labels) }

// Snapshot is a deterministic (sorted by key) point-in-time reading of a
// registry.
type Snapshot []Sample

// Snapshot reads every registered metric. The result is sorted by key so
// two snapshots of identical state are byte-identical when serialized.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Snapshot, 0, len(r.order))
	for _, key := range r.order {
		m := r.metrics[key]
		s := Sample{Name: m.name, Labels: m.labels, Kind: m.kind}
		switch {
		case m.counterFn != nil:
			s.Value = float64(m.counterFn())
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gaugeFn != nil:
			s.Value = m.gaugeFn()
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		case m.dist != nil:
			s.Value, s.Count, s.Min, s.Max = m.dist.read()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Values flattens the snapshot to key → value (distributions report their
// mean) — the form stored per simulation cell and exported in result
// documents.
func (s Snapshot) Values() map[string]float64 {
	out := make(map[string]float64, len(s))
	for _, smp := range s {
		out[smp.Key()] = smp.Value
	}
	return out
}

// Get returns the sample with the given key, if present.
func (s Snapshot) Get(key string) (Sample, bool) {
	for _, smp := range s {
		if smp.Key() == key {
			return smp, true
		}
	}
	return Sample{}, false
}
