package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressReporter is a Tracer that narrates cell completions of a long
// experiment run: per-cell completion lines plus an ETA extrapolated from
// the observed simulation rate. Cache-served cells are counted but not
// narrated (they complete in microseconds and would flood the log).
//
// The ETA covers the experiment matrix currently in flight — RunAll runs
// experiments sequentially, so the in-matrix ETA is the actionable number.
type ProgressReporter struct {
	BaseTracer

	mu      sync.Mutex
	w       io.Writer
	clock   func() time.Time
	started map[string]time.Time // experiment → first event time
	cells   int                  // cells observed overall
	hits    int                  // of which cache-served
}

// NewProgressReporter writes progress lines to w (typically os.Stderr).
func NewProgressReporter(w io.Writer) *ProgressReporter {
	return &ProgressReporter{w: w, clock: time.Now, started: make(map[string]time.Time)}
}

// CellDone implements Tracer.
func (p *ProgressReporter) CellDone(e CellDoneEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock()
	first, ok := p.started[e.Experiment]
	if !ok {
		// First event for this matrix: the cell's own duration is the
		// best available estimate of when the matrix started.
		first = now.Add(-e.Elapsed)
		p.started[e.Experiment] = first
	}
	p.cells++
	if e.Cached {
		p.hits++
		return
	}
	eta := ""
	if left := e.Total - e.Done; left > 0 && e.Done > 0 {
		if elapsed := now.Sub(first); elapsed > 0 {
			per := elapsed / time.Duration(e.Done)
			eta = fmt.Sprintf(", ETA %s", (per * time.Duration(left)).Round(time.Second))
		}
	}
	fmt.Fprintf(p.w, "[%s %d/%d] %s/%s done in %.1fs%s\n",
		e.Experiment, e.Done, e.Total, e.Workload, e.Config, e.Elapsed.Seconds(), eta)
}

// CellRetried implements Tracer: retries are narrated so a run that limps
// through transient failures is visible, not silent.
func (p *ProgressReporter) CellRetried(e CellRetriedEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "[%s] %s/%s attempt %d failed (%s), retrying in %s\n",
		e.Experiment, e.Workload, e.Config, e.Attempt, e.Err, e.Backoff)
}

// CellFailed implements Tracer.
func (p *ProgressReporter) CellFailed(e CellFailedEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e.Status == "skipped" {
		fmt.Fprintf(p.w, "[%s] %s/%s skipped (run canceled)\n",
			e.Experiment, e.Workload, e.Config)
		return
	}
	fmt.Fprintf(p.w, "[%s] %s/%s FAILED after %d attempt(s): %s\n",
		e.Experiment, e.Workload, e.Config, e.Attempts, e.Err)
}

// Summary returns the totals observed so far (cells completed, of which
// served from the cell cache).
func (p *ProgressReporter) Summary() (cells, cacheHits int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cells, p.hits
}
