package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLabelsCanonical(t *testing.T) {
	a := L("workload", "Auth-G", "config", "ignite")
	b := L("config", "ignite", "workload", "Auth-G")
	if a.String() != b.String() {
		t.Errorf("label order not canonical: %q vs %q", a, b)
	}
	if got, want := a.String(), "config=ignite,workload=Auth-G"; got != want {
		t.Errorf("labels = %q, want %q", got, want)
	}
	if got := a.With("mode", "interleaved").String(); !strings.Contains(got, "mode=interleaved") {
		t.Errorf("With lost the new label: %q", got)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fetches", L("component", "l1i"))
	c.Add(41)
	c.Inc()
	if r.Counter("fetches", L("component", "l1i")) != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("cpi", nil)
	g.Set(1.5)
	d := r.Distribution("latency", nil)
	d.Observe(10)
	d.Observe(20)
	backing := uint64(7)
	r.CounterFunc("bridged", nil, func() uint64 { return backing })

	snap := r.Snapshot()
	v := snap.Values()
	if v["fetches{component=l1i}"] != 42 {
		t.Errorf("counter = %v", v)
	}
	if v["cpi"] != 1.5 || v["bridged"] != 7 {
		t.Errorf("gauge/bridge = %v", v)
	}
	if s, ok := snap.Get("latency"); !ok || s.Count != 2 || s.Min != 10 || s.Max != 20 || s.Value != 15 {
		t.Errorf("distribution sample = %+v", s)
	}
	backing = 9
	if r.Snapshot().Values()["bridged"] != 9 {
		t.Error("CounterFunc not read-through")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, L("w", "x")).Inc()
		}
		return r.Snapshot()
	}
	a := build([]string{"zeta", "alpha", "mid"})
	b := build([]string{"mid", "zeta", "alpha"})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("snapshots differ by registration order:\n%v\n%v", a, b)
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("shared", nil)
			r.Gauge("g", L("i", "fixed"))
		}()
	}
	wg.Wait()
	if n := len(r.Snapshot()); n != 2 {
		t.Errorf("got %d metrics, want 2", n)
	}
}

// TestInstrumentsConcurrentScrape hammers every registry-owned instrument
// from many goroutines while another scrapes snapshots — the serving
// daemon's /metrics access pattern. Run under -race (scripts/ci.sh does),
// this is the proof that registry-owned instruments are scrape-safe; the
// read-through CounterFunc here deliberately uses an atomic source, per the
// contract documented on CounterFunc.
func TestInstrumentsConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs", nil)
	g := r.Gauge("inflight", nil)
	d := r.Distribution("batch", nil)
	var backing atomic.Uint64
	r.CounterFunc("bridged", nil, func() uint64 { return backing.Load() })

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				d.Observe(float64(i % 32))
				backing.Add(1)
				g.Add(-1)
			}
		}()
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapes.Wait()

	snap := r.Snapshot()
	v := snap.Values()
	if v["reqs"] != workers*iters || v["bridged"] != workers*iters {
		t.Errorf("lost updates: %v", v)
	}
	if v["inflight"] != 0 {
		t.Errorf("inflight gauge = %v, want 0", v["inflight"])
	}
	if s, _ := snap.Get("batch"); s.Count != workers*iters {
		t.Errorf("distribution count = %d, want %d", s.Count, workers*iters)
	}
}

func TestCollectorAndMulti(t *testing.T) {
	var a, b Collector
	var tr Tracer = MultiTracer{&a, &b}
	tr.InvocationStart(InvocationStartEvent{Seed: 1})
	tr.CellDone(CellDoneEvent{Experiment: "fig8", Workload: "Auth-G", Config: "ignite"})
	tr.CacheHit(CacheHitEvent{Workload: "Auth-G", Config: "nl"})
	for _, c := range []*Collector{&a, &b} {
		if c.Count("") != 3 || c.Count("cell_done") != 1 || c.Count("cache_hit") != 1 {
			t.Errorf("collector counts wrong: %+v", c.Events)
		}
	}
}

func TestWriterTracerEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewWriterTracer(&buf)
	tr.ReplayStart(ReplayStartEvent{Mechanism: "ignite", Bytes: 128})
	tr.ReplayEnd(ReplayEndEvent{Mechanism: "ignite", Restored: 12})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"event":"replay_start"`) || !strings.Contains(lines[0], `"bytes":128`) {
		t.Errorf("line 0 = %s", lines[0])
	}
}

func TestProgressReporterETA(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressReporter(&buf)
	now := time.Unix(1000, 0)
	p.clock = func() time.Time {
		now = now.Add(2 * time.Second)
		return now
	}
	p.CellDone(CellDoneEvent{Experiment: "fig8", Workload: "A", Config: "nl", Done: 1, Total: 3, Elapsed: 2 * time.Second})
	p.CellDone(CellDoneEvent{Experiment: "fig8", Workload: "A", Config: "ignite", Cached: true, Done: 2, Total: 3})
	p.CellDone(CellDoneEvent{Experiment: "fig8", Workload: "B", Config: "nl", Done: 3, Total: 3, Elapsed: 2 * time.Second})
	out := buf.String()
	if !strings.Contains(out, "[fig8 1/3] A/nl") || !strings.Contains(out, "ETA") {
		t.Errorf("missing progress line or ETA:\n%s", out)
	}
	if strings.Contains(out, "A/ignite") {
		t.Errorf("cache-served cell should not be narrated:\n%s", out)
	}
	if cells, hits := p.Summary(); cells != 3 || hits != 1 {
		t.Errorf("summary = %d cells, %d hits", cells, hits)
	}
}

func TestDocumentRoundTripAndVersionGate(t *testing.T) {
	doc := Document{
		ID:     "fig1",
		Title:  "Figure 1",
		Values: map[string]map[string]float64{"Mean": {"cpi": 1.25}},
		Cells: []CellMetrics{{Workload: "Auth-G", Config: "nl",
			Metrics: map[string]float64{"result.cpi": 1.25}}},
		Manifest: Manifest{Parallel: 4,
			Workloads: []WorkloadManifest{{Name: "Auth-G", Seed: 3, TargetInstr: 1000}}},
	}
	data, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || back.Kind != DocumentKind {
		t.Errorf("encode did not stamp version/kind: %+v", back)
	}
	if !reflect.DeepEqual(back.Values, doc.Values) || !reflect.DeepEqual(back.Cells, doc.Cells) {
		t.Error("round trip lost data")
	}

	// A future schema version must be rejected, not half-read.
	bumped := bytes.Replace(data, []byte(`"schemaVersion": 1`), []byte(`"schemaVersion": 2`), 1)
	if bytes.Equal(bumped, data) {
		t.Fatal("fixture did not contain the version field")
	}
	if _, err := DecodeDocument(bumped); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("future schema version accepted: %v", err)
	}
}
