package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer receives structured events from the simulation stack. The engine
// hot path emits InvocationStart/End behind a nil check, so the default
// (no tracer) costs nothing — no allocation, no virtual call.
//
// Implementations must be safe for concurrent use: under the cell scheduler
// one tracer observes events from many simulation goroutines at once.
type Tracer interface {
	// InvocationStart fires when the engine begins executing a trace.
	InvocationStart(InvocationStartEvent)
	// InvocationEnd fires when the invocation's last step commits.
	InvocationEnd(InvocationEndEvent)
	// ReplayStart fires when an armed replay mechanism begins streaming
	// metadata at invocation start.
	ReplayStart(ReplayStartEvent)
	// ReplayEnd fires when the replay stream drains.
	ReplayEnd(ReplayEndEvent)
	// CellDone fires when the experiment scheduler completes one
	// (workload, config) simulation cell.
	CellDone(CellDoneEvent)
	// CacheHit fires when a cell request is served from the shared
	// cross-experiment cell cache instead of being simulated.
	CacheHit(CacheHitEvent)
	// CellRetried fires when a cell attempt failed with a transient error
	// and the scheduler is about to retry it after a backoff.
	CellRetried(CellRetriedEvent)
	// CellFailed fires when a cell is abandoned: every attempt failed, or
	// the run was canceled before the cell could start (skipped).
	CellFailed(CellFailedEvent)
}

// InvocationStartEvent marks the start of one simulated invocation.
type InvocationStartEvent struct {
	Seed uint64 `json:"seed"`
	Now  uint64 `json:"now"` // absolute engine cycle clock
}

// InvocationEndEvent summarizes one completed invocation.
type InvocationEndEvent struct {
	Seed   uint64  `json:"seed"`
	Now    uint64  `json:"now"`
	Instrs uint64  `json:"instrs"`
	Cycles float64 `json:"cycles"`
	CPI    float64 `json:"cpi"`
}

// ReplayStartEvent marks a replay mechanism starting to stream.
type ReplayStartEvent struct {
	Mechanism string `json:"mechanism"`
	Now       uint64 `json:"now"`
	Bytes     int    `json:"bytes"` // metadata bytes armed for replay
}

// ReplayEndEvent marks the replay stream draining.
type ReplayEndEvent struct {
	Mechanism string `json:"mechanism"`
	Now       uint64 `json:"now"`
	Restored  int    `json:"restored"` // records applied
}

// CellDoneEvent marks one (workload, config) cell completing inside an
// experiment matrix. Done/Total describe progress through that matrix.
type CellDoneEvent struct {
	Experiment string        `json:"experiment"`
	Workload   string        `json:"workload"`
	Config     string        `json:"config"`
	Cached     bool          `json:"cached"`
	Done       int           `json:"done"`
	Total      int           `json:"total"`
	Elapsed    time.Duration `json:"elapsedNs"`
}

// CacheHitEvent marks a cell request served from the shared cell cache.
type CacheHitEvent struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
}

// CellRetriedEvent marks one failed cell attempt about to be retried.
// Attempt is the attempt that just failed (1-based); Backoff is the delay
// before the next one.
type CellRetriedEvent struct {
	Experiment string        `json:"experiment"`
	Workload   string        `json:"workload"`
	Config     string        `json:"config"`
	Attempt    int           `json:"attempt"`
	Backoff    time.Duration `json:"backoffNs"`
	Err        string        `json:"error"`
}

// CellFailedEvent marks a cell abandoned by the scheduler. Status is
// "failed" (every attempt errored) or "skipped" (canceled before starting);
// Attempts counts the attempts actually made (0 for skipped cells).
type CellFailedEvent struct {
	Experiment string `json:"experiment"`
	Workload   string `json:"workload"`
	Config     string `json:"config"`
	Status     string `json:"status"`
	Attempts   int    `json:"attempts"`
	Err        string `json:"error,omitempty"`
}

// BaseTracer is a no-op Tracer intended for embedding, so partial
// implementations (a progress reporter that only cares about CellDone)
// stay small.
type BaseTracer struct{}

func (BaseTracer) InvocationStart(InvocationStartEvent) {}
func (BaseTracer) InvocationEnd(InvocationEndEvent)     {}
func (BaseTracer) ReplayStart(ReplayStartEvent)         {}
func (BaseTracer) ReplayEnd(ReplayEndEvent)             {}
func (BaseTracer) CellDone(CellDoneEvent)               {}
func (BaseTracer) CacheHit(CacheHitEvent)               {}
func (BaseTracer) CellRetried(CellRetriedEvent)         {}
func (BaseTracer) CellFailed(CellFailedEvent)           {}

var _ Tracer = BaseTracer{}

// MultiTracer fans every event out to each member tracer, in order.
type MultiTracer []Tracer

func (m MultiTracer) InvocationStart(e InvocationStartEvent) {
	for _, t := range m {
		t.InvocationStart(e)
	}
}
func (m MultiTracer) InvocationEnd(e InvocationEndEvent) {
	for _, t := range m {
		t.InvocationEnd(e)
	}
}
func (m MultiTracer) ReplayStart(e ReplayStartEvent) {
	for _, t := range m {
		t.ReplayStart(e)
	}
}
func (m MultiTracer) ReplayEnd(e ReplayEndEvent) {
	for _, t := range m {
		t.ReplayEnd(e)
	}
}
func (m MultiTracer) CellDone(e CellDoneEvent) {
	for _, t := range m {
		t.CellDone(e)
	}
}
func (m MultiTracer) CacheHit(e CacheHitEvent) {
	for _, t := range m {
		t.CacheHit(e)
	}
}
func (m MultiTracer) CellRetried(e CellRetriedEvent) {
	for _, t := range m {
		t.CellRetried(e)
	}
}
func (m MultiTracer) CellFailed(e CellFailedEvent) {
	for _, t := range m {
		t.CellFailed(e)
	}
}

// Collector is a Tracer that records every event it sees — the test and
// inspection implementation.
type Collector struct {
	mu     sync.Mutex
	Events []CollectedEvent
}

// CollectedEvent tags a recorded event with its type name.
type CollectedEvent struct {
	Type  string
	Event any
}

func (c *Collector) add(typ string, e any) {
	c.mu.Lock()
	c.Events = append(c.Events, CollectedEvent{Type: typ, Event: e})
	c.mu.Unlock()
}

func (c *Collector) InvocationStart(e InvocationStartEvent) { c.add("invocation_start", e) }
func (c *Collector) InvocationEnd(e InvocationEndEvent)     { c.add("invocation_end", e) }
func (c *Collector) ReplayStart(e ReplayStartEvent)         { c.add("replay_start", e) }
func (c *Collector) ReplayEnd(e ReplayEndEvent)             { c.add("replay_end", e) }
func (c *Collector) CellDone(e CellDoneEvent)               { c.add("cell_done", e) }
func (c *Collector) CacheHit(e CacheHitEvent)               { c.add("cache_hit", e) }
func (c *Collector) CellRetried(e CellRetriedEvent)         { c.add("cell_retried", e) }
func (c *Collector) CellFailed(e CellFailedEvent)           { c.add("cell_failed", e) }

// Count returns how many events of the given type were collected
// (all events when typ is empty).
func (c *Collector) Count(typ string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if typ == "" {
		return len(c.Events)
	}
	n := 0
	for _, e := range c.Events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// WriterTracer streams every event as one JSON line (type-tagged) to an
// io.Writer — the machine-readable event log.
type WriterTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterTracer wraps w in a line-oriented JSON event sink.
func NewWriterTracer(w io.Writer) *WriterTracer { return &WriterTracer{w: w} }

func (t *WriterTracer) emit(typ string, e any) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	t.mu.Lock()
	fmt.Fprintf(t.w, "{\"event\":%q,\"data\":%s}\n", typ, data)
	t.mu.Unlock()
}

func (t *WriterTracer) InvocationStart(e InvocationStartEvent) { t.emit("invocation_start", e) }
func (t *WriterTracer) InvocationEnd(e InvocationEndEvent)     { t.emit("invocation_end", e) }
func (t *WriterTracer) ReplayStart(e ReplayStartEvent)         { t.emit("replay_start", e) }
func (t *WriterTracer) ReplayEnd(e ReplayEndEvent)             { t.emit("replay_end", e) }
func (t *WriterTracer) CellDone(e CellDoneEvent)               { t.emit("cell_done", e) }
func (t *WriterTracer) CacheHit(e CacheHitEvent)               { t.emit("cache_hit", e) }
func (t *WriterTracer) CellRetried(e CellRetriedEvent)         { t.emit("cell_retried", e) }
func (t *WriterTracer) CellFailed(e CellFailedEvent)           { t.emit("cell_failed", e) }
