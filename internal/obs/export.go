package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaVersion is the current version of the exported result document.
// Bump it on any incompatible change to Document's shape; DecodeDocument
// rejects documents written by a different version, which is what golden
// tests key off to detect accidental schema drift.
const SchemaVersion = 1

// DocumentKind identifies exported result documents.
const DocumentKind = "ignite.experiment-result"

// Document is the versioned machine-readable form of one experiment result:
// the figure/table values, the run manifest (what was simulated, how), and
// the per-cell metric snapshots the analysis scripts mine.
type Document struct {
	SchemaVersion int    `json:"schemaVersion"`
	Kind          string `json:"kind"`
	ID            string `json:"id"`
	Title         string `json:"title"`

	// Values holds the figure's numbers keyed by row then column,
	// exactly what Result.Get serves programmatically.
	Values map[string]map[string]float64 `json:"values"`

	// Tables carries the rendered presentation tables (machine-readable
	// rows, not preformatted text).
	Tables []TableDoc `json:"tables,omitempty"`

	// Cells holds one metric snapshot per simulated (workload, config)
	// cell contributing to this result.
	Cells []CellMetrics `json:"cells,omitempty"`

	Manifest Manifest `json:"manifest"`
}

// TableDoc is a machine-readable table: title, column header, string rows.
type TableDoc struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// CellMetrics is one cell's flattened metric snapshot plus its scheduler
// fate. Status is empty for cells that simulated cleanly on the first
// attempt (readers treat empty as "ok"); the fault-tolerance fields are
// populated only on degraded runs so healthy documents keep their exact
// pre-existing byte shape.
type CellMetrics struct {
	Workload string             `json:"workload"`
	Config   string             `json:"config"`
	Metrics  map[string]float64 `json:"metrics"`
	// Status is "" (ok), "retried", "failed" or "skipped".
	Status string `json:"status,omitempty"`
	// Attempts counts simulation attempts when more than one was made.
	Attempts int `json:"attempts,omitempty"`
	// Error carries the final error of a failed cell.
	Error string `json:"error,omitempty"`
}

// Manifest records how the run was produced: enough to re-simulate it
// bit-identically (the engine seeds every RNG from the workload spec).
type Manifest struct {
	// Generated is an RFC3339 timestamp; empty in golden fixtures so the
	// document stays byte-deterministic.
	Generated string `json:"generated,omitempty"`
	GoVersion string `json:"goVersion,omitempty"`
	// Parallel is the cell-scheduler width the run used (0 = NumCPU).
	// Results are bit-identical across widths; it is recorded for
	// wall-clock reproducibility.
	Parallel  int                `json:"parallel"`
	Workloads []WorkloadManifest `json:"workloads"`
	// CacheCells/CacheHits describe the shared cell cache at export time.
	CacheCells int `json:"cacheCells,omitempty"`
	CacheHits  int `json:"cacheHits,omitempty"`
	// FailurePolicy names the scheduler's failure policy when it differs
	// from the default (fail-fast); Errors joins the per-cell failures of
	// a degraded continue-on-error run. Both stay empty on healthy runs.
	FailurePolicy string   `json:"failurePolicy,omitempty"`
	Errors        []string `json:"errors,omitempty"`
}

// WorkloadManifest pins one workload of the run: its name, generator seed
// and instruction budget determine the simulation bit-exactly.
type WorkloadManifest struct {
	Name        string `json:"name"`
	Seed        uint64 `json:"seed"`
	TargetInstr uint64 `json:"targetInstr"`
}

// Encode renders the document as indented JSON with a trailing newline.
// Map keys are sorted by encoding/json, so equal documents encode to equal
// bytes — the property the golden-file test relies on.
func (d Document) Encode() ([]byte, error) {
	if d.SchemaVersion == 0 {
		d.SchemaVersion = SchemaVersion
	}
	if d.Kind == "" {
		d.Kind = DocumentKind
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeDocument parses an exported document, rejecting unknown schema
// versions and kinds so consumers fail loudly instead of misreading a
// document written by a different tool generation.
func DecodeDocument(data []byte) (Document, error) {
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return Document{}, fmt.Errorf("obs: decode result document: %w", err)
	}
	if d.SchemaVersion != SchemaVersion {
		return Document{}, fmt.Errorf("obs: result document schema version %d, this build reads %d",
			d.SchemaVersion, SchemaVersion)
	}
	if d.Kind != DocumentKind {
		return Document{}, fmt.Errorf("obs: unexpected document kind %q", d.Kind)
	}
	return d, nil
}

// WriteFile encodes the document into dir/<name>.json, creating dir as
// needed, and returns the written path. The write is atomic: a crash mid-way
// leaves either the previous document or the new one, never a torn file.
func (d Document) WriteFile(dir, name string) (string, error) {
	data, err := d.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".json")
	if err := WriteFileAtomic(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// WriteFileAtomic writes data to path through a temp file in the same
// directory: write, fsync, then rename over the destination. Readers never
// observe a partially written file, and a crash leaves the old content
// intact. The temp file is removed on any failure.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
