package workload

import (
	"ignite/internal/cfg"
)

// WorkingSet is the per-invocation front-end working set of a function —
// the quantities the paper's Figure 2 characterizes.
type WorkingSet struct {
	// InstrBytes is the unique instruction-cache footprint touched by
	// one invocation (unique 64 B lines x 64).
	InstrBytes uint64
	// InstrLines is the number of unique cache lines.
	InstrLines int
	// BTBEntries is the branch working set: unique branch PCs taken at
	// least once during the invocation (never-taken branches consume no
	// BTB capacity).
	BTBEntries int
	// StaticBranchSites is the count of distinct branch PCs executed,
	// taken or not.
	StaticBranchSites int
	// DynInstr is the invocation's dynamic instruction count.
	DynInstr uint64
	// DynBranches is the number of dynamic branch executions.
	DynBranches uint64
}

// MeasureWorkingSet traces one invocation (no timing) and accumulates its
// front-end working set.
func MeasureWorkingSet(p *cfg.Program, seed, maxInstr uint64) (WorkingSet, error) {
	lines := make(map[uint64]struct{}, 1<<13)
	takenPCs := make(map[uint64]struct{}, 1<<13)
	branchPCs := make(map[uint64]struct{}, 1<<13)
	var ws WorkingSet

	res, err := p.Walk(0, cfg.WalkOptions{Seed: seed, MaxInstr: maxInstr}, func(s cfg.Step) bool {
		b := p.Block(s.Block)
		start := b.Addr &^ (cfg.CacheLineBytes - 1)
		end := b.BranchPC() &^ (cfg.CacheLineBytes - 1)
		for la := start; la <= end; la += cfg.CacheLineBytes {
			lines[la] = struct{}{}
		}
		if b.Kind.IsBranch() {
			ws.DynBranches++
			branchPCs[b.BranchPC()] = struct{}{}
			if s.Taken {
				takenPCs[b.BranchPC()] = struct{}{}
			}
		}
		return true
	})
	if err != nil {
		return WorkingSet{}, err
	}
	ws.InstrLines = len(lines)
	ws.InstrBytes = uint64(len(lines)) * cfg.CacheLineBytes
	ws.BTBEntries = len(takenPCs)
	ws.StaticBranchSites = len(branchPCs)
	ws.DynInstr = res.Instrs
	return ws, nil
}
