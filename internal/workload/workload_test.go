package workload

import (
	"strings"
	"testing"
)

func TestAllHas20Functions(t *testing.T) {
	specs := All()
	if len(specs) != 20 {
		t.Fatalf("got %d functions, want 20 (Table 1)", len(specs))
	}
	names := map[string]bool{}
	langCount := map[Lang]int{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
		langCount[s.Lang]++
		wantSuffix := "-" + s.Lang.Suffix()
		if !strings.HasSuffix(s.Name, wantSuffix) {
			t.Errorf("%s: suffix does not match language %v", s.Name, s.Lang)
		}
	}
	if langCount[Python] != 5 || langCount[NodeJS] != 5 || langCount[Go] != 10 {
		t.Errorf("language mix = %v, want 5P/5N/10G", langCount)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Auth-G")
	if err != nil || s.Name != "Auth-G" {
		t.Fatalf("ByName: %v %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown function")
	}
}

func TestSpecsBuildAndValidate(t *testing.T) {
	for _, s := range All() {
		p, rep, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid program: %v", s.Name, err)
		}
		if rep.NumFuncs < 10 {
			t.Errorf("%s: suspiciously few functions (%d)", s.Name, rep.NumFuncs)
		}
	}
}

// The central Figure 2 calibration: instruction working sets in roughly
// 240-620 KiB and branch working sets in roughly 5.4K-14K entries, with the
// paper's extremes in the right places.
func TestWorkingSetsMatchFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("working-set calibration is slow")
	}
	sets := map[string]WorkingSet{}
	for _, s := range All() {
		p, _, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		ws, err := MeasureWorkingSet(p, 42, s.MaxInstr())
		if err != nil {
			t.Fatal(err)
		}
		sets[s.Name] = ws
		kib := float64(ws.InstrBytes) / 1024
		if kib < 190 || kib > 760 {
			t.Errorf("%s: instruction WS %.0f KiB outside the paper's 240-620 band (with tolerance)", s.Name, kib)
		}
		if ws.BTBEntries < 4200 || ws.BTBEntries > 16000 {
			t.Errorf("%s: branch WS %d entries outside the paper's 5.4K-14K band (with tolerance)", s.Name, ws.BTBEntries)
		}
		if ws.DynInstr < s.TargetInstr/3 {
			t.Errorf("%s: dynamic length %d << target %d", s.Name, ws.DynInstr, s.TargetInstr)
		}
	}
	// Paper's extremes: Auth-G smallest branch WS, RecO-P largest.
	for name, ws := range sets {
		if name == "Auth-G" || name == "RecO-P" {
			continue
		}
		if ws.BTBEntries < sets["Auth-G"].BTBEntries-500 {
			t.Errorf("%s branch WS (%d) below Auth-G (%d)", name, ws.BTBEntries, sets["Auth-G"].BTBEntries)
		}
		if ws.BTBEntries > sets["RecO-P"].BTBEntries+500 {
			t.Errorf("%s branch WS (%d) above RecO-P (%d)", name, ws.BTBEntries, sets["RecO-P"].BTBEntries)
		}
	}
}

func TestWorkingSetDeterminism(t *testing.T) {
	s, _ := ByName("Fib-G")
	p, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := MeasureWorkingSet(p, 7, s.MaxInstr())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureWorkingSet(p, 7, s.MaxInstr())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("working set not deterministic: %+v vs %+v", a, b)
	}
}

func TestInvocationCommonality(t *testing.T) {
	// Two invocations (different seeds) of the same function must share
	// most of their branch working set — the property Ignite's
	// record/replay exploits (Section 6.2 "high commonality").
	s, _ := ByName("Curr-N")
	p, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := MeasureWorkingSet(p, 1, s.MaxInstr())
	b, _ := MeasureWorkingSet(p, 2, s.MaxInstr())
	// Compare sizes as a proxy (full overlap needs the sets; size
	// stability plus same program implies overlap here).
	ratio := float64(a.BTBEntries) / float64(b.BTBEntries)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("branch WS varies too much across invocations: %d vs %d", a.BTBEntries, b.BTBEntries)
	}
}

func TestLangString(t *testing.T) {
	if Python.String() != "Python" || NodeJS.Suffix() != "N" || Go.Suffix() != "G" {
		t.Error("Lang naming broken")
	}
}
