// Package workload defines the 20 serverless functions of the paper's
// Table 1 as calibrated synthetic-program specifications. The paper runs
// the real vSwarm functions (Python, NodeJS and Go runtimes) under gem5; we
// have no binaries, so each function is a generator parameter set whose
// working sets match the paper's Figure 2 characterization:
//
//   - instruction working sets of 240-620 KiB per invocation,
//   - branch working sets of 5.4K (Auth-G) to ~14K (RecO-P) BTB entries,
//   - Python/NodeJS interpreters are indirect-branch heavy with the largest
//     footprints; NodeJS JIT code is the most branch-dense; Go binaries are
//     the most compact.
package workload

import (
	"fmt"

	"ignite/internal/cfg"
	"ignite/internal/engine"
)

// Lang is the function's language runtime.
type Lang uint8

const (
	Python Lang = iota
	NodeJS
	Go
)

func (l Lang) String() string {
	switch l {
	case Python:
		return "Python"
	case NodeJS:
		return "NodeJS"
	case Go:
		return "Go"
	default:
		return "?"
	}
}

// Suffix returns the abbreviation suffix used in the paper (P/N/G).
func (l Lang) Suffix() string {
	switch l {
	case Python:
		return "P"
	case NodeJS:
		return "N"
	case Go:
		return "G"
	default:
		return "?"
	}
}

// Spec describes one serverless function.
type Spec struct {
	// Name is the paper's abbreviation, e.g. "AES-P".
	Name string
	// FullName is the human-readable function name, e.g. "AES (Python)".
	FullName string
	Lang     Lang

	// Gen holds the calibrated program-generator parameters.
	Gen cfg.GenParams
	// Data is the data-side access profile.
	Data engine.DataConfig
	// TargetInstr is the intended dynamic instruction count of one
	// invocation; MaxInstr caps runaway traces at 3x this value.
	TargetInstr uint64
}

// MaxInstr returns the per-invocation instruction budget. The handler's
// request loop is long enough that the budget, not the program, determines
// invocation length — mirroring the fixed-length invocations the paper
// traces.
func (s Spec) MaxInstr() uint64 { return s.TargetInstr }

// Build generates the function's program.
func (s Spec) Build() (*cfg.Program, cfg.GenReport, error) {
	p, rep, err := cfg.Generate(s.Gen)
	if err != nil {
		return nil, rep, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	return p, rep, nil
}

// langDefaults returns the per-runtime generator flavor.
func langDefaults(l Lang, seed uint64) cfg.GenParams {
	switch l {
	case Python:
		// Interpreter: big code footprint, heavy indirect dispatch,
		// deep call chains.
		return cfg.GenParams{
			Seed:             seed,
			MeanFuncBytes:    2048,
			CallSpan:         14,
			IndirectFrac:     0.50,
			PeriodicFrac:     0.07,
			NeverTakenFrac:   0.14,
			HardFrac:         0.04,
			ColdElseFrac:     0.10,
			MeanLoopTrips:    2.2,
			FixedLoopFrac:    0.75,
			RequestLoopTrips: 50,
		}
	case NodeJS:
		// JIT code: branch-dense, moderately indirect (inline caches),
		// many history-correlated guards.
		return cfg.GenParams{
			Seed:             seed,
			MeanFuncBytes:    2048,
			CallSpan:         12,
			IndirectFrac:     0.40,
			PeriodicFrac:     0.12,
			NeverTakenFrac:   0.16,
			HardFrac:         0.05,
			ColdElseFrac:     0.08,
			MeanLoopTrips:    2.0,
			FixedLoopFrac:    0.75,
			RequestLoopTrips: 50,
		}
	default:
		// Go: compact static binaries, mostly direct calls.
		return cfg.GenParams{
			Seed:             seed,
			MeanFuncBytes:    2560,
			CallSpan:         10,
			IndirectFrac:     0.18,
			PeriodicFrac:     0.08,
			NeverTakenFrac:   0.18,
			HardFrac:         0.04,
			ColdElseFrac:     0.08,
			MeanLoopTrips:    2.0,
			FixedLoopFrac:    0.75,
			RequestLoopTrips: 50,
		}
	}
}

// Calibration multipliers mapping desired *measured* per-invocation working
// sets (the spec arguments, taken from Figure 2) to generator inputs. A
// single invocation takes many rarely-executed paths never and many biased
// branches in only one direction, so the static program must be larger than
// the per-invocation working set. Values fitted empirically (see
// TestWorkingSetsMatchFigure2).
var codeCalib = map[Lang]float64{Python: 0.75, NodeJS: 0.82, Go: 1.04}

var siteCalib = map[Lang]float64{Python: 2.04, NodeJS: 1.87, Go: 2.55}

// spec assembles one Spec from the per-function calibration knobs: codeKiB
// and branchSites are the desired measured working sets of one invocation.
func spec(name, fullName string, l Lang, seed uint64, codeKiB, branchSites int,
	targetInstr uint64, data engine.DataConfig) Spec {
	gp := langDefaults(l, seed)
	gp.Name = name
	gp.CodeKiB = int(codeCalib[l] * float64(codeKiB))
	gp.BranchSites = int(siteCalib[l] * float64(branchSites))
	return Spec{
		Name:        name,
		FullName:    fullName,
		Lang:        l,
		Gen:         gp,
		Data:        data,
		TargetInstr: targetInstr,
	}
}

func data(footprintKiB int, memOpFrac, hotFrac, strideFrac float64) engine.DataConfig {
	d := engine.DefaultDataConfig()
	d.FootprintBytes = uint64(footprintKiB) << 10
	d.MemOpFrac = memOpFrac
	d.HotFrac = hotFrac
	d.StrideFrac = strideFrac
	return d
}

// Figure 2 characterization bounds of the paper's 20 functions: the
// per-invocation instruction working sets span 240-620 KiB and the branch
// working sets 5.4K-14K BTB entries. The fleet population sampler draws its
// standard-flavor functions inside these bounds; its tiny/huge flavors
// deliberately step outside them.
const (
	Fig2MinCodeKiB    = 240
	Fig2MaxCodeKiB    = 620
	Fig2MinBTBEntries = 5400
	Fig2MaxBTBEntries = 14000
)

// New assembles a Spec in the paper's measured Figure-2 coordinates:
// codeKiB and branchSites are the desired per-invocation instruction and
// branch working sets, mapped through the per-runtime calibration
// multipliers onto generator inputs exactly as the Table-1 catalog is. This
// is the constructor the fleet population sampler builds synthetic
// functions with, so a sampled function is calibrated identically to a
// catalog one.
func New(name, fullName string, l Lang, seed uint64, codeKiB, branchSites int,
	targetInstr uint64, data engine.DataConfig) Spec {
	return spec(name, fullName, l, seed, codeKiB, branchSites, targetInstr, data)
}

// DataProfile builds a data-side access profile from a footprint and the
// three mix knobs, with the engine's defaults for everything else.
func DataProfile(footprintKiB int, memOpFrac, hotFrac, strideFrac float64) engine.DataConfig {
	return data(footprintKiB, memOpFrac, hotFrac, strideFrac)
}

// Fig2Coords returns the measured-working-set coordinates the spec was
// calibrated from — the inverse of the calibration multipliers New applies.
func (s Spec) Fig2Coords() (codeKiB, branchSites int) {
	return int(float64(s.Gen.CodeKiB)/codeCalib[s.Lang] + 0.5),
		int(float64(s.Gen.BranchSites)/siteCalib[s.Lang] + 0.5)
}

// All returns the 20 functions of Table 1 in the order the paper's figures
// plot them (Python, NodeJS, Go).
func All() []Spec {
	return []Spec{
		// ---- Python -------------------------------------------------
		spec("AES-P", "AES encryption", Python, 101, 540, 11500, 900_000,
			data(576, 0.30, 0.88, 0.45)),
		spec("Auth-P", "API-gateway authentication", Python, 102, 500, 10500, 750_000,
			data(384, 0.32, 0.86, 0.30)),
		spec("Fib-P", "Fibonacci", Python, 103, 460, 10000, 700_000,
			data(384, 0.28, 0.90, 0.25)),
		spec("Email-P", "Online Boutique: Email", Python, 104, 560, 12000, 950_000,
			data(768, 0.33, 0.84, 0.35)),
		spec("RecO-P", "Online Boutique: Recommendation", Python, 105, 560, 14000, 1_050_000,
			data(960, 0.34, 0.82, 0.35)),
		// ---- NodeJS -------------------------------------------------
		spec("AES-N", "AES encryption", NodeJS, 201, 440, 11000, 800_000,
			data(576, 0.30, 0.87, 0.40)),
		spec("Auth-N", "API-gateway authentication", NodeJS, 202, 420, 10000, 700_000,
			data(384, 0.31, 0.86, 0.30)),
		spec("Fib-N", "Fibonacci", NodeJS, 203, 390, 9200, 650_000,
			data(384, 0.27, 0.90, 0.25)),
		spec("Curr-N", "Online Boutique: Currency", NodeJS, 204, 470, 11800, 850_000,
			data(576, 0.32, 0.85, 0.35)),
		spec("Pay-N", "Online Boutique: Payment", NodeJS, 205, 490, 12500, 900_000,
			data(576, 0.33, 0.85, 0.35)),
		// ---- Go -----------------------------------------------------
		spec("AES-G", "AES encryption", Go, 301, 330, 7200, 650_000,
			data(576, 0.29, 0.88, 0.45)),
		spec("Auth-G", "API-gateway authentication", Go, 302, 250, 5400, 480_000,
			data(384, 0.30, 0.88, 0.30)),
		spec("Fib-G", "Fibonacci", Go, 303, 240, 6300, 450_000,
			data(192, 0.26, 0.92, 0.25)),
		spec("Geo-G", "Hotel Reservation: Geo", Go, 304, 300, 6800, 560_000,
			data(576, 0.31, 0.86, 0.35)),
		spec("Prof-G", "Hotel Reservation: Profile", Go, 305, 340, 7600, 620_000,
			data(768, 0.32, 0.85, 0.35)),
		spec("Rate-G", "Hotel Reservation: Rate", Go, 306, 320, 7000, 580_000,
			data(576, 0.31, 0.86, 0.35)),
		spec("RecH-G", "Hotel Reservation: Recommendation", Go, 307, 360, 8200, 640_000,
			data(768, 0.32, 0.84, 0.35)),
		spec("Res-G", "Hotel Reservation: Reservation", Go, 308, 380, 8600, 680_000,
			data(768, 0.33, 0.84, 0.35)),
		spec("User-G", "Hotel Reservation: User", Go, 309, 280, 6200, 520_000,
			data(384, 0.30, 0.88, 0.30)),
		spec("Ship-G", "Online Boutique: Shipping", Go, 310, 310, 7000, 570_000,
			data(576, 0.31, 0.86, 0.35)),
	}
}

// ByName returns the named spec.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown function %q", name)
}

// Names returns all function names in plot order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
