// Package loadgen is the open-loop load generator behind cmd/ignite-load:
// deterministic arrival schedules (Poisson, diurnal, bursty), a log-bucketed
// quantile sketch for latency percentiles, and a versioned JSON report.
//
// Open-loop means requests fire at their scheduled arrival times regardless
// of how fast the server answers — the generator never waits for a response
// before sending the next request, so server slowdowns surface as latency
// (queueing at the server) rather than silently throttling offered load,
// the coordinated-omission trap closed-loop generators fall into.
package loadgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Process names the supported arrival processes.
type Process string

const (
	// Poisson is a homogeneous Poisson process: i.i.d. exponential
	// inter-arrival gaps at the target rate.
	Poisson Process = "poisson"
	// Diurnal modulates a Poisson process with a sinusoidal day curve
	// (compressed into the run's duration): rate swings ±75% around the
	// target, produced by thinning a max-rate Poisson stream.
	Diurnal Process = "diurnal"
	// Bursty is an on/off Markov-modulated Poisson process with
	// heavy-tailed (Pareto) dwell times — a crude self-similar workload:
	// bursts at 4× the target rate separated by heavy-tailed quiet gaps.
	Bursty Process = "bursty"
)

// ParseProcess resolves the wire spelling of an arrival process.
func ParseProcess(s string) (Process, error) {
	switch Process(s) {
	case Poisson, Diurnal, Bursty:
		return Process(s), nil
	case "":
		return Poisson, nil
	}
	return "", fmt.Errorf("loadgen: unknown arrival process %q (valid: poisson, diurnal, bursty)", s)
}

// Schedule generates the arrival offsets (from test start) of one run:
// process at rate req/s for the given duration, driven entirely by a
// PCG(seed) stream — the same seed always reproduces the identical
// schedule, which is what the determinism test pins.
func Schedule(p Process, rate float64, duration time.Duration, seed uint64) []time.Duration {
	if rate <= 0 || duration <= 0 {
		return nil
	}
	rng := rand.New(rand.NewPCG(seed, 0x69676e697465)) // "ignite"
	switch p {
	case Diurnal:
		return diurnal(rng, rate, duration)
	case Bursty:
		return bursty(rng, rate, duration)
	default:
		return poisson(rng, rate, duration)
	}
}

// expGap draws one exponential inter-arrival gap at the given rate.
func expGap(rng *rand.Rand, rate float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}

func poisson(rng *rand.Rand, rate float64, duration time.Duration) []time.Duration {
	out := make([]time.Duration, 0, int(rate*duration.Seconds())+16)
	for t := expGap(rng, rate); t < duration; t += expGap(rng, rate) {
		out = append(out, t)
	}
	return out
}

// diurnal thins a Poisson stream at the peak rate down to a sinusoidal
// instantaneous rate: λ(t) = rate · (1 + 0.75·sin(2πt/duration)). Thinning
// keeps the schedule exact for the inhomogeneous process without numeric
// integration.
func diurnal(rng *rand.Rand, rate float64, duration time.Duration) []time.Duration {
	peak := rate * 1.75
	out := make([]time.Duration, 0, int(rate*duration.Seconds())+16)
	for t := expGap(rng, peak); t < duration; t += expGap(rng, peak) {
		frac := float64(t) / float64(duration)
		lambda := rate * (1 + 0.75*math.Sin(2*math.Pi*frac))
		if rng.Float64()*peak < lambda {
			out = append(out, t)
		}
	}
	return out
}

// bursty alternates Pareto-dwelled ON periods (Poisson at 4× rate) and OFF
// periods (silence), tuned so the long-run average offered load is the
// target rate. Heavy-tailed dwells (α=1.5, finite mean, infinite variance)
// give the burst-length distribution the long-range dependence that makes
// aggregated traffic self-similar.
func bursty(rng *rand.Rand, rate float64, duration time.Duration) []time.Duration {
	const (
		burstFactor = 4.0
		alpha       = 1.5
		meanOn      = 200 * time.Millisecond
	)
	// Duty cycle must satisfy on/(on+off) = 1/burstFactor for the average
	// rate to come out at the target.
	meanOff := time.Duration(float64(meanOn) * (burstFactor - 1))
	pareto := func(mean time.Duration) time.Duration {
		// Pareto with shape α has mean xm·α/(α-1); solve xm from the mean.
		xm := float64(mean) * (alpha - 1) / alpha
		return time.Duration(xm / math.Pow(rng.Float64(), 1/alpha))
	}
	out := make([]time.Duration, 0, int(rate*duration.Seconds())+16)
	t := time.Duration(0)
	for t < duration {
		onEnd := t + pareto(meanOn)
		for gap := expGap(rng, rate*burstFactor); t+gap < onEnd; gap = expGap(rng, rate*burstFactor) {
			t += gap
			if t >= duration {
				return out
			}
			out = append(out, t)
		}
		t = onEnd + pareto(meanOff)
	}
	return out
}
