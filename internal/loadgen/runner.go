package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RunConfig shapes one open-loop run against a serving daemon.
type RunConfig struct {
	// URL is the full invoke endpoint, e.g. "http://127.0.0.1:8080/v1/invoke".
	URL string
	// Body is the pre-marshaled request sent verbatim on every arrival.
	// Marshaling once outside the hot loop (and letting the server's
	// response cache key on the identical bytes) is what keeps a
	// single-core generator ahead of a 10k req/s schedule.
	Body []byte
	// Schedule is the arrival offsets from run start (see Schedule).
	Schedule []time.Duration
	// Senders is the worker pool draining scheduled requests (default 64).
	// Open-loop semantics: arrivals whose scheduled time has passed fire
	// back-to-back; they never wait for earlier responses.
	Senders int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// ShedRetries caps how many times one arrival retries a shed (429)
	// response, waiting out the server's Retry-After hint between attempts.
	// 0 keeps the pre-retry behavior: a shed response counts as an error
	// immediately. Latency stays measured from the scheduled arrival
	// through the final attempt, so retried requests pay their waits in
	// the reported distribution — open-loop discipline survives retries.
	ShedRetries int
}

// RunStats is the client-side outcome of one run.
type RunStats struct {
	Scheduled   uint64
	Sent        uint64
	OK          uint64
	Errors      uint64 // transport failures + non-2xx final outcomes
	Retries     uint64 // shed (429) responses retried after their Retry-After
	StatusCount map[string]uint64
	Latency     *Sketch
	Elapsed     time.Duration
}

// AchievedRPS is the completed-request throughput over the measured wall.
func (st RunStats) AchievedRPS() float64 {
	if st.Elapsed <= 0 {
		return 0
	}
	return float64(st.OK) / st.Elapsed.Seconds()
}

// Run drives the schedule against the server and blocks until every request
// has completed or ctx is canceled. Latency is measured from each request's
// scheduled arrival, so dispatch lateness (generator running behind) counts
// as latency instead of vanishing — the open-loop discipline.
func Run(ctx context.Context, cfg RunConfig) (RunStats, error) {
	if cfg.URL == "" || len(cfg.Body) == 0 {
		return RunStats{}, fmt.Errorf("loadgen: URL and Body are required")
	}
	senders := cfg.Senders
	if senders <= 0 {
		senders = 64
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	transport := &http.Transport{
		MaxIdleConns:        senders,
		MaxIdleConnsPerHost: senders,
		IdleConnTimeout:     90 * time.Second,
	}
	client := &http.Client{Transport: transport, Timeout: timeout}
	defer transport.CloseIdleConnections()

	stats := RunStats{
		Scheduled:   uint64(len(cfg.Schedule)),
		StatusCount: make(map[string]uint64),
		Latency:     NewSketch(),
	}
	var sent, ok, errs, retried atomic.Uint64
	var statusMu sync.Mutex

	jobs := make(chan time.Time, senders*4)
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for scheduled := range jobs {
				sent.Add(1)
			attempt:
				for tries := 0; ; tries++ {
					req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL, bytes.NewReader(cfg.Body))
					if err != nil {
						errs.Add(1)
						break
					}
					req.Header.Set("Content-Type", "application/json")
					resp, err := client.Do(req)
					if err != nil {
						errs.Add(1)
						statusMu.Lock()
						stats.StatusCount["transport-error"]++
						statusMu.Unlock()
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					statusMu.Lock()
					stats.StatusCount[strconv.Itoa(resp.StatusCode)]++
					statusMu.Unlock()
					if resp.StatusCode == http.StatusTooManyRequests &&
						tries < cfg.ShedRetries && ctx.Err() == nil {
						retried.Add(1)
						select {
						case <-time.After(retryAfter(resp)):
							continue attempt
						case <-ctx.Done():
						}
					}
					stats.Latency.Observe(time.Since(scheduled))
					if resp.StatusCode >= 200 && resp.StatusCode < 300 {
						ok.Add(1)
					} else {
						errs.Add(1)
					}
					break
				}
			}
		}()
	}

	start := time.Now()
dispatch:
	for _, offset := range cfg.Schedule {
		if wait := offset - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		jobs <- start.Add(offset)
	}
	close(jobs)
	wg.Wait()
	stats.Elapsed = time.Since(start)
	stats.Sent = sent.Load()
	stats.OK = ok.Load()
	stats.Errors = errs.Load()
	stats.Retries = retried.Load()
	return stats, ctx.Err()
}

// retryAfter reads the server's Retry-After hint off a shed response,
// clamped to [1s, 30s] so a missing or absurd header can neither hot-loop
// the generator nor park a sender for the rest of the run.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}
