package loadgen

import (
	"math"
	"sync"
	"time"
)

// Sketch is a log-bucketed latency quantile estimator: bucket i covers
// [base·γ^i, base·γ^(i+1)) with γ = 1.02, so any reported quantile is within
// 2% relative error of the true value — tight enough for p999 tables while
// using a few KiB regardless of sample count. Observations are mutex-guarded
// so response-reader goroutines can record concurrently.
type Sketch struct {
	mu      sync.Mutex
	buckets []uint64
	count   uint64
	min     time.Duration
	max     time.Duration
}

const (
	sketchGamma = 1.02
	sketchBase  = float64(time.Microsecond)
)

var sketchLogGamma = math.Log(sketchGamma)

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{buckets: make([]uint64, 0, 1024)}
}

// bucketOf maps a latency to its bucket index (0 for anything ≤ 1µs).
func bucketOf(d time.Duration) int {
	if float64(d) <= sketchBase {
		return 0
	}
	return int(math.Log(float64(d)/sketchBase)/sketchLogGamma) + 1
}

// Observe folds one latency into the sketch.
func (s *Sketch) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bucketOf(d)
	s.mu.Lock()
	for len(s.buckets) <= i {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[i]++
	if s.count == 0 || d < s.min {
		s.min = d
	}
	if d > s.max {
		s.max = d
	}
	s.count++
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantile returns the latency at quantile q in [0, 1] (0 when empty). The
// reported value is the geometric midpoint of the bucket holding the q-th
// observation, clamped to the observed min/max.
func (s *Sketch) Quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	var seen uint64
	for i, n := range s.buckets {
		seen += n
		if seen >= rank {
			var mid float64
			if i == 0 {
				mid = sketchBase / 2
			} else {
				lo := sketchBase * math.Pow(sketchGamma, float64(i-1))
				mid = lo * math.Sqrt(sketchGamma)
			}
			d := time.Duration(mid)
			if d < s.min {
				d = s.min
			}
			if d > s.max {
				d = s.max
			}
			return d
		}
	}
	return s.max
}

// Summary reports (min, p50, p99, p999, max) in one consistent pass.
func (s *Sketch) Summary() (min, p50, p99, p999, max time.Duration) {
	return s.minv(), s.Quantile(0.50), s.Quantile(0.99), s.Quantile(0.999), s.maxv()
}

func (s *Sketch) minv() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.min
}

func (s *Sketch) maxv() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}
