package loadgen

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestScheduleDeterministic pins the load generator's core contract: the
// same (process, rate, duration, seed) always yields the identical arrival
// schedule, and a different seed yields a different one.
func TestScheduleDeterministic(t *testing.T) {
	for _, p := range []Process{Poisson, Diurnal, Bursty} {
		a := Schedule(p, 500, 2*time.Second, 42)
		b := Schedule(p, 500, 2*time.Second, 42)
		if len(a) == 0 {
			t.Fatalf("%s: empty schedule", p)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", p)
		}
		c := Schedule(p, 500, 2*time.Second, 43)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical schedules", p)
		}
	}
}

// TestScheduleShape checks ordering, range, and approximate rate for each
// process.
func TestScheduleShape(t *testing.T) {
	const rate, dur = 1000.0, 10 * time.Second
	for _, p := range []Process{Poisson, Diurnal, Bursty} {
		sched := Schedule(p, rate, dur, 7)
		if !sort.SliceIsSorted(sched, func(i, j int) bool { return sched[i] < sched[j] }) {
			t.Errorf("%s: schedule not sorted", p)
		}
		for _, off := range sched {
			if off < 0 || off >= dur {
				t.Errorf("%s: offset %v outside [0, %v)", p, off, dur)
			}
		}
		// All three processes target the same long-run average rate. The
		// bursty process has heavy-tailed (infinite-variance) dwells, so
		// any finite window can land far from the mean — its band only
		// catches order-of-magnitude mistakes.
		got := float64(len(sched)) / dur.Seconds()
		lo, hi := rate*0.8, rate*1.2
		if p == Bursty {
			lo, hi = rate*0.25, rate*3
		}
		if got < lo || got > hi {
			t.Errorf("%s: achieved %.0f arrivals/s, want within [%.0f, %.0f]", p, got, lo, hi)
		}
	}
}

// TestBurstyIsBursty asserts the bursty process actually clusters arrivals:
// its inter-arrival coefficient of variation must exceed the Poisson
// process's (which is ~1 for exponential gaps).
func TestBurstyIsBursty(t *testing.T) {
	cv := func(sched []time.Duration) float64 {
		var gaps []float64
		for i := 1; i < len(sched); i++ {
			gaps = append(gaps, float64(sched[i]-sched[i-1]))
		}
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		var sq float64
		for _, g := range gaps {
			sq += (g - mean) * (g - mean)
		}
		return math.Sqrt(sq/float64(len(gaps))) / mean
	}
	poissonCV := cv(Schedule(Poisson, 1000, 10*time.Second, 3))
	burstyCV := cv(Schedule(Bursty, 1000, 10*time.Second, 3))
	if burstyCV <= poissonCV {
		t.Errorf("bursty CV %.2f <= poisson CV %.2f; arrivals are not clustered", burstyCV, poissonCV)
	}
}

func TestParseProcess(t *testing.T) {
	if p, err := ParseProcess(""); err != nil || p != Poisson {
		t.Errorf("default process = %v, %v", p, err)
	}
	if _, err := ParseProcess("fractal"); err == nil {
		t.Error("unknown process accepted")
	}
}

// TestSketchQuantiles checks the log-bucketed sketch against exact
// quantiles of a known sample: every estimate must be within the sketch's
// 2% relative-error bound (plus the bucket-midpoint rounding).
func TestSketchQuantiles(t *testing.T) {
	s := NewSketch()
	const n = 100000
	for i := 1; i <= n; i++ {
		s.Observe(time.Duration(i) * time.Microsecond)
	}
	if s.Count() != n {
		t.Fatalf("count = %d", s.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(s.Quantile(q))
		want := q * n * float64(time.Microsecond)
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Errorf("q%.3f = %v, want ~%v (rel err %.3f)", q, time.Duration(got), time.Duration(want), rel)
		}
	}
	min, p50, p99, p999, max := s.Summary()
	if min != time.Microsecond || max != n*time.Microsecond {
		t.Errorf("min/max = %v/%v", min, max)
	}
	if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
		t.Errorf("quantiles not monotone: %v %v %v %v", p50, p99, p999, max)
	}
}

func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch()
	if s.Quantile(0.5) != 0 {
		t.Error("empty sketch quantile != 0")
	}
	s.Observe(0)
	s.Observe(500 * time.Nanosecond) // below the 1µs base bucket
	if s.Quantile(0.5) > time.Microsecond {
		t.Errorf("sub-base observations misplaced: %v", s.Quantile(0.5))
	}
}

// TestReportRoundTripAndVersionGate mirrors the obs.Document contract for
// the load-report document.
func TestReportRoundTripAndVersionGate(t *testing.T) {
	r := Report{
		Function: "Auth-G", Config: "ignite", Mode: "interleaved",
		Process: "poisson", TargetRPS: 10000, DurationSec: 5, Seed: 1,
		Scheduled: 50000, Sent: 50000, OK: 49990, Errors: 10,
		AchievedRPS: 9998,
		Latency:     LatencySummary{P50Ms: 0.8, P99Ms: 4.2, P999Ms: 9.9},
		ServerSide:  ServerSide{Batches: 2, BatchedRequests: 17, CoalescingRatio: 8.5},
	}
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || back.Kind != ReportKind {
		t.Errorf("version/kind not stamped: %+v", back)
	}
	if back.OK != r.OK || back.Latency != r.Latency || back.ServerSide != r.ServerSide {
		t.Error("round trip lost data")
	}

	bumped := bytes.Replace(data, []byte(`"schemaVersion": 1`), []byte(`"schemaVersion": 2`), 1)
	if bytes.Equal(bumped, data) {
		t.Fatal("fixture did not contain the version field")
	}
	if _, err := DecodeReport(bumped); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("future schema version accepted: %v", err)
	}
}

// TestRunnerOpenLoop drives a stub server and verifies the runner's
// accounting: every scheduled request is sent, latency is measured from the
// scheduled arrival, and non-2xx answers count as errors.
func TestRunnerOpenLoop(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%5 == 0 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	sched := Schedule(Poisson, 2000, 200*time.Millisecond, 11)
	stats, err := Run(context.Background(), RunConfig{
		URL:      srv.URL,
		Body:     []byte(`{"x":1}`),
		Schedule: sched,
		Senders:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != uint64(len(sched)) || stats.Scheduled != uint64(len(sched)) {
		t.Errorf("sent %d of %d scheduled", stats.Sent, len(sched))
	}
	if stats.OK+stats.Errors != stats.Sent {
		t.Errorf("ok %d + errors %d != sent %d", stats.OK, stats.Errors, stats.Sent)
	}
	if stats.Errors == 0 {
		t.Error("stub 429s not counted as errors")
	}
	if stats.StatusCount["429"] == 0 || stats.StatusCount["200"] == 0 {
		t.Errorf("status counts = %v", stats.StatusCount)
	}
	if stats.Latency.Count() != stats.Sent {
		t.Errorf("latency count %d != sent %d", stats.Latency.Count(), stats.Sent)
	}
	if stats.AchievedRPS() <= 0 {
		t.Error("achieved RPS not computed")
	}
}

// TestRunnerCancel verifies a canceled context stops dispatch.
func TestRunnerCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	sched := Schedule(Poisson, 100, 10*time.Second, 1)
	stats, err := Run(ctx, RunConfig{URL: srv.URL, Body: []byte(`{}`), Schedule: sched})
	if err == nil {
		t.Error("canceled run returned nil error")
	}
	if stats.Sent >= uint64(len(sched)) {
		t.Errorf("cancel did not stop dispatch: sent %d of %d", stats.Sent, len(sched))
	}
}

// TestRunnerRetriesShedRequests exercises the client half of the backoff
// contract: a 429 carrying Retry-After is retried after the hinted wait
// (not hot-looped), the eventual 2xx counts as OK, and the retry surfaces
// in both RunStats.Retries and the latency measured from the scheduled
// arrival — the wait is paid, not hidden.
func TestRunnerRetriesShedRequests(t *testing.T) {
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	stats, err := Run(context.Background(), RunConfig{
		URL:         srv.URL,
		Body:        []byte(`{}`),
		Schedule:    []time.Duration{0},
		Senders:     1,
		ShedRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OK != 1 || stats.Errors != 0 {
		t.Errorf("ok %d errors %d, want the retried request to succeed", stats.OK, stats.Errors)
	}
	if stats.Retries != 1 {
		t.Errorf("retries = %d, want 1", stats.Retries)
	}
	if stats.StatusCount["429"] != 1 || stats.StatusCount["200"] != 1 {
		t.Errorf("status counts = %v, want one shed and one success", stats.StatusCount)
	}
	if stats.Latency.Count() != 1 {
		t.Errorf("latency observations = %d, want 1 (per arrival, not per attempt)", stats.Latency.Count())
	}
	if max := stats.Latency.Quantile(1); max < time.Second {
		t.Errorf("max latency %v, want >= the 1s Retry-After wait", max)
	}

	// With retries disabled the same shed response is a terminal error.
	hits.Store(0)
	stats, err = Run(context.Background(), RunConfig{
		URL:      srv.URL,
		Body:     []byte(`{}`),
		Schedule: []time.Duration{0},
		Senders:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 || stats.Retries != 0 {
		t.Errorf("no-retry run: errors %d retries %d, want 1 and 0", stats.Errors, stats.Retries)
	}
}
