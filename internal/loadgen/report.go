package loadgen

import (
	"encoding/json"
	"fmt"
	"time"
)

// SchemaVersion versions the load-report document.
const SchemaVersion = 1

// ReportKind identifies load-report documents.
const ReportKind = "ignite.load-report"

// Report is the versioned result document of one load run — what
// cmd/ignite-load writes and CI asserts on.
type Report struct {
	SchemaVersion int    `json:"schemaVersion"`
	Kind          string `json:"kind"`

	// Target describes the request under load.
	Function string `json:"function"`
	Config   string `json:"config"`
	Mode     string `json:"mode"`

	// Offered load.
	Process     string  `json:"process"`
	TargetRPS   float64 `json:"targetRPS"`
	DurationSec float64 `json:"durationSec"`
	Seed        uint64  `json:"seed"`

	// Outcome.
	Scheduled   uint64            `json:"scheduled"`
	Sent        uint64            `json:"sent"`
	OK          uint64            `json:"ok"`
	Errors      uint64            `json:"errors"`
	Retries     uint64            `json:"retries,omitempty"`
	StatusCount map[string]uint64 `json:"statusCount,omitempty"`
	AchievedRPS float64           `json:"achievedRPS"`

	// Latency percentiles, measured from each request's scheduled arrival
	// time (not its actual send time), so generator lateness counts
	// against the server the way client queueing would in production.
	Latency LatencySummary `json:"latency"`

	// ServerSide carries the /metrics deltas scraped around the run
	// (zero-valued when the scrape was skipped).
	ServerSide ServerSide `json:"serverSide"`
}

// LatencySummary is the percentile table in milliseconds.
type LatencySummary struct {
	MinMs  float64 `json:"minMs"`
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// SummaryFrom converts a sketch reading into the wire form.
func SummaryFrom(s *Sketch) LatencySummary {
	min, p50, p99, p999, max := s.Summary()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{MinMs: ms(min), P50Ms: ms(p50), P99Ms: ms(p99), P999Ms: ms(p999), MaxMs: ms(max)}
}

// ServerSide is the server's own view of the run: the serve.* metric deltas
// between the pre-run and post-run /metrics scrapes. CoalescingRatio is
// batched requests per batch — >1 means the batcher merged concurrent
// requests onto shared cell computations.
type ServerSide struct {
	Requests        float64 `json:"requests"`
	FastPathHits    float64 `json:"fastPathHits"`
	Batches         float64 `json:"batches"`
	BatchedRequests float64 `json:"batchedRequests"`
	MaxBatchSize    float64 `json:"maxBatchSize"`
	CoalescingRatio float64 `json:"coalescingRatio"`
	Shed            float64 `json:"shed"`
}

// Encode renders the report as stable, indented JSON, stamping version and
// kind.
func (r Report) Encode() ([]byte, error) {
	r.SchemaVersion = SchemaVersion
	r.Kind = ReportKind
	return json.MarshalIndent(r, "", "  ")
}

// DecodeReport parses a load report, rejecting unknown schema versions and
// kinds — the same strictness obs.DecodeDocument applies to result
// documents.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("loadgen: decode report: %w", err)
	}
	if r.SchemaVersion != SchemaVersion {
		return r, fmt.Errorf("loadgen: report schema version %d, this build reads %d",
			r.SchemaVersion, SchemaVersion)
	}
	if r.Kind != ReportKind {
		return r, fmt.Errorf("loadgen: unexpected report kind %q", r.Kind)
	}
	return r, nil
}
