// Package population generalizes the fixed Table-1 workload catalog into a
// parameterized, PCG-seeded population sampler: thousands of synthetic
// serverless functions drawn from the paper's Figure-2 characterization
// distributions, each yielding a standard workload.Spec so every existing
// engine, experiment, and serving path runs unmodified.
//
// The standard flavor fits per-runtime lognormal marginals (instruction
// working set, branch working set, dynamic instruction count, data
// footprint) from the 20 Table-1 specs and samples inside the Figure-2
// bounds. Three additional flavors extend the characterization beyond the
// paper's corpus:
//
//   - tiny: hot trigger-style functions far below the Figure-2 floor, with
//     high arrival rates — the functions keep-alive favors;
//   - huge: cold ML-inference-style functions above the Figure-2 ceiling,
//     whose branch working sets overflow Ignite's 120 KiB metadata cap;
//   - chain: workflow compositions (sequential chains and fan-outs) whose
//     aggregate spec sums 2-4 standard-ish stages.
//
// Sampling is a single serial pass over one PCG stream: the same Params
// always produce byte-identical functions, independent of GOMAXPROCS or
// any scheduler parallelism around the caller.
package population

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"ignite/internal/workload"
)

// Flavor classifies a sampled function.
type Flavor uint8

const (
	Standard Flavor = iota
	Tiny
	Huge
	Chain
)

func (f Flavor) String() string {
	switch f {
	case Standard:
		return "standard"
	case Tiny:
		return "tiny"
	case Huge:
		return "huge"
	case Chain:
		return "chain"
	default:
		return "?"
	}
}

// prefix is the flavor's function-name prefix; sampled names never collide
// with the Table-1 catalog's.
func (f Flavor) prefix() string {
	switch f {
	case Tiny:
		return "Tny"
	case Huge:
		return "Hug"
	case Chain:
		return "Chn"
	default:
		return "Std"
	}
}

// Mix is the flavor composition of a population, as fractions that Sample
// normalizes (so {7, 1.5, 1, 0.5} and {0.70, 0.15, 0.10, 0.05} agree).
type Mix struct {
	Standard float64
	Tiny     float64
	Huge     float64
	Chain    float64
}

// DefaultMix is the fleet default: mostly in-characterization functions
// with meaningful tiny-hot and huge-cold tails.
func DefaultMix() Mix { return Mix{Standard: 0.70, Tiny: 0.15, Huge: 0.10, Chain: 0.05} }

func (m Mix) total() float64 { return m.Standard + m.Tiny + m.Huge + m.Chain }

// Params configures one population draw.
type Params struct {
	// Seed drives the single PCG stream behind every draw. Same seed,
	// same population, byte for byte.
	Seed uint64
	// N is the population size.
	N int
	// Mix is the flavor composition (zero value = DefaultMix).
	Mix Mix
	// RateScale multiplies every sampled arrival rate (0 = 1.0): the knob
	// that turns the same population into a heavier or lighter node.
	RateScale float64
	// TargetInstr, when > 0, overrides every sampled function's dynamic
	// instruction budget — the fleet analogue of the CLIs' -target-instr
	// smoke knob. Working sets are left untouched.
	TargetInstr uint64
}

func (p Params) withDefaults() (Params, error) {
	if p.N <= 0 {
		return p, fmt.Errorf("population: N must be positive (got %d)", p.N)
	}
	if p.Mix == (Mix{}) {
		p.Mix = DefaultMix()
	}
	if p.Mix.Standard < 0 || p.Mix.Tiny < 0 || p.Mix.Huge < 0 || p.Mix.Chain < 0 || p.Mix.total() <= 0 {
		return p, fmt.Errorf("population: invalid flavor mix %+v", p.Mix)
	}
	if p.RateScale == 0 {
		p.RateScale = 1
	}
	if p.RateScale < 0 {
		return p, fmt.Errorf("population: negative RateScale %g", p.RateScale)
	}
	return p, nil
}

// Function is one sampled tenant function: a standard workload.Spec
// (embedded, so it drops into sim.New, the cell cache, the serving catalog)
// plus the fleet-level attributes the budget market consumes.
type Function struct {
	workload.Spec
	Flavor Flavor
	// CodeKiB and BranchSites are the function's measured Figure-2
	// coordinates (the working sets the spec was calibrated to), kept
	// explicit so the market's cost model never has to invert the
	// generator calibration.
	CodeKiB     int
	BranchSites int
	// RatePerSec is the function's mean offered arrival rate — the
	// popularity axis of the population, consumed by the budget market's
	// schedules and benefit scores.
	RatePerSec float64
	// Stages is the number of composed stages (0 for simple functions,
	// 2-4 for chain-flavor workflow compositions).
	Stages int
	// FanOut marks a chain composition whose stages trigger in parallel
	// rather than sequentially. The aggregate working set and instruction
	// count are identical; the distinction is kept for latency-level
	// studies layered on top.
	FanOut bool
}

// marginal is one fitted lognormal marginal: mean and stddev of log(x).
type marginal struct{ mu, sigma float64 }

func (m marginal) draw(rng *rand.Rand) float64 {
	return math.Exp(m.mu + m.sigma*rng.NormFloat64())
}

func fitLog(xs []float64) marginal {
	var sum float64
	for _, x := range xs {
		sum += math.Log(x)
	}
	mu := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := math.Log(x) - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(xs)))
	if sigma < 0.05 {
		sigma = 0.05 // keep a minimum spread even for tight marginals
	}
	return marginal{mu: mu, sigma: sigma}
}

// langFit holds the per-runtime marginals fitted from the Table-1 catalog:
// instruction working set (KiB), branch-sites-per-code-KiB ratio,
// instructions-per-code-KiB ratio, data footprint (KiB), and the mean data
// mix knobs.
type langFit struct {
	code      marginal
	siteRatio marginal // BranchSites / CodeKiB
	instRatio marginal // TargetInstr / CodeKiB
	footprint marginal // data footprint KiB
	memOp     float64
	hot       float64
	stride    float64
}

var fitOnce sync.Once
var fits map[workload.Lang]*langFit

// fit computes the per-language marginals from workload.All, once.
func fit() map[workload.Lang]*langFit {
	fitOnce.Do(func() {
		type acc struct {
			code, siteR, instR, foot []float64
			memOp, hot, stride       []float64
		}
		accs := map[workload.Lang]*acc{}
		for _, s := range workload.All() {
			a := accs[s.Lang]
			if a == nil {
				a = &acc{}
				accs[s.Lang] = a
			}
			codeKiB, sites := s.Fig2Coords()
			a.code = append(a.code, float64(codeKiB))
			a.siteR = append(a.siteR, float64(sites)/float64(codeKiB))
			a.instR = append(a.instR, float64(s.TargetInstr)/float64(codeKiB))
			a.foot = append(a.foot, float64(s.Data.FootprintBytes)/1024)
			a.memOp = append(a.memOp, s.Data.MemOpFrac)
			a.hot = append(a.hot, s.Data.HotFrac)
			a.stride = append(a.stride, s.Data.StrideFrac)
		}
		fits = make(map[workload.Lang]*langFit, len(accs))
		for lang, a := range accs {
			fits[lang] = &langFit{
				code:      fitLog(a.code),
				siteRatio: fitLog(a.siteR),
				instRatio: fitLog(a.instR),
				footprint: fitLog(a.foot),
				memOp:     mean(a.memOp),
				hot:       mean(a.hot),
				stride:    mean(a.stride),
			}
		}
	})
	return fits
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func clampF(x, lo, hi float64) float64 { return math.Min(math.Max(x, lo), hi) }

// langWeights follows the Table-1 composition: 5 Python, 5 NodeJS, 10 Go.
var langWeights = []struct {
	lang workload.Lang
	w    float64
}{
	{workload.Python, 0.25},
	{workload.NodeJS, 0.25},
	{workload.Go, 0.50},
}

func drawLang(rng *rand.Rand) workload.Lang {
	u := rng.Float64()
	for _, lw := range langWeights {
		if u < lw.w {
			return lw.lang
		}
		u -= lw.w
	}
	return workload.Go
}

// rate draws a lognormal arrival rate around the flavor's popularity level:
// tiny functions are hot triggers, huge functions are rare batch-style
// invocations, the rest sit in between.
func drawRate(rng *rand.Rand, f Flavor) float64 {
	var mu, sigma float64
	switch f {
	case Tiny:
		mu, sigma = math.Log(8.0), 0.9
	case Huge:
		mu, sigma = math.Log(0.05), 0.7
	case Chain:
		mu, sigma = math.Log(0.4), 0.8
	default:
		mu, sigma = math.Log(0.8), 1.0
	}
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// stage holds one drawn function body in measured Figure-2 coordinates.
type stage struct {
	codeKiB, sites int
	instrs         uint64
	footKiB        int
	memOp, hot, stride float64
}

// drawStandard samples one in-characterization body for lang, clamped to
// the Figure-2 bounds.
func drawStandard(rng *rand.Rand, lang workload.Lang) stage {
	lf := fit()[lang]
	code := clampF(lf.code.draw(rng), workload.Fig2MinCodeKiB, workload.Fig2MaxCodeKiB)
	sites := clampF(code*lf.siteRatio.draw(rng), workload.Fig2MinBTBEntries, workload.Fig2MaxBTBEntries)
	instrs := code * lf.instRatio.draw(rng)
	foot := clampF(lf.footprint.draw(rng), 128, 2048)
	return stage{
		codeKiB: int(code),
		sites:   int(sites),
		instrs:  uint64(instrs),
		footKiB: int(foot),
		memOp:   clampF(lf.memOp+0.02*rng.NormFloat64(), 0.20, 0.40),
		hot:     clampF(lf.hot+0.02*rng.NormFloat64(), 0.75, 0.95),
		stride:  clampF(lf.stride+0.05*rng.NormFloat64(), 0.15, 0.55),
	}
}

// drawTiny samples a hot trigger-style body far below the Figure-2 floor.
func drawTiny(rng *rand.Rand, lang workload.Lang) stage {
	lf := fit()[lang]
	code := clampF(marginal{mu: math.Log(72), sigma: 0.5}.draw(rng), 24, 160)
	sites := clampF(code*lf.siteRatio.draw(rng), 500, 4000)
	instrs := clampF(code*lf.instRatio.draw(rng), 30_000, 250_000)
	return stage{
		codeKiB: int(code),
		sites:   int(sites),
		instrs:  uint64(instrs),
		footKiB: int(clampF(marginal{mu: math.Log(96), sigma: 0.4}.draw(rng), 48, 256)),
		memOp:   clampF(lf.memOp-0.04+0.02*rng.NormFloat64(), 0.18, 0.32),
		hot:     clampF(lf.hot+0.05+0.02*rng.NormFloat64(), 0.85, 0.97),
		stride:  clampF(lf.stride+0.05*rng.NormFloat64(), 0.15, 0.55),
	}
}

// drawHuge samples a cold ML-inference-style body above the Figure-2
// ceiling; its branch working set overflows the 120 KiB metadata cap,
// which is exactly the regime the budget market studies.
func drawHuge(rng *rand.Rand, lang workload.Lang) stage {
	lf := fit()[lang]
	code := clampF(marginal{mu: math.Log(1100), sigma: 0.35}.draw(rng), 700, 2200)
	sites := clampF(code*lf.siteRatio.draw(rng)*1.1, 15_000, 48_000)
	instrs := clampF(code*lf.instRatio.draw(rng)*1.6, 1_500_000, 6_000_000)
	return stage{
		codeKiB: int(code),
		sites:   int(sites),
		instrs:  uint64(instrs),
		footKiB: int(clampF(marginal{mu: math.Log(12 << 10), sigma: 0.6}.draw(rng), 4<<10, 48<<10)),
		memOp:   clampF(lf.memOp+0.03+0.02*rng.NormFloat64(), 0.25, 0.42),
		hot:     clampF(lf.hot-0.10+0.03*rng.NormFloat64(), 0.60, 0.85),
		stride:  clampF(lf.stride+0.10+0.05*rng.NormFloat64(), 0.25, 0.65),
	}
}

func (s stage) add(o stage) stage {
	s.codeKiB += o.codeKiB
	s.sites += o.sites
	s.instrs += o.instrs
	s.footKiB += o.footKiB
	s.memOp = (s.memOp + o.memOp) / 2
	s.hot = (s.hot + o.hot) / 2
	s.stride = (s.stride + o.stride) / 2
	return s
}

func drawFlavor(rng *rand.Rand, m Mix) Flavor {
	u := rng.Float64() * m.total()
	switch {
	case u < m.Standard:
		return Standard
	case u < m.Standard+m.Tiny:
		return Tiny
	case u < m.Standard+m.Tiny+m.Huge:
		return Huge
	default:
		return Chain
	}
}

// Sample draws a population. The draw is one serial pass over a single
// PCG(seed) stream, so results are byte-identical for equal Params
// regardless of the caller's parallelism.
func Sample(p Params) ([]Function, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0x666c656574)) // "fleet"
	out := make([]Function, 0, p.N)
	for i := 0; i < p.N; i++ {
		flavor := drawFlavor(rng, p.Mix)
		lang := drawLang(rng)
		var body stage
		stages, fanOut := 0, false
		switch flavor {
		case Tiny:
			body = drawTiny(rng, lang)
		case Huge:
			body = drawHuge(rng, lang)
		case Chain:
			stages = 2 + int(rng.Uint64N(3)) // 2-4 stages
			fanOut = rng.Float64() < 0.5
			body = drawStandard(rng, lang)
			for s := 1; s < stages; s++ {
				body = body.add(drawStandard(rng, lang))
			}
		default:
			body = drawStandard(rng, lang)
		}
		rate := drawRate(rng, flavor) * p.RateScale
		seed := rng.Uint64()

		name := fmt.Sprintf("%s%04d-%s", flavor.prefix(), i, lang.Suffix())
		full := fmt.Sprintf("Fleet %s function #%d (%s", flavor, i, lang)
		if flavor == Chain {
			kind := "chain"
			if fanOut {
				kind = "fan-out"
			}
			full = fmt.Sprintf("%s, %d-stage %s", full, stages, kind)
		}
		full += ")"

		instrs := body.instrs
		if p.TargetInstr > 0 {
			instrs = p.TargetInstr
		}
		spec := workload.New(name, full, lang, seed, body.codeKiB, body.sites,
			instrs, workload.DataProfile(body.footKiB, body.memOp, body.hot, body.stride))
		out = append(out, Function{
			Spec:        spec,
			Flavor:      flavor,
			CodeKiB:     body.codeKiB,
			BranchSites: body.sites,
			RatePerSec:  rate,
			Stages:      stages,
			FanOut:      fanOut,
		})
	}
	return out, nil
}

// Specs projects the population onto its workload.Spec slice — the form
// every existing experiments/serve/engine entry point consumes.
func Specs(fns []Function) []workload.Spec {
	specs := make([]workload.Spec, len(fns))
	for i, f := range fns {
		specs[i] = f.Spec
	}
	return specs
}

// ByName returns the named function of a population.
func ByName(fns []Function, name string) (Function, error) {
	for _, f := range fns {
		if f.Name == name {
			return f, nil
		}
	}
	return Function{}, fmt.Errorf("population: unknown function %q", name)
}
