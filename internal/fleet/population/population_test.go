package population_test

import (
	"encoding/json"
	"runtime"
	"sync"
	"testing"

	"ignite/internal/fleet/population"
	"ignite/internal/workload"
)

// TestSamplerDeterminism pins the sampler's core contract: the same seed
// produces byte-identical populations, including when many samplers run
// concurrently under maximum parallelism (the sampler is a single serial
// PCG pass, so GOMAXPROCS and surrounding scheduler width must not leak in).
func TestSamplerDeterminism(t *testing.T) {
	p := population.Params{Seed: 42, N: 500}
	ref, err := population.Sample(p)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}

	const concurrent = 8
	results := make([][]byte, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fns, err := population.Sample(p)
			if err != nil {
				t.Error(err)
				return
			}
			b, err := json.Marshal(fns)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = b
		}(i)
	}
	wg.Wait()
	for i, b := range results {
		if string(b) != string(refBytes) {
			t.Fatalf("concurrent sample %d differs from the reference population (GOMAXPROCS=%d)",
				i, runtime.GOMAXPROCS(0))
		}
	}

	// A different seed must actually change the population.
	other, err := population.Sample(population.Params{Seed: 43, N: 500})
	if err != nil {
		t.Fatal(err)
	}
	ob, _ := json.Marshal(other)
	if string(ob) == string(refBytes) {
		t.Fatal("seed 42 and 43 produced identical populations")
	}
}

// TestStandardFlavorWithinFig2Bounds checks the marginal-distribution
// sanity the sampler promises: every standard-flavor function's measured
// working sets lie inside the paper's Figure-2 characterization bounds,
// tiny functions lie below the floor, and huge functions above the ceiling.
func TestStandardFlavorWithinFig2Bounds(t *testing.T) {
	fns, err := population.Sample(population.Params{Seed: 7, N: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fns {
		switch f.Flavor {
		case population.Standard:
			if f.CodeKiB < workload.Fig2MinCodeKiB || f.CodeKiB > workload.Fig2MaxCodeKiB {
				t.Fatalf("%s: standard code WS %d KiB outside Fig.2 bounds [%d,%d]",
					f.Name, f.CodeKiB, workload.Fig2MinCodeKiB, workload.Fig2MaxCodeKiB)
			}
			if f.BranchSites < workload.Fig2MinBTBEntries || f.BranchSites > workload.Fig2MaxBTBEntries {
				t.Fatalf("%s: standard branch WS %d outside Fig.2 bounds [%d,%d]",
					f.Name, f.BranchSites, workload.Fig2MinBTBEntries, workload.Fig2MaxBTBEntries)
			}
		case population.Tiny:
			if f.CodeKiB >= workload.Fig2MinCodeKiB {
				t.Fatalf("%s: tiny function has %d KiB code WS, want < %d",
					f.Name, f.CodeKiB, workload.Fig2MinCodeKiB)
			}
		case population.Huge:
			if f.CodeKiB <= workload.Fig2MaxCodeKiB {
				t.Fatalf("%s: huge function has %d KiB code WS, want > %d",
					f.Name, f.CodeKiB, workload.Fig2MaxCodeKiB)
			}
			if f.BranchSites <= workload.Fig2MaxBTBEntries {
				t.Fatalf("%s: huge function has %d branch sites, want > %d",
					f.Name, f.BranchSites, workload.Fig2MaxBTBEntries)
			}
		case population.Chain:
			if f.Stages < 2 || f.Stages > 4 {
				t.Fatalf("%s: chain has %d stages, want 2-4", f.Name, f.Stages)
			}
		}
		if f.RatePerSec <= 0 {
			t.Fatalf("%s: non-positive arrival rate %g", f.Name, f.RatePerSec)
		}
		if f.TargetInstr == 0 {
			t.Fatalf("%s: zero instruction budget", f.Name)
		}
	}
}

// TestFlavorMixAndNames checks the flavor composition tracks the requested
// mix and that names are unique and distinct from the Table-1 catalog.
func TestFlavorMixAndNames(t *testing.T) {
	const n = 4000
	fns, err := population.Sample(population.Params{Seed: 99, N: n})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[population.Flavor]int{}
	seen := map[string]bool{}
	for _, f := range fns {
		counts[f.Flavor]++
		if seen[f.Name] {
			t.Fatalf("duplicate function name %q", f.Name)
		}
		seen[f.Name] = true
		if _, err := workload.ByName(f.Name); err == nil {
			t.Fatalf("sampled name %q collides with the Table-1 catalog", f.Name)
		}
	}
	mix := population.DefaultMix()
	for flavor, want := range map[population.Flavor]float64{
		population.Standard: mix.Standard,
		population.Tiny:     mix.Tiny,
		population.Huge:     mix.Huge,
		population.Chain:    mix.Chain,
	} {
		got := float64(counts[flavor]) / n
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("flavor %s: got fraction %.3f, want %.2f±0.03", flavor, got, want)
		}
	}
}

// TestSampledSpecsBuild proves sampled specs are real workloads: a function
// of each flavor generates a program through the same generator path the
// Table-1 catalog uses.
func TestSampledSpecsBuild(t *testing.T) {
	fns, err := population.Sample(population.Params{Seed: 3, N: 200, TargetInstr: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	built := map[population.Flavor]bool{}
	for _, f := range fns {
		if built[f.Flavor] {
			continue
		}
		built[f.Flavor] = true
		if _, _, err := f.Build(); err != nil {
			t.Fatalf("%s (%s): %v", f.Name, f.Flavor, err)
		}
	}
	if len(built) != 4 {
		t.Fatalf("population of 200 only contained %d flavors", len(built))
	}
}

// TestParamValidation exercises the error paths.
func TestParamValidation(t *testing.T) {
	if _, err := population.Sample(population.Params{Seed: 1, N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := population.Sample(population.Params{Seed: 1, N: 10, Mix: population.Mix{Standard: -1}}); err == nil {
		t.Error("negative mix accepted")
	}
	if _, err := population.Sample(population.Params{Seed: 1, N: 10, RateScale: -2}); err == nil {
		t.Error("negative rate scale accepted")
	}
	if _, err := population.ByName(nil, "nope"); err == nil {
		t.Error("unknown name accepted")
	}
}
