package budget

import (
	"fmt"
	"sort"
	"strings"
)

// Policy decides which tenants' recorded metadata stays resident in the
// node's budget. The market calls Reset once per run, then OnHit for every
// invocation of a resident tenant and OnMiss for every invocation of an
// evicted one; OnMiss answers whether to admit the tenant (its cold
// invocation just re-recorded the metadata) and which residents to evict
// first. A policy must never admit beyond the budget — the market verifies
// and fails the run on a violation rather than silently repairing it.
type Policy interface {
	Name() string
	Reset(tenants []Tenant, budgetBytes uint64)
	OnHit(tenant int, now float64)
	OnMiss(tenant int, now float64) (admit bool, victims []int)
}

// unbounded marks a policy that ignores the budget (the no-budget oracle);
// the market prices it with an unlimited budget.
type unbounded interface{ Unbounded() bool }

// benefitScore is the SPES-style benefit density of keeping a tenant warm:
// cycles saved per second of offered load, per byte of resident metadata.
func benefitScore(t Tenant) float64 {
	if t.C.MetaBytes == 0 {
		return 0
	}
	saved := (t.C.ColdCPI - t.C.WarmCPI) * float64(t.C.Instrs)
	return saved * t.F.RatePerSec / float64(t.C.MetaBytes)
}

// residency is the bookkeeping the dynamic policies share: the resident
// set, its byte occupancy, and per-tenant metadata sizes.
type residency struct {
	budget   uint64
	used     uint64
	resident []bool
	size     []uint64
}

func (r *residency) reset(tenants []Tenant, budget uint64) {
	r.budget = budget
	r.used = 0
	r.resident = make([]bool, len(tenants))
	r.size = make([]uint64, len(tenants))
	for i, t := range tenants {
		r.size[i] = t.C.MetaBytes
	}
}

func (r *residency) evict(i int) {
	if r.resident[i] {
		r.resident[i] = false
		r.used -= r.size[i]
	}
}

func (r *residency) admit(i int) {
	if !r.resident[i] {
		r.resident[i] = true
		r.used += r.size[i]
	}
}

// LRU admits every recorded tenant and evicts the least-recently-invoked
// residents until the newcomer fits.
type LRU struct {
	residency
	lastTouch []float64
}

// NewLRU returns the least-recently-used policy.
func NewLRU() *LRU { return &LRU{} }

func (p *LRU) Name() string { return "lru" }

func (p *LRU) Reset(tenants []Tenant, budget uint64) {
	p.reset(tenants, budget)
	p.lastTouch = make([]float64, len(tenants))
}

func (p *LRU) OnHit(i int, now float64) { p.lastTouch[i] = now }

func (p *LRU) OnMiss(i int, now float64) (bool, []int) {
	p.lastTouch[i] = now
	need := p.size[i]
	if need > p.budget {
		return false, nil
	}
	free := p.budget - p.used
	if free >= need {
		p.admit(i)
		return true, nil
	}
	// Evict coldest residents until the newcomer fits.
	type cand struct {
		idx   int
		touch float64
	}
	var cands []cand
	for j, res := range p.resident {
		if res {
			cands = append(cands, cand{j, p.lastTouch[j]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].touch != cands[b].touch {
			return cands[a].touch < cands[b].touch
		}
		return cands[a].idx < cands[b].idx
	})
	var victims []int
	for _, c := range cands {
		if free >= need {
			break
		}
		victims = append(victims, c.idx)
		free += p.size[c.idx]
	}
	for _, v := range victims {
		p.evict(v)
	}
	p.admit(i)
	return true, victims
}

// Benefit is the cost-aware policy: it admits a recorded tenant only when
// its benefit density exceeds that of the residents it would displace —
// evictions only ever trade lower-density metadata for higher-density
// metadata, never churn on recency alone.
type Benefit struct {
	residency
	score []float64
}

// NewBenefit returns the SPES-style benefit-per-byte policy.
func NewBenefit() *Benefit { return &Benefit{} }

func (p *Benefit) Name() string { return "benefit" }

func (p *Benefit) Reset(tenants []Tenant, budget uint64) {
	p.reset(tenants, budget)
	p.score = make([]float64, len(tenants))
	for i, t := range tenants {
		p.score[i] = benefitScore(t)
	}
}

func (p *Benefit) OnHit(int, float64) {}

func (p *Benefit) OnMiss(i int, _ float64) (bool, []int) {
	need := p.size[i]
	if need > p.budget {
		return false, nil
	}
	free := p.budget - p.used
	if free >= need {
		p.admit(i)
		return true, nil
	}
	// Displace strictly lower-density residents, cheapest first.
	type cand struct {
		idx   int
		score float64
	}
	var cands []cand
	for j, res := range p.resident {
		if res && p.score[j] < p.score[i] {
			cands = append(cands, cand{j, p.score[j]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score < cands[b].score
		}
		return cands[a].idx < cands[b].idx
	})
	var victims []int
	freed := free
	for _, c := range cands {
		if freed >= need {
			break
		}
		victims = append(victims, c.idx)
		freed += p.size[c.idx]
	}
	if freed < need {
		return false, nil
	}
	for _, v := range victims {
		p.evict(v)
	}
	p.admit(i)
	return true, victims
}

// TopK is the static plan: at Reset it greedily packs the budget with the
// highest benefit-density tenants; membership never changes at runtime. A
// member becomes resident after its first (recording) invocation; everyone
// else always runs cold.
type TopK struct {
	residency
	member []bool
}

// NewTopK returns the static top-K-by-benefit-density policy.
func NewTopK() *TopK { return &TopK{} }

func (p *TopK) Name() string { return "topk" }

func (p *TopK) Reset(tenants []Tenant, budget uint64) {
	p.reset(tenants, budget)
	p.member = make([]bool, len(tenants))
	order := make([]int, len(tenants))
	for i := range order {
		order[i] = i
	}
	scores := make([]float64, len(tenants))
	for i, t := range tenants {
		scores[i] = benefitScore(t)
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	var packed uint64
	for _, i := range order {
		if sz := p.size[i]; packed+sz <= budget {
			p.member[i] = true
			packed += sz
		}
	}
}

func (p *TopK) OnHit(int, float64) {}

func (p *TopK) OnMiss(i int, _ float64) (bool, []int) {
	if !p.member[i] {
		return false, nil
	}
	p.admit(i)
	return true, nil
}

// Oracle is the no-budget upper bound: every tenant is admitted after its
// first recording invocation and nothing is ever evicted. The market prices
// it with an unlimited budget.
type Oracle struct{ residency }

// NewOracle returns the no-budget oracle policy.
func NewOracle() *Oracle { return &Oracle{} }

func (p *Oracle) Name() string      { return "oracle" }
func (p *Oracle) Unbounded() bool   { return true }
func (p *Oracle) OnHit(int, float64) {}

func (p *Oracle) Reset(tenants []Tenant, budget uint64) { p.reset(tenants, budget) }

func (p *Oracle) OnMiss(i int, _ float64) (bool, []int) {
	if p.size[i] > p.budget-p.used {
		return false, nil
	}
	p.admit(i)
	return true, nil
}

// None is the all-cold lower bound — the baseline every speedup is
// measured against.
type None struct{}

// NewNone returns the never-admit policy.
func NewNone() *None { return &None{} }

func (*None) Name() string                      { return "none" }
func (*None) Reset([]Tenant, uint64)            {}
func (*None) OnHit(int, float64)                {}
func (*None) OnMiss(int, float64) (bool, []int) { return false, nil }

// PolicyNames lists the built-in policies in presentation order.
func PolicyNames() []string { return []string{"lru", "benefit", "topk", "oracle", "none"} }

// NewPolicy resolves a policy name.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "benefit":
		return NewBenefit(), nil
	case "topk":
		return NewTopK(), nil
	case "oracle":
		return NewOracle(), nil
	case "none":
		return NewNone(), nil
	}
	return nil, fmt.Errorf("budget: unknown policy %q (valid: %s)",
		name, strings.Join(PolicyNames(), ", "))
}
