package budget_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"ignite/internal/fleet/budget"
	"ignite/internal/fleet/population"
	"ignite/internal/ignite"
	"ignite/internal/loadgen"
)

func sampleTenants(t *testing.T, seed uint64, n int) []budget.Tenant {
	t.Helper()
	fns, err := population.Sample(population.Params{Seed: seed, N: n})
	if err != nil {
		t.Fatal(err)
	}
	tenants, err := budget.Tenants(fns, budget.Analytic{})
	if err != nil {
		t.Fatal(err)
	}
	return tenants
}

func runParams(seed uint64, b uint64, p budget.Policy) budget.Params {
	return budget.Params{
		Seed:        seed,
		Duration:    30 * time.Second,
		Process:     loadgen.Poisson,
		BudgetBytes: b,
		Policy:      p,
	}
}

// TestMarketDeterminism pins the market's reproducibility contract: the
// same tenants, seed and policy produce byte-identical outcomes.
func TestMarketDeterminism(t *testing.T) {
	tenants := sampleTenants(t, 11, 150)
	const b = 4 << 20
	ref, err := budget.Run(tenants, runParams(5, b, budget.NewLRU()))
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)
	for i := 0; i < 3; i++ {
		got, err := budget.Run(tenants, runParams(5, b, budget.NewLRU()))
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(got)
		if string(gotJSON) != string(refJSON) {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, gotJSON, refJSON)
		}
	}
	if ref.Invocations == 0 || ref.Warm == 0 || ref.Cold == 0 {
		t.Fatalf("degenerate outcome: %+v", ref)
	}
}

// TestPolicyOrdering checks the lower/upper bounds sandwich every real
// policy: all-cold "none" is the worst mean CPI, the no-budget oracle the
// best, and every budgeted policy lands between them.
func TestPolicyOrdering(t *testing.T) {
	tenants := sampleTenants(t, 21, 200)
	const b = 6 << 20

	outcomes := map[string]budget.Outcome{}
	for _, name := range budget.PolicyNames() {
		pol, err := budget.NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		o, err := budget.Run(tenants, runParams(9, b, pol))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		outcomes[name] = o
	}

	none, oracle := outcomes["none"], outcomes["oracle"]
	if none.Warm != 0 {
		t.Fatalf("none admitted %d warm invocations", none.Warm)
	}
	if oracle.MeanCPI >= none.MeanCPI {
		t.Fatalf("oracle mean CPI %.4f not better than all-cold %.4f", oracle.MeanCPI, none.MeanCPI)
	}
	for _, name := range []string{"lru", "benefit", "topk"} {
		o := outcomes[name]
		if o.MeanCPI > none.MeanCPI {
			t.Errorf("%s mean CPI %.4f worse than all-cold %.4f", name, o.MeanCPI, none.MeanCPI)
		}
		if o.MeanCPI < oracle.MeanCPI {
			t.Errorf("%s mean CPI %.4f beats the no-budget oracle %.4f", name, o.MeanCPI, oracle.MeanCPI)
		}
		if o.Warm == 0 {
			t.Errorf("%s: no warm invocations under a %d MiB budget", name, b>>20)
		}
	}
}

// TestBudgetMonotonicity checks that growing the budget never worsens the
// aggregate mean CPI for the static and recency policies (the property the
// check/props harness re-verifies fleet-wide).
func TestBudgetMonotonicity(t *testing.T) {
	tenants := sampleTenants(t, 33, 150)
	budgets := []uint64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 64 << 20}
	for _, name := range []string{"topk", "benefit"} {
		prev := -1.0
		for _, b := range budgets {
			pol, err := budget.NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			o, err := budget.Run(tenants, runParams(17, b, pol))
			if err != nil {
				t.Fatalf("%s @ %d: %v", name, b, err)
			}
			if prev >= 0 && o.MeanCPI > prev+1e-9 {
				t.Errorf("%s: mean CPI rose from %.6f to %.6f when budget grew to %d MiB",
					name, prev, o.MeanCPI, b>>20)
			}
			prev = o.MeanCPI
		}
	}
}

// TestFrontier exercises the sweep: speedups are ≥1 relative to the
// all-cold baseline and the oracle dominates at every budget.
func TestFrontier(t *testing.T) {
	tenants := sampleTenants(t, 77, 120)
	budgets := []uint64{2 << 20, 8 << 20}
	points, err := budget.Frontier(context.Background(), tenants,
		[]string{"lru", "benefit", "oracle"}, budgets,
		budget.Params{Seed: 3, Duration: 20 * time.Second, Process: loadgen.Poisson})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d frontier points, want 6", len(points))
	}
	for _, pt := range points {
		if pt.MeanSpeedup < 1-1e-9 {
			t.Errorf("%s @ %d MiB: mean speedup %.4f below the all-cold baseline",
				pt.Policy, pt.BudgetBytes>>20, pt.MeanSpeedup)
		}
		if pt.P99Speedup <= 0 {
			t.Errorf("%s @ %d MiB: non-positive p99 speedup", pt.Policy, pt.BudgetBytes>>20)
		}
	}
}

// TestFrontierCancellation checks ctx cancellation aborts the sweep.
func TestFrontierCancellation(t *testing.T) {
	tenants := sampleTenants(t, 77, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := budget.Frontier(ctx, tenants, []string{"lru"}, []uint64{1 << 20},
		budget.Params{Seed: 3, Duration: 10 * time.Second}); err == nil {
		t.Fatal("cancelled frontier sweep returned no error")
	}
}

// TestAnalyticTracksSimulated anchors the closed-form model to the ground
// truth: for a handful of sampled functions the analytic and simulated
// models must agree that warm beats cold, and the analytic metadata sizes
// must respect the per-function cap like the simulator does.
func TestAnalyticTracksSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated cost model in -short mode")
	}
	fns, err := population.Sample(population.Params{Seed: 5, N: 40, TargetInstr: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	simModel := budget.Simulated{TargetInstr: 60_000}
	checked := map[population.Flavor]bool{}
	for _, f := range fns {
		if checked[f.Flavor] || f.Flavor == population.Huge {
			continue
		}
		checked[f.Flavor] = true
		ac, err := budget.Analytic{}.Costs(f)
		if err != nil {
			t.Fatalf("%s analytic: %v", f.Name, err)
		}
		sc, err := simModel.Costs(f)
		if err != nil {
			t.Fatalf("%s simulated: %v", f.Name, err)
		}
		if ac.WarmCPI >= ac.ColdCPI {
			t.Errorf("%s: analytic warm CPI %.3f not below cold %.3f", f.Name, ac.WarmCPI, ac.ColdCPI)
		}
		if sc.WarmCPI >= sc.ColdCPI {
			t.Errorf("%s: simulated warm CPI %.3f not below cold %.3f", f.Name, sc.WarmCPI, sc.ColdCPI)
		}
		if ac.MetaBytes > ignite.MaxMetadataBytes {
			t.Errorf("%s: analytic metadata %d exceeds the %d-byte cap", f.Name, ac.MetaBytes, ignite.MaxMetadataBytes)
		}
		if sc.MetaBytes == 0 || sc.MetaBytes > ignite.MaxMetadataBytes {
			t.Errorf("%s: simulated metadata %d outside (0, %d]", f.Name, sc.MetaBytes, ignite.MaxMetadataBytes)
		}
	}
}

// TestPolicyValidation exercises the error paths.
func TestPolicyValidation(t *testing.T) {
	if _, err := budget.NewPolicy("clairvoyant"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := budget.Run(nil, budget.Params{Policy: budget.NewLRU()}); err == nil {
		t.Error("empty tenant set accepted")
	}
	tenants := sampleTenants(t, 1, 5)
	if _, err := budget.Run(tenants, budget.Params{}); err == nil {
		t.Error("nil policy accepted")
	}
}
