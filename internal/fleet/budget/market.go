package budget

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"ignite/internal/fleet/population"
	"ignite/internal/loadgen"
)

// Tenant is one function competing for the node's metadata budget: the
// sampled function plus its priced costs.
type Tenant struct {
	F population.Function
	C Costs
}

// Tenants prices a population under a cost model.
func Tenants(fns []population.Function, m CostModel) ([]Tenant, error) {
	out := make([]Tenant, len(fns))
	for i, f := range fns {
		c, err := m.Costs(f)
		if err != nil {
			return nil, err
		}
		out[i] = Tenant{F: f, C: c}
	}
	return out, nil
}

// Params configures one market run.
type Params struct {
	// Seed drives the per-tenant arrival schedules (tenant i's schedule is
	// seeded by a splitmix of Seed and i, so tenants are decorrelated but
	// the whole run is reproducible).
	Seed uint64
	// Duration is the simulated wall-clock window.
	Duration time.Duration
	// Process is the arrival process every tenant follows at its own rate.
	Process loadgen.Process
	// BudgetBytes is the node's shared metadata budget.
	BudgetBytes uint64
	// Policy decides residency. Policies implementing Unbounded() (the
	// oracle) are priced with an unlimited budget.
	Policy Policy
}

// Outcome summarizes one market run.
type Outcome struct {
	Policy      string
	BudgetBytes uint64

	Invocations int
	Warm        int
	Cold        int
	Evictions   int
	// HitRatio is Warm/Invocations.
	HitRatio float64

	// MeanCPI is the instruction-weighted aggregate CPI (Σcycles/Σinstrs).
	MeanCPI float64
	// P50CPI/P99CPI are invocation-weighted CPI percentiles.
	P50CPI float64
	P99CPI float64
	// MeanResidentBytes is the time-weighted mean budget occupancy.
	MeanResidentBytes float64
}

// event is one arrival in the merged schedule.
type event struct {
	at     time.Duration
	tenant int
}

// tenantSeed decorrelates per-tenant schedules (splitmix64 increment).
func tenantSeed(seed uint64, i int) uint64 {
	return seed + uint64(i+1)*0x9e3779b97f4a7c15
}

// mergedSchedule builds the run's arrival sequence: every tenant's own
// loadgen schedule at its sampled rate, merged and sorted by (time, tenant)
// so the order is total and deterministic.
func mergedSchedule(tenants []Tenant, p Params) []event {
	var events []event
	for i, t := range tenants {
		for _, at := range loadgen.Schedule(p.Process, t.F.RatePerSec, p.Duration, tenantSeed(p.Seed, i)) {
			events = append(events, event{at, i})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].tenant < events[b].tenant
	})
	return events
}

// Run plays the merged arrival schedule through the policy. The market
// keeps its own residency ledger and fails the run if the policy ever
// reports an admission the budget cannot hold or an eviction of a
// non-resident tenant — policies are untrusted.
func Run(tenants []Tenant, p Params) (Outcome, error) {
	if len(tenants) == 0 {
		return Outcome{}, fmt.Errorf("budget: empty tenant set")
	}
	if p.Policy == nil {
		return Outcome{}, fmt.Errorf("budget: nil policy")
	}
	if p.Process == "" {
		p.Process = loadgen.Poisson
	}
	if p.Duration <= 0 {
		p.Duration = 60 * time.Second
	}
	budget := p.BudgetBytes
	if u, ok := p.Policy.(unbounded); ok && u.Unbounded() {
		budget = math.MaxUint64
	}
	p.Policy.Reset(tenants, budget)

	events := mergedSchedule(tenants, p)
	if len(events) == 0 {
		return Outcome{}, fmt.Errorf("budget: no arrivals in %v (rates too low?)", p.Duration)
	}

	resident := make([]bool, len(tenants))
	warmCount := make([]int, len(tenants))
	coldCount := make([]int, len(tenants))
	var used uint64
	var residentIntegral float64 // byte-seconds
	lastAt := time.Duration(0)

	out := Outcome{Policy: p.Policy.Name(), BudgetBytes: p.BudgetBytes}
	var cycles, instrs float64

	for _, ev := range events {
		residentIntegral += float64(used) * (ev.at - lastAt).Seconds()
		lastAt = ev.at
		now := ev.at.Seconds()
		i := ev.tenant
		t := &tenants[i]

		if resident[i] {
			out.Warm++
			warmCount[i]++
			cycles += t.C.WarmCPI * float64(t.C.Instrs)
			p.Policy.OnHit(i, now)
		} else {
			out.Cold++
			coldCount[i]++
			cycles += t.C.ColdCPI * float64(t.C.Instrs)
			admit, victims := p.Policy.OnMiss(i, now)
			for _, v := range victims {
				if !resident[v] {
					return Outcome{}, fmt.Errorf("budget: policy %s evicted non-resident tenant %s",
						p.Policy.Name(), tenants[v].F.Name)
				}
				resident[v] = false
				used -= tenants[v].C.MetaBytes
				out.Evictions++
			}
			if admit {
				if resident[i] {
					return Outcome{}, fmt.Errorf("budget: policy %s re-admitted resident tenant %s",
						p.Policy.Name(), t.F.Name)
				}
				resident[i] = true
				used += t.C.MetaBytes
				if used > budget {
					return Outcome{}, fmt.Errorf("budget: policy %s overflowed the budget (%d > %d bytes) admitting %s",
						p.Policy.Name(), used, budget, t.F.Name)
				}
			}
		}
		instrs += float64(t.C.Instrs)
	}
	residentIntegral += float64(used) * (p.Duration - lastAt).Seconds()

	out.Invocations = out.Warm + out.Cold
	out.HitRatio = float64(out.Warm) / float64(out.Invocations)
	out.MeanCPI = cycles / instrs
	out.MeanResidentBytes = residentIntegral / p.Duration.Seconds()

	// Each tenant contributes at most two distinct CPI values, so the
	// invocation-weighted percentiles are exact over ≤2N (value,count) pairs.
	pairs := make([]cpiWeight, 0, 2*len(tenants))
	for i, t := range tenants {
		if coldCount[i] > 0 {
			pairs = append(pairs, cpiWeight{t.C.ColdCPI, coldCount[i]})
		}
		if warmCount[i] > 0 {
			pairs = append(pairs, cpiWeight{t.C.WarmCPI, warmCount[i]})
		}
	}
	out.P50CPI = weightedPercentile(pairs, 0.50)
	out.P99CPI = weightedPercentile(pairs, 0.99)
	return out, nil
}

type cpiWeight struct {
	cpi float64
	n   int
}

// weightedPercentile returns the smallest CPI value whose cumulative
// invocation count reaches q of the total (nearest-rank over weights).
func weightedPercentile(pairs []cpiWeight, q float64) float64 {
	if len(pairs) == 0 {
		return 0
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].cpi < pairs[b].cpi })
	total := 0
	for _, p := range pairs {
		total += p.n
	}
	rank := int(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := 0
	for _, p := range pairs {
		cum += p.n
		if cum >= rank {
			return p.cpi
		}
	}
	return pairs[len(pairs)-1].cpi
}

// FrontierPoint is one (policy, budget) cell of the frontier sweep, with
// speedups relative to the all-cold baseline of the same arrival schedule.
type FrontierPoint struct {
	Outcome
	// MeanSpeedup/P50Speedup/P99Speedup are baselineCPI/thisCPI — >1 means
	// the policy beat running everything cold.
	MeanSpeedup float64
	P50Speedup  float64
	P99Speedup  float64
}

// Frontier sweeps policies × budgets over one tenant set and arrival seed.
// The "none" baseline is computed once (it is budget-independent) and every
// point's speedups are measured against it. Points are emitted in
// (policy, budget) order; ctx cancellation aborts between runs.
func Frontier(ctx context.Context, tenants []Tenant, policies []string, budgets []uint64, p Params) ([]FrontierPoint, error) {
	base := p
	base.Policy = NewNone()
	baseline, err := Run(tenants, base)
	if err != nil {
		return nil, fmt.Errorf("budget: baseline: %w", err)
	}

	var points []FrontierPoint
	for _, name := range policies {
		for _, b := range budgets {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pol, err := NewPolicy(name)
			if err != nil {
				return nil, err
			}
			run := p
			run.Policy = pol
			run.BudgetBytes = b
			o, err := Run(tenants, run)
			if err != nil {
				return nil, err
			}
			points = append(points, FrontierPoint{
				Outcome:     o,
				MeanSpeedup: baseline.MeanCPI / o.MeanCPI,
				P50Speedup:  baseline.P50CPI / o.P50CPI,
				P99Speedup:  baseline.P99CPI / o.P99CPI,
			})
		}
	}
	return points, nil
}
