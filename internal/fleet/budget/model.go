// Package budget simulates a multi-tenant node whose tenants' recorded
// Ignite metadata competes for a shared per-node DRAM budget. Each tenant
// is a sampled population function with an arrival schedule; an invocation
// whose metadata is resident takes the lukewarm Ignite path, an evicted
// tenant pays the cold (next-line baseline) path. Pluggable
// admission/eviction policies decide who stays resident — the
// performance-vs-DRAM tradeoff SPES (arXiv 2403.17574) optimizes
// per-function, run fleet-wide.
package budget

import (
	"fmt"
	"math"

	"ignite/internal/cache"
	"ignite/internal/engine"
	"ignite/internal/fleet/population"
	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/sim"
)

// Costs is what the market needs to know about one tenant: the cold and
// warm per-invocation CPIs, the metadata bytes the tenant holds resident,
// and the invocation's instruction count (to weight aggregate CPI).
type Costs struct {
	// ColdCPI is the interleaved (fully thrashed) CPI under the next-line
	// baseline — the path an evicted tenant pays.
	ColdCPI float64
	// WarmCPI is the interleaved CPI with Ignite replay armed — the
	// lukewarm path a resident tenant takes.
	WarmCPI float64
	// MetaBytes is the recorded Ignite metadata the tenant occupies in
	// the node's budget while resident (capped at ignite.MaxMetadataBytes).
	MetaBytes uint64
	// Instrs is the dynamic instruction count of one invocation.
	Instrs uint64
}

// CostModel prices a population function.
type CostModel interface {
	Costs(f population.Function) (Costs, error)
}

// Analytic is the closed-form cost model: a first-order front-end stall
// model over the function's measured Figure-2 coordinates, using the Table-2
// core parameters. It exists so thousand-tenant markets price in
// microseconds; the Simulated model is the ground truth it approximates,
// and TestAnalyticTracksSimulated keeps the two ordering-consistent.
type Analytic struct{}

// Analytic model constants. The recovery fractions are first-order fits of
// the paper's coverage results (Fig. 9): Ignite's replay restores most of
// the instruction and BTB working set and initializes only the bimodal
// tables, so conditional-predictor cold misses recover least.
const (
	// lineBytes is the cache line size the working sets stream through.
	lineBytes = 64
	// overlapFrac discounts the cold fetch stall per line for the
	// fetch-ahead overlap the front-end achieves even when cold.
	overlapFrac = 0.35
	// btbResteerFrac is the fraction of cold BTB entries whose first use
	// costs a decode resteer.
	btbResteerFrac = 0.9
	// initialMispredictFrac is the fraction of branch sites that suffer
	// an initial misprediction when the predictors are cold (Fig. 6).
	initialMispredictFrac = 0.45
	// l1iRecovery/btbRecovery/cbpRecovery are the fractions of each cold
	// penalty Ignite's replay eliminates at full metadata coverage.
	l1iRecovery = 0.75
	btbRecovery = 0.85
	cbpRecovery = 0.50
	// bytesPerRecord approximates the compact metadata record size
	// (~35 bits, paper footnote 6).
	bytesPerRecord = 4.4
	// baseCPI is the no-stall issue CPI floor of the 4-wide core.
	baseCPI = 0.55
)

// neededMetaBytes is the metadata footprint a full recording of the
// function's branch working set would take, before the per-function cap.
func neededMetaBytes(branchSites int) float64 {
	return 16 + bytesPerRecord*float64(branchSites)
}

// Costs prices f analytically.
func (Analytic) Costs(f population.Function) (Costs, error) {
	if f.TargetInstr == 0 {
		return Costs{}, fmt.Errorf("budget: %s has a zero instruction budget", f.Name)
	}
	ec := engine.DefaultConfig()
	lat := cache.DefaultLatencies()
	instrs := float64(f.TargetInstr)

	// Cold per-invocation penalties (cycles), by component.
	lines := float64(f.CodeKiB) * 1024 / lineBytes
	sites := float64(f.BranchSites)
	l1iCold := lines * overlapFrac * float64(lat.Mem)
	btbCold := sites * btbResteerFrac * float64(ec.DecodeResteerPenalty)
	cbpCold := sites * initialMispredictFrac * float64(ec.MispredictPenalty)

	// Metadata coverage: a branch working set beyond the 120 KiB cap is
	// only partially recorded, so replay recovers proportionally less —
	// the "how low can you go" bound for huge functions.
	needed := neededMetaBytes(f.BranchSites)
	meta := math.Min(needed, ignite.MaxMetadataBytes)
	coverage := meta / needed

	// Warm = cold minus the recovered fractions, plus the replay stream's
	// own metadata fetch cost (sequential, L2-latency class).
	warmResidual := l1iCold*(1-l1iRecovery*coverage) +
		btbCold*(1-btbRecovery*coverage) +
		cbpCold*(1-cbpRecovery*coverage)
	replayCost := meta / lineBytes * float64(lat.L2) * 0.5

	// Back-end data stalls, identical on both paths: misses to the cold
	// fraction of the data footprint, latency partially hidden by the
	// out-of-order window and overlapped by MLP.
	d := f.Data
	foot := float64(d.FootprintBytes)
	missFrac := (1 - d.HotFrac) * math.Min(0.9, foot/(foot+float64(2<<20))) * (1 - d.StrideFrac)
	hidden := float64(lat.Mem - d.HideLatency)
	if hidden < 0 {
		hidden = 0
	}
	dataStall := d.MemOpFrac * missFrac * hidden / math.Max(1, d.MLP)
	base := baseCPI + dataStall

	return Costs{
		ColdCPI:   base + (l1iCold+btbCold+cbpCold)/instrs,
		WarmCPI:   base + (warmResidual+replayCost)/instrs,
		MetaBytes: uint64(meta),
		Instrs:    f.TargetInstr,
	}, nil
}

// Simulated is the ground-truth cost model: it runs the lukewarm protocol
// twice per function — interleaved under the next-line baseline (cold) and
// interleaved with Ignite replay (warm) — and reads the recorded metadata
// bytes off the Ignite instance. Exact, deterministic, and five orders of
// magnitude slower than Analytic; use it for small populations, anchors,
// and tests.
type Simulated struct {
	// TargetInstr, when > 0, shrinks every priced function's instruction
	// budget (the fleet analogue of -target-instr smoke runs).
	TargetInstr uint64
	// Checks arms the runtime invariant verifier on both runs.
	Checks bool
}

// Costs prices f by simulation.
func (m Simulated) Costs(f population.Function) (Costs, error) {
	spec := f.Spec
	if m.TargetInstr > 0 {
		spec.TargetInstr = m.TargetInstr
	}
	var opts []sim.Option
	if m.Checks {
		opts = append(opts, sim.WithChecks())
	}

	cold, err := sim.New(spec, sim.KindNL, opts...)
	if err != nil {
		return Costs{}, fmt.Errorf("budget: %s: %w", f.Name, err)
	}
	coldRes, err := cold.Run(lukewarm.Interleaved)
	if err != nil {
		return Costs{}, fmt.Errorf("budget: %s (cold): %w", f.Name, err)
	}

	warm, err := sim.New(spec, sim.KindIgnite, opts...)
	if err != nil {
		return Costs{}, fmt.Errorf("budget: %s: %w", f.Name, err)
	}
	warmRes, err := warm.Run(lukewarm.Interleaved)
	if err != nil {
		return Costs{}, fmt.Errorf("budget: %s (warm): %w", f.Name, err)
	}
	if warm.Ignite == nil {
		return Costs{}, fmt.Errorf("budget: %s: ignite setup has no Ignite instance", f.Name)
	}
	return Costs{
		ColdCPI:   coldRes.CPI(),
		WarmCPI:   warmRes.CPI(),
		MetaBytes: uint64(warm.Ignite.MetadataUsed()),
		Instrs:    spec.TargetInstr,
	}, nil
}
