package experiments

import (
	"fmt"
	"time"
)

// FailurePolicy selects how the cell scheduler reacts to a failing cell.
type FailurePolicy int

const (
	// FailFast cancels the run on the first cell failure: cells that have
	// not started yet are skipped and the run returns the joined errors.
	// This is the default and the historical behaviour.
	FailFast FailurePolicy = iota
	// ContinueOnError keeps scheduling: every healthy cell completes, the
	// run returns a Result with per-cell statuses, and failures surface
	// through Result.Failures (and the document manifest) instead of an
	// error.
	ContinueOnError
)

func (p FailurePolicy) String() string {
	if p == ContinueOnError {
		return "continue"
	}
	return "fail-fast"
}

// ParseFailurePolicy resolves the CLI spelling of a failure policy.
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch s {
	case "", "fail-fast", "failfast":
		return FailFast, nil
	case "continue", "continue-on-error":
		return ContinueOnError, nil
	}
	return FailFast, fmt.Errorf("experiments: unknown failure policy %q (want fail-fast or continue)", s)
}

// CellStatus is the scheduler's verdict on one submitted cell.
type CellStatus string

const (
	// StatusOK: the cell simulated cleanly on the first attempt.
	StatusOK CellStatus = "ok"
	// StatusRetried: the cell succeeded after at least one transient
	// failure. Cells are pure functions of their key, so a retried cell's
	// results are bit-identical to a clean run's.
	StatusRetried CellStatus = "retried"
	// StatusFailed: every attempt errored (or the error was not
	// retryable).
	StatusFailed CellStatus = "failed"
	// StatusSkipped: the run was canceled before the cell started.
	StatusSkipped CellStatus = "skipped"
)

// CellError is the structured failure of one (workload, config) cell:
// which cell, on which attempt it gave up, and why. It unwraps to the
// underlying cause so errors.Is/As and transient classification see
// through it.
type CellError struct {
	ID       ID
	Workload string
	Config   string
	Attempt  int
	Err      error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s/%s/%s failed (attempt %d): %v",
		e.ID, e.Workload, e.Config, e.Attempt, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// CellFailure is the exportable summary of a failed or skipped cell,
// carried on Result for CLIs to render and for the document manifest.
type CellFailure struct {
	Workload string
	Config   string
	Status   CellStatus
	Attempts int
	Err      string
}

// Scheduler retry defaults: a transient failure is retried up to
// defaultRetries times with capped exponential backoff starting at
// defaultBackoff.
const (
	defaultRetries = 2
	defaultBackoff = 5 * time.Millisecond
	maxBackoff     = 2 * time.Second
)
