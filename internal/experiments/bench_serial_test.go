package experiments

import (
	"context"
	"testing"

	"ignite/internal/workload"
)

func benchSerialOpts(b *testing.B) Options {
	b.Helper()
	var specs []workload.Spec
	for _, name := range []string{"Auth-G", "Curr-N"} {
		s, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		s.TargetInstr /= 2
		specs = append(specs, s)
	}
	return Options{Workloads: specs, Parallel: 2}
}

// BenchmarkRunAllSerialNoCache replays the pre-scheduler execution shape:
// parallelism only across workloads, configurations serial inside each
// workload, and no cell sharing between experiments. It lives in-package
// because the serialConfigs switch is an internal benchmark-only knob, not
// part of the public Options surface. Compare against the root package's
// BenchmarkRunAll for the scheduler + shared-cache path.
func BenchmarkRunAllSerialNoCache(b *testing.B) {
	opt := benchSerialOpts(b)
	opt.serialConfigs = true
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range PaperIDs() {
			if _, err := Run(ctx, id, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}
