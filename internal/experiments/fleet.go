package experiments

import (
	"context"
	"fmt"
	"time"

	"ignite/internal/fleet/budget"
	"ignite/internal/fleet/population"
	"ignite/internal/loadgen"
	"ignite/internal/stats"
)

func init() {
	registry = append(registry,
		regEntry{"fleet-pop", "Fleet: sampled population characterization", fleetPop},
		regEntry{"fleet-frontier", "Fleet: CPI speedup vs metadata budget per policy", fleetFrontier},
	)
}

// FleetParams configures the fleet experiments: the sampled population and
// the budget-market sweep. The registered experiments run DefaultFleetParams;
// cmd/ignite-fleet passes its flag-built params into FleetPopulation and
// FleetFrontier directly.
type FleetParams struct {
	// Seed drives both the population sampler and the arrival schedules.
	Seed uint64
	// N is the population size.
	N int
	// RateScale scales every sampled arrival rate (1 = as sampled).
	RateScale float64
	// Duration is the simulated market window.
	Duration time.Duration
	// Process is the arrival process (poisson, diurnal, bursty).
	Process loadgen.Process
	// Policies are the admission/eviction policies to sweep; the all-cold
	// "none" baseline is always computed for the speedup denominators.
	Policies []string
	// Budgets is the per-node metadata budget ladder, in bytes.
	Budgets []uint64
}

// DefaultFleetParams is the sweep the registered fleet experiments run: a
// thousand-function node under every real policy across a 2-64 MiB ladder.
func DefaultFleetParams() FleetParams {
	return FleetParams{
		Seed:      1,
		N:         1000,
		RateScale: 1,
		Duration:  30 * time.Second,
		Process:   loadgen.Poisson,
		Policies:  []string{"lru", "benefit", "topk", "oracle"},
		Budgets:   []uint64{2 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20},
	}
}

func (p FleetParams) withDefaults() FleetParams {
	d := DefaultFleetParams()
	if p.N <= 0 {
		p.N = d.N
	}
	if p.RateScale <= 0 {
		p.RateScale = d.RateScale
	}
	if p.Duration <= 0 {
		p.Duration = d.Duration
	}
	if p.Process == "" {
		p.Process = d.Process
	}
	if len(p.Policies) == 0 {
		p.Policies = d.Policies
	}
	if len(p.Budgets) == 0 {
		p.Budgets = d.Budgets
	}
	return p
}

// fleetTenants samples the population and prices it with the analytic cost
// model — the shared front half of both fleet experiments.
func fleetTenants(p FleetParams) ([]budget.Tenant, error) {
	fns, err := population.Sample(population.Params{
		Seed: p.Seed, N: p.N, RateScale: p.RateScale,
	})
	if err != nil {
		return nil, err
	}
	return budget.Tenants(fns, budget.Analytic{})
}

func fleetPop(ctx context.Context, opt Options) (*Result, error) {
	return FleetPopulation(ctx, opt, DefaultFleetParams())
}

func fleetFrontier(ctx context.Context, opt Options) (*Result, error) {
	return FleetFrontier(ctx, opt, DefaultFleetParams())
}

// FleetPopulation characterizes a sampled population by flavor: working-set
// and rate marginals plus analytically priced cold/warm CPIs and metadata
// footprints. No simulation cells — the whole experiment is closed-form.
func FleetPopulation(ctx context.Context, opt Options, p FleetParams) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	tenants, err := fleetTenants(p)
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "fleet-pop", Title: Title("fleet-pop")}
	t := stats.NewTable(r.Title,
		"flavor", "count", "share", "code KiB", "branch sites", "rate/s",
		"meta KiB", "cold CPI", "warm CPI")

	flavors := []population.Flavor{
		population.Standard, population.Tiny, population.Huge, population.Chain,
	}
	type agg struct {
		n                                       int
		code, sites, rate, meta, cold, warm, in float64
	}
	byFlavor := map[population.Flavor]*agg{}
	all := &agg{}
	for _, fl := range flavors {
		byFlavor[fl] = &agg{}
	}
	accumulate := func(a *agg, tn budget.Tenant) {
		a.n++
		a.code += float64(tn.F.CodeKiB)
		a.sites += float64(tn.F.BranchSites)
		a.rate += tn.F.RatePerSec
		a.meta += float64(tn.C.MetaBytes) / 1024
		a.cold += tn.C.ColdCPI
		a.warm += tn.C.WarmCPI
	}
	for _, tn := range tenants {
		accumulate(byFlavor[tn.F.Flavor], tn)
		accumulate(all, tn)
	}

	addRow := func(label string, a *agg) {
		if a.n == 0 {
			return
		}
		n := float64(a.n)
		t.AddRowf(label, a.n, n/float64(len(tenants)),
			a.code/n, a.sites/n, a.rate/n, a.meta/n, a.cold/n, a.warm/n)
		r.set(label, "count", n)
		r.set(label, "share", n/float64(len(tenants)))
		r.set(label, "codeKiB", a.code/n)
		r.set(label, "branchSites", a.sites/n)
		r.set(label, "ratePerSec", a.rate/n)
		r.set(label, "metaKiB", a.meta/n)
		r.set(label, "coldCPI", a.cold/n)
		r.set(label, "warmCPI", a.warm/n)
	}
	for _, fl := range flavors {
		addRow(fl.String(), byFlavor[fl])
	}
	addRow("All", all)
	r.Table = t
	return r, nil
}

// FleetFrontier runs the metadata-budget market over a sampled population:
// for every (policy, budget) point it reports residency behavior and the
// aggregate mean/p50/p99 CPI speedups over running the whole node cold.
// This is the fleet analogue of the paper's Figure 8 — performance per byte
// of front-end metadata instead of per function.
func FleetFrontier(ctx context.Context, opt Options, p FleetParams) (*Result, error) {
	p = p.withDefaults()
	tenants, err := fleetTenants(p)
	if err != nil {
		return nil, err
	}
	points, err := budget.Frontier(ctx, tenants, p.Policies, p.Budgets, budget.Params{
		Seed:     p.Seed,
		Duration: p.Duration,
		Process:  p.Process,
	})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "fleet-frontier", Title: Title("fleet-frontier")}
	t := stats.NewTable(r.Title,
		"policy", "budget MiB", "hit ratio", "evictions", "resident MiB",
		"mean CPI", "mean speedup", "p50 speedup", "p99 speedup")
	for _, pt := range points {
		mib := float64(pt.BudgetBytes) / (1 << 20)
		t.AddRowf(pt.Policy, mib, pt.HitRatio, pt.Evictions,
			pt.MeanResidentBytes/(1<<20), pt.MeanCPI,
			pt.MeanSpeedup, pt.P50Speedup, pt.P99Speedup)
		row := fmt.Sprintf("%s/%gMiB", pt.Policy, mib)
		r.set(row, "budgetBytes", float64(pt.BudgetBytes))
		r.set(row, "hitRatio", pt.HitRatio)
		r.set(row, "evictions", float64(pt.Evictions))
		r.set(row, "residentBytes", pt.MeanResidentBytes)
		r.set(row, "meanCPI", pt.MeanCPI)
		r.set(row, "meanSpeedup", pt.MeanSpeedup)
		r.set(row, "p50Speedup", pt.P50Speedup)
		r.set(row, "p99Speedup", pt.P99Speedup)
	}
	r.Table = t
	return r, nil
}
