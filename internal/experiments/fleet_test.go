package experiments

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ignite/internal/loadgen"
	"ignite/internal/obs"
)

// fleetQuickParams is a shrunk sweep for test speed.
func fleetQuickParams() FleetParams {
	return FleetParams{
		Seed:     7,
		N:        400,
		Duration: 10 * time.Second,
		Process:  loadgen.Poisson,
		Policies: []string{"lru", "topk"},
		Budgets:  []uint64{1 << 20, 4 << 20},
	}
}

func TestFleetExperimentsRegistered(t *testing.T) {
	has := map[ID]bool{}
	for _, id := range IDs() {
		has[id] = true
	}
	for _, id := range []ID{"fleet-pop", "fleet-frontier"} {
		if !has[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

// TestFleetFrontierValues checks the sweep exports one row per
// (policy, budget) point with sane speedups.
func TestFleetFrontierValues(t *testing.T) {
	p := fleetQuickParams()
	res, err := FleetFrontier(context.Background(), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(p.Policies) * len(p.Budgets)
	if len(res.Values) != wantRows {
		t.Fatalf("got %d value rows, want %d", len(res.Values), wantRows)
	}
	for row, cols := range res.Values {
		if cols["meanSpeedup"] < 1-1e-9 {
			t.Errorf("%s: mean speedup %.4f below the all-cold baseline", row, cols["meanSpeedup"])
		}
		if cols["p99Speedup"] <= 0 {
			t.Errorf("%s: non-positive p99 speedup", row)
		}
	}
}

// TestFleetPopulationValues checks the characterization exports per-flavor
// rows plus the All aggregate.
func TestFleetPopulationValues(t *testing.T) {
	p := fleetQuickParams()
	res, err := FleetPopulation(context.Background(), Options{}, p)
	if err != nil {
		t.Fatal(err)
	}
	all, ok := res.Values["All"]
	if !ok {
		t.Fatal("missing All row")
	}
	if all["count"] != float64(p.N) {
		t.Errorf("All count = %g, want %d", all["count"], p.N)
	}
	for _, flavor := range []string{"standard", "tiny", "huge", "chain"} {
		cols, ok := res.Values[flavor]
		if !ok {
			t.Errorf("missing %s row", flavor)
			continue
		}
		if cols["coldCPI"] <= cols["warmCPI"] {
			t.Errorf("%s: cold CPI %.3f not above warm %.3f", flavor, cols["coldCPI"], cols["warmCPI"])
		}
	}
}

// TestFleetFrontierParallelIndependence pins the determinism acceptance:
// the exported document is byte-identical regardless of the scheduler
// width in Options (the fleet experiments are single serial passes, and
// nothing about the surrounding parallelism may leak into their bytes).
func TestFleetFrontierParallelIndependence(t *testing.T) {
	p := fleetQuickParams()
	encode := func(parallel int) []byte {
		t.Helper()
		opt := Options{Parallel: parallel}
		res, err := FleetFrontier(context.Background(), opt, p)
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.Document(obs.Manifest{}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ref := encode(1)
	if wide := encode(8); !bytes.Equal(ref, wide) {
		t.Fatal("fleet-frontier document differs between Parallel=1 and Parallel=8")
	}
}

// TestFleetFrontierCancellation checks ctx cancellation aborts the sweep.
func TestFleetFrontierCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FleetFrontier(ctx, Options{}, fleetQuickParams()); err == nil {
		t.Fatal("cancelled fleet-frontier returned no error")
	}
}
