package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"ignite/internal/lukewarm"
	"ignite/internal/sim"
)

// valuesEqual reports whether two result Values maps are bit-identical,
// returning the first difference for diagnostics.
func valuesEqual(a, b map[string]map[string]float64) (string, bool) {
	if len(a) != len(b) {
		return "row count differs", false
	}
	for row, cols := range a {
		bc, ok := b[row]
		if !ok || len(cols) != len(bc) {
			return "row " + row, false
		}
		for col, v := range cols {
			w, ok := bc[col]
			if !ok || math.Float64bits(v) != math.Float64bits(w) {
				return row + "/" + col, false
			}
		}
	}
	return "", true
}

// TestDeterminism proves every experiment's Result.Values is bit-identical
// across parallelism levels (cells scheduled 1-wide vs 8-wide) and across
// cache-off (fresh simulation per experiment) vs cache-on (cells shared
// through one CellCache across all three experiments).
func TestDeterminism(t *testing.T) {
	ids := []ID{"fig1", "fig8", "fig9a"}

	base := map[ID]map[string]map[string]float64{}
	opt := quickOpts(t)
	opt.Parallel = 1
	for _, id := range ids {
		r, err := Run(context.Background(), id, opt)
		if err != nil {
			t.Fatalf("%s parallel=1: %v", id, err)
		}
		base[id] = r.Values
	}

	opt8 := quickOpts(t)
	opt8.Parallel = 8
	for _, id := range ids {
		r, err := Run(context.Background(), id, opt8)
		if err != nil {
			t.Fatalf("%s parallel=8: %v", id, err)
		}
		if at, ok := valuesEqual(base[id], r.Values); !ok {
			t.Errorf("%s: parallel=8 diverges from parallel=1 at %s", id, at)
		}
	}

	optC := quickOpts(t)
	optC.Parallel = 8
	optC.Cache = NewCellCache()
	results, err := RunAll(context.Background(), ids, optC)
	if err != nil {
		t.Fatalf("RunAll cached: %v", err)
	}
	for i, id := range ids {
		if at, ok := valuesEqual(base[id], results[i].Values); !ok {
			t.Errorf("%s: cached run diverges from uncached at %s", id, at)
		}
	}
	if cells, hits := optC.Cache.Stats(); hits == 0 {
		t.Errorf("shared cache saw no hits across %v (%d cells)", ids, cells)
	} else {
		t.Logf("cache: %d unique cells, %d hits", cells, hits)
	}
}

// TestRunMatrixAggregatesFailures checks the scheduler's error contract:
// every failing cell is reported (errors.Join), not just the first, and a
// failure cancels outstanding cells instead of simulating a doomed run to
// completion.
func TestRunMatrixAggregatesFailures(t *testing.T) {
	opt := quickOpts(t)
	opt.Parallel = 1 // serialize so cancellation after failure #1 is observable
	_, err := runMatrix(context.Background(), "test", opt, []runConfig{
		{Name: "bogus", Kind: sim.Kind("no-such-config"), Mode: lukewarm.Interleaved},
	})
	if err == nil {
		t.Fatal("runMatrix accepted an unknown configuration")
	}
	if !strings.Contains(err.Error(), "unknown configuration") {
		t.Errorf("error lost the cause: %v", err)
	}
	// With Parallel=1 the first failure cancels the second workload's cell,
	// so exactly one error surfaces; with wider pools both may run. Either
	// way the run must fail and name the workload/config.
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error lost the cell name: %v", err)
	}
}
