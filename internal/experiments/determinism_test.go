// External test package: the determinism property lives in
// internal/check/props (which imports experiments), so an in-package test
// using it would cycle.
package experiments_test

import (
	"context"
	"reflect"
	"testing"

	"ignite/internal/check/props"
	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/workload"
)

// TestDeterminism proves every experiment's Result.Values is bit-identical
// across parallelism levels (cells scheduled 1-wide vs 8-wide) and across
// cache-off (fresh simulation per experiment) vs cache-on (cells shared
// through one CellCache across all three experiments). The relation itself
// is the props.ExperimentsDeterminism metamorphic property.
func TestDeterminism(t *testing.T) {
	var specs []workload.Spec
	for _, name := range []string{"Fib-G", "Auth-G"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s.TargetInstr /= 2
		specs = append(specs, s)
	}
	ids := []experiments.ID{"fig1", "fig8", "fig9a"}
	if err := props.ExperimentsDeterminism(context.Background(), ids, specs); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismUnderRetry extends the determinism property across the
// fault-tolerance path: a run whose cell trips a transient error and
// succeeds on retry must produce values bit-identical to a clean run —
// retries re-execute the pure cell function, never perturb it.
func TestDeterminismUnderRetry(t *testing.T) {
	var specs []workload.Spec
	for _, name := range []string{"Fib-G", "Auth-G"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s.TargetInstr /= 4
		specs = append(specs, s)
	}
	run := func(plan *faults.Plan) map[string]map[string]float64 {
		t.Helper()
		res, err := experiments.Run(context.Background(), "fig8", experiments.Options{
			Workloads: specs,
			Parallel:  2,
			Faults:    plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Values
	}
	clean := run(nil)
	plan, err := faults.Parse("transient@fig8/Auth-G/ignite:trips=1")
	if err != nil {
		t.Fatal(err)
	}
	retried := run(plan)
	if !reflect.DeepEqual(clean, retried) {
		t.Errorf("retried run diverged from clean run:\nclean:   %v\nretried: %v", clean, retried)
	}
}
