// External test package: the determinism property lives in
// internal/check/props (which imports experiments), so an in-package test
// using it would cycle.
package experiments_test

import (
	"context"
	"testing"

	"ignite/internal/check/props"
	"ignite/internal/experiments"
	"ignite/internal/workload"
)

// TestDeterminism proves every experiment's Result.Values is bit-identical
// across parallelism levels (cells scheduled 1-wide vs 8-wide) and across
// cache-off (fresh simulation per experiment) vs cache-on (cells shared
// through one CellCache across all three experiments). The relation itself
// is the props.ExperimentsDeterminism metamorphic property.
func TestDeterminism(t *testing.T) {
	var specs []workload.Spec
	for _, name := range []string{"Fib-G", "Auth-G"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s.TargetInstr /= 2
		specs = append(specs, s)
	}
	ids := []experiments.ID{"fig1", "fig8", "fig9a"}
	if err := props.ExperimentsDeterminism(context.Background(), ids, specs); err != nil {
		t.Fatal(err)
	}
}
