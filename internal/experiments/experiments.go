// Package experiments reproduces every table and figure of the paper's
// motivation and evaluation sections. Each experiment runs the lukewarm
// protocol over the 20 workloads (or a subset) under the relevant front-end
// configurations and prints the same rows/series the paper plots.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ignite/internal/check"
	"ignite/internal/engine"
	"ignite/internal/faults"
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/stats"
	"ignite/internal/workload"
)

// ID identifies a registered experiment (a paper table/figure or an
// ablation study).
type ID string

// Options configures an experiment run.
type Options struct {
	// Workloads selects the functions to run (default: all 20).
	Workloads []workload.Spec
	// Parallel bounds concurrent cell simulations (default NumCPU). Cells
	// are (workload, config) pairs, so a run exposes up to
	// len(Workloads)×len(configs)-way parallelism.
	Parallel int
	// Cache, when set, memoizes simulation cells so experiments sharing
	// cells (the nl baseline appears in five figures) compute each unique
	// cell exactly once. RunAll installs a shared cache automatically;
	// nil keeps reuse local to a single experiment. Results are
	// bit-identical with or without a cache.
	Cache *CellCache
	// Tracer, when set, receives run-progress events (CellDone on every
	// finished cell, CacheHit on cache-served ones) and is installed on
	// every freshly simulated cell's engine, which then emits
	// invocation/replay lifecycle events. Cells run concurrently, so the
	// tracer must be safe for concurrent use (every obs implementation
	// is). Tracing never affects simulation results.
	Tracer obs.Tracer
	// Checks enables the runtime invariant verifier on every freshly
	// simulated cell (sim.WithChecks): conservation-law violations abort
	// the run with a structured check.Violation error instead of
	// corrupting figures silently. Defaults to the IGNITE_CHECKS
	// environment gate; checking never affects results, so (like Tracer)
	// it is not part of the cell cache key.
	Checks bool
	// FailurePolicy selects how cell failures affect the run: FailFast
	// (the zero value) cancels scheduling on the first definitive failure
	// and returns the joined errors; ContinueOnError completes every
	// healthy cell and degrades the Result instead — failed and skipped
	// cells surface through Result.Failures and per-cell statuses.
	FailurePolicy FailurePolicy
	// CellTimeout bounds each simulation attempt of one cell (0 = no
	// deadline). An attempt that exceeds it fails with a deadline error.
	CellTimeout time.Duration
	// MaxCycles arms the engine's per-invocation cycle-budget watchdog on
	// every freshly simulated cell (0 = unlimited): a runaway invocation
	// aborts with engine.ErrCycleBudget instead of hanging its scheduler
	// worker forever. The watchdog is abort-only — it can never alter a
	// completing simulation — so like Tracer and Checks it is not part of
	// the cell cache key.
	MaxCycles uint64
	// Retries caps transient-failure retries per cell: 0 means the
	// default (2), negative disables retrying entirely.
	Retries int
	// RetryBackoff is the initial delay before a retry, doubled per
	// attempt and capped at 2s (default 5ms).
	RetryBackoff time.Duration
	// Faults arms a deterministic fault-injection plan (see
	// internal/faults): before each cell simulates, the plan may panic,
	// delay, or fail that attempt at its (experiment, workload, config)
	// site. Nil disables injection. Faults fire outside the cell cache,
	// so cached results are never poisoned by an injected failure and a
	// retried cell is bit-identical to a clean one.
	Faults *faults.Plan
	// Journal, when set, records every computed cell (CRC-guarded,
	// fsynced appends) so an interrupted run can be resumed with
	// Journal.Resume instead of recomputing finished cells.
	Journal *Journal
	// Health, when set, accumulates run-health counters: panics
	// recovered, transient retries, deadline hits, failed and skipped
	// cells.
	Health *obs.RunHealth
	// serialConfigs restores the pre-scheduler execution shape — one
	// goroutine per workload running its configurations serially — and is
	// kept only so benchmarks can measure the old path (see
	// BenchmarkRunAllSerialNoCache in this package).
	serialConfigs bool
}

func (o Options) withDefaults() Options {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.All()
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	if check.EnvEnabled() {
		o.Checks = true
	}
	return o
}

// Fingerprint hashes the run configuration's contribution to cell cache
// keys: the sorted spec keys of the workload matrix (name, instruction
// budget, generator parameters, data profile — everything a -scale or
// -workloads flag changes). Two runs share a fingerprint exactly when
// every cell key one run can produce is a key the other can produce, which
// is the condition under which replaying one run's journal into the other
// is sound. Journals and distributed-sweep stores embed it so cross-run
// artifacts are bound to the configuration that wrote them.
func (o Options) Fingerprint() string {
	o = o.withDefaults()
	keys := make([]string, len(o.Workloads))
	for i, s := range o.Workloads {
		keys[i] = specKey(s)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Result is a reproduced table/figure: a rendered table plus the raw values
// keyed by row then column for programmatic checks, and the per-cell metric
// snapshots behind them. Document serializes the whole thing.
type Result struct {
	ID     ID
	Title  string
	Table  *stats.Table
	Table2 *stats.Table // optional companion table (e.g. mean MPKIs)
	Values map[string]map[string]float64
	// Cells holds one flattened metric snapshot per simulated
	// (workload, config) cell contributing to this result, in
	// deterministic (workload plot order, config name) order.
	Cells []obs.CellMetrics
	// Failures lists the cells that failed or were skipped, in submission
	// order; empty on healthy runs. Populated under ContinueOnError,
	// where cell failures degrade the result instead of aborting the run
	// (the failed workloads are excluded from aggregate rows).
	Failures []CellFailure
}

// Render returns the printable form of the result.
func (r *Result) Render() string {
	out := r.Table.String()
	if r.Table2 != nil {
		out += "\n" + r.Table2.String()
	}
	return out
}

// Get returns a value by row and column.
func (r *Result) Get(row, col string) float64 {
	if m, ok := r.Values[row]; ok {
		return m[col]
	}
	return 0
}

func (r *Result) set(row, col string, v float64) {
	if r.Values == nil {
		r.Values = map[string]map[string]float64{}
	}
	if r.Values[row] == nil {
		r.Values[row] = map[string]float64{}
	}
	r.Values[row][col] = v
}

// Runner executes one experiment. ctx cancels in-flight cell scheduling;
// cells already running finish (a cell is seconds of CPU at full scale) and
// the run returns ctx's error joined with any cell failures.
type Runner func(ctx context.Context, opt Options) (*Result, error)

type regEntry struct {
	ID    ID
	Title string
	Run   Runner
}

// registry maps experiment IDs to runners, in presentation order. It is
// populated in init to break the initialization cycle between runners and
// Title.
var registry []regEntry

func init() {
	// Prepend the paper's tables/figures; ablations may already have
	// registered themselves from another file's init.
	registry = append([]regEntry{
		{"tab1", "Table 1: serverless functions and language runtimes", Table1},
		{"tab2", "Table 2: simulated processor parameters", Table2},
		{"fig1", "Figure 1: CPI stacks, interleaved vs back-to-back", Fig1},
		{"fig2", "Figure 2: front-end working sets per invocation", Fig2},
		{"fig3", "Figure 3: front-end prefetchers on lukewarm invocations", Fig3},
		{"fig4", "Figure 4: sensitivity to warm BPU state", Fig4},
		{"fig5", "Figure 5: sensitivity to warm CBP components", Fig5},
		{"fig6", "Figure 6: initial vs subsequent mispredictions", Fig6},
		{"fig8", "Figure 8: performance over next-line prefetcher", Fig8},
		{"fig9a", "Figure 9a: miss coverage (L1I/BTB/CBP MPKI)", Fig9a},
		{"fig9b", "Figure 9b: initial-misprediction coverage", Fig9b},
		{"fig9c", "Figure 9c: restore accuracy", Fig9c},
		{"fig10", "Figure 10: memory bandwidth breakdown", Fig10},
		{"fig11", "Figure 11: bimodal initialization policies", Fig11},
		{"fig12", "Figure 12: temporal-streaming prefetchers", Fig12},
	}, registry...)
}

// Info describes one registered experiment.
type Info struct {
	ID    ID
	Title string
}

// IDs returns all experiment identifiers in presentation order.
func IDs() []ID {
	ids := make([]ID, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Lookup resolves an experiment ID. The second return is false for unknown
// IDs; Run wraps that case in an UnknownIDError.
func Lookup(id ID) (Info, bool) {
	for _, e := range registry {
		if e.ID == id {
			return Info{ID: e.ID, Title: e.Title}, true
		}
	}
	return Info{}, false
}

// Title returns an experiment's title ("" for unknown IDs).
func Title(id ID) string {
	info, _ := Lookup(id)
	return info.Title
}

// UnknownIDError reports a request for an unregistered experiment, carrying
// the valid IDs so CLIs can print an actionable message.
type UnknownIDError struct {
	ID    ID
	Valid []ID
}

func (e *UnknownIDError) Error() string {
	valid := make([]string, len(e.Valid))
	for i, id := range e.Valid {
		valid[i] = string(id)
	}
	return fmt.Sprintf("experiments: unknown experiment %q (valid: %s)",
		e.ID, strings.Join(valid, ", "))
}

// Run executes the experiment with the given ID. A panic anywhere in the
// experiment — figure aggregation included, not just inside scheduler cells
// — is recovered into a *faults.PanicError so one broken experiment cannot
// take down a multi-experiment run.
func Run(ctx context.Context, id ID, opt Options) (r *Result, err error) {
	for _, e := range registry {
		if e.ID == id {
			defer func() {
				if v := recover(); v != nil {
					r = nil
					err = &faults.PanicError{Value: v, Stack: debug.Stack()}
				}
			}()
			return e.Run(ctx, opt)
		}
	}
	return nil, &UnknownIDError{ID: id, Valid: IDs()}
}

// PaperIDs returns the paper's table/figure experiments (excluding the
// ablation studies) in presentation order.
func PaperIDs() []ID {
	var ids []ID
	for _, e := range registry {
		if strings.HasPrefix(string(e.ID), "tab") || strings.HasPrefix(string(e.ID), "fig") {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// RunAll executes the given experiments (nil = every registered experiment)
// with one shared cell cache, so cells duplicated across figures — the
// nl/interleaved baseline alone is needed by fig3, fig8, fig9a, fig11 and
// fig12, and fig9a repeats four of fig8's configurations — are simulated
// exactly once for the whole reproduction run.
//
// Under FailFast the first failing experiment aborts the sweep. Under
// ContinueOnError a failing experiment is recorded and the sweep moves on:
// RunAll returns every result it completed plus the joined per-experiment
// errors. Cancellation (Ctrl-C) always ends the sweep, returning the
// partial results under ContinueOnError.
func RunAll(ctx context.Context, ids []ID, opt Options) ([]*Result, error) {
	if ids == nil {
		ids = IDs()
	}
	if opt.Cache == nil {
		opt.Cache = NewCellCache()
	}
	results := make([]*Result, 0, len(ids))
	var errs []error
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			if opt.FailurePolicy == ContinueOnError {
				return results, errors.Join(append(errs, err)...)
			}
			return nil, err
		}
		r, err := Run(ctx, id, opt)
		if err != nil {
			if opt.FailurePolicy == ContinueOnError && !errors.Is(err, context.Canceled) {
				errs = append(errs, fmt.Errorf("%s: %w", id, err))
				continue
			}
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		results = append(results, r)
	}
	return results, errors.Join(errs...)
}

// runConfig holds one named simulation cell.
type runConfig struct {
	Name  string
	Kind  sim.Kind
	Tweak sim.Tweaks
	Mode  lukewarm.Mode
}

// cell is the outcome of one (workload, config) simulation: the lukewarm
// result plus the cell's flattened metric snapshot. Metrics are captured
// eagerly as plain values rather than by retaining the *sim.Setup, so a
// cross-experiment cache of cells stays small instead of pinning one full
// engine per unique cell.
type cell struct {
	Res *lukewarm.Result
	// Metrics is the cell's registry snapshot (engine + mechanisms +
	// result aggregates), keyed by obs sample key. Figure code reads
	// specific keys (see the m* constants); the exporters ship the whole
	// map per cell.
	Metrics map[string]float64
}

// Metric keys the figure code reads back out of cell snapshots. Label sets
// are canonical (sorted by key), so these strings are stable.
const (
	mIgniteInserted = "traffic.src_inserted{component=traffic,src=ignite}"
	mIgniteUseful   = "traffic.src_useful{component=traffic,src=ignite}"
	mBTBRestored    = "btb.restored_inserts{component=btb}"
	mBTBRestoredUU  = "btb.restored_evicted_untouched{component=btb}"
)

// matrix is the outcome of runMatrix: the computed cells, every scheduler
// outcome in submission order, and the set of workloads with at least one
// failed or skipped cell. Figure aggregation excludes unhealthy workloads —
// their rows would be incomplete — while their computed cells still ship in
// the exported document alongside status-only entries for the missing ones.
type matrix struct {
	cells     map[string]map[string]*cell
	outcomes  []schedOutcome
	unhealthy map[string]bool
}

// runMatrix simulates every workload under every configuration by
// submitting each (workload, config) cell independently to the supervised
// worker pool. The generated program is built once per workload (through
// the cell cache's program memo) and shared read-only across that
// workload's cells. Injected faults fire before the cache lookup, so cache
// entries stay pure functions of their key and a retried cell is
// bit-identical to a clean one. Under FailFast (the default) the first
// definitive cell failure cancels unstarted cells and the run returns the
// joined errors; under ContinueOnError every healthy cell completes and
// the failures ride on the returned matrix instead. Every finished cell is
// announced to opt.Tracer and appended to opt.Journal.
func runMatrix(ctx context.Context, id ID, opt Options, configs []runConfig) (*matrix, error) {
	opt = opt.withDefaults()
	cache := opt.Cache
	if cache == nil {
		// Private per-matrix cache: no cross-experiment reuse, but still
		// one program build per workload. The serial benchmark path
		// replays the pre-scheduler cost model, which regenerated every
		// invocation trace, so trace sharing stays off there.
		cache = NewCellCache()
		cache.shareTraces = !opt.serialConfigs
	}
	m := &matrix{
		cells:     make(map[string]map[string]*cell, len(opt.Workloads)),
		unhealthy: make(map[string]bool),
	}
	var mu sync.Mutex
	store := func(wl, cfgName string, c *cell) {
		mu.Lock()
		row := m.cells[wl]
		if row == nil {
			row = make(map[string]*cell, len(configs))
			m.cells[wl] = row
		}
		row[cfgName] = c
		mu.Unlock()
	}

	env := cellEnv{tracer: opt.Tracer, checks: opt.Checks, maxCycles: opt.MaxCycles}
	total := len(opt.Workloads) * len(configs)
	var done atomic.Int64
	runCell := func(cctx context.Context, spec workload.Spec, rc runConfig) error {
		start := time.Now()
		site := faults.Site{Experiment: string(id), Workload: spec.Name, Config: rc.Name}
		if err := opt.Faults.Fire(cctx, site); err != nil {
			return err
		}
		cellEnv := env
		cellEnv.ctx = cctx // bounds remote computation; local cells run to completion
		c, cached, err := cache.cell(spec, rc, cellEnv)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", spec.Name, rc.Name, err)
		}
		if opt.Journal != nil {
			if err := opt.Journal.Record(cellKey(spec, rc), site, c, opt.Faults); err != nil {
				return fmt.Errorf("%s/%s: journal: %w", spec.Name, rc.Name, err)
			}
		}
		store(spec.Name, rc.Name, c)
		if tr := opt.Tracer; tr != nil {
			if cached {
				tr.CacheHit(obs.CacheHitEvent{Workload: spec.Name, Config: rc.Name})
			}
			tr.CellDone(obs.CellDoneEvent{
				Experiment: string(id),
				Workload:   spec.Name,
				Config:     rc.Name,
				Cached:     cached,
				Done:       int(done.Add(1)),
				Total:      total,
				Elapsed:    time.Since(start),
			})
		}
		return nil
	}

	sched := newScheduler(ctx, id, opt)
	if opt.serialConfigs {
		for _, spec := range opt.Workloads {
			spec := spec
			sched.submit(spec.Name, "*", func(cctx context.Context, _ int) error {
				for _, rc := range configs {
					if err := runCell(cctx, spec, rc); err != nil {
						return err
					}
				}
				return nil
			})
		}
	} else {
		for _, spec := range opt.Workloads {
			for _, rc := range configs {
				spec, rc := spec, rc
				sched.submit(spec.Name, rc.Name, func(cctx context.Context, _ int) error {
					return runCell(cctx, spec, rc)
				})
			}
		}
	}
	m.outcomes = sched.wait()
	for _, o := range m.outcomes {
		if o.status == StatusFailed || o.status == StatusSkipped {
			m.unhealthy[o.workload] = true
		}
	}
	if opt.FailurePolicy != ContinueOnError || ctx.Err() != nil {
		if err := joinOutcomes(m.outcomes, ctx.Err()); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// attachCells copies the matrix's per-cell metric snapshots into the result
// in deterministic (workload plot order, config name) order, stamps each
// computed cell's scheduler fate, and collects failed and skipped cells
// into r.Failures. Cells that never computed contribute status-only
// entries, so a degraded document states what is missing and why.
func attachCells(r *Result, opt Options, m *matrix) {
	fates := make(map[string]schedOutcome, len(m.outcomes))
	for _, o := range m.outcomes {
		fates[o.workload+"\x00"+o.config] = o
		if o.status == StatusFailed || o.status == StatusSkipped {
			var errStr string
			if o.err != nil {
				errStr = o.err.Error()
			}
			r.Failures = append(r.Failures, CellFailure{
				Workload: o.workload, Config: o.config,
				Status: o.status, Attempts: o.attempts, Err: errStr,
			})
		}
	}
	for _, name := range orderedCellNames(opt, m) {
		row := m.cells[name]
		cfgSet := make(map[string]bool, len(row))
		for cn := range row {
			cfgSet[cn] = true
		}
		for _, o := range m.outcomes {
			if o.workload == name {
				cfgSet[o.config] = true
			}
		}
		cfgs := make([]string, 0, len(cfgSet))
		for cn := range cfgSet {
			cfgs = append(cfgs, cn)
		}
		sort.Strings(cfgs)
		for _, cn := range cfgs {
			cm := obs.CellMetrics{Workload: name, Config: cn}
			o, hasFate := fates[name+"\x00"+cn]
			if c := row[cn]; c != nil {
				cm.Metrics = c.Metrics
				if hasFate && o.status == StatusRetried {
					cm.Status = string(StatusRetried)
					cm.Attempts = o.attempts
				}
			} else if hasFate && (o.status == StatusFailed || o.status == StatusSkipped) {
				cm.Status = string(o.status)
				cm.Attempts = o.attempts
				if o.err != nil {
					cm.Error = o.err.Error()
				}
			} else {
				continue
			}
			r.Cells = append(r.Cells, cm)
		}
	}
}

// orderedNames returns the healthy workload names present in m, in Table 1
// order. Workloads with any failed or skipped cell are excluded: their
// figure rows would be incomplete, and a partial row is worse than a
// clearly absent one.
func orderedNames(opt Options, m *matrix) []string {
	var names []string
	for _, s := range opt.withDefaults().Workloads {
		if _, ok := m.cells[s.Name]; ok && !m.unhealthy[s.Name] {
			names = append(names, s.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		return plotIndex(names[i]) < plotIndex(names[j])
	})
	return names
}

// orderedCellNames is orderedNames without the health filter: every
// workload that produced a cell or a scheduler outcome, for document
// export.
func orderedCellNames(opt Options, m *matrix) []string {
	present := make(map[string]bool, len(m.cells))
	for name := range m.cells {
		present[name] = true
	}
	for _, o := range m.outcomes {
		present[o.workload] = true
	}
	var names []string
	for _, s := range opt.withDefaults().Workloads {
		if present[s.Name] {
			names = append(names, s.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		return plotIndex(names[i]) < plotIndex(names[j])
	})
	return names
}

func plotIndex(name string) int {
	for i, n := range workload.Names() {
		if n == name {
			return i
		}
	}
	return 1 << 30
}

// Table1 lists the benchmark suite.
func Table1(ctx context.Context, opt Options) (*Result, error) {
	_ = ctx // no simulation cells
	opt = opt.withDefaults()
	r := &Result{ID: "tab1", Title: Title("tab1")}
	t := stats.NewTable(r.Title, "function", "full name", "runtime", "target instrs/invocation")
	for _, s := range opt.Workloads {
		t.AddRowf(s.Name, s.FullName, s.Lang.String(), s.TargetInstr)
		r.set(s.Name, "targetInstr", float64(s.TargetInstr))
	}
	r.Table = t
	return r, nil
}

// Table2 dumps the simulated core parameters.
func Table2(ctx context.Context, opt Options) (*Result, error) {
	_ = ctx // no simulation cells
	r := &Result{ID: "tab2", Title: Title("tab2")}
	c := engine.DefaultConfig()
	t := stats.NewTable(r.Title, "parameter", "value")
	rows := []struct {
		k string
		v string
	}{
		{"Width (instr/cycle)", fmt.Sprintf("%d", c.Width)},
		{"FTQ depth (blocks)", fmt.Sprintf("%d", c.FTQDepth)},
		{"Mispredict penalty", fmt.Sprintf("%d cycles", c.MispredictPenalty)},
		{"Decode resteer penalty", fmt.Sprintf("%d cycles", c.DecodeResteerPenalty)},
		{"BTB", fmt.Sprintf("%d entries, %d-way, %d-bit tags", c.BTB.Entries, c.BTB.Ways, c.BTB.TagBits)},
		{"ITLB", fmt.Sprintf("%d entries, %d-way", c.ITLB.Entries, c.ITLB.Ways)},
		{"L1-I latency", fmt.Sprintf("%d cycles", c.Lat.L1I)},
		{"L1-D latency", fmt.Sprintf("%d cycles", c.Lat.L1D)},
		{"L2 latency", fmt.Sprintf("%d cycles", c.Lat.L2)},
		{"LLC latency", fmt.Sprintf("%d cycles", c.Lat.LLC)},
		{"DRAM latency", fmt.Sprintf("%d cycles", c.Lat.Mem)},
	}
	for _, row := range rows {
		t.AddRow(row.k, row.v)
	}
	r.Table = t
	return r, nil
}

// Fig2 measures per-invocation instruction and branch working sets, one
// scheduler cell per workload (program builds are shared through the cache).
func Fig2(ctx context.Context, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	cache := opt.Cache
	if cache == nil {
		cache = NewCellCache()
	}
	sets := make(map[string]workload.WorkingSet, len(opt.Workloads))
	var mu sync.Mutex
	sched := newScheduler(ctx, "fig2", opt)
	for _, s := range opt.Workloads {
		s := s
		sched.submit(s.Name, "workingset", func(cctx context.Context, _ int) error {
			if err := opt.Faults.Fire(cctx, faults.Site{
				Experiment: "fig2", Workload: s.Name, Config: "workingset",
			}); err != nil {
				return err
			}
			prog, err := cache.program(s)
			if err != nil {
				return err
			}
			ws, err := workload.MeasureWorkingSet(prog, 42, s.MaxInstr())
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
			mu.Lock()
			sets[s.Name] = ws
			mu.Unlock()
			return nil
		})
	}
	outs := sched.wait()
	if opt.FailurePolicy != ContinueOnError || ctx.Err() != nil {
		if err := joinOutcomes(outs, ctx.Err()); err != nil {
			return nil, err
		}
	}

	r := &Result{ID: "fig2", Title: Title("fig2")}
	for _, o := range outs {
		if o.status == StatusFailed || o.status == StatusSkipped {
			var errStr string
			if o.err != nil {
				errStr = o.err.Error()
			}
			r.Failures = append(r.Failures, CellFailure{
				Workload: o.workload, Config: o.config,
				Status: o.status, Attempts: o.attempts, Err: errStr,
			})
		}
	}
	t := stats.NewTable(r.Title, "function", "instr WS (KiB)", "branch WS (BTB entries)", "dyn instrs")
	var kibs, ents []float64
	for _, s := range opt.Workloads {
		ws, ok := sets[s.Name]
		if !ok {
			continue
		}
		kib := float64(ws.InstrBytes) / 1024
		t.AddRowf(s.Name, kib, ws.BTBEntries, ws.DynInstr)
		r.set(s.Name, "instrKiB", kib)
		r.set(s.Name, "btbEntries", float64(ws.BTBEntries))
		kibs = append(kibs, kib)
		ents = append(ents, float64(ws.BTBEntries))
	}
	t.AddRowf("Mean", stats.Mean(kibs), stats.Mean(ents), "")
	r.set("Mean", "instrKiB", stats.Mean(kibs))
	r.set("Mean", "btbEntries", stats.Mean(ents))
	r.Table = t
	return r, nil
}

// Fig1 compares CPI stacks between back-to-back and interleaved execution
// under the baseline next-line prefetcher.
func Fig1(ctx context.Context, opt Options) (*Result, error) {
	configs := []runConfig{
		{Name: "b2b", Kind: sim.KindNL, Mode: lukewarm.BackToBack},
		{Name: "interleaved", Kind: sim.KindNL, Mode: lukewarm.Interleaved},
	}
	m, err := runMatrix(ctx, "fig1", opt, configs)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig1", Title: Title("fig1")}
	t := stats.NewTable(r.Title,
		"function", "mode", "CPI", "retiring", "fetch", "badspec", "backend")
	var degr, feShare []float64
	for _, name := range orderedNames(opt, m) {
		b2b := m.cells[name]["b2b"].Res
		il := m.cells[name]["interleaved"].Res
		for _, pair := range []struct {
			mode string
			res  *lukewarm.Result
		}{{"back-to-back", b2b}, {"interleaved", il}} {
			st := pair.res.CPIStack()
			t.AddRowf(name, pair.mode, st.Total(), st.Retiring, st.Fetch, st.BadSpec, st.Backend)
			r.set(name+"/"+pair.mode, "cpi", st.Total())
			r.set(name+"/"+pair.mode, "frontend", st.FrontEnd())
			r.set(name+"/"+pair.mode, "backend", st.Backend)
		}
		d := (il.CPI() - b2b.CPI()) / b2b.CPI() * 100
		fe := (il.CPIStack().FrontEnd() - b2b.CPIStack().FrontEnd()) / (il.CPI() - b2b.CPI())
		degr = append(degr, d)
		feShare = append(feShare, fe)
		r.set(name, "degradationPct", d)
		r.set(name, "frontendShare", fe)
	}
	t.AddRowf("Mean", "CPI increase", fmt.Sprintf("%.0f%%", stats.Mean(degr)),
		"front-end share of degradation", fmt.Sprintf("%.0f%%", stats.Mean(feShare)*100), "", "")
	r.set("Mean", "degradationPct", stats.Mean(degr))
	r.set("Mean", "frontendShare", stats.Mean(feShare))
	r.Table = t
	attachCells(r, opt, m)
	return r, nil
}

// speedupExperiment runs a set of configurations (plus the NL baseline) and
// reports per-workload speedups and mean MPKIs.
func speedupExperiment(ctx context.Context, id ID, opt Options, configs []runConfig) (*Result, error) {
	all := append([]runConfig{{Name: "nl", Kind: sim.KindNL, Mode: lukewarm.Interleaved}}, configs...)
	m, err := runMatrix(ctx, id, opt, all)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: id, Title: Title(id)}
	header := []string{"function"}
	for _, c := range configs {
		header = append(header, c.Name)
	}
	t := stats.NewTable(r.Title+" — speedup over NL", header...)
	speedups := map[string][]float64{}
	for _, name := range orderedNames(opt, m) {
		base := m.cells[name]["nl"].Res.CPI()
		row := []interface{}{name}
		for _, c := range configs {
			s := base / m.cells[name][c.Name].Res.CPI()
			row = append(row, s)
			r.set(name, c.Name+"/speedup", s)
			speedups[c.Name] = append(speedups[c.Name], s)
		}
		t.AddRowf(row...)
	}
	meanRow := []interface{}{"Mean"}
	for _, c := range configs {
		mean := stats.GeoMean(speedups[c.Name])
		meanRow = append(meanRow, mean)
		r.set("Mean", c.Name+"/speedup", mean)
	}
	t.AddRowf(meanRow...)

	// Mean MPKI block (incl. the NL baseline).
	t2 := stats.NewTable("Mean miss rates", "config", "L1I MPKI", "BTB MPKI", "CBP MPKI", "BPU MPKI")
	for _, c := range all {
		var l1, btbM, cbp []float64
		for _, name := range orderedNames(opt, m) {
			res := m.cells[name][c.Name].Res
			l1 = append(l1, res.L1IMPKI())
			btbM = append(btbM, res.BTBMPKI())
			cbp = append(cbp, res.CBPMPKI())
		}
		t2.AddRowf(c.Name, stats.Mean(l1), stats.Mean(btbM), stats.Mean(cbp), stats.Mean(btbM)+stats.Mean(cbp))
		r.set("Mean", c.Name+"/l1impki", stats.Mean(l1))
		r.set("Mean", c.Name+"/btbmpki", stats.Mean(btbM))
		r.set("Mean", c.Name+"/cbpmpki", stats.Mean(cbp))
	}
	r.Table = t
	r.Table2 = t2
	attachCells(r, opt, m)
	return r, nil
}
