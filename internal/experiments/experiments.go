// Package experiments reproduces every table and figure of the paper's
// motivation and evaluation sections. Each experiment runs the lukewarm
// protocol over the 20 workloads (or a subset) under the relevant front-end
// configurations and prints the same rows/series the paper plots.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ignite/internal/engine"
	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/stats"
	"ignite/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Workloads selects the functions to run (default: all 20).
	Workloads []workload.Spec
	// Parallel bounds concurrent cell simulations (default NumCPU). Cells
	// are (workload, config) pairs, so a run exposes up to
	// len(Workloads)×len(configs)-way parallelism.
	Parallel int
	// Cache, when set, memoizes simulation cells so experiments sharing
	// cells (the nl baseline appears in five figures) compute each unique
	// cell exactly once. RunAll installs a shared cache automatically;
	// nil keeps reuse local to a single experiment. Results are
	// bit-identical with or without a cache.
	Cache *CellCache
	// SerialConfigs restores the pre-scheduler execution shape — one
	// goroutine per workload running its configurations serially — and is
	// kept only so benchmarks can measure the old path (see
	// BenchmarkRunAllSerialNoCache). Leave false.
	SerialConfigs bool
}

func (o Options) withDefaults() Options {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.All()
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	return o
}

// Result is a reproduced table/figure: a rendered table plus the raw values
// keyed by row then column for programmatic checks.
type Result struct {
	ID     string
	Title  string
	Table  *stats.Table
	Table2 *stats.Table // optional companion table (e.g. mean MPKIs)
	Values map[string]map[string]float64
}

// Render returns the printable form of the result.
func (r *Result) Render() string {
	out := r.Table.String()
	if r.Table2 != nil {
		out += "\n" + r.Table2.String()
	}
	return out
}

// Get returns a value by row and column.
func (r *Result) Get(row, col string) float64 {
	if m, ok := r.Values[row]; ok {
		return m[col]
	}
	return 0
}

func (r *Result) set(row, col string, v float64) {
	if r.Values == nil {
		r.Values = map[string]map[string]float64{}
	}
	if r.Values[row] == nil {
		r.Values[row] = map[string]float64{}
	}
	r.Values[row][col] = v
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

type regEntry struct {
	ID    string
	Title string
	Run   Runner
}

// registry maps experiment IDs to runners, in presentation order. It is
// populated in init to break the initialization cycle between runners and
// Title.
var registry []regEntry

func init() {
	// Prepend the paper's tables/figures; ablations may already have
	// registered themselves from another file's init.
	registry = append([]regEntry{
		{"tab1", "Table 1: serverless functions and language runtimes", Table1},
		{"tab2", "Table 2: simulated processor parameters", Table2},
		{"fig1", "Figure 1: CPI stacks, interleaved vs back-to-back", Fig1},
		{"fig2", "Figure 2: front-end working sets per invocation", Fig2},
		{"fig3", "Figure 3: front-end prefetchers on lukewarm invocations", Fig3},
		{"fig4", "Figure 4: sensitivity to warm BPU state", Fig4},
		{"fig5", "Figure 5: sensitivity to warm CBP components", Fig5},
		{"fig6", "Figure 6: initial vs subsequent mispredictions", Fig6},
		{"fig8", "Figure 8: performance over next-line prefetcher", Fig8},
		{"fig9a", "Figure 9a: miss coverage (L1I/BTB/CBP MPKI)", Fig9a},
		{"fig9b", "Figure 9b: initial-misprediction coverage", Fig9b},
		{"fig9c", "Figure 9c: restore accuracy", Fig9c},
		{"fig10", "Figure 10: memory bandwidth breakdown", Fig10},
		{"fig11", "Figure 11: bimodal initialization policies", Fig11},
		{"fig12", "Figure 12: temporal-streaming prefetchers", Fig12},
	}, registry...)
}

// IDs returns all experiment identifiers in presentation order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Title returns an experiment's title.
func Title(id string) string {
	for _, e := range registry {
		if e.ID == id {
			return e.Title
		}
	}
	return ""
}

// Run executes the experiment with the given ID.
func Run(id string, opt Options) (*Result, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(opt)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// PaperIDs returns the paper's table/figure experiments (excluding the
// ablation studies) in presentation order.
func PaperIDs() []string {
	var ids []string
	for _, e := range registry {
		if strings.HasPrefix(e.ID, "tab") || strings.HasPrefix(e.ID, "fig") {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// RunAll executes the given experiments (nil = every registered experiment)
// with one shared cell cache, so cells duplicated across figures — the
// nl/interleaved baseline alone is needed by fig3, fig8, fig9a, fig11 and
// fig12, and fig9a repeats four of fig8's configurations — are simulated
// exactly once for the whole reproduction run.
func RunAll(ids []string, opt Options) ([]*Result, error) {
	if ids == nil {
		ids = IDs()
	}
	if opt.Cache == nil {
		opt.Cache = NewCellCache()
	}
	results := make([]*Result, 0, len(ids))
	for _, id := range ids {
		r, err := Run(id, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// runConfig holds one named simulation cell.
type runConfig struct {
	Name  string
	Kind  sim.Kind
	Tweak sim.Tweaks
	Mode  lukewarm.Mode
}

// cell is the outcome of one (workload, config) simulation. The engine-side
// restore-accuracy numbers (Figure 9c) are captured eagerly as plain values
// rather than by retaining the *sim.Setup, so a cross-experiment cache of
// cells stays small instead of pinning one full engine per unique cell.
type cell struct {
	Res *lukewarm.Result
	// Ignite restore accuracy: L2 lines inserted by the restore and how
	// many of those were later demand-used.
	IgniteInserts, IgniteUseful uint64
	// BTB restore accuracy: restored entries and those evicted untouched.
	BTBRestored, BTBRestoredUU uint64
}

// runMatrix simulates every workload under every configuration by
// submitting each (workload, config) cell independently to a bounded worker
// pool. The generated program is built once per workload (through the cell
// cache's program memo) and shared read-only across that workload's cells.
// Cell failures are aggregated with errors.Join, and the first failure
// cancels cells that have not started yet.
func runMatrix(opt Options, configs []runConfig) (map[string]map[string]*cell, error) {
	opt = opt.withDefaults()
	cache := opt.Cache
	if cache == nil {
		// Private per-matrix cache: no cross-experiment reuse, but still
		// one program build per workload. The serial benchmark path
		// replays the pre-scheduler cost model, which regenerated every
		// invocation trace, so trace sharing stays off there.
		cache = NewCellCache()
		cache.shareTraces = !opt.SerialConfigs
	}
	out := make(map[string]map[string]*cell, len(opt.Workloads))
	var mu sync.Mutex
	store := func(wl, cfgName string, c *cell) {
		mu.Lock()
		row := out[wl]
		if row == nil {
			row = make(map[string]*cell, len(configs))
			out[wl] = row
		}
		row[cfgName] = c
		mu.Unlock()
	}

	sched := newScheduler(opt.Parallel)
	if opt.SerialConfigs {
		for _, spec := range opt.Workloads {
			spec := spec
			sched.submit(func() error {
				for _, rc := range configs {
					c, err := cache.cell(spec, rc)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", spec.Name, rc.Name, err)
					}
					store(spec.Name, rc.Name, c)
				}
				return nil
			})
		}
	} else {
		for _, spec := range opt.Workloads {
			for _, rc := range configs {
				spec, rc := spec, rc
				sched.submit(func() error {
					c, err := cache.cell(spec, rc)
					if err != nil {
						return fmt.Errorf("%s/%s: %w", spec.Name, rc.Name, err)
					}
					store(spec.Name, rc.Name, c)
					return nil
				})
			}
		}
	}
	if err := sched.wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// orderedNames returns workload names present in m, in Table 1 order.
func orderedNames(opt Options, m map[string]map[string]*cell) []string {
	var names []string
	for _, s := range opt.withDefaults().Workloads {
		if _, ok := m[s.Name]; ok {
			names = append(names, s.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		return plotIndex(names[i]) < plotIndex(names[j])
	})
	return names
}

func plotIndex(name string) int {
	for i, n := range workload.Names() {
		if n == name {
			return i
		}
	}
	return 1 << 30
}

// Table1 lists the benchmark suite.
func Table1(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	r := &Result{ID: "tab1", Title: Title("tab1")}
	t := stats.NewTable(r.Title, "function", "full name", "runtime", "target instrs/invocation")
	for _, s := range opt.Workloads {
		t.AddRowf(s.Name, s.FullName, s.Lang.String(), s.TargetInstr)
		r.set(s.Name, "targetInstr", float64(s.TargetInstr))
	}
	r.Table = t
	return r, nil
}

// Table2 dumps the simulated core parameters.
func Table2(opt Options) (*Result, error) {
	r := &Result{ID: "tab2", Title: Title("tab2")}
	c := engine.DefaultConfig()
	t := stats.NewTable(r.Title, "parameter", "value")
	rows := []struct {
		k string
		v string
	}{
		{"Width (instr/cycle)", fmt.Sprintf("%d", c.Width)},
		{"FTQ depth (blocks)", fmt.Sprintf("%d", c.FTQDepth)},
		{"Mispredict penalty", fmt.Sprintf("%d cycles", c.MispredictPenalty)},
		{"Decode resteer penalty", fmt.Sprintf("%d cycles", c.DecodeResteerPenalty)},
		{"BTB", fmt.Sprintf("%d entries, %d-way, %d-bit tags", c.BTB.Entries, c.BTB.Ways, c.BTB.TagBits)},
		{"ITLB", fmt.Sprintf("%d entries, %d-way", c.ITLB.Entries, c.ITLB.Ways)},
		{"L1-I latency", fmt.Sprintf("%d cycles", c.Lat.L1I)},
		{"L1-D latency", fmt.Sprintf("%d cycles", c.Lat.L1D)},
		{"L2 latency", fmt.Sprintf("%d cycles", c.Lat.L2)},
		{"LLC latency", fmt.Sprintf("%d cycles", c.Lat.LLC)},
		{"DRAM latency", fmt.Sprintf("%d cycles", c.Lat.Mem)},
	}
	for _, row := range rows {
		t.AddRow(row.k, row.v)
	}
	r.Table = t
	return r, nil
}

// Fig2 measures per-invocation instruction and branch working sets, one
// scheduler cell per workload (program builds are shared through the cache).
func Fig2(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	cache := opt.Cache
	if cache == nil {
		cache = NewCellCache()
	}
	sets := make(map[string]workload.WorkingSet, len(opt.Workloads))
	var mu sync.Mutex
	sched := newScheduler(opt.Parallel)
	for _, s := range opt.Workloads {
		s := s
		sched.submit(func() error {
			prog, err := cache.program(s)
			if err != nil {
				return err
			}
			ws, err := workload.MeasureWorkingSet(prog, 42, s.MaxInstr())
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
			mu.Lock()
			sets[s.Name] = ws
			mu.Unlock()
			return nil
		})
	}
	if err := sched.wait(); err != nil {
		return nil, err
	}

	r := &Result{ID: "fig2", Title: Title("fig2")}
	t := stats.NewTable(r.Title, "function", "instr WS (KiB)", "branch WS (BTB entries)", "dyn instrs")
	var kibs, ents []float64
	for _, s := range opt.Workloads {
		ws := sets[s.Name]
		kib := float64(ws.InstrBytes) / 1024
		t.AddRowf(s.Name, kib, ws.BTBEntries, ws.DynInstr)
		r.set(s.Name, "instrKiB", kib)
		r.set(s.Name, "btbEntries", float64(ws.BTBEntries))
		kibs = append(kibs, kib)
		ents = append(ents, float64(ws.BTBEntries))
	}
	t.AddRowf("Mean", stats.Mean(kibs), stats.Mean(ents), "")
	r.set("Mean", "instrKiB", stats.Mean(kibs))
	r.set("Mean", "btbEntries", stats.Mean(ents))
	r.Table = t
	return r, nil
}

// Fig1 compares CPI stacks between back-to-back and interleaved execution
// under the baseline next-line prefetcher.
func Fig1(opt Options) (*Result, error) {
	configs := []runConfig{
		{Name: "b2b", Kind: sim.KindNL, Mode: lukewarm.BackToBack},
		{Name: "interleaved", Kind: sim.KindNL, Mode: lukewarm.Interleaved},
	}
	m, err := runMatrix(opt, configs)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig1", Title: Title("fig1")}
	t := stats.NewTable(r.Title,
		"function", "mode", "CPI", "retiring", "fetch", "badspec", "backend")
	var degr, feShare []float64
	for _, name := range orderedNames(opt, m) {
		b2b := m[name]["b2b"].Res
		il := m[name]["interleaved"].Res
		for _, pair := range []struct {
			mode string
			res  *lukewarm.Result
		}{{"back-to-back", b2b}, {"interleaved", il}} {
			st := pair.res.CPIStack()
			t.AddRowf(name, pair.mode, st.Total(), st.Retiring, st.Fetch, st.BadSpec, st.Backend)
			r.set(name+"/"+pair.mode, "cpi", st.Total())
			r.set(name+"/"+pair.mode, "frontend", st.FrontEnd())
			r.set(name+"/"+pair.mode, "backend", st.Backend)
		}
		d := (il.CPI() - b2b.CPI()) / b2b.CPI() * 100
		fe := (il.CPIStack().FrontEnd() - b2b.CPIStack().FrontEnd()) / (il.CPI() - b2b.CPI())
		degr = append(degr, d)
		feShare = append(feShare, fe)
		r.set(name, "degradationPct", d)
		r.set(name, "frontendShare", fe)
	}
	t.AddRowf("Mean", "CPI increase", fmt.Sprintf("%.0f%%", stats.Mean(degr)),
		"front-end share of degradation", fmt.Sprintf("%.0f%%", stats.Mean(feShare)*100), "", "")
	r.set("Mean", "degradationPct", stats.Mean(degr))
	r.set("Mean", "frontendShare", stats.Mean(feShare))
	r.Table = t
	return r, nil
}

// speedupExperiment runs a set of configurations (plus the NL baseline) and
// reports per-workload speedups and mean MPKIs.
func speedupExperiment(id string, opt Options, configs []runConfig) (*Result, error) {
	all := append([]runConfig{{Name: "nl", Kind: sim.KindNL, Mode: lukewarm.Interleaved}}, configs...)
	m, err := runMatrix(opt, all)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: id, Title: Title(id)}
	header := []string{"function"}
	for _, c := range configs {
		header = append(header, c.Name)
	}
	t := stats.NewTable(r.Title+" — speedup over NL", header...)
	speedups := map[string][]float64{}
	for _, name := range orderedNames(opt, m) {
		base := m[name]["nl"].Res.CPI()
		row := []interface{}{name}
		for _, c := range configs {
			s := base / m[name][c.Name].Res.CPI()
			row = append(row, s)
			r.set(name, c.Name+"/speedup", s)
			speedups[c.Name] = append(speedups[c.Name], s)
		}
		t.AddRowf(row...)
	}
	meanRow := []interface{}{"Mean"}
	for _, c := range configs {
		mean := stats.GeoMean(speedups[c.Name])
		meanRow = append(meanRow, mean)
		r.set("Mean", c.Name+"/speedup", mean)
	}
	t.AddRowf(meanRow...)

	// Mean MPKI block (incl. the NL baseline).
	t2 := stats.NewTable("Mean miss rates", "config", "L1I MPKI", "BTB MPKI", "CBP MPKI", "BPU MPKI")
	for _, c := range all {
		var l1, btbM, cbp []float64
		for _, name := range orderedNames(opt, m) {
			res := m[name][c.Name].Res
			l1 = append(l1, res.L1IMPKI())
			btbM = append(btbM, res.BTBMPKI())
			cbp = append(cbp, res.CBPMPKI())
		}
		t2.AddRowf(c.Name, stats.Mean(l1), stats.Mean(btbM), stats.Mean(cbp), stats.Mean(btbM)+stats.Mean(cbp))
		r.set("Mean", c.Name+"/l1impki", stats.Mean(l1))
		r.set("Mean", c.Name+"/btbmpki", stats.Mean(btbM))
		r.set("Mean", c.Name+"/cbpmpki", stats.Mean(cbp))
	}
	r.Table = t
	r.Table2 = t2
	return r, nil
}
