// Package experiments reproduces every table and figure of the paper's
// motivation and evaluation sections. Each experiment runs the lukewarm
// protocol over the 20 workloads (or a subset) under the relevant front-end
// configurations and prints the same rows/series the paper plots.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ignite/internal/engine"
	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/stats"
	"ignite/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Workloads selects the functions to run (default: all 20).
	Workloads []workload.Spec
	// Parallel bounds concurrent workload simulations (default NumCPU).
	Parallel int
}

func (o Options) withDefaults() Options {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.All()
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	return o
}

// Result is a reproduced table/figure: a rendered table plus the raw values
// keyed by row then column for programmatic checks.
type Result struct {
	ID     string
	Title  string
	Table  *stats.Table
	Table2 *stats.Table // optional companion table (e.g. mean MPKIs)
	Values map[string]map[string]float64
}

// Render returns the printable form of the result.
func (r *Result) Render() string {
	out := r.Table.String()
	if r.Table2 != nil {
		out += "\n" + r.Table2.String()
	}
	return out
}

// Get returns a value by row and column.
func (r *Result) Get(row, col string) float64 {
	if m, ok := r.Values[row]; ok {
		return m[col]
	}
	return 0
}

func (r *Result) set(row, col string, v float64) {
	if r.Values == nil {
		r.Values = map[string]map[string]float64{}
	}
	if r.Values[row] == nil {
		r.Values[row] = map[string]float64{}
	}
	r.Values[row][col] = v
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

type regEntry struct {
	ID    string
	Title string
	Run   Runner
}

// registry maps experiment IDs to runners, in presentation order. It is
// populated in init to break the initialization cycle between runners and
// Title.
var registry []regEntry

func init() {
	// Prepend the paper's tables/figures; ablations may already have
	// registered themselves from another file's init.
	registry = append([]regEntry{
		{"tab1", "Table 1: serverless functions and language runtimes", Table1},
		{"tab2", "Table 2: simulated processor parameters", Table2},
		{"fig1", "Figure 1: CPI stacks, interleaved vs back-to-back", Fig1},
		{"fig2", "Figure 2: front-end working sets per invocation", Fig2},
		{"fig3", "Figure 3: front-end prefetchers on lukewarm invocations", Fig3},
		{"fig4", "Figure 4: sensitivity to warm BPU state", Fig4},
		{"fig5", "Figure 5: sensitivity to warm CBP components", Fig5},
		{"fig6", "Figure 6: initial vs subsequent mispredictions", Fig6},
		{"fig8", "Figure 8: performance over next-line prefetcher", Fig8},
		{"fig9a", "Figure 9a: miss coverage (L1I/BTB/CBP MPKI)", Fig9a},
		{"fig9b", "Figure 9b: initial-misprediction coverage", Fig9b},
		{"fig9c", "Figure 9c: restore accuracy", Fig9c},
		{"fig10", "Figure 10: memory bandwidth breakdown", Fig10},
		{"fig11", "Figure 11: bimodal initialization policies", Fig11},
		{"fig12", "Figure 12: temporal-streaming prefetchers", Fig12},
	}, registry...)
}

// IDs returns all experiment identifiers in presentation order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Title returns an experiment's title.
func Title(id string) string {
	for _, e := range registry {
		if e.ID == id {
			return e.Title
		}
	}
	return ""
}

// Run executes the experiment with the given ID.
func Run(id string, opt Options) (*Result, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run(opt)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
}

// runConfig holds one named simulation cell.
type runConfig struct {
	Name  string
	Kind  sim.Kind
	Tweak sim.Tweaks
	Mode  lukewarm.Mode
}

// cell is the outcome of one (workload, config) simulation.
type cell struct {
	Res   *lukewarm.Result
	Setup *sim.Setup
}

// runMatrix simulates every workload under every configuration, reusing one
// generated program per workload, with workloads in parallel.
func runMatrix(opt Options, configs []runConfig) (map[string]map[string]*cell, error) {
	opt = opt.withDefaults()
	out := make(map[string]map[string]*cell, len(opt.Workloads))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, opt.Parallel)
	var wg sync.WaitGroup

	for _, spec := range opt.Workloads {
		spec := spec
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			prog, _, err := spec.Build()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			row := make(map[string]*cell, len(configs))
			for _, rc := range configs {
				setup, err := sim.NewWithProgram(spec, prog, rc.Kind, rc.Tweak)
				if err == nil {
					var res *lukewarm.Result
					res, err = setup.Run(rc.Mode)
					if err == nil {
						row[rc.Name] = &cell{Res: res, Setup: setup}
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s/%s: %w", spec.Name, rc.Name, err)
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			out[spec.Name] = row
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// orderedNames returns workload names present in m, in Table 1 order.
func orderedNames(opt Options, m map[string]map[string]*cell) []string {
	var names []string
	for _, s := range opt.withDefaults().Workloads {
		if _, ok := m[s.Name]; ok {
			names = append(names, s.Name)
		}
	}
	sort.SliceStable(names, func(i, j int) bool {
		return plotIndex(names[i]) < plotIndex(names[j])
	})
	return names
}

func plotIndex(name string) int {
	for i, n := range workload.Names() {
		if n == name {
			return i
		}
	}
	return 1 << 30
}

// Table1 lists the benchmark suite.
func Table1(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	r := &Result{ID: "tab1", Title: Title("tab1")}
	t := stats.NewTable(r.Title, "function", "full name", "runtime", "target instrs/invocation")
	for _, s := range opt.Workloads {
		t.AddRowf(s.Name, s.FullName, s.Lang.String(), s.TargetInstr)
		r.set(s.Name, "targetInstr", float64(s.TargetInstr))
	}
	r.Table = t
	return r, nil
}

// Table2 dumps the simulated core parameters.
func Table2(opt Options) (*Result, error) {
	r := &Result{ID: "tab2", Title: Title("tab2")}
	c := engine.DefaultConfig()
	t := stats.NewTable(r.Title, "parameter", "value")
	rows := []struct {
		k string
		v string
	}{
		{"Width (instr/cycle)", fmt.Sprintf("%d", c.Width)},
		{"FTQ depth (blocks)", fmt.Sprintf("%d", c.FTQDepth)},
		{"Mispredict penalty", fmt.Sprintf("%d cycles", c.MispredictPenalty)},
		{"Decode resteer penalty", fmt.Sprintf("%d cycles", c.DecodeResteerPenalty)},
		{"BTB", fmt.Sprintf("%d entries, %d-way, %d-bit tags", c.BTB.Entries, c.BTB.Ways, c.BTB.TagBits)},
		{"ITLB", fmt.Sprintf("%d entries, %d-way", c.ITLB.Entries, c.ITLB.Ways)},
		{"L1-I latency", fmt.Sprintf("%d cycles", c.Lat.L1I)},
		{"L1-D latency", fmt.Sprintf("%d cycles", c.Lat.L1D)},
		{"L2 latency", fmt.Sprintf("%d cycles", c.Lat.L2)},
		{"LLC latency", fmt.Sprintf("%d cycles", c.Lat.LLC)},
		{"DRAM latency", fmt.Sprintf("%d cycles", c.Lat.Mem)},
	}
	for _, row := range rows {
		t.AddRow(row.k, row.v)
	}
	r.Table = t
	return r, nil
}

// Fig2 measures per-invocation instruction and branch working sets.
func Fig2(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	r := &Result{ID: "fig2", Title: Title("fig2")}
	t := stats.NewTable(r.Title, "function", "instr WS (KiB)", "branch WS (BTB entries)", "dyn instrs")
	var kibs, ents []float64
	for _, s := range opt.Workloads {
		prog, _, err := s.Build()
		if err != nil {
			return nil, err
		}
		ws, err := workload.MeasureWorkingSet(prog, 42, s.MaxInstr())
		if err != nil {
			return nil, err
		}
		kib := float64(ws.InstrBytes) / 1024
		t.AddRowf(s.Name, kib, ws.BTBEntries, ws.DynInstr)
		r.set(s.Name, "instrKiB", kib)
		r.set(s.Name, "btbEntries", float64(ws.BTBEntries))
		kibs = append(kibs, kib)
		ents = append(ents, float64(ws.BTBEntries))
	}
	t.AddRowf("Mean", stats.Mean(kibs), stats.Mean(ents), "")
	r.set("Mean", "instrKiB", stats.Mean(kibs))
	r.set("Mean", "btbEntries", stats.Mean(ents))
	r.Table = t
	return r, nil
}

// Fig1 compares CPI stacks between back-to-back and interleaved execution
// under the baseline next-line prefetcher.
func Fig1(opt Options) (*Result, error) {
	configs := []runConfig{
		{Name: "b2b", Kind: sim.KindNL, Mode: lukewarm.BackToBack},
		{Name: "interleaved", Kind: sim.KindNL, Mode: lukewarm.Interleaved},
	}
	m, err := runMatrix(opt, configs)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig1", Title: Title("fig1")}
	t := stats.NewTable(r.Title,
		"function", "mode", "CPI", "retiring", "fetch", "badspec", "backend")
	var degr, feShare []float64
	for _, name := range orderedNames(opt, m) {
		b2b := m[name]["b2b"].Res
		il := m[name]["interleaved"].Res
		for _, pair := range []struct {
			mode string
			res  *lukewarm.Result
		}{{"back-to-back", b2b}, {"interleaved", il}} {
			st := pair.res.CPIStack()
			t.AddRowf(name, pair.mode, st.Total(), st.Retiring, st.Fetch, st.BadSpec, st.Backend)
			r.set(name+"/"+pair.mode, "cpi", st.Total())
			r.set(name+"/"+pair.mode, "frontend", st.FrontEnd())
			r.set(name+"/"+pair.mode, "backend", st.Backend)
		}
		d := (il.CPI() - b2b.CPI()) / b2b.CPI() * 100
		fe := (il.CPIStack().FrontEnd() - b2b.CPIStack().FrontEnd()) / (il.CPI() - b2b.CPI())
		degr = append(degr, d)
		feShare = append(feShare, fe)
		r.set(name, "degradationPct", d)
		r.set(name, "frontendShare", fe)
	}
	t.AddRowf("Mean", "CPI increase", fmt.Sprintf("%.0f%%", stats.Mean(degr)),
		"front-end share of degradation", fmt.Sprintf("%.0f%%", stats.Mean(feShare)*100), "", "")
	r.set("Mean", "degradationPct", stats.Mean(degr))
	r.set("Mean", "frontendShare", stats.Mean(feShare))
	r.Table = t
	return r, nil
}

// speedupExperiment runs a set of configurations (plus the NL baseline) and
// reports per-workload speedups and mean MPKIs.
func speedupExperiment(id string, opt Options, configs []runConfig) (*Result, error) {
	all := append([]runConfig{{Name: "nl", Kind: sim.KindNL, Mode: lukewarm.Interleaved}}, configs...)
	m, err := runMatrix(opt, all)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: id, Title: Title(id)}
	header := []string{"function"}
	for _, c := range configs {
		header = append(header, c.Name)
	}
	t := stats.NewTable(r.Title+" — speedup over NL", header...)
	speedups := map[string][]float64{}
	for _, name := range orderedNames(opt, m) {
		base := m[name]["nl"].Res.CPI()
		row := []interface{}{name}
		for _, c := range configs {
			s := base / m[name][c.Name].Res.CPI()
			row = append(row, s)
			r.set(name, c.Name+"/speedup", s)
			speedups[c.Name] = append(speedups[c.Name], s)
		}
		t.AddRowf(row...)
	}
	meanRow := []interface{}{"Mean"}
	for _, c := range configs {
		mean := stats.GeoMean(speedups[c.Name])
		meanRow = append(meanRow, mean)
		r.set("Mean", c.Name+"/speedup", mean)
	}
	t.AddRowf(meanRow...)

	// Mean MPKI block (incl. the NL baseline).
	t2 := stats.NewTable("Mean miss rates", "config", "L1I MPKI", "BTB MPKI", "CBP MPKI", "BPU MPKI")
	for _, c := range all {
		var l1, btbM, cbp []float64
		for _, name := range orderedNames(opt, m) {
			res := m[name][c.Name].Res
			l1 = append(l1, res.L1IMPKI())
			btbM = append(btbM, res.BTBMPKI())
			cbp = append(cbp, res.CBPMPKI())
		}
		t2.AddRowf(c.Name, stats.Mean(l1), stats.Mean(btbM), stats.Mean(cbp), stats.Mean(btbM)+stats.Mean(cbp))
		r.set("Mean", c.Name+"/l1impki", stats.Mean(l1))
		r.set("Mean", c.Name+"/btbmpki", stats.Mean(btbM))
		r.set("Mean", c.Name+"/cbpmpki", stats.Mean(cbp))
	}
	r.Table = t
	r.Table2 = t2
	return r, nil
}
