package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ignite/internal/faults"
	"ignite/internal/obs"
)

// chaosOpts is quickOpts shrunk further: chaos tests run whole experiment
// sweeps, so every cycle counts under the race detector.
func chaosOpts(t *testing.T) Options {
	t.Helper()
	opt := quickOpts(t)
	for i := range opt.Workloads {
		opt.Workloads[i].TargetInstr /= 4
	}
	return opt
}

// docBytes encodes a result document with the toolchain-dependent manifest
// fields cleared, for byte-level comparisons.
func docBytes(t *testing.T, res *Result, opt Options) []byte {
	t.Helper()
	man := opt.Manifest()
	man.GoVersion = ""
	data, err := res.Document(man).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func findResult(t *testing.T, results []*Result, id ID) *Result {
	t.Helper()
	for _, r := range results {
		if r.ID == id {
			return r
		}
	}
	t.Fatalf("no result for %s", id)
	return nil
}

// TestChaosSmokeSweep runs every registered experiment under the canonical
// smoke fault plan (a panic in fig1, a one-trip transient in fig8, a 30s
// slow cell in fig3) with ContinueOnError and a per-cell deadline. The run
// must survive all three faults: exactly the injected cells degrade, the
// transient cell succeeds on retry with bit-identical values, and every
// healthy row matches a clean run. Setting IGNITE_FAULTS to a custom spec
// swaps in that plan instead; the smoke-site assertions then relax to
// "the sweep survives".
func TestChaosSmokeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	spec := os.Getenv(faults.EnvVar)
	plan, err := faults.FromEnvSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	smoke := plan == nil || spec == "smoke"
	if plan == nil {
		plan = faults.Smoke()
	}

	opt := chaosOpts(t)
	opt.Parallel = 4
	opt.Cache = NewCellCache()
	opt.FailurePolicy = ContinueOnError
	opt.CellTimeout = 2 * time.Second
	opt.Faults = plan
	opt.Health = new(obs.RunHealth)

	results, err := RunAll(context.Background(), nil, opt)
	if err != nil {
		t.Fatalf("chaos sweep errored despite ContinueOnError: %v", err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("chaos sweep returned %d results, want %d", len(results), len(IDs()))
	}
	if !smoke {
		t.Logf("custom %s plan armed; skipping smoke-site assertions", faults.EnvVar)
		return
	}

	// Clean reference runs for the degraded figures.
	cleanOpt := chaosOpts(t)
	cleanOpt.Parallel = 4
	cleanOpt.Cache = NewCellCache()
	cleanFig1, err := Run(context.Background(), "fig1", cleanOpt)
	if err != nil {
		t.Fatal(err)
	}
	cleanFig8, err := Run(context.Background(), "fig8", cleanOpt)
	if err != nil {
		t.Fatal(err)
	}

	// fig1: the injected panic fails exactly Fib-G/b2b; Auth-G survives
	// with values identical to the clean run.
	fig1 := findResult(t, results, "fig1")
	if len(fig1.Failures) != 1 {
		t.Fatalf("fig1 failures = %+v, want exactly the injected panic cell", fig1.Failures)
	}
	f := fig1.Failures[0]
	if f.Workload != "Fib-G" || f.Config != "b2b" || f.Status != StatusFailed {
		t.Errorf("fig1 degraded cell = %+v, want Fib-G/b2b failed", f)
	}
	if !strings.Contains(f.Err, "panic") {
		t.Errorf("fig1 failure lost the panic cause: %s", f.Err)
	}
	if _, ok := fig1.Values["Fib-G/interleaved"]; ok {
		t.Error("fig1 kept a partial Fib-G row despite its failed cell")
	}
	for _, row := range []string{"Auth-G/back-to-back", "Auth-G/interleaved", "Auth-G"} {
		if !reflect.DeepEqual(fig1.Values[row], cleanFig1.Values[row]) {
			t.Errorf("fig1 healthy row %q diverged from clean run:\nchaos: %v\nclean: %v",
				row, fig1.Values[row], cleanFig1.Values[row])
		}
	}

	// fig8: the transient cleared after one trip, so the whole figure is
	// healthy and bit-identical to the clean run.
	fig8 := findResult(t, results, "fig8")
	if len(fig8.Failures) != 0 {
		t.Fatalf("fig8 failures = %+v, want none (transient must clear on retry)", fig8.Failures)
	}
	if !reflect.DeepEqual(fig8.Values, cleanFig8.Values) {
		t.Error("fig8 values diverged from clean run after a retried transient")
	}
	retried := false
	for _, cm := range fig8.Cells {
		if cm.Workload == "Auth-G" && cm.Config == "ignite" {
			retried = cm.Status == string(StatusRetried) && cm.Attempts == 2
		}
	}
	if !retried {
		t.Error("fig8 Auth-G/ignite cell is not marked retried with 2 attempts")
	}

	// fig3: the 30s slow cell overran the 2s deadline and failed.
	fig3 := findResult(t, results, "fig3")
	if len(fig3.Failures) != 1 {
		t.Fatalf("fig3 failures = %+v, want exactly the injected slow cell", fig3.Failures)
	}
	f = fig3.Failures[0]
	if f.Workload != "Fib-G" || f.Config != "jukebox" || f.Status != StatusFailed {
		t.Errorf("fig3 degraded cell = %+v, want Fib-G/jukebox failed", f)
	}
	if !strings.Contains(f.Err, "deadline") {
		t.Errorf("fig3 failure lost the deadline cause: %s", f.Err)
	}

	// Health counters saw each fault class.
	h := opt.Health
	if h.Panics.Load() < 1 || h.Retries.Load() < 1 || h.Deadlines.Load() < 1 || h.Failed.Load() < 2 {
		t.Errorf("health counters missed faults: panics=%d retries=%d deadlines=%d failed=%d",
			h.Panics.Load(), h.Retries.Load(), h.Deadlines.Load(), h.Failed.Load())
	}

	// No other experiment degraded.
	for _, res := range results {
		if res.ID == "fig1" || res.ID == "fig3" {
			continue
		}
		if len(res.Failures) != 0 {
			t.Errorf("%s degraded unexpectedly: %+v", res.ID, res.Failures)
		}
	}
}

// TestChaosPanicFailFast asserts the default policy turns an injected panic
// into a structured error instead of crashing the process.
func TestChaosPanicFailFast(t *testing.T) {
	opt := chaosOpts(t)
	plan, err := faults.Parse("panic@fig1/Fib-G/b2b")
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = plan
	_, err = Run(context.Background(), "fig1", opt)
	if err == nil {
		t.Fatal("fig1 succeeded despite injected panic")
	}
	var cerr *CellError
	if !errors.As(err, &cerr) {
		t.Fatalf("panic did not surface as *CellError: %v", err)
	}
	if cerr.Workload != "Fib-G" || cerr.Config != "b2b" {
		t.Errorf("CellError names %s/%s, want Fib-G/b2b", cerr.Workload, cerr.Config)
	}
	var perr *faults.PanicError
	if !errors.As(err, &perr) {
		t.Errorf("CellError does not unwrap to *faults.PanicError: %v", err)
	}
}

// TestChaosDeterministicAggregationParallel8 runs fig8 twice at width 8
// under a fresh transient fault each time: documents must be byte-identical
// across runs — retry, backoff, and wide scheduling may not perturb results.
func TestChaosDeterministicAggregationParallel8(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig8 twice")
	}
	run := func() []byte {
		opt := chaosOpts(t)
		opt.Parallel = 8
		opt.Cache = NewCellCache()
		plan, err := faults.Parse("transient@fig8/Auth-G/ignite:trips=1")
		if err != nil {
			t.Fatal(err)
		}
		opt.Faults = plan
		res, err := Run(context.Background(), "fig8", opt)
		if err != nil {
			t.Fatal(err)
		}
		return docBytes(t, res, opt)
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Error("fig8 documents differ across identical chaos runs at Parallel=8")
	}
}

// TestChaosCellTimeoutMarksDeadline asserts the per-cell deadline fails a
// cell whose injected delay honors context cancellation, and that the
// health counter classifies it as a deadline hit.
func TestChaosCellTimeoutMarksDeadline(t *testing.T) {
	opt := chaosOpts(t)
	opt.FailurePolicy = ContinueOnError
	opt.CellTimeout = 100 * time.Millisecond
	opt.Health = new(obs.RunHealth)
	plan, err := faults.Parse("slow@fig1/Fib-G/b2b:delay=30s")
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = plan
	res, err := Run(context.Background(), "fig1", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Config != "b2b" {
		t.Fatalf("failures = %+v, want the delayed Fib-G/b2b cell", res.Failures)
	}
	if !strings.Contains(res.Failures[0].Err, "deadline") {
		t.Errorf("failure lost the deadline cause: %s", res.Failures[0].Err)
	}
	if opt.Health.Deadlines.Load() != 1 {
		t.Errorf("deadline counter = %d, want 1", opt.Health.Deadlines.Load())
	}
}

// TestChaosMaxCyclesWatchdog runs fig1 with an absurdly small cycle budget:
// every cell must abort with the engine watchdog error instead of hanging,
// and ContinueOnError must still deliver a (fully degraded) result.
func TestChaosMaxCyclesWatchdog(t *testing.T) {
	opt := chaosOpts(t)
	opt.FailurePolicy = ContinueOnError
	opt.MaxCycles = 100
	res, err := Run(context.Background(), "fig1", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 4 {
		t.Fatalf("failures = %d, want all 4 cells over the cycle budget", len(res.Failures))
	}
	for _, f := range res.Failures {
		if !strings.Contains(f.Err, "cycle budget") {
			t.Errorf("%s/%s failure is not the watchdog: %s", f.Workload, f.Config, f.Err)
		}
	}
	for _, row := range []string{"Fib-G/interleaved", "Auth-G/interleaved"} {
		if _, ok := res.Values[row]; ok {
			t.Errorf("fully degraded fig1 still has value row %q", row)
		}
	}
}

// TestSchedulerCancellationSkips submits cells to an already-canceled run:
// none may execute, all must be recorded as skipped.
func TestSchedulerCancellationSkips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Parallel: 2, Health: new(obs.RunHealth)}
	s := newScheduler(ctx, "test", opt)
	for i := 0; i < 3; i++ {
		s.submit("wl", fmt.Sprintf("c%d", i), func(context.Context, int) error {
			t.Error("cell ran despite canceled context")
			return nil
		})
	}
	outs := s.wait()
	if len(outs) != 3 {
		t.Fatalf("recorded %d outcomes, want 3", len(outs))
	}
	for i, o := range outs {
		if o.status != StatusSkipped {
			t.Errorf("outcome %d status = %s, want skipped", i, o.status)
		}
		if o.config != fmt.Sprintf("c%d", i) {
			t.Errorf("outcome %d is %s, want submission order preserved", i, o.config)
		}
	}
	if n := opt.Health.Skipped.Load(); n != 3 {
		t.Errorf("skipped counter = %d, want 3", n)
	}
}

// TestSchedulerFailFastSkipsQueued holds the single worker slot on a cell
// that then fails: every queued cell must be skipped, never executed.
func TestSchedulerFailFastSkipsQueued(t *testing.T) {
	opt := Options{Parallel: 1, Retries: -1}
	s := newScheduler(context.Background(), "test", opt)
	running := make(chan struct{})
	release := make(chan struct{})
	s.submit("wl", "fail", func(context.Context, int) error {
		close(running)
		<-release
		return errors.New("boom")
	})
	<-running
	for i := 0; i < 3; i++ {
		s.submit("wl", fmt.Sprintf("q%d", i), func(context.Context, int) error {
			t.Errorf("queued cell q%d ran after the failure", i)
			return nil
		})
	}
	close(release)
	outs := s.wait()
	if len(outs) != 4 {
		t.Fatalf("recorded %d outcomes, want 4", len(outs))
	}
	if outs[0].status != StatusFailed {
		t.Errorf("first outcome = %s, want failed", outs[0].status)
	}
	for _, o := range outs[1:] {
		if o.status != StatusSkipped {
			t.Errorf("queued cell %s status = %s, want skipped", o.config, o.status)
		}
	}
	err := joinOutcomes(outs, nil)
	var cerr *CellError
	if !errors.As(err, &cerr) || !strings.Contains(err.Error(), "boom") {
		t.Errorf("joined error lost the cause: %v", err)
	}
}

// TestSchedulerRetriesTransient asserts a transient failure is retried with
// the attempt count recorded, while a plain error is not retried.
func TestSchedulerRetriesTransient(t *testing.T) {
	opt := Options{Parallel: 1, RetryBackoff: time.Millisecond, Health: new(obs.RunHealth)}
	s := newScheduler(context.Background(), "test", opt)
	calls := 0
	s.submit("wl", "flaky", func(_ context.Context, attempt int) error {
		calls++
		if attempt == 1 {
			return &faults.TransientError{Site: faults.Site{Workload: "wl", Config: "flaky"}, Trip: 1}
		}
		return nil
	})
	outs := s.wait()
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2", calls)
	}
	if outs[0].status != StatusRetried || outs[0].attempts != 2 {
		t.Errorf("outcome = %s/%d attempts, want retried/2", outs[0].status, outs[0].attempts)
	}
	if n := opt.Health.Retries.Load(); n != 1 {
		t.Errorf("retry counter = %d, want 1", n)
	}

	s2 := newScheduler(context.Background(), "test", opt)
	calls = 0
	s2.submit("wl", "hard", func(context.Context, int) error {
		calls++
		return errors.New("not transient")
	})
	outs = s2.wait()
	if calls != 1 {
		t.Errorf("non-transient error retried: fn ran %d times", calls)
	}
	if outs[0].status != StatusFailed {
		t.Errorf("outcome = %s, want failed", outs[0].status)
	}
}

// TestJournalResumeByteIdentical interrupts nothing but proves the resume
// contract end to end: a fig1 run journaled to disk, then replayed through
// a fresh cache, must produce a byte-identical document — including the
// manifest's cache statistics — without recomputing any cell.
func TestJournalResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal.jsonl")

	opt1 := chaosOpts(t)
	opt1.Cache = NewCellCache()
	j1, err := OpenJournal(path, opt1.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	opt1.Journal = j1
	res1, err := Run(context.Background(), "fig1", opt1)
	if err != nil {
		t.Fatal(err)
	}
	doc1 := docBytes(t, res1, opt1)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	opt2 := chaosOpts(t)
	opt2.Cache = NewCellCache()
	j2, err := OpenJournal(path, opt2.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	opt2.Journal = j2
	loaded, skipped, err := j2.Resume(opt2.Cache)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 || skipped != 0 {
		t.Fatalf("resume loaded %d / skipped %d records, want 4 / 0", loaded, skipped)
	}
	res2, err := Run(context.Background(), "fig1", opt2)
	if err != nil {
		t.Fatal(err)
	}
	doc2 := docBytes(t, res2, opt2)
	if string(doc1) != string(doc2) {
		t.Error("resumed document differs from the original run")
	}
}

// TestJournalCorruptionDetected arms a corrupt-record fault: the journal's
// record for that cell must fail CRC verification on resume, be skipped,
// and the rerun must recompute exactly that cell — still landing on a
// byte-identical document.
func TestJournalCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal.jsonl")
	plan, err := faults.Parse("corrupt@fig1/Fib-G/b2b")
	if err != nil {
		t.Fatal(err)
	}

	opt1 := chaosOpts(t)
	opt1.Cache = NewCellCache()
	opt1.Faults = plan
	j1, err := OpenJournal(path, opt1.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	opt1.Journal = j1
	res1, err := Run(context.Background(), "fig1", opt1)
	if err != nil {
		t.Fatal(err)
	}
	doc1 := docBytes(t, res1, opt1)
	j1.Close()

	// Simulate a crash-torn tail on top of the corruption.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","crc":1,"cel`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	opt2 := chaosOpts(t)
	opt2.Cache = NewCellCache()
	j2, err := OpenJournal(path, opt2.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	opt2.Journal = j2
	loaded, skipped, err := j2.Resume(opt2.Cache)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 3 || skipped != 2 {
		t.Fatalf("resume loaded %d / skipped %d, want 3 good cells / 2 bad records", loaded, skipped)
	}
	res2, err := Run(context.Background(), "fig1", opt2)
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt-fault plan is exhausted (trips=1 was consumed writing the
	// original journal), so the recomputed record is clean — but the
	// document must match regardless of which cells came from the journal.
	doc2 := docBytes(t, res2, opt2)
	if string(doc1) != string(doc2) {
		t.Error("document after corrupted-journal resume differs from the original")
	}
}

// TestJournalRejectsForeignHeader asserts a journal of a different kind or
// schema version fails loudly — at open, before any record could be
// appended to or replayed from it — instead of silently loading garbage.
func TestJournalRejectsForeignHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(path,
		[]byte(`{"kind":"something-else","schemaVersion":9}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var jce *JournalConfigError
	if _, err := OpenJournal(path, "whatever"); !errors.As(err, &jce) {
		t.Fatalf("OpenJournal on foreign journal = %v, want *JournalConfigError", err)
	}
	if jce.Field != "kind" {
		t.Errorf("rejected on %q, want kind", jce.Field)
	}
}

// TestJournalRejectsForeignConfig is the regression test for the resume
// config-binding bug: a journal written by a different workload matrix has
// the right kind and schema but a different configuration fingerprint, and
// must be rejected typed — both at open and at resume — instead of
// preloading cells the run never asked for.
func TestJournalRejectsForeignConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal.jsonl")

	optA := chaosOpts(t)
	j, err := OpenJournal(path, optA.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// The same matrix at a different scale is a different configuration:
	// every cell key embeds TargetInstr, so optB's run can never use optA's
	// records.
	optB := chaosOpts(t)
	for i := range optB.Workloads {
		optB.Workloads[i].TargetInstr *= 2
	}
	if optA.Fingerprint() == optB.Fingerprint() {
		t.Fatal("scaled matrix produced an identical fingerprint")
	}
	var jce *JournalConfigError
	if _, err := OpenJournal(path, optB.Fingerprint()); !errors.As(err, &jce) {
		t.Fatalf("OpenJournal under foreign config = %v, want *JournalConfigError", err)
	}
	if jce.Field != "fingerprint" {
		t.Errorf("rejected on %q, want fingerprint", jce.Field)
	}

	// Resume revalidates even if the handle predates the mismatch (the file
	// may have been swapped between open and resume).
	good, err := OpenJournal(path, optA.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := os.WriteFile(path, []byte(
		`{"kind":"ignite.run-journal","schemaVersion":1,"fingerprint":"someone-else"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := good.Resume(NewCellCache()); !errors.As(err, &jce) {
		t.Errorf("Resume after fingerprint swap = %v, want *JournalConfigError", err)
	}
}

// TestParseFailurePolicy covers the CLI spellings.
func TestParseFailurePolicy(t *testing.T) {
	for spec, want := range map[string]FailurePolicy{
		"":                  FailFast,
		"fail-fast":         FailFast,
		"failfast":          FailFast,
		"continue":          ContinueOnError,
		"continue-on-error": ContinueOnError,
	} {
		got, err := ParseFailurePolicy(spec)
		if err != nil || got != want {
			t.Errorf("ParseFailurePolicy(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseFailurePolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}
