package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

// quickOpts runs experiments on two small workloads with shortened
// invocations for test speed.
func quickOpts(t *testing.T) Options {
	t.Helper()
	var specs []workload.Spec
	for _, name := range []string{"Fib-G", "Auth-G"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s.TargetInstr /= 2
		specs = append(specs, s)
	}
	return Options{Workloads: specs, Parallel: 2}
}

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	if len(ids) < 19 {
		t.Fatalf("got %d experiments, want >= 19 (15 paper + 4 ablations)", len(ids))
	}
	has := map[ID]bool{}
	for _, id := range ids {
		has[id] = true
	}
	for _, want := range []ID{"fig1", "fig8", "fig12", "abl-codec", "abl-throttle", "abl-btb", "abl-metadata"} {
		if !has[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("no title for %s", id)
		}
	}
	var unknown *UnknownIDError
	if _, err := Run(context.Background(), "nope", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	} else if !errors.As(err, &unknown) {
		t.Errorf("unknown-experiment error has wrong type: %v", err)
	} else if len(unknown.Valid) != len(ids) {
		t.Errorf("UnknownIDError lists %d valid IDs, want %d", len(unknown.Valid), len(ids))
	}
}

func TestTables(t *testing.T) {
	r1, err := Run(context.Background(), "tab1", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r1.Render(), "Fib-G") {
		t.Error("tab1 missing workload")
	}
	r2, err := Run(context.Background(), "tab2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r2.Render(), "12288 entries") {
		t.Errorf("tab2 missing BTB geometry:\n%s", r2.Render())
	}
}

func TestFig1ShowsDegradation(t *testing.T) {
	r, err := Run(context.Background(), "fig1", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Get("Mean", "degradationPct") < 30 {
		t.Errorf("CPI degradation %.0f%% too small", r.Get("Mean", "degradationPct"))
	}
	if r.Get("Mean", "frontendShare") < 0.4 {
		t.Errorf("front-end share %.2f should dominate", r.Get("Mean", "frontendShare"))
	}
}

func TestFig2WorkingSets(t *testing.T) {
	r, err := Run(context.Background(), "fig2", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Get("Fib-G", "btbEntries") < 1000 {
		t.Errorf("Fib-G branch WS %.0f too small", r.Get("Fib-G", "btbEntries"))
	}
}

func TestFig8HeadlineResult(t *testing.T) {
	r, err := Run(context.Background(), "fig8", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	ignite := r.Get("Mean", "ignite/speedup")
	bjb := r.Get("Mean", "boomerang+jb/speedup")
	tage := r.Get("Mean", "ignite+tage/speedup")
	ideal := r.Get("Mean", "ideal/speedup")
	if !(ignite > bjb) {
		t.Errorf("Ignite (%.2f) must beat Boomerang+JB (%.2f)", ignite, bjb)
	}
	if !(tage >= ignite) {
		t.Errorf("Ignite+TAGE (%.2f) must be >= Ignite (%.2f)", tage, ignite)
	}
	if !(ideal >= tage) {
		t.Errorf("Ideal (%.2f) must bound Ignite+TAGE (%.2f)", ideal, tage)
	}
	// MPKI reductions.
	if r.Get("Mean", "ignite/btbmpki") >= r.Get("Mean", "boomerang+jb/btbmpki")*1.5 {
		t.Error("Ignite BTB MPKI should not exceed Boomerang+JB substantially")
	}
	if r.Get("Mean", "ignite/cbpmpki") >= r.Get("Mean", "nl/cbpmpki") {
		t.Error("Ignite must reduce CBP MPKI vs NL")
	}
}

func TestFig11PolicyOrdering(t *testing.T) {
	r, err := Run(context.Background(), "fig11", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	wt := r.Get("Mean", "bim-wt/speedup")
	wnt := r.Get("Mean", "bim-wnt/speedup")
	if wt <= wnt {
		t.Errorf("weakly-taken (%.3f) must beat weakly-not-taken (%.3f)", wt, wnt)
	}
}

func TestFig9cAccuracyBounds(t *testing.T) {
	r, err := Run(context.Background(), "fig9c", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"l2OverPct", "btbOverPct", "cbpInducedPct"} {
		v := r.Get("Mean", col)
		if v < 0 || v > 100 {
			t.Errorf("%s = %.1f out of range", col, v)
		}
	}
	// Ignite is highly accurate: restored state is mostly used.
	if r.Get("Mean", "btbOverPct") > 50 {
		t.Errorf("BTB overprediction %.1f%% too high", r.Get("Mean", "btbOverPct"))
	}
}

func TestFig10TrafficBreakdown(t *testing.T) {
	r, err := Run(context.Background(), "fig10", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	// Ignite has metadata traffic; NL has none.
	if r.Get("nl", "recordKiB")+r.Get("nl", "replayKiB") != 0 {
		t.Error("NL has metadata traffic")
	}
	if r.Get("ignite", "replayKiB") == 0 {
		t.Error("Ignite shows no replay metadata traffic")
	}
	if r.Get("nl", "totalKiB") == 0 {
		t.Error("no traffic measured")
	}
}

func TestAblCodecFindsPaperSweetSpot(t *testing.T) {
	r, err := Run(context.Background(), "abl-codec", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 7/21 configuration must beat both a too-narrow and the
	// swapped configuration on bits per record.
	best := r.Get("7/21", "bitsPerRecord")
	if best <= 0 {
		t.Fatal("no data for 7/21")
	}
	if swapped := r.Get("21/7", "bitsPerRecord"); swapped <= best {
		t.Errorf("swapped widths (%.1f b/rec) should be worse than 7/21 (%.1f)", swapped, best)
	}
}

func TestAblThrottleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	opt := quickOpts(t)
	opt.Workloads = opt.Workloads[:1]
	r, err := Run(context.Background(), "abl-throttle", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"64", "1024", "unthrottled"} {
		if r.Get(row, "speedup") <= 0.5 {
			t.Errorf("threshold %s: implausible speedup %.2f", row, r.Get(row, "speedup"))
		}
	}
}

func TestFig5WarmCBPComponents(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := Run(context.Background(), "fig5", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	cold := r.Get("Mean", "btb-warm-cbp-cold/cbpmpki")
	bim := r.Get("Mean", "+bim-warm/cbpmpki")
	tage := r.Get("Mean", "+tage-warm/cbpmpki")
	if !(bim < cold) {
		t.Errorf("warm BIM CBP MPKI %.2f should be below cold %.2f", bim, cold)
	}
	if !(tage < bim) {
		t.Errorf("warm TAGE CBP MPKI %.2f should be below BIM-only %.2f", tage, bim)
	}
}

func TestFig12TemporalStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := Run(context.Background(), "fig12", quickOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	cf := r.Get("Mean", "confluence/speedup")
	cfi := r.Get("Mean", "confluence+ignite/speedup")
	if !(cfi > cf) {
		t.Errorf("Confluence+Ignite (%.2f) must beat Confluence alone (%.2f)", cfi, cf)
	}
	// Ignite's BPU restore must cut Confluence's BPU misses substantially.
	if r.Get("Mean", "confluence+ignite/btbmpki") >= r.Get("Mean", "confluence/btbmpki") {
		t.Error("Confluence+Ignite did not reduce BTB MPKI")
	}
}

// TestRunMatrixAggregatesFailures checks the scheduler's error contract:
// every failing cell is reported (errors.Join), not just the first, and a
// failure cancels outstanding cells instead of simulating a doomed run to
// completion.
func TestRunMatrixAggregatesFailures(t *testing.T) {
	opt := quickOpts(t)
	opt.Parallel = 1 // serialize so cancellation after failure #1 is observable
	_, err := runMatrix(context.Background(), "test", opt, []runConfig{
		{Name: "bogus", Kind: sim.Kind("no-such-config"), Mode: lukewarm.Interleaved},
	})
	if err == nil {
		t.Fatal("runMatrix accepted an unknown configuration")
	}
	if !strings.Contains(err.Error(), "unknown configuration") {
		t.Errorf("error lost the cause: %v", err)
	}
	// With Parallel=1 the first failure cancels the second workload's cell,
	// so exactly one error surfaces; with wider pools both may run. Either
	// way the run must fail and name the workload/config.
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error lost the cell name: %v", err)
	}
}

// TestChecksAllExperiments runs every registered experiment with runtime
// invariant checking enabled: each distinct cell's invocations are audited
// against the conservation laws in internal/check, and any violation fails
// the run. The shared cell cache keeps the sweep affordable — every unique
// (workload, config, mode) cell is simulated (and therefore audited) exactly
// once.
func TestChecksAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opt := quickOpts(t)
	// The laws are scale-free, so run the sweep at 1/8 of the full budget:
	// under the race detector on a small machine, every cycle counts.
	for i := range opt.Workloads {
		opt.Workloads[i].TargetInstr /= 4
	}
	opt.Parallel = 8
	opt.Cache = NewCellCache()
	opt.Checks = true
	if _, err := RunAll(context.Background(), IDs(), opt); err != nil {
		t.Fatalf("invariant violation while running all experiments: %v", err)
	}
	if cells, _ := opt.Cache.Stats(); cells == 0 {
		t.Fatal("no cells simulated")
	}
}
