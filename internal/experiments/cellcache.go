package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"ignite/internal/cfg"
	"ignite/internal/engine"
	"ignite/internal/faults"
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

// scratchPool recycles engine working buffers (trace, eval and walk scratch)
// across cells. Each cell builds a fresh engine, but the megabytes of
// per-invocation buffer the previous cell grew are reusable as-is; pooling
// them takes steady-state cell simulation from one large growth cycle per
// cell to near-zero buffer allocation. Scratch contents never affect
// results — buffers are attached length-zero and fully rewritten.
var scratchPool = sync.Pool{New: func() any { return new(engine.Scratch) }}

// CellCache memoizes the two deterministic, expensive artifacts of an
// experiment run across experiments:
//
//   - generated programs, keyed by the full workload specification, built
//     once per workload and shared read-only (Program.Walk carries its own
//     PCG state, so concurrent cells may walk one program safely);
//   - simulation cells, keyed by everything that determines a cell's
//     outcome: the workload spec (name, generator parameters, data profile,
//     instruction budget), the front-end configuration kind, the
//     canonicalized tweaks, and the lukewarm mode.
//
// A cell is a pure function of its key — the engine seeds every RNG from the
// spec — so the nl/interleaved baseline that fig3, fig8, fig9a, fig11 and
// fig12 all need is simulated exactly once per RunAll instead of five times.
// Entries are computed single-flight: a second request for an in-flight key
// blocks until the first completes and shares its result.
type CellCache struct {
	mu     sync.Mutex
	progs  map[string]*progEntry
	cells  map[string]*cellEntry
	traces map[string]*traceEntry
	hits   int
	// shareTraces feeds cells pre-generated committed traces (the walk
	// depends only on the program and seed, never on the front-end
	// configuration, so a workload's ~6 invocation traces are identical
	// across every cell). Disabled only on the benchmark path that
	// replays the pre-scheduler cost model.
	shareTraces bool
	// backing, when set, persists computed cells to (and restores them
	// from) a cross-run store — see SetBacking. Loads and saves happen
	// inside the entry's single-flight section, so hit accounting (and
	// therefore exported manifests) is identical between a cold run and a
	// warm-store rerun.
	backing CellBacking
	// remote, when set, delegates fresh cell computation out of process —
	// see SetRemote. The backing store is consulted first, so a
	// coordinator with a warm store never ships the cell over the wire.
	remote RemoteFunc
}

// CellBacking is a persistent cell store the cache reads through: Load
// returns the stored result for a key (ok=false on any miss, including a
// detected-corrupt record — the cache recomputes and Save repairs), and
// Save persists a freshly computed cell. Implementations must be safe for
// concurrent use; the experiments layer binds internal/store through this
// seam (see BindStore).
type CellBacking interface {
	Load(key string) (res CellPayload, ok bool)
	Save(key string, res CellPayload)
}

// CellPayload is the portable value of one computed cell — exactly what
// the journal, the content-addressed store, and the distributed-sweep wire
// protocol all carry. lukewarm.Result is plain exported data, so a JSON
// round trip reproduces it bit-identically.
type CellPayload struct {
	Res     *lukewarm.Result   `json:"res"`
	Metrics map[string]float64 `json:"metrics"`
}

// RemoteFunc computes one cell out of process (a distributed-sweep
// coordinator shipping the cell to a worker). A transient error (anything
// exposing Transient() bool, e.g. a worker connection failure) is not
// cached: the entry is evicted so the scheduler's retry machinery gets a
// fresh attempt instead of the memoized failure.
type RemoteFunc func(ctx context.Context, cs CellSpec, env CellEnv) (CellPayload, error)

// SetBacking installs a persistent store behind the cache. Must be set
// before the first cell request.
func (cc *CellCache) SetBacking(b CellBacking) { cc.backing = b }

// SetRemote installs an out-of-process compute delegate. Must be set
// before the first cell request.
func (cc *CellCache) SetRemote(fn RemoteFunc) { cc.remote = fn }

type progEntry struct {
	once sync.Once
	prog *cfg.Program
	err  error
}

type cellEntry struct {
	once sync.Once
	c    *cell
	err  error
	// preloaded marks an entry injected by Preload (journal resume). The
	// first request of a preloaded entry is not counted as a cache hit, so
	// a resumed run reports the same cache statistics — and therefore an
	// identical manifest — as the clean run it replays.
	preloaded bool
}

type traceEntry struct {
	once  sync.Once
	steps []cfg.Step
	res   cfg.WalkResult
	err   error
}

// NewCellCache returns an empty cache.
func NewCellCache() *CellCache {
	return &CellCache{
		progs:       make(map[string]*progEntry),
		cells:       make(map[string]*cellEntry),
		traces:      make(map[string]*traceEntry),
		shareTraces: true,
	}
}

// specKey fingerprints everything about a workload that affects simulation:
// tests and benchmarks shrink TargetInstr on otherwise identical specs, so
// the name alone is not a safe key.
func specKey(spec workload.Spec) string {
	return fmt.Sprintf("%s|%d|%+v|%+v", spec.Name, spec.TargetInstr, spec.Gen, spec.Data)
}

// tweakKey canonicalizes sim.Tweaks (dereferencing the BIM-policy pointer,
// which would otherwise print as an address and break key equality).
func tweakKey(tw sim.Tweaks) string {
	bim := -1
	if tw.BIMPolicy != nil {
		bim = int(*tw.BIMPolicy)
	}
	return fmt.Sprintf("keep=%v,%v,%v|bim=%d|dbl=%v|thr=%d|meta=%d|btb=%d|l2=%d",
		tw.Keep.BTB, tw.Keep.BIM, tw.Keep.TAGE, bim,
		tw.DoubleBuffer, tw.ThrottleThreshold, tw.MetadataBytes, tw.BTBEntries, tw.L2KiB)
}

func cellKey(spec workload.Spec, rc runConfig) string {
	return fmt.Sprintf("%s|kind=%s|mode=%d|%s", specKey(spec), rc.Kind, rc.Mode, tweakKey(rc.Tweak))
}

// program returns the workload's generated program, building it at most once.
func (cc *CellCache) program(spec workload.Spec) (*cfg.Program, error) {
	key := specKey(spec)
	cc.mu.Lock()
	e, ok := cc.progs[key]
	if !ok {
		e = &progEntry{}
		cc.progs[key] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.prog, _, e.err = spec.Build() })
	return e.prog, e.err
}

// cellEnv carries the per-run knobs that shape how a fresh cell simulates
// without affecting its result, so none of them belong in the cache key:
// tracing and checking never alter outcomes (a check can only abort the
// run), and the cycle-budget watchdog is abort-only. ctx bounds remote
// computation only — local simulation is pure CPU and runs to completion.
type cellEnv struct {
	ctx       context.Context
	tracer    obs.Tracer
	checks    bool
	maxCycles uint64
}

// cell returns the simulated (workload, config) cell, computing it at most
// once per unique key. The second return reports whether the cell was served
// from the cache (an entry another request already created). A panic during
// computation is recovered into a *faults.PanicError and cached as the
// entry's error — without that, sync.Once would mark the entry done and
// serve a nil cell to every later requester.
func (cc *CellCache) cell(spec workload.Spec, rc runConfig, env cellEnv) (*cell, bool, error) {
	key := cellKey(spec, rc)
	cc.mu.Lock()
	e, ok := cc.cells[key]
	hit := ok
	if !ok {
		e = &cellEntry{}
		cc.cells[key] = e
	} else if e.preloaded {
		e.preloaded = false
		hit = false
	} else {
		cc.hits++
	}
	cc.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if v := recover(); v != nil {
				e.c, e.err = nil, &faults.PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		// Persistent store first: a warm record turns the cell into pure
		// I/O. Loading inside the single-flight section keeps cache-hit
		// accounting — and therefore exported manifests — identical
		// between a cold run and a warm-store rerun.
		if cc.backing != nil {
			if p, ok := cc.backing.Load(key); ok {
				e.c = &cell{Res: p.Res, Metrics: p.Metrics}
				return
			}
		}
		if cc.remote != nil {
			ctx := env.ctx
			if ctx == nil {
				ctx = context.Background()
			}
			cs := CellSpec{Workload: spec, Config: rc.Kind, Tweaks: rc.Tweak, Mode: rc.Mode}
			p, err := cc.remote(ctx, cs, CellEnv{Tracer: env.tracer, Checks: env.checks, MaxCycles: env.maxCycles})
			if err != nil {
				e.err = err
				return
			}
			e.c = &cell{Res: p.Res, Metrics: p.Metrics}
		} else {
			e.c, e.err = cc.compute(spec, rc, env)
		}
		if e.err == nil && cc.backing != nil {
			cc.backing.Save(key, CellPayload{Res: e.c.Res, Metrics: e.c.Metrics})
		}
	})
	// A transient remote failure (worker connection lost, fleet draining)
	// or an attempt ended by its context must not be memoized: evict the
	// entry so the scheduler's retry — or the next run sharing this cache —
	// gets a fresh attempt. Deterministic failures stay cached as before.
	if e.err != nil && cc.remote != nil &&
		(faults.IsTransient(e.err) || errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		cc.mu.Lock()
		if cc.cells[key] == e {
			delete(cc.cells, key)
		}
		cc.mu.Unlock()
	}
	return e.c, hit, e.err
}

// Preload installs an already-computed cell (a journal record from an
// earlier, interrupted run) under key. Existing entries win: a preloaded
// cell never displaces a live computation.
func (cc *CellCache) Preload(key string, c *cell) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if _, ok := cc.cells[key]; ok {
		return
	}
	e := &cellEntry{c: c, preloaded: true}
	e.once.Do(func() {})
	cc.cells[key] = e
}

// trace returns the committed trace for (workload, seed, budget), walking
// the program at most once per key. Entries live for the cache's lifetime:
// a full-scale all-figures run holds roughly six traces per workload.
func (cc *CellCache) trace(prog *cfg.Program, specK string, seed, maxInstr uint64) ([]cfg.Step, cfg.WalkResult, error) {
	key := fmt.Sprintf("%s|seed=%d|max=%d", specK, seed, maxInstr)
	cc.mu.Lock()
	e, ok := cc.traces[key]
	if !ok {
		e = &traceEntry{}
		cc.traces[key] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() {
		steps := make([]cfg.Step, 0, 4096)
		e.res, e.err = prog.Walk(0, cfg.WalkOptions{Seed: seed, MaxInstr: maxInstr},
			func(s cfg.Step) bool { steps = append(steps, s); return true })
		e.steps = steps
	})
	return e.steps, e.res, e.err
}

func (cc *CellCache) compute(spec workload.Spec, rc runConfig, env cellEnv) (*cell, error) {
	prog, err := cc.program(spec)
	if err != nil {
		return nil, err
	}
	opts := []sim.Option{sim.WithTweaks(rc.Tweak), sim.WithTracer(env.tracer)}
	if env.checks {
		opts = append(opts, sim.WithChecks())
	}
	if env.maxCycles > 0 {
		opts = append(opts, sim.WithMaxCycles(env.maxCycles))
	}
	setup, err := sim.NewWithProgram(spec, prog, rc.Kind, opts...)
	if err != nil {
		return nil, err
	}
	setup.Eng.AttachScratch(scratchPool.Get().(*engine.Scratch))
	defer func() { scratchPool.Put(setup.Eng.DetachScratch()) }()
	if cc.shareTraces {
		specK := specKey(spec)
		setup.TraceProvider = func(seed, maxInstr uint64) ([]cfg.Step, cfg.WalkResult, error) {
			return cc.trace(prog, specK, seed, maxInstr)
		}
	}
	res, err := setup.Run(rc.Mode)
	if err != nil {
		return nil, err
	}
	// Snapshot every engine/mechanism/result metric into plain values so
	// cached cells do not pin whole engines (caches, BTB, TAGE tables) in
	// memory for the lifetime of a cross-experiment cache.
	reg := obs.NewRegistry()
	setup.RegisterMetrics(reg)
	res.RegisterMetrics(reg, nil)
	return &cell{Res: res, Metrics: reg.Snapshot().Values()}, nil
}

// Stats reports the number of distinct cells simulated and how many cell
// requests were served from the cache.
func (cc *CellCache) Stats() (cells, hits int) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.cells), cc.hits
}
