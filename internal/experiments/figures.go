package experiments

import (
	"context"

	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/stats"
)

// Fig3 compares the prior-art front-end prefetchers against the ideal
// front-end on lukewarm invocations.
func Fig3(ctx context.Context, opt Options) (*Result, error) {
	return speedupExperiment(ctx, "fig3", opt, []runConfig{
		{Name: "jukebox", Kind: sim.KindJukebox, Mode: lukewarm.Interleaved},
		{Name: "boomerang", Kind: sim.KindBoomerang, Mode: lukewarm.Interleaved},
		{Name: "boomerang+jb", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved},
		{Name: "ideal", Kind: sim.KindIdeal, Mode: lukewarm.Interleaved},
	})
}

// Fig4 evaluates Boomerang+JB with selectively preserved BPU state.
func Fig4(ctx context.Context, opt Options) (*Result, error) {
	return speedupExperiment(ctx, "fig4", opt, []runConfig{
		{Name: "boomerang+jb", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved},
		{Name: "+warm-btb", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{Keep: lukewarm.Preserve{BTB: true}}},
		{Name: "+warm-cbp", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{Keep: lukewarm.Preserve{BTB: true, BIM: true, TAGE: true}}},
		{Name: "ideal", Kind: sim.KindIdeal, Mode: lukewarm.Interleaved},
	})
}

// Fig5 splits the warm-CBP benefit between the BIM and TAGE components,
// on Boomerang+JB with a warm BTB.
func Fig5(ctx context.Context, opt Options) (*Result, error) {
	return speedupExperiment(ctx, "fig5", opt, []runConfig{
		{Name: "btb-warm-cbp-cold", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{Keep: lukewarm.Preserve{BTB: true}}},
		{Name: "+bim-warm", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{Keep: lukewarm.Preserve{BTB: true, BIM: true}}},
		{Name: "+tage-warm", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{Keep: lukewarm.Preserve{BTB: true, BIM: true, TAGE: true}}},
	})
}

// Fig6 splits the conditional mispredictions of Boomerang+JB (warm BTB,
// cold CBP) into initial (first execution of a branch in the invocation)
// and subsequent mispredictions.
func Fig6(ctx context.Context, opt Options) (*Result, error) {
	m, err := runMatrix(ctx, "fig6", opt, []runConfig{
		{Name: "bjb-warm-btb", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{Keep: lukewarm.Preserve{BTB: true}}},
	})
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig6", Title: Title("fig6")}
	t := stats.NewTable(r.Title, "function", "initial MPKI", "subsequent MPKI", "initial share %")
	var shares []float64
	for _, name := range orderedNames(opt, m) {
		res := m.cells[name]["bjb-warm-btb"].Res
		initial := res.InitialCBPMPKI()
		total := res.CBPMPKI()
		share := 0.0
		if total > 0 {
			share = initial / total * 100
		}
		t.AddRowf(name, initial, total-initial, share)
		r.set(name, "initial", initial)
		r.set(name, "subsequent", total-initial)
		r.set(name, "sharePct", share)
		shares = append(shares, share)
	}
	t.AddRowf("Mean", "", "", stats.Mean(shares))
	r.set("Mean", "sharePct", stats.Mean(shares))
	r.Table = t
	attachCells(r, opt, m)
	return r, nil
}

// Fig8 is the headline evaluation: per-function speedups of Boomerang,
// Boomerang+JB, Ignite, Ignite+TAGE and the ideal front-end over NL.
func Fig8(ctx context.Context, opt Options) (*Result, error) {
	return speedupExperiment(ctx, "fig8", opt, []runConfig{
		{Name: "boomerang", Kind: sim.KindBoomerang, Mode: lukewarm.Interleaved},
		{Name: "boomerang+jb", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved},
		{Name: "ignite", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved},
		{Name: "ignite+tage", Kind: sim.KindIgniteTAGE, Mode: lukewarm.Interleaved},
		{Name: "ideal", Kind: sim.KindIdeal, Mode: lukewarm.Interleaved},
	})
}

// Fig9a reports the miss-coverage MPKIs for the Figure 8 configurations.
func Fig9a(ctx context.Context, opt Options) (*Result, error) {
	r, err := speedupExperiment(ctx, "fig9a", opt, []runConfig{
		{Name: "boomerang", Kind: sim.KindBoomerang, Mode: lukewarm.Interleaved},
		{Name: "boomerang+jb", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved},
		{Name: "ignite", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved},
		{Name: "ignite+tage", Kind: sim.KindIgniteTAGE, Mode: lukewarm.Interleaved},
	})
	if err != nil {
		return nil, err
	}
	// The MPKI companion table is the figure; promote it.
	r.Table, r.Table2 = r.Table2, r.Table
	return r, nil
}

// Fig9b reports Ignite's coverage of initial mispredictions against the
// Boomerang+JB (warm BTB) background of Figure 6.
func Fig9b(ctx context.Context, opt Options) (*Result, error) {
	m, err := runMatrix(ctx, "fig9b", opt, []runConfig{
		{Name: "ignite", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved},
		{Name: "bjb-warm-btb", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{Keep: lukewarm.Preserve{BTB: true}}},
	})
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig9b", Title: Title("fig9b")}
	t := stats.NewTable(r.Title,
		"function", "ignite initial", "ignite subsequent", "bjb initial", "bjb subsequent", "initial covered %")
	var covs []float64
	for _, name := range orderedNames(opt, m) {
		ig := m.cells[name]["ignite"].Res
		bg := m.cells[name]["bjb-warm-btb"].Res
		cov := 0.0
		if bg.InitialCBPMPKI() > 0 {
			cov = (1 - ig.InitialCBPMPKI()/bg.InitialCBPMPKI()) * 100
		}
		t.AddRowf(name, ig.InitialCBPMPKI(), ig.CBPMPKI()-ig.InitialCBPMPKI(),
			bg.InitialCBPMPKI(), bg.CBPMPKI()-bg.InitialCBPMPKI(), cov)
		r.set(name, "igniteInitial", ig.InitialCBPMPKI())
		r.set(name, "bjbInitial", bg.InitialCBPMPKI())
		r.set(name, "coveredPct", cov)
		covs = append(covs, cov)
	}
	t.AddRowf("Mean", "", "", "", "", stats.Mean(covs))
	r.set("Mean", "coveredPct", stats.Mean(covs))
	r.Table = t
	attachCells(r, opt, m)
	return r, nil
}

// Fig9c reports Ignite's restore accuracy: the fraction of restored L2
// lines and BTB entries that were never used, and the mispredictions its
// BIM initialization induced.
func Fig9c(ctx context.Context, opt Options) (*Result, error) {
	m, err := runMatrix(ctx, "fig9c", opt, []runConfig{
		{Name: "ignite", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved},
	})
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig9c", Title: Title("fig9c")}
	t := stats.NewTable(r.Title,
		"function", "L2 overpredicted %", "BTB overpredicted %", "CBP induced %")
	var l2s, btbs, cbps []float64
	for _, name := range orderedNames(opt, m) {
		c := m.cells[name]["ignite"]
		inserted := c.Metrics[mIgniteInserted]
		useful := c.Metrics[mIgniteUseful]
		l2Over := 0.0
		if inserted > 0 {
			l2Over = (inserted - useful) / inserted * 100
		}
		restored := c.Metrics[mBTBRestored]
		btbOver := 0.0
		if restored > 0 {
			btbOver = c.Metrics[mBTBRestoredUU] / restored * 100
		}
		res := c.Res
		induced := 0.0
		if res.CBPMPKI() > 0 {
			induced = res.InducedMPKI() / res.CBPMPKI() * 100
		}
		t.AddRowf(name, l2Over, btbOver, induced)
		r.set(name, "l2OverPct", l2Over)
		r.set(name, "btbOverPct", btbOver)
		r.set(name, "cbpInducedPct", induced)
		l2s = append(l2s, l2Over)
		btbs = append(btbs, btbOver)
		cbps = append(cbps, induced)
	}
	t.AddRowf("Mean", stats.Mean(l2s), stats.Mean(btbs), stats.Mean(cbps))
	r.set("Mean", "l2OverPct", stats.Mean(l2s))
	r.set("Mean", "btbOverPct", stats.Mean(btbs))
	r.set("Mean", "cbpInducedPct", stats.Mean(cbps))
	r.Table = t
	attachCells(r, opt, m)
	return r, nil
}

// Fig10 breaks down per-invocation memory traffic into useful instructions,
// useless instructions (wrong path and dead prefetches), and record/replay
// metadata. Ignite runs with double buffering — the paper's worst case.
func Fig10(ctx context.Context, opt Options) (*Result, error) {
	m, err := runMatrix(ctx, "fig10", opt, []runConfig{
		{Name: "nl", Kind: sim.KindNL, Mode: lukewarm.Interleaved},
		{Name: "boomerang", Kind: sim.KindBoomerang, Mode: lukewarm.Interleaved},
		{Name: "boomerang+jb", Kind: sim.KindBoomerangJB, Mode: lukewarm.Interleaved},
		{Name: "ignite", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{DoubleBuffer: true}},
	})
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig10", Title: Title("fig10")}
	t := stats.NewTable(r.Title+" (mean KiB per invocation)",
		"config", "useful instr", "useless instr", "record meta", "replay meta", "total")
	for _, cfgName := range []string{"nl", "boomerang", "boomerang+jb", "ignite"} {
		var useful, useless, rec, rep float64
		n := 0
		for _, name := range orderedNames(opt, m) {
			tr := m.cells[name][cfgName].Res.MeanTraffic()
			useful += float64(tr.UsefulInstrBytes) / 1024
			useless += float64(tr.UselessInstrBytes) / 1024
			rec += float64(tr.RecordMetaBytes) / 1024
			rep += float64(tr.ReplayMetaBytes) / 1024
			n++
		}
		if n == 0 {
			// Every workload degraded out of the matrix; a 0/0 row would
			// put NaNs in the document and break its JSON encoding.
			continue
		}
		fn := float64(n)
		t.AddRowf(cfgName, useful/fn, useless/fn, rec/fn, rep/fn,
			(useful+useless+rec+rep)/fn)
		r.set(cfgName, "usefulKiB", useful/fn)
		r.set(cfgName, "uselessKiB", useless/fn)
		r.set(cfgName, "recordKiB", rec/fn)
		r.set(cfgName, "replayKiB", rep/fn)
		r.set(cfgName, "totalKiB", (useful+useless+rec+rep)/fn)
	}
	r.Table = t
	attachCells(r, opt, m)
	return r, nil
}

// Fig11 compares bimodal initialization policies: no BIM restore, BIM state
// preserved across invocations, weakly-not-taken, and weakly-taken (the
// Ignite default).
func Fig11(ctx context.Context, opt Options) (*Result, error) {
	none := ignite.BIMNone
	wnt := ignite.BIMWeaklyNotTaken
	wt := ignite.BIMWeaklyTaken
	return speedupExperiment(ctx, "fig11", opt, []runConfig{
		{Name: "btb-only", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{BIMPolicy: &none}},
		{Name: "bim-preserved", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{BIMPolicy: &none, Keep: lukewarm.Preserve{BIM: true}}},
		{Name: "bim-wnt", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{BIMPolicy: &wnt}},
		{Name: "bim-wt", Kind: sim.KindIgnite, Mode: lukewarm.Interleaved,
			Tweak: sim.Tweaks{BIMPolicy: &wt}},
	})
}

// Fig12 evaluates temporal-streaming prefetching: Confluence alone, with
// Ignite, and FDP with Ignite.
func Fig12(ctx context.Context, opt Options) (*Result, error) {
	return speedupExperiment(ctx, "fig12", opt, []runConfig{
		{Name: "confluence", Kind: sim.KindConfluence, Mode: lukewarm.Interleaved},
		{Name: "confluence+ignite", Kind: sim.KindConfluenceIgnite, Mode: lukewarm.Interleaved},
		{Name: "fdp+ignite", Kind: sim.KindFDPIgnite, Mode: lukewarm.Interleaved},
	})
}
