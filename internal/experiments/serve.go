package experiments

import (
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

// CellSpec publicly identifies one simulation cell — the unit the serving
// daemon coalesces concurrent invocation requests onto. It is the exported
// face of the (workload, config, tweaks, mode) key the experiment matrix
// uses internally, so a cell served over HTTP is the same cell, under the
// same cache key, that the batch pipeline computes: results are
// bit-identical between the two paths by construction.
type CellSpec struct {
	// Workload is the full function specification. Servers that override
	// the instruction budget (CI smokes, tests) adjust TargetInstr here;
	// the budget is part of the cache key.
	Workload workload.Spec
	// Config is the front-end configuration kind (sim.KindIgnite, ...).
	Config sim.Kind
	// Tweaks adjusts the configuration (sensitivity-study knobs).
	Tweaks sim.Tweaks
	// Mode selects back-to-back or interleaved execution.
	Mode lukewarm.Mode
}

func (cs CellSpec) runConfig() runConfig {
	return runConfig{Name: string(cs.Config), Kind: cs.Config, Tweak: cs.Tweaks, Mode: cs.Mode}
}

// Key returns the cell's canonical cache key: everything that determines
// its outcome, nothing that doesn't (tracing, checks and watchdogs are
// excluded, see CellEnv).
func (cs CellSpec) Key() string { return cellKey(cs.Workload, cs.runConfig()) }

// CellEnv carries the per-run knobs that shape how a fresh cell simulates
// without affecting its result — none of them are part of the cache key.
type CellEnv struct {
	// Tracer receives invocation/replay lifecycle events from freshly
	// simulated cells (nil = no tracing).
	Tracer obs.Tracer
	// Checks enables the runtime invariant verifier (sim.WithChecks) on
	// freshly simulated cells.
	Checks bool
	// MaxCycles arms the per-invocation cycle-budget watchdog
	// (0 = unlimited).
	MaxCycles uint64
}

// ServedCell is the public view of one computed cell: the lukewarm result
// plus the cell's flattened metric snapshot, exactly what the batch
// pipeline caches (the engine behind it has already been released).
type ServedCell struct {
	// Key is the cell's canonical cache key (CellSpec.Key).
	Key string
	// Res is the protocol result over the measured invocations.
	Res *lukewarm.Result
	// Metrics is the cell's registry snapshot, keyed by obs sample key.
	Metrics map[string]float64
}

// Invoke computes (or serves from cache) the cell identified by cs,
// single-flight: concurrent Invokes of one key share one simulation. The
// second return reports whether the cell was served from the cache. This is
// the serving daemon's entry point into the same memoized cells the
// experiment matrix runs on.
func (cc *CellCache) Invoke(cs CellSpec, env CellEnv) (*ServedCell, bool, error) {
	c, hit, err := cc.cell(cs.Workload, cs.runConfig(),
		cellEnv{tracer: env.Tracer, checks: env.Checks, maxCycles: env.MaxCycles})
	if err != nil {
		return nil, hit, err
	}
	return &ServedCell{Key: cs.Key(), Res: c.Res, Metrics: c.Metrics}, hit, nil
}
