package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"ignite/internal/obs"
	"ignite/internal/store"
)

// StoreStats counts the persistent store's traffic during a run: warm
// hits, misses (fresh computes), records persisted, and corruption
// detections (each one is a record or manifest that failed integrity
// verification and was recomputed instead of served). Registered as the
// store.* obs metric family.
type StoreStats struct {
	Hits    obs.Counter
	Misses  obs.Counter
	Saves   obs.Counter
	Corrupt obs.Counter
}

// RegisterMetrics exports the counters on reg.
func (st *StoreStats) RegisterMetrics(reg *obs.Registry) {
	l := obs.L("component", "store")
	reg.CounterFunc("store.hits", l, st.Hits.Value)
	reg.CounterFunc("store.misses", l, st.Misses.Value)
	reg.CounterFunc("store.saves", l, st.Saves.Value)
	reg.CounterFunc("store.corrupt_detected", l, st.Corrupt.Value)
}

// storeBacking adapts internal/store to the cell cache's CellBacking seam:
// cell payloads marshal to the same JSON shape the journal records, keyed
// by the canonical cell-cache key.
type storeBacking struct {
	st    *store.Store
	stats *StoreStats
}

// BindStore mounts a persistent content-addressed store behind the cache:
// every fresh cell is persisted, every later run (or process — workers
// sharing the directory see each other's records) restores it as pure
// I/O. A corrupt record or manifest is counted, warned about once, and
// recomputed — detection is loud, recovery is automatic, and the damaged
// record is repaired by the recompute's Save. stats may be nil.
func BindStore(cc *CellCache, st *store.Store, stats *StoreStats) {
	if stats == nil {
		stats = &StoreStats{}
	}
	cc.SetBacking(&storeBacking{st: st, stats: stats})
}

func (b *storeBacking) Load(key string) (CellPayload, bool) {
	data, err := b.st.Get(key)
	if err != nil {
		var ce *store.CorruptionError
		if errors.As(err, &ce) {
			b.stats.Corrupt.Inc()
			fmt.Fprintf(os.Stderr, "store: corruption detected, recomputing cell: %v\n", ce)
		} else if !errors.Is(err, store.ErrNotFound) {
			fmt.Fprintf(os.Stderr, "store: read failed, recomputing cell: %v\n", err)
		}
		b.stats.Misses.Inc()
		return CellPayload{}, false
	}
	var p CellPayload
	if err := json.Unmarshal(data, &p); err != nil || p.Res == nil {
		// The payload passed its CRC but does not decode to a cell — a
		// record written by an incompatible build. Recompute and repair.
		b.stats.Corrupt.Inc()
		b.stats.Misses.Inc()
		return CellPayload{}, false
	}
	b.stats.Hits.Inc()
	return p, true
}

func (b *storeBacking) Save(key string, p CellPayload) {
	data, err := json.Marshal(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "store: encode cell %q: %v\n", key, err)
		return
	}
	if err := b.st.Put(key, data); err != nil {
		// A failed persist degrades the next run to a recompute; this run
		// already holds the result in memory, so warn and continue.
		fmt.Fprintf(os.Stderr, "store: %v\n", err)
		return
	}
	b.stats.Saves.Inc()
}
