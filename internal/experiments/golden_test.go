package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ignite/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenFig1Document runs fig1 on the quick workload set and encodes it with
// every environment-dependent manifest field cleared, so the bytes depend
// only on the simulation (which the determinism tests pin bit-exactly) and
// on the document schema itself.
func goldenFig1Document(t *testing.T) []byte {
	t.Helper()
	opt := quickOpts(t)
	opt.Parallel = 1 // recorded in the manifest; fix it so the bytes are stable
	res, err := Run(context.Background(), "fig1", opt)
	if err != nil {
		t.Fatal(err)
	}
	man := opt.Manifest()
	man.GoVersion = "" // toolchain-dependent; omitted from the fixture
	data, err := res.Document(man).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenFig1Document locks the exported JSON document byte-for-byte.
// A diff here means either the simulation changed (rerun with -update after
// checking the determinism tests) or the document schema changed shape — in
// which case obs.SchemaVersion must be bumped alongside regenerating the
// fixture.
func TestGoldenFig1Document(t *testing.T) {
	path := filepath.Join("testdata", "fig1.golden.json")
	got := goldenFig1Document(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got, want) {
		gotLines, wantLines := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("document differs from %s at line %d:\n got: %s\nwant: %s\n(rerun with -update if the change is intentional)",
					path, i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("document differs from %s in length: got %d lines, want %d", path, len(gotLines), len(wantLines))
	}
}

// TestGoldenSchemaVersion asserts the committed fixture carries the schema
// version this build writes, so bumping obs.SchemaVersion without
// regenerating the golden file fails with a direct message rather than a
// byte diff.
func TestGoldenSchemaVersion(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "fig1.golden.json"))
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var probe struct {
		SchemaVersion int `json:"schemaVersion"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.SchemaVersion != obs.SchemaVersion {
		t.Fatalf("golden fixture has schemaVersion %d but this build writes %d: regenerate with -update",
			probe.SchemaVersion, obs.SchemaVersion)
	}
}

// TestDocumentRoundTrip decodes the exported document and re-encodes it,
// asserting the bytes survive unchanged — no field is dropped, renamed, or
// reordered by the decode path.
func TestDocumentRoundTrip(t *testing.T) {
	data := goldenFig1Document(t)
	doc, err := obs.DecodeDocument(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("document does not round-trip byte-identically through DecodeDocument + Encode")
	}
	if doc.ID != "fig1" || len(doc.Cells) == 0 || len(doc.Values) == 0 {
		t.Fatalf("round-tripped document lost content: id=%q cells=%d values=%d",
			doc.ID, len(doc.Cells), len(doc.Values))
	}
}

// TestAllExperimentsExportDocuments runs every registered experiment on the
// quick workload set through one shared cell cache and round-trips each
// result through the exported file format — the programmatic version of
// `ignite-sim -all -out dir/`.
func TestAllExperimentsExportDocuments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	opt := quickOpts(t)
	opt.Cache = NewCellCache()
	results, err := RunAll(context.Background(), nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(IDs()))
	}
	dir := t.TempDir()
	man := opt.Manifest()
	for _, res := range results {
		if res.ID == "" {
			t.Fatalf("experiment %q has an empty ID", res.Title)
		}
		path, err := res.Document(man).WriteFile(dir, string(res.ID))
		if err != nil {
			t.Fatalf("%s: %v", res.ID, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", res.ID, err)
		}
		doc, err := obs.DecodeDocument(data)
		if err != nil {
			t.Fatalf("%s: %v", res.ID, err)
		}
		if doc.ID != string(res.ID) || doc.SchemaVersion != obs.SchemaVersion {
			t.Fatalf("%s: document id=%q schema=%d", res.ID, doc.ID, doc.SchemaVersion)
		}
		// tab2 is a pure configuration listing; everything else carries
		// figure values.
		if len(doc.Values) == 0 && len(doc.Tables) == 0 {
			t.Errorf("%s: document has neither values nor tables", res.ID)
		}
	}
}

// TestDecodeRejectsForeignDocuments asserts DecodeDocument fails loudly on
// documents written by a different schema generation or of a different kind.
func TestDecodeRejectsForeignDocuments(t *testing.T) {
	data := goldenFig1Document(t)

	bumped := bytes.Replace(data,
		[]byte(`"schemaVersion": 1`), []byte(`"schemaVersion": 999`), 1)
	if bytes.Equal(bumped, data) {
		t.Fatal("fixture did not contain the schemaVersion field to mutate")
	}
	if _, err := obs.DecodeDocument(bumped); err == nil {
		t.Error("DecodeDocument accepted schema version 999")
	} else if !strings.Contains(err.Error(), "schema version") {
		t.Errorf("unhelpful schema-version error: %v", err)
	}

	alien := bytes.Replace(data,
		[]byte(obs.DocumentKind), []byte("some.other-document"), 1)
	if _, err := obs.DecodeDocument(alien); err == nil {
		t.Error("DecodeDocument accepted a foreign document kind")
	}
}
