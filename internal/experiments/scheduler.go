package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"ignite/internal/faults"
	"ignite/internal/obs"
)

// scheduler is a bounded worker pool for independent simulation cells. Each
// submitted cell runs in its own goroutine gated by a semaphore, so the
// parallelism axis is the cell — (workload, config) pair — rather than the
// workload: a matrix of W workloads × C configs exposes W×C-way parallelism
// instead of W-way with configs serialized inside each workload.
//
// Cells are isolated and supervised:
//
//   - a panic inside a cell is recovered into a *faults.PanicError and
//     reported as that cell's failure instead of crashing the process;
//   - transient failures (anything exposing Transient() bool, notably
//     injected faults.TransientError) are retried with capped exponential
//     backoff — cells are pure functions of their key, so a retried cell is
//     bit-identical to a clean one;
//   - each attempt runs under an optional per-cell deadline
//     (context.WithTimeout), which the fault-injection sites honor;
//   - under FailFast the first definitive failure cancels the run (cells
//     that have not started yet are skipped); under ContinueOnError the
//     remaining cells complete and failures are reported per cell.
//
// Every cell's fate is recorded as an outcome in submission order, so error
// aggregation and per-cell status reports are deterministic regardless of
// scheduling interleavings. Context cancellation (Ctrl-C in the CLIs) skips
// unstarted cells; cells already inside fn run to completion, so the drain
// is clean — and a worker waiting for a semaphore slot gives up immediately
// instead of acquiring a slot just to discover the run is dead.
type scheduler struct {
	parent  context.Context
	ctx     context.Context
	cancel  context.CancelFunc
	sem     chan struct{}
	wg      sync.WaitGroup
	id      ID
	policy  FailurePolicy
	timeout time.Duration
	retries int
	backoff time.Duration
	tracer  obs.Tracer
	health  *obs.RunHealth

	mu       sync.Mutex
	outcomes []schedOutcome
	n        int
}

// schedOutcome is the recorded fate of one submitted cell.
type schedOutcome struct {
	idx      int // submission order, the deterministic sort key
	workload string
	config   string
	status   CellStatus
	attempts int
	err      error // non-nil only for StatusFailed
}

// newScheduler builds a pool from the run options. opt should already have
// defaults applied; Parallel is clamped defensively.
func newScheduler(ctx context.Context, id ID, opt Options) *scheduler {
	if ctx == nil {
		ctx = context.Background()
	}
	parallel := opt.Parallel
	if parallel < 1 {
		parallel = 1
	}
	retries := opt.Retries
	switch {
	case retries == 0:
		retries = defaultRetries
	case retries < 0:
		retries = 0
	}
	backoff := opt.RetryBackoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	cctx, cancel := context.WithCancel(ctx)
	return &scheduler{
		parent:  ctx,
		ctx:     cctx,
		cancel:  cancel,
		sem:     make(chan struct{}, parallel),
		id:      id,
		policy:  opt.FailurePolicy,
		timeout: opt.CellTimeout,
		retries: retries,
		backoff: backoff,
		tracer:  opt.Tracer,
		health:  opt.Health,
	}
}

// submit queues one cell. fn runs once a worker slot frees up, unless the
// run was canceled first — by an earlier FailFast failure or by the parent
// context — in which case the cell is recorded as skipped.
func (s *scheduler) submit(workload, config string, fn func(ctx context.Context, attempt int) error) {
	s.mu.Lock()
	idx := s.n
	s.n++
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case s.sem <- struct{}{}:
		case <-s.ctx.Done():
			s.skip(idx, workload, config)
			return
		}
		defer func() { <-s.sem }()
		if s.ctx.Err() != nil {
			s.skip(idx, workload, config)
			return
		}
		s.supervise(idx, workload, config, fn)
	}()
}

// supervise runs one cell's attempt/retry loop to a definitive outcome.
func (s *scheduler) supervise(idx int, wl, cfg string, fn func(ctx context.Context, attempt int) error) {
	attempt := 0
	for {
		attempt++
		err := s.attempt(wl, cfg, attempt, fn)
		if err == nil {
			status := StatusOK
			if attempt > 1 {
				status = StatusRetried
			}
			s.record(schedOutcome{idx: idx, workload: wl, config: cfg, status: status, attempts: attempt})
			return
		}
		if s.ctx.Err() == nil && attempt <= s.retries && faults.IsTransient(err) {
			d := s.backoffFor(attempt)
			if s.health != nil {
				s.health.Retries.Add(1)
			}
			if s.tracer != nil {
				s.tracer.CellRetried(obs.CellRetriedEvent{
					Experiment: string(s.id), Workload: wl, Config: cfg,
					Attempt: attempt, Backoff: d, Err: err.Error(),
				})
			}
			sleepCtx(s.ctx, d)
			continue
		}
		cerr := &CellError{ID: s.id, Workload: wl, Config: cfg, Attempt: attempt, Err: err}
		s.record(schedOutcome{idx: idx, workload: wl, config: cfg,
			status: StatusFailed, attempts: attempt, err: cerr})
		if s.health != nil {
			s.health.Failed.Add(1)
		}
		if s.tracer != nil {
			s.tracer.CellFailed(obs.CellFailedEvent{
				Experiment: string(s.id), Workload: wl, Config: cfg,
				Status: string(StatusFailed), Attempts: attempt, Err: cerr.Error(),
			})
		}
		if s.policy == FailFast {
			s.cancel()
		}
		return
	}
}

// attempt runs fn once under the per-cell deadline with panic isolation.
func (s *scheduler) attempt(wl, cfg string, attempt int, fn func(ctx context.Context, attempt int) error) (err error) {
	ctx := s.ctx
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(s.ctx, s.timeout,
			fmt.Errorf("experiments: cell %s/%s exceeded its %s deadline", wl, cfg, s.timeout))
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			if s.health != nil {
				s.health.Panics.Add(1)
			}
			err = &faults.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	err = fn(ctx, attempt)
	if err != nil && ctx.Err() != nil && s.ctx.Err() == nil && s.health != nil {
		s.health.Deadlines.Add(1)
	}
	return err
}

// backoffFor returns the capped exponential delay before retry #attempt.
func (s *scheduler) backoffFor(attempt int) time.Duration {
	d := s.backoff << (attempt - 1)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	return d
}

func (s *scheduler) skip(idx int, wl, cfg string) {
	s.record(schedOutcome{idx: idx, workload: wl, config: cfg, status: StatusSkipped})
	if s.health != nil {
		s.health.Skipped.Add(1)
	}
	if s.tracer != nil {
		s.tracer.CellFailed(obs.CellFailedEvent{
			Experiment: string(s.id), Workload: wl, Config: cfg,
			Status: string(StatusSkipped),
		})
	}
}

func (s *scheduler) record(o schedOutcome) {
	s.mu.Lock()
	s.outcomes = append(s.outcomes, o)
	s.mu.Unlock()
}

// wait blocks until every submitted cell has finished or been skipped and
// returns the outcomes sorted by submission order — deterministic no matter
// how the pool interleaved the work.
func (s *scheduler) wait() []schedOutcome {
	s.wg.Wait()
	s.cancel()
	s.mu.Lock()
	outs := s.outcomes
	s.mu.Unlock()
	sort.Slice(outs, func(i, j int) bool { return outs[i].idx < outs[j].idx })
	return outs
}

// joinOutcomes folds failed outcomes (plus the parent cancellation, if any)
// into one error, preserving submission order.
func joinOutcomes(outs []schedOutcome, parentErr error) error {
	var errs []error
	for _, o := range outs {
		if o.err != nil {
			errs = append(errs, o.err)
		}
	}
	if parentErr != nil {
		errs = append(errs, parentErr)
	}
	return errors.Join(errs...)
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
