package experiments

import (
	"context"
	"errors"
	"sync"
)

// scheduler is a bounded worker pool for independent simulation cells. Each
// submitted cell runs in its own goroutine gated by a semaphore, so the
// parallelism axis is the cell — (workload, config) pair — rather than the
// workload: a matrix of W workloads × C configs exposes W×C-way parallelism
// instead of W-way with configs serialized inside each workload.
//
// Failures are aggregated rather than first-wins: wait returns every cell
// error joined. After the first failure the scheduler cancels — cells that
// have not started yet are skipped, so a doomed run stops burning CPU.
// Context cancellation (Ctrl-C in the CLIs) skips unstarted cells the same
// way; cells already inside fn run to completion, so the drain is clean.
type scheduler struct {
	ctx      context.Context
	sem      chan struct{}
	wg       sync.WaitGroup
	mu       sync.Mutex
	errs     []error
	canceled bool
}

func newScheduler(ctx context.Context, parallel int) *scheduler {
	if parallel < 1 {
		parallel = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &scheduler{ctx: ctx, sem: make(chan struct{}, parallel)}
}

// submit queues one cell. fn runs once a worker slot frees up, unless the
// run was canceled by an earlier failure or context cancellation first.
func (s *scheduler) submit(fn func() error) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		s.mu.Lock()
		dead := s.canceled
		s.mu.Unlock()
		if dead || s.ctx.Err() != nil {
			return
		}
		if err := fn(); err != nil {
			s.mu.Lock()
			s.errs = append(s.errs, err)
			s.canceled = true
			s.mu.Unlock()
		}
	}()
}

// wait blocks until every submitted cell has finished or been skipped and
// returns the joined failures plus the context error if the run was
// canceled (nil when all cells succeeded).
func (s *scheduler) wait() error {
	s.wg.Wait()
	errs := s.errs
	if err := s.ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
