package experiments

import (
	"fmt"
	"runtime"

	"ignite/internal/obs"
	"ignite/internal/stats"
)

// Manifest describes how a run with these options would execute: the
// workload set (name, seed, instruction budget pin each simulation
// bit-exactly), the scheduler width, and — when a shared cell cache is
// installed — its occupancy at call time. Callers stamp Generated
// themselves; it stays empty here so golden fixtures are byte-stable.
func (o Options) Manifest() obs.Manifest {
	o = o.withDefaults()
	man := obs.Manifest{
		GoVersion: runtime.Version(),
		Parallel:  o.Parallel,
	}
	for _, s := range o.Workloads {
		man.Workloads = append(man.Workloads, obs.WorkloadManifest{
			Name:        s.Name,
			Seed:        s.Gen.Seed,
			TargetInstr: s.TargetInstr,
		})
	}
	if o.Cache != nil {
		man.CacheCells, man.CacheHits = o.Cache.Stats()
	}
	if o.FailurePolicy != FailFast {
		man.FailurePolicy = o.FailurePolicy.String()
	}
	return man
}

// Document serializes the result into the versioned machine-readable form
// the CLIs export: values, presentation tables as structured rows, per-cell
// metric snapshots, and the given run manifest. Failures of a degraded run
// join the manifest's Errors list; healthy results leave it empty, keeping
// the document byte-identical to the pre-fault-tolerance shape.
func (r *Result) Document(man obs.Manifest) obs.Document {
	for _, f := range r.Failures {
		msg := fmt.Sprintf("%s/%s: %s", f.Workload, f.Config, f.Status)
		if f.Err != "" {
			msg = f.Err
		}
		man.Errors = append(man.Errors, msg)
	}
	doc := obs.Document{
		SchemaVersion: obs.SchemaVersion,
		Kind:          obs.DocumentKind,
		ID:            string(r.ID),
		Title:         r.Title,
		Values:        r.Values,
		Cells:         r.Cells,
		Manifest:      man,
	}
	for _, t := range []*stats.Table{r.Table, r.Table2} {
		if t == nil {
			continue
		}
		doc.Tables = append(doc.Tables, obs.TableDoc{
			Title:  t.Title(),
			Header: t.Header(),
			Rows:   t.Rows(),
		})
	}
	return doc
}
