package experiments

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/store"
)

// storeOpts is chaosOpts plus a persistent store bound behind a fresh
// cache; it returns the stats so tests can assert hit/miss/corruption
// accounting.
func storeOpts(t *testing.T, st *store.Store) (Options, *StoreStats) {
	t.Helper()
	opt := chaosOpts(t)
	opt.Cache = NewCellCache()
	stats := &StoreStats{}
	BindStore(opt.Cache, st, stats)
	return opt, stats
}

// flipBit flips one low bit inside the file's occurrence of needle —
// string content, so the JSON stays well-formed and detection must come
// from checksums, not parse errors.
func flipBit(t *testing.T, path, needle string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(string(data), needle)
	if i < 0 {
		t.Fatalf("needle %q not found in %s", needle, path)
	}
	data[i+len(needle)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreWarmRerunByteIdentical proves the store round trip at the
// document level: a second run over a sealed store computes nothing and
// still produces a byte-identical document, cache statistics included.
func TestStoreWarmRerunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt1, stats1 := storeOpts(t, st)
	res1, err := Run(context.Background(), "fig1", opt1)
	if err != nil {
		t.Fatal(err)
	}
	doc1 := docBytes(t, res1, opt1)
	if saves := stats1.Saves.Value(); saves != 4 {
		t.Fatalf("cold run persisted %d records, want 4", saves)
	}
	if _, n, err := st.Seal(); err != nil || n != 4 {
		t.Fatalf("seal: n=%d err=%v", n, err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt2, stats2 := storeOpts(t, st2)
	res2, err := Run(context.Background(), "fig1", opt2)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := stats2.Hits.Value(), stats2.Misses.Value(); hits != 4 || misses != 0 {
		t.Errorf("warm run: %d hits / %d misses, want 4 / 0", hits, misses)
	}
	if !bytes.Equal(doc1, docBytes(t, res2, opt2)) {
		t.Error("warm-store document differs from the cold run")
	}
}

// TestStoreRecordCorruptionRecomputed flips one bit in one stored cell
// record: the next sweep must detect it, recompute exactly that cell
// (serving the other three warm), repair the record, and land on a
// byte-identical document.
func TestStoreRecordCorruptionRecomputed(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt1, _ := storeOpts(t, st)
	res1, err := Run(context.Background(), "fig1", opt1)
	if err != nil {
		t.Fatal(err)
	}
	doc1 := docBytes(t, res1, opt1)
	if _, _, err := st.Seal(); err != nil {
		t.Fatal(err)
	}

	victim := CellSpec{
		Workload: opt1.Workloads[0],
		Config:   sim.KindNL,
		Mode:     lukewarm.BackToBack,
	}
	flipBit(t, st.RecordPath(victim.Key()), "component")

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt2, stats2 := storeOpts(t, st2)
	res2, err := Run(context.Background(), "fig1", opt2)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt := stats2.Corrupt.Value(); corrupt != 1 {
		t.Errorf("corruption detections = %d, want 1", corrupt)
	}
	if hits, misses := stats2.Hits.Value(), stats2.Misses.Value(); hits != 3 || misses != 1 {
		t.Errorf("damaged-store run: %d hits / %d misses, want 3 / 1 (only the flipped cell recomputes)", hits, misses)
	}
	if !bytes.Equal(doc1, docBytes(t, res2, opt2)) {
		t.Error("document after record corruption differs from the clean run")
	}
	// The recompute's save repaired the record in place.
	if _, err := st2.Get(victim.Key()); err != nil {
		t.Errorf("record not repaired after recompute: %v", err)
	}
}

// TestStoreManifestCorruptionRecomputed flips one bit in the Merkle
// manifest: with the sealed set's integrity unknown, the sweep must trust
// nothing — every cell recomputes — and still produce a byte-identical
// document; resealing restores warm service.
func TestStoreManifestCorruptionRecomputed(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt1, _ := storeOpts(t, st)
	res1, err := Run(context.Background(), "fig1", opt1)
	if err != nil {
		t.Fatal(err)
	}
	doc1 := docBytes(t, res1, opt1)
	if _, _, err := st.Seal(); err != nil {
		t.Fatal(err)
	}

	anyKey := CellSpec{
		Workload: opt1.Workloads[0],
		Config:   sim.KindNL,
		Mode:     lukewarm.BackToBack,
	}.Key()
	flipBit(t, st.ManifestPath(), store.KeyHash(anyKey))

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ManifestErr() == nil {
		t.Fatal("corrupt manifest not detected at open")
	}
	opt2, stats2 := storeOpts(t, st2)
	res2, err := Run(context.Background(), "fig1", opt2)
	if err != nil {
		t.Fatal(err)
	}
	if hits := stats2.Hits.Value(); hits != 0 {
		t.Errorf("%d records served under a corrupt manifest, want 0", hits)
	}
	if corrupt := stats2.Corrupt.Value(); corrupt == 0 {
		t.Error("manifest corruption never surfaced in the stats")
	}
	if !bytes.Equal(doc1, docBytes(t, res2, opt2)) {
		t.Error("document after manifest corruption differs from the clean run")
	}

	// Reseal over the (repaired, byte-identical) records, then a warm run.
	if _, n, err := st2.Seal(); err != nil || n != 4 {
		t.Fatalf("reseal: n=%d err=%v", n, err)
	}
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt3, stats3 := storeOpts(t, st3)
	if _, err := Run(context.Background(), "fig1", opt3); err != nil {
		t.Fatal(err)
	}
	if hits := stats3.Hits.Value(); hits != 4 {
		t.Errorf("post-reseal run served %d warm records, want 4", hits)
	}
}
