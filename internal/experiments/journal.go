package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"ignite/internal/faults"
	"ignite/internal/lukewarm"
)

// Journal format constants. The journal is JSON-lines: a header line
// identifying kind and schema, then one CRC-guarded record per computed
// cell. Append-only with a sync per record, so a crash at any byte offset
// loses at most the record being written — which the loader detects by CRC
// and skips.
const (
	journalKind          = "ignite.run-journal"
	journalSchemaVersion = 1
)

// journalLine is one line of the journal: either the header (Kind,
// SchemaVersion and Fingerprint set) or a record (Key, CRC and Cell set).
// CRC is the IEEE CRC-32 of the raw Cell payload, computed before the
// enclosing line is marshaled, so any torn or bit-flipped record fails
// verification. Fingerprint binds the journal to the run configuration
// that wrote it (see Options.Fingerprint): cell keys embed the full
// workload spec, so replaying a journal from a different matrix or scale
// would silently preload keys the run never asks for — or worse, collide
// on renamed specs — instead of erroring.
type journalLine struct {
	Kind          string          `json:"kind,omitempty"`
	SchemaVersion int             `json:"schemaVersion,omitempty"`
	Fingerprint   string          `json:"fingerprint,omitempty"`
	Key           string          `json:"key,omitempty"`
	CRC           uint32          `json:"crc,omitempty"`
	Cell          json.RawMessage `json:"cell,omitempty"`
}

// JournalConfigError reports a journal whose header belongs to a
// different run configuration (or journal format) than the one trying to
// use it. It is returned by OpenJournal and Resume instead of silently
// accepting foreign records.
type JournalConfigError struct {
	Path  string
	Field string // "kind", "schemaVersion" or "fingerprint"
	Got   string
	Want  string
}

func (e *JournalConfigError) Error() string {
	return fmt.Sprintf("experiments: journal %s: header %s is %q, this run wants %q (refusing to mix runs; use a fresh journal path)",
		e.Path, e.Field, e.Got, e.Want)
}

// journalCell is the persisted form of one computed cell. lukewarm.Result
// is plain exported data (per-invocation stats and traffic reports), so the
// JSON round trip reproduces it exactly — resumed cells are bit-identical
// to freshly computed ones, which the resume tests assert at the document
// level.
type journalCell struct {
	Workload string             `json:"workload"`
	Config   string             `json:"config"`
	Res      *lukewarm.Result   `json:"res"`
	Metrics  map[string]float64 `json:"metrics"`
}

// Journal is the crash-safe per-run record of computed cells. Record
// appends cells as they finish; Resume preloads a cell cache from an
// earlier journal so an interrupted run picks up where it stopped instead
// of recomputing finished cells. Safe for concurrent use — cells finish on
// scheduler worker goroutines.
type Journal struct {
	mu          sync.Mutex
	f           *os.File
	seen        map[string]bool
	path        string
	fingerprint string
}

// OpenJournal opens (creating if needed) the journal at path for appending.
// A fresh journal gets its header line — including the run-configuration
// fingerprint (Options.Fingerprint) — immediately; an existing journal's
// header is validated against fingerprint before any record is appended or
// replayed, so a journal written by a different matrix, scale or schema is
// rejected with a *JournalConfigError instead of silently mixed in.
func OpenJournal(path, fingerprint string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: journal: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: journal: %w", err)
	}
	j := &Journal{f: f, seen: make(map[string]bool), path: path, fingerprint: fingerprint}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: journal: %w", err)
	}
	if st.Size() == 0 {
		header, err := json.Marshal(journalLine{
			Kind: journalKind, SchemaVersion: journalSchemaVersion, Fingerprint: fingerprint,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := j.writeLine(header); err != nil {
			f.Close()
			return nil, fmt.Errorf("experiments: journal: %w", err)
		}
	} else if err := j.checkHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// checkHeader reads the journal's first line and validates kind, schema
// version and configuration fingerprint against this run. A file whose
// first line is not a parseable header (a truncated or pre-header-format
// journal) fails the kind check — a journal that cannot prove its origin
// is as unusable as one proving the wrong origin.
func (j *Journal) checkHeader() error {
	f, err := os.Open(j.path)
	if err != nil {
		return fmt.Errorf("experiments: journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var header journalLine
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		_ = json.Unmarshal(raw, &header) // zero journalLine on error fails the kind check below
		break
	}
	if header.Kind != journalKind {
		return &JournalConfigError{Path: j.path, Field: "kind", Got: header.Kind, Want: journalKind}
	}
	if header.SchemaVersion != journalSchemaVersion {
		return &JournalConfigError{
			Path: j.path, Field: "schemaVersion",
			Got: fmt.Sprintf("%d", header.SchemaVersion), Want: fmt.Sprintf("%d", journalSchemaVersion),
		}
	}
	if header.Fingerprint != j.fingerprint {
		return &JournalConfigError{Path: j.path, Field: "fingerprint", Got: header.Fingerprint, Want: j.fingerprint}
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file. Records already written stay valid.
func (j *Journal) Close() error { return j.f.Close() }

func (j *Journal) writeLine(data []byte) error {
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Record appends one computed cell, keyed by its cell-cache key, and syncs
// it to disk before returning. Keys already journaled this run (including
// those loaded by Resume) are skipped, so cache hits and resumed cells do
// not duplicate records. An armed corrupt-fault for the site flips the
// record's stored CRC, which the Resume loader then rejects — exercising
// the corruption-detection path end to end.
func (j *Journal) Record(key string, site faults.Site, c *cell, plan *faults.Plan) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seen[key] {
		return nil
	}
	payload, err := json.Marshal(journalCell{
		Workload: site.Workload,
		Config:   site.Config,
		Res:      c.Res,
		Metrics:  c.Metrics,
	})
	if err != nil {
		return err
	}
	line := journalLine{Key: key, CRC: crc32.ChecksumIEEE(payload), Cell: payload}
	if plan.CorruptRecord(site) {
		// Corrupt the checksum rather than the payload: the payload is
		// json.RawMessage, which json.Marshal validates, so flipped payload
		// bytes would fail the write instead of producing a bad record.
		line.CRC ^= 0xdeadbeef
	}
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	if err := j.writeLine(data); err != nil {
		return err
	}
	j.seen[key] = true
	return nil
}

// Resume loads every valid record of the journal into cc (via Preload) and
// marks the keys seen so the resumed run does not re-append them. It is
// corruption-tolerant: unparseable lines, CRC mismatches, and truncated
// tails are counted in skipped and otherwise ignored — a crash mid-write
// costs one cell, not the journal. The header, however, is load-bearing: a
// journal whose kind, schema version or run-configuration fingerprint does
// not match this run is rejected with a *JournalConfigError, because its
// records belong to a different matrix and preloading them would either be
// dead weight or (on a renamed-but-recycled spec) silently wrong.
func (j *Journal) Resume(cc *CellCache) (loaded, skipped int, err error) {
	if err := j.checkHeader(); err != nil {
		return 0, 0, err
	}
	f, err := os.Open(j.path)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: journal resume: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line journalLine
		if uerr := json.Unmarshal(raw, &line); uerr != nil {
			skipped++
			continue
		}
		if line.Kind != "" {
			continue // the (already validated) header
		}
		if line.Key == "" || len(line.Cell) == 0 {
			skipped++
			continue
		}
		if crc32.ChecksumIEEE(line.Cell) != line.CRC {
			skipped++
			continue
		}
		var jc journalCell
		if uerr := json.Unmarshal(line.Cell, &jc); uerr != nil || jc.Res == nil {
			skipped++
			continue
		}
		j.mu.Lock()
		dup := j.seen[line.Key]
		if !dup {
			j.seen[line.Key] = true
		}
		j.mu.Unlock()
		if dup {
			continue
		}
		cc.Preload(line.Key, &cell{Res: jc.Res, Metrics: jc.Metrics})
		loaded++
	}
	if serr := sc.Err(); serr != nil {
		return loaded, skipped, fmt.Errorf("experiments: journal resume: %w", serr)
	}
	return loaded, skipped, nil
}
