package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"ignite/internal/faults"
	"ignite/internal/lukewarm"
)

// Journal format constants. The journal is JSON-lines: a header line
// identifying kind and schema, then one CRC-guarded record per computed
// cell. Append-only with a sync per record, so a crash at any byte offset
// loses at most the record being written — which the loader detects by CRC
// and skips.
const (
	journalKind          = "ignite.run-journal"
	journalSchemaVersion = 1
)

// journalLine is one line of the journal: either the header (Kind and
// SchemaVersion set) or a record (Key, CRC and Cell set). CRC is the IEEE
// CRC-32 of the raw Cell payload, computed before the enclosing line is
// marshaled, so any torn or bit-flipped record fails verification.
type journalLine struct {
	Kind          string          `json:"kind,omitempty"`
	SchemaVersion int             `json:"schemaVersion,omitempty"`
	Key           string          `json:"key,omitempty"`
	CRC           uint32          `json:"crc,omitempty"`
	Cell          json.RawMessage `json:"cell,omitempty"`
}

// journalCell is the persisted form of one computed cell. lukewarm.Result
// is plain exported data (per-invocation stats and traffic reports), so the
// JSON round trip reproduces it exactly — resumed cells are bit-identical
// to freshly computed ones, which the resume tests assert at the document
// level.
type journalCell struct {
	Workload string             `json:"workload"`
	Config   string             `json:"config"`
	Res      *lukewarm.Result   `json:"res"`
	Metrics  map[string]float64 `json:"metrics"`
}

// Journal is the crash-safe per-run record of computed cells. Record
// appends cells as they finish; Resume preloads a cell cache from an
// earlier journal so an interrupted run picks up where it stopped instead
// of recomputing finished cells. Safe for concurrent use — cells finish on
// scheduler worker goroutines.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	seen map[string]bool
	path string
}

// OpenJournal opens (creating if needed) the journal at path for appending.
// A fresh journal gets its header line immediately.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: journal: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: journal: %w", err)
	}
	j := &Journal{f: f, seen: make(map[string]bool), path: path}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: journal: %w", err)
	}
	if st.Size() == 0 {
		header, err := json.Marshal(journalLine{Kind: journalKind, SchemaVersion: journalSchemaVersion})
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := j.writeLine(header); err != nil {
			f.Close()
			return nil, fmt.Errorf("experiments: journal: %w", err)
		}
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file. Records already written stay valid.
func (j *Journal) Close() error { return j.f.Close() }

func (j *Journal) writeLine(data []byte) error {
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Record appends one computed cell, keyed by its cell-cache key, and syncs
// it to disk before returning. Keys already journaled this run (including
// those loaded by Resume) are skipped, so cache hits and resumed cells do
// not duplicate records. An armed corrupt-fault for the site flips the
// record's stored CRC, which the Resume loader then rejects — exercising
// the corruption-detection path end to end.
func (j *Journal) Record(key string, site faults.Site, c *cell, plan *faults.Plan) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seen[key] {
		return nil
	}
	payload, err := json.Marshal(journalCell{
		Workload: site.Workload,
		Config:   site.Config,
		Res:      c.Res,
		Metrics:  c.Metrics,
	})
	if err != nil {
		return err
	}
	line := journalLine{Key: key, CRC: crc32.ChecksumIEEE(payload), Cell: payload}
	if plan.CorruptRecord(site) {
		// Corrupt the checksum rather than the payload: the payload is
		// json.RawMessage, which json.Marshal validates, so flipped payload
		// bytes would fail the write instead of producing a bad record.
		line.CRC ^= 0xdeadbeef
	}
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	if err := j.writeLine(data); err != nil {
		return err
	}
	j.seen[key] = true
	return nil
}

// Resume loads every valid record of the journal into cc (via Preload) and
// marks the keys seen so the resumed run does not re-append them. It is
// corruption-tolerant: unparseable lines, CRC mismatches, and truncated
// tails are counted in skipped and otherwise ignored — a crash mid-write
// costs one cell, not the journal. Only a journal whose header names a
// different kind or schema version is rejected outright.
func (j *Journal) Resume(cc *CellCache) (loaded, skipped int, err error) {
	f, err := os.Open(j.path)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: journal resume: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	first := true
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line journalLine
		if uerr := json.Unmarshal(raw, &line); uerr != nil {
			skipped++
			continue
		}
		if first {
			first = false
			if line.Kind != "" {
				if line.Kind != journalKind || line.SchemaVersion != journalSchemaVersion {
					return 0, 0, fmt.Errorf("experiments: journal resume: %s is %q v%d, want %q v%d",
						j.path, line.Kind, line.SchemaVersion, journalKind, journalSchemaVersion)
				}
				continue
			}
		}
		if line.Key == "" || len(line.Cell) == 0 {
			skipped++
			continue
		}
		if crc32.ChecksumIEEE(line.Cell) != line.CRC {
			skipped++
			continue
		}
		var jc journalCell
		if uerr := json.Unmarshal(line.Cell, &jc); uerr != nil || jc.Res == nil {
			skipped++
			continue
		}
		j.mu.Lock()
		dup := j.seen[line.Key]
		if !dup {
			j.seen[line.Key] = true
		}
		j.mu.Unlock()
		if dup {
			continue
		}
		cc.Preload(line.Key, &cell{Res: jc.Res, Metrics: jc.Metrics})
		loaded++
	}
	if serr := sc.Err(); serr != nil {
		return loaded, skipped, fmt.Errorf("experiments: journal resume: %w", serr)
	}
	return loaded, skipped, nil
}
