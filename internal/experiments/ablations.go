package experiments

import (
	"context"
	"fmt"

	"ignite/internal/engine"
	"ignite/internal/faults"
	"ignite/internal/ignite"
	"ignite/internal/lukewarm"
	"ignite/internal/memsys"
	"ignite/internal/sim"
	"ignite/internal/stats"
)

func init() {
	registry = append(registry,
		regEntry{"abl-codec", "Ablation: metadata delta-field widths (paper footnote 6)", AblCodec},
		regEntry{"abl-throttle", "Ablation: replay throttle threshold (Section 4.2)", AblThrottle},
		regEntry{"abl-btb", "Ablation: BTB capacity (Ice-Lake-class 6K vs Sapphire Rapids 12K)", AblBTB},
		regEntry{"abl-metadata", "Ablation: metadata budget per function", AblMetadata},
	)
}

// AblCodec sweeps the compact-record delta widths and reports bits per
// record — the study behind the paper's footnote 6 claim that 7-bit
// branch-PC and 21-bit target deltas compress best.
func AblCodec(ctx context.Context, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	r := &Result{ID: "abl-codec", Title: Title("abl-codec")}
	t := stats.NewTable(r.Title,
		"ΔPC bits", "Δtarget bits", "compact %", "bits/record", "metadata KiB")

	configs := []struct{ pc, tgt uint }{
		{4, 12}, {7, 14}, {7, 21}, {10, 21}, {14, 28}, {21, 7},
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// One representative workload is enough for the codec study (and keeps
	// the sweep cheap); use the first selected workload.
	spec := opt.Workloads[0]
	prog, _, err := spec.Build()
	if err != nil {
		return nil, err
	}
	for _, w := range configs {
		// Ablations run their cells serially; fire injected faults at the
		// same (experiment, workload, config) granularity as the scheduler
		// so chaos plans cover them too.
		if err := opt.Faults.Fire(ctx, faults.Site{
			Experiment: "abl-codec", Workload: spec.Name,
			Config: fmt.Sprintf("%d/%d", w.pc, w.tgt),
		}); err != nil {
			return nil, err
		}
		codec := ignite.CodecConfig{DeltaPCBits: w.pc, DeltaTargetBits: w.tgt, FullAddrBits: 48}
		ec := engine.DefaultConfig()
		eng := engine.New(prog, ec)
		region := memsys.NewRegion(0, 4<<20) // unbounded for the study
		rec := ignite.NewRecorder(codec, region, nil)
		rec.Attach(eng.BTB())
		rec.Start()
		eng.Thrash(1)
		if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: 1, MaxInstr: spec.MaxInstr()}); err != nil {
			return nil, err
		}
		rec.Stop()
		row := fmt.Sprintf("%d/%d", w.pc, w.tgt)
		bitsPerRec := 0.0
		compactPct := 0.0
		if rec.Records() > 0 {
			bitsPerRec = float64(region.Used()*8) / float64(rec.Records())
			compactPct = float64(recCompact(rec)) / float64(rec.Records()) * 100
		}
		t.AddRowf(fmt.Sprintf("%d", w.pc), fmt.Sprintf("%d", w.tgt),
			compactPct, bitsPerRec, float64(region.Used())/1024)
		r.set(row, "bitsPerRecord", bitsPerRec)
		r.set(row, "compactPct", compactPct)
		r.set(row, "metadataKiB", float64(region.Used())/1024)
	}
	r.Table = t
	return r, nil
}

func recCompact(r *ignite.Recorder) int { return r.CompactRecords() }

// AblThrottle sweeps the replay throttle threshold: too low starves the
// restore, too high lets replay thrash the BTB ahead of use.
func AblThrottle(ctx context.Context, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	r := &Result{ID: "abl-throttle", Title: Title("abl-throttle")}
	t := stats.NewTable(r.Title, "threshold", "speedup over NL", "BTB MPKI", "L1I MPKI")
	for _, thr := range []int{64, 256, 1024, 4096, 1 << 20} {
		var speedups, btbs, l1s []float64
		for _, spec := range opt.Workloads {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := opt.Faults.Fire(ctx, faults.Site{
				Experiment: "abl-throttle", Workload: spec.Name,
				Config: fmt.Sprintf("%d", thr),
			}); err != nil {
				return nil, err
			}
			prog, _, err := spec.Build()
			if err != nil {
				return nil, err
			}
			base, err := sim.NewWithProgram(spec, prog, sim.KindNL)
			if err != nil {
				return nil, err
			}
			baseRes, err := base.Run(lukewarm.Interleaved)
			if err != nil {
				return nil, err
			}
			st, err := sim.NewWithProgram(spec, prog, sim.KindIgnite, sim.WithThrottleThreshold(thr))
			if err != nil {
				return nil, err
			}
			res, err := st.Run(lukewarm.Interleaved)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, baseRes.CPI()/res.CPI())
			btbs = append(btbs, res.BTBMPKI())
			l1s = append(l1s, res.L1IMPKI())
		}
		label := fmt.Sprintf("%d", thr)
		if thr == 1<<20 {
			label = "unthrottled"
		}
		t.AddRowf(label, stats.GeoMean(speedups), stats.Mean(btbs), stats.Mean(l1s))
		r.set(label, "speedup", stats.GeoMean(speedups))
		r.set(label, "btbmpki", stats.Mean(btbs))
	}
	r.Table = t
	return r, nil
}

// AblBTB compares Ice Lake's 5K-entry BTB against the modeled 12K-entry
// Sapphire Rapids BTB (the paper states the overall trends are unaffected).
func AblBTB(ctx context.Context, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	r := &Result{ID: "abl-btb", Title: Title("abl-btb")}
	t := stats.NewTable(r.Title, "BTB entries", "config", "speedup over NL", "BTB MPKI")
	for _, entries := range []int{6144, 12288, 24576} { // 6-way: sets must be a power of two
		for _, kind := range []sim.Kind{sim.KindBoomerangJB, sim.KindIgnite} {
			var speedups, btbs []float64
			for _, spec := range opt.Workloads {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				if err := opt.Faults.Fire(ctx, faults.Site{
					Experiment: "abl-btb", Workload: spec.Name,
					Config: fmt.Sprintf("%d/%s", entries, kind),
				}); err != nil {
					return nil, err
				}
				prog, _, err := spec.Build()
				if err != nil {
					return nil, err
				}
				base, err := sim.NewWithProgram(spec, prog, sim.KindNL, sim.WithBTBEntries(entries))
				if err != nil {
					return nil, err
				}
				baseRes, err := base.Run(lukewarm.Interleaved)
				if err != nil {
					return nil, err
				}
				st, err := sim.NewWithProgram(spec, prog, kind, sim.WithBTBEntries(entries))
				if err != nil {
					return nil, err
				}
				res, err := st.Run(lukewarm.Interleaved)
				if err != nil {
					return nil, err
				}
				speedups = append(speedups, baseRes.CPI()/res.CPI())
				btbs = append(btbs, res.BTBMPKI())
			}
			t.AddRowf(entries, string(kind), stats.GeoMean(speedups), stats.Mean(btbs))
			r.set(fmt.Sprintf("%d/%s", entries, kind), "speedup", stats.GeoMean(speedups))
			r.set(fmt.Sprintf("%d/%s", entries, kind), "btbmpki", stats.Mean(btbs))
		}
	}
	r.Table = t
	return r, nil
}

// AblMetadata sweeps Ignite's per-function metadata budget (the paper caps
// it at 120 KiB).
func AblMetadata(ctx context.Context, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	r := &Result{ID: "abl-metadata", Title: Title("abl-metadata")}
	t := stats.NewTable(r.Title, "budget KiB", "speedup over NL", "BTB MPKI", "records dropped")
	for _, kib := range []int{8, 30, 60, 120, 240} {
		var speedups, btbs, dropped []float64
		for _, spec := range opt.Workloads {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := opt.Faults.Fire(ctx, faults.Site{
				Experiment: "abl-metadata", Workload: spec.Name,
				Config: fmt.Sprintf("%d", kib),
			}); err != nil {
				return nil, err
			}
			prog, _, err := spec.Build()
			if err != nil {
				return nil, err
			}
			base, err := sim.NewWithProgram(spec, prog, sim.KindNL)
			if err != nil {
				return nil, err
			}
			baseRes, err := base.Run(lukewarm.Interleaved)
			if err != nil {
				return nil, err
			}
			st, err := sim.NewWithProgram(spec, prog, sim.KindIgnite, sim.WithMetadataBytes(kib<<10))
			if err != nil {
				return nil, err
			}
			res, err := st.Run(lukewarm.Interleaved)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, baseRes.CPI()/res.CPI())
			btbs = append(btbs, res.BTBMPKI())
			dropped = append(dropped, float64(st.Ignite.Recorder().Dropped))
		}
		t.AddRowf(kib, stats.GeoMean(speedups), stats.Mean(btbs), stats.Mean(dropped))
		r.set(fmt.Sprintf("%d", kib), "speedup", stats.GeoMean(speedups))
		r.set(fmt.Sprintf("%d", kib), "dropped", stats.Mean(dropped))
	}
	r.Table = t
	return r, nil
}
