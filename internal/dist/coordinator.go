package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/obs"
)

// CoordinatorOptions configures a coordinator.
type CoordinatorOptions struct {
	// Addrs are the worker addresses (host:port). Required, non-empty.
	Addrs []string
	// Slots bounds concurrent in-flight tasks per worker (default 4). The
	// experiment scheduler above already bounds total in-flight cells at
	// Options.Parallel; slots shape how that budget spreads across the
	// fleet.
	Slots int
	// Client is the HTTP client for task calls and health probes (default:
	// no client-side timeout — cells are seconds of CPU and the per-attempt
	// deadline is the scheduler's CellTimeout, carried by the request
	// context). Wrap its transport with faults.NewTransport to inject
	// network chaos.
	Client *http.Client

	// Circuit breaker: a worker opens (quarantine) when its sliding window
	// of the last FailureWindow attempt outcomes holds at least MinSamples
	// outcomes and the failure fraction reaches FailureRate. Defaults:
	// window 16, rate 0.5, min 3.
	FailureWindow int
	FailureRate   float64
	MinSamples    int

	// Prober: quarantined workers are probed on /v1/health with capped
	// exponential backoff (ProbeInterval base, doubling to
	// ProbeBackoffCap); a successful probe re-admits the worker
	// (half-open), and a second success — or one successful trial task —
	// closes the breaker. Healthy workers are also watched every
	// HealthyEvery probe ticks, so a silently dead worker flips the health
	// gauge without sacrificing a task. Defaults: interval 500ms, cap 8s,
	// probe timeout 2s, healthy cadence every 8 ticks. DisableProbing
	// turns the background prober off (unit tests that want deterministic
	// breaker states).
	ProbeInterval   time.Duration
	ProbeBackoffCap time.Duration
	ProbeTimeout    time.Duration
	HealthyEvery    int
	DisableProbing  bool

	// Hedging: when an attempt outlives the worker's HedgeQuantile recent
	// latency (HedgeFallback before enough samples exist, floored at
	// HedgeMin), a duplicate attempt launches on an untried worker; the
	// first success wins and the loser is canceled. Safe because cells are
	// deterministic and the cell cache single-flights — a hedge can only
	// waste cycles, never fork results. At most one hedge per task.
	// Defaults: quantile 0.95, fallback 2s, min 100ms.
	HedgeQuantile  float64
	HedgeFallback  time.Duration
	HedgeMin       time.Duration
	DisableHedging bool

	// MaxDispatchRounds bounds how many fleet-wide dispatch rounds one
	// cell gets before a transient failure surfaces to the caller
	// (default 12; 1 = surface after the first round). Within a round a
	// task fails over across every admitting worker; between rounds
	// Remote waits with capped backoff while the supervisor restarts and
	// the prober re-admits workers. Infrastructure failures are the
	// dist layer's to absorb: a surfaced retry would mark the cell
	// "retried" in the result document and break byte-identity with a
	// fault-free run.
	MaxDispatchRounds int
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Slots <= 0 {
		o.Slots = 4
	}
	if o.FailureWindow <= 0 {
		o.FailureWindow = 16
	}
	if o.FailureRate <= 0 {
		o.FailureRate = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeBackoffCap <= 0 {
		o.ProbeBackoffCap = 8 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.HealthyEvery <= 0 {
		o.HealthyEvery = 8
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.95
	}
	if o.HedgeFallback <= 0 {
		o.HedgeFallback = 2 * time.Second
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = 100 * time.Millisecond
	}
	if o.MaxDispatchRounds <= 0 {
		o.MaxDispatchRounds = 12
	}
	return o
}

// task is one queued cell: the wire request plus the channel its waiting
// RemoteFunc call blocks on. A task may have several concurrent attempts
// (hedging, failover races); the first complete() wins, the rest are
// canceled and discarded without blame.
type task struct {
	ctx  context.Context
	req  TaskRequest
	home int
	done chan taskResult

	mu        sync.Mutex
	completed bool
	// tried marks workers whose attempt failed, so each worker attempts a
	// task at most once per coordinator round — a dead worker's runners
	// cannot burn a task's failover budget by re-stealing it.
	tried []bool
	// inflight maps worker index → cancel func of its running attempt.
	inflight map[int]context.CancelFunc
	// hedges counts duplicate attempts launched (capped at 1);
	// hedgePending attributes the next beginAttempt to a hedge launch.
	hedges       int
	hedgePending int
}

type taskResult struct {
	payload experiments.CellPayload
	err     error
}

// complete finishes the task exactly once: later calls are no-ops. The
// winning result lands in the buffered done channel and every other
// in-flight attempt is canceled.
func (t *task) complete(p experiments.CellPayload, err error) bool {
	t.mu.Lock()
	if t.completed {
		t.mu.Unlock()
		return false
	}
	t.completed = true
	t.done <- taskResult{payload: p, err: err} // buffered; never blocks
	cancels := make([]context.CancelFunc, 0, len(t.inflight))
	for _, fn := range t.inflight {
		cancels = append(cancels, fn)
	}
	t.mu.Unlock()
	for _, fn := range cancels {
		fn()
	}
	return true
}

func (t *task) isCompleted() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.completed
}

// runnableBy reports whether worker i may attempt the task: not finished,
// not already failed by i, not currently being attempted by i.
func (t *task) runnableBy(i int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.completed && !t.tried[i] && t.inflight[i] == nil
}

// beginAttempt registers worker i's attempt: a per-attempt context (child
// of the task's own, so a completed task can cancel the stragglers) and
// whether this attempt is a hedge. Nil context when the task no longer
// needs attempts.
func (t *task) beginAttempt(i int) (context.Context, context.CancelFunc, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.completed || t.tried[i] || t.inflight[i] != nil {
		return nil, nil, false
	}
	base := t.ctx
	if base == nil {
		base = context.Background()
	}
	actx, cancel := context.WithCancel(base)
	t.inflight[i] = cancel
	isHedge := false
	if t.hedgePending > 0 {
		t.hedgePending--
		isHedge = true
	}
	return actx, cancel, isHedge
}

func (t *task) endAttempt(i int) {
	t.mu.Lock()
	delete(t.inflight, i)
	t.mu.Unlock()
}

// workerState is the coordinator's view of one worker: its circuit breaker,
// recent-latency quantile tracker (hedge-delay input), and the
// prober-owned backoff bookkeeping.
type workerState struct {
	addr  string
	br    *breaker
	lat   latQuantile
	tasks obs.Counter

	// probeGap/probeWait implement the capped exponential probe backoff in
	// prober ticks. Only the probe loop touches them.
	probeGap  int
	probeWait int
}

// Coordinator shards cells across a worker fleet. Each worker owns a FIFO
// queue; a cell's home queue is its key hash modulo fleet size, so a rerun
// of the same sweep lands each cell on the same worker and that worker's
// in-process cache serves repeats. Runner goroutines (Slots per worker)
// drain their own queue first and steal from the longest other queue when
// idle — a straggler workload queues behind nothing. A failed attempt
// fails over to an untried worker until every admitting worker has had a
// try, then surfaces a transient *WorkerError for the experiment
// scheduler's retry machinery. Per-worker circuit breakers quarantine
// repeat offenders, a background prober re-admits them on /v1/health
// evidence, and attempts that outlive the worker's latency quantile are
// hedged on a second worker.
type Coordinator struct {
	opts    CoordinatorOptions
	workers []*workerState
	client  *http.Client

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]*task
	closed bool
	wg     sync.WaitGroup
	stopc  chan struct{}

	mTasks         obs.Counter
	mSteals        obs.Counter
	mFailovers     obs.Counter
	mFailures      obs.Counter
	mQuarantines   obs.Counter
	mProbes        obs.Counter
	mProbeFailures obs.Counter
	mReadmits      obs.Counter
	mHedges        obs.Counter
	mHedgeWins     obs.Counter
}

// NewCoordinator starts a coordinator over the given workers, its runner
// goroutines, and (unless disabled) the health prober. Close releases
// them.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Addrs) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one worker address")
	}
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:   opts,
		client: opts.Client,
		queues: make([][]*task, len(opts.Addrs)),
		stopc:  make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.cond = sync.NewCond(&c.mu)
	for _, addr := range opts.Addrs {
		c.workers = append(c.workers, &workerState{
			addr:      addr,
			br:        newBreaker(opts.FailureWindow, opts.MinSamples, opts.FailureRate),
			probeGap:  1,
			probeWait: 1,
		})
	}
	for i := range c.workers {
		for s := 0; s < opts.Slots; s++ {
			c.wg.Add(1)
			go c.runner(i)
		}
	}
	if !opts.DisableProbing {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// RegisterMetrics exports the coordinator's counters and per-worker health
// gauges on reg. dist.worker_health renders the breaker state: 1 closed
// (serving), 0.5 half-open (probation), 0 open (quarantined).
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	l := obs.L("component", "dist")
	reg.CounterFunc("dist.tasks", l, c.mTasks.Value)
	reg.CounterFunc("dist.steals", l, c.mSteals.Value)
	reg.CounterFunc("dist.failovers", l, c.mFailovers.Value)
	reg.CounterFunc("dist.worker_failures", l, c.mFailures.Value)
	reg.CounterFunc("dist.worker_quarantines", l, c.mQuarantines.Value)
	reg.CounterFunc("dist.probes", l, c.mProbes.Value)
	reg.CounterFunc("dist.probe_failures", l, c.mProbeFailures.Value)
	reg.CounterFunc("dist.worker_readmits", l, c.mReadmits.Value)
	reg.CounterFunc("dist.hedges", l, c.mHedges.Value)
	reg.CounterFunc("dist.hedge_wins", l, c.mHedgeWins.Value)
	for _, w := range c.workers {
		wl := obs.L("component", "dist", "worker", w.addr)
		reg.GaugeFunc("dist.worker_health", wl, w.br.gauge)
		reg.CounterFunc("dist.worker_tasks", wl, w.tasks.Value)
	}
}

// Stats returns the coordinator's dispatch totals (tasks completed, queue
// steals, failovers).
func (c *Coordinator) Stats() (tasks, steals, failovers uint64) {
	return c.mTasks.Value(), c.mSteals.Value(), c.mFailovers.Value()
}

// HealthStats is the self-healing layer's counter snapshot.
type HealthStats struct {
	Failures      uint64 // failed worker attempts
	Quarantines   uint64 // breaker transitions to open
	Probes        uint64 // health probes sent
	ProbeFailures uint64 // probes that failed
	Readmits      uint64 // quarantined workers re-admitted by a probe
	Hedges        uint64 // duplicate attempts launched
	HedgeWins     uint64 // tasks won by the hedged attempt
}

// Health returns the self-healing counters.
func (c *Coordinator) Health() HealthStats {
	return HealthStats{
		Failures:      c.mFailures.Value(),
		Quarantines:   c.mQuarantines.Value(),
		Probes:        c.mProbes.Value(),
		ProbeFailures: c.mProbeFailures.Value(),
		Readmits:      c.mReadmits.Value(),
		Hedges:        c.mHedges.Value(),
		HedgeWins:     c.mHedgeWins.Value(),
	}
}

// WorkersHealthy reports whether every worker's breaker is closed — the
// chaos harness polls it to assert a restarted worker was re-admitted.
func (c *Coordinator) WorkersHealthy() bool {
	for _, w := range c.workers {
		if w.br.current() != stateClosed {
			return false
		}
	}
	return true
}

// Close stops the runners and the prober. Queued tasks fail with a closed
// error; callers should Close only after the sweep's scheduler has drained.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stopc)
	var orphans []*task
	for i, q := range c.queues {
		orphans = append(orphans, q...)
		c.queues[i] = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, t := range orphans {
		t.complete(experiments.CellPayload{}, fmt.Errorf("dist: coordinator closed"))
	}
	c.wg.Wait()
}

// kick wakes every idle runner so it re-evaluates breaker states and
// queues. Taking the lock around Broadcast closes the check-then-wait race
// with runners.
func (c *Coordinator) kick() {
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// home shards a cell key onto a worker index.
func (c *Coordinator) home(key string) int {
	h := fnv.New32a()
	io.WriteString(h, key)
	return int(h.Sum32()) % len(c.workers)
}

// Remote returns the RemoteFunc to install on the sweep's cell cache
// (experiments.CellCache.SetRemote): each call ships one cell to the fleet
// and blocks until it is computed, fails permanently, or ctx ends. A round
// that fails transiently on every admitting worker (a mid-heal window: the
// supervisor is restarting a victim, the prober has not re-admitted it yet)
// is re-dispatched after a capped backoff, up to MaxDispatchRounds — the
// dist layer absorbs infrastructure weather so it never surfaces as a cell
// retry in the experiment's result document.
func (c *Coordinator) Remote() experiments.RemoteFunc {
	return func(ctx context.Context, cs experiments.CellSpec, env experiments.CellEnv) (experiments.CellPayload, error) {
		req := TaskRequest{
			SchemaVersion: SchemaVersion,
			Key:           cs.Key(),
			Workload:      cs.Workload,
			Config:        cs.Config,
			Tweaks:        cs.Tweaks,
			Mode:          cs.Mode,
			Checks:        env.Checks,
			MaxCycles:     env.MaxCycles,
		}
		backoff := 50 * time.Millisecond
		for round := 1; ; round++ {
			t := &task{
				ctx:      ctx,
				req:      req,
				home:     c.home(req.Key),
				tried:    make([]bool, len(c.workers)),
				inflight: make(map[int]context.CancelFunc),
				done:     make(chan taskResult, 1),
			}
			if err := c.enqueue(t, t.home); err != nil {
				return experiments.CellPayload{}, err
			}
			var r taskResult
			select {
			case r = <-t.done:
			case <-ctx.Done():
				// A runner may still execute the task; its complete lands
				// in the buffered channel and is garbage collected with it.
				return experiments.CellPayload{}, ctx.Err()
			}
			if r.err == nil || round >= c.opts.MaxDispatchRounds ||
				!faults.IsTransient(r.err) || ctx.Err() != nil {
				return r.payload, r.err
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return experiments.CellPayload{}, ctx.Err()
			case <-c.stopc:
				return experiments.CellPayload{}, fmt.Errorf("dist: coordinator closed")
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
	}
}

func (c *Coordinator) enqueue(t *task, worker int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("dist: coordinator closed")
	}
	c.queues[worker] = append(c.queues[worker], t)
	// Broadcast, not Signal: the task may be runnable only by workers that
	// have not tried it yet, and a single wakeup could land on one that has.
	c.cond.Broadcast()
	return nil
}

// next blocks until worker i may run a task. An admitting worker (breaker
// closed, or half-open with the trial slot free) serves the head of its own
// queue first, then steals the tail of the longest other queue. A
// non-admitting worker serves only last-resort tasks — ones no admitting
// untried worker could run — so quarantine can never strand a task that has
// nowhere else to go. Returns nil when the coordinator closes.
func (c *Coordinator) next(i int) (t *task, stolen bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[i]
	for {
		if c.closed {
			return nil, false
		}
		if w.br.acquireAttempt() {
			if t := takeFrom(&c.queues[i], i, false); t != nil {
				return t, false
			}
			victim, best := -1, 0
			for j, q := range c.queues {
				if j != i && len(q) > best {
					victim, best = j, len(q)
				}
			}
			if victim >= 0 {
				if t := takeFrom(&c.queues[victim], i, true); t != nil {
					return t, true
				}
				// The longest queue held nothing runnable by i (failover
				// leftovers); scan the rest before sleeping.
				for j := range c.queues {
					if j == i || j == victim {
						continue
					}
					if t := takeFrom(&c.queues[j], i, true); t != nil {
						return t, true
					}
				}
			}
			w.br.releaseAttempt()
		} else if t := c.lastResortLocked(i); t != nil {
			return t, false
		}
		c.cond.Wait()
	}
}

// takeFrom removes and returns the first task in q runnable by worker i —
// scanning from the head for i's own queue, from the tail (the coldest
// task, leaving the victim its head) when stealing. Completed tasks
// (hedge/failover leftovers) are dropped on the way. Nil if none qualify.
func takeFrom(q *[]*task, i int, fromTail bool) *task {
	for {
		s := *q
		removed := false
		for n := range s {
			idx := n
			if fromTail {
				idx = len(s) - 1 - n
			}
			t := s[idx]
			if t.isCompleted() {
				*q = append(s[:idx:idx], s[idx+1:]...)
				removed = true
				break
			}
			if t.runnableBy(i) {
				*q = append(s[:idx:idx], s[idx+1:]...)
				return t
			}
		}
		if !removed {
			return nil
		}
	}
}

// lastResortLocked finds a queued task that worker i may run even though
// its breaker does not admit: one with no admitting untried alternative.
// c.mu must be held.
func (c *Coordinator) lastResortLocked(i int) *task {
	for j := range c.queues {
		q := c.queues[j]
		for idx := 0; idx < len(q); idx++ {
			t := q[idx]
			if !t.runnableBy(i) || c.hasAlternative(t, i) {
				continue
			}
			c.queues[j] = append(q[:idx:idx], q[idx+1:]...)
			return t
		}
	}
	return nil
}

// hasAlternative reports whether any admitting worker other than i could
// still attempt t.
func (c *Coordinator) hasAlternative(t *task, i int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.completed {
		return true // not last-resort material; a scan will drop it
	}
	for j, w := range c.workers {
		if j == i || t.tried[j] || t.inflight[j] != nil {
			continue
		}
		if st := w.br.current(); st == stateClosed || st == stateHalfOpen {
			return true
		}
	}
	return false
}

func (c *Coordinator) runner(i int) {
	defer c.wg.Done()
	w := c.workers[i]
	for {
		t, stolen := c.next(i)
		if t == nil {
			return
		}
		if stolen {
			c.mSteals.Inc()
		}
		c.attempt(t, i, w)
	}
}

// attempt runs one task attempt on worker i, classifying the outcome:
// task-owned endings (the task's own context canceled or expired, or
// another attempt already won) never blame the worker or burn a failover
// slot; worker-owned failures feed the breaker and fail over.
func (c *Coordinator) attempt(t *task, i int, w *workerState) {
	if t.ctx != nil && t.ctx.Err() != nil {
		// Task-owned before the wire was touched.
		w.br.releaseAttempt()
		t.complete(experiments.CellPayload{}, t.ctx.Err())
		return
	}
	actx, cancel, isHedge := t.beginAttempt(i)
	if actx == nil {
		w.br.releaseAttempt()
		return
	}
	defer cancel()
	var hedgeTimer *time.Timer
	if !c.opts.DisableHedging && len(c.workers) > 1 {
		hedgeTimer = time.AfterFunc(c.hedgeDelay(w), func() { c.hedge(t) })
	}
	start := time.Now()
	payload, err := c.call(actx, t, w)
	if hedgeTimer != nil {
		hedgeTimer.Stop()
	}
	t.endAttempt(i)
	if err == nil {
		w.lat.observe(time.Since(start))
		if w.br.onSuccess() {
			c.kick()
		}
		w.tasks.Inc()
		if t.complete(payload, nil) {
			c.mTasks.Inc()
			if isHedge {
				c.mHedgeWins.Inc()
			}
		}
		return
	}
	if t.ctx != nil && t.ctx.Err() != nil {
		// Task-owned: the cell's own context was canceled or its deadline
		// passed mid-call. Finish the task directly — the worker is not to
		// blame, no failover slot burns, dist.worker_failures stays put.
		w.br.releaseAttempt()
		t.complete(experiments.CellPayload{}, t.ctx.Err())
		return
	}
	if t.isCompleted() {
		// Hedge loser: another attempt won and canceled us. No blame.
		w.br.releaseAttempt()
		return
	}
	var we *WorkerError
	if !errors.As(err, &we) {
		// Permanent protocol error (bad request, key mismatch): the cell
		// is wrong, not the worker — which answered coherently, so the
		// breaker records a success.
		w.br.onSuccess()
		t.complete(experiments.CellPayload{}, err)
		return
	}
	c.mFailures.Inc()
	if w.br.onFailure() {
		c.mQuarantines.Inc()
		c.kick()
	}
	c.failover(t, i, err)
}

// failover hands a worker-failed task to an untried admitting worker; when
// none exists and no other attempt is still in flight, the transient error
// surfaces so the experiment scheduler's capped backoff decides whether the
// fleet deserves another round.
func (c *Coordinator) failover(t *task, i int, err error) {
	t.mu.Lock()
	t.tried[i] = true
	if t.completed {
		t.mu.Unlock()
		return
	}
	next := c.pickUntriedLocked(t)
	others := len(t.inflight)
	t.mu.Unlock()
	if next >= 0 {
		c.mFailovers.Inc()
		if qerr := c.enqueue(t, next); qerr == nil {
			return
		}
	}
	if others > 0 {
		return // a concurrent attempt may still win; it decides on failure
	}
	t.complete(experiments.CellPayload{}, err)
}

// pickUntriedLocked returns an admitting worker that has neither failed nor
// is currently attempting t, preferring closed breakers over half-open;
// -1 when none qualifies. t.mu must be held (c.workers is immutable and
// breaker state is its own lock, so no other lock is needed).
func (c *Coordinator) pickUntriedLocked(t *task) int {
	fallback := -1
	for j, w := range c.workers {
		if t.tried[j] || t.inflight[j] != nil {
			continue
		}
		switch w.br.current() {
		case stateClosed:
			return j
		case stateHalfOpen:
			if fallback < 0 {
				fallback = j
			}
		}
	}
	return fallback
}

// hedgeDelay picks how long worker w's attempt may run before a duplicate
// launches elsewhere: the worker's recent latency quantile once enough
// samples exist (padded 1.5x so ordinary jitter does not hedge), the
// fallback before that.
func (c *Coordinator) hedgeDelay(w *workerState) time.Duration {
	if q, ok := w.lat.quantile(c.opts.HedgeQuantile); ok {
		d := q + q/2
		if d < c.opts.HedgeMin {
			d = c.opts.HedgeMin
		}
		return d
	}
	return c.opts.HedgeFallback
}

// hedge launches the task's duplicate attempt on an untried admitting
// worker. Cells are deterministic and the cell cache single-flights, so
// the duplicate can never fork results — first success wins, the loser is
// canceled by complete().
func (c *Coordinator) hedge(t *task) {
	if t.ctx != nil && t.ctx.Err() != nil {
		return
	}
	t.mu.Lock()
	if t.completed || t.hedges >= 1 {
		t.mu.Unlock()
		return
	}
	next := c.pickUntriedLocked(t)
	if next < 0 {
		t.mu.Unlock()
		return
	}
	t.hedges++
	t.hedgePending++
	t.mu.Unlock()
	c.mHedges.Inc()
	c.enqueue(t, next)
}

// probeLoop is the background prober: quarantined workers are probed with
// capped exponential backoff and re-admitted on success; half-open workers
// are probed every tick (a second success closes without needing a trial
// task); healthy workers are watched at a slow cadence so a silently dead
// worker (SIGKILL) is discovered without sacrificing a task.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.ProbeInterval)
	defer ticker.Stop()
	gapCap := int(c.opts.ProbeBackoffCap / c.opts.ProbeInterval)
	if gapCap < 1 {
		gapCap = 1
	}
	tick := 0
	for {
		select {
		case <-c.stopc:
			return
		case <-ticker.C:
		}
		tick++
		for i, w := range c.workers {
			switch w.br.current() {
			case stateOpen:
				w.probeWait--
				if w.probeWait > 0 {
					continue
				}
				if c.probe(w) {
					w.probeGap, w.probeWait = 1, 1
				} else {
					w.probeGap *= 2
					if w.probeGap > gapCap {
						w.probeGap = gapCap
					}
					w.probeWait = w.probeGap
				}
			case stateHalfOpen:
				c.probe(w)
			case stateClosed:
				if (tick+i)%c.opts.HealthyEvery == 0 {
					c.probe(w)
				}
			}
		}
	}
}

// probe GETs /v1/health once and folds the verdict into the worker's
// breaker. "draining" counts as unhealthy: the worker is on its way out
// and new tasks would only be shed back.
func (c *Coordinator) probe(w *workerState) bool {
	c.mProbes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+w.addr+PathHealth, nil)
	healthy := false
	if err == nil {
		if resp, derr := c.client.Do(req); derr == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			var h HealthResponse
			healthy = rerr == nil && resp.StatusCode == http.StatusOK &&
				json.Unmarshal(data, &h) == nil && h.Status == "ok"
		}
	}
	if healthy {
		readmitted, closed := w.br.probeSuccess()
		if readmitted {
			c.mReadmits.Inc()
		}
		if readmitted || closed {
			c.kick()
		}
		return true
	}
	c.mProbeFailures.Inc()
	if w.br.probeFailure() {
		c.mQuarantines.Inc()
		c.kick()
	}
	return false
}

// call runs one task attempt on one worker under the attempt's context.
// Connection failures, retryable envelopes and damaged payloads come back
// as transient *WorkerError; permanent envelopes (the request itself is
// wrong) come back bare; context endings come back as the context error
// for the caller to classify (task-owned vs hedge-canceled).
func (c *Coordinator) call(ctx context.Context, t *task, w *workerState) (experiments.CellPayload, error) {
	body, err := json.Marshal(t.req)
	if err != nil {
		return experiments.CellPayload{}, fmt.Errorf("dist: encode task: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+w.addr+PathTask, bytes.NewReader(body))
	if err != nil {
		return experiments.CellPayload{}, fmt.Errorf("dist: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return experiments.CellPayload{}, ctx.Err()
		}
		return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if ctx.Err() != nil {
			return experiments.CellPayload{}, ctx.Err()
		}
		return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var env ErrorEnvelope
		if jerr := json.Unmarshal(data, &env); jerr == nil && env.Code != "" {
			if env.Retryable {
				return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: &env}
			}
			return experiments.CellPayload{}, &env
		}
		return experiments.CellPayload{}, &WorkerError{
			Worker: w.addr, Err: fmt.Errorf("http %d: %s", resp.StatusCode, bytes.TrimSpace(data)),
		}
	}
	var tr TaskResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: fmt.Errorf("decode response: %w", err)}
	}
	if tr.SchemaVersion != SchemaVersion {
		return experiments.CellPayload{}, fmt.Errorf("dist: worker %s answered schema %d, this coordinator speaks %d",
			w.addr, tr.SchemaVersion, SchemaVersion)
	}
	if tr.Key != t.req.Key {
		return experiments.CellPayload{}, fmt.Errorf("dist: worker %s answered key %q for task %q", w.addr, tr.Key, t.req.Key)
	}
	p, err := tr.DecodePayload()
	if err != nil {
		// A CRC mismatch is transit damage, not a wrong cell: retryable.
		return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: err}
	}
	return p, nil
}
