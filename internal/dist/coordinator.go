package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/obs"
)

// CoordinatorOptions configures a coordinator.
type CoordinatorOptions struct {
	// Addrs are the worker addresses (host:port). Required, non-empty.
	Addrs []string
	// Slots bounds concurrent in-flight tasks per worker (default 4). The
	// experiment scheduler above already bounds total in-flight cells at
	// Options.Parallel; slots shape how that budget spreads across the
	// fleet.
	Slots int
	// Client is the HTTP client for task calls (default: no client-side
	// timeout — cells are seconds of CPU and the per-attempt deadline is
	// the scheduler's CellTimeout, carried by the request context).
	Client *http.Client
}

// task is one queued cell: the wire request plus the channel its waiting
// RemoteFunc call blocks on. tried marks workers that have failed it, so
// each worker attempts a task at most once per coordinator round — a dead
// worker's runners cannot burn a task's failover budget by re-stealing it.
type task struct {
	ctx   context.Context
	req   TaskRequest
	home  int
	tried []bool
	done  chan taskResult
}

type taskResult struct {
	payload experiments.CellPayload
	err     error
}

func (t *task) finish(p experiments.CellPayload, err error) {
	t.done <- taskResult{payload: p, err: err} // buffered; never blocks
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	addr    string
	healthy *obs.Gauge
	tasks   *obs.Counter
}

// Coordinator shards cells across a worker fleet. Each worker owns a FIFO
// queue; a cell's home queue is its key hash modulo fleet size, so a rerun
// of the same sweep lands each cell on the same worker and that worker's
// in-process cache serves repeats. Runner goroutines (Slots per worker)
// drain their own queue first and steal from the longest other queue when
// idle — a straggler workload queues behind nothing. A failed attempt
// requeues the task on the next worker until every worker has had a try,
// then surfaces a transient *WorkerError for the experiment scheduler's
// retry machinery.
type Coordinator struct {
	opts    CoordinatorOptions
	workers []*workerState
	client  *http.Client

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]*task
	closed bool
	wg     sync.WaitGroup

	mTasks     obs.Counter
	mSteals    obs.Counter
	mFailovers obs.Counter
	mFailures  obs.Counter
}

// NewCoordinator starts a coordinator over the given workers and its
// runner goroutines. Close releases them.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if len(opts.Addrs) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one worker address")
	}
	if opts.Slots <= 0 {
		opts.Slots = 4
	}
	c := &Coordinator{
		opts:   opts,
		client: opts.Client,
		queues: make([][]*task, len(opts.Addrs)),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.cond = sync.NewCond(&c.mu)
	for _, addr := range opts.Addrs {
		c.workers = append(c.workers, &workerState{
			addr:    addr,
			healthy: &obs.Gauge{},
			tasks:   &obs.Counter{},
		})
	}
	for i := range c.workers {
		c.workers[i].healthy.Set(1)
		for s := 0; s < opts.Slots; s++ {
			c.wg.Add(1)
			go c.runner(i)
		}
	}
	return c, nil
}

// RegisterMetrics exports the coordinator's counters and per-worker health
// gauges on reg.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	l := obs.L("component", "dist")
	reg.CounterFunc("dist.tasks", l, c.mTasks.Value)
	reg.CounterFunc("dist.steals", l, c.mSteals.Value)
	reg.CounterFunc("dist.failovers", l, c.mFailovers.Value)
	reg.CounterFunc("dist.worker_failures", l, c.mFailures.Value)
	for _, w := range c.workers {
		wl := obs.L("component", "dist", "worker", w.addr)
		reg.GaugeFunc("dist.worker_health", wl, w.healthy.Value)
		reg.CounterFunc("dist.worker_tasks", wl, w.tasks.Value)
	}
}

// Stats returns the coordinator's dispatch totals (tasks completed, queue
// steals, failovers).
func (c *Coordinator) Stats() (tasks, steals, failovers uint64) {
	return c.mTasks.Value(), c.mSteals.Value(), c.mFailovers.Value()
}

// Close stops the runners. Queued tasks fail with a closed error; callers
// should Close only after the sweep's scheduler has drained.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	var orphans []*task
	for i, q := range c.queues {
		orphans = append(orphans, q...)
		c.queues[i] = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, t := range orphans {
		t.finish(experiments.CellPayload{}, fmt.Errorf("dist: coordinator closed"))
	}
	c.wg.Wait()
}

// home shards a cell key onto a worker index.
func (c *Coordinator) home(key string) int {
	h := fnv.New32a()
	io.WriteString(h, key)
	return int(h.Sum32()) % len(c.workers)
}

// Remote returns the RemoteFunc to install on the sweep's cell cache
// (experiments.CellCache.SetRemote): each call ships one cell to the fleet
// and blocks until it is computed, fails permanently, or ctx ends.
func (c *Coordinator) Remote() experiments.RemoteFunc {
	return func(ctx context.Context, cs experiments.CellSpec, env experiments.CellEnv) (experiments.CellPayload, error) {
		req := TaskRequest{
			SchemaVersion: SchemaVersion,
			Key:           cs.Key(),
			Workload:      cs.Workload,
			Config:        cs.Config,
			Tweaks:        cs.Tweaks,
			Mode:          cs.Mode,
			Checks:        env.Checks,
			MaxCycles:     env.MaxCycles,
		}
		t := &task{
			ctx:   ctx,
			req:   req,
			home:  c.home(req.Key),
			tried: make([]bool, len(c.workers)),
			done:  make(chan taskResult, 1),
		}
		if err := c.enqueue(t, t.home); err != nil {
			return experiments.CellPayload{}, err
		}
		select {
		case r := <-t.done:
			return r.payload, r.err
		case <-ctx.Done():
			// The runner may still execute the task; its finish lands in the
			// buffered channel and is garbage collected with it.
			return experiments.CellPayload{}, ctx.Err()
		}
	}
}

func (c *Coordinator) enqueue(t *task, worker int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("dist: coordinator closed")
	}
	c.queues[worker] = append(c.queues[worker], t)
	// Broadcast, not Signal: the task may be runnable only by workers that
	// have not tried it yet, and a single wakeup could land on one that has.
	c.cond.Broadcast()
	return nil
}

// next blocks until worker i has a runnable task — one i has not already
// failed: the head of its own queue first, then (stealing) the tail of the
// longest other queue. Returns nil when the coordinator closes.
func (c *Coordinator) next(i int) (t *task, stolen bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, false
		}
		if t := takeFrom(&c.queues[i], i, false); t != nil {
			return t, false
		}
		victim, best := -1, 0
		for j, q := range c.queues {
			if j != i && len(q) > best {
				victim, best = j, len(q)
			}
		}
		if victim >= 0 {
			if t := takeFrom(&c.queues[victim], i, true); t != nil {
				return t, true
			}
			// The longest queue held nothing runnable by i (failover
			// leftovers); scan the rest before sleeping.
			for j := range c.queues {
				if j == i || j == victim {
					continue
				}
				if t := takeFrom(&c.queues[j], i, true); t != nil {
					return t, true
				}
			}
		}
		c.cond.Wait()
	}
}

// takeFrom removes and returns the first task in q runnable by worker i —
// scanning from the head for i's own queue, from the tail (the coldest
// task, leaving the victim its head) when stealing. Nil if none qualify.
func takeFrom(q *[]*task, i int, fromTail bool) *task {
	s := *q
	for n := range s {
		idx := n
		if fromTail {
			idx = len(s) - 1 - n
		}
		if t := s[idx]; !t.tried[i] {
			*q = append(s[:idx:idx], s[idx+1:]...)
			return t
		}
	}
	return nil
}

func (c *Coordinator) runner(i int) {
	defer c.wg.Done()
	w := c.workers[i]
	for {
		t, stolen := c.next(i)
		if t == nil {
			return
		}
		if t.ctx != nil && t.ctx.Err() != nil {
			t.finish(experiments.CellPayload{}, t.ctx.Err())
			continue
		}
		if stolen {
			c.mSteals.Inc()
		}
		payload, err := c.call(t, w)
		if err == nil {
			w.healthy.Set(1)
			w.tasks.Inc()
			c.mTasks.Inc()
			t.finish(payload, nil)
			continue
		}
		var we *WorkerError
		if !errors.As(err, &we) {
			// Permanent protocol error (bad request, key mismatch): the cell
			// is wrong, not the worker. Fail it without burning the fleet.
			t.finish(experiments.CellPayload{}, err)
			continue
		}
		w.healthy.Set(0)
		c.mFailures.Inc()
		t.tried[i] = true
		if next := c.pickUntried(t); next >= 0 {
			// Failover: hand the task to an untried worker (healthy ones
			// first). Its runner — or a steal — picks it up.
			c.mFailovers.Inc()
			if qerr := c.enqueue(t, next); qerr == nil {
				continue
			}
		}
		// Every worker had its chance (or the coordinator is closing):
		// surface the transient error and let the scheduler's capped
		// backoff decide whether the fleet deserves another round.
		t.finish(experiments.CellPayload{}, err)
	}
}

// pickUntried returns a worker that has not failed t yet, preferring ones
// currently marked healthy; -1 when the whole fleet has tried it.
func (c *Coordinator) pickUntried(t *task) int {
	fallback := -1
	for j, w := range c.workers {
		if t.tried[j] {
			continue
		}
		if w.healthy.Value() > 0 {
			return j
		}
		if fallback < 0 {
			fallback = j
		}
	}
	return fallback
}

// call runs one task on one worker. Connection failures, retryable
// envelopes and damaged payloads come back as transient *WorkerError;
// permanent envelopes (the request itself is wrong) come back bare.
func (c *Coordinator) call(t *task, w *workerState) (experiments.CellPayload, error) {
	body, err := json.Marshal(t.req)
	if err != nil {
		return experiments.CellPayload{}, fmt.Errorf("dist: encode task: %w", err)
	}
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+w.addr+PathTask, bytes.NewReader(body))
	if err != nil {
		return experiments.CellPayload{}, fmt.Errorf("dist: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return experiments.CellPayload{}, ctx.Err()
		}
		return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var env ErrorEnvelope
		if jerr := json.Unmarshal(data, &env); jerr == nil && env.Code != "" {
			if env.Retryable {
				return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: &env}
			}
			return experiments.CellPayload{}, &env
		}
		return experiments.CellPayload{}, &WorkerError{
			Worker: w.addr, Err: fmt.Errorf("http %d: %s", resp.StatusCode, bytes.TrimSpace(data)),
		}
	}
	var tr TaskResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: fmt.Errorf("decode response: %w", err)}
	}
	if tr.SchemaVersion != SchemaVersion {
		return experiments.CellPayload{}, fmt.Errorf("dist: worker %s answered schema %d, this coordinator speaks %d",
			w.addr, tr.SchemaVersion, SchemaVersion)
	}
	if tr.Key != t.req.Key {
		return experiments.CellPayload{}, fmt.Errorf("dist: worker %s answered key %q for task %q", w.addr, tr.Key, t.req.Key)
	}
	p, err := tr.DecodePayload()
	if err != nil {
		// A CRC mismatch is transit damage, not a wrong cell: retryable.
		return experiments.CellPayload{}, &WorkerError{Worker: w.addr, Err: err}
	}
	return p, nil
}

// Fleet is a set of spawned local worker processes.
type Fleet struct {
	Addrs []string
	procs []*exec.Cmd
}

// SpawnWorkers re-executes the current binary n times as workers
// (`-worker -listen 127.0.0.1:0`), waits for each ready line, and returns
// the fleet. extra is appended to each worker's argument list.
func SpawnWorkers(n int, extra ...string) (*Fleet, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: locate executable: %w", err)
	}
	f := &Fleet{}
	for i := 0; i < n; i++ {
		args := append([]string{"-worker", "-listen", "127.0.0.1:0"}, extra...)
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("dist: worker stdout: %w", err)
		}
		if err := cmd.Start(); err != nil {
			f.Close()
			return nil, fmt.Errorf("dist: spawn worker: %w", err)
		}
		f.procs = append(f.procs, cmd)
		addr, err := readReadyLine(out)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("dist: worker %d: %w", i, err)
		}
		f.Addrs = append(f.Addrs, addr)
	}
	return f, nil
}

func readReadyLine(r io.Reader) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ReadyPrefix) {
			// Keep draining stdout in the background so the worker never
			// blocks on a full pipe.
			go io.Copy(io.Discard, r)
			return strings.TrimSpace(strings.TrimPrefix(line, ReadyPrefix)), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("worker exited before printing ready line")
}

// Close interrupts every worker and waits briefly for a clean drain,
// killing stragglers.
func (f *Fleet) Close() {
	for _, p := range f.procs {
		if p.Process != nil {
			p.Process.Signal(os.Interrupt)
		}
	}
	done := make(chan struct{})
	go func() {
		for _, p := range f.procs {
			p.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		for _, p := range f.procs {
			if p.Process != nil {
				p.Process.Kill()
			}
		}
		<-done
	}
}
