package dist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"ignite/internal/obs"
)

// SupervisorOptions configures a local worker fleet supervisor.
type SupervisorOptions struct {
	// Workers is the fleet size. Required, positive.
	Workers int
	// Command builds the process for a worker that must listen on addr. The
	// default re-executes the current binary with `-worker -listen <addr>`
	// plus ExtraArgs. Tests and the chaos harness substitute their own
	// (re-entering the test binary through an env-gated TestMain hook).
	Command func(addr string) (*exec.Cmd, error)
	// ExtraArgs are appended to the default command's argument list
	// (ignored when Command is set).
	ExtraArgs []string
	// MaxRestarts bounds consecutive restarts of one worker (default 5). A
	// worker that stays up StableAfter earns its budget back; one that
	// crash-loops past the budget is abandoned — the coordinator's breaker
	// keeps it quarantined and the rest of the fleet absorbs its load.
	MaxRestarts int
	// RestartBackoff is the first restart delay, doubling per consecutive
	// restart up to BackoffCap (defaults 200ms, 5s).
	RestartBackoff time.Duration
	BackoffCap     time.Duration
	// StableAfter is the uptime after which a worker's consecutive-restart
	// count resets (default 30s).
	StableAfter time.Duration
	// DrainTimeout bounds Close's wait for SIGTERM'd workers to drain
	// before SIGKILL (default 10s).
	DrainTimeout time.Duration
	// Log receives supervisor events (default: stderr).
	Log func(format string, args ...any)
}

func (o SupervisorOptions) withDefaults() (SupervisorOptions, error) {
	if o.Workers <= 0 {
		return o, fmt.Errorf("dist: supervisor needs a positive worker count")
	}
	if o.Command == nil {
		exe, err := os.Executable()
		if err != nil {
			return o, fmt.Errorf("dist: locate executable: %w", err)
		}
		extra := o.ExtraArgs
		o.Command = func(addr string) (*exec.Cmd, error) {
			return exec.Command(exe, append([]string{"-worker", "-listen", addr}, extra...)...), nil
		}
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 5
	}
	if o.RestartBackoff <= 0 {
		o.RestartBackoff = 200 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 5 * time.Second
	}
	if o.StableAfter <= 0 {
		o.StableAfter = 30 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.Log == nil {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "supervisor: "+format+"\n", args...)
		}
	}
	return o, nil
}

// Supervisor spawns and babysits a fleet of local worker processes: each
// worker that exits (crash, OOM, SIGKILL chaos) is restarted on its
// original address with capped exponential backoff, so the coordinator's
// addresses stay stable across restarts and its prober re-admits the
// worker as soon as the replacement answers /v1/health. The first spawn
// binds port 0; the kernel-picked port becomes the worker's permanent
// address (rebinding it immediately works — Go listeners set
// SO_REUSEADDR).
type Supervisor struct {
	opts  SupervisorOptions
	addrs []string

	mu       sync.Mutex
	procs    []*exec.Cmd
	stopping bool
	stopc    chan struct{}
	wg       sync.WaitGroup

	restarts obs.Counter
	gaveUp   obs.Counter
}

// StartSupervisor spawns the fleet and its monitors. Close stops both.
func StartSupervisor(opts SupervisorOptions) (*Supervisor, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		opts:  opts,
		procs: make([]*exec.Cmd, opts.Workers),
		stopc: make(chan struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		cmd, addr, err := s.spawn("127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("dist: worker %d: %w", i, err)
		}
		s.procs[i] = cmd
		s.addrs = append(s.addrs, addr)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.monitor(i)
	}
	return s, nil
}

// Addrs returns the fleet's stable worker addresses (valid across
// restarts).
func (s *Supervisor) Addrs() []string { return append([]string(nil), s.addrs...) }

// Restarts returns how many worker restarts the supervisor has performed.
func (s *Supervisor) Restarts() uint64 { return s.restarts.Value() }

// RegisterMetrics exports the supervisor's counters on reg.
func (s *Supervisor) RegisterMetrics(reg *obs.Registry) {
	l := obs.L("component", "dist")
	reg.CounterFunc("dist.worker_restarts", l, s.restarts.Value)
	reg.CounterFunc("dist.workers_abandoned", l, s.gaveUp.Value)
}

// Kill SIGKILLs worker i's current process — the chaos harness's murder
// weapon. The monitor notices and restarts it.
func (s *Supervisor) Kill(i int) error {
	s.mu.Lock()
	cmd := s.procs[i]
	s.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("dist: worker %d has no live process", i)
	}
	return cmd.Process.Kill()
}

// Close stops restarting, SIGTERMs the fleet (workers drain in-flight
// tasks), and reaps every process — SIGKILL after DrainTimeout.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return
	}
	s.stopping = true
	close(s.stopc)
	procs := append([]*exec.Cmd(nil), s.procs...)
	s.mu.Unlock()
	for _, p := range procs {
		if p != nil && p.Process != nil {
			p.Process.Signal(syscall.SIGTERM)
		}
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.opts.DrainTimeout):
		s.mu.Lock()
		procs = append(procs[:0], s.procs...)
		s.mu.Unlock()
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
			}
		}
		<-done
	}
	// Monitors exited before any initial-spawn failure path reaped; reap
	// stragglers started but never monitored.
	for _, p := range procs {
		if p != nil {
			p.Wait()
		}
	}
}

// spawn starts one worker process listening on addr and waits for its
// ready line. Returns the command and the resolved address.
func (s *Supervisor) spawn(addr string) (*exec.Cmd, string, error) {
	cmd, err := s.opts.Command(addr)
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", fmt.Errorf("worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("spawn worker: %w", err)
	}
	got, err := readReadyLine(out)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", err
	}
	return cmd, got, nil
}

// monitor owns worker i's lifecycle: it reaps each exit and decides
// whether to restart. A worker that stays up StableAfter earns a fresh
// restart budget; one that crash-loops past MaxRestarts is abandoned.
func (s *Supervisor) monitor(i int) {
	defer s.wg.Done()
	addr := s.addrs[i]
	consecutive := 0
	for {
		s.mu.Lock()
		cmd := s.procs[i]
		s.mu.Unlock()
		start := time.Now()
		werr := cmd.Wait()
		s.mu.Lock()
		stopping := s.stopping
		s.mu.Unlock()
		if stopping {
			return
		}
		if time.Since(start) >= s.opts.StableAfter {
			consecutive = 0
		}
		for {
			if consecutive >= s.opts.MaxRestarts {
				s.opts.Log("worker %d (%s) burned its %d-restart budget; abandoning it", i, addr, s.opts.MaxRestarts)
				s.gaveUp.Inc()
				return
			}
			consecutive++
			backoff := s.opts.RestartBackoff << (consecutive - 1)
			if backoff > s.opts.BackoffCap || backoff <= 0 {
				backoff = s.opts.BackoffCap
			}
			s.opts.Log("worker %d (%s) exited (%v); restart %d/%d in %v",
				i, addr, werr, consecutive, s.opts.MaxRestarts, backoff)
			select {
			case <-time.After(backoff):
			case <-s.stopc:
				return
			}
			newCmd, _, err := s.spawn(addr)
			if err != nil {
				werr = err
				continue
			}
			s.restarts.Inc()
			s.mu.Lock()
			if s.stopping {
				s.mu.Unlock()
				newCmd.Process.Signal(syscall.SIGTERM)
				newCmd.Wait()
				return
			}
			s.procs[i] = newCmd
			s.mu.Unlock()
			break
		}
	}
}

func readReadyLine(r io.Reader) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ReadyPrefix) {
			// Keep draining stdout in the background so the worker never
			// blocks on a full pipe.
			go io.Copy(io.Discard, r)
			return strings.TrimSpace(strings.TrimPrefix(line, ReadyPrefix)), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("worker exited before printing ready line")
}
