// Package dist distributes an experiment sweep's simulation cells across
// worker processes. The coordinator side plugs into the experiment layer's
// cell cache as its RemoteFunc: every cell the scheduler would have
// simulated locally is instead shipped — full workload specification,
// configuration kind, tweaks and mode — to one of N workers over a small
// HTTP/JSON protocol, and the returned payload is bit-identical to a local
// computation because both sides run the same deterministic engine from
// the same spec. Sharding is by cell-key hash with work stealing: an idle
// worker pulls queued cells from the busiest queue, so a straggler
// workload cannot serialize the sweep.
//
// The wire API follows internal/serve's posture: versioned request and
// response shapes, strict decoding (unknown fields and foreign schema
// versions are rejected), and a structured error envelope on every
// non-2xx response whose Retryable field — surfaced coordinator-side as a
// Transient() error — feeds the experiment scheduler's existing
// retry/backoff machinery.
package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"ignite/internal/experiments"
	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

// SchemaVersion is the current version of the dist wire API. Bump on any
// incompatible change; both sides reject any other version.
const SchemaVersion = 1

// HTTP paths of the dist API.
const (
	PathTask   = "/v1/task"
	PathHealth = "/v1/health"
)

// TaskRequest asks a worker to compute one simulation cell. It carries the
// full workload specification rather than a name: the worker rebuilds the
// cell key from the spec and rejects the task if it disagrees with Key, so
// a version-skewed worker (different key schema, different spec fields)
// fails loudly instead of silently computing — and the coordinator then
// caching — the wrong cell.
type TaskRequest struct {
	SchemaVersion int `json:"schemaVersion"`
	// Key is the cell's canonical cache key as the coordinator computed it.
	Key string `json:"key"`
	// Workload is the full function specification (plain exported data;
	// the JSON round trip is exact, floats included, so the worker's
	// recomputed key matches byte for byte).
	Workload workload.Spec `json:"workload"`
	// Config is the front-end configuration kind.
	Config sim.Kind `json:"config"`
	// Tweaks adjusts the configuration. sim.Tweaks is shipped directly —
	// ints, bools and an optional policy pointer — rather than through
	// serve's string-y TweakSpec, so no re-validation can drift.
	Tweaks sim.Tweaks `json:"tweaks"`
	// Mode selects back-to-back or interleaved execution.
	Mode lukewarm.Mode `json:"mode"`
	// Checks enables the runtime invariant verifier on the worker.
	Checks bool `json:"checks,omitempty"`
	// MaxCycles arms the worker-side cycle-budget watchdog (0 = unlimited).
	MaxCycles uint64 `json:"maxCycles,omitempty"`
}

// CellSpec resolves the request into the experiment layer's exported cell
// identity.
func (r TaskRequest) CellSpec() experiments.CellSpec {
	return experiments.CellSpec{Workload: r.Workload, Config: r.Config, Tweaks: r.Tweaks, Mode: r.Mode}
}

// TaskResponse answers one computed cell. Cell is the experiment layer's
// CellPayload JSON, guarded by the IEEE CRC-32 of its raw bytes — the same
// record discipline the journal and the content-addressed store use — so a
// payload damaged anywhere between the worker's encoder and the
// coordinator's decoder is detected, not cached.
type TaskResponse struct {
	SchemaVersion int             `json:"schemaVersion"`
	Key           string          `json:"key"`
	Cached        bool            `json:"cached"`
	CRC           uint32          `json:"crc"`
	Cell          json.RawMessage `json:"cell"`
}

// DecodePayload verifies the response's CRC and decodes the cell payload.
func (r TaskResponse) DecodePayload() (experiments.CellPayload, error) {
	var p experiments.CellPayload
	if crc32.ChecksumIEEE(r.Cell) != r.CRC {
		return p, fmt.Errorf("dist: cell %q: payload CRC mismatch (damaged in transit)", r.Key)
	}
	if err := json.Unmarshal(r.Cell, &p); err != nil {
		return p, fmt.Errorf("dist: cell %q: %w", r.Key, err)
	}
	if p.Res == nil {
		return p, fmt.Errorf("dist: cell %q: payload has no result", r.Key)
	}
	return p, nil
}

// HealthResponse answers /v1/health.
type HealthResponse struct {
	SchemaVersion int    `json:"schemaVersion"`
	Status        string `json:"status"` // "ok" or "draining"
	InFlight      int    `json:"inFlight"`
	TasksDone     uint64 `json:"tasksDone"`
}

// Error codes of the dist v1 API, mapped to HTTP statuses exactly like
// internal/serve's envelope.
const (
	CodeBadRequest        = "bad-request"
	CodeUnsupportedSchema = "unsupported-schema"
	CodeKeyMismatch       = "key-mismatch"
	CodeShuttingDown      = "shutting-down"
	CodeInternal          = "internal"
)

// ErrorEnvelope is the structured error answer of every non-2xx response.
// Retryable tells the coordinator whether another attempt (on this or
// another worker) can succeed; it surfaces as a Transient() error so the
// experiment scheduler's retry machinery applies unchanged.
type ErrorEnvelope struct {
	SchemaVersion int    `json:"schemaVersion"`
	Code          string `json:"code"`
	Message       string `json:"message"`
	Retryable     bool   `json:"retryable"`
}

// Error implements error.
func (e *ErrorEnvelope) Error() string {
	return fmt.Sprintf("dist: %s: %s", e.Code, e.Message)
}

// HTTPStatus maps the envelope's code onto its HTTP status.
func (e *ErrorEnvelope) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeUnsupportedSchema, CodeKeyMismatch:
		return 400
	case CodeShuttingDown:
		return 503
	default:
		return 500
	}
}

// envelope builds an error envelope.
func envelope(code, format string, args ...any) *ErrorEnvelope {
	return &ErrorEnvelope{
		SchemaVersion: SchemaVersion,
		Code:          code,
		Message:       fmt.Sprintf(format, args...),
		Retryable:     code == CodeShuttingDown,
	}
}

// ParseTaskRequest decodes and validates a task body. Unknown fields and
// foreign schema versions fail loudly, same as serve's v1 parsing.
func ParseTaskRequest(body []byte) (TaskRequest, *ErrorEnvelope) {
	var req TaskRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, envelope(CodeBadRequest, "malformed task: %v", err)
	}
	if req.SchemaVersion != SchemaVersion {
		return req, envelope(CodeUnsupportedSchema,
			"task schema version %d, this worker speaks %d", req.SchemaVersion, SchemaVersion)
	}
	if req.Key == "" {
		return req, envelope(CodeBadRequest, "missing cell key")
	}
	if req.Workload.Name == "" {
		return req, envelope(CodeBadRequest, "missing workload specification")
	}
	return req, nil
}

// WorkerError reports a failed attempt to run a task on a worker:
// connection failures, shed/shutdown envelopes, damaged payloads. Its
// Transient method feeds faults.IsTransient, so the experiment scheduler
// retries these with its usual capped backoff; permanent envelope errors
// (bad request, key mismatch) are returned bare instead and fail the cell.
type WorkerError struct {
	Worker string // worker address
	Err    error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("dist: worker %s: %v", e.Worker, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Transient marks the error retryable (see faults.IsTransient).
func (e *WorkerError) Transient() bool { return true }
