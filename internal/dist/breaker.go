package dist

import (
	"sort"
	"sync"
	"time"
)

// breakerState is one worker's admission state.
type breakerState int32

const (
	// stateClosed: healthy — tasks flow, outcomes feed the sliding window.
	stateClosed breakerState = iota
	// stateHalfOpen: probation — a successful probe re-admitted the worker;
	// one trial task (or another successful probe) closes the breaker, a
	// failure re-opens it.
	stateHalfOpen
	// stateOpen: quarantined — no tasks are dispatched; only the prober
	// talks to the worker, with capped exponential backoff.
	stateOpen
)

// breaker is a per-worker sliding-window failure-rate circuit breaker. It
// replaces the old binary healthy gauge: instead of one failed attempt
// flipping the worker dead until a fallback task happens to land on it, the
// breaker opens on a sustained failure rate and the prober re-admits it on
// evidence of recovery. All methods are safe for concurrent use; the
// breaker's mutex is a leaf lock (never held while acquiring another).
type breaker struct {
	mu    sync.Mutex
	state breakerState

	// window is a ring of recent attempt outcomes (true = failure).
	window   []bool
	widx     int
	wlen     int
	failures int

	// trial marks the single in-flight probation task of a half-open
	// breaker.
	trial bool

	// minSamples and rate are the trip condition: at least minSamples
	// outcomes in the window and failures/len >= rate.
	minSamples int
	rate       float64
}

func newBreaker(window, minSamples int, rate float64) *breaker {
	return &breaker{window: make([]bool, window), minSamples: minSamples, rate: rate}
}

// push records one outcome in the ring.
func (b *breaker) push(failed bool) {
	if b.wlen == len(b.window) {
		if b.window[b.widx] {
			b.failures--
		}
	} else {
		b.wlen++
	}
	b.window[b.widx] = failed
	if failed {
		b.failures++
	}
	b.widx = (b.widx + 1) % len(b.window)
}

// reset clears the outcome window (used on state transitions so evidence
// from one regime never trips the next).
func (b *breaker) resetWindow() {
	b.wlen, b.widx, b.failures = 0, 0, 0
}

// acquireAttempt reports whether the worker may attempt a task now: always
// in closed state, exactly one concurrent trial in half-open, never in
// open. The half-open claim is released by onSuccess/onFailure (attempt
// ran) or releaseAttempt (attempt never started).
func (b *breaker) acquireAttempt() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateHalfOpen:
		if b.trial {
			return false
		}
		b.trial = true
		return true
	default:
		return false
	}
}

// releaseAttempt returns an acquired attempt slot unused.
func (b *breaker) releaseAttempt() {
	b.mu.Lock()
	b.trial = false
	b.mu.Unlock()
}

// onSuccess records a successful attempt. A half-open trial success closes
// the breaker; the return reports that close (the caller wakes idle
// runners).
func (b *breaker) onSuccess() (closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	if b.state == stateHalfOpen {
		b.state = stateClosed
		b.resetWindow()
		return true
	}
	b.push(false)
	return false
}

// onFailure records a failed attempt. Returns true when the failure opened
// the breaker (quarantine transition).
func (b *breaker) onFailure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	if b.state == stateHalfOpen {
		b.state = stateOpen
		b.resetWindow()
		return true
	}
	if b.state == stateOpen {
		return false
	}
	b.push(true)
	if b.wlen >= b.minSamples && float64(b.failures) >= b.rate*float64(b.wlen) {
		b.state = stateOpen
		b.resetWindow()
		return true
	}
	return false
}

// probeSuccess folds a successful health probe: open moves to half-open
// (the re-admission transition the readmit counter tracks), half-open
// closes outright — a worker that answers health twice in a row needs no
// trial task. Returns the transition that happened.
func (b *breaker) probeSuccess() (readmitted, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		b.state = stateHalfOpen
		b.trial = false
		return true, false
	case stateHalfOpen:
		if b.trial {
			// A trial task is deciding; let it.
			return false, false
		}
		b.state = stateClosed
		b.resetWindow()
		return false, true
	}
	return false, false
}

// probeFailure folds a failed health probe. On a closed breaker this is the
// silent-death discovery path (a SIGKILL'd worker found by the slow-cadence
// watch, not by sacrificing a task): it opens immediately. Returns true on
// any transition to open.
func (b *breaker) probeFailure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateOpen {
		return false
	}
	b.state = stateOpen
	b.trial = false
	b.resetWindow()
	return true
}

// current returns the state.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// gauge renders the state for the dist.worker_health metric: 1 closed,
// 0.5 half-open, 0 open.
func (b *breaker) gauge() float64 {
	switch b.current() {
	case stateClosed:
		return 1
	case stateHalfOpen:
		return 0.5
	default:
		return 0
	}
}

// latQuantile tracks a small ring of recent task latencies per worker and
// answers quantile queries — the adaptive input to the hedge delay.
type latQuantile struct {
	mu      sync.Mutex
	samples [64]time.Duration
	n, idx  int
}

// observe records one completed-attempt latency.
func (l *latQuantile) observe(d time.Duration) {
	l.mu.Lock()
	l.samples[l.idx] = d
	l.idx = (l.idx + 1) % len(l.samples)
	if l.n < len(l.samples) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-th latency quantile over the ring; ok=false until
// enough samples (4) have accumulated to make the estimate meaningful.
func (l *latQuantile) quantile(q float64) (time.Duration, bool) {
	l.mu.Lock()
	if l.n < 4 {
		l.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, l.n)
	copy(buf, l.samples[:l.n])
	l.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q * float64(len(buf)-1))
	return buf[idx], true
}
