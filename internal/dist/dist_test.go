package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

// TestMain doubles as the supervisor tests' worker entry point: the test
// binary, re-executed with IGNITE_DIST_TEST_WORKER set, becomes a real
// worker process (the `ignite-bench -worker` equivalent) instead of
// running the test suite.
func TestMain(m *testing.M) {
	if addr := os.Getenv("IGNITE_DIST_TEST_WORKER"); addr != "" {
		if err := RunWorker(context.Background(), addr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testWorkerCommand re-executes this test binary as a worker process via
// the TestMain hook.
func testWorkerCommand(t *testing.T) func(addr string) (*exec.Cmd, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(addr string) (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "IGNITE_DIST_TEST_WORKER="+addr)
		return cmd, nil
	}
}

// testOpts builds a two-workload experiment configuration small enough for
// unit tests (same shrink as the experiments package's chaos tests).
func testOpts(t *testing.T) experiments.Options {
	t.Helper()
	var specs []workload.Spec
	for _, name := range []string{"Fib-G", "Auth-G"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s.TargetInstr /= 8
		specs = append(specs, s)
	}
	return experiments.Options{Workloads: specs, Parallel: 2}
}

// startWorkers boots n in-process workers on httptest servers and returns
// their addresses.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv := httptest.NewServer(NewWorker().Handler())
		t.Cleanup(srv.Close)
		addrs[i] = strings.TrimPrefix(srv.URL, "http://")
	}
	return addrs
}

func docBytes(t *testing.T, res *experiments.Result, opt experiments.Options) []byte {
	t.Helper()
	man := opt.Manifest()
	man.GoVersion = ""
	data, err := res.Document(man).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDistByteIdenticalToLocal is the tentpole's core promise: a sweep
// whose cells were computed by remote workers produces the exact same
// document — values, tables, per-cell metrics, manifest cache statistics —
// as the same sweep computed in process.
func TestDistByteIdenticalToLocal(t *testing.T) {
	optLocal := testOpts(t)
	optLocal.Cache = experiments.NewCellCache()
	resLocal, err := experiments.Run(context.Background(), "fig1", optLocal)
	if err != nil {
		t.Fatal(err)
	}
	docLocal := docBytes(t, resLocal, optLocal)

	coord, err := NewCoordinator(CoordinatorOptions{Addrs: startWorkers(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	optDist := testOpts(t)
	optDist.Cache = experiments.NewCellCache()
	optDist.Cache.SetRemote(coord.Remote())
	resDist, err := experiments.Run(context.Background(), "fig1", optDist)
	if err != nil {
		t.Fatal(err)
	}
	docDist := docBytes(t, resDist, optDist)

	if !bytes.Equal(docLocal, docDist) {
		t.Error("distributed document differs from local run")
	}
	if tasks, _, _ := coord.Stats(); tasks != 4 {
		t.Errorf("coordinator completed %d tasks, want 4 (2 workloads x 2 configs)", tasks)
	}
}

// TestWorkerRejectsKeyMismatch pins the version-skew guard: a task whose
// coordinator-computed key disagrees with the worker's derivation must be
// refused with a permanent key-mismatch envelope, never computed.
func TestWorkerRejectsKeyMismatch(t *testing.T) {
	addr := startWorkers(t, 1)[0]
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	req := TaskRequest{
		SchemaVersion: SchemaVersion,
		Key:           "not-the-real-key",
		Workload:      spec,
		Config:        sim.KindNL,
		Mode:          lukewarm.Interleaved,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+PathTask, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Code != CodeKeyMismatch || env.Retryable {
		t.Errorf("envelope = %+v, want permanent %s", env, CodeKeyMismatch)
	}
}

// TestCoordinatorFailover points the coordinator at one dead address and
// one live worker: every cell must still complete (the dead worker's
// failures reroute, not fail, the sweep) and the failover/health metrics
// must record the reroutes.
func TestCoordinatorFailover(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	live := startWorkers(t, 1)[0]

	coord, err := NewCoordinator(CoordinatorOptions{Addrs: []string{dead, live}, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	opt := testOpts(t)
	opt.Cache = experiments.NewCellCache()
	opt.Cache.SetRemote(coord.Remote())
	res, err := experiments.Run(context.Background(), "fig1", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Errorf("failures = %v, want none (failover should absorb the dead worker)", res.Failures)
	}

	reg := obs.NewRegistry()
	coord.RegisterMetrics(reg)
	vals := reg.Snapshot().Values()
	deadHealth := vals["dist.worker_health{component=dist,worker="+dead+"}"]
	liveHealth := vals["dist.worker_health{component=dist,worker="+live+"}"]
	if deadHealth != 0 || liveHealth != 1 {
		t.Errorf("health gauges: dead=%v live=%v, want 0 and 1", deadHealth, liveHealth)
	}
	if vals["dist.worker_failures{component=dist}"] == 0 {
		t.Error("no worker failures recorded despite a dead worker")
	}
}

// TestCoordinatorStealing homes several tasks on worker 0 with worker 0
// serialized to one slot: worker 1's idle runner must steal from worker
// 0's queue instead of letting it serialize the sweep.
func TestCoordinatorStealing(t *testing.T) {
	addrs := startWorkers(t, 2)
	coord, err := NewCoordinator(CoordinatorOptions{Addrs: addrs, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	base, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	base.TargetInstr /= 8
	// Vary the instruction budget until six distinct cells all hash onto
	// worker 0 — the hot-queue shape stealing exists for.
	var specs []experiments.CellSpec
	for budget := base.TargetInstr; len(specs) < 6; budget++ {
		s := base
		s.TargetInstr = budget
		cs := experiments.CellSpec{Workload: s, Config: sim.KindNL, Mode: lukewarm.Interleaved}
		if coord.home(cs.Key()) == 0 {
			specs = append(specs, cs)
		}
	}

	remote := coord.Remote()
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, cs := range specs {
		wg.Add(1)
		go func(i int, cs experiments.CellSpec) {
			defer wg.Done()
			_, errs[i] = remote(context.Background(), cs, experiments.CellEnv{})
		}(i, cs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	tasks, steals, _ := coord.Stats()
	if tasks != uint64(len(specs)) {
		t.Errorf("tasks = %d, want %d", tasks, len(specs))
	}
	if steals == 0 {
		t.Error("no steals recorded: worker 1 idled while worker 0's queue was hot")
	}
}

// TestDrainingWorkerShedsRetryable: a draining worker refuses new tasks
// with a retryable shutting-down envelope, which the coordinator surfaces
// as a transient error (so the scheduler retries elsewhere).
func TestDrainingWorkerShedsRetryable(t *testing.T) {
	w := NewWorker()
	w.Drain() // no in-flight work: flips to draining immediately
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	cs := experiments.CellSpec{Workload: spec, Config: sim.KindNL, Mode: lukewarm.Interleaved}
	coord, err := NewCoordinator(CoordinatorOptions{Addrs: []string{addr}, Slots: 1, MaxDispatchRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	_, rerr := coord.Remote()(context.Background(), cs, experiments.CellEnv{})
	var we *WorkerError
	if !errors.As(rerr, &we) || !faults.IsTransient(rerr) {
		t.Fatalf("draining worker error = %v, want transient *WorkerError", rerr)
	}

	// Health endpoint reports the drain.
	resp, err := http.Get(srv.URL + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}
}

// TestParseTaskRequestStrict pins the wire API's strictness: unknown
// fields, foreign schema versions and missing identities are rejected.
func TestParseTaskRequestStrict(t *testing.T) {
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	good := TaskRequest{
		SchemaVersion: SchemaVersion,
		Key:           "k",
		Workload:      spec,
		Config:        sim.KindNL,
	}
	body, _ := json.Marshal(good)
	if _, env := ParseTaskRequest(body); env != nil {
		t.Fatalf("valid request rejected: %v", env)
	}
	for name, mangle := range map[string]func([]byte) []byte{
		"unknown field": func(b []byte) []byte {
			return append(b[:len(b)-1], []byte(`,"surprise":1}`)...)
		},
		"wrong schema": func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"schemaVersion":1`), []byte(`"schemaVersion":9`), 1)
		},
		"missing key": func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"key":"k"`), []byte(`"key":""`), 1)
		},
	} {
		if _, env := ParseTaskRequest(mangle(body)); env == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// cellsHomedOn finds n distinct cells whose home queue is worker `home` on
// coord, by varying the instruction budget of a shrunk Fib-G.
func cellsHomedOn(t *testing.T, coord *Coordinator, home, n int) []experiments.CellSpec {
	t.Helper()
	base, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	base.TargetInstr /= 8
	var specs []experiments.CellSpec
	for budget := base.TargetInstr; len(specs) < n; budget++ {
		s := base
		s.TargetInstr = budget
		cs := experiments.CellSpec{Workload: s, Config: sim.KindNL, Mode: lukewarm.Interleaved}
		if coord.home(cs.Key()) == home {
			specs = append(specs, cs)
		}
	}
	return specs
}

// payloadBytes canonicalizes a cell payload for byte-identity checks.
func payloadBytes(t *testing.T, p experiments.CellPayload) []byte {
	t.Helper()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTaskCancelNotWorkerFault pins error attribution: canceling a cell's
// own context mid-call must end that task only — the worker is not blamed
// (dist.worker_failures stays 0), no failover slot burns, and the worker
// stays admitted.
func TestTaskCancelNotWorkerFault(t *testing.T) {
	// The "worker" hangs every request until the client gives up — the
	// shape of a long cell, not a broken worker. The stop channel unblocks
	// lingering handlers at cleanup so the server can close.
	stop := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	}))
	defer srv.Close()
	defer close(stop)
	addr := strings.TrimPrefix(srv.URL, "http://")

	coord, err := NewCoordinator(CoordinatorOptions{Addrs: []string{addr}, Slots: 1, DisableProbing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	cs := experiments.CellSpec{Workload: spec, Config: sim.KindNL, Mode: lukewarm.Interleaved}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, rerr := coord.Remote()(ctx, cs, experiments.CellEnv{})
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("canceled cell returned %v, want context.Canceled", rerr)
	}
	// The runner may still be classifying its canceled attempt; give it a
	// beat before reading counters.
	deadline := time.Now().Add(2 * time.Second)
	for coord.Health().Failures == 0 && time.Now().Before(deadline) {
		if coord.WorkersHealthy() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if h := coord.Health(); h.Failures != 0 {
		t.Errorf("dist.worker_failures = %d after a task-owned cancel, want 0", h.Failures)
	}
	if !coord.WorkersHealthy() {
		t.Error("worker lost admission over a task-owned cancel")
	}
}

// TestWorkerDrainShedsInFlightFailover is the SIGTERM-drain story at the
// coordinator's level: a request outstanding against a worker when its
// drain begins is shed with a retryable envelope, the coordinator fails
// over, and every cell still completes byte-identical to a local compute.
func TestWorkerDrainShedsInFlightFailover(t *testing.T) {
	wA := NewWorker()
	inflight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srvA := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathTask {
			// Hold the first task on the wire so the drain demonstrably
			// begins while a request is outstanding.
			once.Do(func() { close(inflight); <-release })
		}
		wA.Handler().ServeHTTP(rw, r)
	}))
	defer srvA.Close()
	srvB := httptest.NewServer(NewWorker().Handler())
	defer srvB.Close()
	addrA := strings.TrimPrefix(srvA.URL, "http://")
	addrB := strings.TrimPrefix(srvB.URL, "http://")

	coord, err := NewCoordinator(CoordinatorOptions{
		Addrs: []string{addrA, addrB}, Slots: 1,
		DisableProbing: true, DisableHedging: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	specs := cellsHomedOn(t, coord, 0, 2)
	remote := coord.Remote()
	type out struct {
		p   experiments.CellPayload
		err error
	}
	res1 := make(chan out, 1)
	go func() {
		p, err := remote(context.Background(), specs[0], experiments.CellEnv{})
		res1 <- out{p, err}
	}()
	<-inflight // the first task is outstanding against A
	wA.BeginDrain()
	close(release) // A now answers it with the retryable shutting-down shed

	r1 := <-res1
	if r1.err != nil {
		t.Fatalf("cell 0 failed despite failover: %v", r1.err)
	}
	p2, err := remote(context.Background(), specs[1], experiments.CellEnv{})
	if err != nil {
		t.Fatalf("cell 1 failed despite failover: %v", err)
	}

	// Byte-identical to a local compute of the same cells.
	local := experiments.NewCellCache()
	for i, p := range []experiments.CellPayload{r1.p, p2} {
		served, _, err := local.Invoke(specs[i], experiments.CellEnv{})
		if err != nil {
			t.Fatal(err)
		}
		want := payloadBytes(t, experiments.CellPayload{Res: served.Res, Metrics: served.Metrics})
		if !bytes.Equal(payloadBytes(t, p), want) {
			t.Errorf("cell %d: failover payload differs from local compute", i)
		}
	}
	// Cell 0 deterministically fails over (it was on A's wire when the
	// drain began). Cell 1 may be stolen by idle B before draining A ever
	// sees it, so only one failover is guaranteed.
	if _, _, failovers := coord.Stats(); failovers < 1 {
		t.Errorf("failovers = %d, want >= 1 (the in-flight cell was shed by the draining worker)", failovers)
	}
}

// TestHedgedDispatch: a task stuck on a slow worker past the hedge delay
// is duplicated on the other worker; the fast copy wins, the slow attempt
// is canceled without blaming anyone.
func TestHedgedDispatch(t *testing.T) {
	// The first task attempt — on whichever worker receives it — stalls;
	// every later attempt is served normally. The hedge therefore always
	// lands on a responsive worker and must win.
	var slowed atomic.Bool
	stop := make(chan struct{})
	slowify := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == PathTask && slowed.CompareAndSwap(false, true) {
				select {
				case <-time.After(5 * time.Second):
				case <-r.Context().Done():
					return
				case <-stop:
					return
				}
			}
			h.ServeHTTP(rw, r)
		})
	}
	srvA := httptest.NewServer(slowify(NewWorker().Handler()))
	defer srvA.Close()
	srvB := httptest.NewServer(slowify(NewWorker().Handler()))
	defer srvB.Close()
	defer close(stop)

	coord, err := NewCoordinator(CoordinatorOptions{
		Addrs: []string{
			strings.TrimPrefix(srvA.URL, "http://"),
			strings.TrimPrefix(srvB.URL, "http://"),
		},
		Slots:          1,
		HedgeFallback:  50 * time.Millisecond,
		DisableProbing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	cs := cellsHomedOn(t, coord, 0, 1)[0]
	start := time.Now()
	if _, err := coord.Remote()(context.Background(), cs, experiments.CellEnv{}); err != nil {
		t.Fatalf("hedged cell failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Errorf("cell took %v: the hedge never rescued it from the slow worker", elapsed)
	}
	h := coord.Health()
	if h.Hedges < 1 || h.HedgeWins < 1 {
		t.Errorf("hedges = %d, wins = %d, want both >= 1", h.Hedges, h.HedgeWins)
	}
	if h.Failures != 0 {
		t.Errorf("dist.worker_failures = %d: a canceled hedge loser was blamed on its worker", h.Failures)
	}
}

// TestProberReadmitsRestartedWorker: a quarantined worker is re-admitted
// by the background prober — without sacrificing a task — once a
// replacement process answers /v1/health on the same address.
func TestProberReadmitsRestartedWorker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the worker is "down"

	coord, err := NewCoordinator(CoordinatorOptions{
		Addrs: []string{addr}, Slots: 1,
		MinSamples:        1,
		ProbeInterval:     20 * time.Millisecond,
		ProbeBackoffCap:   200 * time.Millisecond,
		ProbeTimeout:      500 * time.Millisecond,
		DisableHedging:    true,
		MaxDispatchRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	spec.TargetInstr /= 8
	cs := experiments.CellSpec{Workload: spec, Config: sim.KindNL, Mode: lukewarm.Interleaved}
	if _, err := coord.Remote()(context.Background(), cs, experiments.CellEnv{}); err == nil {
		t.Fatal("cell against a dead fleet succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for coord.Health().Quarantines == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if coord.Health().Quarantines == 0 {
		t.Fatal("dead worker was never quarantined")
	}

	// The worker "restarts" on its old address.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewWorker().Handler()}
	go srv.Serve(ln2)
	defer srv.Close()

	for !coord.WorkersHealthy() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !coord.WorkersHealthy() {
		t.Fatal("restarted worker was never re-admitted by the prober")
	}
	h := coord.Health()
	if h.Readmits < 1 || h.Probes < 1 {
		t.Errorf("readmits = %d, probes = %d, want both >= 1", h.Readmits, h.Probes)
	}
	if _, err := coord.Remote()(context.Background(), cs, experiments.CellEnv{}); err != nil {
		t.Errorf("cell after re-admission failed: %v", err)
	}
}

// TestSupervisorRestartsWorker SIGKILLs a supervised worker process and
// expects a replacement serving /v1/health on the same address.
func TestSupervisorRestartsWorker(t *testing.T) {
	s, err := StartSupervisor(SupervisorOptions{
		Workers:        1,
		Command:        testWorkerCommand(t),
		RestartBackoff: 20 * time.Millisecond,
		Log:            func(format string, args ...any) { t.Logf("supervisor: "+format, args...) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addrs()[0]

	healthy := func() bool {
		resp, err := http.Get("http://" + addr + PathHealth)
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	if !healthy() {
		t.Fatal("fresh worker does not answer health")
	}
	if err := s.Kill(0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !healthy() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !healthy() {
		t.Fatal("killed worker never came back on its address")
	}
	if s.Restarts() < 1 {
		t.Errorf("restarts = %d, want >= 1", s.Restarts())
	}
}
