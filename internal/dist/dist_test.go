package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

// testOpts builds a two-workload experiment configuration small enough for
// unit tests (same shrink as the experiments package's chaos tests).
func testOpts(t *testing.T) experiments.Options {
	t.Helper()
	var specs []workload.Spec
	for _, name := range []string{"Fib-G", "Auth-G"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s.TargetInstr /= 8
		specs = append(specs, s)
	}
	return experiments.Options{Workloads: specs, Parallel: 2}
}

// startWorkers boots n in-process workers on httptest servers and returns
// their addresses.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv := httptest.NewServer(NewWorker().Handler())
		t.Cleanup(srv.Close)
		addrs[i] = strings.TrimPrefix(srv.URL, "http://")
	}
	return addrs
}

func docBytes(t *testing.T, res *experiments.Result, opt experiments.Options) []byte {
	t.Helper()
	man := opt.Manifest()
	man.GoVersion = ""
	data, err := res.Document(man).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDistByteIdenticalToLocal is the tentpole's core promise: a sweep
// whose cells were computed by remote workers produces the exact same
// document — values, tables, per-cell metrics, manifest cache statistics —
// as the same sweep computed in process.
func TestDistByteIdenticalToLocal(t *testing.T) {
	optLocal := testOpts(t)
	optLocal.Cache = experiments.NewCellCache()
	resLocal, err := experiments.Run(context.Background(), "fig1", optLocal)
	if err != nil {
		t.Fatal(err)
	}
	docLocal := docBytes(t, resLocal, optLocal)

	coord, err := NewCoordinator(CoordinatorOptions{Addrs: startWorkers(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	optDist := testOpts(t)
	optDist.Cache = experiments.NewCellCache()
	optDist.Cache.SetRemote(coord.Remote())
	resDist, err := experiments.Run(context.Background(), "fig1", optDist)
	if err != nil {
		t.Fatal(err)
	}
	docDist := docBytes(t, resDist, optDist)

	if !bytes.Equal(docLocal, docDist) {
		t.Error("distributed document differs from local run")
	}
	if tasks, _, _ := coord.Stats(); tasks != 4 {
		t.Errorf("coordinator completed %d tasks, want 4 (2 workloads x 2 configs)", tasks)
	}
}

// TestWorkerRejectsKeyMismatch pins the version-skew guard: a task whose
// coordinator-computed key disagrees with the worker's derivation must be
// refused with a permanent key-mismatch envelope, never computed.
func TestWorkerRejectsKeyMismatch(t *testing.T) {
	addr := startWorkers(t, 1)[0]
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	req := TaskRequest{
		SchemaVersion: SchemaVersion,
		Key:           "not-the-real-key",
		Workload:      spec,
		Config:        sim.KindNL,
		Mode:          lukewarm.Interleaved,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+PathTask, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Code != CodeKeyMismatch || env.Retryable {
		t.Errorf("envelope = %+v, want permanent %s", env, CodeKeyMismatch)
	}
}

// TestCoordinatorFailover points the coordinator at one dead address and
// one live worker: every cell must still complete (the dead worker's
// failures reroute, not fail, the sweep) and the failover/health metrics
// must record the reroutes.
func TestCoordinatorFailover(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	live := startWorkers(t, 1)[0]

	coord, err := NewCoordinator(CoordinatorOptions{Addrs: []string{dead, live}, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	opt := testOpts(t)
	opt.Cache = experiments.NewCellCache()
	opt.Cache.SetRemote(coord.Remote())
	res, err := experiments.Run(context.Background(), "fig1", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Errorf("failures = %v, want none (failover should absorb the dead worker)", res.Failures)
	}

	reg := obs.NewRegistry()
	coord.RegisterMetrics(reg)
	vals := reg.Snapshot().Values()
	deadHealth := vals["dist.worker_health{component=dist,worker="+dead+"}"]
	liveHealth := vals["dist.worker_health{component=dist,worker="+live+"}"]
	if deadHealth != 0 || liveHealth != 1 {
		t.Errorf("health gauges: dead=%v live=%v, want 0 and 1", deadHealth, liveHealth)
	}
	if vals["dist.worker_failures{component=dist}"] == 0 {
		t.Error("no worker failures recorded despite a dead worker")
	}
}

// TestCoordinatorStealing homes several tasks on worker 0 with worker 0
// serialized to one slot: worker 1's idle runner must steal from worker
// 0's queue instead of letting it serialize the sweep.
func TestCoordinatorStealing(t *testing.T) {
	addrs := startWorkers(t, 2)
	coord, err := NewCoordinator(CoordinatorOptions{Addrs: addrs, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	base, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	base.TargetInstr /= 8
	// Vary the instruction budget until six distinct cells all hash onto
	// worker 0 — the hot-queue shape stealing exists for.
	var specs []experiments.CellSpec
	for budget := base.TargetInstr; len(specs) < 6; budget++ {
		s := base
		s.TargetInstr = budget
		cs := experiments.CellSpec{Workload: s, Config: sim.KindNL, Mode: lukewarm.Interleaved}
		if coord.home(cs.Key()) == 0 {
			specs = append(specs, cs)
		}
	}

	remote := coord.Remote()
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, cs := range specs {
		wg.Add(1)
		go func(i int, cs experiments.CellSpec) {
			defer wg.Done()
			_, errs[i] = remote(context.Background(), cs, experiments.CellEnv{})
		}(i, cs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	tasks, steals, _ := coord.Stats()
	if tasks != uint64(len(specs)) {
		t.Errorf("tasks = %d, want %d", tasks, len(specs))
	}
	if steals == 0 {
		t.Error("no steals recorded: worker 1 idled while worker 0's queue was hot")
	}
}

// TestDrainingWorkerShedsRetryable: a draining worker refuses new tasks
// with a retryable shutting-down envelope, which the coordinator surfaces
// as a transient error (so the scheduler retries elsewhere).
func TestDrainingWorkerShedsRetryable(t *testing.T) {
	w := NewWorker()
	w.Drain() // no in-flight work: flips to draining immediately
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	cs := experiments.CellSpec{Workload: spec, Config: sim.KindNL, Mode: lukewarm.Interleaved}
	coord, err := NewCoordinator(CoordinatorOptions{Addrs: []string{addr}, Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	_, rerr := coord.Remote()(context.Background(), cs, experiments.CellEnv{})
	var we *WorkerError
	if !errors.As(rerr, &we) || !faults.IsTransient(rerr) {
		t.Fatalf("draining worker error = %v, want transient *WorkerError", rerr)
	}

	// Health endpoint reports the drain.
	resp, err := http.Get(srv.URL + PathHealth)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}
}

// TestParseTaskRequestStrict pins the wire API's strictness: unknown
// fields, foreign schema versions and missing identities are rejected.
func TestParseTaskRequestStrict(t *testing.T) {
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	good := TaskRequest{
		SchemaVersion: SchemaVersion,
		Key:           "k",
		Workload:      spec,
		Config:        sim.KindNL,
	}
	body, _ := json.Marshal(good)
	if _, env := ParseTaskRequest(body); env != nil {
		t.Fatalf("valid request rejected: %v", env)
	}
	for name, mangle := range map[string]func([]byte) []byte{
		"unknown field": func(b []byte) []byte {
			return append(b[:len(b)-1], []byte(`,"surprise":1}`)...)
		},
		"wrong schema": func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"schemaVersion":1`), []byte(`"schemaVersion":9`), 1)
		},
		"missing key": func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"key":"k"`), []byte(`"key":""`), 1)
		},
	} {
		if _, env := ParseTaskRequest(mangle(body)); env == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
