package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/obs"
)

// ReadyPrefix is the line a spawned worker prints on stdout once it is
// listening, followed by its resolved address. The coordinator's spawner
// scans for it, so workers bound to port 0 can report the port the kernel
// picked.
const ReadyPrefix = "IGNITE-WORKER-READY "

// Worker executes task requests against a local cell cache. One worker
// process holds one cache for its lifetime, so repeated cells (the nl
// baseline a sweep requests for five figures) simulate once per worker,
// and concurrent requests for one key coalesce single-flight exactly as
// they do in the batch pipeline.
type Worker struct {
	cache    *experiments.CellCache
	inflight atomic.Int64
	done     atomic.Uint64
	draining atomic.Bool
	wg       sync.WaitGroup
}

// NewWorker returns a worker over a fresh cell cache.
func NewWorker() *Worker {
	return &Worker{cache: experiments.NewCellCache()}
}

// BeginDrain flips the worker into shutdown mode without waiting: new
// tasks are refused with a retryable shutting-down envelope (the
// coordinator re-runs them elsewhere) while in-flight tasks keep running.
func (w *Worker) BeginDrain() {
	w.draining.Store(true)
}

// Drain begins draining and blocks until in-flight tasks finish.
func (w *Worker) Drain() {
	w.BeginDrain()
	w.wg.Wait()
}

// Handler returns the worker's HTTP API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathTask, w.handleTask)
	mux.HandleFunc(PathHealth, w.handleHealth)
	return mux
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	rw.Write(append(data, '\n'))
}

func writeError(rw http.ResponseWriter, env *ErrorEnvelope) {
	writeJSON(rw, env.HTTPStatus(), env)
}

func (w *Worker) handleTask(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(rw, envelope(CodeBadRequest, "%s needs POST", PathTask))
		return
	}
	if w.draining.Load() {
		writeError(rw, envelope(CodeShuttingDown, "worker is draining"))
		return
	}
	w.wg.Add(1)
	defer w.wg.Done()
	w.inflight.Add(1)
	defer w.inflight.Add(-1)

	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, 16<<20))
	if err != nil {
		writeError(rw, envelope(CodeBadRequest, "read body: %v", err))
		return
	}
	req, env := ParseTaskRequest(body)
	if env != nil {
		writeError(rw, env)
		return
	}
	cs := req.CellSpec()
	// The key is derived state; recomputing it proves both sides agree on
	// what this cell is. A mismatch means version skew between coordinator
	// and worker binaries — the one failure mode that could silently
	// poison a sweep's store with wrong-but-well-formed results.
	if got := cs.Key(); got != req.Key {
		writeError(rw, envelope(CodeKeyMismatch,
			"coordinator key %q, this worker derives %q (mixed binary versions?)", req.Key, got))
		return
	}
	served, cached, err := w.cache.Invoke(cs, experiments.CellEnv{Checks: req.Checks, MaxCycles: req.MaxCycles})
	if err != nil {
		writeError(rw, envelope(CodeInternal, "cell %s/%s: %v", req.Workload.Name, req.Config, err))
		return
	}
	payload, err := json.Marshal(experiments.CellPayload{Res: served.Res, Metrics: served.Metrics})
	if err != nil {
		writeError(rw, envelope(CodeInternal, "encode cell: %v", err))
		return
	}
	w.done.Add(1)
	writeJSON(rw, http.StatusOK, TaskResponse{
		SchemaVersion: SchemaVersion,
		Key:           req.Key,
		Cached:        cached,
		CRC:           crc32.ChecksumIEEE(payload),
		Cell:          payload,
	})
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	status := "ok"
	if w.draining.Load() {
		status = "draining"
	}
	writeJSON(rw, http.StatusOK, HealthResponse{
		SchemaVersion: SchemaVersion,
		Status:        status,
		InFlight:      int(w.inflight.Load()),
		TasksDone:     w.done.Load(),
	})
}

// RunWorker is the `ignite-bench -worker` entry point: listen on addr
// (host:0 lets the kernel pick), print the ready line on stdout, and serve
// tasks until the context is canceled (SIGINT/SIGTERM), then drain. obs
// progress lines go to stderr so stdout stays machine-readable for the
// spawning coordinator.
func RunWorker(ctx context.Context, addr string) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := NewWorker()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: worker listen %s: %w", addr, err)
	}
	// Honor listener-level network chaos (conn-reset@net/<addr>/accept) from
	// the same IGNITE_FAULTS gate the cell faults use, so a spawned fleet
	// inherits the chaos plan through the environment.
	plan, err := faults.FromEnvSpec(os.Getenv(faults.EnvVar))
	if err != nil {
		return fmt.Errorf("dist: worker faults: %w", err)
	}
	ln = faults.WrapListener(plan, ln)
	srv := &http.Server{Handler: w.Handler()}
	fmt.Printf("%s%s\n", ReadyPrefix, ln.Addr().String())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("dist: worker serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "worker: draining")
	w.Drain()
	cells, hits := w.CacheStats()
	fmt.Fprintf(os.Stderr, "worker: done (%d cell(s) computed, %d cache hit(s))\n", cells, hits)
	return srv.Close()
}

// CacheStats reports the worker cache's distinct cells and hit count.
func (w *Worker) CacheStats() (cells, hits int) { return w.cache.Stats() }

// RegisterMetrics exports the worker's counters on reg.
func (w *Worker) RegisterMetrics(reg *obs.Registry) {
	l := obs.L("component", "dist-worker")
	reg.CounterFunc("dist.worker_tasks_done", l, w.done.Load)
	reg.GaugeFunc("dist.worker_inflight", l, func() float64 { return float64(w.inflight.Load()) })
}
