package lukewarm

import "ignite/internal/obs"

// RegisterMetrics exposes the aggregate measurement-phase figures of a
// finished lukewarm run through the obs registry. All sources are
// read-through gauges over the Result accessors, so registration is cheap
// and snapshots always reflect the Result as stored.
func (r *Result) RegisterMetrics(reg *obs.Registry, labels obs.Labels) {
	l := labels.With("component", "result")
	reg.GaugeFunc("result.instrs", l, func() float64 { return float64(r.Instrs()) })
	reg.GaugeFunc("result.cycles", l, r.Cycles)
	reg.GaugeFunc("result.cpi", l, r.CPI)
	reg.GaugeFunc("result.l1i_mpki", l, r.L1IMPKI)
	reg.GaugeFunc("result.btb_mpki", l, r.BTBMPKI)
	reg.GaugeFunc("result.cbp_mpki", l, r.CBPMPKI)
	reg.GaugeFunc("result.initial_cbp_mpki", l, r.InitialCBPMPKI)
	reg.GaugeFunc("result.induced_mpki", l, r.InducedMPKI)
	reg.GaugeFunc("result.bpu_mpki", l, r.BPUMPKI)
	reg.GaugeFunc("result.offchip_mpki", l, r.OffChipMPKI)
	reg.GaugeFunc("result.traffic_useful_bytes", l, func() float64 {
		return float64(r.MeanTraffic().UsefulInstrBytes)
	})
	reg.GaugeFunc("result.traffic_useless_bytes", l, func() float64 {
		return float64(r.MeanTraffic().UselessInstrBytes)
	})
	reg.GaugeFunc("result.traffic_record_bytes", l, func() float64 {
		return float64(r.MeanTraffic().RecordMetaBytes)
	})
	reg.GaugeFunc("result.traffic_replay_bytes", l, func() float64 {
		return float64(r.MeanTraffic().ReplayMetaBytes)
	})
}
