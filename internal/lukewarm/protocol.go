// Package lukewarm orchestrates the paper's experimental protocol
// (Section 5.3): a function is invoked repeatedly on one core; between
// invocations the simulator either preserves all microarchitectural state
// (back-to-back, the best case) or thrashes it (interleaved/lukewarm,
// flushing caches, BTB, I-TLB and TAGE and randomizing the bimodal),
// optionally preserving selected structures for the warm-state sensitivity
// studies. Record/replay mechanisms (Jukebox, Confluence, Ignite) record
// during a designated invocation and replay on every measured one.
package lukewarm

import (
	"fmt"

	"ignite/internal/cfg"
	"ignite/internal/engine"
	"ignite/internal/memsys"
	"ignite/internal/stats"
)

// Mode selects the inter-invocation regime.
type Mode uint8

const (
	// BackToBack preserves all state between invocations (the paper's
	// best-case baseline).
	BackToBack Mode = iota
	// Interleaved thrashes on-chip state between invocations, modeling
	// thousands of interleaving function executions.
	Interleaved
)

func (m Mode) String() string {
	if m == BackToBack {
		return "back-to-back"
	}
	return "interleaved"
}

// Preserve selects structures exempted from the thrash (Figures 4 and 5).
type Preserve struct {
	BTB  bool
	BIM  bool
	TAGE bool
}

// TraceProvider supplies the committed trace for an invocation seed,
// exactly as Program.Walk would generate it (the walk depends only on the
// program and seed, not on the front-end configuration), so protocol runs
// that share a workload across configurations can generate each trace once.
type TraceProvider func(seed, maxInstr uint64) ([]cfg.Step, cfg.WalkResult, error)

// Mechanism is a record/replay restoration mechanism (Ignite, Jukebox,
// Confluence) driven by the protocol.
type Mechanism interface {
	StartRecord()
	StopRecord()
	ArmReplay()
}

// Options configures a protocol run.
type Options struct {
	// MaxInstr is the per-invocation instruction budget.
	MaxInstr uint64
	// Warmups is the number of warm-up invocations (default 2).
	Warmups int
	// Measures is the number of measured invocations (default 3).
	Measures int
	// Mode selects back-to-back or interleaved execution.
	Mode Mode
	// Keep preserves selected structures across the thrash.
	Keep Preserve
	// Mechanisms record during the record invocation and replay on every
	// measured invocation.
	Mechanisms []Mechanism
	// SeedBase differentiates invocations; each invocation uses
	// SeedBase+i so traces share structure but differ in detail. A zero
	// SeedBase means DefaultSeedBase unless SeedBaseSet says otherwise:
	// seed 0 is a legitimate request, so callers that computed their base
	// (even to zero) set the sentinel rather than relying on non-zeroness.
	SeedBase uint64
	// SeedBaseSet marks SeedBase as explicitly chosen, making SeedBase: 0
	// expressible instead of being clobbered to DefaultSeedBase.
	SeedBaseSet bool
	// Traces, when non-nil, supplies pre-generated committed traces;
	// results are bit-identical with or without it.
	Traces TraceProvider
}

// DefaultSeedBase is the protocol's seed base when the caller leaves
// Options.SeedBase unset.
const DefaultSeedBase uint64 = 0x1ce

func (o Options) withDefaults() Options {
	if o.Warmups <= 0 {
		o.Warmups = 2
	}
	if o.Measures <= 0 {
		o.Measures = 3
	}
	if o.SeedBase == 0 && !o.SeedBaseSet {
		o.SeedBase = DefaultSeedBase
	}
	return o
}

// Result aggregates the measured invocations.
type Result struct {
	PerInvocation []*engine.InvocationStats
	Traffic       []memsys.Report
}

// Instrs returns the total measured instruction count.
func (r *Result) Instrs() uint64 {
	var n uint64
	for _, s := range r.PerInvocation {
		n += s.Instrs
	}
	return n
}

// Cycles returns the total measured cycles.
func (r *Result) Cycles() float64 {
	var c float64
	for _, s := range r.PerInvocation {
		c += s.Cycles
	}
	return c
}

// CPI returns the aggregate cycles per instruction.
func (r *Result) CPI() float64 {
	if r.Instrs() == 0 {
		return 0
	}
	return r.Cycles() / float64(r.Instrs())
}

// CPIStack returns the aggregate per-instruction cycle stack.
func (r *Result) CPIStack() stats.CPIStack {
	var total stats.CPIStack
	for _, s := range r.PerInvocation {
		total = total.Add(s.Stack)
	}
	return total.PerInstr(r.Instrs())
}

func (r *Result) sum(f func(*engine.InvocationStats) uint64) uint64 {
	var n uint64
	for _, s := range r.PerInvocation {
		n += f(s)
	}
	return n
}

// L1IMPKI returns the aggregate L1-I miss rate.
func (r *Result) L1IMPKI() float64 {
	return stats.MPKI(r.sum(func(s *engine.InvocationStats) uint64 { return s.L1IMisses }), r.Instrs())
}

// BTBMPKI returns the aggregate BTB miss rate.
func (r *Result) BTBMPKI() float64 {
	return stats.MPKI(r.sum(func(s *engine.InvocationStats) uint64 { return s.BTBMisses + s.TargetMispredicts }), r.Instrs())
}

// CBPMPKI returns the aggregate conditional misprediction rate.
func (r *Result) CBPMPKI() float64 {
	return stats.MPKI(r.sum(func(s *engine.InvocationStats) uint64 { return s.CondMispredicts }), r.Instrs())
}

// InitialCBPMPKI returns the misprediction rate of first-execution branches.
func (r *Result) InitialCBPMPKI() float64 {
	return stats.MPKI(r.sum(func(s *engine.InvocationStats) uint64 { return s.CondMispredInitial }), r.Instrs())
}

// InducedMPKI returns the rate of mispredictions induced by incorrect
// Ignite BIM initializations.
func (r *Result) InducedMPKI() float64 {
	return stats.MPKI(r.sum(func(s *engine.InvocationStats) uint64 { return s.InducedMispredicts }), r.Instrs())
}

// BPUMPKI returns BTB plus CBP MPKI, the paper's combined BPU metric.
func (r *Result) BPUMPKI() float64 { return r.BTBMPKI() + r.CBPMPKI() }

// OffChipMPKI returns instruction fetches served by DRAM per kilo-instr.
func (r *Result) OffChipMPKI() float64 {
	return stats.MPKI(r.sum(func(s *engine.InvocationStats) uint64 { return s.OffChipInstrMisses }), r.Instrs())
}

// MeanTraffic returns the mean per-invocation bandwidth report.
func (r *Result) MeanTraffic() memsys.Report {
	if len(r.Traffic) == 0 {
		return memsys.Report{}
	}
	var sum memsys.Report
	for _, t := range r.Traffic {
		sum.UsefulInstrBytes += t.UsefulInstrBytes
		sum.UselessInstrBytes += t.UselessInstrBytes
		sum.RecordMetaBytes += t.RecordMetaBytes
		sum.ReplayMetaBytes += t.ReplayMetaBytes
	}
	// Round half-up: plain integer division would silently drop up to
	// n-1 bytes per field, skewing every bandwidth figure low.
	n := uint64(len(r.Traffic))
	mean := func(v uint64) uint64 { return (v + n/2) / n }
	return memsys.Report{
		UsefulInstrBytes:  mean(sum.UsefulInstrBytes),
		UselessInstrBytes: mean(sum.UselessInstrBytes),
		RecordMetaBytes:   mean(sum.RecordMetaBytes),
		ReplayMetaBytes:   mean(sum.ReplayMetaBytes),
	}
}

// Run executes the protocol on the engine: warm-ups, a record invocation
// (when mechanisms are present), and the measured invocations. The whole
// train goes through the engine's batched RunInvocations entry point — one
// result allocation for the train — with the protocol's thrashes, mechanism
// arming and traffic-window management performed in the between hook, in
// exactly the order the serial per-invocation protocol used.
func Run(eng *engine.Engine, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	seed := opt.SeedBase

	thrash := func(i uint64) {
		if opt.Mode != Interleaved {
			return
		}
		eng.ThrashSelective(opt.SeedBase^(0xbad<<16)^i,
			opt.Keep.BTB, opt.Keep.BIM, opt.Keep.TAGE)
	}

	rec := 0
	if len(opt.Mechanisms) > 0 {
		rec = 1
	}
	firstMeasured := opt.Warmups + rec
	total := firstMeasured + opt.Measures

	res := &Result{}
	opts := make([]engine.InvocationOptions, total)
	between := func(i int) error {
		switch {
		case i < opt.Warmups:
			// Warm-up: trains runtimes / predictors; in interleaved mode
			// each warm-up still sees thrashed state, as on a real server.
			thrash(uint64(i))
		case i == opt.Warmups && rec == 1:
			// Record invocation.
			thrash(100)
			for _, m := range opt.Mechanisms {
				m.StartRecord()
			}
		default:
			j := i - firstMeasured // measured index
			if rec == 1 && i == firstMeasured {
				// The record invocation just finished.
				for _, m := range opt.Mechanisms {
					m.StopRecord()
					m.ArmReplay()
				}
			}
			if j > 0 {
				// Close the previous measured invocation's traffic window
				// before the thrash+reset opens the next one.
				res.Traffic = append(res.Traffic, eng.Traffic().Report())
			}
			thrash(uint64(200 + j))
			eng.Traffic().Reset()
		}
		io := engine.InvocationOptions{Seed: seed, MaxInstr: opt.MaxInstr}
		if opt.Traces != nil {
			tr, wres, err := opt.Traces(seed, opt.MaxInstr)
			if err != nil {
				return fmt.Errorf("lukewarm: trace for seed %d: %w", seed, err)
			}
			io.Trace, io.TraceResult = tr, wres
		}
		opts[i] = io
		seed++
		return nil
	}

	sts, err := eng.RunInvocations(opts, between)
	if err != nil {
		return nil, fmt.Errorf("lukewarm: %w", err)
	}
	res.PerInvocation = sts[firstMeasured:]
	res.Traffic = append(res.Traffic, eng.Traffic().Report())
	eng.BTB().SweepRestoredUnused()
	return res, nil
}
