package lukewarm

import (
	"testing"

	"ignite/internal/engine"
	"ignite/internal/memsys"
	"ignite/internal/workload"
)

func testEngine(t *testing.T) (*engine.Engine, Options) {
	t.Helper()
	spec, err := workload.ByName("Fib-G")
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.FDPEnabled = true // warm-BPU benefits show through the decoupled front end
	eng := engine.New(prog, cfg)
	return eng, Options{MaxInstr: spec.MaxInstr() / 2, Warmups: 1, Measures: 2}
}

func TestBackToBackVsInterleaved(t *testing.T) {
	engA, opt := testEngine(t)
	opt.Mode = BackToBack
	b2b, err := Run(engA, opt)
	if err != nil {
		t.Fatal(err)
	}
	engB, opt2 := testEngine(t)
	opt2.Mode = Interleaved
	il, err := Run(engB, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if il.CPI() <= b2b.CPI() {
		t.Errorf("interleaved CPI %.3f <= back-to-back %.3f", il.CPI(), b2b.CPI())
	}
	// Front-end stalls must dominate the degradation (the paper's core
	// observation).
	feDelta := il.CPIStack().FrontEnd() - b2b.CPIStack().FrontEnd()
	total := il.CPI() - b2b.CPI()
	if feDelta/total < 0.4 {
		t.Errorf("front-end share of degradation = %.2f, want the largest component", feDelta/total)
	}
}

func TestPreserveReducesDamage(t *testing.T) {
	engA, opt := testEngine(t)
	opt.Mode = Interleaved
	cold, err := Run(engA, opt)
	if err != nil {
		t.Fatal(err)
	}
	engB, opt2 := testEngine(t)
	opt2.Mode = Interleaved
	opt2.Keep = Preserve{BTB: true, BIM: true, TAGE: true}
	warm, err := Run(engB, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.BTBMPKI() >= cold.BTBMPKI() {
		t.Errorf("warm BTB MPKI %.2f >= cold %.2f", warm.BTBMPKI(), cold.BTBMPKI())
	}
	if warm.CBPMPKI() >= cold.CBPMPKI() {
		t.Errorf("warm CBP MPKI %.2f >= cold %.2f", warm.CBPMPKI(), cold.CBPMPKI())
	}
	if warm.CPIStack().BadSpec >= cold.CPIStack().BadSpec {
		t.Errorf("warm bad-speculation %.3f >= cold %.3f", warm.CPIStack().BadSpec, cold.CPIStack().BadSpec)
	}
	// Total CPI may shift slightly either way on a single small function
	// (wrong-path fetches have a prefetching side effect the warm BPU
	// forgoes); it must not get significantly worse.
	if warm.CPI() > cold.CPI()*1.08 {
		t.Errorf("warm CPI %.3f much worse than cold %.3f", warm.CPI(), cold.CPI())
	}
}

func TestResultAggregation(t *testing.T) {
	eng, opt := testEngine(t)
	opt.Mode = Interleaved
	res, err := Run(eng, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerInvocation) != 2 || len(res.Traffic) != 2 {
		t.Fatalf("got %d invocations, %d traffic reports", len(res.PerInvocation), len(res.Traffic))
	}
	if res.Instrs() == 0 || res.Cycles() == 0 {
		t.Fatal("empty aggregate")
	}
	st := res.CPIStack()
	if st.Total() == 0 || res.CPI() == 0 {
		t.Fatal("zero CPI")
	}
	// Stack total must equal CPI.
	if diff := st.Total() - res.CPI(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("stack total %.6f != CPI %.6f", st.Total(), res.CPI())
	}
	if res.InitialCBPMPKI() > res.CBPMPKI() {
		t.Error("initial MPKI exceeds total CBP MPKI")
	}
	if res.BPUMPKI() != res.BTBMPKI()+res.CBPMPKI() {
		t.Error("BPU MPKI != BTB + CBP")
	}
	tr := res.MeanTraffic()
	if tr.InstrBytes() == 0 {
		t.Error("no instruction traffic recorded")
	}
}

type fakeMech struct {
	rec, stop, armed int
}

func (m *fakeMech) StartRecord() { m.rec++ }
func (m *fakeMech) StopRecord()  { m.stop++ }
func (m *fakeMech) ArmReplay()   { m.armed++ }

func TestMechanismLifecycle(t *testing.T) {
	eng, opt := testEngine(t)
	opt.Mode = Interleaved
	m := &fakeMech{}
	opt.Mechanisms = []Mechanism{m}
	if _, err := Run(eng, opt); err != nil {
		t.Fatal(err)
	}
	if m.rec != 1 || m.stop != 1 || m.armed != 1 {
		t.Errorf("mechanism lifecycle: %+v", m)
	}
}

func TestModeString(t *testing.T) {
	if BackToBack.String() != "back-to-back" || Interleaved.String() != "interleaved" {
		t.Error("Mode.String broken")
	}
}

func TestEmptyResultHelpers(t *testing.T) {
	r := &Result{}
	if r.CPI() != 0 || r.MeanTraffic().Total() != 0 {
		t.Error("empty result helpers should return zeros")
	}
}

func TestMeanTrafficRoundsHalfUp(t *testing.T) {
	// Regression: a byte count not divisible by the invocation count used
	// to truncate, dropping up to n-1 bytes per field.
	r := &Result{Traffic: []memsys.Report{
		{UsefulInstrBytes: 1, UselessInstrBytes: 10, RecordMetaBytes: 0, ReplayMetaBytes: 2},
		{UsefulInstrBytes: 2, UselessInstrBytes: 10, RecordMetaBytes: 1, ReplayMetaBytes: 2},
		{UsefulInstrBytes: 2, UselessInstrBytes: 10, RecordMetaBytes: 0, ReplayMetaBytes: 3},
	}}
	m := r.MeanTraffic()
	// Sums are 5, 30, 1, 7 over n=3: half-up means 2, 10, 0, 2
	// (truncation would yield 1 for the first field).
	if m.UsefulInstrBytes != 2 {
		t.Errorf("UsefulInstrBytes mean = %d, want 2 (5/3 rounded half-up)", m.UsefulInstrBytes)
	}
	if m.UselessInstrBytes != 10 {
		t.Errorf("UselessInstrBytes mean = %d, want 10", m.UselessInstrBytes)
	}
	if m.RecordMetaBytes != 0 {
		t.Errorf("RecordMetaBytes mean = %d, want 0 (1/3 rounds down)", m.RecordMetaBytes)
	}
	if m.ReplayMetaBytes != 2 {
		t.Errorf("ReplayMetaBytes mean = %d, want 2 (7/3 rounded half-up)", m.ReplayMetaBytes)
	}
}

func TestSeedBaseDefaults(t *testing.T) {
	// Regression: an explicitly chosen SeedBase of zero used to be
	// clobbered to DefaultSeedBase because only non-zeroness was checked.
	if got := (Options{}).withDefaults().SeedBase; got != DefaultSeedBase {
		t.Errorf("unset SeedBase = %#x, want DefaultSeedBase %#x", got, DefaultSeedBase)
	}
	o := Options{SeedBase: 0, SeedBaseSet: true}.withDefaults()
	if o.SeedBase != 0 {
		t.Errorf("explicit SeedBase 0 clobbered to %#x", o.SeedBase)
	}
	if got := (Options{SeedBase: 7}).withDefaults().SeedBase; got != 7 {
		t.Errorf("non-zero SeedBase rewritten to %#x", got)
	}
}

func TestSeedBaseZeroChangesRun(t *testing.T) {
	// End-to-end: SeedBase 0 with the sentinel must actually run seeds
	// 0,1,... — producing a different trace sequence than the default base.
	run := func(opt Options) *Result {
		t.Helper()
		eng, base := testEngine(t)
		base.Mode = Interleaved
		base.Measures = 1
		base.SeedBase, base.SeedBaseSet = opt.SeedBase, opt.SeedBaseSet
		res, err := Run(eng, base)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zero := run(Options{SeedBase: 0, SeedBaseSet: true})
	def := run(Options{})
	if zero.Cycles() == def.Cycles() && zero.Instrs() == def.Instrs() &&
		zero.CBPMPKI() == def.CBPMPKI() {
		t.Error("explicit SeedBase 0 produced the DefaultSeedBase run (sentinel ignored)")
	}
}
