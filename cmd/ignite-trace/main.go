// Command ignite-trace records one lukewarm invocation of a function and
// dumps the resulting Ignite metadata stream in human-readable form —
// useful for inspecting what the replay will restore.
//
// Usage:
//
//	ignite-trace -fn Auth-G -n 20        # first 20 records
//	ignite-trace -fn AES-P -summary      # stream statistics only
//	ignite-trace -fn Auth-G -events      # engine events as JSON lines on stderr
package main

import (
	"flag"
	"fmt"
	"os"

	"ignite/internal/cfg"
	"ignite/internal/engine"
	"ignite/internal/ignite"
	"ignite/internal/memsys"
	"ignite/internal/obs"
	"ignite/internal/workload"
)

func main() {
	fnFlag := flag.String("fn", "Auth-G", "function name")
	nFlag := flag.Int("n", 32, "records to dump (0 = none)")
	seedFlag := flag.Uint64("seed", 1, "invocation seed")
	summary := flag.Bool("summary", false, "print stream statistics only")
	events := flag.Bool("events", false, "stream engine trace events as JSON lines on stderr")
	cyclesFlag := flag.Uint64("max-cycles", 0, "per-invocation engine cycle budget, aborts a runaway invocation (0 = unlimited)")
	flag.Parse()

	spec, err := workload.ByName(*fnFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog, _, err := spec.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ec := engine.DefaultConfig()
	ec.MaxCycles = *cyclesFlag
	eng := engine.New(prog, ec)
	if *events {
		eng.SetTracer(obs.NewWriterTracer(os.Stderr))
	}
	codec := ignite.DefaultCodecConfig()
	region := memsys.NewRegion(0x7f00_0000_0000, ignite.MaxMetadataBytes)
	rec := ignite.NewRecorder(codec, region, nil)
	rec.Attach(eng.BTB())
	rec.Start()
	eng.Thrash(*seedFlag)
	if _, err := eng.RunInvocation(engine.InvocationOptions{Seed: *seedFlag, MaxInstr: spec.MaxInstr()}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rec.Stop()

	fmt.Printf("# %s seed=%d: %d records (%d compact, %d dropped), %d bytes, %.1f bits/record\n",
		spec.Name, *seedFlag, rec.Records(), rec.CompactRecords(), rec.Dropped,
		region.Used(), float64(region.Used()*8)/float64(max(rec.Records(), 1)))
	if *summary {
		kinds := map[cfg.BranchKind]int{}
		decodeAll(codec, region, func(i int, r ignite.Record) { kinds[r.Kind]++ })
		for _, k := range []cfg.BranchKind{cfg.BranchCond, cfg.BranchUncond, cfg.BranchCall,
			cfg.BranchReturn, cfg.BranchIndirectJump, cfg.BranchIndirectCall} {
			fmt.Printf("  %-8v %d\n", k, kinds[k])
		}
		return
	}
	prev := uint64(0)
	decodeAll(codec, region, func(i int, r ignite.Record) {
		if *nFlag != 0 && i >= *nFlag {
			return
		}
		delta := int64(r.BranchPC) - int64(prev)
		fmt.Printf("%6d  pc=%#012x  tgt=%#012x  %-7v Δprev=%+d\n",
			i, r.BranchPC, r.Target, r.Kind, delta)
		prev = r.Target
	})
}

func decodeAll(codec ignite.CodecConfig, region *memsys.Region, fn func(int, ignite.Record)) {
	region.ResetRead()
	dec := ignite.NewDecoder(codec, region)
	for i := 0; ; i++ {
		r, ok, err := dec.Decode()
		if err != nil || !ok {
			return
		}
		fn(i, r)
	}
}
