// Command ignite-fleet runs the fleet-scale multi-tenant simulation: it
// samples a synthetic function population from the paper's Figure-2
// characterization distributions and plays its arrival schedules through
// the per-node metadata-budget market under a ladder of admission policies.
//
// Usage:
//
//	ignite-fleet                              # 1000 functions, default sweep
//	ignite-fleet -n 5000 -seed 9              # bigger population
//	ignite-fleet -policies lru,benefit -budgets 4,16,64
//	ignite-fleet -exp pop                     # population characterization only
//	ignite-fleet -out results/                # versioned JSON documents
//	ignite-fleet -out results/ -stamp         # documents with a timestamp
//
// Exported documents are byte-deterministic for a given seed and sweep
// unless -stamp embeds the generation time. Ctrl-C exits 130; usage errors
// exit 2; failures exit 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ignite/internal/cfgcli"
	"ignite/internal/experiments"
	"ignite/internal/fleet/budget"
	"ignite/internal/loadgen"
	"ignite/internal/obs"
)

func main() {
	def := experiments.DefaultFleetParams()
	seedFlag := flag.Uint64("seed", def.Seed, "population and arrival-schedule seed")
	nFlag := flag.Int("n", def.N, "population size (sampled functions)")
	rateFlag := flag.Float64("rate-scale", def.RateScale, "scale every sampled arrival rate")
	durFlag := flag.Duration("duration", def.Duration, "simulated market window")
	procFlag := flag.String("process", string(def.Process), "arrival process: poisson, diurnal, bursty")
	polFlag := flag.String("policies", strings.Join(def.Policies, ","),
		"comma-separated budget policies (valid: "+strings.Join(budget.PolicyNames(), ", ")+")")
	budFlag := flag.String("budgets", budgetsMiB(def.Budgets),
		"comma-separated per-node metadata budgets in MiB")
	expFlag := flag.String("exp", "all", "which fleet experiments to run: pop, frontier, all")
	outFlag := flag.String("out", "", "directory for machine-readable JSON result documents")
	stampFlag := flag.Bool("stamp", false, "embed the generation time in exported documents (breaks byte-determinism)")
	flag.Parse()

	ctx, stop := cfgcli.SignalContext()
	defer stop()
	err := run(ctx, fleetArgs{
		seed: *seedFlag, n: *nFlag, rateScale: *rateFlag, duration: *durFlag,
		process: *procFlag, policies: *polFlag, budgets: *budFlag,
		exp: *expFlag, out: *outFlag, stamp: *stampFlag,
	})
	cfgcli.Exit("ignite-fleet", ctx, err)
}

type fleetArgs struct {
	seed      uint64
	n         int
	rateScale float64
	duration  time.Duration
	process   string
	policies  string
	budgets   string
	exp       string
	out       string
	stamp     bool
}

func run(ctx context.Context, a fleetArgs) error {
	proc, err := loadgen.ParseProcess(a.process)
	if err != nil {
		return cfgcli.Usage("ignite-fleet: %v", err)
	}
	var policies []string
	for _, raw := range strings.Split(a.policies, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if _, err := budget.NewPolicy(name); err != nil {
			return cfgcli.Usage("ignite-fleet: %v", err)
		}
		policies = append(policies, name)
	}
	budgets, err := parseBudgets(a.budgets)
	if err != nil {
		return cfgcli.Usage("ignite-fleet: %v", err)
	}
	params := experiments.FleetParams{
		Seed:      a.seed,
		N:         a.n,
		RateScale: a.rateScale,
		Duration:  a.duration,
		Process:   proc,
		Policies:  policies,
		Budgets:   budgets,
	}

	var ids []string
	switch a.exp {
	case "pop":
		ids = []string{"fleet-pop"}
	case "frontier":
		ids = []string{"fleet-frontier"}
	case "all", "":
		ids = []string{"fleet-pop", "fleet-frontier"}
	default:
		return cfgcli.Usage("ignite-fleet: unknown -exp %q (valid: pop, frontier, all)", a.exp)
	}

	man := obs.Manifest{GoVersion: runtime.Version()}
	if a.stamp {
		man.Generated = time.Now().UTC().Format(time.RFC3339)
	}
	for _, id := range ids {
		var res *experiments.Result
		var err error
		start := time.Now()
		switch id {
		case "fleet-pop":
			res, err = experiments.FleetPopulation(ctx, experiments.Options{}, params)
		case "fleet-frontier":
			res, err = experiments.FleetFrontier(ctx, experiments.Options{}, params)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
		if a.out != "" {
			path, err := res.Document(man).WriteFile(a.out, string(res.ID))
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	return nil
}

func budgetsMiB(budgets []uint64) string {
	parts := make([]string, len(budgets))
	for i, b := range budgets {
		parts[i] = strconv.FormatUint(b>>20, 10)
	}
	return strings.Join(parts, ",")
}

func parseBudgets(s string) ([]uint64, error) {
	var out []uint64
	for _, raw := range strings.Split(s, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		mib, err := strconv.ParseFloat(raw, 64)
		if err != nil || mib <= 0 {
			return nil, fmt.Errorf("invalid budget %q (want MiB > 0)", raw)
		}
		out = append(out, uint64(mib*(1<<20)))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no budgets given")
	}
	return out, nil
}
