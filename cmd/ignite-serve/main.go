// Command ignite-serve is the invocation-serving daemon: a long-running
// HTTP/JSON server that accepts invocation requests for named functions
// (the Table-1 workloads plus tweak overrides), coalesces concurrent
// requests for the same simulation cell onto one batched engine run, and
// answers with per-invocation latency/CPI/traffic results.
//
// Usage:
//
//	ignite-serve                                  # listen on :8080
//	ignite-serve -addr :9000 -parallel 4
//	ignite-serve -target-instr 20000              # small cells (CI smoke)
//	ignite-serve -population 42,1000              # also serve a sampled fleet population
//	IGNITE_FAULTS='transient:serve/*/*:n=3' ignite-serve   # chaos drill
//
// Endpoints: POST /v1/invoke, GET /v1/catalog, GET /metrics, GET /healthz.
// SIGTERM/Ctrl-C drains: the listener stops, in-flight requests answer,
// pending batches compute, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ignite/internal/cfgcli"
	"ignite/internal/fleet/population"
	"ignite/internal/serve"
	"ignite/internal/workload"
)

// drainGrace bounds the SIGTERM drain: pending batches get this long to
// compute before the process gives up.
const drainGrace = 30 * time.Second

func drainContext() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
	_ = cancel // the process exits right after the drain completes
	return ctx
}

// parsePopulation resolves -population "seed,N" into servable specs.
func parsePopulation(s string) ([]workload.Spec, error) {
	if s == "" {
		return nil, nil
	}
	seedStr, nStr, ok := strings.Cut(s, ",")
	if !ok {
		return nil, cfgcli.Usage("ignite-serve: -population wants \"seed,N\", got %q", s)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(seedStr), 10, 64)
	if err != nil {
		return nil, cfgcli.Usage("ignite-serve: -population seed: %v", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(nStr))
	if err != nil || n <= 0 {
		return nil, cfgcli.Usage("ignite-serve: -population size %q (want N > 0)", nStr)
	}
	fns, err := population.Sample(population.Params{Seed: seed, N: n})
	if err != nil {
		return nil, err
	}
	return population.Specs(fns), nil
}

func main() {
	cf := cfgcli.New("ignite-serve")
	cf.BindCore(flag.CommandLine)
	addrFlag := flag.String("addr", ":8080", "listen address (\":0\" for an ephemeral port)")
	maxBatchFlag := flag.Int("max-batch", 0, "requests coalesced per cell before an immediate flush (0 = default 64)")
	maxWaitFlag := flag.Duration("max-wait", 0, "max time a request waits for batch-mates before its cell flushes (0 = default 2ms)")
	queueFlag := flag.Int("queue", 0, "admission queue capacity; overflow sheds with 429 (0 = default 1024)")
	timeoutFlag := flag.Duration("request-timeout", 0, "default per-request deadline (0 = 60s)")
	popFlag := flag.String("population", "", "serve a sampled fleet population alongside Table 1, as \"seed,N\" (e.g. \"42,1000\")")
	flag.Parse()

	plan, err := cfgcli.FaultsFromEnv()
	if err != nil {
		cfgcli.Exit("ignite-serve", nil, err)
	}
	pop, err := parsePopulation(*popFlag)
	if err != nil {
		cfgcli.Exit("ignite-serve", nil, err)
	}

	ctx, stop := cfgcli.SignalContext()
	defer stop()

	srv := serve.NewServer(serve.Config{
		Addr:           *addrFlag,
		TargetInstr:    cf.TargetInstr,
		Checks:         cf.ChecksEnabled(),
		MaxCycles:      cf.MaxCycles,
		Faults:         plan,
		Workers:        cf.Parallel,
		MaxBatch:       *maxBatchFlag,
		MaxWait:        *maxWaitFlag,
		Queue:          *queueFlag,
		RequestTimeout: *timeoutFlag,
		Population:     pop,
	})
	if err := srv.Start(); err != nil {
		cfgcli.Exit("ignite-serve", nil, err)
	}
	fmt.Fprintf(os.Stderr, "ignite-serve: listening on %s\n", srv.Addr())
	if len(pop) > 0 {
		fmt.Fprintf(os.Stderr, "ignite-serve: serving %d sampled population function(s)\n", len(pop))
	}

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "ignite-serve: draining")
	start := time.Now()
	if err := srv.Shutdown(drainContext()); err != nil {
		fmt.Fprintf(os.Stderr, "ignite-serve: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ignite-serve: drained in %.1fs\n", time.Since(start).Seconds())
}
