// Command workload-stats characterizes the 20 synthetic serverless
// functions: static program shape and per-invocation working sets (the
// paper's Table 1 + Figure 2 data).
package main

import (
	"flag"
	"fmt"
	"os"

	"ignite/internal/stats"
	"ignite/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 42, "invocation seed for working-set measurement")
	flag.Parse()

	t := stats.NewTable("Workload characterization",
		"function", "runtime", "static KiB", "funcs", "instr WS KiB", "branch WS", "dyn instrs", "dyn branches")
	for _, s := range workload.All() {
		prog, rep, err := s.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ws, err := workload.MeasureWorkingSet(prog, *seed, s.MaxInstr())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.AddRowf(s.Name, s.Lang.String(), rep.CodeBytes/1024, rep.NumFuncs,
			float64(ws.InstrBytes)/1024, ws.BTBEntries, ws.DynInstr, ws.DynBranches)
	}
	fmt.Println(t.String())
}
