// Command workload-stats characterizes the 20 synthetic serverless
// functions: static program shape and per-invocation working sets (the
// paper's Table 1 + Figure 2 data).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ignite/internal/obs"
	"ignite/internal/stats"
	"ignite/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 42, "invocation seed for working-set measurement")
	outFlag := flag.String("out", "", "directory for a machine-readable JSON document of the characterization")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t := stats.NewTable("Workload characterization",
		"function", "runtime", "static KiB", "funcs", "instr WS KiB", "branch WS", "dyn instrs", "dyn branches")
	doc := obs.Document{
		ID:    "workload-characterization",
		Title: t.Title(),
		Manifest: obs.Manifest{
			Generated: time.Now().UTC().Format(time.RFC3339),
			Parallel:  1,
		},
	}
	for _, s := range workload.All() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "workload-stats: interrupted")
			os.Exit(130)
		}
		prog, rep, err := s.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ws, err := workload.MeasureWorkingSet(prog, *seed, s.MaxInstr())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.AddRowf(s.Name, s.Lang.String(), rep.CodeBytes/1024, rep.NumFuncs,
			float64(ws.InstrBytes)/1024, ws.BTBEntries, ws.DynInstr, ws.DynBranches)
		doc.Manifest.Workloads = append(doc.Manifest.Workloads, obs.WorkloadManifest{
			Name: s.Name, Seed: s.Gen.Seed, TargetInstr: s.TargetInstr,
		})
		doc.Cells = append(doc.Cells, obs.CellMetrics{
			Workload: s.Name,
			Config:   "characterization",
			Metrics: map[string]float64{
				"workload.static_bytes{component=workload}":   float64(rep.CodeBytes),
				"workload.funcs{component=workload}":          float64(rep.NumFuncs),
				"workload.instr_ws_bytes{component=workload}": float64(ws.InstrBytes),
				"workload.btb_entries{component=workload}":    float64(ws.BTBEntries),
				"workload.dyn_instrs{component=workload}":     float64(ws.DynInstr),
				"workload.dyn_branches{component=workload}":   float64(ws.DynBranches),
			},
		})
	}
	fmt.Println(t.String())

	if *outFlag != "" {
		doc.Tables = []obs.TableDoc{{Title: t.Title(), Header: t.Header(), Rows: t.Rows()}}
		path, err := doc.WriteFile(*outFlag, doc.ID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
