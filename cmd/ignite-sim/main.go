// Command ignite-sim runs a single (function, configuration) simulation
// under the lukewarm protocol and prints detailed statistics.
//
// Usage:
//
//	ignite-sim -fn Auth-G -config ignite
//	ignite-sim -fn Curr-N -config boomerang+jb -mode back-to-back
//	ignite-sim -show-config
//	ignite-sim -all
package main

import (
	"flag"
	"fmt"
	"os"

	"ignite/internal/experiments"
	"ignite/internal/lukewarm"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

func main() {
	fnFlag := flag.String("fn", "Auth-G", "function name (see -list)")
	cfgFlag := flag.String("config", "nl", "front-end configuration (nl, fdp, boomerang, jukebox, boomerang+jb, confluence, ignite, ignite+tage, confluence+ignite, ideal)")
	modeFlag := flag.String("mode", "interleaved", "inter-invocation mode: interleaved or back-to-back")
	listFlag := flag.Bool("list", false, "list functions and configurations")
	showCfg := flag.Bool("show-config", false, "print the simulated core parameters (Table 2)")
	allFlag := flag.Bool("all", false, "reproduce every registered experiment through one shared cell cache")
	flag.Parse()

	if *allFlag {
		results, err := experiments.RunAll(nil, experiments.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, res := range results {
			fmt.Println(res.Render())
			fmt.Println()
		}
		return
	}
	if *showCfg {
		res, err := experiments.Run("tab2", experiments.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		return
	}
	if *listFlag {
		fmt.Println("functions:")
		for _, s := range workload.All() {
			fmt.Printf("  %-8s %-36s %s\n", s.Name, s.FullName, s.Lang)
		}
		fmt.Println("configurations:")
		for _, k := range sim.Kinds() {
			fmt.Printf("  %s\n", k)
		}
		return
	}

	spec, err := workload.ByName(*fnFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mode := lukewarm.Interleaved
	if *modeFlag == "back-to-back" || *modeFlag == "b2b" {
		mode = lukewarm.BackToBack
	}

	setup, err := sim.New(spec, sim.Kind(*cfgFlag), sim.Tweaks{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := setup.Run(mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	st := res.CPIStack()
	fmt.Printf("%s / %s / %s\n", spec.Name, *cfgFlag, mode)
	fmt.Printf("  instructions   %d (over %d measured invocations)\n", res.Instrs(), len(res.PerInvocation))
	fmt.Printf("  CPI            %.3f\n", res.CPI())
	fmt.Printf("    retiring     %.3f\n", st.Retiring)
	fmt.Printf("    fetch-bound  %.3f\n", st.Fetch)
	fmt.Printf("    bad-spec     %.3f\n", st.BadSpec)
	fmt.Printf("    backend      %.3f\n", st.Backend)
	fmt.Printf("  L1-I MPKI      %.2f (off-chip %.2f)\n", res.L1IMPKI(), res.OffChipMPKI())
	fmt.Printf("  BTB MPKI       %.2f\n", res.BTBMPKI())
	fmt.Printf("  CBP MPKI       %.2f (initial %.2f)\n", res.CBPMPKI(), res.InitialCBPMPKI())
	fmt.Printf("  BPU MPKI       %.2f\n", res.BPUMPKI())
	tr := res.MeanTraffic()
	fmt.Printf("  DRAM traffic   useful %d B, useless %d B, record %d B, replay %d B\n",
		tr.UsefulInstrBytes, tr.UselessInstrBytes, tr.RecordMetaBytes, tr.ReplayMetaBytes)
	if setup.Ignite != nil {
		fmt.Printf("  ignite         %v, %d records, %d B metadata\n",
			setup.Ignite.Regs().ReplayEnable, setup.Ignite.Recorder().Records(), setup.Ignite.MetadataUsed())
	}
}
