// Command ignite-sim runs a single (function, configuration) simulation
// under the lukewarm protocol and prints detailed statistics, or reproduces
// the full experiment suite.
//
// Usage:
//
//	ignite-sim -fn Auth-G -config ignite
//	ignite-sim -fn Curr-N -config boomerang+jb -mode back-to-back
//	ignite-sim -show-config
//	ignite-sim -all -out results/           # machine-readable JSON per experiment
//	ignite-sim -all -progress               # narrate cell completions + ETA
//
// Ctrl-C cancels cleanly: in-flight simulation cells drain, unstarted ones
// are skipped, and the command exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

func main() {
	fnFlag := flag.String("fn", "Auth-G", "function name (see -list)")
	cfgFlag := flag.String("config", "nl", "front-end configuration (nl, fdp, boomerang, jukebox, boomerang+jb, confluence, ignite, ignite+tage, confluence+ignite, ideal)")
	modeFlag := flag.String("mode", "interleaved", "inter-invocation mode: interleaved or back-to-back")
	listFlag := flag.Bool("list", false, "list functions and configurations")
	showCfg := flag.Bool("show-config", false, "print the simulated core parameters (Table 2)")
	allFlag := flag.Bool("all", false, "reproduce every registered experiment through one shared cell cache")
	outFlag := flag.String("out", "", "directory for machine-readable JSON result documents")
	progFlag := flag.Bool("progress", false, "report per-cell completion and ETA on stderr")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *allFlag:
		runAll(ctx, *outFlag, *progFlag)
	case *showCfg:
		res, err := experiments.Run(ctx, "tab2", experiments.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	case *listFlag:
		fmt.Println("functions:")
		for _, s := range workload.All() {
			fmt.Printf("  %-8s %-36s %s\n", s.Name, s.FullName, s.Lang)
		}
		fmt.Println("configurations:")
		for _, k := range sim.Kinds() {
			fmt.Printf("  %s\n", k)
		}
	default:
		runOne(*fnFlag, *cfgFlag, *modeFlag, *outFlag)
	}
}

// runAll reproduces every experiment, optionally exporting one versioned
// JSON document per experiment into dir.
func runAll(ctx context.Context, dir string, progress bool) {
	opt := experiments.Options{Cache: experiments.NewCellCache()}
	var reporter *obs.ProgressReporter
	if progress {
		reporter = obs.NewProgressReporter(os.Stderr)
		opt.Tracer = reporter
	}
	results, err := experiments.RunAll(ctx, nil, opt)
	if err != nil {
		fatal(err)
	}
	for _, res := range results {
		fmt.Println(res.Render())
		fmt.Println()
	}
	if reporter != nil {
		cells, hits := reporter.Summary()
		fmt.Fprintf(os.Stderr, "%d cells (%d cache hits)\n", cells, hits)
	}
	if dir != "" {
		man := opt.Manifest()
		man.Generated = time.Now().UTC().Format(time.RFC3339)
		for _, res := range results {
			path, err := res.Document(man).WriteFile(dir, string(res.ID))
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

// runOne simulates a single (function, configuration) cell and prints its
// statistics; with -out it also exports the cell's full metric snapshot.
func runOne(fn, cfgName, modeName, dir string) {
	spec, err := workload.ByName(fn)
	if err != nil {
		fatalCode(2, err)
	}
	mode := lukewarm.Interleaved
	if modeName == "back-to-back" || modeName == "b2b" {
		mode = lukewarm.BackToBack
	}

	setup, err := sim.New(spec, sim.Kind(cfgName))
	if err != nil {
		fatalCode(2, err)
	}
	res, err := setup.Run(mode)
	if err != nil {
		fatal(err)
	}

	st := res.CPIStack()
	fmt.Printf("%s / %s / %s\n", spec.Name, cfgName, mode)
	fmt.Printf("  instructions   %d (over %d measured invocations)\n", res.Instrs(), len(res.PerInvocation))
	fmt.Printf("  CPI            %.3f\n", res.CPI())
	fmt.Printf("    retiring     %.3f\n", st.Retiring)
	fmt.Printf("    fetch-bound  %.3f\n", st.Fetch)
	fmt.Printf("    bad-spec     %.3f\n", st.BadSpec)
	fmt.Printf("    backend      %.3f\n", st.Backend)
	fmt.Printf("  L1-I MPKI      %.2f (off-chip %.2f)\n", res.L1IMPKI(), res.OffChipMPKI())
	fmt.Printf("  BTB MPKI       %.2f\n", res.BTBMPKI())
	fmt.Printf("  CBP MPKI       %.2f (initial %.2f)\n", res.CBPMPKI(), res.InitialCBPMPKI())
	fmt.Printf("  BPU MPKI       %.2f\n", res.BPUMPKI())
	tr := res.MeanTraffic()
	fmt.Printf("  DRAM traffic   useful %d B, useless %d B, record %d B, replay %d B\n",
		tr.UsefulInstrBytes, tr.UselessInstrBytes, tr.RecordMetaBytes, tr.ReplayMetaBytes)
	if setup.Ignite != nil {
		fmt.Printf("  ignite         %v, %d records, %d B metadata\n",
			setup.Ignite.Regs().ReplayEnable, setup.Ignite.Recorder().Records(), setup.Ignite.MetadataUsed())
	}

	if dir != "" {
		reg := obs.NewRegistry()
		setup.RegisterMetrics(reg)
		res.RegisterMetrics(reg, nil)
		doc := obs.Document{
			SchemaVersion: obs.SchemaVersion,
			Kind:          obs.DocumentKind,
			ID:            fmt.Sprintf("run-%s-%s", spec.Name, cfgName),
			Title:         fmt.Sprintf("Single run: %s under %s (%s)", spec.Name, cfgName, mode),
			Cells: []obs.CellMetrics{{
				Workload: spec.Name,
				Config:   cfgName,
				Metrics:  reg.Snapshot().Values(),
			}},
			Manifest: obs.Manifest{
				Generated: time.Now().UTC().Format(time.RFC3339),
				Parallel:  1,
				Workloads: []obs.WorkloadManifest{{
					Name: spec.Name, Seed: spec.Gen.Seed, TargetInstr: spec.TargetInstr,
				}},
			},
		}
		path, err := doc.WriteFile(dir, doc.ID)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func fatal(err error) { fatalCode(1, err) }
func fatalCode(code int, err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(code)
}
