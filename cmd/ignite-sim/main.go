// Command ignite-sim runs a single (function, configuration) simulation
// under the lukewarm protocol and prints detailed statistics, or reproduces
// the full experiment suite.
//
// Usage:
//
//	ignite-sim -fn Auth-G -config ignite
//	ignite-sim -fn Curr-N -config boomerang+jb -mode back-to-back
//	ignite-sim -show-config
//	ignite-sim -all -out results/           # machine-readable JSON per experiment
//	ignite-sim -all -progress               # narrate cell completions + ETA
//	ignite-sim -all -fail-policy continue   # degrade on cell failures, don't abort
//	ignite-sim -all -resume -out results/   # pick up an interrupted run
//
// The IGNITE_FAULTS environment variable arms deterministic fault injection
// (see internal/faults) on both the suite and single-cell runs.
//
// Ctrl-C cancels cleanly: in-flight simulation cells drain, unstarted ones
// are skipped, and the command exits with status 130. Simulation failures
// exit 1; usage errors exit 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ignite/internal/experiments"
	"ignite/internal/faults"
	"ignite/internal/lukewarm"
	"ignite/internal/obs"
	"ignite/internal/sim"
	"ignite/internal/workload"
)

func main() {
	fnFlag := flag.String("fn", "Auth-G", "function name (see -list)")
	cfgFlag := flag.String("config", "nl", "front-end configuration (nl, fdp, boomerang, jukebox, boomerang+jb, confluence, ignite, ignite+tage, confluence+ignite, ideal)")
	modeFlag := flag.String("mode", "interleaved", "inter-invocation mode: interleaved or back-to-back")
	listFlag := flag.Bool("list", false, "list functions and configurations")
	showCfg := flag.Bool("show-config", false, "print the simulated core parameters (Table 2)")
	allFlag := flag.Bool("all", false, "reproduce every registered experiment through one shared cell cache")
	outFlag := flag.String("out", "", "directory for machine-readable JSON result documents")
	progFlag := flag.Bool("progress", false, "report per-cell completion and ETA on stderr")
	policyFlag := flag.String("fail-policy", "fail-fast", "cell-failure policy for -all: fail-fast or continue")
	timeoutFlag := flag.Duration("cell-timeout", 0, "per-cell simulation deadline for -all (0 = none)")
	cyclesFlag := flag.Uint64("max-cycles", 0, "per-invocation engine cycle budget (0 = unlimited)")
	journalFlag := flag.String("journal", "", "crash-safe cell journal path for -all (default <out>/run.journal.jsonl when -out is set)")
	resumeFlag := flag.Bool("resume", false, "preload cells from the journal of an interrupted -all run")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	plan, err := faults.FromEnvSpec(os.Getenv(faults.EnvVar))
	if err != nil {
		fatalCode(2, err)
	}

	switch {
	case *allFlag:
		policy, err := experiments.ParseFailurePolicy(*policyFlag)
		if err != nil {
			fatalCode(2, err)
		}
		runAll(ctx, allOptions{
			dir:      *outFlag,
			progress: *progFlag,
			policy:   policy,
			timeout:  *timeoutFlag,
			cycles:   *cyclesFlag,
			journal:  *journalFlag,
			resume:   *resumeFlag,
			faults:   plan,
		})
	case *showCfg:
		res, err := experiments.Run(ctx, "tab2", experiments.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Render())
	case *listFlag:
		fmt.Println("functions:")
		for _, s := range workload.All() {
			fmt.Printf("  %-8s %-36s %s\n", s.Name, s.FullName, s.Lang)
		}
		fmt.Println("configurations:")
		for _, k := range sim.Kinds() {
			fmt.Printf("  %s\n", k)
		}
	default:
		runOne(*fnFlag, *cfgFlag, *modeFlag, *outFlag, *cyclesFlag, plan)
	}
}

// allOptions bundles the -all run's knobs.
type allOptions struct {
	dir      string
	progress bool
	policy   experiments.FailurePolicy
	timeout  time.Duration
	cycles   uint64
	journal  string
	resume   bool
	faults   *faults.Plan
}

// runAll reproduces every experiment, optionally exporting one versioned
// JSON document per experiment into dir.
func runAll(ctx context.Context, ao allOptions) {
	opt := experiments.Options{
		Cache:         experiments.NewCellCache(),
		FailurePolicy: ao.policy,
		CellTimeout:   ao.timeout,
		MaxCycles:     ao.cycles,
		Faults:        ao.faults,
		Health:        new(obs.RunHealth),
	}
	var reporter *obs.ProgressReporter
	if ao.progress {
		reporter = obs.NewProgressReporter(os.Stderr)
		opt.Tracer = reporter
	}
	journalPath := ao.journal
	if journalPath == "" && ao.dir != "" {
		journalPath = filepath.Join(ao.dir, "run.journal.jsonl")
	}
	if ao.resume && journalPath == "" {
		fatalCode(2, errors.New("ignite-sim: -resume needs a journal (-journal or -out)"))
	}
	if journalPath != "" {
		j, err := experiments.OpenJournal(journalPath, opt.Fingerprint())
		if err != nil {
			fatal(err)
		}
		defer j.Close()
		opt.Journal = j
		if ao.resume {
			loaded, skipped, err := j.Resume(opt.Cache)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "resumed %d cell(s) from %s (%d unreadable record(s) skipped)\n",
				loaded, journalPath, skipped)
		}
	}

	results, runErr := experiments.RunAll(ctx, nil, opt)
	failed := runErr != nil
	for _, res := range results {
		fmt.Println(res.Render())
		fmt.Println()
		if len(res.Failures) > 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "%s: %d degraded cell(s):\n", res.ID, len(res.Failures))
			for _, f := range res.Failures {
				fmt.Fprintf(os.Stderr, "  %-12s %-16s %-8s %s\n", f.Workload, f.Config, f.Status, f.Err)
			}
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
	}
	if reporter != nil {
		cells, hits := reporter.Summary()
		fmt.Fprintf(os.Stderr, "%d cells (%d cache hits)\n", cells, hits)
	}
	if ao.dir != "" {
		man := opt.Manifest()
		man.Generated = time.Now().UTC().Format(time.RFC3339)
		for _, res := range results {
			path, err := res.Document(man).WriteFile(ao.dir, string(res.ID))
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	switch {
	case errors.Is(runErr, context.Canceled) || ctx.Err() != nil:
		fmt.Fprintln(os.Stderr, "ignite-sim: interrupted")
		os.Exit(130)
	case failed:
		os.Exit(1)
	}
}

// runOne simulates a single (function, configuration) cell and prints its
// statistics; with -out it also exports the cell's full metric snapshot.
func runOne(fn, cfgName, modeName, dir string, maxCycles uint64, plan *faults.Plan) {
	spec, err := workload.ByName(fn)
	if err != nil {
		fatalCode(2, err)
	}
	mode := lukewarm.Interleaved
	if modeName == "back-to-back" || modeName == "b2b" {
		mode = lukewarm.BackToBack
	}

	opts := []sim.Option{sim.WithFaults(plan)}
	if maxCycles > 0 {
		opts = append(opts, sim.WithMaxCycles(maxCycles))
	}
	setup, err := sim.New(spec, sim.Kind(cfgName), opts...)
	if err != nil {
		fatalCode(2, err)
	}
	res, err := setup.Run(mode)
	if err != nil {
		fatal(err)
	}

	st := res.CPIStack()
	fmt.Printf("%s / %s / %s\n", spec.Name, cfgName, mode)
	fmt.Printf("  instructions   %d (over %d measured invocations)\n", res.Instrs(), len(res.PerInvocation))
	fmt.Printf("  CPI            %.3f\n", res.CPI())
	fmt.Printf("    retiring     %.3f\n", st.Retiring)
	fmt.Printf("    fetch-bound  %.3f\n", st.Fetch)
	fmt.Printf("    bad-spec     %.3f\n", st.BadSpec)
	fmt.Printf("    backend      %.3f\n", st.Backend)
	fmt.Printf("  L1-I MPKI      %.2f (off-chip %.2f)\n", res.L1IMPKI(), res.OffChipMPKI())
	fmt.Printf("  BTB MPKI       %.2f\n", res.BTBMPKI())
	fmt.Printf("  CBP MPKI       %.2f (initial %.2f)\n", res.CBPMPKI(), res.InitialCBPMPKI())
	fmt.Printf("  BPU MPKI       %.2f\n", res.BPUMPKI())
	tr := res.MeanTraffic()
	fmt.Printf("  DRAM traffic   useful %d B, useless %d B, record %d B, replay %d B\n",
		tr.UsefulInstrBytes, tr.UselessInstrBytes, tr.RecordMetaBytes, tr.ReplayMetaBytes)
	if setup.Ignite != nil {
		fmt.Printf("  ignite         %v, %d records, %d B metadata\n",
			setup.Ignite.Regs().ReplayEnable, setup.Ignite.Recorder().Records(), setup.Ignite.MetadataUsed())
	}

	if dir != "" {
		reg := obs.NewRegistry()
		setup.RegisterMetrics(reg)
		res.RegisterMetrics(reg, nil)
		doc := obs.Document{
			SchemaVersion: obs.SchemaVersion,
			Kind:          obs.DocumentKind,
			ID:            fmt.Sprintf("run-%s-%s", spec.Name, cfgName),
			Title:         fmt.Sprintf("Single run: %s under %s (%s)", spec.Name, cfgName, mode),
			Cells: []obs.CellMetrics{{
				Workload: spec.Name,
				Config:   cfgName,
				Metrics:  reg.Snapshot().Values(),
			}},
			Manifest: obs.Manifest{
				Generated: time.Now().UTC().Format(time.RFC3339),
				Parallel:  1,
				Workloads: []obs.WorkloadManifest{{
					Name: spec.Name, Seed: spec.Gen.Seed, TargetInstr: spec.TargetInstr,
				}},
			},
		}
		path, err := doc.WriteFile(dir, doc.ID)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

func fatal(err error) { fatalCode(1, err) }
func fatalCode(code int, err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(code)
}
